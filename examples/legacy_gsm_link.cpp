// Example: the 2G baseline — a GSM-class TDMA link with midamble
// channel estimation and MLSE equalization, plus an NML-file datapath
// loaded from disk (the "software-defined" distribution format).
//
// This is the legacy rung of the paper's Figure 1/2 protocol ladder:
// low data rate, modest MIPS, robust at any mobility — the workload a
// multi-standard terminal must still carry alongside 3G and WLAN.
#include <cmath>
#include <cstdio>

#include "src/common/rng.hpp"
#include "src/gsm/equalizer.hpp"
#include "src/phy/channel.hpp"
#include "src/xpp/nml.hpp"
#include "src/xpp/runner.hpp"

#ifndef RSP_ASSET_DIR
#define RSP_ASSET_DIR "assets"
#endif

int main() {
  using namespace rsp;
  Rng rng(1);

  // --- a GSM traffic channel: 25 bursts over a 3-tap ISI channel ---
  const std::vector<CplxF> h = {{0.85, 0.05}, {0.4, -0.25}, {-0.2, 0.1}};
  int burst_errors = 0;
  long long bit_errors = 0;
  long long bits_total = 0;
  dsp::DspModel dsp;
  for (int frame = 0; frame < 25; ++frame) {
    std::vector<std::uint8_t> payload(2 * gsm::kDataBits);
    for (auto& b : payload) b = rng.bit() ? 1 : 0;
    auto rx = gsm::isi_channel(gsm::gmsk_map(gsm::Burst::make(payload)), h);
    rx.resize(gsm::kBurstSymbols);
    rx = phy::awgn(rx, 11.0, rng);
    const auto res = gsm::gsm_receive(rx, 3, &dsp);
    int errors = 0;
    for (std::size_t i = 0; i < payload.size(); ++i) {
      errors += (res.payload[i] != payload[i]) ? 1 : 0;
    }
    bit_errors += errors;
    bits_total += static_cast<long long>(payload.size());
    burst_errors += (errors > 0) ? 1 : 0;
  }
  std::printf("GSM link, 25 bursts over a 3-tap ISI channel at 11 dB:\n");
  std::printf("  bit errors: %lld / %lld (BER %.4f), bursts hit: %d/25\n",
              bit_errors, bits_total,
              static_cast<double>(bit_errors) /
                  static_cast<double>(bits_total),
              burst_errors);
  const double mips = static_cast<double>(dsp.total_instructions()) / 25.0 *
                      gsm::kBurstsPerSecond / 1.0e6;
  std::printf("  equalizer load: %.1f MIPS/slot (Figure 1's GSM rung: ~10 "
              "incl. codec)\n\n", mips);

  // --- load a datapath from an NML file and run it on the array ---
  const auto cfg =
      xpp::parse_nml_file(std::string(RSP_ASSET_DIR) + "/moving_average.nml");
  xpp::ConfigurationManager mgr;
  std::vector<xpp::Word> samples;
  for (int i = 0; i < 8; ++i) {
    samples.push_back(pack_cplx({200 + 10 * i, -100}));
  }
  const auto r =
      xpp::run_config(mgr, cfg, {{"in", samples}}, {{"out", 2}});
  std::printf("NML datapath '%s' from disk: %zu objects, outputs:",
              cfg.name.c_str(), cfg.objects.size());
  for (const auto w : r.outputs.at("out")) {
    const CplxI z = unpack_cplx(w);
    std::printf(" (%d,%d)", z.re, z.im);
  }
  std::printf("\n");
  return 0;
}

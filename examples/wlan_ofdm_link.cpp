// Example: a complete IEEE 802.11a link at every rate mode, with the
// FFT64 running on the simulated reconfigurable array for one of the
// frames (paper §3.2).
#include <cstdio>

#include "src/common/rng.hpp"
#include "src/ofdm/golden.hpp"
#include "src/ofdm/maps.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/ofdm_tx.hpp"

int main() {
  using namespace rsp;
  Rng rng(7);

  std::vector<std::uint8_t> psdu(800);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;

  std::printf("%-6s %-10s %-6s %-8s %-8s %s\n", "Mbit/s", "modulation",
              "rate", "symbols", "errors", "status");
  for (const auto& mode : phy::all_rate_modes()) {
    phy::OfdmTransmitter tx;
    auto capture = tx.build_ppdu(psdu, mode.mbps);
    std::vector<CplxF> lead(200, CplxF{0, 0});
    capture.insert(capture.begin(), lead.begin(), lead.end());
    // Indoor multipath within the cyclic prefix + noise.
    phy::MultipathChannel ch({{0, {0.9, 0.0}, 0.0}, {5, {0.25, 0.2}, 0.0}},
                             phy::kOfdmSampleRateHz);
    const auto rx = ch.run(capture, 26.0, rng);

    ofdm::OfdmRxConfig cfg;
    cfg.mbps = mode.mbps;
    ofdm::OfdmReceiver receiver(cfg);
    const auto res = receiver.receive(rx, psdu.size());

    int errors = -1;
    if (res.preamble_found && res.psdu.size() == psdu.size()) {
      errors = 0;
      for (std::size_t i = 0; i < psdu.size(); ++i) {
        errors += (res.psdu[i] != psdu[i]) ? 1 : 0;
      }
    }
    const char* coding =
        mode.rate == dedhw::CodeRate::kR12
            ? "1/2"
            : (mode.rate == dedhw::CodeRate::kR23 ? "2/3" : "3/4");
    std::printf("%-6d %-10s %-6s %-8d %-8d %s\n", mode.mbps,
                modulation_name(mode.mod), coding, res.symbols_decoded,
                errors, errors == 0 ? "OK" : "DEGRADED");
  }

  // One frame with the FFT64 on the simulated array (bit-true 4-bit
  // datapath of Figure 9).
  {
    phy::OfdmTransmitter tx;
    auto capture = tx.build_ppdu(psdu, 12);
    std::vector<CplxF> lead(160, CplxF{0, 0});
    capture.insert(capture.begin(), lead.begin(), lead.end());
    const auto rx = phy::awgn(capture, 28.0, rng);

    ofdm::OfdmRxConfig cfg;
    cfg.mbps = 12;
    cfg.use_fixed_fft = true;  // golden twin of the array datapath
    ofdm::OfdmReceiver receiver(cfg);
    const auto res = receiver.receive(rx, psdu.size());

    int errors = 0;
    for (std::size_t i = 0; i < res.psdu.size() && i < psdu.size(); ++i) {
      errors += (res.psdu[i] != psdu[i]) ? 1 : 0;
    }
    std::printf("\n12 Mbit/s frame via the bit-true FFT64 datapath: %d "
                "errors\n", errors);

    // Prove the golden fixed FFT equals the array execution for the
    // first DATA symbol.
    std::array<CplxI, 64> body{};
    const std::size_t pos = res.frame_start + 2 * 64 + 80 + 16;  // skip SIGNAL
    for (int i = 0; i < 64; ++i) {
      const CplxF v = rx[pos + static_cast<std::size_t>(i)];
      body[static_cast<std::size_t>(i)] = {
          saturate(static_cast<std::int64_t>(std::lround(v.real() * 511.0)),
                   10),
          saturate(static_cast<std::int64_t>(std::lround(v.imag() * 511.0)),
                   10)};
    }
    xpp::ConfigurationManager mgr;
    const auto mapped = ofdm::maps::run_fft64(mgr, body);
    const auto golden = phy::fft64_fixed(body);
    std::printf("array FFT64 == golden fixed-point: %s\n",
                mapped == golden ? "yes (bit-exact)" : "NO");
  }
  return 0;
}

// Example: UMTS/W-CDMA soft handover with the full rake receiver.
//
// Three basestations (distinct scrambling codes) transmit the same
// dedicated channel; each arrives over its own multipath channel.  The
// receiver runs pilot acquisition, channel estimation and combining
// exactly as in paper §3.1, then the reconfigurable-array datapath
// (Figures 5-7) reproduces one finger bit-exactly.
#include <cstdio>

#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/umts_tx.hpp"
#include "src/rake/maps.hpp"
#include "src/rake/receiver.hpp"

int main() {
  using namespace rsp;
  Rng rng(2026);

  // --- transmit side: 3 basestations, same DCH data (soft handover) --
  std::vector<std::uint8_t> data(256);
  for (auto& b : data) b = rng.bit() ? 1 : 0;

  const int sf = 64;
  const int code_index = 3;
  std::vector<std::vector<CplxF>> streams;
  rake::RakeConfig rx_cfg;
  const int n_chips = sf * 128;
  for (int b = 0; b < 3; ++b) {
    phy::BasestationConfig bs;
    bs.scrambling_code = 16u * static_cast<std::uint32_t>(b + 1);
    bs.cpich_gain = 0.5;
    phy::DpchConfig ch;
    ch.sf = sf;
    ch.code_index = code_index;
    ch.gain = 0.7;
    ch.bits = data;
    bs.channels.push_back(ch);
    phy::UmtsDownlinkTx tx(bs);
    // Each basestation has its own multipath profile.
    phy::MultipathChannel mp({{4 * b + 2, {0.7, 0.1}, 0.0},
                              {4 * b + 11, {0.0, 0.45}, 0.0}},
                             dedhw::kChipRateHz);
    streams.push_back(mp.run(tx.generate(n_chips)[0], 60.0, rng));
    rx_cfg.scrambling_codes.push_back(bs.scrambling_code);
  }
  auto rx = phy::combine_basestations(streams);
  rx = phy::awgn(rx, 6.0, rng);  // noisy cell border

  // --- receive side: acquisition + rake combining ---
  rx_cfg.sf = sf;
  rx_cfg.code_index = code_index;
  rx_cfg.paths_per_bs = 2;
  rx_cfg.pilot_amplitude = 0.5;
  rake::RakeReceiver receiver(rx_cfg);
  dsp::DspModel dsp;
  const auto out = receiver.receive(rx, &dsp);

  std::printf("soft handover: %zu fingers assigned\n", out.fingers.size());
  for (const auto& f : out.fingers) {
    std::printf("  BS %d  delay %3d chips  |h| = %.2f\n", f.basestation,
                f.delay, std::abs(f.channel.h1));
  }

  int errors = 0;
  for (std::size_t i = 0; i < out.bits.size(); ++i) {
    errors += (out.bits[i] != data[i % data.size()]) ? 1 : 0;
  }
  std::printf("decoded %zu bits, %d errors (BER %.4f)\n", out.bits.size(),
              errors,
              static_cast<double>(errors) /
                  static_cast<double>(out.bits.size()));

  std::printf("DSP load: %lld instructions across %zu control tasks\n",
              dsp.total_instructions(), dsp.tasks().size());

  // --- the same finger on the reconfigurable array (Figures 5-6) ---
  const auto& f0 = out.fingers.front();
  const auto rx_q = rake::quantize_chips(rx, rx_cfg.quant_scale);
  std::vector<CplxI> aligned(rx_q.begin() + f0.delay,
                             rx_q.begin() + f0.delay + sf * 32);
  dedhw::UmtsScrambler scr(
      rx_cfg.scrambling_codes[static_cast<std::size_t>(f0.basestation)]);
  std::vector<std::uint8_t> code2(aligned.size());
  for (auto& c : code2) c = scr.next2();

  xpp::ConfigurationManager mgr;
  const auto descr = rake::maps::run_descrambler(mgr, aligned, code2);
  const auto symbols = rake::maps::run_despreader(mgr, descr, sf, code_index);
  const auto golden =
      rake::despread(rake::descramble(aligned, code2), sf, code_index);
  std::printf("array-mapped finger (Figs 5-6): %zu symbols, bit-exact vs "
              "golden: %s\n",
              symbols.size(), symbols == golden ? "yes" : "NO");
  return 0;
}

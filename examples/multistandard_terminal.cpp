// Example: the multi-standard, multi-link terminal of the paper's
// thesis — UMTS rake reception and 802.11a OFDM decoding time-sliced
// over ONE reconfigurable array on the evaluation board (Figure 11).
//
// A population of terminals runs through the scenario farm: each user
// is one share-nothing task owning its own board, array and captures,
// seeded from Rng::split(kBaseSeed, user) so the whole fleet replays
// bit-identically at any thread count.
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/farm/farm.hpp"
#include "src/ofdm/golden.hpp"
#include "src/ofdm/maps.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/ofdm_tx.hpp"
#include "src/phy/umts_tx.hpp"
#include "src/rake/maps.hpp"
#include "src/rake/receiver.hpp"
#include "src/sdr/board.hpp"
#include "src/xpp/batch.hpp"
#include "src/xpp/builder.hpp"
#include "src/xpp/simd.hpp"

namespace {

using namespace rsp;

constexpr std::uint64_t kBaseSeed = 99;
constexpr std::size_t kUsers = 8;
constexpr int kRounds = 3;

/// Everything one simulated terminal produced (per-task result slot).
struct UserReport {
  int umts_errors = -1;
  int wlan_errors = -1;
  long long array_cycles = 0;
  double config_overhead = 0.0;
  int peak_alu_cells = 0;
  int sum_alu_cells = 0;
  long long dsp_instructions = 0;
};

/// One user's complete workload: build private captures, then run
/// UMTS + WLAN time-sliced over a private board for kRounds frames.
UserReport run_user(std::uint64_t seed) {
  Rng rng(seed);
  UserReport rep;

  // --- prepare one UMTS capture and one WLAN capture ---
  std::vector<std::uint8_t> umts_data(128);
  for (auto& b : umts_data) b = rng.bit() ? 1 : 0;
  phy::BasestationConfig bs;
  bs.scrambling_code = 16;
  bs.cpich_gain = 0.5;
  phy::DpchConfig dch;
  dch.sf = 64;
  dch.code_index = 3;
  dch.gain = 0.7;
  dch.bits = umts_data;
  bs.channels.push_back(dch);
  phy::UmtsDownlinkTx umts_tx(bs);
  auto umts_rx = phy::awgn(umts_tx.generate(64 * 64)[0], 14.0, rng);

  std::vector<std::uint8_t> wlan_psdu(400);
  for (auto& b : wlan_psdu) b = rng.bit() ? 1 : 0;
  phy::OfdmTransmitter wlan_tx;
  auto wlan_rx = wlan_tx.build_ppdu(wlan_psdu, 12);
  std::vector<CplxF> lead(150, CplxF{0, 0});
  wlan_rx.insert(wlan_rx.begin(), lead.begin(), lead.end());
  wlan_rx = phy::awgn(wlan_rx, 26.0, rng);

  // --- the board: uC + DSP + FPGA + one XPP array (private to the
  // task; the cycle simulator is single-threaded per instance) ---
  sdr::SdrBoard board;
  sdr::TimeSlicer slicer(board.array());

  for (int frame = 0; frame < kRounds; ++frame) {
    // UMTS slice: acquisition on the DSP, finger datapath on the array.
    slicer.slice("UMTS", [&](xpp::ConfigurationManager& mgr) {
      rake::RakeConfig cfg;
      cfg.scrambling_codes = {16};
      cfg.sf = 64;
      cfg.code_index = 3;
      cfg.paths_per_bs = 1;
      cfg.pilot_amplitude = 0.5;
      rake::RakeReceiver receiver(cfg);
      const auto fingers = receiver.acquire(umts_rx, &board.dsp());
      if (fingers.empty()) return;
      // Finger datapath on the array (Figures 5-6).
      const auto rx_q = rake::quantize_chips(umts_rx, cfg.quant_scale);
      const int delay = fingers[0].delay;
      const std::size_t n = 64u * 48u;
      std::vector<CplxI> aligned(
          rx_q.begin() + delay,
          rx_q.begin() + delay + static_cast<std::ptrdiff_t>(n));
      dedhw::UmtsScrambler scr(16);
      std::vector<std::uint8_t> code2(n);
      for (auto& c : code2) c = scr.next2();
      board.fpga_route(static_cast<long long>(n));
      const auto d = rake::maps::run_descrambler(mgr, aligned, code2);
      const auto symbols = rake::maps::run_despreader(mgr, d, 64, 3);
      rake::CorrectorWeights w;
      w.conj_h1 = rake::quantize_weight(std::conj(fingers[0].channel.h1));
      const auto corrected = rake::maps::run_chancorr(mgr, symbols, w);
      const auto bits = rake::qpsk_slice(corrected);
      rep.umts_errors = 0;
      for (std::size_t i = 0; i < bits.size(); ++i) {
        rep.umts_errors += (bits[i] != umts_data[i % umts_data.size()]) ? 1 : 0;
      }
    });

    // WLAN slice: sync/estimation on DSP, FFT64 on the array.
    slicer.slice("WLAN", [&](xpp::ConfigurationManager& mgr) {
      ofdm::OfdmRxConfig cfg;
      cfg.mbps = 12;
      cfg.use_fixed_fft = true;
      ofdm::OfdmReceiver receiver(cfg);
      const auto res = receiver.receive(wlan_rx, wlan_psdu.size(),
                                        &board.dsp());
      if (res.preamble_found && res.psdu.size() == wlan_psdu.size()) {
        rep.wlan_errors = 0;
        for (std::size_t i = 0; i < wlan_psdu.size(); ++i) {
          rep.wlan_errors += (res.psdu[i] != wlan_psdu[i]) ? 1 : 0;
        }
      }
      // One symbol's FFT on the actual array fabric.
      std::array<CplxI, 64> body{};
      const std::size_t pos = res.frame_start + 2 * 64 + 80 + 16;  // skip SIGNAL
      for (int i = 0; i < 64; ++i) {
        const CplxF v = wlan_rx[pos + static_cast<std::size_t>(i)];
        body[static_cast<std::size_t>(i)] = {
            saturate(static_cast<std::int64_t>(std::lround(v.real() * 511.0)),
                     10),
            saturate(static_cast<std::int64_t>(std::lround(v.imag() * 511.0)),
                     10)};
      }
      board.fpga_route(64);
      (void)ofdm::maps::run_fft64(mgr, body);
    });
    board.microcontroller().charge("scheduler", dsp::DspOp::kBranch, 40);
  }

  rep.array_cycles = slicer.total_cycles();
  rep.config_overhead = slicer.config_overhead();
  rep.peak_alu_cells = slicer.peak_alu_cells();
  rep.sum_alu_cells = slicer.sum_alu_cells();
  rep.dsp_instructions = board.dsp().total_instructions();
  return rep;
}

// ---------------------------------------------------------------------------
// Act two: a cell of IDENTICAL terminals.  When every user runs the
// same configuration (here: the UMTS descrambler stream), the farm's
// batched task kind groups them into lane sets that replay ONE
// compiled epoch program in lockstep SoA form — the software analogue
// of the paper's "one fabric amortized across many users".
// ---------------------------------------------------------------------------

constexpr std::size_t kFleet = 16;
constexpr std::size_t kFleetChips = 4096;

class DescramblerTerminal final : public farm::BatchedTrial {
 public:
  explicit DescramblerTerminal(std::uint64_t seed)
      : mgr_({}, xpp::SchedulerKind::kCompiled) {
    id_ = mgr_.load(rake::maps::descrambler_config());
    Rng rng(seed);
    std::vector<CplxI> chips(kFleetChips);
    for (auto& c : chips) {
      c = {static_cast<int>(rng.below(2000)) - 1000,
           static_cast<int>(rng.below(2000)) - 1000};
    }
    data_ = rake::maps::pack_stream(chips);
    dedhw::UmtsScrambler scr(16);
    code_.resize(kFleetChips);
    for (auto& c : code_) c = scr.next2() & 3;
  }

  xpp::Simulator& sim() override { return mgr_.sim(); }

  long long next_cycles() override {
    if (fed_) return 0;
    fed_ = true;
    mgr_.input(id_, "data").feed(data_);
    mgr_.input(id_, "code").feed(code_);
    return static_cast<long long>(kFleetChips) + 256;
  }

  farm::TrialResult finish() override {
    farm::TrialResult r;
    const auto out = mgr_.output(id_, "out").take();
    r.bits = 2 * out.size();
    r.frames = 1;
    r.frame_errors = out.size() == kFleetChips ? 0 : 1;
    return r;
  }

 private:
  xpp::ConfigurationManager mgr_;
  xpp::ConfigId id_ = xpp::kNoConfig;
  std::vector<xpp::Word> data_, code_;
  bool fed_ = false;
};

void run_fleet_lockstep() {
  farm::BatchedTaskSpec spec;
  spec.width = xpp::simd::native_lane_width();
  spec.config_crc = xpp::config_crc32(rake::maps::descrambler_config());
  xpp::BatchProgramCache cache;
  spec.cache = &cache;
  farm::ScenarioFarm f;
  const auto res = f.run_batched(
      kFleet, kBaseSeed,
      [](std::uint64_t seed, std::size_t) {
        return std::make_unique<DescramblerTerminal>(seed);
      },
      spec);
  const long long total =
      res.batch.batched_cycles + res.batch.scalar_cycles;
  std::printf("lockstep fleet (%zu identical terminals, %s lanes x%d):\n",
              kFleet, xpp::simd::isa_name(), spec.width);
  std::printf("  chips descrambled:  %llu (all frames %s)\n",
              static_cast<unsigned long long>(res.result.agg.total().bits / 2),
              res.result.agg.total().frame_errors == 0 ? "complete"
                                                       : "INCOMPLETE");
  std::printf("  lane-cycles in lockstep: %lld of %lld (%.0f %%)\n",
              res.batch.batched_cycles, total,
              total > 0 ? 100.0 * static_cast<double>(res.batch.batched_cycles)
                              / static_cast<double>(total)
                        : 0.0);
  std::printf("  programs compiled:  %lld insert(s) for the whole fleet\n",
              static_cast<long long>(cache.stats().inserts));
}

}  // namespace

int main() {
  // Per-user detail lands in a distinct slot per task (share-nothing);
  // the farm aggregates the link-level counts.
  std::vector<UserReport> users(kUsers);
  farm::ScenarioFarm f;
  const auto res =
      f.run(kUsers, kBaseSeed, [&](std::uint64_t seed, std::size_t index) {
        users[index] = run_user(seed);
        const UserReport& u = users[index];
        farm::TrialResult r;
        r.frames = 2 * kRounds;  // one UMTS + one WLAN link per round
        r.bits = 128 + 400;
        r.bit_errors = static_cast<std::uint64_t>(
            (u.umts_errors > 0 ? u.umts_errors : 0) +
            (u.wlan_errors > 0 ? u.wlan_errors : 0));
        r.frame_errors = (u.umts_errors != 0 ? 1u : 0u) +
                         (u.wlan_errors != 0 ? 1u : 0u);
        return r;
      });

  std::printf("multi-standard terminal farm: %zu users x %d rounds of time "
              "slicing (%d threads)\n",
              kUsers, kRounds, f.threads());
  for (std::size_t u = 0; u < kUsers; ++u) {
    std::printf(
        "  user %zu: UMTS err %d, WLAN err %d, array cycles %lld, "
        "reconfig %.1f %%\n",
        u, users[u].umts_errors, users[u].wlan_errors, users[u].array_cycles,
        100.0 * users[u].config_overhead);
  }
  const UserReport& u0 = users[0];
  std::printf("per-terminal array sharing (user 0):\n");
  std::printf("  peak ALU cells (shared array):     %d\n", u0.peak_alu_cells);
  std::printf("  sum of protocol peaks (dedicated): %d\n", u0.sum_alu_cells);
  std::printf("  DSP instructions:                  %lld\n",
              u0.dsp_instructions);
  std::printf("fleet aggregate:\n");
  std::printf("  links attempted:   %llu\n",
              static_cast<unsigned long long>(res.agg.total().frames));
  std::printf("  links in error:    %llu\n",
              static_cast<unsigned long long>(res.agg.total().frame_errors));
  std::printf("  payload bit errors: %llu of %llu bits\n",
              static_cast<unsigned long long>(res.agg.total().bit_errors),
              static_cast<unsigned long long>(res.agg.total().bits));
  std::printf("  throughput:        %.1f links/s\n", res.frames_per_second());

  run_fleet_lockstep();
  return 0;
}

// Quickstart: program the reconfigurable array in five minutes.
//
// Builds a small software-defined datapath — a 4-tap moving-average
// filter on packed complex samples — loads it through the
// configuration manager, streams samples, and prints the result along
// with the resources the configuration occupies.
//
//   filter:  in -> CMULS(x 1/1) -> CACCUM(dump every 4, >>2) -> out
//
// Everything the paper calls "software-defined" happens here: the
// datapath is a value (Configuration), placement/routing happen at
// load time, and the same binary could load a completely different
// datapath next.
#include <cstdio>

#include "src/common/cplx.hpp"
#include "src/xpp/builder.hpp"
#include "src/xpp/nml.hpp"
#include "src/xpp/runner.hpp"

int main() {
  using namespace rsp;
  using namespace rsp::xpp;

  // 1. Describe the datapath (the "annotated C" stage of Figure 3).
  ConfigBuilder b("moving_average");
  const auto in = b.input("in");
  const auto cnt = b.counter("cnt", {0, 1, 4});          // dump every 4th
  const auto acc = b.alu_shift("acc", Opcode::kCAccum, 2);  // sum/4
  const auto out = b.output("out");
  b.connect(in.out(0), acc.in(0));
  b.connect(cnt.out(1), acc.in(1));
  b.connect(acc.out(0), out.in(0));
  const Configuration cfg = b.build();

  // 2. The structural hand-off format (NML subset) is plain text:
  std::printf("--- NML ---\n%s-----------\n", to_nml(cfg).c_str());

  // 3. Load onto an XPP-64A-shaped array and stream samples.
  ConfigurationManager mgr;

  std::vector<Word> samples;
  for (int i = 0; i < 16; ++i) {
    samples.push_back(pack_cplx({100 * (i + 1), -50 * (i + 1)}));
  }
  const auto r = run_config(mgr, cfg, {{"in", samples}}, {{"out", 4}});

  // 4. Results + resource report.
  std::printf("4-sample complex averages:\n");
  for (const auto w : r.outputs.at("out")) {
    const CplxI z = unpack_cplx(w);
    std::printf("  (%d, %d)\n", z.re, z.im);
  }
  std::printf("\nresources: %d ALU-PAEs, %d RAM-PAEs, %d I/O channels, "
              "%d routing segments\n",
              r.info.alu_cells, r.info.ram_cells, r.info.io_channels,
              r.info.routing_segments);
  std::printf("configuration time: %lld cycles; execution: %lld cycles\n",
              r.load_cycles, r.cycles);

  // 5. Per-object utilization (run once more, keeping the config
  // loaded so the statistics stay accessible).
  const ConfigId id = mgr.load(cfg);
  mgr.input(id, "in").feed(samples);
  const StallReport run = mgr.sim().run_until_quiescent(10000);
  std::printf("\n%s\n", run.to_string().c_str());
  std::printf("\nutilization:\n%s",
              mgr.sim().utilization_report(mgr.info(id).group).c_str());
  mgr.release(id);
  return 0;
}

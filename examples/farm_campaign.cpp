// Resilient Monte-Carlo campaign CLI: deadlines, retries, quarantine
// and checkpoint/resume from the command line.
//
// This is the process scripts/check.sh SIGKILLs mid-run and resumes:
// the final "AGG ..." line of a resumed campaign must be byte-identical
// to the one an uninterrupted run prints.
//
//   farm_campaign --tasks 400 --seed 7 --checkpoint ck.bin --every 16
//   farm_campaign --tasks 400 --seed 7 --checkpoint ck.bin --resume
//
// Each trial is a pure function of Rng::split(seed, index): it runs the
// Figure 5 descrambler datapath over seed-derived chips and counts the
// bits it produced.  --trial-us adds busy-wait per trial so a campaign
// lives long enough to be killed; --poison quarantines one index
// deterministically (exercising the quarantine path end to end).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/farm/resilient.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/manager.hpp"

namespace {

rsp::farm::TrialResult descrambler_trial(std::uint64_t seed,
                                         long long trial_us) {
  using namespace rsp;
  if (trial_us > 0) {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(trial_us);
    while (std::chrono::steady_clock::now() < until) {
    }
  }
  xpp::ConfigurationManager mgr({}, xpp::SchedulerKind::kEventDriven);
  const xpp::ConfigId id = mgr.load(rake::maps::descrambler_config());
  Rng rng(seed);
  std::vector<xpp::Word> data(96), code(96);
  for (auto& w : data) w = rng.below(1u << 16);
  for (auto& w : code) w = rng.below(4);
  mgr.input(id, "data").feed(data);
  mgr.input(id, "code").feed(code);
  auto& out = mgr.output(id, "out");
  for (int guard = 0; guard < 5000 && out.data().size() < 96; ++guard) {
    mgr.sim().step();
  }
  const auto words = out.take();
  farm::TrialResult r;
  r.bits = 24 * words.size();
  r.frames = 1;
  // A seed-derived "error" count keeps the aggregate non-trivial.
  r.bit_errors = rng.below(4);
  r.frame_errors = r.bit_errors > 2 ? 1 : 0;
  return r;
}

long long arg_ll(int argc, char** argv, const char* name, long long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

const char* arg_str(int argc, char** argv, const char* name,
                    const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

bool arg_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsp;

  const auto n_tasks =
      static_cast<std::size_t>(arg_ll(argc, argv, "--tasks", 64));
  const auto seed = static_cast<std::uint64_t>(arg_ll(argc, argv, "--seed", 1));
  const long long trial_us = arg_ll(argc, argv, "--trial-us", 0);
  const long long poison = arg_ll(argc, argv, "--poison", -1);

  farm::ResilientOptions opts;
  opts.farm.threads = static_cast<int>(arg_ll(argc, argv, "--threads", 0));
  opts.max_attempts = static_cast<int>(arg_ll(argc, argv, "--attempts", 2));
  opts.deadline_seconds = static_cast<double>(
      arg_ll(argc, argv, "--deadline-ms", 0)) / 1000.0;
  opts.checkpoint_path = arg_str(argc, argv, "--checkpoint", "");
  opts.checkpoint_every =
      static_cast<std::size_t>(arg_ll(argc, argv, "--every", 0));
  opts.resume = arg_flag(argc, argv, "--resume");
  opts.tag = arg_str(argc, argv, "--tag", "farm-campaign-example");

  try {
    const farm::ResilientResult res = farm::run_resilient(
        n_tasks, seed,
        [&](std::uint64_t task_seed, std::size_t index) {
          if (poison >= 0 && index == static_cast<std::size_t>(poison)) {
            throw std::runtime_error("poisoned task (--poison)");
          }
          return descrambler_trial(task_seed, trial_us);
        },
        opts);

    std::fputs(res.report().c_str(), stdout);
    const farm::TrialResult& t = res.result.agg.total();
    // The canonical machine-checkable line: bit-identical across thread
    // counts, kills and resumes (asserted by scripts/check.sh).
    std::printf("AGG %llu %llu %llu %llu\n",
                static_cast<unsigned long long>(t.bits),
                static_cast<unsigned long long>(t.bit_errors),
                static_cast<unsigned long long>(t.frames),
                static_cast<unsigned long long>(t.frame_errors));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "farm_campaign: %s\n", e.what());
    return 1;
  }
}

// UMTS transport-channel chain: CRC + K=9 coding + interleaving over
// the full rake link.
#include "src/rake/transport.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/umts_tx.hpp"
#include "src/rake/receiver.hpp"

namespace rsp::rake {
namespace {

std::vector<std::uint8_t> random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  return bits;
}

TEST(BlockInterleaver, RoundTrip) {
  const auto bits = random_bits(301, 1);  // deliberately not a multiple
  for (const int cols : {1, 8, 32, 50}) {
    EXPECT_EQ(block_deinterleave(block_interleave(bits, cols), cols), bits)
        << "cols " << cols;
  }
}

TEST(BlockInterleaver, SpreadsAdjacentBits) {
  std::vector<std::uint8_t> probe(256, 0);
  probe[100] = 1;
  probe[101] = 1;
  const auto il = block_interleave(probe, 32);
  int first = -1;
  int second = -1;
  for (int i = 0; i < 256; ++i) {
    if (il[static_cast<std::size_t>(i)]) {
      if (first < 0) {
        first = i;
      } else {
        second = i;
      }
    }
  }
  EXPECT_GE(std::abs(second - first), 8)
      << "adjacent coded bits must land far apart";
}

TEST(Transport, CleanRoundTrip) {
  const auto payload = random_bits(148, 2);
  TransportEncoder enc;
  const auto coded = enc.encode(payload);
  EXPECT_EQ(coded.size(), enc.coded_length(payload.size()));
  std::vector<std::int32_t> soft(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) soft[i] = coded[i] ? 100 : -100;
  TransportDecoder dec;
  const auto res = dec.decode(soft, payload.size());
  EXPECT_TRUE(res.crc_ok);
  EXPECT_EQ(res.payload, payload);
}

TEST(Transport, CrcCatchesResidualErrors) {
  const auto payload = random_bits(96, 3);
  TransportEncoder enc;
  const auto coded = enc.encode(payload);
  // Erase half the soft values and flip many others: force decoder
  // failure and verify the CRC flags it.
  std::vector<std::int32_t> soft(coded.size());
  Rng rng(4);
  for (std::size_t i = 0; i < coded.size(); ++i) {
    const double y = (coded[i] ? 1.0 : -1.0) + 2.5 * rng.gaussian();
    soft[i] = static_cast<std::int32_t>(y * 32.0);
  }
  TransportDecoder dec;
  const auto res = dec.decode(soft, payload.size());
  if (res.payload != payload) {
    EXPECT_FALSE(res.crc_ok) << "CRC must flag a corrupted block";
  }
}

TEST(Transport, FullRakeLinkDeliversCrcCleanBlocks) {
  // Transport block -> DPCH bits -> spread/scramble -> multipath ->
  // rake -> soft bits -> transport decoder.
  const auto payload = random_bits(200, 5);
  TransportEncoder enc;
  const auto dpch_bits = enc.encode(payload);

  Rng rng(6);
  phy::BasestationConfig bs;
  bs.scrambling_code = 16;
  bs.cpich_gain = 0.5;
  phy::DpchConfig ch;
  ch.sf = 64;
  ch.code_index = 3;
  ch.gain = 0.7;
  ch.bits = dpch_bits;
  if (ch.bits.size() % 2 != 0) ch.bits.push_back(0);
  bs.channels.push_back(ch);
  phy::UmtsDownlinkTx tx(bs);
  const int n_symbols_needed = static_cast<int>(ch.bits.size() / 2);
  const auto chips = tx.generate(64 * (n_symbols_needed + 8))[0];
  phy::MultipathChannel mp({{3, {0.7, 0.1}, 0.0}, {11, {0.0, 0.5}, 0.0}},
                           3.84e6);
  // SF 64 buys ~18 dB processing gain, so stress the chip-level Es/N0
  // hard enough that post-despreading symbols still err (~1% raw BER).
  const auto rx = mp.run(chips, -14.0, rng);

  RakeConfig cfg;
  cfg.scrambling_codes = {16};
  cfg.sf = 64;
  cfg.code_index = 3;
  cfg.paths_per_bs = 2;
  cfg.pilot_amplitude = 0.5;
  RakeReceiver receiver(cfg);
  const auto out = receiver.receive(rx);
  ASSERT_GE(out.combined.size(), static_cast<std::size_t>(n_symbols_needed));

  std::vector<CplxI> symbols(out.combined.begin(),
                             out.combined.begin() + n_symbols_needed);
  TransportDecoder dec;
  const auto res = dec.decode_symbols(symbols, payload.size());
  EXPECT_TRUE(res.crc_ok)
      << "K=9 coding must clean up the raw rake errors at -14 dB";
  EXPECT_EQ(res.payload, payload);

  // Contrast: raw (uncoded) hard decisions at this Es/N0 do err.
  int raw_errors = 0;
  const auto hard = qpsk_slice(symbols);
  for (std::size_t i = 0; i < dpch_bits.size(); ++i) {
    raw_errors += (hard[i] != dpch_bits[i]) ? 1 : 0;
  }
  EXPECT_GT(raw_errors, 0) << "channel must actually stress the link";
}

TEST(Transport, SoftBitsFollowQpskConvention) {
  // Transmitted bit 0 -> positive component -> negative LLR.
  const std::vector<CplxI> symbols = {{500, -500}};
  const auto soft = qpsk_soft_bits(symbols);
  ASSERT_EQ(soft.size(), 2u);
  EXPECT_LT(soft[0], 0) << "I > 0 means bit 0";
  EXPECT_GT(soft[1], 0) << "Q < 0 means bit 1";
}

}  // namespace
}  // namespace rsp::rake

// Multi-DCH reception (Table 1's channels axis) — two dedicated
// channels per basestation decoded from one acquisition.
#include "src/rake/multidch.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/umts_tx.hpp"
#include "src/rake/scenario.hpp"

namespace rsp::rake {
namespace {

struct TwoDchLink {
  std::vector<CplxF> rx;
  std::vector<std::uint8_t> data_a;
  std::vector<std::uint8_t> data_b;
  RakeConfig base;
};

TwoDchLink make_link(int n_bs, std::uint64_t seed) {
  TwoDchLink l;
  Rng rng(seed);
  l.data_a.resize(128);
  l.data_b.resize(128);
  for (auto& b : l.data_a) b = rng.bit() ? 1 : 0;
  for (auto& b : l.data_b) b = rng.bit() ? 1 : 0;
  std::vector<std::vector<CplxF>> streams;
  const int n_chips = 64 * 96;
  for (int b = 0; b < n_bs; ++b) {
    phy::BasestationConfig bs;
    bs.scrambling_code = 16u * static_cast<std::uint32_t>(b + 1);
    bs.cpich_gain = 0.5;
    phy::DpchConfig a;
    a.sf = 64;
    a.code_index = 3;
    a.gain = 0.6;
    a.bits = l.data_a;
    phy::DpchConfig bch;
    bch.sf = 32;
    bch.code_index = 9;
    bch.gain = 0.6;
    bch.bits = l.data_b;
    bs.channels = {a, bch};
    phy::UmtsDownlinkTx tx(bs);
    phy::MultipathChannel mp({{3 * b + 2, {0.75, 0.05}, 0.0}}, 3.84e6);
    streams.push_back(mp.run(tx.generate(n_chips)[0], 60.0, rng));
    l.base.scrambling_codes.push_back(bs.scrambling_code);
  }
  l.rx = phy::combine_basestations(streams);
  Rng nrng(seed + 1);
  l.rx = phy::awgn(l.rx, 10.0, nrng);
  l.base.paths_per_bs = 1;
  l.base.pilot_amplitude = 0.5;
  return l;
}

int errors(const std::vector<std::uint8_t>& tx,
           const std::vector<std::uint8_t>& rx) {
  int e = 0;
  for (std::size_t i = 0; i < rx.size(); ++i) {
    e += (rx[i] != tx[i % tx.size()]) ? 1 : 0;
  }
  return e;
}

TEST(MultiDch, DecodesBothChannelsSingleBs) {
  const auto l = make_link(1, 3);
  MultiDchReceiver receiver(l.base, {{64, 3, false}, {32, 9, false}});
  const auto out = receiver.receive(l.rx);
  ASSERT_EQ(out.per_channel.size(), 2u);
  ASSERT_GE(out.fingers.size(), 1u);
  EXPECT_EQ(errors(l.data_a, out.per_channel[0].bits), 0);
  EXPECT_EQ(errors(l.data_b, out.per_channel[1].bits), 0);
  EXPECT_EQ(out.virtual_fingers(),
            static_cast<int>(out.fingers.size()) * 2);
}

TEST(MultiDch, SoftHandoverTwoDch) {
  // A Table 1 two-DCH scenario: 3 BTS x 2 DCH x 1 path = 6 fingers.
  const auto l = make_link(3, 5);
  MultiDchReceiver receiver(l.base, {{64, 3, false}, {32, 9, false}});
  const auto out = receiver.receive(l.rx);
  EXPECT_EQ(out.fingers.size(), 3u);
  EXPECT_EQ(out.virtual_fingers(), 6);
  EXPECT_EQ(errors(l.data_a, out.per_channel[0].bits), 0);
  EXPECT_EQ(errors(l.data_b, out.per_channel[1].bits), 0);
  // The scenario accounting matches Table 1.
  const FingerScenario s{3, 2, 1};
  EXPECT_EQ(out.virtual_fingers(), s.virtual_fingers());
  EXPECT_TRUE(s.feasible());
}

TEST(MultiDch, SharedAcquisitionChargesSearchOnce) {
  const auto l = make_link(2, 7);
  dsp::DspModel once;
  MultiDchReceiver multi(l.base, {{64, 3, false}, {32, 9, false}});
  (void)multi.receive(l.rx, &once);

  dsp::DspModel twice;
  RakeConfig c1 = l.base;
  c1.sf = 64;
  c1.code_index = 3;
  RakeConfig c2 = l.base;
  c2.sf = 32;
  c2.code_index = 9;
  (void)RakeReceiver(c1).receive(l.rx, &twice);
  (void)RakeReceiver(c2).receive(l.rx, &twice);

  EXPECT_LT(once.tasks().at("path_search").instructions,
            twice.tasks().at("path_search").instructions)
      << "shared acquisition must halve the search load";
}

TEST(MultiDch, RejectsBadConfig) {
  RakeConfig base;
  base.scrambling_codes = {16};
  EXPECT_THROW(MultiDchReceiver(base, {}), std::invalid_argument);
  EXPECT_THROW(MultiDchReceiver(base, {{5, 0, false}}), std::invalid_argument);
}

}  // namespace
}  // namespace rsp::rake

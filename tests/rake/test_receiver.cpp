#include "src/rake/receiver.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/umts_tx.hpp"

namespace rsp::rake {
namespace {

struct LinkSetup {
  std::vector<phy::UmtsDownlinkTx> txs;
  std::vector<std::vector<std::uint8_t>> tx_bits;  // per basestation
  RakeConfig cfg;
};

LinkSetup make_link(int n_bs, int sf, bool sttd, std::uint64_t seed) {
  LinkSetup ls;
  Rng rng(seed);
  for (int b = 0; b < n_bs; ++b) {
    phy::BasestationConfig bs;
    bs.scrambling_code = 16u * static_cast<std::uint32_t>(b + 1);
    bs.cpich_gain = 0.5;
    phy::DpchConfig ch;
    ch.sf = sf;
    ch.code_index = 3;
    ch.gain = 0.7;
    ch.sttd = sttd;
    ch.bits.resize(256);
    if (b == 0) {
      for (auto& bit : ch.bits) bit = rng.bit() ? 1 : 0;
    } else {
      // Soft handover: every basestation transmits the same DCH data.
      ch.bits = ls.tx_bits[0];
    }
    if (b == 0) ls.tx_bits.push_back(ch.bits);
    bs.channels.push_back(ch);
    ls.txs.emplace_back(std::move(bs));
    ls.cfg.scrambling_codes.push_back(16u * static_cast<std::uint32_t>(b + 1));
  }
  ls.cfg.sf = sf;
  ls.cfg.code_index = 3;
  ls.cfg.sttd = sttd;
  ls.cfg.pilot_amplitude = 0.5;
  return ls;
}

int count_bit_errors(const std::vector<std::uint8_t>& tx_bits,
                     const std::vector<std::uint8_t>& rx_bits) {
  int errors = 0;
  for (std::size_t i = 0; i < rx_bits.size(); ++i) {
    errors += (rx_bits[i] != tx_bits[i % tx_bits.size()]) ? 1 : 0;
  }
  return errors;
}

TEST(RakeReceiver, SingleBsSinglePathCleanLink) {
  auto ls = make_link(1, 64, false, 1);
  const auto chips = ls.txs[0].generate(64 * 64)[0];
  Rng rng(2);
  phy::MultipathChannel ch({{5, {0.95, 0.1}, 0.0}}, 3.84e6);
  const auto rx = ch.run(chips, 22.0, rng);
  ls.cfg.paths_per_bs = 1;
  RakeReceiver receiver(ls.cfg);
  const auto out = receiver.receive(rx);
  ASSERT_GE(out.fingers.size(), 1u);
  EXPECT_EQ(out.fingers[0].delay, 5);
  ASSERT_GT(out.bits.size(), 60u);
  EXPECT_EQ(count_bit_errors(ls.tx_bits[0], out.bits), 0);
}

TEST(RakeReceiver, MultipathCombiningBeatsSingleFinger) {
  auto ls = make_link(1, 64, false, 3);
  const auto chips = ls.txs[0].generate(64 * 128)[0];
  Rng rng(4);
  phy::MultipathChannel ch(
      {{2, {0.55, 0.0}, 0.0}, {9, {0.0, 0.5}, 0.0}, {17, {0.35, -0.35}, 0.0}},
      3.84e6);
  const auto rx = ch.run(chips, 4.0, rng);  // noisy link
  RakeReceiver receiver(ls.cfg);

  // Full rake (3 fingers).
  ls.cfg.paths_per_bs = 3;
  const auto full = RakeReceiver(ls.cfg).receive(rx);
  // Single-finger receiver on the same capture.
  ls.cfg.paths_per_bs = 1;
  const auto single = RakeReceiver(ls.cfg).receive(rx);

  const int err_full = count_bit_errors(ls.tx_bits[0], full.bits);
  const int err_single = count_bit_errors(ls.tx_bits[0], single.bits);
  EXPECT_LE(err_full, err_single)
      << "collecting multipath energy must not hurt";
  EXPECT_GE(full.fingers.size(), 2u);
}

TEST(RakeReceiver, SoftHandoverCombinesBasestations) {
  // Paper scenario: same data from multiple basestations with distinct
  // scrambling codes; the rake must lock onto each and combine.
  auto ls = make_link(3, 64, false, 5);
  std::vector<std::vector<CplxF>> streams;
  Rng rng(6);
  const int n_chips = 64 * 96;
  phy::MultipathChannel ch0({{3, {0.6, 0.0}, 0.0}}, 3.84e6);
  phy::MultipathChannel ch1({{11, {0.0, 0.55}, 0.0}}, 3.84e6);
  phy::MultipathChannel ch2({{27, {-0.4, 0.3}, 0.0}}, 3.84e6);
  streams.push_back(ch0.run(ls.txs[0].generate(n_chips)[0], 60.0, rng));
  streams.push_back(ch1.run(ls.txs[1].generate(n_chips)[0], 60.0, rng));
  streams.push_back(ch2.run(ls.txs[2].generate(n_chips)[0], 60.0, rng));
  auto rx = phy::combine_basestations(streams);
  Rng nrng(7);
  rx = phy::awgn(rx, 8.0, nrng);

  ls.cfg.paths_per_bs = 1;
  RakeReceiver receiver(ls.cfg);
  const auto out = receiver.receive(rx);
  EXPECT_EQ(out.fingers.size(), 3u) << "one finger per basestation";
  EXPECT_EQ(count_bit_errors(ls.tx_bits[0], out.bits), 0);
}

TEST(RakeReceiver, SttdDiversityDecodes) {
  auto ls = make_link(1, 64, true, 8);
  const auto streams = ls.txs[0].generate(64 * 64);
  const CplxF h1{0.75, 0.2};
  const CplxF h2{-0.3, 0.6};
  std::vector<CplxF> rx(streams[0].size());
  for (std::size_t i = 0; i < rx.size(); ++i) {
    rx[i] = h1 * streams[0][i] + h2 * streams[1][i];
  }
  Rng rng(9);
  rx = phy::awgn(rx, 18.0, rng);
  ls.cfg.paths_per_bs = 1;
  RakeReceiver receiver(ls.cfg);
  const auto out = receiver.receive(rx);
  ASSERT_GT(out.bits.size(), 50u);
  EXPECT_EQ(count_bit_errors(ls.tx_bits[0], out.bits), 0);
}

TEST(RakeReceiver, ChargesDspTasks) {
  auto ls = make_link(2, 64, false, 10);
  const int n_chips = 64 * 64;
  auto rx = phy::combine_basestations(
      {ls.txs[0].generate(n_chips)[0], ls.txs[1].generate(n_chips)[0]});
  Rng rng(11);
  rx = phy::awgn(rx, 15.0, rng);
  dsp::DspModel dsp;
  RakeReceiver receiver(ls.cfg);
  (void)receiver.receive(rx, &dsp);
  EXPECT_TRUE(dsp.tasks().count("path_search"));
  EXPECT_TRUE(dsp.tasks().count("channel_estimation"));
  EXPECT_TRUE(dsp.tasks().count("control_sync"));
}

TEST(RakeReceiver, RejectsBadConfig) {
  RakeConfig cfg;
  EXPECT_THROW(RakeReceiver{cfg}, std::invalid_argument);
  cfg.scrambling_codes = {16};
  cfg.sf = 5;
  EXPECT_THROW(RakeReceiver{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace rsp::rake

#include "src/rake/scenario.hpp"

#include <gtest/gtest.h>

namespace rsp::rake {
namespace {

TEST(Scenario, PaperMaximum) {
  // "18 (6x3) rake fingers ... 18 x 3.84 MHz = 69.12 MHz"
  const FingerScenario max{6, 1, 3};
  EXPECT_EQ(max.virtual_fingers(), 18);
  EXPECT_EQ(kMaxVirtualFingers, 18);
  EXPECT_NEAR(max.required_clock_hz(), 69.12e6, 1.0);
  EXPECT_NEAR(kMaxFingerClockHz, 69.12e6, 1.0);
  EXPECT_TRUE(max.feasible());
  EXPECT_TRUE(max.needs_full_clock());
}

TEST(Scenario, TwoChannelScenarios) {
  // 3 BTS x 2 DCH x 3 paths = 18 fingers, also the shaded maximum.
  const FingerScenario s{3, 2, 3};
  EXPECT_EQ(s.virtual_fingers(), 18);
  EXPECT_TRUE(s.needs_full_clock());
  // 6 BTS x 2 DCH x 3 paths exceeds the implementation.
  const FingerScenario over{6, 2, 3};
  EXPECT_EQ(over.virtual_fingers(), 36);
  EXPECT_FALSE(over.feasible());
}

TEST(Scenario, SingleFingerBaseline) {
  const FingerScenario s{1, 1, 1};
  EXPECT_EQ(s.virtual_fingers(), 1);
  EXPECT_NEAR(s.required_clock_hz(), 3.84e6, 1.0);
  EXPECT_TRUE(s.feasible());
  EXPECT_FALSE(s.needs_full_clock());
}

TEST(Scenario, Table1Enumeration) {
  const auto table = table1_scenarios();
  EXPECT_EQ(table.size(), 2u * 6u * 3u);
  int feasible = 0;
  int at_max = 0;
  for (const auto& s : table) {
    EXPECT_GE(s.basestations, 1);
    EXPECT_LE(s.basestations, 6);
    EXPECT_GE(s.multipaths, 1);
    EXPECT_LE(s.multipaths, 3);
    feasible += s.feasible() ? 1 : 0;
    at_max += s.needs_full_clock() ? 1 : 0;
    // Required clock is always fingers x chip rate.
    EXPECT_NEAR(s.required_clock_hz(),
                s.virtual_fingers() * 3.84e6, 1.0);
  }
  EXPECT_GT(feasible, 0);
  EXPECT_LT(feasible, static_cast<int>(table.size()))
      << "some 2-DCH scenarios must exceed the single finger";
  EXPECT_GE(at_max, 2) << "both 6x1x3 and 3x2x3 hit 69.12 MHz";
}

}  // namespace
}  // namespace rsp::rake

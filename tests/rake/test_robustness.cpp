// Failure injection / robustness: wrong codes, clipping, interference
// and signal-free input must degrade gracefully, never crash or
// produce false confidence.
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/umts_tx.hpp"
#include "src/rake/receiver.hpp"

namespace rsp::rake {
namespace {

struct Capture {
  std::vector<CplxF> rx;
  std::vector<std::uint8_t> data;
};

Capture make_capture(std::uint32_t code, double esn0_db, std::uint64_t seed,
                     double gain = 0.7) {
  Capture c;
  Rng rng(seed);
  phy::BasestationConfig bs;
  bs.scrambling_code = code;
  bs.cpich_gain = 0.5;
  phy::DpchConfig ch;
  ch.sf = 64;
  ch.code_index = 3;
  ch.gain = gain;
  ch.bits.resize(128);
  for (auto& b : ch.bits) b = rng.bit() ? 1 : 0;
  bs.channels.push_back(ch);
  c.data = ch.bits;
  phy::UmtsDownlinkTx tx(bs);
  c.rx = phy::awgn(tx.generate(64 * 96)[0], esn0_db, rng);
  return c;
}

RakeConfig base_cfg(std::uint32_t code) {
  RakeConfig cfg;
  cfg.scrambling_codes = {code};
  cfg.sf = 64;
  cfg.code_index = 3;
  cfg.paths_per_bs = 1;
  cfg.pilot_amplitude = 0.5;
  return cfg;
}

double ber(const Capture& c, const RakeOutput& out) {
  if (out.bits.empty()) return 0.5;
  int errors = 0;
  for (std::size_t i = 0; i < out.bits.size(); ++i) {
    errors += (out.bits[i] != c.data[i % c.data.size()]) ? 1 : 0;
  }
  return static_cast<double>(errors) / static_cast<double>(out.bits.size());
}

TEST(Robustness, WrongScramblingCodeSeesNoSignal) {
  const auto c = make_capture(16, 20.0, 1);
  // Search with the WRONG basestation code: the strongest correlation
  // must be far below what the right code sees.
  PathSearcher right(16, SearchParams{});
  PathSearcher wrong(48, SearchParams{});
  const auto good = right.search(c.rx, 1);
  const auto bad = wrong.search(c.rx, 1);
  ASSERT_FALSE(good.empty());
  ASSERT_FALSE(bad.empty());
  EXPECT_GT(good[0].energy, 20.0 * bad[0].energy)
      << "Gold-code isolation must hold";
}

TEST(Robustness, WrongCodeDecodesToGarbage) {
  const auto c = make_capture(16, 20.0, 2);
  auto cfg = base_cfg(48);  // wrong code
  RakeReceiver receiver(cfg);
  const auto out = receiver.receive(c.rx);
  if (!out.bits.empty()) {
    EXPECT_GT(ber(c, out), 0.30) << "wrong code must not decode the data";
  }
}

TEST(Robustness, ClippedFrontEndStillDecodes) {
  // A/D clipping: scale so the 12-bit quantizer saturates heavily.
  const auto c = make_capture(16, 18.0, 3);
  auto cfg = base_cfg(16);
  cfg.quant_scale = 4096.0;  // ~2 bits of clipping on peaks
  RakeReceiver receiver(cfg);
  const auto out = receiver.receive(c.rx);
  EXPECT_LT(ber(c, out), 0.01)
      << "QPSK decisions must survive front-end clipping";
}

TEST(Robustness, StrongInterfererDifferentCode) {
  // The wanted cell plus a 2x stronger interfering cell with another
  // scrambling code: Gold-code isolation + despreading gain must keep
  // the link clean at moderate Es/N0.
  Rng rng(4);
  auto want = make_capture(16, 100.0, 5);
  auto interf = make_capture(96, 100.0, 6, /*gain=*/0.7);
  std::vector<CplxF> rx(want.rx.size());
  for (std::size_t i = 0; i < rx.size(); ++i) {
    rx[i] = want.rx[i] + 2.0 * interf.rx[i];
  }
  rx = phy::awgn(rx, 12.0, rng);
  RakeReceiver receiver(base_cfg(16));
  const auto out = receiver.receive(rx);
  Capture c;
  c.data = want.data;
  EXPECT_LT(ber({rx, want.data}, out), 0.01);
}

TEST(Robustness, NoiseOnlyInputProducesWeakFingers) {
  Rng rng(7);
  std::vector<CplxF> noise(64 * 64, CplxF{0, 0});
  noise = phy::awgn(noise, 0.0, rng);
  PathSearcher searcher(16, SearchParams{});
  const auto paths = searcher.search(noise, 3);
  const auto sig = make_capture(16, 12.0, 8);
  PathSearcher same(16, SearchParams{});
  const auto real = same.search(sig.rx, 1);
  ASSERT_FALSE(real.empty());
  for (const auto& p : paths) {
    EXPECT_LT(p.energy, real[0].energy / 10.0)
        << "noise must not look like a path";
  }
}

TEST(Robustness, ShortCaptureHandledGracefully) {
  const auto c = make_capture(16, 20.0, 9);
  std::vector<CplxF> shorty(c.rx.begin(), c.rx.begin() + 700);
  RakeReceiver receiver(base_cfg(16));
  const auto out = receiver.receive(shorty);
  // A 700-chip capture holds ~10 symbols at SF 64 minus delay; the
  // receiver must return whatever is decodable without throwing.
  EXPECT_LE(out.bits.size(), 2u * 11u);
}

TEST(Robustness, EmptyAndTinyInputs) {
  RakeReceiver receiver(base_cfg(16));
  EXPECT_NO_THROW({
    const auto out = receiver.receive(std::vector<CplxF>{});
    EXPECT_TRUE(out.bits.empty());
  });
  EXPECT_NO_THROW({
    const auto out = receiver.receive(std::vector<CplxF>(10, CplxF{1, 0}));
    EXPECT_TRUE(out.bits.empty());
  });
}

}  // namespace
}  // namespace rsp::rake

#include "src/rake/agc.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/umts_tx.hpp"
#include "src/rake/receiver.hpp"

namespace rsp::rake {
namespace {

TEST(Agc, ScalesToTargetRms) {
  Rng rng(1);
  for (const double level : {0.001, 0.1, 1.0, 40.0}) {
    std::vector<CplxF> window(4096);
    for (auto& s : window) s = rng.cgaussian(level * level);
    Agc agc(256.0);
    const double scale = agc.scale_for(window);
    // After scaling, per-rail rms must hit the target.
    double p = 0.0;
    for (const auto& s : window) p += std::norm(s * scale);
    const double rms = std::sqrt(p / window.size() / 2.0);
    EXPECT_NEAR(rms, 256.0, 26.0) << "input level " << level;
  }
}

TEST(Agc, EmptyAndSilentWindowsSafe) {
  Agc agc;
  EXPECT_GT(agc.scale_for({}), 0.0);
  EXPECT_GT(agc.scale_for(std::vector<CplxF>(64, CplxF{0, 0})), 0.0);
}

TEST(Agc, RakeDecodesAcross60dBInputRange) {
  // Without AGC, a fixed quantizer scale fails at extreme input
  // levels; with AGC the same receiver decodes everywhere.
  for (const double level : {0.0003, 0.3, 30.0}) {
    Rng rng(7);
    phy::BasestationConfig bs;
    bs.scrambling_code = 16;
    bs.cpich_gain = 0.5;
    phy::DpchConfig ch;
    ch.sf = 64;
    ch.code_index = 3;
    ch.gain = 0.7;
    ch.bits.resize(128);
    for (auto& b : ch.bits) b = rng.bit() ? 1 : 0;
    bs.channels.push_back(ch);
    phy::UmtsDownlinkTx tx(bs);
    auto rx = phy::awgn(tx.generate(64 * 64)[0], 16.0, rng);
    for (auto& s : rx) s *= level;  // front-end gain variation

    RakeConfig cfg;
    cfg.scrambling_codes = {16};
    cfg.sf = 64;
    cfg.code_index = 3;
    cfg.paths_per_bs = 1;
    cfg.pilot_amplitude = 0.5 * level;  // pilot amplitude scales too
    Agc agc(256.0);
    cfg.quant_scale = agc.scale_for_prefix(rx, 2048);
    RakeReceiver receiver(cfg);
    const auto out = receiver.receive(rx);
    ASSERT_FALSE(out.bits.empty()) << "level " << level;
    int errors = 0;
    for (std::size_t i = 0; i < out.bits.size(); ++i) {
      errors += (out.bits[i] != ch.bits[i % ch.bits.size()]) ? 1 : 0;
    }
    EXPECT_EQ(errors, 0) << "level " << level;
  }
}

TEST(Agc, FixedScaleFailsWhereAgcSucceeds) {
  // Sanity that the test above is meaningful: at 0.0003x input level a
  // fixed 256 scale quantizes the signal to zero and decoding
  // degrades.
  Rng rng(9);
  phy::BasestationConfig bs;
  bs.scrambling_code = 16;
  bs.cpich_gain = 0.5;
  phy::DpchConfig ch;
  ch.sf = 64;
  ch.code_index = 3;
  ch.gain = 0.7;
  ch.bits.resize(128);
  for (auto& b : ch.bits) b = rng.bit() ? 1 : 0;
  bs.channels.push_back(ch);
  phy::UmtsDownlinkTx tx(bs);
  auto rx = phy::awgn(tx.generate(64 * 64)[0], 8.0, rng);
  for (auto& s : rx) s *= 0.0003;

  RakeConfig cfg;
  cfg.scrambling_codes = {16};
  cfg.sf = 64;
  cfg.code_index = 3;
  cfg.paths_per_bs = 1;
  cfg.pilot_amplitude = 0.5 * 0.0003;
  cfg.quant_scale = 256.0;  // fixed, no AGC
  RakeReceiver receiver(cfg);
  const auto out = receiver.receive(rx);
  int errors = 0;
  for (std::size_t i = 0; i < out.bits.size(); ++i) {
    errors += (out.bits[i] != ch.bits[i % ch.bits.size()]) ? 1 : 0;
  }
  EXPECT_GT(errors + static_cast<int>(out.bits.empty() ? 1 : 0), 0)
      << "under-ranged quantizer must actually hurt";
}

}  // namespace
}  // namespace rsp::rake

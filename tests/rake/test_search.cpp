#include "src/rake/search.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/umts_tx.hpp"

namespace rsp::rake {
namespace {

phy::UmtsDownlinkTx make_tx(std::uint32_t code, std::uint64_t seed) {
  Rng rng(seed);
  phy::BasestationConfig cfg;
  cfg.scrambling_code = code;
  cfg.cpich_gain = 0.5;
  phy::DpchConfig ch;
  ch.sf = 64;
  ch.code_index = 3;
  ch.gain = 0.8;
  ch.bits.resize(128);
  for (auto& b : ch.bits) b = rng.bit() ? 1 : 0;
  cfg.channels.push_back(ch);
  return phy::UmtsDownlinkTx(std::move(cfg));
}

TEST(PathSearch, FindsMultipathDelays) {
  Rng rng(1);
  auto tx = make_tx(16, 2);
  const auto clean = tx.generate(8192)[0];
  phy::MultipathChannel ch(
      {{3, {0.9, 0.0}, 0.0}, {19, {0.0, 0.55}, 0.0}, {42, {-0.4, 0.2}, 0.0}},
      3.84e6);
  const auto rx = ch.run(clean, 18.0, rng);

  PathSearcher searcher(16, SearchParams{});
  const auto paths = searcher.search(rx, 3);
  ASSERT_GE(paths.size(), 2u);
  std::vector<int> delays;
  for (const auto& p : paths) delays.push_back(p.delay);
  EXPECT_NE(std::find(delays.begin(), delays.end(), 3), delays.end());
  EXPECT_NE(std::find(delays.begin(), delays.end(), 19), delays.end());
  // Strongest path first.
  EXPECT_EQ(paths[0].delay, 3);
}

TEST(PathSearch, ChargesDspWork) {
  Rng rng(3);
  auto tx = make_tx(16, 4);
  const auto rx = phy::awgn(tx.generate(4096)[0], 20.0, rng);
  dsp::DspModel dsp;
  PathSearcher searcher(16, SearchParams{});
  (void)searcher.search(rx, 2, &dsp);
  EXPECT_GT(dsp.total_instructions(), 1000);
  EXPECT_TRUE(dsp.tasks().count("path_search"));
}

TEST(PathSearch, ProbeMeasuresEnergyRatio) {
  Rng rng(5);
  auto tx = make_tx(32, 6);
  const auto clean = tx.generate(4096)[0];
  phy::MultipathChannel ch({{10, {1.0, 0.0}, 0.0}}, 3.84e6);
  const auto rx = ch.run(clean, 25.0, rng);
  PathSearcher searcher(32, SearchParams{});
  const auto on = searcher.probe(rx, 10, 512);
  const auto off = searcher.probe(rx, 25, 512);
  EXPECT_GT(on.energy, off.energy * 10.0);
}

TEST(ChannelEstimate, RecoversComplexGain) {
  Rng rng(7);
  auto tx = make_tx(48, 8);
  const auto clean = tx.generate(4096)[0];
  const CplxF h{0.6, -0.45};
  phy::MultipathChannel ch({{7, h, 0.0}}, 3.84e6);
  const auto rx = ch.run(clean, 24.0, rng);
  const auto est = estimate_channel(rx, 48, 7, /*pilot_amplitude=*/0.5);
  EXPECT_NEAR(est.h1.real(), h.real(), 0.08);
  EXPECT_NEAR(est.h1.imag(), h.imag(), 0.08);
}

TEST(ChannelEstimate, DiversityPilotSeparatesAntennas) {
  // Two antennas with different gains; the alternating-sign diversity
  // pilot lets the estimator separate h1 and h2.
  Rng rng(9);
  phy::BasestationConfig cfg;
  cfg.scrambling_code = 16;
  cfg.cpich_gain = 0.7;
  phy::DpchConfig dpch;
  dpch.sf = 64;
  dpch.code_index = 2;
  dpch.sttd = true;
  dpch.gain = 0.3;
  dpch.bits.assign(64, 0);
  Rng brng(10);
  for (auto& b : dpch.bits) b = brng.bit() ? 1 : 0;
  cfg.channels.push_back(dpch);
  phy::UmtsDownlinkTx tx(cfg);
  const auto streams = tx.generate(4096);
  const CplxF h1{0.9, 0.1};
  const CplxF h2{-0.2, 0.7};
  std::vector<CplxF> rx(streams[0].size());
  for (std::size_t i = 0; i < rx.size(); ++i) {
    rx[i] = h1 * streams[0][i] + h2 * streams[1][i];
  }
  Rng nrng(11);
  rx = phy::awgn(rx, 26.0, nrng);
  const auto est =
      estimate_channel(rx, 16, 0, /*pilot_amplitude=*/0.7, /*diversity=*/true,
                       /*n_chips=*/2048);
  EXPECT_NEAR(est.h1.real(), h1.real(), 0.1);
  EXPECT_NEAR(est.h1.imag(), h1.imag(), 0.1);
  EXPECT_NEAR(est.h2.real(), h2.real(), 0.1);
  EXPECT_NEAR(est.h2.imag(), h2.imag(), 0.1);
}

TEST(PathTracker, FollowsDriftWithHysteresis) {
  Rng rng(13);
  auto tx = make_tx(16, 14);
  const auto clean = tx.generate(8192)[0];
  phy::MultipathChannel ch({{12, {1.0, 0.0}, 0.0}}, 3.84e6);
  const auto rx = ch.run(clean, 22.0, rng);
  PathTracker tracker(16, 512, /*hysteresis=*/2);
  int delay = 10;  // start 2 chips off
  for (int iter = 0; iter < 8; ++iter) {
    delay = tracker.track(rx, delay);
  }
  EXPECT_EQ(delay, 12) << "tracker must converge onto the true path";
  // Once locked it must stay.
  for (int iter = 0; iter < 4; ++iter) {
    delay = tracker.track(rx, delay);
  }
  EXPECT_EQ(delay, 12);
}

TEST(PathTracker, FollowsDelayDriftAcrossFrames) {
  // The path delay drifts by one chip between captures (terminal
  // motion); the tracker must follow frame by frame.
  Rng rng(21);
  auto tx = make_tx(16, 22);
  PathTracker tracker(16, 512, /*hysteresis=*/2);
  int delay = 8;
  for (const int true_delay : {8, 8, 9, 9, 10, 10}) {
    tx.reset();  // captures are frame-aligned (code phase restarts)
    phy::MultipathChannel ch({{true_delay, {1.0, 0.0}, 0.0}}, 3.84e6);
    const auto rx = ch.run(tx.generate(4096)[0], 24.0, rng);
    for (int iter = 0; iter < 4; ++iter) {
      delay = tracker.track(rx, delay);
    }
    EXPECT_LE(std::abs(delay - true_delay), 1)
        << "tracker must stay within a chip of the drifting path";
  }
  EXPECT_EQ(delay, 10);
}

}  // namespace
}  // namespace rsp::rake

#include "src/rake/tdm.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/umts_tx.hpp"
#include "src/rake/receiver.hpp"

namespace rsp::rake {
namespace {

std::vector<CplxI> synthetic_capture(int n_chips, std::uint64_t seed) {
  Rng rng(seed);
  phy::BasestationConfig a;
  a.scrambling_code = 16;
  a.cpich_gain = 0.4;
  phy::DpchConfig ch;
  ch.sf = 32;
  ch.code_index = 5;
  ch.bits.resize(128);
  for (auto& b : ch.bits) b = rng.bit() ? 1 : 0;
  a.channels.push_back(ch);
  phy::BasestationConfig b2 = a;
  b2.scrambling_code = 32;
  phy::UmtsDownlinkTx tx_a(a);
  phy::UmtsDownlinkTx tx_b(b2);
  auto rx = phy::combine_basestations(
      {tx_a.generate(n_chips)[0], tx_b.generate(n_chips)[0]});
  rx = phy::awgn(rx, 14.0, rng);
  return quantize_chips(rx);
}

TEST(TdmFinger, MatchesDedicatedFingersBitExactly) {
  // The paper's claim: one physical finger, time-multiplexed over all
  // contexts, produces the same results as parallel fingers.
  const auto rx = synthetic_capture(32 * 64, 1);

  std::vector<TdmFinger::Context> contexts = {
      {16, 0, 32, 5}, {16, 4, 32, 5}, {32, 0, 32, 5},
      {32, 9, 32, 5}, {16, 17, 32, 5}, {32, 2, 32, 5},
  };
  TdmFinger tdm(contexts);
  const auto tdm_out = tdm.process(rx);

  RakeConfig cfg;
  cfg.scrambling_codes = {16, 32};
  cfg.sf = 32;
  cfg.code_index = 5;
  RakeReceiver receiver(cfg);
  for (std::size_t k = 0; k < contexts.size(); ++k) {
    const auto& ctx = contexts[k];
    const auto dedicated =
        receiver.finger_despread(rx, ctx.scrambling_code, ctx.delay);
    ASSERT_EQ(tdm_out[k].size(), dedicated.size()) << "context " << k;
    for (std::size_t i = 0; i < dedicated.size(); ++i) {
      ASSERT_EQ(tdm_out[k][i], dedicated[i])
          << "context " << k << " symbol " << i;
    }
  }
}

TEST(TdmFinger, RequiredClockScalesWithContexts) {
  std::vector<TdmFinger::Context> ctx18;
  for (int i = 0; i < 18; ++i) {
    ctx18.push_back({16, i, 64, 1});
  }
  TdmFinger full(ctx18);
  EXPECT_NEAR(full.required_clock_hz(), 69.12e6, 1.0)
      << "18 fingers need 18 x 3.84 MHz";
  TdmFinger one({{16, 0, 64, 1}});
  EXPECT_NEAR(one.required_clock_hz(), 3.84e6, 1.0);
}

TEST(TdmFinger, ChipOpsCountTheMultiplex) {
  const auto rx = synthetic_capture(64 * 8, 2);
  std::vector<TdmFinger::Context> contexts = {
      {16, 0, 64, 1}, {16, 0, 64, 1}, {16, 0, 64, 1}};
  TdmFinger tdm(contexts);
  (void)tdm.process(rx);
  EXPECT_EQ(tdm.chip_ops(), static_cast<long long>(rx.size()) * 3);
}

TEST(TdmFinger, EighteenContextMaxScenario) {
  // 6 basestations x 3 paths = the paper's maximum.
  const auto rx = synthetic_capture(32 * 32, 3);
  std::vector<TdmFinger::Context> contexts;
  for (int bs = 0; bs < 6; ++bs) {
    for (int p = 0; p < 3; ++p) {
      contexts.push_back(
          {16u * static_cast<std::uint32_t>(bs % 2 + 1), 3 * p, 32, 5});
    }
  }
  TdmFinger tdm(contexts);
  EXPECT_EQ(tdm.num_contexts(), 18);
  const auto out = tdm.process(rx);
  EXPECT_EQ(out.size(), 18u);
  for (const auto& stream : out) {
    EXPECT_GT(stream.size(), 28u);
  }
}

TEST(TdmFinger, RejectsTooManyContexts) {
  std::vector<TdmFinger::Context> contexts(19, {16, 0, 64, 1});
  EXPECT_THROW(TdmFinger{contexts}, std::invalid_argument);
  EXPECT_THROW(TdmFinger{{}}, std::invalid_argument);
}

}  // namespace
}  // namespace rsp::rake

// Bit-exactness of the array-mapped rake datapath (Figures 5-7)
// against the golden chain.
#include "src/rake/maps.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"

namespace rsp::rake {
namespace {

std::vector<CplxI> random_chips(std::size_t n, std::uint64_t seed,
                                int amp = 1000) {
  Rng rng(seed);
  std::vector<CplxI> out(n);
  for (auto& c : out) {
    c = {static_cast<int>(rng.below(static_cast<std::uint32_t>(2 * amp))) - amp,
         static_cast<int>(rng.below(static_cast<std::uint32_t>(2 * amp))) - amp};
  }
  return out;
}

TEST(RakeMaps, DescramblerMatchesGolden) {
  const auto chips = random_chips(256, 1);
  dedhw::UmtsScrambler scr(16);
  std::vector<std::uint8_t> code2(chips.size());
  for (auto& c : code2) c = scr.next2();

  xpp::ConfigurationManager mgr;
  xpp::RunResult stats;
  const auto mapped = maps::run_descrambler(mgr, chips, code2, &stats);
  const auto golden = descramble(chips, code2);
  ASSERT_EQ(mapped.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    ASSERT_EQ(mapped[i], golden[i]) << "chip " << i;
  }
  // Figure 5 resource shape: code mux + complex multiplier.
  EXPECT_EQ(stats.info.alu_cells, 2);
  EXPECT_EQ(stats.info.io_channels, 3);
}

TEST(RakeMaps, DescramblerSustainsPipelineRate) {
  const auto chips = random_chips(512, 2);
  dedhw::UmtsScrambler scr(16);
  std::vector<std::uint8_t> code2(chips.size());
  for (auto& c : code2) c = scr.next2();
  xpp::ConfigurationManager mgr;
  xpp::RunResult stats;
  (void)maps::run_descrambler(mgr, chips, code2, &stats);
  EXPECT_LT(stats.cycles, static_cast<long long>(chips.size()) + 16)
      << "one chip per cycle once the pipeline is full";
}

class DespreaderSf : public ::testing::TestWithParam<int> {};

TEST_P(DespreaderSf, MatchesGolden) {
  const int sf = GetParam();
  const int k = 1;
  const auto chips = random_chips(static_cast<std::size_t>(sf) * 6, 3);
  xpp::ConfigurationManager mgr;
  const auto mapped = maps::run_despreader(mgr, chips, sf, k);
  const auto golden = despread(chips, sf, k);
  ASSERT_EQ(mapped.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    ASSERT_EQ(mapped[i], golden[i]) << "symbol " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(SpreadingFactors, DespreaderSf,
                         ::testing::Values(4, 8, 64, 256, 512));

TEST(RakeMaps, DespreaderResourceShape) {
  xpp::ConfigurationManager mgr;
  xpp::RunResult stats;
  const auto chips = random_chips(64, 4);
  (void)maps::run_despreader(mgr, chips, 16, 3, &stats);
  // Figure 6: complex multiplier + accumulator + counter on ALU-PAEs,
  // OVSF codes in one RAM-PAE circular FIFO.
  EXPECT_EQ(stats.info.alu_cells, 3);
  EXPECT_EQ(stats.info.ram_cells, 1);
}

TEST(RakeMaps, ChancorrMrcMatchesGolden) {
  const auto symbols = random_chips(128, 5);
  CorrectorWeights w;
  w.conj_h1 = quantize_weight({0.7, -0.4});
  xpp::ConfigurationManager mgr;
  const auto mapped = maps::run_chancorr(mgr, symbols, w);
  const auto golden = channel_correct(symbols, w);
  ASSERT_EQ(mapped.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    ASSERT_EQ(mapped[i], golden[i]) << "symbol " << i;
  }
}

TEST(RakeMaps, ChancorrSttdMatchesGolden) {
  const auto symbols = random_chips(128, 6);
  CorrectorWeights w;
  w.sttd = true;
  w.conj_h1 = quantize_weight({0.8, 0.1});
  w.h2 = quantize_weight({-0.35, 0.55});
  xpp::ConfigurationManager mgr;
  xpp::RunResult stats;
  const auto mapped = maps::run_chancorr(mgr, symbols, w, &stats);
  const auto golden = channel_correct(symbols, w);
  ASSERT_EQ(mapped.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    ASSERT_EQ(mapped[i], golden[i]) << "symbol " << i;
  }
  // The Figure 7 STTD pipeline: dup, 2 cmuls, conj, demux, merge, add
  // + the pair counter = 8 ALU-PAEs, two weight FIFOs in RAM-PAEs.
  EXPECT_EQ(stats.info.alu_cells, 8);
  EXPECT_EQ(stats.info.ram_cells, 2);
}

TEST(RakeMaps, CombinerMatchesGolden) {
  std::vector<std::vector<CplxI>> fingers;
  for (int f = 0; f < 3; ++f) {
    fingers.push_back(random_chips(64, 10 + static_cast<std::uint64_t>(f),
                                   600));
  }
  xpp::ConfigurationManager mgr;
  const auto mapped = maps::run_combiner(mgr, fingers);
  const auto golden = combine(fingers);
  ASSERT_EQ(mapped.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    ASSERT_EQ(mapped[i], golden[i]) << "symbol " << i;
  }
}

TEST(RakeMaps, FullFingerChainOnArrayMatchesGolden) {
  // Figure 4's full reconfigurable datapath: descramble -> despread ->
  // correct, each stage on the array, chained through the harness.
  const int sf = 32;
  const auto chips = random_chips(static_cast<std::size_t>(sf) * 8, 20);
  dedhw::UmtsScrambler scr(48);
  std::vector<std::uint8_t> code2(chips.size());
  for (auto& c : code2) c = scr.next2();
  CorrectorWeights w;
  w.conj_h1 = quantize_weight({0.9, -0.2});

  xpp::ConfigurationManager mgr;
  const auto d1 = maps::run_descrambler(mgr, chips, code2);
  const auto d2 = maps::run_despreader(mgr, d1, sf, 3);
  const auto d3 = maps::run_chancorr(mgr, d2, w);

  const auto g = channel_correct(despread(descramble(chips, code2), sf, 3), w);
  ASSERT_EQ(d3.size(), g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    ASSERT_EQ(d3[i], g[i]) << "symbol " << i;
  }
}

}  // namespace
}  // namespace rsp::rake

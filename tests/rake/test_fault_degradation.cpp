// Degradation bench: a rake finger whose accumulator PAE sticks must
// degrade the receiver boundedly — the healthy finger's symbols stay
// bit-exact, nothing crashes, and the stall report names the dead PAE.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/fault.hpp"
#include "src/xpp/manager.hpp"

namespace rsp::rake {
namespace {

using xpp::ConfigId;
using xpp::ConfigurationManager;
using xpp::Fault;
using xpp::FaultInjector;
using xpp::FaultKind;
using xpp::FaultPlan;
using xpp::StallReport;

std::vector<CplxI> random_chips(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CplxI> out(n);
  for (auto& c : out) {
    c = {static_cast<int>(rng.below(2000)) - 1000,
         static_cast<int>(rng.below(2000)) - 1000};
  }
  return out;
}

TEST(FaultDegradation, StuckFingerAccumulatorDegradesBoundedly) {
  const int sf = 16;
  const std::size_t n_symbols = 8;
  const auto chips = random_chips(static_cast<std::size_t>(sf) * n_symbols, 5);

  // Golden: one clean despreader pass.
  ConfigurationManager clean;
  const auto golden = maps::run_despreader(clean, chips, sf, 1);
  ASSERT_EQ(golden.size(), n_symbols);

  // Two fingers resident; finger 1's complex accumulator sticks
  // permanently before the first chip arrives.
  ConfigurationManager mgr;
  const ConfigId f0 = mgr.load(maps::despreader_config(sf, 1));
  const ConfigId f1 = mgr.load(maps::despreader_config(sf, 1));

  FaultPlan plan;
  Fault stuck;
  stuck.kind = FaultKind::kStuckObject;
  stuck.cycle = mgr.sim().cycle();
  stuck.object = "cacc";
  stuck.group = mgr.info(f1).group;
  plan.faults.push_back(stuck);
  FaultInjector inj(std::move(plan));
  mgr.sim().install_faults(&inj);

  const auto packed = maps::pack_stream(chips);
  mgr.input(f0, "data").feed(packed);
  mgr.input(f1, "data").feed(packed);
  const StallReport r =
      mgr.sim().run_until_quiescent(static_cast<long long>(chips.size()) * 16);
  mgr.sim().install_faults(nullptr);

  // The run must terminate (no crash, no budget blow-out) and classify
  // as a deadlock: finger 1's chips are piled up behind the dead PAE.
  EXPECT_TRUE(r.deadlocked()) << r.to_string();
  EXPECT_GT(r.tokens_in_flight, 0);
  bool names_cacc = false;
  for (const auto& b : r.blocked) names_cacc |= (b.name == "cacc");
  EXPECT_TRUE(names_cacc) << "report must name the stuck PAE:\n"
                          << r.to_string();
  ASSERT_EQ(inj.log().size(), 1u);
  EXPECT_TRUE(inj.log()[0].hit);

  // Bounded degradation: the healthy finger is bit-exact, the stuck
  // finger contributes nothing — the symbol-error fraction across the
  // two-finger receiver is exactly the dead finger's share.
  const auto healthy = maps::unpack_stream(mgr.output(f0, "out").take());
  EXPECT_EQ(healthy, golden) << "fault must not leak across fingers";
  EXPECT_TRUE(mgr.output(f1, "out").data().empty());

  // The array remains serviceable: release the dead finger and rerun.
  mgr.release(f1);
  ConfigurationManager redo;
  const auto recovered = maps::run_despreader(redo, chips, sf, 1);
  EXPECT_EQ(recovered, golden);
}

TEST(FaultDegradation, StuckFingerIdenticalUnderBothSchedulers) {
  const int sf = 8;
  const auto chips = random_chips(static_cast<std::size_t>(sf) * 6, 17);

  const auto run = [&](xpp::SchedulerKind kind) {
    ConfigurationManager mgr({}, kind);
    const ConfigId f0 = mgr.load(maps::despreader_config(sf, 2));
    const ConfigId f1 = mgr.load(maps::despreader_config(sf, 2));
    FaultPlan plan;
    Fault stuck;
    stuck.kind = FaultKind::kStuckObject;
    stuck.cycle = mgr.sim().cycle() + 5;
    stuck.object = "cacc";
    stuck.group = mgr.info(f1).group;
    plan.faults.push_back(stuck);
    FaultInjector inj(std::move(plan));
    mgr.sim().install_faults(&inj);
    const auto packed = maps::pack_stream(chips);
    mgr.input(f0, "data").feed(packed);
    mgr.input(f1, "data").feed(packed);
    (void)mgr.sim().run_until_quiescent(
        static_cast<long long>(chips.size()) * 16);
    auto out0 = mgr.output(f0, "out").take();
    auto out1 = mgr.output(f1, "out").take();
    mgr.sim().install_faults(nullptr);
    return std::make_tuple(out0, out1, mgr.sim().cycle(),
                           mgr.sim().total_fires(), inj.log());
  };
  EXPECT_EQ(run(xpp::SchedulerKind::kScan),
            run(xpp::SchedulerKind::kEventDriven));
}

}  // namespace
}  // namespace rsp::rake

#include "src/rake/golden.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/common/word.hpp"

namespace rsp::rake {
namespace {

TEST(RakeGolden, Sel4TableIsConjugateCodes) {
  const auto t = descramble_sel4_table();
  // code bits (bit0=I, bit1=Q): c = (1-2I) + j(1-2Q), table = conj(c).
  EXPECT_EQ(unpack_cplx(t[0]), (CplxI{1, -1}));    // c = 1+j
  EXPECT_EQ(unpack_cplx(t[1]), (CplxI{-1, -1}));   // c = -1+j
  EXPECT_EQ(unpack_cplx(t[2]), (CplxI{1, 1}));     // c = 1-j
  EXPECT_EQ(unpack_cplx(t[3]), (CplxI{-1, 1}));    // c = -1-j
}

TEST(RakeGolden, DescrambleInvertsScrambling) {
  // Scrambling a symbol by c then descrambling by conj(c)/2 must give
  // the symbol back exactly for clean inputs.
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const CplxI s{static_cast<int>(rng.below(2000)) - 1000,
                  static_cast<int>(rng.below(2000)) - 1000};
    const std::uint8_t code2 = static_cast<std::uint8_t>(rng.below(4));
    const CplxI c{1 - 2 * (code2 & 1), 1 - 2 * ((code2 >> 1) & 1)};
    const CplxI scrambled = s * c;  // fits 12 bits? products +-2000
    const CplxI back = descramble_chip(sat_cplx(scrambled, kHalfBits), code2);
    // r*conj(c) = s*|c|^2 = 2s; >>1 returns s (rounding-free).
    EXPECT_EQ(back, sat_cplx(s, kHalfBits));
  }
}

TEST(RakeGolden, DespreadShiftPolicy) {
  EXPECT_EQ(despread_shift(4), 0);
  EXPECT_EQ(despread_shift(8), 1);
  EXPECT_EQ(despread_shift(64), 4);
  EXPECT_EQ(despread_shift(512), 7);
}

class DespreadSf : public ::testing::TestWithParam<int> {};

TEST_P(DespreadSf, RecoversConstantSymbol) {
  const int sf = GetParam();
  const int k = sf / 2 + 1;
  // Chips = symbol * ovsf chip (already descrambled).
  const CplxI sym{100, -50};
  std::vector<CplxI> chips;
  const int nsym = 5;
  for (int m = 0; m < nsym; ++m) {
    for (int i = 0; i < sf; ++i) {
      const int c = dedhw::ovsf_chip(sf, k, i);
      chips.push_back({sym.re * c, sym.im * c});
    }
  }
  const auto out = despread(chips, sf, k);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(nsym));
  const int shift = despread_shift(sf);
  const CplxI expect{saturate((sym.re * sf) >> shift, kHalfBits),
                     saturate((sym.im * sf) >> shift, kHalfBits)};
  for (const auto& o : out) EXPECT_EQ(o, expect);
}

TEST_P(DespreadSf, RejectsOrthogonalCode) {
  const int sf = GetParam();
  // Chips spread with code k1; despread with different k2 -> zeros.
  const int k1 = 1;
  const int k2 = sf - 1;
  std::vector<CplxI> chips;
  for (int i = 0; i < sf; ++i) {
    const int c = dedhw::ovsf_chip(sf, k1, i);
    chips.push_back({500 * c, -300 * c});
  }
  const auto out = despread(chips, sf, k2);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (CplxI{0, 0}));
}

INSTANTIATE_TEST_SUITE_P(SpreadingFactors, DespreadSf,
                         ::testing::Values(4, 16, 64, 256, 512));

TEST(RakeGolden, ChannelCorrectMrcRotates) {
  // y = r * conj(h) >> 10 with h = j: rotates -90 degrees.
  CorrectorWeights w;
  w.conj_h1 = quantize_weight(std::conj(CplxF{0.0, 1.0}));
  const std::vector<CplxI> in = {{100, 0}, {0, 200}};
  const auto out = channel_correct(in, w);
  EXPECT_EQ(out[0], (CplxI{0, -100}));
  EXPECT_EQ(out[1], (CplxI{200, 0}));
}

TEST(RakeGolden, SttdDecodeRecoversBothSymbols) {
  // Symbols s1, s2 through h1, h2 with STTD encoding; decode must
  // produce (|h1|^2+|h2|^2) * s within quantization.
  const CplxF h1{0.8, -0.3};
  const CplxF h2{-0.4, 0.6};
  const CplxF s1{0.7, 0.7};
  const CplxF s2{-0.7, 0.7};
  // r1 = h1 s1 - h2 s2*; r2 = h1 s2 + h2 s1*.
  const CplxF r1 = h1 * s1 - h2 * std::conj(s2);
  const CplxF r2 = h1 * s2 + h2 * std::conj(s1);
  const double scale = 512.0;
  const std::vector<CplxI> in = {
      {static_cast<int>(std::lround(r1.real() * scale)),
       static_cast<int>(std::lround(r1.imag() * scale))},
      {static_cast<int>(std::lround(r2.real() * scale)),
       static_cast<int>(std::lround(r2.imag() * scale))}};
  CorrectorWeights w;
  w.sttd = true;
  w.conj_h1 = quantize_weight(std::conj(h1));
  w.h2 = quantize_weight(h2);
  const auto out = channel_correct(in, w);
  const double g = std::norm(h1) + std::norm(h2);
  EXPECT_NEAR(out[0].re, g * s1.real() * scale, 6.0);
  EXPECT_NEAR(out[0].im, g * s1.imag() * scale, 6.0);
  EXPECT_NEAR(out[1].re, g * s2.real() * scale, 6.0);
  EXPECT_NEAR(out[1].im, g * s2.imag() * scale, 6.0);
}

TEST(RakeGolden, CombineSaturatesOnce) {
  const std::vector<std::vector<CplxI>> fingers = {
      {{1500, -1500}}, {{1000, -1000}}};
  const auto out = combine(fingers);
  EXPECT_EQ(out[0], (CplxI{2047, -2048}));
}

TEST(RakeGolden, CombineLengthMismatchThrows) {
  EXPECT_THROW((void)combine({{{1, 1}}, {{1, 1}, {2, 2}}}),
               std::invalid_argument);
}

TEST(RakeGolden, QuantizeChipsSaturates) {
  const auto q = quantize_chips({{10.0, -10.0}}, 256.0);
  EXPECT_EQ(q[0], (CplxI{2047, -2048}));
}

TEST(RakeGolden, QpskSliceSigns) {
  EXPECT_EQ(qpsk_slice({{5, 5}, {5, -5}, {-5, 5}, {-5, -5}}),
            (std::vector<std::uint8_t>{0, 0, 0, 1, 1, 0, 1, 1}));
}

}  // namespace
}  // namespace rsp::rake

// Block-wise tracked reception: the continuously-running channel
// estimator keeps the corrector aligned under Doppler.
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/jakes.hpp"
#include "src/phy/umts_tx.hpp"
#include "src/rake/receiver.hpp"

namespace rsp::rake {
namespace {

struct Link {
  std::vector<CplxF> rx;
  std::vector<std::uint8_t> data;
  RakeConfig cfg;
};

Link fading_link(double doppler_hz, double esn0_db, std::uint64_t seed,
                 bool sttd = false) {
  Link l;
  Rng rng(seed);
  phy::BasestationConfig bs;
  bs.scrambling_code = 16;
  bs.cpich_gain = 0.5;
  phy::DpchConfig ch;
  ch.sf = 64;
  ch.code_index = 3;
  ch.gain = 0.7;
  ch.sttd = sttd;
  ch.bits.resize(256);
  for (auto& b : ch.bits) b = rng.bit() ? 1 : 0;
  bs.channels.push_back(ch);
  l.data = ch.bits;
  phy::UmtsDownlinkTx tx(bs);
  const int n_chips = 64 * 512;
  const auto streams = tx.generate(n_chips);
  if (!sttd) {
    phy::MultipathChannel mp({{3, {0.8, 0.0}, doppler_hz},
                              {11, {0.0, 0.45}, doppler_hz * 0.8}},
                             3.84e6);
    l.rx = mp.run(streams[0], esn0_db, rng);
  } else {
    // Two antennas over distinct fading channels.
    phy::MultipathChannel mp0({{3, {0.7, 0.1}, doppler_hz}}, 3.84e6);
    phy::MultipathChannel mp1({{3, {-0.2, 0.6}, -doppler_hz}}, 3.84e6);
    const auto y0 = mp0.run(streams[0], 100.0, rng);
    const auto y1 = mp1.run(streams[1], 100.0, rng);
    l.rx = phy::combine_basestations({y0, y1});
    l.rx = phy::awgn(l.rx, esn0_db, rng);
  }
  l.cfg.scrambling_codes = {16};
  l.cfg.sf = 64;
  l.cfg.code_index = 3;
  l.cfg.sttd = sttd;
  l.cfg.paths_per_bs = 2;
  l.cfg.pilot_amplitude = 0.5;
  return l;
}

double ber(const std::vector<std::uint8_t>& tx,
           const std::vector<std::uint8_t>& rx) {
  if (rx.empty()) return 0.5;
  int errors = 0;
  for (std::size_t i = 0; i < rx.size(); ++i) {
    errors += (rx[i] != tx[i % tx.size()]) ? 1 : 0;
  }
  return static_cast<double>(errors) / static_cast<double>(rx.size());
}

TEST(TrackedReceive, MatchesOneShotOnStaticChannel) {
  const auto l = fading_link(0.0, 16.0, 1);
  RakeReceiver receiver(l.cfg);
  const auto one_shot = receiver.receive(l.rx);
  const auto tracked = receiver.receive_tracked(l.rx, 2560);
  EXPECT_EQ(ber(l.data, one_shot.bits), 0.0);
  EXPECT_EQ(ber(l.data, tracked.bits), 0.0);
}

TEST(TrackedReceive, BeatsOneShotUnderDoppler) {
  // ~120 km/h at 2 GHz: 222 Hz Doppler over an 8.5 ms capture rotates
  // the channel far from the initial estimate.
  const auto l = fading_link(222.0, 14.0, 2);
  RakeReceiver receiver(l.cfg);
  const double one_shot = ber(l.data, receiver.receive(l.rx).bits);
  const double tracked = ber(l.data, receiver.receive_tracked(l.rx, 2560).bits);
  EXPECT_GT(one_shot, 0.05) << "one-shot estimate must actually go stale";
  EXPECT_LT(tracked, one_shot / 4.0)
      << "per-slot re-estimation must track the rotation";
  EXPECT_LT(tracked, 0.05);
}

TEST(TrackedReceive, FinerBlocksTrackFasterFading) {
  const auto l = fading_link(450.0, 16.0, 3);
  RakeReceiver receiver(l.cfg);
  const double coarse = ber(l.data, receiver.receive_tracked(l.rx, 10240).bits);
  const double fine = ber(l.data, receiver.receive_tracked(l.rx, 1280).bits);
  EXPECT_LE(fine, coarse);
}

TEST(TrackedReceive, SttdUnderDifferentialDoppler) {
  const auto l = fading_link(160.0, 18.0, 4, /*sttd=*/true);
  RakeReceiver receiver(l.cfg);
  const double tracked =
      ber(l.data, receiver.receive_tracked(l.rx, 2560).bits);
  EXPECT_LT(tracked, 0.02)
      << "diversity decode with tracked h1/h2 must hold the link";
}

TEST(TrackedReceive, ChargesEstimationPerBlock) {
  const auto l = fading_link(100.0, 16.0, 5);
  RakeReceiver receiver(l.cfg);
  dsp::DspModel one;
  dsp::DspModel many;
  (void)receiver.receive(l.rx, &one);
  (void)receiver.receive_tracked(l.rx, 1280, &many);
  EXPECT_GT(many.tasks().at("channel_estimation").instructions,
            2 * one.tasks().at("channel_estimation").instructions)
      << "tracked mode re-runs the estimator";
}

TEST(TrackedReceive, SurvivesJakesRayleighFading) {
  // Full statistical fading (Rayleigh envelopes, U-shaped Doppler
  // spectrum) on two resolvable taps; per-slot re-estimation plus MRC
  // keeps the raw BER workable.
  Rng rng(31);
  phy::BasestationConfig bs;
  bs.scrambling_code = 16;
  bs.cpich_gain = 0.5;
  phy::DpchConfig ch;
  ch.sf = 64;
  ch.code_index = 3;
  ch.gain = 0.7;
  ch.bits.resize(256);
  for (auto& b : ch.bits) b = rng.bit() ? 1 : 0;
  bs.channels.push_back(ch);
  phy::UmtsDownlinkTx tx(bs);
  const auto chips = tx.generate(64 * 512)[0];
  Rng fad(32);
  phy::JakesChannel jakes({{3, 0.65, 120.0}, {11, 0.35, 120.0}}, 3.84e6, fad);
  Rng nrng(33);
  const auto rx = jakes.run(chips, 14.0, nrng);

  RakeConfig cfg;
  cfg.scrambling_codes = {16};
  cfg.sf = 64;
  cfg.code_index = 3;
  cfg.paths_per_bs = 2;
  cfg.pilot_amplitude = 0.5;
  RakeReceiver receiver(cfg);
  const double tracked = ber(ch.bits, receiver.receive_tracked(rx, 1280).bits);
  const double one_shot = ber(ch.bits, receiver.receive(rx).bits);
  EXPECT_LT(tracked, 0.05) << "tracked rake must ride Rayleigh fading";
  EXPECT_LE(tracked, one_shot);
}

}  // namespace
}  // namespace rsp::rake

// Differential battery for the array-mapped Viterbi ACS: the hard
// decisions coming off the XPP configuration must be bit-identical to
// dedhw::ViterbiDecoder::decode over randomized codewords, under every
// scheduler.  Also covers the exactness-contract guards and an SEU in
// the path-metric RAM (degrades locally, re-converges, clean re-run
// recovers exactly).
#include "src/vit/maps.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/dedhw/convcode.hpp"
#include "src/dedhw/viterbi.hpp"
#include "src/xpp/fault.hpp"
#include "src/xpp/manager.hpp"

namespace rsp::vit {
namespace {

using dedhw::kNumStates;
using xpp::ConfigId;
using xpp::ConfigurationManager;
using xpp::SchedulerKind;
using xpp::Word;

/// Random soft vector for @p steps trellis steps, arbitrary values in
/// the full 12-bit range — the strongest differential input: it need
/// not be near any codeword.
std::vector<std::int32_t> random_soft(std::size_t steps, Rng& rng,
                                      int amp = 2047) {
  std::vector<std::int32_t> soft(2 * steps);
  for (auto& v : soft) {
    v = static_cast<std::int32_t>(
            rng.below(static_cast<std::uint32_t>(2 * amp + 1))) -
        amp;
  }
  return soft;
}

/// Noisy BPSK soft values for an encoded codeword.
std::vector<std::int32_t> noisy_codeword(const std::vector<std::uint8_t>& bits,
                                         Rng& rng, int amp, int noise) {
  const auto coded = dedhw::conv_encode(bits, dedhw::CodeRate::kR12);
  std::vector<std::int32_t> soft(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    const int n =
        static_cast<int>(rng.below(static_cast<std::uint32_t>(2 * noise + 1))) -
        noise;
    soft[i] = (coded[i] ? amp : -amp) + n;
  }
  return soft;
}

class ViterbiXppSchedulers : public ::testing::TestWithParam<SchedulerKind> {};

// The headline acceptance criterion: >= 1000 randomized codewords per
// scheduler, every hard decision bit-identical to the dedicated
// hardware decoder.
TEST_P(ViterbiXppSchedulers, RandomSoftBitIdenticalToDedhw) {
  ConfigurationManager mgr({}, GetParam());
  const dedhw::ViterbiDecoder ref;
  Rng rng(0x5EEDu + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 1000; ++trial) {
    // Mostly short blocks for throughput, every 50th one longer so the
    // ping-pong banks cycle through many parities in one run.
    const std::size_t steps = (trial % 50 == 49) ? 70 : 14;
    const std::size_t n_info = steps - (dedhw::kConstraintLen - 1);
    const auto soft = random_soft(steps, rng);
    const auto mapped = run_viterbi_acs(mgr, soft, n_info);
    const auto golden = ref.decode(soft, n_info);
    ASSERT_EQ(mapped, golden) << "scheduler "
                              << static_cast<int>(GetParam()) << " trial "
                              << trial;
  }
}

// Semantic sanity on top of bit-identity: at moderate noise the array
// decode recovers the transmitted bits of a real encoded block.
TEST_P(ViterbiXppSchedulers, NoisyCodewordRecoversMessage) {
  ConfigurationManager mgr({}, GetParam());
  const dedhw::ViterbiDecoder ref;
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> bits(48);
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(2));
    const auto soft = noisy_codeword(bits, rng, /*amp=*/900, /*noise=*/600);
    const auto mapped = run_viterbi_acs(mgr, soft, bits.size());
    ASSERT_EQ(mapped, ref.decode(soft, bits.size())) << "trial " << trial;
    EXPECT_EQ(mapped, bits) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, ViterbiXppSchedulers,
                         ::testing::Values(SchedulerKind::kScan,
                                           SchedulerKind::kEventDriven,
                                           SchedulerKind::kCompiled));

TEST(ViterbiXpp, RejectsOversizedSoftValues) {
  ConfigurationManager mgr;
  std::vector<std::int32_t> soft(2 * 10, 0);
  soft[3] = 2048;  // one past the packed 12-bit range
  EXPECT_THROW((void)run_viterbi_acs(mgr, soft, 4), std::invalid_argument);
}

TEST(ViterbiXpp, RejectsCodewordsThatWouldSaturateMetrics) {
  ConfigurationManager mgr;
  // kMetricFloor + sum|soft| past 2^23 - 1: 4100 steps at full scale.
  std::vector<std::int32_t> soft(2 * 4100, 2047);
  EXPECT_THROW((void)run_viterbi_acs(mgr, soft, 64), std::invalid_argument);
}

TEST(ViterbiXpp, StatsReportLoadAndRunCycles) {
  ConfigurationManager mgr;
  Rng rng(5);
  const auto soft = random_soft(14, rng);
  xpp::RunResult stats;
  (void)run_viterbi_acs(mgr, soft, 8, &stats);
  EXPECT_GT(stats.load_cycles, 0);
  // One state per cycle once primed: at least steps * 64 run cycles.
  EXPECT_GE(stats.cycles, 14 * 64);
}

// SEU in the path-metric RAM mid-decode: the decisions around the
// strike may degrade, but (a) bits decoded from survivors written
// before the strike are untouched, (b) the trellis re-merges so bits
// far past the strike match the clean run, and (c) a clean re-run on
// the same manager is bit-identical to dedhw again.
TEST(ViterbiXpp, SeuInPathMetricRamDegradesButReconverges) {
  const dedhw::ViterbiDecoder ref;
  Rng rng(0xFau);
  // A real (noisy) codeword, not arbitrary soft values: the likelihood
  // structure makes survivor paths merge within a few constraint
  // lengths of the strike, so the degradation stays local.  Moderate
  // SNR keeps the metric margins small enough for the upset to flip
  // decisions near the strike.
  std::vector<std::uint8_t> bits(300);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(2));
  const auto soft = noisy_codeword(bits, rng, /*amp=*/300, /*noise=*/280);
  const std::size_t steps = soft.size() / 2;
  const std::size_t n_info = bits.size();
  const auto golden = ref.decode(soft, n_info);

  // Manual drive of the run_viterbi_acs loop so the fault can be armed
  // at a precise point of the survivor stream (step kStrikeStep).
  ConfigurationManager mgr;
  std::vector<Word> feed;
  for (std::size_t step = 0; step < steps; ++step) {
    const Word w = pack_iq(soft[2 * step], soft[2 * step + 1]);
    for (int s = 0; s < kNumStates; ++s) feed.push_back(w);
  }
  const ConfigId id = mgr.load(acs_config());
  mgr.input(id, "soft").feed(feed);
  auto& sink = mgr.output(id, "surv");

  constexpr std::size_t kStrikeStep = 150;
  while (sink.data().size() < kStrikeStep * kNumStates) mgr.sim().step();

  // Upset one word of one path-metric bank: flip a high metric bit so
  // a mediocre state suddenly looks like the best path.
  xpp::FaultPlan plan;
  xpp::Fault seu;
  seu.kind = xpp::FaultKind::kRamCorrupt;
  seu.cycle = mgr.sim().cycle();  // next cycle boundary
  seu.object = "pm0";
  seu.addr = 17;
  seu.mask = Word{1} << 20;
  plan.faults.push_back(seu);
  xpp::FaultInjector inj(std::move(plan));
  mgr.sim().install_faults(&inj);

  const std::size_t want = steps * kNumStates;
  long long guard = 0;
  while (sink.data().size() < want) {
    mgr.sim().step();
    ASSERT_LT(++guard, 200000) << "stalled after SEU";
  }
  mgr.sim().install_faults(nullptr);
  ASSERT_EQ(inj.log().size(), 1u);
  EXPECT_TRUE(inj.log()[0].hit);
  const auto hit = traceback(sink.take(), steps, n_info);
  mgr.release(id);

  // (a) Survivors written before the strike are bit-identical, so the
  // decoded prefix (minus a re-merge window) matches the clean decode.
  constexpr std::size_t kMerge = 64;  // ~9 constraint lengths of slack
  for (std::size_t i = 0; i < kStrikeStep - kMerge; ++i) {
    ASSERT_EQ(hit[i], golden[i]) << "pre-strike bit " << i;
  }
  // (b) Re-convergence: the tail far past the strike matches again.
  for (std::size_t i = kStrikeStep + kMerge; i < n_info; ++i) {
    ASSERT_EQ(hit[i], golden[i]) << "post-merge bit " << i;
  }
  // Degradation is real: at least one decision near the strike flipped.
  EXPECT_NE(hit, golden);

  // (c) Clean re-run on the same manager recovers exactly.
  EXPECT_EQ(run_viterbi_acs(mgr, soft, n_info), golden);
}

}  // namespace
}  // namespace rsp::vit

// Minimal recursive-descent JSON validator for tests.
//
// The locale and trace tests need to assert "this emitted text is valid
// JSON" without adding a parser dependency.  This checks RFC 8259
// grammar (objects, arrays, strings with escapes, strict number
// grammar, true/false/null).  The strict number grammar is the point:
// a "1,5" produced by a comma-decimal locale is rejected (the ","
// terminates the number and the follow-up "5" breaks the enclosing
// object/array grammar).  Not validated: \u surrogate pairing, UTF-8
// well-formedness — irrelevant for the ASCII output under test.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace rsp::testing {

class JsonLite {
 public:
  explicit JsonLite(const std::string& text) : s_(text) {}

  /// True iff the whole input is exactly one valid JSON value
  /// (surrounding whitespace allowed).
  [[nodiscard]] bool valid() {
    i_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return i_ == s_.size();
  }

 private:
  [[nodiscard]] bool eof() const { return i_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[i_]; }
  bool consume(char c) {
    if (eof() || s_[i_] != c) return false;
    ++i_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' ||
                      s_[i_] == '\r')) {
      ++i_;
    }
  }
  bool literal(const char* lit) {
    const std::size_t start = i_;
    for (const char* p = lit; *p != '\0'; ++p) {
      if (!consume(*p)) {
        i_ = start;
        return false;
      }
    }
    return true;
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default:  return number();
    }
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = s_[i_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (eof()) return false;
        const char e = s_[i_++];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            if (eof() || std::isxdigit(static_cast<unsigned char>(s_[i_])) == 0)
              return false;
            ++i_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;
  }

  bool digits() {
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
      return false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++i_;
    return true;
  }

  bool number() {
    (void)consume('-');
    // int part: 0, or [1-9][0-9]*
    if (consume('0')) {
      // leading zero must not be followed by more digits
      if (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
        return false;
    } else if (!digits()) {
      return false;
    }
    if (consume('.')) {
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++i_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++i_;
      if (!digits()) return false;
    }
    return true;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

[[nodiscard]] inline bool json_valid(const std::string& text) {
  return JsonLite(text).valid();
}

}  // namespace rsp::testing

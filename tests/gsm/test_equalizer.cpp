#include "src/gsm/equalizer.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/phy/channel.hpp"

namespace rsp::gsm {
namespace {

std::vector<std::uint8_t> random_payload(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> bits(2 * kDataBits);
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  return bits;
}

int payload_errors(const std::vector<std::uint8_t>& tx,
                   const std::vector<std::uint8_t>& rx) {
  int e = 0;
  for (std::size_t i = 0; i < tx.size(); ++i) e += (tx[i] != rx[i]) ? 1 : 0;
  return e;
}

TEST(GsmEqualizer, CleanFlatChannelRoundTrip) {
  const auto payload = random_payload(1);
  const auto tx = gmsk_map(Burst::make(payload));
  const auto res = gsm_receive(tx, 1);
  EXPECT_EQ(payload_errors(payload, res.payload), 0);
  EXPECT_NEAR(res.channel[0].real(), 1.0, 0.05);
}

TEST(GsmEqualizer, ChannelEstimateRecoversTaps) {
  const auto payload = random_payload(2);
  const std::vector<CplxF> h = {{0.9, 0.1}, {0.4, -0.2}, {-0.15, 0.1}};
  const auto rx = isi_channel(gmsk_map(Burst::make(payload)), h);
  const auto est = estimate_isi_channel(rx, 3);
  for (std::size_t k = 0; k < h.size(); ++k) {
    EXPECT_NEAR(est[k].real(), h[k].real(), 0.12) << "tap " << k;
    EXPECT_NEAR(est[k].imag(), h[k].imag(), 0.12) << "tap " << k;
  }
}

class GsmIsi : public ::testing::TestWithParam<int> {};

TEST_P(GsmIsi, MlseEqualizesKnownIsiChannels) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const auto payload = random_payload(static_cast<std::uint64_t>(seed) + 10);
  const std::vector<CplxF> h = {{0.85, 0.05},
                                {0.45 * rng.uniform(), 0.3 * rng.uniform()},
                                {-0.25 * rng.uniform(), 0.15 * rng.uniform()}};
  auto rx = isi_channel(gmsk_map(Burst::make(payload)), h);
  rx.resize(kBurstSymbols);
  rx = phy::awgn(rx, 14.0, rng);
  const auto res = gsm_receive(rx, 3);
  EXPECT_LE(payload_errors(payload, res.payload), 1)
      << "MLSE must clean a 3-tap channel at 14 dB";
}

INSTANTIATE_TEST_SUITE_P(Seeds, GsmIsi, ::testing::Values(1, 2, 3, 4, 5));

TEST(GsmEqualizer, MlseBeatsSymbolBySymbolSlicing) {
  Rng rng(9);
  const auto payload = random_payload(11);
  const std::vector<CplxF> h = {{0.8, 0.0}, {0.55, 0.2}};
  auto rx = isi_channel(gmsk_map(Burst::make(payload)), h);
  rx.resize(kBurstSymbols);
  rx = phy::awgn(rx, 10.0, rng);

  // Naive slicer ignoring ISI.
  Burst naive;
  for (int i = 0; i < kBurstSymbols; ++i) {
    naive.bits[static_cast<std::size_t>(i)] =
        rx[static_cast<std::size_t>(i)].real() < 0 ? 1 : 0;
  }
  const int naive_errors = payload_errors(payload, naive.payload());
  const auto res = gsm_receive(rx, 2);
  const int mlse_errors = payload_errors(payload, res.payload);
  EXPECT_GT(naive_errors, 5) << "channel must actually cause ISI";
  EXPECT_LT(mlse_errors, naive_errors / 3);
}

TEST(GsmEqualizer, ChargesDspWork) {
  const auto payload = random_payload(12);
  const auto tx = gmsk_map(Burst::make(payload));
  dsp::DspModel dsp;
  (void)gsm_receive(tx, 3, &dsp);
  EXPECT_TRUE(dsp.tasks().count("gsm_channel_estimation"));
  EXPECT_TRUE(dsp.tasks().count("mlse"));
  // Figure 1 cross-check: instructions/burst x bursts/s lands in the
  // ~10 MIPS class the paper quotes for GSM.
  const double mips = static_cast<double>(dsp.total_instructions()) *
                      kBurstsPerSecond / 1.0e6;
  EXPECT_GT(mips, 0.3);
  EXPECT_LT(mips, 40.0);
}

TEST(GsmEqualizer, EdgePsk8CleanRoundTrip) {
  Rng rng(13);
  std::vector<std::uint8_t> bits(3 * 116);
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  auto sym = psk8_map(bits);
  // Leading reference symbol pins the trellis start (index 0 symbol).
  sym.insert(sym.begin(), psk8_map({0, 0, 0})[0]);
  const std::vector<CplxF> h = {{0.95, 0.05}, {0.3, -0.15}};
  auto rx = isi_channel(sym, h);
  rx.resize(sym.size());
  rx = phy::awgn(rx, 22.0, rng);
  const auto decoded = edge_receive(rx, h, sym.size());
  // Drop the reference symbol's bits.
  const std::vector<std::uint8_t> tail(decoded.begin() + 3, decoded.end());
  EXPECT_EQ(payload_errors(bits, tail), 0)
      << "8 trellis states over a 2-tap channel, EDGE class";
}

TEST(GsmEqualizer, MlseRejectsOversizedTrellis) {
  const std::vector<CplxF> alphabet(8, CplxF{1, 0});
  const std::vector<CplxF> h(6, CplxF{0.5, 0});  // 8^5 states
  EXPECT_THROW((void)mlse_equalize({{1, 0}}, h, alphabet, 1),
               std::invalid_argument);
}

TEST(GsmEqualizer, EstimatorRejectsBadArgs) {
  EXPECT_THROW((void)estimate_isi_channel({}, 0), std::invalid_argument);
  EXPECT_THROW((void)estimate_isi_channel(std::vector<CplxF>(10), 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace rsp::gsm

#include "src/gsm/burst.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.hpp"

namespace rsp::gsm {
namespace {

std::vector<std::uint8_t> random_payload(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> bits(2 * kDataBits);
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  return bits;
}

TEST(GsmBurst, Geometry) {
  EXPECT_EQ(kBurstSymbols, 148);
  EXPECT_EQ(Burst::midamble_offset(), 61);
  EXPECT_EQ(tsc0().size(), 26u);
}

TEST(GsmBurst, PayloadRoundTrip) {
  const auto payload = random_payload(1);
  const Burst b = Burst::make(payload);
  EXPECT_EQ(b.payload(), payload);
  // Tail bits zero.
  for (int i = 0; i < kTailBits; ++i) {
    EXPECT_EQ(b.bits[static_cast<std::size_t>(i)], 0);
    EXPECT_EQ(b.bits[static_cast<std::size_t>(kBurstSymbols - 1 - i)], 0);
  }
  // Midamble = TSC0.
  for (int i = 0; i < kTrainingBits; ++i) {
    EXPECT_EQ(b.bits[static_cast<std::size_t>(Burst::midamble_offset() + i)],
              tsc0()[static_cast<std::size_t>(i)]);
  }
}

TEST(GsmBurst, MakeRejectsBadPayload) {
  EXPECT_THROW(Burst::make(std::vector<std::uint8_t>(100, 0)),
               std::invalid_argument);
}

TEST(GsmBurst, GmskMapIsAntipodal) {
  const Burst b = Burst::make(random_payload(2));
  const auto s = gmsk_map(b);
  ASSERT_EQ(s.size(), static_cast<std::size_t>(kBurstSymbols));
  for (int i = 0; i < kBurstSymbols; ++i) {
    EXPECT_EQ(s[static_cast<std::size_t>(i)].real(),
              b.bits[static_cast<std::size_t>(i)] ? -1.0 : 1.0);
    EXPECT_EQ(s[static_cast<std::size_t>(i)].imag(), 0.0);
  }
}

TEST(GsmBurst, Psk8RoundTripAndUnitPower) {
  Rng rng(3);
  std::vector<std::uint8_t> bits(3 * 120);
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  const auto sym = psk8_map(bits);
  ASSERT_EQ(sym.size(), 120u);
  for (const auto& s : sym) {
    EXPECT_NEAR(std::abs(s), 1.0, 1e-12);
  }
  EXPECT_EQ(psk8_unmap_hard(sym), bits);
  EXPECT_THROW((void)psk8_map({1, 0}), std::invalid_argument);
}

TEST(GsmBurst, Psk8GrayNeighborsDifferInOneBit) {
  // Adjacent octants differ in exactly one bit.
  std::vector<std::uint8_t> all;
  for (int w = 0; w < 8; ++w) {
    all.push_back(static_cast<std::uint8_t>((w >> 2) & 1));
    all.push_back(static_cast<std::uint8_t>((w >> 1) & 1));
    all.push_back(static_cast<std::uint8_t>(w & 1));
  }
  const auto sym = psk8_map(all);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      const double d = std::abs(sym[static_cast<std::size_t>(i)] -
                                sym[static_cast<std::size_t>(j)]);
      if (i != j && d < 0.8) {  // adjacent octants
        const int diff = __builtin_popcount(static_cast<unsigned>(i ^ j));
        EXPECT_EQ(diff, 1) << "octant words " << i << "," << j;
      }
    }
  }
}

TEST(GsmBurst, IsiChannelConvolves) {
  const std::vector<CplxF> x = {{1, 0}, {0, 0}, {-1, 0}};
  const std::vector<CplxF> h = {{1, 0}, {0.5, 0}};
  const auto y = isi_channel(x, h);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_NEAR(std::abs(y[0] - CplxF{1.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(y[1] - CplxF{0.5, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(y[2] - CplxF{-1.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(y[3] - CplxF{-0.5, 0.0}), 0.0, 1e-12);
}

}  // namespace
}  // namespace rsp::gsm

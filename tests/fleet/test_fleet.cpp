// Differential battery for the terminal-fleet session manager
// (src/fleet/fleet.hpp): an admitted session — whether its programs
// were adopted from the shared cache at admission (hit), compiled
// locally (miss), or re-bound after a mid-session reconfigure — must
// be bit-identical, output for output and cycle for cycle, to a cold
// per-instance kCompiled run of the same boundary script.  The battery
// also pins the serving claims themselves: a cache-hit session never
// runs steady-state detection (compiles == 0, fleet arms > 0), a miss
// publishes so the next admission hits, evict/re-admit churn recycles
// lane slots, and trajectories are identical at any worker-thread
// count (run under -DRSP_SANITIZE=tsan via scripts/check.sh).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/fleet/fleet.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/builder.hpp"
#include "src/xpp/manager.hpp"

namespace rsp::fleet {
namespace {

using xpp::ConfigId;
using xpp::Configuration;
using xpp::ConfigurationManager;
using xpp::Word;

std::vector<CplxI> random_chips(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CplxI> out(n);
  for (auto& c : out) {
    c = {static_cast<int>(rng.below(2000)) - 1000,
         static_cast<int>(rng.below(2000)) - 1000};
  }
  return out;
}

// Boundary script shared verbatim by the fleet drive and the cold
// per-instance reference drive — only who executes the cycles differs.
struct Step {
  std::vector<std::pair<std::string, std::vector<Word>>> feeds;
  long long cycles = 0;
};

struct Obs {
  std::vector<Word> out;
  long long cycle = 0;
  long long fires = 0;
  friend bool operator==(const Obs&, const Obs&) = default;
};

std::vector<Step> descrambler_steps(std::size_t lane, std::size_t n_chips) {
  const auto chips = random_chips(n_chips, 13 + lane);
  dedhw::UmtsScrambler scr(16);
  std::vector<Word> code(n_chips);
  for (auto& c : code) c = scr.next2() & 3;
  return {{{{"data", rake::maps::pack_stream(chips)}, {"code", std::move(code)}},
           static_cast<long long>(n_chips) + 256}};
}

std::vector<Step> despreader_steps(std::size_t lane, std::size_t n_chips) {
  const auto chips = random_chips(n_chips, 29 + lane);
  return {{{{"data", rake::maps::pack_stream(chips)}},
           static_cast<long long>(n_chips) + 256}};
}

/// Cold reference: a fresh stand-alone kCompiled terminal (no shared
/// cache, no fleet) running @p steps.
Obs drive_cold(const Configuration& cfg, const std::vector<Step>& steps) {
  ConfigurationManager mgr({}, xpp::SchedulerKind::kCompiled);
  const ConfigId id = mgr.load(cfg);
  for (const auto& step : steps) {
    for (const auto& [port, words] : step.feeds) {
      mgr.input(id, port).feed(words);
    }
    mgr.sim().run(step.cycles);
  }
  return {mgr.output(id, "out").take(), mgr.sim().cycle(),
          mgr.sim().total_fires()};
}

Obs observe(FleetManager& fleet, SessionId id) {
  return {fleet.output(id, "out").take(),
          fleet.board(id).array().sim().cycle(),
          fleet.board(id).array().sim().total_fires()};
}

/// Feed @p steps into @p id and advance the whole fleet step by step.
void drive(FleetManager& fleet, SessionId id, const std::vector<Step>& steps) {
  for (const auto& step : steps) {
    for (const auto& [port, words] : step.feeds) {
      fleet.input(id, port).feed(words);
    }
    fleet.run_cycles(step.cycles);
  }
}

const xpp::CompiledStats& engine_stats(FleetManager& fleet, SessionId id) {
  return fleet.board(id).array().sim().compiled_engine()->stats();
}

// ---------------------------------------------------------------------------
// Cache-hit admission: detection skipped, trajectory bit-identical
// ---------------------------------------------------------------------------

TEST(Fleet, CacheHitAdmissionSkipsDetectionDescrambler) {
  const std::size_t kChips = 1024;
  const auto cfg = rake::maps::descrambler_config();
  FleetManager fleet;

  // Warm terminal: misses, detects, compiles, publishes.
  const SessionId warm = fleet.admit(cfg);
  EXPECT_FALSE(fleet.cache_hit(warm));
  drive(fleet, warm, descrambler_steps(0, kChips));
  ASSERT_GE(fleet.cache().stats().inserts, 1)
      << "warm session never published its program";
  EXPECT_GE(engine_stats(fleet, warm).compiles, 1);

  // Admitted terminal: adopts the published image at cycle 0 and must
  // never run steady-state detection, yet its trajectory is
  // bit-identical to a cold stand-alone kCompiled run.
  const SessionId hot = fleet.admit(cfg);
  EXPECT_TRUE(fleet.cache_hit(hot));
  EXPECT_GE(engine_stats(fleet, hot).fleet_adopts, 1);
  const auto steps = descrambler_steps(1, kChips);
  drive(fleet, hot, steps);
  const Obs got = observe(fleet, hot);
  const Obs want = drive_cold(cfg, steps);
  EXPECT_EQ(want.out, got.out) << "cache-hit trajectory diverged from cold";
  EXPECT_EQ(want.cycle, got.cycle);
  EXPECT_EQ(want.fires, got.fires);
  const auto& st = engine_stats(fleet, hot);
  EXPECT_EQ(st.compiles, 0) << "cache-hit session ran detection";
  EXPECT_GE(st.fleet_arms, 1) << "adopted program never armed";
  EXPECT_GT(st.replayed_cycles, 0);
}

TEST(Fleet, CacheHitAdmissionDespreader) {
  // The despreader exercises the period-upgrade escape hatch: if the
  // adopted program's period is rejected by the engine's preferred
  // period, fleet mode must hand back to the detector rather than
  // interpret forever — and either way the trajectory matches cold.
  const std::size_t kChips = 1024;
  const auto cfg = rake::maps::despreader_config(16, 1);
  FleetManager fleet;
  const SessionId warm = fleet.admit(cfg);
  drive(fleet, warm, despreader_steps(0, kChips));
  ASSERT_GE(fleet.cache().stats().inserts, 1);

  const SessionId hot = fleet.admit(cfg);
  EXPECT_TRUE(fleet.cache_hit(hot));
  const auto steps = despreader_steps(1, kChips);
  drive(fleet, hot, steps);
  const Obs got = observe(fleet, hot);
  const Obs want = drive_cold(cfg, steps);
  EXPECT_EQ(want.out, got.out);
  EXPECT_EQ(want.cycle, got.cycle);
  EXPECT_EQ(want.fires, got.fires);
  EXPECT_GT(engine_stats(fleet, hot).replayed_cycles, 0);
}

// ---------------------------------------------------------------------------
// Miss → publish: concurrent same-config admissions converge on one image
// ---------------------------------------------------------------------------

TEST(Fleet, MissPublishesForNextAdmission) {
  const std::size_t kChips = 1024;
  const auto cfg = rake::maps::descrambler_config();
  FleetManager fleet;
  const SessionId a = fleet.admit(cfg);
  const SessionId b = fleet.admit(cfg);
  EXPECT_FALSE(fleet.cache_hit(a));
  EXPECT_FALSE(fleet.cache_hit(b));
  const auto sa = descrambler_steps(0, kChips);
  const auto sb = descrambler_steps(1, kChips);
  // Interleave the feeds, then advance both sessions together.
  for (std::size_t s = 0; s < sa.size(); ++s) {
    for (const auto& [port, words] : sa[s].feeds) {
      fleet.input(a, port).feed(words);
    }
    for (const auto& [port, words] : sb[s].feeds) {
      fleet.input(b, port).feed(words);
    }
    fleet.run_cycles(sa[s].cycles);
  }
  // Identical configs produce one canonical image however the two
  // detections race (first insert wins on identical content).
  EXPECT_EQ(fleet.cache().stats().inserts, 1);
  const Obs got_a = observe(fleet, a);
  const Obs got_b = observe(fleet, b);
  EXPECT_EQ(drive_cold(cfg, sa).out, got_a.out);
  EXPECT_EQ(drive_cold(cfg, sb).out, got_b.out);
  // The published image serves the next admission.
  const SessionId c = fleet.admit(cfg);
  EXPECT_TRUE(fleet.cache_hit(c));
}

// ---------------------------------------------------------------------------
// Mid-session reconfigure
// ---------------------------------------------------------------------------

TEST(Fleet, MidSessionReconfigureBitIdentity) {
  const std::size_t kChips = 768;
  const auto descr = rake::maps::descrambler_config();
  const auto despr = rake::maps::despreader_config(16, 1);
  const auto s1 = descrambler_steps(3, kChips);
  const auto s2 = despreader_steps(4, kChips);

  // Cold reference: one stand-alone terminal running the same
  // release/load script on its own array.
  ConfigurationManager mgr({}, xpp::SchedulerKind::kCompiled);
  ConfigId id = mgr.load(descr);
  for (const auto& step : s1) {
    for (const auto& [port, words] : step.feeds) {
      mgr.input(id, port).feed(words);
    }
    mgr.sim().run(step.cycles);
  }
  const std::vector<Word> want1 = mgr.output(id, "out").take();
  mgr.release(id);
  id = mgr.load(despr);
  for (const auto& step : s2) {
    for (const auto& [port, words] : step.feeds) {
      mgr.input(id, port).feed(words);
    }
    mgr.sim().run(step.cycles);
  }
  const std::vector<Word> want2 = mgr.output(id, "out").take();
  const long long want_cycle = mgr.sim().cycle();

  // Fleet drive: warm both configs first so the reconfigured session
  // re-admits as a cache hit, then replay the same script.
  FleetManager fleet;
  const SessionId w1 = fleet.admit(descr);
  drive(fleet, w1, descrambler_steps(0, kChips));
  const SessionId w2 = fleet.admit(despr);
  drive(fleet, w2, despreader_steps(0, kChips));

  const SessionId s = fleet.admit(descr);
  EXPECT_TRUE(fleet.cache_hit(s));
  drive(fleet, s, s1);
  const std::vector<Word> got1 = fleet.output(s, "out").take();
  fleet.reconfigure(s, despr);
  EXPECT_TRUE(fleet.cache_hit(s)) << "re-admission missed a warmed cache";
  EXPECT_EQ(fleet.crc_of(s), despr.checksum.value());
  drive(fleet, s, s2);
  EXPECT_EQ(want1, got1);
  EXPECT_EQ(want2, fleet.output(s, "out").take());
  EXPECT_EQ(want_cycle, fleet.board(s).array().sim().cycle());
  EXPECT_EQ(fleet.stats().reconfigures, 1);
}

TEST(Fleet, ReconfigureLoadFailureRollsBack) {
  const auto descr = rake::maps::descrambler_config();
  Configuration bad = rake::maps::despreader_config(16, 1);
  bad.checksum = *bad.checksum ^ 1u;  // corrupt: load must reject it
  FleetManager fleet;
  const SessionId s = fleet.admit(descr);
  EXPECT_THROW(fleet.reconfigure(s, bad), xpp::ConfigError);
  // The session survived with its old configuration loaded and
  // re-joined — it can still be driven.
  EXPECT_EQ(fleet.crc_of(s), descr.checksum.value());
  drive(fleet, s, descrambler_steps(9, 256));
  EXPECT_FALSE(fleet.output(s, "out").take().empty());
  EXPECT_EQ(fleet.stats().reconfigures, 0);
}

// ---------------------------------------------------------------------------
// Evict / re-admit churn: determinism at every thread count, slot reuse
// ---------------------------------------------------------------------------

std::vector<Obs> churn_campaign(int threads) {
  const std::size_t kChips = 512;
  const auto descr = rake::maps::descrambler_config();
  const auto despr = rake::maps::despreader_config(16, 1);
  FleetOptions opts;
  opts.threads = threads;
  FleetManager fleet(opts);

  // Two groups (distinct CRCs) so multi-threaded dispatch has real
  // concurrent work; sessions evicted and re-admitted mid-campaign.
  std::vector<SessionId> ids;
  for (std::size_t i = 0; i < 3; ++i) ids.push_back(fleet.admit(descr));
  for (std::size_t i = 0; i < 3; ++i) ids.push_back(fleet.admit(despr));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto steps = i < 3 ? descrambler_steps(i, kChips)
                             : despreader_steps(i, kChips);
    for (const auto& [port, words] : steps[0].feeds) {
      fleet.input(ids[i], port).feed(words);
    }
  }
  fleet.run_cycles(static_cast<long long>(kChips) + 256);

  std::vector<Obs> obs;
  for (const SessionId id : ids) obs.push_back(observe(fleet, id));

  // Churn: evict one session of each group, re-admit, drive again.
  fleet.evict(ids[0]);
  fleet.evict(ids[3]);
  ids[0] = fleet.admit(descr);
  ids[3] = fleet.admit(despr);
  EXPECT_TRUE(fleet.cache_hit(ids[0]));
  EXPECT_TRUE(fleet.cache_hit(ids[3]));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto steps = i < 3 ? descrambler_steps(100 + i, kChips)
                             : despreader_steps(100 + i, kChips);
    for (const auto& [port, words] : steps[0].feeds) {
      fleet.input(ids[i], port).feed(words);
    }
  }
  fleet.run_cycles(static_cast<long long>(kChips) + 256);
  for (const SessionId id : ids) obs.push_back(observe(fleet, id));

  const FleetStats st = fleet.stats();
  EXPECT_EQ(st.sessions, 6);
  EXPECT_EQ(st.evicts, 2);
  EXPECT_EQ(st.groups, 2);
  return obs;
}

TEST(Fleet, ChurnDeterministicAcrossThreadCounts) {
  const unsigned hw = std::thread::hardware_concurrency();
  const auto base = churn_campaign(1);
  ASSERT_FALSE(base.empty());
  for (const int t : {2, static_cast<int>(hw == 0 ? 1 : hw) + 3}) {
    EXPECT_EQ(base, churn_campaign(t))
        << "trajectories diverged at threads=" << t;
  }
}

TEST(Fleet, EvictRecyclesLaneSlots) {
  const auto cfg = rake::maps::descrambler_config();
  FleetManager fleet;
  const SessionId warm = fleet.admit(cfg);
  drive(fleet, warm, descrambler_steps(0, 512));
  // Admit/evict churn at a steady population of 2 must not grow the
  // per-group lane table (or the fleet's session/group bookkeeping).
  for (int round = 0; round < 8; ++round) {
    const SessionId s = fleet.admit(cfg);
    EXPECT_TRUE(fleet.cache_hit(s));
    drive(fleet, s, descrambler_steps(1 + round, 256));
    fleet.evict(s);
  }
  EXPECT_EQ(fleet.sessions(), 1);
  const FleetStats st = fleet.stats();
  EXPECT_EQ(st.groups, 1);
  EXPECT_EQ(st.admits, 9);
  EXPECT_EQ(st.evicts, 8);
  // Stats stay monotone across churn: every evicted hit session's
  // adopt shows up in the folded totals.
  EXPECT_GE(st.fleet_adopts, 8);
  EXPECT_GE(st.fleet_arms, 8);
}

// ---------------------------------------------------------------------------
// Edges
// ---------------------------------------------------------------------------

TEST(Fleet, EmptyFleetAndUnknownSessions) {
  FleetManager fleet;
  fleet.run_cycles(1000);  // no sessions: must be a no-op, not a hang
  EXPECT_EQ(fleet.sessions(), 0);
  EXPECT_THROW(fleet.board(0), std::out_of_range);
  EXPECT_THROW(fleet.evict(7), std::out_of_range);
  const SessionId s = fleet.admit(rake::maps::descrambler_config());
  fleet.evict(s);
  EXPECT_THROW(fleet.board(s), std::out_of_range);
  fleet.run_cycles(64);  // all sessions evicted: again a no-op
  EXPECT_EQ(fleet.stats().sessions, 0);
}

TEST(Fleet, RejectsBadOptions) {
  FleetOptions negative;
  negative.threads = -1;
  EXPECT_THROW(FleetManager{negative}, std::invalid_argument);
  FleetOptions width;
  width.batch_width = 0;
  EXPECT_THROW(FleetManager{width}, std::invalid_argument);
}

}  // namespace
}  // namespace rsp::fleet

#include "src/dsp/dsp.hpp"

#include <gtest/gtest.h>

namespace rsp::dsp {
namespace {

TEST(Dsp, OpCostsOrdered) {
  EXPECT_EQ(op_cycles(DspOp::kAlu), 1);
  EXPECT_EQ(op_cycles(DspOp::kMac), 1);
  EXPECT_GT(op_cycles(DspOp::kDiv), op_cycles(DspOp::kBranch));
  EXPECT_GT(op_cycles(DspOp::kSqrt), op_cycles(DspOp::kDiv));
}

TEST(Dsp, ChargeAccumulatesPerTask) {
  DspModel dsp;
  dsp.charge("search", DspOp::kMac, 100);
  dsp.charge("search", DspOp::kDiv, 2);
  dsp.charge("control", DspOp::kBranch, 10);
  EXPECT_EQ(dsp.total_instructions(), 112);
  EXPECT_EQ(dsp.total_cycles(), 100 + 2 * 18 + 10 * 2);
  ASSERT_EQ(dsp.tasks().size(), 2u);
  EXPECT_EQ(dsp.tasks().at("search").instructions, 102);
  EXPECT_EQ(dsp.tasks().at("control").cycles, 20);
}

TEST(Dsp, MipsAndUtilization) {
  DspModel dsp;
  dsp.charge("t", DspOp::kMac, 1'000'000);
  // 1M instructions in 10 ms -> 100 MIPS.
  EXPECT_NEAR(dsp.mips_required(0.01), 100.0, 1e-6);
  // Busy time at 200 MHz: 5 ms single-issue; 8-wide -> 6.25% of 10 ms.
  EXPECT_NEAR(dsp.busy_seconds(), 5e-3, 1e-9);
  EXPECT_NEAR(dsp.utilization(0.01), 5e-3 / kIssueWidth / 0.01, 1e-9);
}

TEST(Dsp, PaperReferenceNumbers) {
  // "around 1600 MIPS at clock speeds of 200 MHz"
  EXPECT_EQ(kDspPeakMips, 1600.0);
  EXPECT_EQ(kDspClockHz, 200.0e6);
  EXPECT_EQ(kIssueWidth, 8.0);
}

TEST(Dsp, ResetClears) {
  DspModel dsp;
  dsp.charge("x", DspOp::kAlu, 5);
  dsp.reset();
  EXPECT_EQ(dsp.total_instructions(), 0);
  EXPECT_TRUE(dsp.tasks().empty());
}

}  // namespace
}  // namespace rsp::dsp

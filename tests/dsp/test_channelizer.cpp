// Golden-reference battery for the array-mapped polyphase channelizer:
// fixed-point sub-bands vs the double-precision DFT-filter-bank model,
// within a pinned tolerance; edge sweeps; scheduler bit-identity.
#include "src/chan/maps.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/chan/golden.hpp"
#include "src/common/rng.hpp"
#include "src/xpp/manager.hpp"

namespace rsp::chan {
namespace {

using xpp::SchedulerKind;

// Pinned fixed-point tolerance, in 12-bit output LSBs, per component.
//
// Derivation (see also kBranchShift in maps.hpp): each branch FIR term
// is kCMulShr(x, (h_q, 0)) >> 13, so per component the error against
// the golden x * h/4 is
//   - coefficient quantization: |h_q/2^13 - h/4| <= 2^-14, times
//     |x| <= 2048  ->  0.125 LSB, and
//   - one shr_round         ->  0.5 LSB,
// i.e. 0.625 LSB per tap, 2.5 LSB per 4-tap branch.  The radix-4
// butterfly adds four branch outputs exactly (kCAdd never saturates at
// this scaling; the -j rotation is a lossless component swap), so the
// worst case is 4 * 2.5 = 10 LSB.  Pinned with a little headroom:
constexpr double kTolLsb = 12.0;

std::vector<CplxI> random_input(std::size_t n, std::uint64_t seed,
                                int amp = 2047) {
  Rng rng(seed);
  std::vector<CplxI> x(n);
  for (auto& c : x) {
    c = {static_cast<int>(rng.below(static_cast<std::uint32_t>(2 * amp + 1))) -
             amp,
         static_cast<int>(rng.below(static_cast<std::uint32_t>(2 * amp + 1))) -
             amp};
  }
  return x;
}

std::vector<CplxD> to_double(const std::vector<CplxI>& x) {
  std::vector<CplxD> d(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) d[i] = x[i].to_f();
  return d;
}

/// Max per-component |array - golden| across all bands and samples.
double max_error(const std::array<std::vector<CplxI>, kBands>& got,
                 const std::array<std::vector<CplxD>, kBands>& want) {
  double worst = 0.0;
  for (int b = 0; b < kBands; ++b) {
    EXPECT_EQ(got[b].size(), want[b].size()) << "band " << b;
    for (std::size_t m = 0; m < got[b].size(); ++m) {
      worst = std::max(worst, std::abs(got[b][m].re - want[b][m].real()));
      worst = std::max(worst, std::abs(got[b][m].im - want[b][m].imag()));
    }
  }
  return worst;
}

TEST(Channelizer, PrototypeIsNormalizedLowpass) {
  const auto h = prototype_taps();
  double abs_sum = 0.0;
  for (const double v : h) abs_sum += std::abs(v);
  EXPECT_NEAR(abs_sum, 0.9, 1e-12);
  // Symmetric (linear phase) and centre-heavy.
  for (int n = 0; n < kProtoTaps / 2; ++n) {
    EXPECT_NEAR(h[n], h[kProtoTaps - 1 - n], 1e-12) << n;
  }
  EXPECT_GT(h[7], std::abs(h[0]));
}

TEST(Channelizer, RandomInputMatchesGoldenWithinPinnedTolerance) {
  xpp::ConfigurationManager mgr;
  for (int trial = 0; trial < 5; ++trial) {
    const auto x =
        random_input(256, static_cast<std::uint64_t>(trial) + 1);
    const auto got = run_channelizer(mgr, x);
    const auto want = golden_channelize(to_double(x));
    EXPECT_LE(max_error(got, want), kTolLsb) << "trial " << trial;
  }
}

// Edge sweep: all-zero, full-scale DC, full-scale alternating sign
// (Nyquist), and the four corner constants.
TEST(Channelizer, EdgeSweepStaysWithinToleranceAndNeverSaturates) {
  xpp::ConfigurationManager mgr;
  std::vector<std::vector<CplxI>> edges;
  edges.push_back(std::vector<CplxI>(128, CplxI{0, 0}));
  edges.push_back(std::vector<CplxI>(128, CplxI{2047, 2047}));
  edges.push_back(std::vector<CplxI>(128, CplxI{-2047, -2047}));
  edges.push_back(std::vector<CplxI>(128, CplxI{2047, -2047}));
  edges.push_back(std::vector<CplxI>(128, CplxI{-2048 + 1, 2047}));
  {
    std::vector<CplxI> alt(128);
    for (std::size_t n = 0; n < alt.size(); ++n) {
      alt[n] = (n % 2 == 0) ? CplxI{2047, 2047} : CplxI{-2047, -2047};
    }
    edges.push_back(std::move(alt));
  }
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto got = run_channelizer(mgr, edges[e]);
    const auto want = golden_channelize(to_double(edges[e]));
    EXPECT_LE(max_error(got, want), kTolLsb) << "edge " << e;
    // The kBranchShift scaling argument: no output component may ever
    // reach the 12-bit saturation rails, even at full scale.
    for (int b = 0; b < kBands; ++b) {
      for (const CplxI& z : got[b]) {
        ASSERT_LT(std::abs(z.re), 2047) << "band " << b;
        ASSERT_LT(std::abs(z.im), 2047) << "band " << b;
      }
    }
  }
}

TEST(Channelizer, AllZeroInputYieldsExactZeros) {
  xpp::ConfigurationManager mgr;
  const std::vector<CplxI> x(64, CplxI{0, 0});
  const auto got = run_channelizer(mgr, x);
  for (int b = 0; b < kBands; ++b) {
    for (const CplxI& z : got[b]) {
      ASSERT_EQ(z, (CplxI{0, 0})) << "band " << b;
    }
  }
}

// Semantic selectivity: a complex tone at band c's centre frequency
// (omega = 2*pi*c/4) lands its energy in sub-band c.
TEST(Channelizer, TonePerBandLandsInItsOwnSubBand) {
  xpp::ConfigurationManager mgr;
  for (int c = 0; c < kBands; ++c) {
    std::vector<CplxI> x(256);
    for (std::size_t n = 0; n < x.size(); ++n) {
      const double ph = 2.0 * M_PI * c * static_cast<double>(n) / kBands;
      x[n] = {static_cast<int>(std::lround(1500.0 * std::cos(ph))),
              static_cast<int>(std::lround(1500.0 * std::sin(ph)))};
    }
    const auto got = run_channelizer(mgr, x);
    // Steady-state mean magnitude per band (skip the FIR warm-up).
    std::array<double, kBands> mag{};
    for (int b = 0; b < kBands; ++b) {
      for (std::size_t m = 8; m < got[b].size(); ++m) {
        mag[b] += std::sqrt(static_cast<double>(got[b][m].norm2()));
      }
    }
    for (int b = 0; b < kBands; ++b) {
      if (b == c) continue;
      EXPECT_GT(mag[c], 4.0 * mag[b]) << "tone " << c << " vs band " << b;
    }
  }
}

TEST(Channelizer, BitIdenticalAcrossSchedulers) {
  const auto x = random_input(128, 99);
  std::array<std::vector<CplxI>, kBands> ref;
  bool first = true;
  for (const SchedulerKind kind :
       {SchedulerKind::kScan, SchedulerKind::kEventDriven,
        SchedulerKind::kCompiled}) {
    xpp::ConfigurationManager mgr({}, kind);
    const auto got = run_channelizer(mgr, x);
    if (first) {
      ref = got;
      first = false;
    } else {
      for (int b = 0; b < kBands; ++b) {
        ASSERT_EQ(got[b], ref[b])
            << "scheduler " << static_cast<int>(kind) << " band " << b;
      }
    }
  }
}

TEST(Channelizer, RejectsNonMultipleOfBandsAndOversizedSamples) {
  xpp::ConfigurationManager mgr;
  EXPECT_THROW((void)run_channelizer(mgr, std::vector<CplxI>(7)),
               std::invalid_argument);
  std::vector<CplxI> big(8, CplxI{0, 0});
  big[2] = {2048, 0};
  EXPECT_THROW((void)run_channelizer(mgr, big), std::invalid_argument);
}

}  // namespace
}  // namespace rsp::chan

#include "src/dedhw/crc.hpp"

#include <gtest/gtest.h>

namespace rsp::dedhw {
namespace {

std::vector<std::uint8_t> bits_of(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (const int b : v) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

TEST(Crc, AppendThenCheckPasses) {
  auto bits = bits_of({1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0});
  kCrc16Umts.append(bits);
  EXPECT_EQ(bits.size(), 12u + 16u);
  EXPECT_TRUE(kCrc16Umts.check(bits));
}

TEST(Crc, DetectsSingleBitErrors) {
  auto bits = bits_of({1, 1, 0, 1, 0, 1, 0, 0, 1, 0});
  kCrc16Umts.append(bits);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    auto corrupted = bits;
    corrupted[i] ^= 1;
    EXPECT_FALSE(kCrc16Umts.check(corrupted)) << "bit " << i;
  }
}

TEST(Crc, DetectsBurstErrorsUpToWidth) {
  auto bits = bits_of({0, 1, 1, 0, 1, 0, 1, 1, 0, 0, 1, 1, 0, 1});
  kCrc8Umts.append(bits);
  // Any burst of length <= 8 must be caught.
  for (std::size_t start = 0; start + 8 <= bits.size(); ++start) {
    auto corrupted = bits;
    for (std::size_t i = 0; i < 8; ++i) corrupted[start + i] ^= 1;
    EXPECT_FALSE(kCrc8Umts.check(corrupted)) << "burst at " << start;
  }
}

TEST(Crc, ZeroMessageNonZeroWithInit) {
  const Crc crc(16, 0x1021, 0xFFFF);
  const std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_NE(crc.compute(zeros), 0u);
  EXPECT_EQ(kCrc16Umts.compute(zeros), 0u) << "zero-init CRC of zeros is zero";
}

TEST(Crc, TooShortFailsCheck) {
  EXPECT_FALSE(kCrc16Umts.check(bits_of({1, 0, 1})));
}

TEST(Crc, DifferentMessagesDifferentCrc) {
  auto a = bits_of({1, 0, 1, 0, 1, 0, 1, 0});
  auto b = bits_of({1, 0, 1, 0, 1, 0, 1, 1});
  EXPECT_NE(kCrc16Umts.compute(a), kCrc16Umts.compute(b));
}

}  // namespace
}  // namespace rsp::dedhw

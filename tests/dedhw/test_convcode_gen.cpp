#include "src/dedhw/convcode_gen.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/dedhw/convcode.hpp"

namespace rsp::dedhw {
namespace {

std::vector<std::uint8_t> random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  return bits;
}

TEST(ConvGen, SpecAccessors) {
  const auto r13 = umts_rate13();
  EXPECT_EQ(r13.constraint_length, 9);
  EXPECT_EQ(r13.rate_denominator(), 3);
  EXPECT_EQ(r13.num_states(), 256);
  EXPECT_EQ(umts_rate12().rate_denominator(), 2);
}

TEST(ConvGen, MatchesSpecializedK7Encoder) {
  // The general encoder with the 802.11a spec must reproduce the
  // specialized rate-1/2 encoder bit for bit.
  const ConvSpec k7{7, {0133, 0171}};
  const auto bits = random_bits(200, 1);
  EXPECT_EQ(conv_encode_gen(bits, k7, true),
            conv_encode(bits, CodeRate::kR12, true));
}

TEST(ConvGen, AllZeroMapsToAllZero) {
  const auto coded = conv_encode_gen(std::vector<std::uint8_t>(50, 0),
                                     umts_rate13(), true);
  EXPECT_EQ(coded.size(), (50u + 8u) * 3u);
  for (const auto b : coded) EXPECT_EQ(b, 0);
}

class ConvGenRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ConvGenRoundTrip, CleanDecode) {
  const auto spec = GetParam() == 0 ? umts_rate13() : umts_rate12();
  const auto bits = random_bits(160, 7);
  const auto coded = conv_encode_gen(bits, spec, true);
  std::vector<std::int32_t> soft(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) soft[i] = coded[i] ? 64 : -64;
  ViterbiDecoderGen dec(spec);
  EXPECT_EQ(dec.decode(soft, bits.size(), true), bits);
}

INSTANTIATE_TEST_SUITE_P(UmtsCodes, ConvGenRoundTrip, ::testing::Values(0, 1));

TEST(ConvGen, Rate13CodingGainBeatsRate12) {
  // At the same Es/N0 per coded bit, the K=9 rate-1/3 code must decode
  // at least as cleanly as rate-1/2 (more redundancy).
  Rng rng(5);
  const auto bits = random_bits(500, 9);
  const double sigma = 1.05;
  const auto run = [&](const ConvSpec& spec) {
    const auto coded = conv_encode_gen(bits, spec, true);
    std::vector<std::int32_t> soft(coded.size());
    Rng ch(11);
    for (std::size_t i = 0; i < coded.size(); ++i) {
      const double y = (coded[i] ? 1.0 : -1.0) + sigma * ch.gaussian();
      soft[i] = static_cast<std::int32_t>(y * 64.0);
    }
    ViterbiDecoderGen dec(spec);
    const auto out = dec.decode(soft, bits.size(), true);
    int errors = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      errors += (out[i] != bits[i]) ? 1 : 0;
    }
    return errors;
  };
  EXPECT_LE(run(umts_rate13()), run(umts_rate12()));
}

TEST(ConvGen, CorrectsScatteredErrors) {
  const auto bits = random_bits(300, 13);
  auto coded = conv_encode_gen(bits, umts_rate13(), true);
  for (std::size_t i = 15; i < coded.size(); i += 45) coded[i] ^= 1;
  std::vector<std::int32_t> soft(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) soft[i] = coded[i] ? 64 : -64;
  ViterbiDecoderGen dec(umts_rate13());
  EXPECT_EQ(dec.decode(soft, bits.size(), true), bits)
      << "K=9 free distance must absorb scattered flips";
}

TEST(ConvGen, RejectsBadSpecs) {
  EXPECT_THROW((void)conv_encode_gen({1}, {1, {07}}, true),
               std::invalid_argument);
  EXPECT_THROW((void)conv_encode_gen({1}, {9, {}}, true),
               std::invalid_argument);
  EXPECT_THROW(ViterbiDecoderGen({14, {07777, 05555}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rsp::dedhw

#include "src/dedhw/viterbi.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"

namespace rsp::dedhw {
namespace {

std::vector<std::uint8_t> random_bits(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  return bits;
}

TEST(Viterbi, DecodesCleanRateHalf) {
  Rng rng(1);
  const auto bits = random_bits(rng, 120);
  const auto coded = conv_encode(bits, CodeRate::kR12, true);
  ViterbiDecoder dec;
  EXPECT_EQ(dec.decode_hard(coded, bits.size(), true), bits);
}

class ViterbiRates : public ::testing::TestWithParam<CodeRate> {};

TEST_P(ViterbiRates, DecodesCleanPunctured) {
  Rng rng(7);
  const auto bits = random_bits(rng, 96);
  const auto coded = conv_encode(bits, GetParam(), true);
  std::vector<std::int32_t> soft;
  soft.reserve(coded.size());
  for (const auto b : coded) soft.push_back(b ? 64 : -64);
  const auto lattice = depuncture(soft, GetParam());
  ViterbiDecoder dec;
  EXPECT_EQ(dec.decode(lattice, bits.size(), true), bits);
}

INSTANTIATE_TEST_SUITE_P(AllRates, ViterbiRates,
                         ::testing::Values(CodeRate::kR12, CodeRate::kR23,
                                           CodeRate::kR34));

TEST(Viterbi, CorrectsHardBitErrors) {
  Rng rng(3);
  const auto bits = random_bits(rng, 200);
  auto coded = conv_encode(bits, CodeRate::kR12, true);
  // Flip well-separated coded bits (free distance 10 tolerates them).
  for (std::size_t i = 20; i < coded.size(); i += 40) coded[i] ^= 1;
  ViterbiDecoder dec;
  EXPECT_EQ(dec.decode_hard(coded, bits.size(), true), bits);
}

TEST(Viterbi, SoftBeatsHardOnNoisyChannel) {
  Rng rng(11);
  const auto bits = random_bits(rng, 400);
  const auto coded = conv_encode(bits, CodeRate::kR12, true);
  // BPSK over AWGN at low SNR.
  const double sigma = 0.9;
  std::vector<std::int32_t> soft(coded.size());
  std::vector<std::uint8_t> hard(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    const double y = (coded[i] ? 1.0 : -1.0) + sigma * rng.gaussian();
    soft[i] = static_cast<std::int32_t>(y * 64.0);
    hard[i] = y > 0.0 ? 1 : 0;
  }
  ViterbiDecoder dec;
  const auto soft_dec = dec.decode(soft, bits.size(), true);
  const auto hard_dec = dec.decode_hard(hard, bits.size(), true);
  int soft_err = 0;
  int hard_err = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    soft_err += (soft_dec[i] != bits[i]) ? 1 : 0;
    hard_err += (hard_dec[i] != bits[i]) ? 1 : 0;
  }
  EXPECT_LE(soft_err, hard_err) << "soft decisions can only help";
}

TEST(Viterbi, CodingGainOverUncoded) {
  // At moderate SNR the decoded BER must beat the raw channel BER.
  Rng rng(5);
  const auto bits = random_bits(rng, 2000);
  const auto coded = conv_encode(bits, CodeRate::kR12, true);
  const double sigma = 0.7;
  std::vector<std::int32_t> soft(coded.size());
  long long raw_errors = 0;
  for (std::size_t i = 0; i < coded.size(); ++i) {
    const double y = (coded[i] ? 1.0 : -1.0) + sigma * rng.gaussian();
    soft[i] = static_cast<std::int32_t>(y * 64.0);
    raw_errors += ((y > 0.0 ? 1 : 0) != coded[i]) ? 1 : 0;
  }
  ViterbiDecoder dec;
  const auto decoded = dec.decode(soft, bits.size(), true);
  long long dec_errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    dec_errors += (decoded[i] != bits[i]) ? 1 : 0;
  }
  const double raw_ber = static_cast<double>(raw_errors) /
                         static_cast<double>(coded.size());
  const double dec_ber = static_cast<double>(dec_errors) /
                         static_cast<double>(bits.size());
  EXPECT_GT(raw_ber, 0.01) << "channel must actually be noisy";
  EXPECT_LT(dec_ber, raw_ber / 4.0) << "K=7 code must show coding gain";
}

TEST(Viterbi, UnterminatedDecodingWorks) {
  Rng rng(17);
  const auto bits = random_bits(rng, 150);
  const auto coded = conv_encode(bits, CodeRate::kR12, false);
  ViterbiDecoder dec;
  const auto decoded = dec.decode_hard(coded, bits.size(), false);
  // The final few bits may be unreliable without termination; the bulk
  // must match.
  int errors = 0;
  for (std::size_t i = 0; i + 8 < bits.size(); ++i) {
    errors += (decoded[i] != bits[i]) ? 1 : 0;
  }
  EXPECT_EQ(errors, 0);
}

TEST(Viterbi, ErasuresOnlyStillDecodable) {
  // All-erasure input decodes to *something* of the right length
  // without crashing (all paths tie).
  ViterbiDecoder dec;
  const std::vector<std::int32_t> soft(64, 0);
  EXPECT_EQ(dec.decode(soft, 26, true).size(), 26u);
}

}  // namespace
}  // namespace rsp::dedhw

#include "src/dedhw/convcode.hpp"

#include <gtest/gtest.h>

namespace rsp::dedhw {
namespace {

TEST(ConvCode, RateHalfLength) {
  const std::vector<std::uint8_t> bits(10, 1);
  const auto coded = conv_encode(bits, CodeRate::kR12, true);
  EXPECT_EQ(coded.size(), (10u + 6u) * 2u);
  EXPECT_EQ(conv_coded_len(10, CodeRate::kR12, true), coded.size());
}

TEST(ConvCode, PuncturedLengths) {
  // Rate 2/3: 3 output bits per 2 input; rate 3/4: 4 per 3.
  const std::vector<std::uint8_t> bits(12, 0);
  const auto r23 = conv_encode(bits, CodeRate::kR23, false);
  EXPECT_EQ(r23.size(), 12u * 3u / 2u);
  const auto r34 = conv_encode(bits, CodeRate::kR34, false);
  EXPECT_EQ(r34.size(), 12u * 4u / 3u);
  EXPECT_EQ(conv_coded_len(12, CodeRate::kR23, false), r23.size());
  EXPECT_EQ(conv_coded_len(12, CodeRate::kR34, false), r34.size());
}

TEST(ConvCode, AllZeroInputGivesAllZeroOutput) {
  const std::vector<std::uint8_t> bits(20, 0);
  for (const auto rate :
       {CodeRate::kR12, CodeRate::kR23, CodeRate::kR34}) {
    for (const auto b : conv_encode(bits, rate, true)) {
      EXPECT_EQ(b, 0);
    }
  }
}

TEST(ConvCode, KnownImpulseResponse) {
  // A single 1 followed by zeros produces the generator sequences:
  // g0 = 133o = 1011011, g1 = 171o = 1111001 read tap-by-tap.
  std::vector<std::uint8_t> bits(7, 0);
  bits[0] = 1;
  const auto coded = conv_encode(bits, CodeRate::kR12, false);
  ASSERT_EQ(coded.size(), 14u);
  // Output pair k = (parity(g0 window), parity(g1 window)): the A
  // stream spells g0's taps over time, B spells g1's.
  const std::vector<std::uint8_t> g0 = {1, 0, 1, 1, 0, 1, 1};
  const std::vector<std::uint8_t> g1 = {1, 1, 1, 1, 0, 0, 1};
  for (int k = 0; k < 7; ++k) {
    EXPECT_EQ(coded[static_cast<std::size_t>(2 * k)],
              g0[static_cast<std::size_t>(k)]) << "A stream, step " << k;
    EXPECT_EQ(coded[static_cast<std::size_t>(2 * k + 1)],
              g1[static_cast<std::size_t>(k)]) << "B stream, step " << k;
  }
}

TEST(ConvCode, DepunctureRestoresLattice) {
  // Depuncturing a punctured stream must give 2 values per step with
  // zeros exactly at the stolen positions.
  const std::vector<std::int32_t> soft = {10, 11, 20, 31};  // rate 3/4, 3 steps
  const auto lattice = depuncture(soft, CodeRate::kR34);
  // Pattern: A1 B1 A2 B3 -> (10,11) (20,0) (0,31)
  EXPECT_EQ(lattice,
            (std::vector<std::int32_t>{10, 11, 20, 0, 0, 31}));
}

TEST(ConvCode, DepunctureRate23) {
  const std::vector<std::int32_t> soft = {1, 2, 3, 4, 5, 6};  // A1B1A2 A3B3A4
  const auto lattice = depuncture(soft, CodeRate::kR23);
  EXPECT_EQ(lattice, (std::vector<std::int32_t>{1, 2, 3, 0, 4, 5, 6, 0}));
}

TEST(ConvCode, RateAccessors) {
  EXPECT_EQ(code_rate_num(CodeRate::kR12), 1);
  EXPECT_EQ(code_rate_den(CodeRate::kR12), 2);
  EXPECT_EQ(code_rate_num(CodeRate::kR23), 2);
  EXPECT_EQ(code_rate_den(CodeRate::kR23), 3);
  EXPECT_EQ(code_rate_num(CodeRate::kR34), 3);
  EXPECT_EQ(code_rate_den(CodeRate::kR34), 4);
}

}  // namespace
}  // namespace rsp::dedhw

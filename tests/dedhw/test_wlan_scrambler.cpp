#include "src/dedhw/wlan_scrambler.hpp"

#include <gtest/gtest.h>

namespace rsp::dedhw {
namespace {

TEST(WlanScrambler, Period127) {
  WlanScrambler s(0x7F);
  std::vector<std::uint8_t> seq;
  for (int i = 0; i < 254; ++i) seq.push_back(s.next_bit());
  for (int i = 0; i < 127; ++i) {
    EXPECT_EQ(seq[static_cast<std::size_t>(i)],
              seq[static_cast<std::size_t>(i + 127)]);
  }
}

TEST(WlanScrambler, KnownAllOnesPrefix) {
  // IEEE 802.11a Figure G.2: with the all-ones seed the first bits of
  // the 127-bit sequence are 0000 1110 1111 0010 ...
  WlanScrambler s(0x7F);
  const std::vector<std::uint8_t> expect = {0, 0, 0, 0, 1, 1, 1, 0,
                                            1, 1, 1, 1, 0, 0, 1, 0};
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(s.next_bit(), expect[i]) << "bit " << i;
  }
}

TEST(WlanScrambler, ScrambleIsInvolution) {
  WlanScrambler a(0x5D);
  WlanScrambler b(0x5D);
  std::vector<std::uint8_t> bits;
  for (int i = 0; i < 200; ++i) bits.push_back((i * 7 + 3) % 2);
  const auto original = bits;
  a.apply(bits);
  EXPECT_NE(bits, original);
  b.apply(bits);
  EXPECT_EQ(bits, original);
}

TEST(WlanScrambler, Balanced) {
  WlanScrambler s(0x7F);
  int ones = 0;
  for (int i = 0; i < 127; ++i) ones += s.next_bit();
  EXPECT_EQ(ones, 64) << "m-sequence of period 127 has 64 ones";
}

TEST(WlanScrambler, ResetRestoresState) {
  WlanScrambler s(0x11);
  const auto b0 = s.next_bit();
  s.reset(0x11);
  EXPECT_EQ(s.next_bit(), b0);
}

}  // namespace
}  // namespace rsp::dedhw

#include "src/dedhw/ovsf.hpp"

#include <gtest/gtest.h>

namespace rsp::dedhw {
namespace {

TEST(Ovsf, BaseCodes) {
  EXPECT_EQ(ovsf_code(1, 0), (std::vector<std::int8_t>{1}));
  EXPECT_EQ(ovsf_code(2, 0), (std::vector<std::int8_t>{1, 1}));
  EXPECT_EQ(ovsf_code(2, 1), (std::vector<std::int8_t>{1, -1}));
  EXPECT_EQ(ovsf_code(4, 1), (std::vector<std::int8_t>{1, 1, -1, -1}));
  EXPECT_EQ(ovsf_code(4, 3), (std::vector<std::int8_t>{1, -1, -1, 1}));
}

TEST(Ovsf, RecursionHolds) {
  // C(2sf, 2k) = [C, C]; C(2sf, 2k+1) = [C, -C].
  for (int sf : {2, 4, 8, 16}) {
    for (int k = 0; k < sf; ++k) {
      const auto parent = ovsf_code(sf, k);
      const auto even = ovsf_code(2 * sf, 2 * k);
      const auto odd = ovsf_code(2 * sf, 2 * k + 1);
      for (int i = 0; i < sf; ++i) {
        EXPECT_EQ(even[static_cast<std::size_t>(i)], parent[static_cast<std::size_t>(i)]);
        EXPECT_EQ(even[static_cast<std::size_t>(i + sf)], parent[static_cast<std::size_t>(i)]);
        EXPECT_EQ(odd[static_cast<std::size_t>(i)], parent[static_cast<std::size_t>(i)]);
        EXPECT_EQ(odd[static_cast<std::size_t>(i + sf)], -parent[static_cast<std::size_t>(i)]);
      }
    }
  }
}

class OvsfOrthogonality : public ::testing::TestWithParam<int> {};

TEST_P(OvsfOrthogonality, AllPairsOrthogonal) {
  const int sf = GetParam();
  for (int k1 = 0; k1 < sf; ++k1) {
    for (int k2 = 0; k2 < sf; ++k2) {
      long long dot = 0;
      for (int i = 0; i < sf; ++i) {
        dot += ovsf_chip(sf, k1, i) * ovsf_chip(sf, k2, i);
      }
      EXPECT_EQ(dot, k1 == k2 ? sf : 0)
          << "sf=" << sf << " k1=" << k1 << " k2=" << k2;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SpreadingFactors, OvsfOrthogonality,
                         ::testing::Values(4, 8, 16, 32, 64));

TEST(Ovsf, LargeSfOrthogonalSample) {
  // SF 512 full O(sf^3) check is slow; sample code pairs.
  const int sf = kMaxSpreadingFactor;
  for (int k1 : {0, 1, 255, 256, 511}) {
    for (int k2 : {0, 1, 255, 256, 511}) {
      long long dot = 0;
      for (int i = 0; i < sf; ++i) {
        dot += ovsf_chip(sf, k1, i) * ovsf_chip(sf, k2, i);
      }
      EXPECT_EQ(dot, k1 == k2 ? sf : 0);
    }
  }
}

TEST(Ovsf, GeneratorStreamsAndWraps) {
  OvsfGenerator gen(8, 3);
  const auto ref = ovsf_code(8, 3);
  for (int rep = 0; rep < 3; ++rep) {
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(gen.next(), ref[static_cast<std::size_t>(i)]);
    }
  }
  gen.reset();
  EXPECT_EQ(gen.next(), ref[0]);
}

TEST(Ovsf, Validation) {
  EXPECT_TRUE(ovsf_valid(4, 0));
  EXPECT_TRUE(ovsf_valid(512, 511));
  EXPECT_FALSE(ovsf_valid(512, 512));
  EXPECT_FALSE(ovsf_valid(3, 0)) << "not a power of two";
  EXPECT_FALSE(ovsf_valid(1024, 0)) << "beyond downlink range";
  EXPECT_FALSE(ovsf_valid(4, -1));
  EXPECT_THROW((void)ovsf_code(5, 0), std::invalid_argument);
}

TEST(Ovsf, ChipsAreUnit) {
  for (int i = 0; i < 256; ++i) {
    const int c = ovsf_chip(256, 129, i);
    EXPECT_TRUE(c == 1 || c == -1);
  }
}

}  // namespace
}  // namespace rsp::dedhw

#include "src/dedhw/umts_scrambler.hpp"

#include <map>
#include <vector>

#include <gtest/gtest.h>

namespace rsp::dedhw {
namespace {

TEST(UmtsScrambler, DeterministicAndResettable) {
  UmtsScrambler a(16);
  std::vector<std::uint8_t> first;
  for (int i = 0; i < 64; ++i) first.push_back(a.next2());
  a.reset();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next2(), first[i]);
}

TEST(UmtsScrambler, CodesDifferAcrossBasestations) {
  // Primary scrambling codes are multiples of 16; distinct codes must
  // produce distinct sequences.
  UmtsScrambler a(0);
  UmtsScrambler b(16);
  int same = 0;
  for (int i = 0; i < 256; ++i) same += (a.next2() == b.next2()) ? 1 : 0;
  EXPECT_LT(same, 200) << "sequences must decorrelate";
  EXPECT_GT(same, 20) << "and still share the 2-bit alphabet";
}

TEST(UmtsScrambler, ChipValuesAreUnitQpsk) {
  UmtsScrambler s(32);
  for (int i = 0; i < 128; ++i) {
    const CplxI c = s.next();
    EXPECT_EQ(std::abs(c.re), 1);
    EXPECT_EQ(std::abs(c.im), 1);
  }
}

TEST(UmtsScrambler, BalancedSequence) {
  // Gold-code property: roughly equal numbers of +1 and -1 on each rail.
  UmtsScrambler s(16);
  int sum_i = 0;
  int sum_q = 0;
  const int n = 38400;
  for (int i = 0; i < n; ++i) {
    const CplxI c = s.next();
    sum_i += c.re;
    sum_q += c.im;
  }
  EXPECT_LT(std::abs(sum_i), n / 50);
  EXPECT_LT(std::abs(sum_q), n / 50);
}

TEST(UmtsScrambler, LowCrossCorrelation) {
  // Correlating one basestation's code against another's must stay
  // near zero relative to the autocorrelation peak.
  const int n = 4096;
  UmtsScrambler a(16);
  UmtsScrambler b(48);
  long long cross_re = 0;
  for (int i = 0; i < n; ++i) {
    const CplxI ca = a.next();
    const CplxI cb = b.next();
    // Re{ca * conj(cb)}
    cross_re += ca.re * cb.re + ca.im * cb.im;
  }
  EXPECT_LT(std::llabs(cross_re), n / 8) << "cross-correlation must be small";
}

TEST(UmtsScrambler, AutocorrelationPeakAtZeroLag) {
  const int n = 2048;
  UmtsScrambler a(16);
  UmtsScrambler b(16);
  b.skip(7);  // misaligned copy
  long long aligned = 0;
  long long misaligned = 0;
  UmtsScrambler a2(16);
  for (int i = 0; i < n; ++i) {
    const CplxI c1 = a.next();
    const CplxI c2 = a2.next();
    aligned += c1.re * c2.re + c1.im * c2.im;
  }
  UmtsScrambler a3(16);
  for (int i = 0; i < n; ++i) {
    const CplxI c1 = a3.next();
    const CplxI c3 = b.next();
    misaligned += c1.re * c3.re + c1.im * c3.im;
  }
  EXPECT_EQ(aligned, 2 * n) << "perfect alignment: |c|^2 = 2 per chip";
  EXPECT_LT(std::llabs(misaligned), n / 4);
}

TEST(UmtsScrambler, SkipMatchesConsume) {
  UmtsScrambler a(80);
  UmtsScrambler b(80);
  for (int i = 0; i < 100; ++i) (void)a.next2();
  b.skip(100);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next2(), b.next2());
}

TEST(UmtsScrambler, TwoBitEncodingMatchesComplex) {
  UmtsScrambler a(7);
  UmtsScrambler b(7);
  for (int i = 0; i < 64; ++i) {
    const std::uint8_t bits = a.next2();
    const CplxI c = b.next();
    EXPECT_EQ(c.re, 1 - 2 * (bits & 1));
    EXPECT_EQ(c.im, 1 - 2 * ((bits >> 1) & 1));
  }
}

}  // namespace
}  // namespace rsp::dedhw

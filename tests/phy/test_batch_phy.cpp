// Differential battery for the vectorized PHY substrate (`ctest -L
// phy`): every exactly value-preserving block transform is pinned
// bit-identical to the preserved scalar reference, the one
// inexact-by-design rewrite (the per-block mod-2π Doppler phase) is
// pinned against a long-double golden model, and the dispatched SIMD
// kernel table is compared sample-for-sample against the baseline
// table.  See src/phy/batch_phy.hpp for the policy.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/farm/kernels.hpp"
#include "src/phy/batch_phy.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/ofdm_tx.hpp"
#include "src/phy/simd_phy.hpp"
#include "src/phy/umts_tx.hpp"

namespace rsp {
namespace {

using phy::ScopedSubstrateMode;
using phy::SubstrateMode;

void expect_bit_identical(const std::vector<CplxF>& a,
                          const std::vector<CplxF>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].real(), b[i].real()) << "re mismatch at " << i;
    EXPECT_EQ(a[i].imag(), b[i].imag()) << "im mismatch at " << i;
  }
}

// ---------------------------------------------------------------------
// Rng::fill_gaussian: the batched Box-Muller stream must reproduce the
// scalar draw order exactly, including the cached spare.

TEST(FillGaussian, MatchesScalarDrawOrder) {
  for (const std::size_t n : {0u, 1u, 2u, 3u, 7u, 64u, 1023u, 1024u, 1025u}) {
    Rng a(42), b(42);
    std::vector<double> batch(n, 0.0);
    a.fill_gaussian(batch.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(batch[i], b.gaussian()) << "n=" << n << " i=" << i;
    }
    // Post-call state identical too (spare cached the same way).
    EXPECT_EQ(a.gaussian(), b.gaussian()) << "state diverged, n=" << n;
  }
}

TEST(FillGaussian, SpareCarriesAcrossCalls) {
  Rng a(7), b(7);
  // Leave a spare cached in both, then batch-draw through it.
  (void)a.gaussian();
  (void)b.gaussian();
  double batch[5];
  a.fill_gaussian(batch, 5);
  for (double v : batch) EXPECT_EQ(v, b.gaussian());
  EXPECT_EQ(a.gaussian(), b.gaussian());
}

// ---------------------------------------------------------------------
// Word-at-a-time Gold-code LFSR.

TEST(ScramblerBlock, MatchesScalarChipForChip) {
  for (const int n : {1, 2, 31, 32, 33, 200, 4096}) {
    dedhw::UmtsScrambler block_scr(16), scalar_scr(16);
    std::vector<std::uint8_t> chips(static_cast<std::size_t>(n), 0);
    block_scr.next2_block(chips.data(), n);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(chips[static_cast<std::size_t>(i)], scalar_scr.next2())
          << "n=" << n << " i=" << i;
    }
    // Register state advanced identically.
    EXPECT_EQ(block_scr.next2(), scalar_scr.next2());
  }
}

TEST(ScramblerBlock, InterleavedBlockAndScalarCalls) {
  dedhw::UmtsScrambler a(32), b(32);
  std::vector<std::uint8_t> want;
  for (int i = 0; i < 500; ++i) want.push_back(b.next2());
  std::size_t pos = 0;
  std::uint8_t buf[97];
  a.next2_block(buf, 97);
  for (int i = 0; i < 97; ++i) EXPECT_EQ(buf[i], want[pos++]);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(a.next2(), want[pos++]);
  a.next2_block(buf, 64);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(buf[i], want[pos++]);
}

TEST(ScramblerBlock, SkipMatchesDiscardedChips) {
  for (const long long n : {1LL, 17LL, 32LL, 1000LL}) {
    dedhw::UmtsScrambler a(48), b(48);
    a.skip(n);
    for (long long i = 0; i < n; ++i) (void)b.next2();
    for (int i = 0; i < 8; ++i) EXPECT_EQ(a.next2(), b.next2()) << "n=" << n;
  }
}

// ---------------------------------------------------------------------
// Dispatched kernel table vs the always-available baseline table: on an
// AVX2 host this compares the wide code paths against the scalar loops
// bit for bit (on other hosts the tables coincide and the test is a
// tautology — the RSP_SIMD=off build in scripts/check.sh covers the
// forced-scalar configuration).

TEST(PhyKernels, DispatchedMatchesGenericBitwise) {
  const auto& d = phy::simd::phy_kernels();
  const auto& g = phy::simd::generic_phy_kernels();
  ASSERT_NE(phy::simd::phy_isa_name(), nullptr);
  constexpr int kN = 1537;  // odd size: exercises every vector tail
  Rng rng(123);
  std::vector<double> xre(kN), xim(kN), cs(kN), sn(kN), a(kN), flat(2 * kN);
  std::vector<std::uint8_t> bits(kN);
  for (int i = 0; i < kN; ++i) {
    xre[i] = rng.gaussian();
    xim[i] = rng.gaussian();
    const double ph = rng.uniform() * 6.28;
    cs[i] = std::cos(ph);
    sn[i] = std::sin(ph);
    a[i] = rng.gaussian();
    flat[2 * i] = rng.gaussian();
    flat[2 * i + 1] = rng.gaussian();
    bits[i] = static_cast<std::uint8_t>(rng.next() & 3u);
  }
  const auto cmp = [](const std::vector<double>& u,
                      const std::vector<double>& v, const char* what) {
    ASSERT_EQ(u.size(), v.size());
    for (std::size_t i = 0; i < u.size(); ++i) {
      EXPECT_EQ(u[i], v[i]) << what << " at " << i;
    }
  };
  {
    std::vector<double> y1(2 * kN, 0.5), y2(2 * kN, 0.5);
    d.axpy_scaled(y1.data(), flat.data(), 0.37, 2 * kN);
    g.axpy_scaled(y2.data(), flat.data(), 0.37, 2 * kN);
    cmp(y1, y2, "axpy_scaled");
  }
  {
    std::vector<double> r1(kN, 0.1), i1(kN, -0.2), r2(kN, 0.1), i2(kN, -0.2);
    d.axpy_cplx(r1.data(), i1.data(), xre.data(), xim.data(), 0.62, -0.3, kN);
    g.axpy_cplx(r2.data(), i2.data(), xre.data(), xim.data(), 0.62, -0.3, kN);
    cmp(r1, r2, "axpy_cplx re");
    cmp(i1, i2, "axpy_cplx im");
  }
  {
    std::vector<double> r1(kN, 0.0), i1(kN, 0.0), r2(kN, 0.0), i2(kN, 0.0);
    d.rot_axpy(r1.data(), i1.data(), xre.data(), xim.data(), cs.data(),
               sn.data(), 0.39, -0.3, kN);
    g.rot_axpy(r2.data(), i2.data(), xre.data(), xim.data(), cs.data(),
               sn.data(), 0.39, -0.3, kN);
    cmp(r1, r2, "rot_axpy re");
    cmp(i1, i2, "rot_axpy im");
  }
  {
    std::vector<double> r1(kN, 0.25), i1(kN, 0.25), r2(kN, 0.25), i2(kN, 0.25);
    d.spread_accum(r1.data(), i1.data(), a.data(), 0.7071, -0.7071, kN);
    g.spread_accum(r2.data(), i2.data(), a.data(), 0.7071, -0.7071, kN);
    cmp(r1, r2, "spread_accum re");
    cmp(i1, i2, "spread_accum im");
  }
  {
    std::vector<double> cre(kN), cim(kN), o1r(kN), o1i(kN), o2r(kN), o2i(kN);
    d.chips_to_pm1(bits.data(), cre.data(), cim.data(), kN);
    {
      std::vector<double> c2r(kN), c2i(kN);
      g.chips_to_pm1(bits.data(), c2r.data(), c2i.data(), kN);
      cmp(cre, c2r, "chips_to_pm1 re");
      cmp(cim, c2i, "chips_to_pm1 im");
    }
    d.scramble_mix(o1r.data(), o1i.data(), cre.data(), cim.data(), xre.data(),
                   xim.data(), 1.3, kN);
    g.scramble_mix(o2r.data(), o2i.data(), cre.data(), cim.data(), xre.data(),
                   xim.data(), 1.3, kN);
    cmp(o1r, o2r, "scramble_mix re");
    cmp(o1i, o2i, "scramble_mix im");
  }
  {
    std::vector<double> y1(2 * kN), y2(2 * kN), r1(kN), i1(kN), r2(kN), i2(kN);
    d.fill_const(y1.data(), -0.125, 2 * kN);
    g.fill_const(y2.data(), -0.125, 2 * kN);
    cmp(y1, y2, "fill_const");
    d.deinterleave(flat.data(), r1.data(), i1.data(), kN);
    g.deinterleave(flat.data(), r2.data(), i2.data(), kN);
    cmp(r1, r2, "deinterleave re");
    cmp(i1, i2, "deinterleave im");
    d.interleave(xre.data(), xim.data(), y1.data(), kN);
    g.interleave(xre.data(), xim.data(), y2.data(), kN);
    cmp(y1, y2, "interleave");
    d.noise_add_soa(r1.data(), i1.data(), flat.data(), 0.55, kN);
    g.noise_add_soa(r2.data(), i2.data(), flat.data(), 0.55, kN);
    cmp(r1, r2, "noise_add_soa re");
    cmp(i1, i2, "noise_add_soa im");
  }
}

// ---------------------------------------------------------------------
// AWGN: block path bit-identical to the reference, including the Rng
// state left behind.

TEST(BatchAwgn, BitIdenticalToReference) {
  for (const std::size_t n : {1u, 255u, 1024u, 3000u}) {
    Rng src(9);
    std::vector<CplxF> x(n);
    for (auto& v : x) v = src.cgaussian(1.0);
    Rng r1(1234), r2(1234);
    std::vector<CplxF> y_ref, y_blk;
    {
      ScopedSubstrateMode m(SubstrateMode::kReference);
      y_ref = phy::awgn(x, 4.0, r1);
    }
    {
      ScopedSubstrateMode m(SubstrateMode::kBlock);
      y_blk = phy::awgn(x, 4.0, r2);
    }
    expect_bit_identical(y_ref, y_blk);
    EXPECT_EQ(r1.gaussian(), r2.gaussian()) << "rng state diverged";
  }
}

// ---------------------------------------------------------------------
// Multipath channel, zero Doppler (the farm configuration): block path
// bit-identical across split calls and odd lengths.

std::vector<phy::Tap> farm_taps() {
  return {{2, {0.62, 0.0}, 0.0}, {9, {0.0, 0.55}, 0.0}, {17, {0.39, -0.3}, 0.0}};
}

TEST(BatchMultipath, BitIdenticalNoDoppler) {
  Rng src(11);
  std::vector<CplxF> x(2500);
  for (auto& v : x) v = src.cgaussian(1.0);
  phy::MultipathChannel ref_ch(farm_taps(), 3.84e6);
  phy::MultipathChannel blk_ch(farm_taps(), 3.84e6);
  Rng r1(77), r2(77);
  // Two calls: the second starts at a non-zero, non-block-aligned
  // sample index.
  for (int call = 0; call < 2; ++call) {
    std::vector<CplxF> y_ref, y_blk;
    {
      ScopedSubstrateMode m(SubstrateMode::kReference);
      y_ref = ref_ch.run(x, 2.0, r1);
    }
    {
      ScopedSubstrateMode m(SubstrateMode::kBlock);
      y_blk = blk_ch.run(x, 2.0, r2);
    }
    expect_bit_identical(y_ref, y_blk);
  }
}

// Rayleigh block fading: the reference redraws the per-(block, path)
// gain EVERY SAMPLE; the block path memoizes the identical pure-function
// draw once per block.  Must stay bit-identical, with a coherence that
// is not a divisor/multiple of the SoA block size.
TEST(BatchMultipath, BitIdenticalRayleighFading) {
  Rng src(13);
  std::vector<CplxF> x(3000);
  for (auto& v : x) v = src.cgaussian(1.0);
  phy::MultipathChannel ref_ch(farm_taps(), 3.84e6);
  phy::MultipathChannel blk_ch(farm_taps(), 3.84e6);
  Rng fr1(5), fr2(5);
  ref_ch.enable_rayleigh(300, fr1);
  blk_ch.enable_rayleigh(300, fr2);
  Rng r1(99), r2(99);
  for (int call = 0; call < 2; ++call) {
    std::vector<CplxF> y_ref, y_blk;
    {
      ScopedSubstrateMode m(SubstrateMode::kReference);
      y_ref = ref_ch.run(x, 6.0, r1);
    }
    {
      ScopedSubstrateMode m(SubstrateMode::kBlock);
      y_blk = blk_ch.run(x, 6.0, r2);
    }
    expect_bit_identical(y_ref, y_blk);
  }
}

// ---------------------------------------------------------------------
// Doppler phase: block_phase against a long-double golden reduction.

TEST(BlockPhase, MatchesLongDoubleGolden) {
  const long double two_pi_l = 6.283185307179586476925286766559005768L;
  const double w_values[] = {1.6362e-4, 2.9e-2, 0.73, -5.1e-3};
  const long long idx[] = {0LL,          1LL,          1023LL,
                           1LL << 20,    (1LL << 40) - 7, 1LL << 41};
  for (const double w : w_values) {
    for (const long long g : idx) {
      const double got = phy::block_phase(w, g);
      const long double golden = std::remainderl(
          static_cast<long double>(w) * static_cast<long double>(g), two_pi_l);
      const double diff = static_cast<double>(
          std::remainderl(static_cast<long double>(got) - golden, two_pi_l));
      // The golden itself carries ~1e-9 rad of long-double product
      // rounding at 2^41; block_phase is orders tighter.
      EXPECT_LT(std::fabs(diff), 1e-7) << "w=" << w << " g=" << g;
    }
  }
}

// At a campaign-scale sample index the block path must track the true
// rotator; the old w*double(global) product is ~4e-6 rad off at 2^41
// and drifting.  Noise is effectively disabled via a huge Es/N0.
TEST(BatchMultipath, DopplerAccurateAtLargeSampleIndex) {
  const double fs = 3.84e6;
  const double fd = 180.0;
  phy::MultipathChannel ch({{0, {1.0, 0.0}, fd}}, fs);
  const long long start = 1LL << 41;
  ch.skip(start);
  const std::size_t n = 2048;
  const std::vector<CplxF> x(n, CplxF{1.0, 0.0});
  Rng rng(1);
  std::vector<CplxF> y;
  {
    ScopedSubstrateMode m(SubstrateMode::kBlock);
    y = ch.run(x, 300.0, rng);
  }
  const long double two_pi_l = 6.283185307179586476925286766559005768L;
  const long double wl = two_pi_l * static_cast<long double>(fd) /
                         static_cast<long double>(fs);
  for (std::size_t i = 0; i < n; i += 97) {
    const long double ph =
        wl * static_cast<long double>(start + static_cast<long long>(i));
    const double cre = static_cast<double>(std::cos(std::remainderl(ph, two_pi_l)));
    const double cim = static_cast<double>(std::sin(std::remainderl(ph, two_pi_l)));
    EXPECT_NEAR(y[i].real(), cre, 2e-7) << "i=" << i;
    EXPECT_NEAR(y[i].imag(), cim, 2e-7) << "i=" << i;
  }
}

// Fresh channel at index 0: block and reference Doppler paths agree to
// fine tolerance (both are accurate with small phase arguments), so the
// re-derivation did not change small-index behaviour.
TEST(BatchMultipath, DopplerMatchesReferenceAtSmallIndex) {
  Rng src(21);
  std::vector<CplxF> x(2000);
  for (auto& v : x) v = src.cgaussian(1.0);
  phy::MultipathChannel ref_ch({{3, {0.8, 0.1}, 120.0}}, 3.84e6);
  phy::MultipathChannel blk_ch({{3, {0.8, 0.1}, 120.0}}, 3.84e6);
  Rng r1(55), r2(55);
  std::vector<CplxF> y_ref, y_blk;
  {
    ScopedSubstrateMode m(SubstrateMode::kReference);
    y_ref = ref_ch.run(x, 300.0, r1);
  }
  {
    ScopedSubstrateMode m(SubstrateMode::kBlock);
    y_blk = blk_ch.run(x, 300.0, r2);
  }
  ASSERT_EQ(y_ref.size(), y_blk.size());
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    EXPECT_NEAR(y_ref[i].real(), y_blk[i].real(), 1e-9) << "i=" << i;
    EXPECT_NEAR(y_ref[i].imag(), y_blk[i].imag(), 1e-9) << "i=" << i;
  }
}

// ---------------------------------------------------------------------
// UMTS downlink transmitter.

TEST(BatchUmtsTx, BitIdenticalToReference) {
  phy::BasestationConfig bs;
  bs.scrambling_code = 16;
  bs.gain = 0.9;
  bs.cpich_gain = 0.5;
  Rng bits_rng(3);
  {
    phy::DpchConfig ch;
    ch.sf = 64;
    ch.code_index = 3;
    ch.gain = 0.7;
    ch.bits.resize(256);
    for (auto& b : ch.bits) b = bits_rng.bit() ? 1 : 0;
    bs.channels.push_back(ch);
  }
  {
    phy::DpchConfig ch;
    ch.sf = 32;
    ch.code_index = 5;
    ch.gain = 0.4;
    ch.sttd = true;  // two antennas
    ch.bits.resize(128);
    for (auto& b : ch.bits) b = bits_rng.bit() ? 1 : 0;
    bs.channels.push_back(ch);
  }
  phy::UmtsDownlinkTx ref_tx(bs), blk_tx(bs);
  // Split calls with non-aligned lengths: symbol and 256-chip CPICH
  // boundaries fall mid-call.
  for (const int n : {1000, 537, 64, 2048}) {
    std::vector<std::vector<CplxF>> y_ref, y_blk;
    {
      ScopedSubstrateMode m(SubstrateMode::kReference);
      y_ref = ref_tx.generate(n);
    }
    {
      ScopedSubstrateMode m(SubstrateMode::kBlock);
      y_blk = blk_tx.generate(n);
    }
    ASSERT_EQ(y_ref.size(), y_blk.size());
    for (std::size_t a = 0; a < y_ref.size(); ++a) {
      expect_bit_identical(y_ref[a], y_blk[a]);
    }
  }
  // The exposed BER-reference symbol streams extended identically.
  for (int ch = 0; ch < 2; ++ch) {
    const auto& sr = ref_tx.channel_symbols(ch);
    const auto& sb = blk_tx.channel_symbols(ch);
    expect_bit_identical(sr, sb);
  }
}

// ---------------------------------------------------------------------
// OFDM transmitter.

TEST(BatchOfdmTx, BitIdenticalToReference) {
  Rng bits_rng(8);
  std::vector<std::uint8_t> psdu(800);
  for (auto& b : psdu) b = bits_rng.bit() ? 1 : 0;
  phy::OfdmTransmitter tx;
  for (const int mbps : {6, 24, 54}) {
    std::vector<CplxF> y_ref, y_blk;
    {
      ScopedSubstrateMode m(SubstrateMode::kReference);
      y_ref = tx.build_ppdu(psdu, mbps);
    }
    {
      ScopedSubstrateMode m(SubstrateMode::kBlock);
      y_blk = tx.build_ppdu(psdu, mbps);
    }
    expect_bit_identical(y_ref, y_blk);
  }
}

// ---------------------------------------------------------------------
// End to end: the farm trial kernels produce identical integer
// aggregates in both substrate modes, per seed — which is why the whole
// BER corpus stays bit-identical under the vectorized substrate.

TEST(BatchTrials, RakeAggregatesInvariantAcrossModes) {
  farm::kernels::RakeTrial trial;
  trial.esn0_db = -2.0;
  trial.symbols = 96;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    farm::TrialResult ref, blk;
    {
      ScopedSubstrateMode m(SubstrateMode::kReference);
      ref = trial(seed);
    }
    {
      ScopedSubstrateMode m(SubstrateMode::kBlock);
      blk = trial(seed);
    }
    EXPECT_EQ(ref, blk) << "seed " << seed;
  }
}

TEST(BatchTrials, WlanAggregatesInvariantAcrossModes) {
  farm::kernels::WlanTrial trial;
  trial.esn0_db = 3.0;
  trial.psdu_bits = 400;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    farm::TrialResult ref, blk;
    {
      ScopedSubstrateMode m(SubstrateMode::kReference);
      ref = trial(seed);
    }
    {
      ScopedSubstrateMode m(SubstrateMode::kBlock);
      blk = trial(seed);
    }
    EXPECT_EQ(ref, blk) << "seed " << seed;
  }
}

TEST(BatchTrials, SubstrateOnlyCountsSamples) {
  farm::kernels::RakeTrial trial;
  trial.symbols = 32;
  trial.substrate_only = true;
  const auto r = trial(1);
  EXPECT_EQ(r.frames, 1u);
  EXPECT_EQ(r.bits, static_cast<std::uint64_t>(32 * 64 + 17));
  EXPECT_EQ(r.bit_errors, 0u);
}

}  // namespace
}  // namespace rsp

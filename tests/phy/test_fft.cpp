#include "src/phy/fft.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "src/common/dbmath.hpp"
#include "src/common/rng.hpp"

namespace rsp::phy {
namespace {

TEST(FloatFft, MatchesDirectDft) {
  Rng rng(1);
  std::vector<CplxF> x(64);
  for (auto& v : x) v = rng.cgaussian(1.0);
  auto y = x;
  fft(y, false);
  for (int k = 0; k < 64; ++k) {
    CplxF acc{0.0, 0.0};
    for (int n = 0; n < 64; ++n) {
      const double a = -2.0 * std::numbers::pi * k * n / 64.0;
      acc += x[static_cast<std::size_t>(n)] * CplxF{std::cos(a), std::sin(a)};
    }
    EXPECT_NEAR(std::abs(acc - y[static_cast<std::size_t>(k)]), 0.0, 1e-9);
  }
}

TEST(FloatFft, InverseRoundTrip) {
  Rng rng(2);
  std::vector<CplxF> x(128);
  for (auto& v : x) v = rng.cgaussian(1.0);
  auto y = x;
  fft(y, false);
  fft(y, true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(x[i] - y[i]), 0.0, 1e-9);
  }
}

TEST(FloatFft, RejectsNonPowerOfTwo) {
  std::vector<CplxF> x(48);
  EXPECT_THROW(fft(x, false), std::invalid_argument);
}

TEST(Fft64Tables, AddressesPartitionEveryStage) {
  const auto& t = fft64_tables();
  for (int s = 0; s < kFftStages; ++s) {
    std::vector<int> seen(kFftSize, 0);
    for (const auto& bf : t.stages[static_cast<std::size_t>(s)].addr) {
      for (const int a : bf) {
        ASSERT_GE(a, 0);
        ASSERT_LT(a, kFftSize);
        ++seen[static_cast<std::size_t>(a)];
      }
    }
    for (const int c : seen) {
      EXPECT_EQ(c, 1) << "each address read/written exactly once per stage";
    }
  }
}

TEST(Fft64Tables, InputPermIsInvolution) {
  const auto& t = fft64_tables();
  for (int n = 0; n < kFftSize; ++n) {
    const int p = t.input_perm[static_cast<std::size_t>(n)];
    EXPECT_EQ(t.input_perm[static_cast<std::size_t>(p)], n);
  }
}

TEST(Fft64Tables, TwiddleRomIsUnitCircleQ11) {
  const auto& t = fft64_tables();
  for (int k = 0; k < kFftSize; ++k) {
    const auto& w = t.rom[static_cast<std::size_t>(k)];
    const double mag =
        std::sqrt(static_cast<double>(w.norm2())) / 2048.0;
    EXPECT_NEAR(mag, 1.0, 0.01) << "k=" << k;
    EXPECT_LE(w.re, 2047);
    EXPECT_GE(w.re, -2048);
  }
}

TEST(Fft64Fixed, ImpulseGivesFlatSpectrum) {
  std::array<CplxI, kFftSize> in{};
  in[0] = {511, 0};
  const auto out = fft64_fixed(in);
  // DFT of impulse = constant 511; scaled by 1/64 with rounding ->
  // every bin identical.
  for (int k = 1; k < kFftSize; ++k) {
    EXPECT_EQ(out[static_cast<std::size_t>(k)].re, out[0].re);
    EXPECT_EQ(out[static_cast<std::size_t>(k)].im, out[0].im);
  }
  EXPECT_NEAR(out[0].re, 511.0 / 64.0, 1.5);
}

TEST(Fft64Fixed, DcInputConcentratesInBinZero) {
  std::array<CplxI, kFftSize> in{};
  for (auto& v : in) v = {400, 0};
  const auto out = fft64_fixed(in);
  // Bin 0 = 64*400/64 = ~400; every other bin ~0.
  EXPECT_NEAR(out[0].re, 400.0, 8.0);
  for (int k = 1; k < kFftSize; ++k) {
    EXPECT_LE(std::abs(out[static_cast<std::size_t>(k)].re), 4) << k;
    EXPECT_LE(std::abs(out[static_cast<std::size_t>(k)].im), 4) << k;
  }
}

TEST(Fft64Fixed, SingleToneLandsInRightBin) {
  for (const int tone : {1, 5, 17, 33, 63}) {
    std::array<CplxI, kFftSize> in{};
    for (int n = 0; n < kFftSize; ++n) {
      const double a = 2.0 * std::numbers::pi * tone * n / 64.0;
      in[static_cast<std::size_t>(n)] = {
          static_cast<std::int32_t>(std::lround(450.0 * std::cos(a))),
          static_cast<std::int32_t>(std::lround(450.0 * std::sin(a)))};
    }
    const auto out = fft64_fixed(in);
    // Expected: bin `tone` = 450 (by DFT/64 scaling), others small.
    long long best = -1;
    int best_k = -1;
    for (int k = 0; k < kFftSize; ++k) {
      const long long e = out[static_cast<std::size_t>(k)].norm2();
      if (e > best) {
        best = e;
        best_k = k;
      }
    }
    EXPECT_EQ(best_k, tone);
    EXPECT_NEAR(out[static_cast<std::size_t>(tone)].re, 450.0, 12.0);
  }
}

TEST(Fft64Fixed, MatchesFloatFftWithinQuantization) {
  Rng rng(77);
  double sig = 0.0;
  double err = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    std::array<CplxI, kFftSize> in{};
    std::vector<CplxF> xf(kFftSize);
    for (int n = 0; n < kFftSize; ++n) {
      const CplxI q = {static_cast<int>(rng.below(1023)) - 511,
                       static_cast<int>(rng.below(1023)) - 511};
      in[static_cast<std::size_t>(n)] = q;
      xf[static_cast<std::size_t>(n)] = {static_cast<double>(q.re),
                                         static_cast<double>(q.im)};
    }
    fft(xf, false);
    const auto out = fft64_fixed(in);
    for (int k = 0; k < kFftSize; ++k) {
      const CplxF ref = xf[static_cast<std::size_t>(k)] / 64.0;
      const CplxF got{static_cast<double>(out[static_cast<std::size_t>(k)].re),
                      static_cast<double>(out[static_cast<std::size_t>(k)].im)};
      sig += std::norm(ref);
      err += std::norm(ref - got);
    }
  }
  const double sqnr = lin_to_db(sig / err);
  // Paper: "we finally get a 4-bit precision in the result" — the
  // fixed transform is a coarse but usable approximation.
  EXPECT_GT(sqnr, 18.0) << "SQNR dB";
}

TEST(Fft64Fixed, LinearityInScaling) {
  Rng rng(123);
  std::array<CplxI, kFftSize> a{};
  std::array<CplxI, kFftSize> b{};
  for (int n = 0; n < kFftSize; ++n) {
    const int re = static_cast<int>(rng.below(200)) - 100;
    const int im = static_cast<int>(rng.below(200)) - 100;
    a[static_cast<std::size_t>(n)] = {re, im};
    b[static_cast<std::size_t>(n)] = {4 * re, 4 * im};
  }
  const auto ya = fft64_fixed(a);
  const auto yb = fft64_fixed(b);
  for (int k = 0; k < kFftSize; ++k) {
    // 4x input -> ~4x output (within rounding of the shared datapath).
    EXPECT_NEAR(yb[static_cast<std::size_t>(k)].re,
                4.0 * ya[static_cast<std::size_t>(k)].re, 9.0);
    EXPECT_NEAR(yb[static_cast<std::size_t>(k)].im,
                4.0 * ya[static_cast<std::size_t>(k)].im, 9.0);
  }
}

}  // namespace
}  // namespace rsp::phy

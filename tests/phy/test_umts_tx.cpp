#include "src/phy/umts_tx.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/dedhw/ovsf.hpp"

namespace rsp::phy {
namespace {

std::vector<std::uint8_t> random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  return bits;
}

TEST(UmtsTx, QpskMapValues) {
  const auto s = qpsk_map({0, 0, 0, 1, 1, 0, 1, 1});
  const double a = 1.0 / std::sqrt(2.0);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_NEAR(std::abs(s[0] - CplxF{a, a}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(s[1] - CplxF{a, -a}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(s[2] - CplxF{-a, a}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(s[3] - CplxF{-a, -a}), 0.0, 1e-12);
}

TEST(UmtsTx, SttdEncodePairs) {
  const std::vector<CplxF> s = {{1, 2}, {3, -4}, {-5, 6}, {7, 8}};
  const auto ant = sttd_encode(s);
  ASSERT_EQ(ant.size(), 2u);
  EXPECT_EQ(ant[0], s);
  EXPECT_NEAR(std::abs(ant[1][0] - CplxF{-3, -4}), 0.0, 1e-12);  // -s2*
  EXPECT_NEAR(std::abs(ant[1][1] - CplxF{1, -2}), 0.0, 1e-12);   // s1*
  EXPECT_NEAR(std::abs(ant[1][2] - CplxF{-7, 8}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(ant[1][3] - CplxF{-5, -6}), 0.0, 1e-12);
}

TEST(UmtsTx, DespreadRecoversSymbolsNoiselessly) {
  // One DPCH, no pilot: descramble+despread in float must return the
  // transmitted QPSK symbols exactly.
  BasestationConfig cfg;
  cfg.scrambling_code = 16;
  cfg.cpich_gain = 0.0;
  DpchConfig ch;
  ch.sf = 16;
  ch.code_index = 3;
  ch.bits = random_bits(64, 9);
  cfg.channels.push_back(ch);
  UmtsDownlinkTx tx(cfg);
  const int nsym = 20;
  const auto chips = tx.generate(16 * nsym)[0];

  dedhw::UmtsScrambler scr(16);
  for (int m = 0; m < nsym; ++m) {
    CplxF acc{0.0, 0.0};
    for (int i = 0; i < 16; ++i) {
      const CplxI c = scr.next();
      const CplxF code{static_cast<double>(c.re), static_cast<double>(c.im)};
      const int ov = dedhw::ovsf_chip(16, 3, i);
      acc += chips[static_cast<std::size_t>(16 * m + i)] * std::conj(code) *
             static_cast<double>(ov);
    }
    acc /= 2.0 * 16.0;  // |code|^2 = 2, spreading factor 16
    const CplxF expect = tx.channel_symbols(0)[static_cast<std::size_t>(m)];
    EXPECT_NEAR(std::abs(acc - expect), 0.0, 1e-9) << "symbol " << m;
  }
}

TEST(UmtsTx, OrthogonalChannelsDoNotLeak) {
  BasestationConfig cfg;
  cfg.scrambling_code = 32;
  cfg.cpich_gain = 0.5;
  DpchConfig a;
  a.sf = 32;
  a.code_index = 5;
  a.bits = random_bits(64, 1);
  DpchConfig b;
  b.sf = 32;
  b.code_index = 9;
  b.bits = random_bits(64, 2);
  cfg.channels = {a, b};
  UmtsDownlinkTx tx(cfg);
  const auto chips = tx.generate(32 * 10)[0];

  // Despread with code (32,9): channel a and the CPICH (code 0 tree)
  // must vanish; only b's symbols remain.
  dedhw::UmtsScrambler scr(32);
  for (int m = 0; m < 10; ++m) {
    CplxF acc{0.0, 0.0};
    for (int i = 0; i < 32; ++i) {
      const CplxI c = scr.next();
      const CplxF code{static_cast<double>(c.re), static_cast<double>(c.im)};
      acc += chips[static_cast<std::size_t>(32 * m + i)] * std::conj(code) *
             static_cast<double>(dedhw::ovsf_chip(32, 9, i));
    }
    acc /= 2.0 * 32.0;
    const CplxF expect = tx.channel_symbols(1)[static_cast<std::size_t>(m)];
    EXPECT_NEAR(std::abs(acc - expect), 0.0, 1e-9);
  }
}

TEST(UmtsTx, CpichDetectableByCorrelation) {
  BasestationConfig cfg;
  cfg.scrambling_code = 48;
  cfg.cpich_gain = 0.5;
  UmtsDownlinkTx tx(cfg);
  const auto chips = tx.generate(512)[0];
  dedhw::UmtsScrambler scr(48);
  CplxF acc{0.0, 0.0};
  for (int i = 0; i < 512; ++i) {
    const CplxI c = scr.next();
    const CplxF pilot =
        CplxF{static_cast<double>(c.re), static_cast<double>(c.im)} *
        CplxF{1.0, 1.0} / std::sqrt(2.0);
    acc += chips[static_cast<std::size_t>(i)] * std::conj(pilot);
  }
  acc /= 2.0 * 512.0;
  EXPECT_NEAR(std::abs(acc), 0.5 / std::sqrt(2.0) * std::sqrt(2.0), 0.01)
      << "correlation recovers the CPICH amplitude";
}

TEST(UmtsTx, SttdTransmitsTwoAntennas) {
  BasestationConfig cfg;
  cfg.scrambling_code = 0;
  cfg.cpich_gain = 0.0;
  DpchConfig ch;
  ch.sf = 8;
  ch.code_index = 1;
  ch.sttd = true;
  ch.bits = random_bits(32, 3);
  cfg.channels.push_back(ch);
  UmtsDownlinkTx tx(cfg);
  EXPECT_EQ(tx.num_antennas(), 2);
  const auto streams = tx.generate(64);
  ASSERT_EQ(streams.size(), 2u);
  // Antenna streams differ but have equal power.
  double p0 = 0.0;
  double p1 = 0.0;
  double diff = 0.0;
  for (int i = 0; i < 64; ++i) {
    p0 += std::norm(streams[0][static_cast<std::size_t>(i)]);
    p1 += std::norm(streams[1][static_cast<std::size_t>(i)]);
    diff += std::norm(streams[0][static_cast<std::size_t>(i)] -
                      streams[1][static_cast<std::size_t>(i)]);
  }
  EXPECT_NEAR(p0, p1, 1e-9);
  EXPECT_GT(diff, 0.1);
}

TEST(UmtsTx, ResetReplaysStream) {
  BasestationConfig cfg;
  cfg.scrambling_code = 16;
  DpchConfig ch;
  ch.sf = 16;
  ch.code_index = 2;
  ch.bits = random_bits(32, 4);
  cfg.channels.push_back(ch);
  UmtsDownlinkTx tx(cfg);
  const auto first = tx.generate(128)[0];
  tx.reset();
  const auto second = tx.generate(128)[0];
  for (int i = 0; i < 128; ++i) {
    EXPECT_NEAR(std::abs(first[static_cast<std::size_t>(i)] -
                         second[static_cast<std::size_t>(i)]),
                0.0, 1e-12);
  }
}

TEST(UmtsTx, RejectsInvalidConfigs) {
  BasestationConfig cfg;
  cfg.scrambling_code = 1;
  DpchConfig ch;
  ch.sf = 3;  // not a power of two
  ch.bits = {0, 1};
  cfg.channels.push_back(ch);
  EXPECT_THROW(UmtsDownlinkTx{cfg}, std::invalid_argument);
  cfg.channels[0].sf = 16;
  cfg.channels[0].bits = {1};  // odd
  EXPECT_THROW(UmtsDownlinkTx{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace rsp::phy

#include "src/phy/channel.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/dbmath.hpp"

namespace rsp::phy {
namespace {

TEST(Channel, AwgnNoisePowerMatchesEsN0) {
  Rng rng(1);
  std::vector<CplxF> x(20000, CplxF{1.0, 0.0});
  const double esn0 = 7.0;
  const auto y = awgn(x, esn0, rng);
  double err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) err += std::norm(y[i] - x[i]);
  const double measured = lin_to_db(static_cast<double>(x.size()) / err);
  EXPECT_NEAR(measured, esn0, 0.3);
}

TEST(Channel, SingleTapDelayShiftsSignal) {
  Rng rng(2);
  MultipathChannel ch({{5, {1.0, 0.0}, 0.0}}, 3.84e6);
  std::vector<CplxF> x(32, CplxF{0.0, 0.0});
  x[0] = {1.0, 0.0};
  const auto y = ch.run(x, 100.0, rng);  // negligible noise
  ASSERT_EQ(y.size(), 37u);
  EXPECT_NEAR(std::abs(y[5] - CplxF{1.0, 0.0}), 0.0, 1e-3);
  EXPECT_NEAR(std::abs(y[0]), 0.0, 1e-3);
}

TEST(Channel, MultipathSuperposition) {
  Rng rng(3);
  MultipathChannel ch({{0, {0.5, 0.0}, 0.0}, {3, {0.0, 0.5}, 0.0}}, 3.84e6);
  std::vector<CplxF> x(16, CplxF{0.0, 0.0});
  x[0] = {2.0, 0.0};
  const auto y = ch.run(x, 100.0, rng);
  EXPECT_NEAR(std::abs(y[0] - CplxF{1.0, 0.0}), 0.0, 1e-2);
  EXPECT_NEAR(std::abs(y[3] - CplxF{0.0, 1.0}), 0.0, 1e-2);
}

TEST(Channel, DopplerRotatesPhase) {
  Rng rng(4);
  const double fs = 3.84e6;
  const double fd = fs / 360.0;  // 1 degree... actually 1/360 cycle/sample
  MultipathChannel ch({{0, {1.0, 0.0}, fd}}, fs);
  std::vector<CplxF> x(360, CplxF{1.0, 0.0});
  const auto y = ch.run(x, 120.0, rng);
  // After 180 samples the phase advanced pi (half a Doppler cycle).
  EXPECT_NEAR(y[180].real(), -1.0, 0.05);
  // Phase continuity across calls:
  const auto y2 = ch.run(x, 120.0, rng);
  EXPECT_NEAR(y2[0].real(), std::cos(2.0 * std::acos(-1.0) * fd / fs * 360.0),
              0.05);
}

TEST(Channel, MaxDelayReported) {
  MultipathChannel ch({{2, {1, 0}, 0}, {9, {1, 0}, 0}, {4, {1, 0}, 0}}, 1.0);
  EXPECT_EQ(ch.max_delay(), 9);
}

TEST(Channel, DopplerForSpeed) {
  // 2 GHz carrier, 30 m/s -> ~200 Hz.
  EXPECT_NEAR(doppler_hz_for_speed(30.0), 200.0, 1.0);
  EXPECT_EQ(doppler_hz_for_speed(0.0), 0.0);
}

TEST(Channel, RayleighFadingVariesAcrossBlocks) {
  Rng rng(5);
  Rng fade_rng(6);
  MultipathChannel ch({{0, {1.0, 0.0}, 0.0}}, 1.0e6);
  ch.enable_rayleigh(64, fade_rng);
  std::vector<CplxF> x(512, CplxF{1.0, 0.0});
  const auto y = ch.run(x, 100.0, rng);
  // Gains differ between fading blocks.
  const double m0 = std::abs(y[10]);
  const double m1 = std::abs(y[100]);
  const double m2 = std::abs(y[300]);
  EXPECT_TRUE(std::abs(m0 - m1) > 1e-3 || std::abs(m1 - m2) > 1e-3);
  // Within one block the gain is constant.
  EXPECT_NEAR(std::abs(y[10]), std::abs(y[20]), 1e-4);
}

}  // namespace
}  // namespace rsp::phy

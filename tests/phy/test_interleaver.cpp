#include "src/phy/interleaver.hpp"

#include <numeric>

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/phy/ofdm_tx.hpp"

namespace rsp::phy {
namespace {

struct ModeParams {
  int ncbps;
  int nbpsc;
};

class InterleaverModes : public ::testing::TestWithParam<ModeParams> {};

TEST_P(InterleaverModes, RoundTrip) {
  const auto [ncbps, nbpsc] = GetParam();
  Rng rng(4);
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(ncbps));
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  EXPECT_EQ(deinterleave(interleave(bits, ncbps, nbpsc), ncbps, nbpsc), bits);
}

TEST_P(InterleaverModes, IsPermutation) {
  const auto [ncbps, nbpsc] = GetParam();
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(ncbps));
  // Tag positions by low bits so we can verify a bijection.
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(ncbps), 0);
  std::iota(bits.begin(), bits.end(), 0);  // wraps mod 256, fine for 288
  const auto il = interleave(bits, ncbps, nbpsc);
  long long sum_in = 0;
  long long sum_out = 0;
  for (int i = 0; i < ncbps; ++i) {
    sum_in += bits[static_cast<std::size_t>(i)];
    sum_out += il[static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(sum_in, sum_out) << "interleaver must only permute";
  (void)seen;
}

TEST_P(InterleaverModes, AdjacentBitsSeparated) {
  // The design goal: adjacent coded bits map onto nonadjacent
  // positions (>= 2 apart) after interleaving.
  const auto [ncbps, nbpsc] = GetParam();
  std::vector<int> pos(static_cast<std::size_t>(ncbps));
  for (int k = 0; k < ncbps; ++k) {
    std::vector<std::uint8_t> probe(static_cast<std::size_t>(ncbps), 0);
    probe[static_cast<std::size_t>(k)] = 1;
    const auto il = interleave(probe, ncbps, nbpsc);
    for (int j = 0; j < ncbps; ++j) {
      if (il[static_cast<std::size_t>(j)]) pos[static_cast<std::size_t>(k)] = j;
    }
  }
  for (int k = 0; k + 1 < ncbps; ++k) {
    EXPECT_GE(std::abs(pos[static_cast<std::size_t>(k)] -
                       pos[static_cast<std::size_t>(k + 1)]),
              2)
        << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ieee80211aModes, InterleaverModes,
    ::testing::Values(ModeParams{48, 1}, ModeParams{96, 2}, ModeParams{192, 4},
                      ModeParams{288, 6}));

TEST(Interleaver, SoftDeinterleaveMatchesBitDeinterleave) {
  Rng rng(8);
  const int ncbps = 192;
  const int nbpsc = 4;
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(ncbps));
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  const auto il = interleave(bits, ncbps, nbpsc);
  std::vector<std::int32_t> soft(il.size());
  for (std::size_t i = 0; i < il.size(); ++i) soft[i] = il[i] ? 64 : -64;
  const auto dsoft = deinterleave_soft(soft, ncbps, nbpsc);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_EQ(dsoft[i] > 0, bits[i] == 1);
  }
}

TEST(Interleaver, RejectsWrongSize) {
  EXPECT_THROW((void)interleave({1, 0}, 48, 1), std::invalid_argument);
  EXPECT_THROW((void)deinterleave({1, 0}, 48, 1), std::invalid_argument);
}

TEST(Interleaver, MatchesRateModeTables) {
  for (const auto& m : all_rate_modes()) {
    EXPECT_EQ(m.ncbps, 48 * bits_per_symbol(m.mod));
  }
}

}  // namespace
}  // namespace rsp::phy

#include "src/phy/ofdm_tx.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/phy/fft.hpp"

namespace rsp::phy {
namespace {

TEST(OfdmTx, RateModeTablesMatchStandard) {
  ASSERT_EQ(all_rate_modes().size(), 8u);
  EXPECT_EQ(rate_mode(6).ndbps, 24);
  EXPECT_EQ(rate_mode(9).ndbps, 36);
  EXPECT_EQ(rate_mode(12).ndbps, 48);
  EXPECT_EQ(rate_mode(18).ndbps, 72);
  EXPECT_EQ(rate_mode(24).ndbps, 96);
  EXPECT_EQ(rate_mode(36).ndbps, 144);
  EXPECT_EQ(rate_mode(48).ndbps, 192);
  EXPECT_EQ(rate_mode(54).ndbps, 216);
  for (const auto& m : all_rate_modes()) {
    // Data rate = NDBPS / 4 us.
    EXPECT_EQ(m.mbps, m.ndbps / 4);
  }
  EXPECT_THROW((void)rate_mode(11), std::invalid_argument);
}

TEST(OfdmTx, CarrierMaps) {
  EXPECT_EQ(data_carriers().size(), 48u);
  EXPECT_EQ(pilot_carriers().size(), 4u);
  for (const int p : pilot_carriers()) {
    for (const int d : data_carriers()) EXPECT_NE(p, d);
  }
  for (const int d : data_carriers()) EXPECT_NE(d, 0) << "DC unused";
}

TEST(OfdmTx, PilotPolarityPeriodic) {
  for (int n = 0; n < 127; ++n) {
    EXPECT_EQ(pilot_polarity(n), pilot_polarity(n + 127));
    EXPECT_TRUE(pilot_polarity(n) == 1 || pilot_polarity(n) == -1);
  }
}

TEST(OfdmTx, ShortPreambleIsPeriodic16) {
  const auto sp = short_preamble();
  ASSERT_EQ(sp.size(), 160u);
  for (std::size_t i = 0; i + 16 < sp.size(); ++i) {
    EXPECT_NEAR(std::abs(sp[i] - sp[i + 16]), 0.0, 1e-9);
  }
}

TEST(OfdmTx, LongPreambleStructure) {
  const auto lp = long_preamble();
  ASSERT_EQ(lp.size(), 160u);
  // Two identical 64-sample bodies after the 32-sample guard.
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(lp[static_cast<std::size_t>(32 + i)] -
                         lp[static_cast<std::size_t>(96 + i)]),
                0.0, 1e-9);
  }
  // Guard = tail of the body (cyclic prefix): lp[i] == lp[128 + i].
  for (int i = 0; i < 32; ++i) {
    EXPECT_NEAR(std::abs(lp[static_cast<std::size_t>(i)] -
                         lp[static_cast<std::size_t>(128 + i)]),
                0.0, 1e-9);
  }
}

TEST(OfdmTx, LongTrainingSymbolRecoverable) {
  // FFT of the long-preamble body must reproduce L_k on carriers.
  const auto lp = long_preamble();
  std::vector<CplxF> body(lp.begin() + 32, lp.begin() + 96);
  fft(body, false);
  const auto& L = long_training_symbol();
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    const int bin = (k + 64) % 64;
    const double expect =
        static_cast<double>(L[static_cast<std::size_t>(k + 26)]);
    EXPECT_NEAR(body[static_cast<std::size_t>(bin)].real() /
                    std::sqrt(64.0),
                expect, 1e-6)
        << "carrier " << k;
  }
}

TEST(OfdmTx, NumDataSymbols) {
  // 100 PSDU bits at 6 Mbit/s: (16+100+6)/24 = 5.08 -> 6 symbols.
  EXPECT_EQ(OfdmTransmitter::num_data_symbols(100, 6), 6);
  EXPECT_EQ(OfdmTransmitter::num_data_symbols(100, 54), 1);
  EXPECT_EQ(OfdmTransmitter::num_data_symbols(216 - 22, 54), 1);
  EXPECT_EQ(OfdmTransmitter::num_data_symbols(216 - 21, 54), 2);
}

TEST(OfdmTx, PpduLengthMatchesSymbolCount) {
  Rng rng(1);
  std::vector<std::uint8_t> psdu(160);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  OfdmTransmitter tx;
  const auto ppdu = tx.build_ppdu(psdu, 12);
  const int nsym = OfdmTransmitter::num_data_symbols(psdu.size(), 12);
  // preambles (320) + SIGNAL (80) + DATA symbols
  EXPECT_EQ(ppdu.size(), 400u + static_cast<std::size_t>(nsym) * 80u);
}

TEST(OfdmTx, EncodedBitsLengthConsistent) {
  Rng rng(2);
  std::vector<std::uint8_t> psdu(200);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  OfdmTransmitter tx;
  for (const auto& m : all_rate_modes()) {
    const auto coded = tx.encode_data_bits(psdu, m.mbps);
    EXPECT_EQ(coded.size() % static_cast<std::size_t>(m.ncbps), 0u);
    EXPECT_EQ(static_cast<int>(coded.size()) / m.ncbps,
              OfdmTransmitter::num_data_symbols(psdu.size(), m.mbps));
  }
}

TEST(OfdmTx, MeanPowerNearUnity) {
  Rng rng(3);
  std::vector<std::uint8_t> psdu(400);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  OfdmTransmitter tx;
  const auto ppdu = tx.build_ppdu(psdu, 24);
  double p = 0.0;
  for (const auto& s : ppdu) p += std::norm(s);
  p /= static_cast<double>(ppdu.size());
  EXPECT_GT(p, 0.4);
  EXPECT_LT(p, 1.6);
}

}  // namespace
}  // namespace rsp::phy

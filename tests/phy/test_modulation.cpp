#include "src/phy/modulation.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.hpp"

namespace rsp::phy {
namespace {

class ModulationRoundTrip : public ::testing::TestWithParam<Modulation> {};

TEST_P(ModulationRoundTrip, HardDemapInvertsModulate) {
  const Modulation m = GetParam();
  Rng rng(5);
  std::vector<std::uint8_t> bits(
      static_cast<std::size_t>(bits_per_symbol(m)) * 64);
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  const auto symbols = modulate(bits, m);
  EXPECT_EQ(hard_demap(symbols, m), bits);
}

TEST_P(ModulationRoundTrip, UnitAveragePower) {
  const Modulation m = GetParam();
  const auto& points = constellation(m);
  double p = 0.0;
  for (const auto& s : points) p += std::norm(s);
  EXPECT_NEAR(p / static_cast<double>(points.size()), 1.0, 1e-9)
      << modulation_name(m);
}

TEST_P(ModulationRoundTrip, GrayNeighborsDifferInOneBit) {
  // Adjacent constellation points along each axis differ in one bit —
  // check via minimum-distance pairs.
  const Modulation m = GetParam();
  const auto& points = constellation(m);
  double dmin = 1e9;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      dmin = std::min(dmin, std::abs(points[i] - points[j]));
    }
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (std::abs(points[i] - points[j]) < dmin * 1.001) {
        EXPECT_EQ(__builtin_popcount(static_cast<unsigned>(i ^ j)), 1)
            << modulation_name(m) << " words " << i << "," << j;
      }
    }
  }
}

TEST_P(ModulationRoundTrip, SoftLlrSignsMatchHardDecisions) {
  const Modulation m = GetParam();
  Rng rng(9);
  std::vector<std::uint8_t> bits(
      static_cast<std::size_t>(bits_per_symbol(m)) * 32);
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  const auto symbols = modulate(bits, m);
  const auto llr = soft_demap(symbols, m);
  ASSERT_EQ(llr.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) {
      EXPECT_GT(llr[i], 0) << "bit " << i;
    } else {
      EXPECT_LT(llr[i], 0) << "bit " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ModulationRoundTrip,
                         ::testing::Values(Modulation::kBpsk, Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64));

TEST(Modulation, BitsPerSymbol) {
  EXPECT_EQ(bits_per_symbol(Modulation::kBpsk), 1);
  EXPECT_EQ(bits_per_symbol(Modulation::kQpsk), 2);
  EXPECT_EQ(bits_per_symbol(Modulation::kQam16), 4);
  EXPECT_EQ(bits_per_symbol(Modulation::kQam64), 6);
}

TEST(Modulation, RejectsBadLength) {
  EXPECT_THROW((void)modulate({1}, Modulation::kQpsk), std::invalid_argument);
}

TEST(Modulation, NoisyHardDemapDegradesGracefully) {
  Rng rng(3);
  std::vector<std::uint8_t> bits(6000);
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  const auto symbols = modulate(bits, Modulation::kQam16);
  std::vector<CplxF> noisy(symbols.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    noisy[i] = symbols[i] + rng.cgaussian(0.01);  // 20 dB SNR
  }
  const auto decided = hard_demap(noisy, Modulation::kQam16);
  int errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    errors += (decided[i] != bits[i]) ? 1 : 0;
  }
  EXPECT_LT(errors, static_cast<int>(bits.size() / 100));
}

}  // namespace
}  // namespace rsp::phy

// Link-level sanity against closed-form theory: uncoded BER over AWGN
// must track the Q-function predictions within Monte-Carlo tolerance.
#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/phy/modulation.hpp"

namespace rsp::phy {
namespace {

double qfunc(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double measured_ber(Modulation m, double esn0_db, std::size_t n_bits,
                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> bits(n_bits);
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  const auto tx = modulate(bits, m);
  const double n0 = std::pow(10.0, -esn0_db / 10.0);
  std::vector<CplxF> rx(tx.size());
  for (std::size_t i = 0; i < tx.size(); ++i) {
    rx[i] = tx[i] + rng.cgaussian(n0);
  }
  const auto decided = hard_demap(rx, m);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    errors += (decided[i] != bits[i]) ? 1 : 0;
  }
  return static_cast<double>(errors) / static_cast<double>(n_bits);
}

struct TheoryPoint {
  Modulation mod;
  double esn0_db;
};

class AwgnTheory : public ::testing::TestWithParam<TheoryPoint> {};

TEST_P(AwgnTheory, BerMatchesQFunction) {
  const auto [mod, esn0_db] = GetParam();
  const double esn0 = std::pow(10.0, esn0_db / 10.0);
  double theory = 0.0;
  switch (mod) {
    case Modulation::kBpsk:
      // BPSK on the I rail only: Eb = Es, d = sqrt(2 Es/N0).
      theory = qfunc(std::sqrt(2.0 * esn0));
      break;
    case Modulation::kQpsk:
      // Per-bit error rate of Gray QPSK: Q(sqrt(Es/N0)).
      theory = qfunc(std::sqrt(esn0));
      break;
    case Modulation::kQam16:
      // Gray 16-QAM approximation: (3/4) Q(sqrt(Es/N0 / 5)).
      theory = 0.75 * qfunc(std::sqrt(esn0 / 5.0));
      break;
    case Modulation::kQam64:
      // Gray 64-QAM approximation: (7/12) Q(sqrt(Es/N0 / 21)).
      theory = 7.0 / 12.0 * qfunc(std::sqrt(esn0 / 21.0));
      break;
  }
  const double measured = measured_ber(mod, esn0_db, 120000, 42);
  EXPECT_NEAR(measured, theory, std::max(0.25 * theory, 6e-4))
      << modulation_name(mod) << " @ " << esn0_db << " dB (theory " << theory
      << ")";
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, AwgnTheory,
    ::testing::Values(TheoryPoint{Modulation::kBpsk, 4.0},
                      TheoryPoint{Modulation::kBpsk, 7.0},
                      TheoryPoint{Modulation::kQpsk, 7.0},
                      TheoryPoint{Modulation::kQpsk, 10.0},
                      TheoryPoint{Modulation::kQam16, 14.0},
                      TheoryPoint{Modulation::kQam64, 20.0}));

TEST(AwgnTheoryExtra, BerMonotonicInSnr) {
  double prev = 1.0;
  for (const double esn0 : {0.0, 3.0, 6.0, 9.0}) {
    const double b = measured_ber(Modulation::kQpsk, esn0, 40000, 7);
    EXPECT_LE(b, prev + 1e-3);
    prev = b;
  }
}

}  // namespace
}  // namespace rsp::phy

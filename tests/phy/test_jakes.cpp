#include "src/phy/jakes.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

namespace rsp::phy {
namespace {

TEST(Jakes, UnitAveragePower) {
  Rng rng(1);
  JakesFader f(100.0, 1.0e6, rng, 24);
  double p = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    p += std::norm(f.gain(static_cast<long long>(i) * 50));
  }
  EXPECT_NEAR(p / n, 1.0, 0.15);
}

TEST(Jakes, RayleighEnvelopeStatistics) {
  // For a Rayleigh envelope with unit mean-square, P(|g| < 0.5) ~ 0.22
  // and the median is sqrt(ln 2) ~ 0.83.
  Rng rng(2);
  JakesFader f(80.0, 1.0e6, rng, 32);
  int below_half = 0;
  int below_median = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const double env = std::abs(f.gain(static_cast<long long>(i) * 97));
    below_half += (env < 0.5) ? 1 : 0;
    below_median += (env < std::sqrt(std::log(2.0))) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(below_half) / n, 1.0 - std::exp(-0.25),
              0.05);
  EXPECT_NEAR(static_cast<double>(below_median) / n, 0.5, 0.06);
}

TEST(Jakes, TemporalCorrelationFollowsDoppler) {
  // Autocorrelation ~ J0(2 pi fd tau): strong at small lags, weak past
  // the coherence time ~ 0.4 / fd.
  Rng rng(3);
  const double fd = 200.0;
  const double fs = 1.0e6;
  JakesFader f(fd, fs, rng, 32);
  const int n = 20000;
  const auto corr_at = [&](long long lag) {
    CplxF acc{0.0, 0.0};
    for (int i = 0; i < n; ++i) {
      acc += f.gain(i) * std::conj(f.gain(i + lag));
    }
    return std::abs(acc) / n;
  };
  const double r0 = corr_at(0);
  const double r_small = corr_at(static_cast<long long>(0.05 / fd * fs));
  const double r_large = corr_at(static_cast<long long>(2.0 / fd * fs));
  EXPECT_GT(r_small, 0.85 * r0) << "well inside coherence time";
  EXPECT_LT(r_large, 0.5 * r0) << "decorrelated past several coherence times";
}

TEST(Jakes, ZeroDopplerIsStatic) {
  Rng rng(4);
  JakesFader f(0.0, 1.0e6, rng);
  const CplxF g0 = f.gain(0);
  EXPECT_NEAR(std::abs(f.gain(1000000) - g0), 0.0, 1e-9);
}

TEST(Jakes, ChannelAppliesDelaysAndPower) {
  Rng rng(5);
  JakesChannel ch({{0, 0.8, 0.0}, {7, 0.2, 0.0}}, 1.0e6, rng);
  std::vector<CplxF> x(64, CplxF{0.0, 0.0});
  x[0] = {1.0, 0.0};
  Rng nrng(6);
  const auto y = ch.run(x, 200.0, nrng);
  ASSERT_EQ(y.size(), 71u);
  // Impulse response peaks at delays 0 and 7, silence elsewhere.
  EXPECT_GT(std::abs(y[0]), 0.05);
  EXPECT_GT(std::abs(y[7]), 0.01);
  for (const int k : {1, 2, 3, 4, 5, 6, 8, 9}) {
    EXPECT_LT(std::abs(y[static_cast<std::size_t>(k)]), 1e-6) << k;
  }
}

TEST(Jakes, ContinuousAcrossCalls) {
  Rng rng(7);
  JakesChannel a({{0, 1.0, 150.0}}, 1.0e6, rng);
  Rng rng2(7);
  JakesChannel b({{0, 1.0, 150.0}}, 1.0e6, rng2);
  std::vector<CplxF> x(100, CplxF{1.0, 0.0});
  Rng n1(8);
  Rng n2(8);
  const auto whole = b.run(std::vector<CplxF>(200, CplxF{1.0, 0.0}), 200.0, n2);
  const auto first = a.run(x, 200.0, n1);
  const auto second = a.run(x, 200.0, n1);
  // Split processing must equal one continuous run (same fader state).
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(std::abs(first[static_cast<std::size_t>(i)] -
                         whole[static_cast<std::size_t>(i)]),
                0.0, 1e-9);
    EXPECT_NEAR(std::abs(second[static_cast<std::size_t>(i)] -
                         whole[static_cast<std::size_t>(i + 100)]),
                0.0, 1e-9);
  }
}

}  // namespace
}  // namespace rsp::phy

// Regression tests for the bench report helpers (bench/report.hpp).
//
// Two real bugs are pinned here:
//  1. Table::print() indexed width[c] for cells beyond the header count
//     — an out-of-bounds read (the column-measuring loop clamps to
//     width.size() but the printing loop did not).  Now the overflow
//     cells are printed with a visible '!' marker instead.
//  2. BENCH_*.json writers formatted doubles with printf "%f", which
//     honours LC_NUMERIC: under a comma-decimal locale (de_DE, fr_FR)
//     "12.5" becomes "12,5" — invalid JSON.  json_num() rewrites the
//     active locale's decimal point back to ".".
#include "bench/report.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "tests/support/json_lite.hpp"

namespace rsp::bench {
namespace {

TEST(Report, TableRowWiderThanHeadersIsClampedAndFlagged) {
  // Pre-fix this was an out-of-bounds read of width[2] (UB; with a
  // 2-header table the row's third cell indexed past the width vector).
  Table t({"a", "b"});
  t.row({"1", "2", "SURPLUS", "MORE"});
  t.row({"3", "4"});
  ::testing::internal::CaptureStdout();
  t.print();
  const std::string out = ::testing::internal::GetCapturedStdout();
  // The in-range cells print normally...
  EXPECT_NE(out.find("| 1 | 2 |"), std::string::npos) << out;
  EXPECT_NE(out.find("| 3 | 4 |"), std::string::npos) << out;
  // ...and the surplus cells are visibly flagged, not dropped.
  EXPECT_NE(out.find("!SURPLUS"), std::string::npos) << out;
  EXPECT_NE(out.find("!MORE"), std::string::npos) << out;
}

TEST(Report, TableRowNarrowerThanHeadersStillPrints) {
  Table t({"a", "b", "c"});
  t.row({"only"});
  ::testing::internal::CaptureStdout();
  t.print();
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("| only"), std::string::npos) << out;
  EXPECT_EQ(out.find('!'), std::string::npos) << out;
}

TEST(Report, JsonNumBasics) {
  EXPECT_EQ(json_num(12.5, 2), "12.50");
  EXPECT_EQ(json_num(-0.125, 3), "-0.125");
  EXPECT_EQ(json_num(3.0, 0), "3");
  EXPECT_EQ(json_num(static_cast<long long>(-42)), "-42");
  // JSON has no NaN/Inf literal.
  EXPECT_EQ(json_num(std::nan(""), 2), "0");
  EXPECT_EQ(json_num(std::numeric_limits<double>::infinity(), 2), "0");
}

/// RAII save/restore of LC_NUMERIC so a failing assertion can't leak a
/// comma locale into later tests.
class ScopedNumericLocale {
 public:
  ScopedNumericLocale() {
    const char* cur = std::setlocale(LC_NUMERIC, nullptr);
    saved_ = (cur != nullptr) ? cur : "C";
  }
  ~ScopedNumericLocale() { std::setlocale(LC_NUMERIC, saved_.c_str()); }
  ScopedNumericLocale(const ScopedNumericLocale&) = delete;
  ScopedNumericLocale& operator=(const ScopedNumericLocale&) = delete;

 private:
  std::string saved_;
};

/// Try to activate any locale whose decimal separator is ','.  Returns
/// the locale name, or "" if the container has none installed.
std::string set_comma_locale() {
  for (const char* name :
       {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8", "fr_FR.utf8",
        "fr_FR", "es_ES.UTF-8", "it_IT.UTF-8", "pt_BR.UTF-8", "ru_RU.UTF-8"}) {
    if (std::setlocale(LC_NUMERIC, name) != nullptr) {
      const lconv* lc = std::localeconv();
      if (lc != nullptr && lc->decimal_point != nullptr &&
          std::string(lc->decimal_point) == ",") {
        return name;
      }
    }
  }
  std::setlocale(LC_NUMERIC, "C");
  return "";
}

TEST(Report, JsonNumIsLocaleIndependent) {
  ScopedNumericLocale restore;
  const std::string name = set_comma_locale();
  if (name.empty()) {
    GTEST_SKIP() << "no comma-decimal locale installed in this environment";
  }
  // Demonstrate the underlying hazard is real under this locale...
  char raw[64];
  std::snprintf(raw, sizeof(raw), "%.2f", 12.5);
  ASSERT_NE(std::string(raw).find(','), std::string::npos)
      << "locale " << name << " did not produce a comma decimal";
  // ...and that json_num neutralizes it (pre-fix: "12,50").
  EXPECT_EQ(json_num(12.5, 2), "12.50");
  EXPECT_EQ(json_num(-7.25, 2), "-7.25");
  // A composed JSON document stays valid under the comma locale.
  const std::string doc = "{\"speedup\": " + json_num(1.75, 3) +
                          ", \"cps\": " + json_num(1234567.0, 0) + "}";
  EXPECT_TRUE(rsp::testing::json_valid(doc)) << doc;
}

TEST(Report, JsonLiteRejectsCommaDecimals) {
  // The validator the trace/bench tests rely on must actually catch the
  // bug class these tests guard: "1,5" inside a value position.
  EXPECT_TRUE(rsp::testing::json_valid("{\"x\": 1.5}"));
  EXPECT_FALSE(rsp::testing::json_valid("{\"x\": 1,5}"));
  EXPECT_FALSE(rsp::testing::json_valid("[1,5,]"));
  EXPECT_TRUE(rsp::testing::json_valid("[1,5]"));
  EXPECT_FALSE(rsp::testing::json_valid("{\"x\": 01}"));
}

}  // namespace
}  // namespace rsp::bench

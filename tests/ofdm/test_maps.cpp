// Bit-exactness and behaviour of the Figure 9/10 array mappings.
#include "src/ofdm/maps.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/dedhw/wlan_scrambler.hpp"

namespace rsp::ofdm {
namespace {

std::array<CplxI, 64> random_samples(std::uint64_t seed, int amp = 500) {
  Rng rng(seed);
  std::array<CplxI, 64> out{};
  for (auto& c : out) {
    c = {static_cast<int>(rng.below(static_cast<std::uint32_t>(2 * amp))) - amp,
         static_cast<int>(rng.below(static_cast<std::uint32_t>(2 * amp))) - amp};
  }
  return out;
}

TEST(OfdmMaps, Fft64MatchesGoldenBitExactly) {
  xpp::ConfigurationManager mgr;
  for (int trial = 0; trial < 3; ++trial) {
    const auto in = random_samples(static_cast<std::uint64_t>(trial) + 1);
    const auto mapped = maps::run_fft64(mgr, in);
    const auto golden = phy::fft64_fixed(in);
    for (int k = 0; k < 64; ++k) {
      ASSERT_EQ(mapped[static_cast<std::size_t>(k)],
                golden[static_cast<std::size_t>(k)])
          << "trial " << trial << " bin " << k;
    }
  }
}

TEST(OfdmMaps, Ifft64InvertsTransformWithinQuantization) {
  // ifft(fft(x)) ~ x/64 (the forward kernel scales by 1/64); with a
  // pre-scaled input the round trip returns the input shape.
  Rng rng(55);
  std::array<CplxI, 64> x{};
  for (auto& c : x) {
    c = {static_cast<int>(rng.below(800)) - 400,
         static_cast<int>(rng.below(800)) - 400};
  }
  xpp::ConfigurationManager mgr;
  const auto mapped = maps::run_ifft64(mgr, x);
  const auto golden = phy::ifft64_fixed(x);
  for (int k = 0; k < 64; ++k) {
    ASSERT_EQ(mapped[static_cast<std::size_t>(k)],
              golden[static_cast<std::size_t>(k)])
        << "bin " << k;
  }
}

TEST(OfdmMaps, Ifft64MatchesFloatInverse) {
  Rng rng(56);
  std::array<CplxI, 64> x{};
  std::vector<CplxF> xf(64);
  for (int n = 0; n < 64; ++n) {
    const CplxI q{static_cast<int>(rng.below(1000)) - 500,
                  static_cast<int>(rng.below(1000)) - 500};
    x[static_cast<std::size_t>(n)] = q;
    xf[static_cast<std::size_t>(n)] = {static_cast<double>(q.re),
                                       static_cast<double>(q.im)};
  }
  const auto fixed = phy::ifft64_fixed(x);
  phy::fft(xf, /*inverse=*/true);  // IDFT with 1/64 scaling
  for (int n = 0; n < 64; ++n) {
    EXPECT_NEAR(fixed[static_cast<std::size_t>(n)].re,
                xf[static_cast<std::size_t>(n)].real(), 4.0) << n;
    EXPECT_NEAR(fixed[static_cast<std::size_t>(n)].im,
                xf[static_cast<std::size_t>(n)].imag(), 4.0) << n;
  }
}

TEST(OfdmMaps, Fft64BatchMatchesSingleTransforms) {
  xpp::ConfigurationManager mgr;
  std::vector<std::array<CplxI, 64>> burst;
  for (int t = 0; t < 4; ++t) {
    burst.push_back(random_samples(40 + static_cast<std::uint64_t>(t)));
  }
  const long long cfg_before = mgr.total_config_cycles();
  const auto batch = maps::run_fft64_batch(mgr, burst);
  const long long batch_cfg = mgr.total_config_cycles() - cfg_before;
  ASSERT_EQ(batch.size(), burst.size());
  long long single_cfg = 0;
  for (std::size_t t = 0; t < burst.size(); ++t) {
    const long long c0 = mgr.total_config_cycles();
    const auto single = maps::run_fft64(mgr, burst[t]);
    single_cfg += mgr.total_config_cycles() - c0;
    ASSERT_EQ(batch[t], single) << "transform " << t;
    ASSERT_EQ(single, phy::fft64_fixed(burst[t]));
  }
  EXPECT_LT(batch_cfg * 3, single_cfg)
      << "resident kernel must amortize configuration time";
}

TEST(OfdmMaps, Fft64StageResources) {
  // Figure 9 inventory: data RAMs, address/twiddle LUTs (RAM-PAEs),
  // complex multiplier + radix-4 kernel + steering (ALU-PAEs).
  const auto cfg = maps::fft64_stage_config(0);
  EXPECT_EQ(cfg.ram_demand(), 7);
  EXPECT_LE(cfg.alu_demand(), 24);
  EXPECT_GE(cfg.alu_demand(), 18);
  // "go"/"go2" are control-event inputs (no physical channel), so the
  // kernel needs just one data-in + one data-out channel.
  EXPECT_EQ(cfg.io_demand(), 2);
  EXPECT_THROW((void)maps::fft64_stage_config(3), std::invalid_argument);
}

TEST(OfdmMaps, Fft64FitsOnXpp64a) {
  const auto cfg = maps::fft64_stage_config(1);
  const xpp::ArrayGeometry g;
  EXPECT_LE(cfg.alu_demand(), g.alu_count());
  EXPECT_LE(cfg.ram_demand(), g.ram_count());
  EXPECT_LE(cfg.io_demand(), g.io_channels);
}

TEST(OfdmMaps, DownsamplerHalvesStream) {
  std::vector<CplxI> samples;
  for (int i = 0; i < 32; ++i) samples.push_back({i, -i});
  xpp::ConfigurationManager mgr;
  const auto out = maps::run_downsample2(mgr, samples);
  ASSERT_EQ(out.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], (CplxI{2 * i, -2 * i}));
  }
}

TEST(OfdmMaps, PreambleCorrelatorDetectsPeriodicity) {
  // Periodic-16 input: the delay-correlator ratio |corr|/power must be
  // high; random input: low.
  Rng rng(9);
  std::vector<CplxI> periodic;
  std::vector<CplxI> base;
  for (int i = 0; i < 16; ++i) {
    base.push_back({static_cast<int>(rng.below(800)) - 400,
                    static_cast<int>(rng.below(800)) - 400});
  }
  for (int rep = 0; rep < 10; ++rep) {
    periodic.insert(periodic.end(), base.begin(), base.end());
  }
  std::vector<CplxI> random;
  for (int i = 0; i < 160; ++i) {
    random.push_back({static_cast<int>(rng.below(800)) - 400,
                      static_cast<int>(rng.below(800)) - 400});
  }
  xpp::ConfigurationManager mgr;
  const auto pb = maps::run_preamble(mgr, periodic);
  const auto rb = maps::run_preamble(mgr, random);
  // Skip the first two blocks (delay-line warmup), compare ratios.
  double p_ratio = 0.0;
  double r_ratio = 0.0;
  for (std::size_t i = 2; i < pb.corr.size(); ++i) {
    p_ratio += std::sqrt(static_cast<double>(pb.corr[i].norm2())) /
               (std::abs(pb.power[i]) + 1.0);
    r_ratio += std::sqrt(static_cast<double>(rb.corr[i].norm2())) /
               (std::abs(rb.power[i]) + 1.0);
  }
  EXPECT_GT(p_ratio, 3.0 * r_ratio);
}

TEST(OfdmMaps, DemodAppliesCoefficients) {
  Rng rng(10);
  std::vector<CplxI> bins;
  std::vector<CplxI> coeff;
  const int shift = 10;
  for (int i = 0; i < 48; ++i) {
    bins.push_back({static_cast<int>(rng.below(1000)) - 500,
                    static_cast<int>(rng.below(1000)) - 500});
  }
  for (int i = 0; i < 48; ++i) {
    coeff.push_back({static_cast<int>(rng.below(1000)) - 500,
                     static_cast<int>(rng.below(1000)) - 500});
  }
  xpp::ConfigurationManager mgr;
  const auto out = maps::run_demod(mgr, bins, coeff, shift);
  ASSERT_EQ(out.size(), bins.size());
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const CplxI expect =
        sat_cplx(shr_round(bins[i] * coeff[i], shift), kHalfBits);
    ASSERT_EQ(out[i], expect) << i;
  }
}

TEST(OfdmMaps, WlanDescramblerMatchesLfsr) {
  Rng rng(11);
  std::vector<std::uint8_t> bits(300);
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  for (const std::uint8_t seed : {0x5D, 0x7F, 0x11}) {
    auto golden = bits;
    dedhw::WlanScrambler scr(seed);
    scr.apply(golden);
    xpp::ConfigurationManager mgr;
    xpp::RunResult stats;
    const auto mapped = maps::run_wlan_descrambler(mgr, bits, seed, &stats);
    ASSERT_EQ(mapped, golden) << "seed " << static_cast<int>(seed);
    EXPECT_EQ(stats.info.alu_cells, 1);
    EXPECT_EQ(stats.info.ram_cells, 1);
  }
}

TEST(OfdmMaps, WlanDescramblerIsInvolutionOnArray) {
  Rng rng(12);
  std::vector<std::uint8_t> bits(254);
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  xpp::ConfigurationManager mgr;
  const auto once = maps::run_wlan_descrambler(mgr, bits, 0x2A);
  const auto twice = maps::run_wlan_descrambler(mgr, once, 0x2A);
  EXPECT_EQ(twice, bits);
}

TEST(OfdmMaps, ReconfigScheduleFig10) {
  // Config 1 resident; 2a loaded, used, released; 2b then fits in the
  // freed resources and reuses cells 2a occupied.
  xpp::ConfigurationManager mgr;
  const auto cfg1 = maps::downsample2_config();
  const xpp::ConfigId id1 = mgr.load(cfg1);

  const auto cfg2a = maps::preamble_config();
  const xpp::ConfigId id2a = mgr.load(cfg2a);
  const int alu_during_2a = mgr.resources().used_alu_cells();
  mgr.release(id2a);

  std::vector<CplxI> h(48, CplxI{512, 0});
  const auto cfg2b = maps::demod_config(h, 10);
  const xpp::ConfigId id2b = mgr.load(cfg2b);
  const int alu_during_2b = mgr.resources().used_alu_cells();

  EXPECT_LT(alu_during_2b, alu_during_2a)
      << "demodulator needs fewer cells than the correlator";
  EXPECT_TRUE(mgr.loaded(id1)) << "config 1 stays resident";
  mgr.release(id2b);
  mgr.release(id1);
}

}  // namespace
}  // namespace rsp::ofdm

// OFDM receiver robustness: false alarms, truncation, clipping and
// misconfiguration must degrade gracefully.
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/ofdm/golden.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/ofdm_tx.hpp"

namespace rsp::ofdm {
namespace {

std::vector<CplxF> frame(const std::vector<std::uint8_t>& psdu, int mbps,
                         double esn0_db, std::uint64_t seed,
                         std::size_t lead = 160) {
  Rng rng(seed);
  phy::OfdmTransmitter tx;
  auto capture = tx.build_ppdu(psdu, mbps);
  std::vector<CplxF> head(lead, CplxF{0, 0});
  capture.insert(capture.begin(), head.begin(), head.end());
  return phy::awgn(capture, esn0_db, rng);
}

TEST(OfdmRobustness, PreambleFalseAlarmRateOnNoise) {
  PreambleDetector det;
  int alarms = 0;
  for (int t = 0; t < 20; ++t) {
    Rng rng(1000 + static_cast<std::uint64_t>(t));
    std::vector<CplxF> noise(2500, CplxF{0, 0});
    noise = phy::awgn(noise, 0.0, rng);
    alarms += det.detect(noise).has_value() ? 1 : 0;
  }
  EXPECT_EQ(alarms, 0) << "plateau criterion must reject noise";
}

TEST(OfdmRobustness, TruncatedFrameDecodesPrefix) {
  Rng rng(2);
  std::vector<std::uint8_t> psdu(480);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  auto capture = frame(psdu, 12, 28.0, 3);
  // Chop off the last two DATA symbols.
  capture.resize(capture.size() - 160);
  OfdmRxConfig cfg;
  cfg.mbps = 12;
  OfdmReceiver receiver(cfg);
  const auto res = receiver.receive(capture, psdu.size());
  ASSERT_TRUE(res.preamble_found);
  const int full_syms = phy::OfdmTransmitter::num_data_symbols(psdu.size(), 12);
  EXPECT_EQ(res.symbols_decoded, full_syms - 2);
  EXPECT_FALSE(res.psdu.empty());
}

TEST(OfdmRobustness, HardClippedCaptureStillDecodesRobustMode) {
  Rng rng(4);
  std::vector<std::uint8_t> psdu(240);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  auto capture = frame(psdu, 6, 24.0, 5);
  // Limiter at ~1 sigma of the OFDM envelope.
  for (auto& s : capture) {
    const double lim = 0.8;
    s = {std::clamp(s.real(), -lim, lim), std::clamp(s.imag(), -lim, lim)};
  }
  OfdmRxConfig cfg;
  cfg.mbps = 6;
  OfdmReceiver receiver(cfg);
  const auto res = receiver.receive(capture, psdu.size());
  ASSERT_TRUE(res.preamble_found);
  ASSERT_EQ(res.psdu.size(), psdu.size());
  int errors = 0;
  for (std::size_t i = 0; i < psdu.size(); ++i) {
    errors += (res.psdu[i] != psdu[i]) ? 1 : 0;
  }
  EXPECT_EQ(errors, 0) << "BPSK 1/2 must shrug off envelope clipping";
}

TEST(OfdmRobustness, SignalFieldFlagsRateMismatch) {
  Rng rng(6);
  std::vector<std::uint8_t> psdu(360);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  const auto capture = frame(psdu, 24, 26.0, 7);
  // Receiver misconfigured for 6 Mbit/s: the SIGNAL decode still
  // reports the true rate, so the caller can detect the mismatch.
  OfdmRxConfig cfg;
  cfg.mbps = 6;
  OfdmReceiver receiver(cfg);
  const auto res = receiver.receive(capture, psdu.size());
  ASSERT_TRUE(res.preamble_found);
  ASSERT_TRUE(res.signal_ok);
  EXPECT_EQ(res.signal.mbps, 24);
  EXPECT_NE(res.signal.mbps, receiver.config().mbps);
}

TEST(OfdmRobustness, BackToBackFramesFirstOneDecoded) {
  Rng rng(8);
  std::vector<std::uint8_t> a(120);
  std::vector<std::uint8_t> b(120);
  for (auto& x : a) x = rng.bit() ? 1 : 0;
  for (auto& x : b) x = rng.bit() ? 1 : 0;
  phy::OfdmTransmitter tx;
  auto cap = tx.build_ppdu(a, 12);
  const auto second = tx.build_ppdu(b, 12);
  cap.insert(cap.end(), 120, CplxF{0, 0});
  cap.insert(cap.end(), second.begin(), second.end());
  std::vector<CplxF> lead(140, CplxF{0, 0});
  cap.insert(cap.begin(), lead.begin(), lead.end());
  cap = phy::awgn(cap, 26.0, rng);

  OfdmRxConfig cfg;
  cfg.mbps = 12;
  OfdmReceiver receiver(cfg);
  const auto res = receiver.receive(cap, a.size());
  ASSERT_TRUE(res.preamble_found);
  ASSERT_EQ(res.psdu.size(), a.size());
  int errors = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    errors += (res.psdu[i] != a[i]) ? 1 : 0;
  }
  EXPECT_EQ(errors, 0) << "detector must lock the first frame";
}

TEST(OfdmRobustness, EmptyInputSafe) {
  OfdmRxConfig cfg;
  OfdmReceiver receiver(cfg);
  EXPECT_NO_THROW({
    const auto res = receiver.receive({}, 100);
    EXPECT_FALSE(res.preamble_found);
  });
  EXPECT_NO_THROW({
    const auto res = receiver.receive_auto({});
    EXPECT_FALSE(res.signal_ok);
  });
}

}  // namespace
}  // namespace rsp::ofdm

// SIGNAL field (PLCP header) encode/decode and self-describing
// reception.
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/ofdm/golden.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/ofdm_tx.hpp"

namespace rsp::ofdm {
namespace {

TEST(SignalField, BitsRoundTripAllRates) {
  for (const auto& mode : phy::all_rate_modes()) {
    phy::SignalField f;
    f.mbps = mode.mbps;
    f.length_bits = 1234;
    const auto bits = phy::signal_field_bits(f);
    ASSERT_EQ(bits.size(), 24u);
    for (int i = 18; i < 24; ++i) {
      EXPECT_EQ(bits[static_cast<std::size_t>(i)], 0) << "tail must be zero";
    }
    phy::SignalField parsed;
    ASSERT_TRUE(phy::parse_signal_field(bits, parsed));
    EXPECT_EQ(parsed.mbps, f.mbps);
    EXPECT_EQ(parsed.length_bits, f.length_bits);
  }
}

TEST(SignalField, ParityDetectsCorruption) {
  phy::SignalField f;
  f.mbps = 24;
  f.length_bits = 777;
  auto bits = phy::signal_field_bits(f);
  phy::SignalField parsed;
  for (int i = 0; i < 18; ++i) {
    auto corrupted = bits;
    corrupted[static_cast<std::size_t>(i)] ^= 1;
    EXPECT_FALSE(phy::parse_signal_field(corrupted, parsed) &&
                 parsed.mbps == f.mbps && parsed.length_bits == f.length_bits)
        << "single-bit corruption at " << i << " must not parse cleanly";
  }
}

TEST(SignalField, RejectsBadInputs) {
  phy::SignalField f;
  f.mbps = 11;
  EXPECT_THROW((void)phy::signal_field_bits(f), std::invalid_argument);
  f.mbps = 6;
  f.length_bits = 4096;
  EXPECT_THROW((void)phy::signal_field_bits(f), std::invalid_argument);
  phy::SignalField out;
  EXPECT_FALSE(phy::parse_signal_field({1, 0, 1}, out)) << "too short";
}

TEST(SignalField, SymbolIsBpsk48) {
  phy::SignalField f;
  f.mbps = 54;
  f.length_bits = 2000;
  const auto pts = phy::signal_symbol_points(f);
  ASSERT_EQ(pts.size(), 48u);
  for (const auto& p : pts) {
    EXPECT_NEAR(std::abs(std::abs(p.real()) - 1.0), 0.0, 1e-9);
    EXPECT_EQ(p.imag(), 0.0);
  }
}

TEST(SignalField, PilotPolarityIsP0) {
  // SIGNAL uses p_0 = +1 (scrambler first output bit is 0).
  EXPECT_EQ(phy::signal_pilot_polarity(), 1);
}

class ReceiveAuto : public ::testing::TestWithParam<int> {};

TEST_P(ReceiveAuto, DetectsRateAndLength) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int mbps = GetParam();
  std::vector<std::uint8_t> psdu(360);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  phy::OfdmTransmitter tx;
  auto capture = tx.build_ppdu(psdu, mbps);
  std::vector<CplxF> lead(170, CplxF{0, 0});
  capture.insert(capture.begin(), lead.begin(), lead.end());
  capture = phy::awgn(capture, 26.0, rng);

  // The receiver is configured for the WRONG rate; receive_auto must
  // discover the true one from the SIGNAL field.
  OfdmRxConfig cfg;
  cfg.mbps = (mbps == 6) ? 54 : 6;
  OfdmReceiver receiver(cfg);
  const auto res = receiver.receive_auto(capture);
  ASSERT_TRUE(res.preamble_found);
  ASSERT_TRUE(res.signal_ok);
  EXPECT_EQ(res.signal.mbps, mbps);
  EXPECT_EQ(res.signal.length_bits, psdu.size());
  ASSERT_EQ(res.psdu.size(), psdu.size());
  int errors = 0;
  for (std::size_t i = 0; i < psdu.size(); ++i) {
    errors += (res.psdu[i] != psdu[i]) ? 1 : 0;
  }
  EXPECT_EQ(errors, 0);
}

INSTANTIATE_TEST_SUITE_P(AllRates, ReceiveAuto,
                         ::testing::Values(6, 9, 12, 18, 24, 36, 48, 54));

TEST(ReceiveAuto, SurvivesMultipath) {
  Rng rng(77);
  std::vector<std::uint8_t> psdu(504);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  phy::OfdmTransmitter tx;
  auto capture = tx.build_ppdu(psdu, 36);
  std::vector<CplxF> lead(140, CplxF{0, 0});
  capture.insert(capture.begin(), lead.begin(), lead.end());
  phy::MultipathChannel ch({{0, {0.9, 0.0}, 0.0}, {6, {0.2, 0.3}, 0.0}},
                           20.0e6);
  const auto rx = ch.run(capture, 25.0, rng);
  OfdmRxConfig cfg;
  OfdmReceiver receiver(cfg);
  const auto res = receiver.receive_auto(rx);
  ASSERT_TRUE(res.signal_ok);
  EXPECT_EQ(res.signal.mbps, 36);
  ASSERT_EQ(res.psdu.size(), psdu.size());
  int errors = 0;
  for (std::size_t i = 0; i < psdu.size(); ++i) {
    errors += (res.psdu[i] != psdu[i]) ? 1 : 0;
  }
  EXPECT_EQ(errors, 0);
}

TEST(ReceiveAuto, NoSignalOnNoise) {
  Rng rng(5);
  std::vector<CplxF> noise(3000, CplxF{0, 0});
  noise = phy::awgn(noise, 0.0, rng);
  OfdmRxConfig cfg;
  OfdmReceiver receiver(cfg);
  const auto res = receiver.receive_auto(noise);
  EXPECT_FALSE(res.signal_ok);
  EXPECT_TRUE(res.psdu.empty());
}

}  // namespace
}  // namespace rsp::ofdm

// End-to-end: OFDM frames decoded with the FFT64 running on the
// simulated array (the paper's actual datapath), not just the golden
// model.
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/ofdm/golden.hpp"
#include "src/ofdm/maps.hpp"
#include "src/phy/channel.hpp"

namespace rsp::ofdm {
namespace {

TEST(OfdmE2E, ArrayFftSymbolEqualsGoldenInReceiverContext) {
  // Take a real transmitted DATA symbol, run it through both the
  // golden fixed FFT and the array-mapped FFT; bins must be identical.
  Rng rng(1);
  std::vector<std::uint8_t> psdu(100);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  phy::OfdmTransmitter tx;
  const auto ppdu = tx.build_ppdu(psdu, 12);
  // First DATA symbol body: preambles (320) + SIGNAL (80) + 16 CP.
  std::array<CplxI, 64> body{};
  for (int i = 0; i < 64; ++i) {
    const CplxF s = ppdu[static_cast<std::size_t>(400 + 16 + i)];
    body[static_cast<std::size_t>(i)] = {
        saturate(static_cast<std::int64_t>(std::lround(s.real() * 511.0)), 10),
        saturate(static_cast<std::int64_t>(std::lround(s.imag() * 511.0)), 10)};
  }
  xpp::ConfigurationManager mgr;
  const auto mapped = maps::run_fft64(mgr, body);
  const auto golden = phy::fft64_fixed(body);
  for (int k = 0; k < 64; ++k) {
    ASSERT_EQ(mapped[static_cast<std::size_t>(k)],
              golden[static_cast<std::size_t>(k)])
        << "bin " << k;
  }
}

TEST(OfdmE2E, FrameDecodableFromArrayFftBins) {
  // Decode one whole frame where every DATA symbol's FFT runs on the
  // array; compare the recovered constellation decisions with the
  // golden receiver path.
  Rng rng(2);
  std::vector<std::uint8_t> psdu(72);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  phy::OfdmTransmitter tx;
  auto capture = tx.build_ppdu(psdu, 6);
  std::vector<CplxF> lead(120, CplxF{0, 0});
  capture.insert(capture.begin(), lead.begin(), lead.end());
  capture = phy::awgn(capture, 26.0, rng);

  OfdmRxConfig cfg;
  cfg.mbps = 6;
  cfg.use_fixed_fft = true;
  OfdmReceiver golden_rx(cfg);
  const auto golden_res = golden_rx.receive(capture, psdu.size());
  ASSERT_TRUE(golden_res.preamble_found);

  // Reconstruct the same symbols via the array: transform each body on
  // the simulated array and check equality against the golden fixed
  // transform the receiver used internally.
  xpp::ConfigurationManager mgr;
  std::size_t pos = golden_res.frame_start + 2 * 64 + 80;  // skip SIGNAL
  const int nsym = phy::OfdmTransmitter::num_data_symbols(psdu.size(), 6);
  for (int s = 0; s < nsym; ++s) {
    std::array<CplxI, 64> body{};
    for (int i = 0; i < 64; ++i) {
      const CplxF v = capture[pos + 16 + static_cast<std::size_t>(i)];
      body[static_cast<std::size_t>(i)] = {
          saturate(static_cast<std::int64_t>(std::lround(v.real() * 511.0)),
                   10),
          saturate(static_cast<std::int64_t>(std::lround(v.imag() * 511.0)),
                   10)};
    }
    const auto mapped = maps::run_fft64(mgr, body);
    const auto ref = phy::fft64_fixed(body);
    for (int k = 0; k < 64; ++k) {
      ASSERT_EQ(mapped[static_cast<std::size_t>(k)],
                ref[static_cast<std::size_t>(k)])
          << "symbol " << s << " bin " << k;
    }
    pos += 80;
  }
  // And the golden fixed-FFT receiver decoded the PSDU correctly.
  ASSERT_EQ(golden_res.psdu.size(), psdu.size());
  int errors = 0;
  for (std::size_t i = 0; i < psdu.size(); ++i) {
    errors += (golden_res.psdu[i] != psdu[i]) ? 1 : 0;
  }
  EXPECT_EQ(errors, 0);
}

TEST(OfdmE2E, MappedPreambleMetricFindsRealFrame) {
  // The Figure 10 config-2a correlator on the array must flag the
  // short preamble of a real PPDU.
  Rng rng(3);
  phy::OfdmTransmitter tx;
  const auto ppdu = tx.build_ppdu(std::vector<std::uint8_t>(48, 1), 6);
  // Quantize the first 160 samples (short preamble) and 160 samples of
  // DATA (not periodic) for contrast.
  const auto q = [](const std::vector<CplxF>& x, std::size_t from,
                    std::size_t n) {
    std::vector<CplxI> out;
    for (std::size_t i = from; i < from + n; ++i) {
      out.push_back({static_cast<std::int32_t>(std::lround(x[i].real() * 400)),
                     static_cast<std::int32_t>(std::lround(x[i].imag() * 400))});
    }
    return out;
  };
  xpp::ConfigurationManager mgr;
  const auto sp = maps::run_preamble(mgr, q(ppdu, 0, 160));
  const auto data = maps::run_preamble(mgr, q(ppdu, 400, 160));
  double sp_ratio = 0.0;
  double data_ratio = 0.0;
  for (std::size_t i = 2; i < sp.corr.size(); ++i) {
    sp_ratio += std::sqrt(static_cast<double>(sp.corr[i].norm2())) /
                (std::abs(sp.power[i]) + 1.0);
    data_ratio += std::sqrt(static_cast<double>(data.corr[i].norm2())) /
                  (std::abs(data.power[i]) + 1.0);
  }
  EXPECT_GT(sp_ratio, 2.0 * data_ratio);
}

}  // namespace
}  // namespace rsp::ofdm

#include "src/ofdm/golden.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/phy/channel.hpp"

namespace rsp::ofdm {
namespace {

TEST(OfdmGolden, Downsample2TakesEvenSamples) {
  const std::vector<CplxF> x = {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}};
  const auto y = downsample2(x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_EQ(y[0].real(), 0.0);
  EXPECT_EQ(y[1].real(), 2.0);
  EXPECT_EQ(y[2].real(), 4.0);
}

TEST(OfdmGolden, PreambleDetectorFindsFrame) {
  Rng rng(1);
  phy::OfdmTransmitter tx;
  std::vector<std::uint8_t> psdu(100);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  auto ppdu = tx.build_ppdu(psdu, 6);
  // Prepend noise-only lead-in.
  std::vector<CplxF> capture(300, CplxF{0, 0});
  capture.insert(capture.end(), ppdu.begin(), ppdu.end());
  capture = phy::awgn(capture, 15.0, rng);

  PreambleDetector det;
  const auto start = det.detect(capture);
  ASSERT_TRUE(start.has_value());
  // True long-preamble start: 300 (lead-in) + 160 (short preamble).
  EXPECT_NEAR(static_cast<double>(*start), 460.0, 24.0);
}

TEST(OfdmGolden, PreambleDetectorIgnoresNoise) {
  Rng rng(2);
  std::vector<CplxF> noise(2000, CplxF{0, 0});
  noise = phy::awgn(noise, 0.0, rng);
  PreambleDetector det;
  EXPECT_FALSE(det.detect(noise).has_value());
}

TEST(OfdmGolden, FineSyncLocksExactly) {
  Rng rng(3);
  phy::OfdmTransmitter tx;
  std::vector<std::uint8_t> psdu(50);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  const auto ppdu = tx.build_ppdu(psdu, 12);
  std::vector<CplxF> capture(137, CplxF{0, 0});
  capture.insert(capture.end(), ppdu.begin(), ppdu.end());
  capture = phy::awgn(capture, 25.0, rng);
  // Coarse estimate off by a few samples.
  const std::size_t lt = fine_sync(capture, 137 + 160 - 5);
  EXPECT_EQ(lt, 137u + 160u + 32u) << "first long-training body sample";
}

TEST(OfdmGolden, ChannelEstimateFlatChannel) {
  Rng rng(4);
  phy::OfdmTransmitter tx;
  const auto ppdu = tx.build_ppdu(std::vector<std::uint8_t>(24, 1), 6);
  const auto capture = phy::awgn(ppdu, 30.0, rng);
  const auto h = estimate_channel_lt(capture, 160 + 32);
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    const int bin = (k + 64) % 64;
    EXPECT_NEAR(std::abs(h[static_cast<std::size_t>(bin)]), 1.0, 0.15)
        << "carrier " << k;
  }
}

class OfdmRates : public ::testing::TestWithParam<int> {};

TEST_P(OfdmRates, CleanDecodeAllRates) {
  Rng rng(5);
  const int mbps = GetParam();
  std::vector<std::uint8_t> psdu(400);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  phy::OfdmTransmitter tx;
  auto capture = tx.build_ppdu(psdu, mbps);
  std::vector<CplxF> lead(200, CplxF{0, 0});
  capture.insert(capture.begin(), lead.begin(), lead.end());
  capture = phy::awgn(capture, 30.0, rng);

  OfdmRxConfig cfg;
  cfg.mbps = mbps;
  OfdmReceiver receiver(cfg);
  const auto res = receiver.receive(capture, psdu.size());
  ASSERT_TRUE(res.preamble_found);
  ASSERT_EQ(res.psdu.size(), psdu.size());
  int errors = 0;
  for (std::size_t i = 0; i < psdu.size(); ++i) {
    errors += (res.psdu[i] != psdu[i]) ? 1 : 0;
  }
  EXPECT_EQ(errors, 0) << mbps << " Mbit/s";
}

INSTANTIATE_TEST_SUITE_P(AllRates, OfdmRates,
                         ::testing::Values(6, 9, 12, 18, 24, 36, 48, 54));

TEST(OfdmGolden, FixedFftPathDecodesRobustRates) {
  // The bit-true FFT64 datapath (4-bit result precision) must still
  // carry the robust modes.
  Rng rng(6);
  std::vector<std::uint8_t> psdu(200);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  phy::OfdmTransmitter tx;
  auto capture = tx.build_ppdu(psdu, 12);
  std::vector<CplxF> lead(150, CplxF{0, 0});
  capture.insert(capture.begin(), lead.begin(), lead.end());
  capture = phy::awgn(capture, 28.0, rng);

  OfdmRxConfig cfg;
  cfg.mbps = 12;
  cfg.use_fixed_fft = true;
  OfdmReceiver receiver(cfg);
  const auto res = receiver.receive(capture, psdu.size());
  ASSERT_TRUE(res.preamble_found);
  ASSERT_EQ(res.psdu.size(), psdu.size());
  int errors = 0;
  for (std::size_t i = 0; i < psdu.size(); ++i) {
    errors += (res.psdu[i] != psdu[i]) ? 1 : 0;
  }
  EXPECT_EQ(errors, 0);
}

TEST(OfdmGolden, DecodesThroughMultipath) {
  Rng rng(7);
  std::vector<std::uint8_t> psdu(300);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  phy::OfdmTransmitter tx;
  auto ppdu = tx.build_ppdu(psdu, 12);
  std::vector<CplxF> capture(180, CplxF{0, 0});
  capture.insert(capture.end(), ppdu.begin(), ppdu.end());
  // Two-tap channel within the cyclic prefix.
  phy::MultipathChannel ch({{0, {0.9, 0.0}, 0.0}, {4, {0.25, 0.3}, 0.0}},
                           20.0e6);
  const auto rx = ch.run(capture, 24.0, rng);

  OfdmRxConfig cfg;
  cfg.mbps = 12;
  OfdmReceiver receiver(cfg);
  const auto res = receiver.receive(rx, psdu.size());
  ASSERT_TRUE(res.preamble_found);
  ASSERT_EQ(res.psdu.size(), psdu.size());
  int errors = 0;
  for (std::size_t i = 0; i < psdu.size(); ++i) {
    errors += (res.psdu[i] != psdu[i]) ? 1 : 0;
  }
  EXPECT_EQ(errors, 0) << "equalizer must absorb in-CP multipath";
}

TEST(OfdmGolden, ChargesDspTasks) {
  Rng rng(8);
  std::vector<std::uint8_t> psdu(64);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  phy::OfdmTransmitter tx;
  auto capture = tx.build_ppdu(psdu, 6);
  std::vector<CplxF> lead(100, CplxF{0, 0});
  capture.insert(capture.begin(), lead.begin(), lead.end());
  capture = phy::awgn(capture, 25.0, rng);
  dsp::DspModel dsp;
  OfdmRxConfig cfg;
  cfg.mbps = 6;
  OfdmReceiver receiver(cfg);
  (void)receiver.receive(capture, psdu.size(), &dsp);
  EXPECT_TRUE(dsp.tasks().count("framing_sync"));
  EXPECT_TRUE(dsp.tasks().count("channel_estimation"));
  EXPECT_TRUE(dsp.tasks().count("demodulation"));
}

}  // namespace
}  // namespace rsp::ofdm

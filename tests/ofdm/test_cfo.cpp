// Carrier-frequency-offset estimation and correction ("Framing and
// Sync" in Figure 8 — real front ends always have residual CFO).
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/ofdm/golden.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/ofdm_tx.hpp"

namespace rsp::ofdm {
namespace {

std::vector<CplxF> apply_cfo(const std::vector<CplxF>& x, double cfo_hz) {
  std::vector<CplxF> out(x.size());
  const double w = 2.0 * std::numbers::pi * cfo_hz / phy::kOfdmSampleRateHz;
  for (std::size_t n = 0; n < x.size(); ++n) {
    const double ph = w * static_cast<double>(n);
    out[n] = x[n] * CplxF{std::cos(ph), std::sin(ph)};
  }
  return out;
}

std::vector<CplxF> impaired_frame(const std::vector<std::uint8_t>& psdu,
                                  int mbps, double cfo_hz, double esn0_db,
                                  std::uint64_t seed) {
  Rng rng(seed);
  phy::OfdmTransmitter tx;
  auto capture = tx.build_ppdu(psdu, mbps);
  std::vector<CplxF> lead(160, CplxF{0, 0});
  capture.insert(capture.begin(), lead.begin(), lead.end());
  capture = apply_cfo(capture, cfo_hz);
  return phy::awgn(capture, esn0_db, rng);
}

TEST(Cfo, EstimatorAccurateOnCleanPreamble) {
  phy::OfdmTransmitter tx;
  const auto ppdu = tx.build_ppdu(std::vector<std::uint8_t>(48, 1), 6);
  for (const double cfo : {-200000.0, -40000.0, 0.0, 65000.0, 300000.0}) {
    const auto rx = apply_cfo(ppdu, cfo);
    // Short preamble occupies [0, 160); estimate over its middle.
    const double est = estimate_cfo(rx, 16, 96);
    EXPECT_NEAR(est, cfo, 2000.0) << "cfo " << cfo;
  }
}

TEST(Cfo, CorrectCfoInvertsApplyCfo) {
  Rng rng(1);
  std::vector<CplxF> x(256);
  for (auto& v : x) v = rng.cgaussian(1.0);
  const double cfo = 123456.0;
  const auto back =
      correct_cfo(apply_cfo(x, cfo), cfo, phy::kOfdmSampleRateHz);
  for (std::size_t n = 0; n < x.size(); ++n) {
    EXPECT_NEAR(std::abs(back[n] - x[n]), 0.0, 1e-9);
  }
}

class CfoDecode : public ::testing::TestWithParam<double> {};

TEST_P(CfoDecode, FrameDecodesUnderOffset) {
  const double cfo = GetParam();
  Rng rng(3);
  std::vector<std::uint8_t> psdu(360);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  const auto rx = impaired_frame(psdu, 12, cfo, 26.0, 4);
  OfdmRxConfig cfg;
  cfg.mbps = 12;
  OfdmReceiver receiver(cfg);
  const auto res = receiver.receive(rx, psdu.size());
  ASSERT_TRUE(res.preamble_found);
  EXPECT_NEAR(res.cfo_hz, cfo, 3000.0);
  ASSERT_EQ(res.psdu.size(), psdu.size());
  int errors = 0;
  for (std::size_t i = 0; i < psdu.size(); ++i) {
    errors += (res.psdu[i] != psdu[i]) ? 1 : 0;
  }
  EXPECT_EQ(errors, 0) << "cfo " << cfo << " Hz";
}

INSTANTIATE_TEST_SUITE_P(Offsets, CfoDecode,
                         ::testing::Values(-250000.0, -60000.0, 80000.0,
                                           200000.0));

TEST(Cfo, UncorrectedOffsetBreaksTheLink) {
  // Sanity: with correction disabled, a 100 kHz offset (2.5 carrier
  // spacings over a frame) destroys the decode.
  Rng rng(5);
  std::vector<std::uint8_t> psdu(360);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  const auto rx = impaired_frame(psdu, 12, 100000.0, 26.0, 6);
  OfdmRxConfig cfg;
  cfg.mbps = 12;
  cfg.correct_cfo = false;
  OfdmReceiver receiver(cfg);
  const auto res = receiver.receive(rx, psdu.size());
  int errors = 0;
  for (std::size_t i = 0; i < res.psdu.size() && i < psdu.size(); ++i) {
    errors += (res.psdu[i] != psdu[i]) ? 1 : 0;
  }
  EXPECT_GT(errors + (res.psdu.empty() ? 1 : 0),
            static_cast<int>(psdu.size() / 10))
      << "CFO must actually hurt when uncorrected";
}

}  // namespace
}  // namespace rsp::ofdm

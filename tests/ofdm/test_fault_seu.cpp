// SEU on the OFDM FFT kernel: corrupting one stored word of the data
// RAM mid-frame must (a) change the frame, (b) be caught by the frame
// CRC, and (c) disappear on a clean re-run — the recovery story behind
// the paper's always-on terminal.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/dedhw/crc.hpp"
#include "src/ofdm/maps.hpp"
#include "src/xpp/fault.hpp"
#include "src/xpp/manager.hpp"

namespace rsp::ofdm {
namespace {

using xpp::ConfigId;
using xpp::ConfigurationManager;
using xpp::Fault;
using xpp::FaultInjector;
using xpp::FaultKind;
using xpp::FaultPlan;
using xpp::Word;

/// Drive one FFT64 stage pass (the run_fft64 inner loop), optionally
/// striking between the RAM-A load phase and the butterfly phase.
std::vector<Word> drive_stage(ConfigurationManager& mgr, int stage,
                              const std::vector<Word>& data,
                              FaultInjector* inj) {
  const ConfigId id = mgr.load(maps::fft64_stage_config(stage));
  mgr.input(id, "data").feed(data);
  (void)mgr.sim().run_until_quiescent(100000);  // samples land in RAM A
  if (inj != nullptr) mgr.sim().install_faults(inj);

  const std::vector<Word> ones(phy::kFftSize, 1);
  mgr.input(id, "go").feed(ones);
  (void)mgr.sim().run_until_quiescent(100000);  // butterfly pass
  mgr.input(id, "go2").feed(ones);
  (void)mgr.sim().run_until_quiescent(100000);  // output drain
  std::vector<Word> out = mgr.output(id, "out").take();
  EXPECT_EQ(out.size(), static_cast<std::size_t>(phy::kFftSize));
  mgr.sim().install_faults(nullptr);
  mgr.release(id);
  return out;
}

/// 24-bit words -> MSB-first bit stream (frame serialization for CRC).
std::vector<std::uint8_t> to_bits(const std::vector<Word>& words) {
  std::vector<std::uint8_t> bits;
  bits.reserve(words.size() * 24);
  for (const Word w : words) {
    for (int i = 23; i >= 0; --i) {
      bits.push_back(static_cast<std::uint8_t>((w >> i) & 1));
    }
  }
  return bits;
}

TEST(FaultSeu, RamUpsetFlagsFrameCrcAndRerunRecovers) {
  Rng rng(123);
  std::vector<Word> frame(phy::kFftSize);
  for (auto& w : frame) {
    w = pack_cplx({static_cast<int>(rng.below(2000)) - 1000,
                   static_cast<int>(rng.below(2000)) - 1000});
  }

  // Clean stage-0 pass and its CRC-protected serialization.
  ConfigurationManager clean_mgr;
  const auto clean = drive_stage(clean_mgr, 0, frame, nullptr);
  ASSERT_EQ(clean.size(), static_cast<std::size_t>(phy::kFftSize));
  auto protected_bits = to_bits(clean);
  dedhw::kCrc16Umts.append(protected_bits);
  ASSERT_TRUE(dedhw::kCrc16Umts.check(protected_bits));

  // Same pass, but one word of the data RAM takes an upset (one bit in
  // each packed 12-bit lane) after the frame is loaded.
  ConfigurationManager hit_mgr;
  FaultPlan plan;
  Fault seu;
  seu.kind = FaultKind::kRamCorrupt;
  seu.cycle = 0;  // <= any cycle: strikes at the first armed boundary
  seu.object = "ram_a";
  seu.addr = 7;
  seu.mask = (Word{1} << 8) | (Word{1} << 20);
  plan.faults.push_back(seu);
  FaultInjector inj(std::move(plan));
  const auto corrupted = drive_stage(hit_mgr, 0, frame, &inj);

  ASSERT_EQ(inj.log().size(), 1u);
  EXPECT_TRUE(inj.log()[0].hit) << "the upset must land in ram_a";
  EXPECT_NE(corrupted, clean) << "an upset data word must change the frame";

  // Receiver-side integrity check: the corrupted frame fails the CRC
  // that was computed over the clean frame.
  auto corrupted_with_clean_crc = to_bits(corrupted);
  corrupted_with_clean_crc.insert(corrupted_with_clean_crc.end(),
                                  protected_bits.end() - 16,
                                  protected_bits.end());
  EXPECT_FALSE(dedhw::kCrc16Umts.check(corrupted_with_clean_crc))
      << "CRC must flag the upset frame";

  // Transient, not permanent: re-running the released configuration on
  // the same input reproduces the clean frame exactly.
  const auto rerun = drive_stage(hit_mgr, 0, frame, nullptr);
  EXPECT_EQ(rerun, clean);
  auto rerun_bits = to_bits(rerun);
  dedhw::kCrc16Umts.append(rerun_bits);
  EXPECT_TRUE(dedhw::kCrc16Umts.check(rerun_bits));
}

TEST(FaultSeu, FullTransformStillMatchesGoldenAfterRecovery) {
  // End-to-end recovery: after a faulted pass, the same manager runs
  // the complete 3-stage transform and still matches phy::fft64_fixed.
  Rng rng(7);
  std::array<CplxI, phy::kFftSize> in;
  for (auto& c : in) {
    c = {static_cast<int>(rng.below(2000)) - 1000,
         static_cast<int>(rng.below(2000)) - 1000};
  }
  std::vector<Word> packed;
  packed.reserve(in.size());
  for (const auto& z : in) packed.push_back(pack_cplx(z));

  ConfigurationManager mgr;
  FaultPlan plan;
  Fault seu;
  seu.kind = FaultKind::kRamCorrupt;
  seu.cycle = 0;
  seu.object = "ram_a";
  seu.addr = 31;
  seu.mask = Word{1} << 4;
  plan.faults.push_back(seu);
  FaultInjector inj(std::move(plan));
  (void)drive_stage(mgr, 0, packed, &inj);  // faulted pass, discarded

  const auto out = maps::run_fft64(mgr, in);
  const auto golden = phy::fft64_fixed(in);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], golden[i]) << "bin " << i;
  }
}

}  // namespace
}  // namespace rsp::ofdm

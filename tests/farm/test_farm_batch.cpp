// Differential determinism for the batched task kind: run_batched at
// ANY (thread count, lane width) must be bit-identical per task to the
// scalar run() and to a longhand loop over the same task seeds — group
// membership is a pure function of the task index and lanes share no
// data, so lockstep replay is an execution-order transform only.
//
// This is the property src/farm/farm.hpp promises for BatchedTrial:
// running a quantum in slices composes, so a batched trial's
// trajectory equals running it alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/rng.hpp"
#include "src/farm/farm.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/batch.hpp"
#include "src/xpp/builder.hpp"
#include "src/xpp/manager.hpp"

namespace rsp::farm {
namespace {

using xpp::ConfigId;
using xpp::ConfigurationManager;
using xpp::SchedulerKind;
using xpp::Word;

constexpr std::size_t kChips = 768;  // 48 SF-16 symbols per trial

/// One despreader terminal: SF-16 finger fed a random chip stream
/// drawn entirely from the task seed.  Both the scalar kernel and the
/// batched trial below drive exactly this boundary script (feed half,
/// run half; feed rest, run to drain), so their trajectories must
/// agree word for word.
struct Terminal {
  ConfigurationManager mgr{{}, SchedulerKind::kCompiled};
  ConfigId id = xpp::kNoConfig;
  std::vector<Word> packed;

  explicit Terminal(std::uint64_t seed) {
    id = mgr.load(rake::maps::despreader_config(16, 1));
    Rng rng(seed);
    std::vector<CplxI> chips(kChips);
    for (auto& c : chips) {
      c = {static_cast<int>(rng.below(2000)) - 1000,
           static_cast<int>(rng.below(2000)) - 1000};
    }
    packed = rake::maps::pack_stream(chips);
  }

  void feed(std::size_t begin, std::size_t end) {
    mgr.input(id, "data").feed({packed.begin() + static_cast<std::ptrdiff_t>(
                                    begin),
                                packed.begin() + static_cast<std::ptrdiff_t>(
                                    end)});
  }

  /// Folds the symbol stream into trial counts so any divergence in
  /// any output word flips the recorded result.
  [[nodiscard]] TrialResult result() {
    TrialResult r;
    for (const Word w : mgr.output(id, "out").take()) {
      r.bits += 2;
      r.bit_errors += static_cast<std::uint64_t>(w & 3);
      r.frames += 1;
      r.frame_errors += (w < 0) ? 1 : 0;
    }
    return r;
  }
};

TrialResult scalar_kernel(std::uint64_t task_seed, std::size_t) {
  Terminal t(task_seed);
  t.feed(0, kChips / 2);
  t.mgr.sim().run(kChips / 2);
  t.feed(kChips / 2, kChips);
  t.mgr.sim().run(kChips / 2 + 256);
  return t.result();
}

class DespreaderBatchedTrial : public BatchedTrial {
 public:
  explicit DespreaderBatchedTrial(std::uint64_t seed) : t_(seed) {}

  xpp::Simulator& sim() override { return t_.mgr.sim(); }

  long long next_cycles() override {
    switch (phase_++) {
      case 0:
        t_.feed(0, kChips / 2);
        return kChips / 2;
      case 1:
        t_.feed(kChips / 2, kChips);
        return kChips / 2 + 256;
      default:
        return 0;
    }
  }

  TrialResult finish() override { return t_.result(); }

 private:
  Terminal t_;
  int phase_ = 0;
};

std::vector<TrialResult> longhand(std::size_t n, std::uint64_t base) {
  std::vector<TrialResult> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = scalar_kernel(Rng::split(base, i), i);
  }
  return out;
}

TEST(FarmBatch, BatchedRunBitIdenticalAcrossThreadsAndWidths) {
  constexpr std::size_t kTasks = 13;  // deliberately not a width multiple
  constexpr std::uint64_t kBase = 2026;
  const auto reference = longhand(kTasks, kBase);
  StreamingAggregate ref_agg;
  for (const auto& r : reference) ref_agg.add(r);

  BatchedTaskSpec spec;
  spec.config_crc = xpp::config_crc32(rake::maps::despreader_config(16, 1));
  xpp::BatchProgramCache cache;
  spec.cache = &cache;

  const BatchedTrialFactory factory = [](std::uint64_t seed, std::size_t) {
    return std::make_unique<DespreaderBatchedTrial>(seed);
  };

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (const int threads : {1, 2, static_cast<int>(hw) + 3}) {
    for (const int width : {1, 4, 8}) {
      FarmOptions opts;
      opts.threads = threads;
      opts.queue_capacity = 3;  // force producer/consumer interleaving
      ScenarioFarm farm(opts);
      spec.width = width;
      const BatchedFarmResult res =
          farm.run_batched(kTasks, kBase, factory, spec);
      EXPECT_EQ(res.result.per_task, reference)
          << "per-task results diverged at threads=" << threads
          << " width=" << width;
      EXPECT_EQ(res.result.agg.total(), ref_agg.total())
          << "aggregate diverged at threads=" << threads
          << " width=" << width;
      if (width >= 4) {
        EXPECT_GT(res.batch.batched_cycles, 0)
            << "lockstep replay never engaged at threads=" << threads
            << " width=" << width;
      }
    }
  }

  // Scalar farm path agrees too (the batched kind is a superset).
  ScenarioFarm farm({.threads = 2, .queue_capacity = 3});
  EXPECT_EQ(farm.run(kTasks, kBase, scalar_kernel).per_task, reference);
}

TEST(FarmBatch, SharedCacheCompilesOnceAcrossGroups) {
  constexpr std::size_t kTasks = 8;
  xpp::BatchProgramCache cache;
  BatchedTaskSpec spec;
  spec.width = 4;  // two lockstep groups sharing one cache
  spec.config_crc = xpp::config_crc32(rake::maps::despreader_config(16, 1));
  spec.cache = &cache;
  ScenarioFarm farm({.threads = 1, .queue_capacity = 3});
  const BatchedFarmResult res = farm.run_batched(
      kTasks, 7,
      [](std::uint64_t seed, std::size_t) {
        return std::make_unique<DespreaderBatchedTrial>(seed);
      },
      spec);
  EXPECT_EQ(res.result.per_task, longhand(kTasks, 7));
  // Identical terminals publish each distinct steady state exactly
  // once across the whole run: the streaming program plus (possibly)
  // the idle state the drain settles into — never once per group.
  EXPECT_GE(cache.stats().inserts, 1);
  EXPECT_LE(cache.stats().inserts, 2)
      << "groups re-published an already-shared canonical program";
  EXPECT_GT(cache.stats().hits, 0) << "later groups never bound the image";
}

}  // namespace
}  // namespace rsp::farm

// Differential determinism: the scenario farm at ANY thread count must
// be bit-identical to a plain serial loop over the same task seeds.
//
// This is the contract that lets Monte-Carlo campaigns quote
// reproducible numbers while scaling across cores: task i's result is a
// pure function of Rng::split(base_seed, i), never of which worker ran
// it, in what order, or how the queue was bounded.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/common/rng.hpp"
#include "src/farm/farm.hpp"
#include "src/farm/kernels.hpp"
#include "src/farm/queue.hpp"

namespace rsp::farm {
namespace {

/// Reference loop written out longhand (not run_serial) so the test
/// would still catch a bug in run_serial itself.
std::vector<TrialResult> longhand(std::size_t n, std::uint64_t base,
                                  const TrialKernel& k) {
  std::vector<TrialResult> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = k(Rng::split(base, i), i);
  return out;
}

void expect_matches_serial(const TrialKernel& kernel, std::size_t n_tasks,
                           std::uint64_t base_seed) {
  const auto reference = longhand(n_tasks, base_seed, kernel);
  StreamingAggregate ref_agg;
  for (const auto& r : reference) ref_agg.add(r);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<int> thread_counts = {1, 2, static_cast<int>(hw) + 3};
  for (const int threads : thread_counts) {
    FarmOptions opts;
    opts.threads = threads;
    opts.queue_capacity = 3;  // force producer/consumer interleaving
    ScenarioFarm farm(opts);
    const FarmResult res = farm.run(n_tasks, base_seed, kernel);
    EXPECT_EQ(res.per_task, reference)
        << "per-task results diverged at " << threads << " threads";
    EXPECT_EQ(res.agg.total(), ref_agg.total())
        << "aggregate diverged at " << threads << " threads";
  }
}

TEST(FarmDeterminism, RakeKernelBitIdenticalAcrossThreadCounts) {
  kernels::RakeTrial kernel;
  kernel.fingers = 3;
  kernel.esn0_db = -2.0;
  kernel.symbols = 48;  // short frames keep the battery fast
  expect_matches_serial(
      [&](std::uint64_t seed, std::size_t) { return kernel(seed); }, 12, 100);
}

TEST(FarmDeterminism, RakeSingleFingerKernelMatches) {
  kernels::RakeTrial kernel;
  kernel.fingers = 1;
  kernel.esn0_db = -6.0;
  kernel.symbols = 48;
  expect_matches_serial(
      [&](std::uint64_t seed, std::size_t) { return kernel(seed); }, 12, 7);
}

TEST(FarmDeterminism, OfdmKernelBitIdenticalAcrossThreadCounts) {
  kernels::WlanTrial kernel;
  kernel.mbps = 12;
  kernel.esn0_db = 12.0;
  kernel.psdu_bits = 200;
  expect_matches_serial(
      [&](std::uint64_t seed, std::size_t) { return kernel(seed); }, 10, 42);
}

TEST(FarmDeterminism, RunSerialMatchesLonghandReference) {
  kernels::WlanTrial kernel;
  kernel.psdu_bits = 120;
  kernel.esn0_db = 8.0;
  const TrialKernel k = [&](std::uint64_t seed, std::size_t) {
    return kernel(seed);
  };
  const auto res = run_serial(8, 3, k);
  EXPECT_EQ(res.per_task, longhand(8, 3, k));
}

TEST(FarmDeterminism, TaskSeedsDependOnlyOnBaseAndIndex) {
  // The farm must pass Rng::split(base, i) to task i — record the seeds
  // each task saw and compare against the defining formula.
  const std::size_t n = 64;
  std::vector<std::uint64_t> seen(n, 0);
  FarmOptions opts;
  opts.threads = 4;
  ScenarioFarm farm(opts);
  (void)farm.run(n, 555, [&](std::uint64_t seed, std::size_t index) {
    seen[index] = seed;  // distinct slot per task
    return TrialResult{};
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(seen[i], Rng::split(555, i)) << "task " << i;
  }
}

TEST(FarmDeterminism, ShareNothingKernelsNeverOverlapPerTaskSlots) {
  // Each task index must be dispatched exactly once, even with a tiny
  // bounded queue and more workers than queue slots.
  const std::size_t n = 200;
  std::vector<std::atomic<int>> runs(n);
  FarmOptions opts;
  opts.threads = 8;
  opts.queue_capacity = 2;
  ScenarioFarm farm(opts);
  const auto res = farm.run(n, 9, [&](std::uint64_t, std::size_t index) {
    runs[index].fetch_add(1, std::memory_order_relaxed);
    TrialResult r;
    r.frames = 1;
    return r;
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
  EXPECT_EQ(res.agg.total().frames, n);
}

TEST(FarmDeterminism, KernelExceptionPropagates) {
  FarmOptions opts;
  opts.threads = 4;
  ScenarioFarm farm(opts);
  EXPECT_THROW(
      (void)farm.run(32, 1,
                     [&](std::uint64_t, std::size_t index) -> TrialResult {
                       if (index == 5) throw std::runtime_error("boom");
                       return {};
                     }),
      FarmError);
}

TEST(FarmDeterminism, LowestFailingIndexReportedAtAnyThreadCount) {
  // Multiple failing tasks: the rethrown FarmError must name the
  // LOWEST failing index no matter how many threads raced, and carry
  // that task's own message.  Failing task 21 is dispatched before 3
  // only under some schedules — the skip rule must never let a
  // later-index failure mask an earlier one.
  for (const int threads : {1, 2, 5, 8}) {
    FarmOptions opts;
    opts.threads = threads;
    opts.queue_capacity = 2;
    ScenarioFarm farm(opts);
    try {
      (void)farm.run(64, 1,
                     [&](std::uint64_t, std::size_t index) -> TrialResult {
                       if (index == 3 || index == 21 || index == 40) {
                         throw std::runtime_error("poison@" +
                                                  std::to_string(index));
                       }
                       return {};
                     });
      FAIL() << "no exception at " << threads << " threads";
    } catch (const FarmError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("task 3 failed"), std::string::npos)
          << what << " (threads=" << threads << ")";
      EXPECT_NE(what.find("poison@3"), std::string::npos) << what;
    }
  }
}

TEST(FarmDeterminism, InvalidOptionsRejectedAtConstruction) {
  FarmOptions negative;
  negative.threads = -1;
  EXPECT_THROW(ScenarioFarm{negative}, std::invalid_argument);
  FarmOptions zero_queue;
  zero_queue.queue_capacity = 0;
  EXPECT_THROW(ScenarioFarm{zero_queue}, std::invalid_argument);
}

TEST(FarmDeterminism, MoreThreadsThanTasksAndZeroTasks) {
  FarmOptions opts;
  opts.threads = 16;
  ScenarioFarm farm(opts);
  const auto res = farm.run(3, 11, [&](std::uint64_t, std::size_t) {
    TrialResult r;
    r.frames = 1;
    return r;
  });
  EXPECT_EQ(res.agg.total().frames, 3u);
  const auto empty = farm.run(0, 11, [&](std::uint64_t, std::size_t) {
    return TrialResult{};
  });
  EXPECT_TRUE(empty.per_task.empty());
  EXPECT_EQ(empty.agg.total().frames, 0u);
}

TEST(FarmDeterminism, ZeroTasksNeverInvokesTheKernel) {
  // Regression: run(0, ...) used to spin up a worker pool for nothing.
  // It must early-return an empty result without ever constructing a
  // task, let alone dispatching one.
  FarmOptions opts;
  opts.threads = 8;
  ScenarioFarm farm(opts);
  std::atomic<int> calls{0};
  const auto res = farm.run(0, 1, [&](std::uint64_t, std::size_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return TrialResult{};
  });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE(res.per_task.empty());
}

TEST(FarmDeterminism, ClosedQueueRefusesPush) {
  // Regression: BoundedQueue::push used to return void and silently
  // drop the index when the queue was closed — a task submitted
  // concurrently with close() vanished without a trace.  push must now
  // report the refusal and enqueue nothing.
  detail::BoundedQueue q(4);
  ASSERT_TRUE(q.push(0));
  q.close();
  EXPECT_FALSE(q.push(1)) << "push into a closed queue must be refused";
  std::size_t idx = 99;
  EXPECT_TRUE(q.pop(idx)) << "the pre-close element must still drain";
  EXPECT_EQ(idx, 0u);
  EXPECT_FALSE(q.pop(idx)) << "the refused element must NOT have landed";
}

TEST(FarmDeterminism, CloseWhileBlockedInPushUnblocksAndRefuses) {
  // The racing variant: a producer blocked on a FULL queue must wake
  // when the queue closes and report the refused push, not enqueue.
  detail::BoundedQueue q(1);
  ASSERT_TRUE(q.push(7));  // queue now full
  std::atomic<bool> pushed{true};
  std::thread producer([&] { pushed.store(q.push(8)); });
  // Give the producer time to block in push(), then close underneath.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
  EXPECT_FALSE(pushed.load());
  std::size_t idx = 0;
  EXPECT_TRUE(q.pop(idx));
  EXPECT_EQ(idx, 7u);
  EXPECT_FALSE(q.pop(idx));
}

}  // namespace
}  // namespace rsp::farm

// Battery for the crash-resilient campaign driver (run_resilient):
// deterministic quarantine at any thread count, bounded same-seed
// retry, watchdog deadlines, and checkpoint/resume to a bit-identical
// aggregate.  Runs under the farm label, so it must be TSan-clean.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/common/rng.hpp"
#include "src/farm/resilient.hpp"
#include "src/xpp/snapshot.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/fault.hpp"
#include "src/xpp/manager.hpp"

namespace rsp::farm {
namespace {

/// Pure kernel: one frame, counts derived from the seed alone.
TrialResult pure_trial(std::uint64_t seed) {
  Rng rng(seed);
  TrialResult r;
  r.bits = 100;
  r.bit_errors = rng.below(5);
  r.frames = 1;
  r.frame_errors = r.bit_errors > 3 ? 1 : 0;
  return r;
}

TEST(Resilient, OptionValidation) {
  const TrialKernel ok = [](std::uint64_t s, std::size_t) {
    return pure_trial(s);
  };
  ResilientOptions bad_attempts;
  bad_attempts.max_attempts = 0;
  EXPECT_THROW((void)run_resilient(4, 1, ok, bad_attempts),
               std::invalid_argument);

  ResilientOptions bad_deadline;
  bad_deadline.deadline_seconds = -1.0;
  EXPECT_THROW((void)run_resilient(4, 1, ok, bad_deadline),
               std::invalid_argument);

  ResilientOptions resume_no_path;
  resume_no_path.resume = true;
  EXPECT_THROW((void)run_resilient(4, 1, ok, resume_no_path),
               std::invalid_argument);

  ResilientOptions bad_farm;
  bad_farm.farm.queue_capacity = 0;
  EXPECT_THROW((void)run_resilient(4, 1, ok, bad_farm),
               std::invalid_argument);
}

TEST(Resilient, QuarantineIsDeterministicAcrossThreadCounts) {
  // Poisoned indices throw every attempt; the campaign must complete,
  // quarantine exactly those indices, and exclude them from the
  // aggregate — identically at every thread count.
  const std::vector<std::size_t> poison = {2, 9, 10, 17};
  const TrialKernel kernel = [&](std::uint64_t seed,
                                 std::size_t index) -> TrialResult {
    for (const std::size_t p : poison) {
      if (index == p) throw std::runtime_error("poisoned seed");
    }
    return pure_trial(seed);
  };

  TrialResult expected_total;
  for (std::size_t i = 0; i < 24; ++i) {
    bool poisoned = false;
    for (const std::size_t p : poison) poisoned |= (i == p);
    if (!poisoned) expected_total += pure_trial(Rng::split(77, i));
  }

  for (const int threads : {1, 2, 5}) {
    ResilientOptions opts;
    opts.farm.threads = threads;
    opts.farm.queue_capacity = 2;
    opts.max_attempts = 2;
    const ResilientResult res = run_resilient(24, 77, kernel, opts);
    EXPECT_EQ(res.quarantined, poison) << threads << " threads";
    EXPECT_EQ(res.result.agg.total(), expected_total) << threads << " threads";
    EXPECT_EQ(res.completed(), 20u);
    EXPECT_EQ(res.retries, 4)  // one retry per poisoned task
        << threads << " threads";
    for (const std::size_t p : poison) {
      EXPECT_EQ(res.outcomes[p].status, TaskStatus::kFailed);
      EXPECT_EQ(res.outcomes[p].attempts, 2);
      EXPECT_EQ(res.outcomes[p].error, "poisoned seed");
      EXPECT_EQ(res.result.per_task[p], TrialResult{}) << "task " << p;
    }
    EXPECT_FALSE(res.report().empty());
  }
}

TEST(Resilient, RetrySucceedsWithSameSeed) {
  // A transiently flaky task (fails once, then succeeds) must end
  // kRetriedOk with the SAME result a never-failing run produces —
  // the retry re-runs Rng::split(base, i), a pure re-execution.
  const std::size_t n = 12;
  auto first_attempt_failed = std::make_shared<std::vector<std::atomic<int>>>(n);
  const TrialKernel flaky = [first_attempt_failed](
                                std::uint64_t seed,
                                std::size_t index) -> TrialResult {
    if (index % 4 == 1 &&
        (*first_attempt_failed)[index].fetch_add(1) == 0) {
      throw std::runtime_error("transient");
    }
    return pure_trial(seed);
  };

  ResilientOptions opts;
  opts.farm.threads = 3;
  opts.max_attempts = 3;
  const ResilientResult res = run_resilient(n, 5, flaky, opts);

  EXPECT_TRUE(res.quarantined.empty());
  EXPECT_EQ(res.retries, 3);  // indices 1, 5, 9
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(res.result.per_task[i], pure_trial(Rng::split(5, i)))
        << "task " << i;
    EXPECT_EQ(res.outcomes[i].status,
              i % 4 == 1 ? TaskStatus::kRetriedOk : TaskStatus::kOk)
        << "task " << i;
  }
}

TEST(Resilient, DeadlineTimesOutWedgedTask) {
  // Task 3 wedges (sleeps far past the deadline); the watchdog must
  // abandon it, exhaust its attempts, and quarantine it as kTimedOut
  // while every other task completes normally.
  const TrialKernel kernel = [](std::uint64_t seed,
                                std::size_t index) -> TrialResult {
    if (index == 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
    return pure_trial(seed);
  };
  ResilientOptions opts;
  opts.farm.threads = 2;
  opts.max_attempts = 2;
  opts.deadline_seconds = 0.05;
  const ResilientResult res = run_resilient(8, 13, kernel, opts);

  ASSERT_EQ(res.quarantined, std::vector<std::size_t>{3});
  EXPECT_EQ(res.outcomes[3].status, TaskStatus::kTimedOut);
  EXPECT_EQ(res.outcomes[3].attempts, 2);
  EXPECT_NE(res.outcomes[3].error.find("deadline"), std::string::npos);
  for (std::size_t i = 0; i < 8; ++i) {
    if (i == 3) continue;
    EXPECT_EQ(res.outcomes[i].status, TaskStatus::kOk) << "task " << i;
    EXPECT_EQ(res.result.per_task[i], pure_trial(Rng::split(13, i)));
  }
  // Let the detached stragglers drain before the next test begins.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
}

TEST(Resilient, CheckpointResumeIsBitIdentical) {
  // Reference: the campaign in one sitting.  Interrupted: take the
  // final checkpoint, forget half the tasks (as a SIGKILL mid-run
  // would), resume — per-task results, aggregate and quarantine must be
  // bit-identical to the single sitting.  (scripts/check.sh does the
  // real SIGKILL variant end-to-end.)
  const TrialKernel kernel = [](std::uint64_t seed,
                                std::size_t index) -> TrialResult {
    if (index == 7) throw std::runtime_error("poisoned seed");
    return pure_trial(seed);
  };
  const std::string path =
      ::testing::TempDir() + "rsp_resilient_resume_test.ck";

  ResilientOptions opts;
  opts.farm.threads = 3;
  opts.max_attempts = 2;
  opts.checkpoint_path = path;
  opts.checkpoint_every = 4;
  opts.tag = "resume-test";
  const ResilientResult ref = run_resilient(20, 99, kernel, opts);

  CampaignCheckpoint ck = load_campaign_checkpoint(path);
  EXPECT_EQ(ck.n_tasks, 20u);
  for (std::size_t i = 0; i < 20; i += 2) {
    ck.outcomes[i] = TaskOutcome{};  // forget even tasks
    ck.per_task[i] = TrialResult{};
  }
  save_campaign_checkpoint(path, ck);

  ResilientOptions resume = opts;
  resume.resume = true;
  const ResilientResult res = run_resilient(20, 99, kernel, resume);
  EXPECT_EQ(res.resumed_tasks, 10u);
  EXPECT_EQ(res.result.per_task, ref.result.per_task);
  EXPECT_EQ(res.result.agg.total(), ref.result.agg.total());
  EXPECT_EQ(res.quarantined, ref.quarantined);
  EXPECT_EQ(res.outcomes, ref.outcomes);

  // A checkpoint from a different campaign must be refused.
  ResilientOptions wrong = resume;
  wrong.tag = "other-campaign";
  EXPECT_THROW((void)run_resilient(20, 99, kernel, wrong),
               xpp::SnapshotError);
  EXPECT_THROW((void)run_resilient(20, 98, kernel, resume),
               xpp::SnapshotError);
  std::remove(path.c_str());
}

TEST(Resilient, SeuFaultStormDegradesGracefully) {
  // The graceful-degradation scenario: every trial runs the descrambler
  // under a per-seed SEU storm and throws when the storm corrupted its
  // output.  Corruption is a pure function of the task seed, so the
  // quarantined set is identical at every thread count, and the
  // campaign completes with the healthy majority aggregated.
  const auto clean = [] {
    xpp::ConfigurationManager mgr({}, xpp::SchedulerKind::kEventDriven);
    const xpp::ConfigId id = mgr.load(rake::maps::descrambler_config());
    std::vector<xpp::Word> data, code;
    Rng rng(1234);
    for (int i = 0; i < 96; ++i) {
      data.push_back(rng.below(1 << 16));
      code.push_back(rng.below(4));
    }
    mgr.input(id, "data").feed(data);
    mgr.input(id, "code").feed(code);
    auto& out = mgr.output(id, "out");
    for (int guard = 0; guard < 5000 && out.data().size() < 96; ++guard) {
      mgr.sim().step();
    }
    return out.take();
  }();

  const TrialKernel storm = [&](std::uint64_t seed,
                                std::size_t) -> TrialResult {
    xpp::ConfigurationManager mgr({}, xpp::SchedulerKind::kEventDriven);
    xpp::FaultPlan plan;
    plan.seu = {0.004, seed, 0, xpp::kStuckForever};
    xpp::FaultInjector inj(plan);
    mgr.sim().install_faults(&inj);
    const xpp::ConfigId id = mgr.load(rake::maps::descrambler_config());
    std::vector<xpp::Word> data, code;
    Rng rng(1234);
    for (int i = 0; i < 96; ++i) {
      data.push_back(rng.below(1 << 16));
      code.push_back(rng.below(4));
    }
    mgr.input(id, "data").feed(data);
    mgr.input(id, "code").feed(code);
    auto& out = mgr.output(id, "out");
    for (int guard = 0; guard < 5000 && out.data().size() < 96; ++guard) {
      mgr.sim().step();
    }
    const auto got = out.take();
    if (got != clean) {
      throw std::runtime_error("SEU storm corrupted the output stream");
    }
    TrialResult r;
    r.bits = 96;
    r.frames = 1;
    return r;
  };

  ResilientOptions base;
  base.max_attempts = 1;
  base.farm.threads = 1;
  const ResilientResult ref = run_resilient(10, 4242, storm, base);
  // The storm must actually bite somewhere AND spare somewhere, or the
  // scenario is vacuous.
  EXPECT_FALSE(ref.quarantined.empty());
  EXPECT_GT(ref.completed(), 0u);

  for (const int threads : {2, 5}) {
    ResilientOptions opts = base;
    opts.farm.threads = threads;
    const ResilientResult res = run_resilient(10, 4242, storm, opts);
    EXPECT_EQ(res.quarantined, ref.quarantined) << threads << " threads";
    EXPECT_EQ(res.result.agg.total(), ref.result.agg.total());
    EXPECT_EQ(res.outcomes, ref.outcomes);
  }
}

}  // namespace
}  // namespace rsp::farm

#include "src/xpp/ram.hpp"

#include <gtest/gtest.h>

#include "tests/xpp/harness.hpp"

namespace rsp::xpp {
namespace {

TEST(Ram, FifoPreservesOrderAndPreload) {
  ConfigBuilder b("fifo");
  RamParams p;
  p.mode = RamMode::kFifo;
  p.capacity = 8;
  p.preload = {100, 200};
  const auto in = b.input("in");
  const auto ram = b.ram("fifo", std::move(p));
  const auto out = b.output("out");
  b.connect(in.out(0), ram.in(0));
  b.connect(ram.out(0), out.in(0));
  ConfigurationManager mgr;
  const auto r = run_config(mgr, b.build(), {{"in", {1, 2, 3}}}, {{"out", 5}});
  EXPECT_EQ(r.outputs.at("out"), (std::vector<Word>{100, 200, 1, 2, 3}));
}

TEST(Ram, LutAddressedRead) {
  ConfigBuilder b("lut");
  RamParams p;
  p.mode = RamMode::kLut;
  p.capacity = 4;
  p.preload = {10, 20, 30, 40};
  const auto addr = b.input("addr");
  const auto ram = b.ram("lut", std::move(p));
  const auto out = b.output("out");
  b.connect(addr.out(0), ram.in(0));
  b.connect(ram.out(0), out.in(0));
  ConfigurationManager mgr;
  const auto r =
      run_config(mgr, b.build(), {{"addr", {3, 0, 2, 1}}}, {{"out", 4}});
  EXPECT_EQ(r.outputs.at("out"), (std::vector<Word>{40, 10, 30, 20}));
}

TEST(Ram, CircularLutReplays) {
  ConfigBuilder b("clut");
  RamParams p;
  p.mode = RamMode::kCircularLut;
  p.capacity = 3;
  p.preload = {7, 8, 9};
  const auto ram = b.ram("clut", std::move(p));
  const auto out = b.output("out");
  b.connect(ram.out(0), out.in(0));
  ConfigurationManager mgr;
  const auto r = run_config(mgr, b.build(), {}, {{"out", 7}});
  EXPECT_EQ(r.outputs.at("out"), (std::vector<Word>{7, 8, 9, 7, 8, 9, 7}));
}

TEST(Ram, GatedCircularLutPacedByTokens) {
  ConfigBuilder b("gated");
  RamParams p;
  p.mode = RamMode::kCircularLut;
  p.capacity = 2;
  p.preload = {5, 6};
  const auto go = b.input("go");
  const auto ram = b.ram("clut", std::move(p));
  const auto out = b.output("out");
  b.connect(go.out(0), ram.in(0));
  b.connect(ram.out(0), out.in(0));
  ConfigurationManager mgr;
  const ConfigId id = mgr.load(b.build());
  mgr.input(id, "go").feed({1, 1, 1});
  mgr.sim().run_until_quiescent(1000);
  EXPECT_EQ(mgr.output(id, "out").data(), (std::vector<Word>{5, 6, 5}))
      << "exactly one word per gate token";
}

TEST(Ram, DualPortedWriteThenRead) {
  ConfigBuilder b("ram");
  RamParams p;
  p.mode = RamMode::kRam;
  p.capacity = 16;
  const auto waddr = b.input("waddr");
  const auto wdata = b.input("wdata");
  const auto raddr = b.input("raddr");
  const auto ram = b.ram("mem", std::move(p));
  const auto out = b.output("out");
  b.connect(raddr.out(0), ram.in(0));
  b.connect(waddr.out(0), ram.in(1));
  b.connect(wdata.out(0), ram.in(2));
  b.connect(ram.out(0), out.in(0));
  ConfigurationManager mgr;
  const ConfigId id = mgr.load(b.build());
  mgr.input(id, "waddr").feed({3, 5});
  mgr.input(id, "wdata").feed({33, 55});
  mgr.sim().run_until_quiescent(100);
  mgr.input(id, "raddr").feed({5, 3});
  mgr.sim().run_until_quiescent(100);
  EXPECT_EQ(mgr.output(id, "out").data(), (std::vector<Word>{55, 33}));
}

TEST(Ram, ReadAndWritePortsFireSameCycle) {
  // Dual-ported: a read and a write in one cycle must both complete.
  ConfigBuilder b("dual");
  RamParams p;
  p.mode = RamMode::kRam;
  p.capacity = 8;
  p.preload = {1, 2, 3, 4};
  const auto waddr = b.input("waddr");
  const auto wdata = b.input("wdata");
  const auto raddr = b.input("raddr");
  const auto ram = b.ram("mem", std::move(p));
  const auto out = b.output("out");
  b.connect(raddr.out(0), ram.in(0));
  b.connect(waddr.out(0), ram.in(1));
  b.connect(wdata.out(0), ram.in(2));
  b.connect(ram.out(0), out.in(0));
  ConfigurationManager mgr;
  const ConfigId id = mgr.load(b.build());
  mgr.input(id, "raddr").feed({0, 1, 2, 3});
  mgr.input(id, "waddr").feed({4, 5, 6, 7});
  mgr.input(id, "wdata").feed({40, 50, 60, 70});
  const StallReport run = mgr.sim().run_until_quiescent(1000);
  EXPECT_TRUE(run.completed()) << run.to_string();
  EXPECT_EQ(mgr.output(id, "out").data(), (std::vector<Word>{1, 2, 3, 4}));
  EXPECT_LT(run.cycles, 12) << "ports must overlap, not serialize";
}

TEST(Ram, RejectsBadParams) {
  EXPECT_THROW(RamObject("x", {RamMode::kRam, 0, {}}), ConfigError);
  EXPECT_THROW(RamObject("x", {RamMode::kRam, kRamWords + 1, {}}), ConfigError);
  EXPECT_THROW(RamObject("x", {RamMode::kLut, 8, {}}), ConfigError)
      << "LUT requires preload";
  RamParams over;
  over.mode = RamMode::kFifo;
  over.capacity = 2;
  over.preload = {1, 2, 3};
  EXPECT_THROW(RamObject("x", over), ConfigError);
}

}  // namespace
}  // namespace rsp::xpp

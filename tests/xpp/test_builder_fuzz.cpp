// Property/fuzz battery for ConfigBuilder + the CRC round-trip +
// transactional load.
//
// Seeded random configurations — valid pipelines and deliberately
// malformed ones (duplicate names, unbound inputs, out-of-range ports,
// fan-out past the 32-sink net limit, dangling connections, stale
// checksums, resource oversubscription) — must either build & load
// cleanly or throw ConfigError, never crash; and a rejected load must
// leave the ResourceMap, the simulator population and the cycle
// accounting exactly as they were.  >= 1000 seeds, all derived with
// Rng::split so any failing seed replays exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/xpp/builder.hpp"
#include "src/xpp/manager.hpp"

namespace rsp::xpp {
namespace {

constexpr std::uint64_t kFuzzBase = 0xFA2247ull;
constexpr int kSeeds = 1200;

/// Snapshot of everything a failed load could leak (mirrors
/// test_txn_load, which pins the targeted cases; here it guards the
/// random ones).
struct ResourceSnapshot {
  int free_alu = 0;
  int free_ram = 0;
  int free_io = 0;
  int routing = 0;
  int objects = 0;
  long long config_cycles = 0;

  friend bool operator==(const ResourceSnapshot&,
                         const ResourceSnapshot&) = default;
};

ResourceSnapshot snapshot(const ConfigurationManager& mgr) {
  return {mgr.resources().free_alu_cells(), mgr.resources().free_ram_cells(),
          mgr.resources().free_io_channels(), mgr.resources().routing_in_use(),
          mgr.sim().object_count(), mgr.total_config_cycles()};
}

/// The ways a generated configuration can be deliberately broken.
enum class Twist {
  kNone,            // valid pipeline, must build and load
  kDuplicateName,   // two objects share a name -> build throws
  kUnboundInput,    // required ALU input left dangling -> build throws
  kPortOutOfRange,  // connection to port kMaxIn -> build throws
  kOutputAsSource,  // OUTPUT drives a net -> build throws
  kInputAsSink,     // INPUT used as a sink -> build throws
  kFanout33,        // 33 sinks on one net -> load throws mid-build
  kStaleChecksum,   // field mutated after build -> load rejects via CRC
  kDanglingNet,     // connection to an out-of-range object, no checksum
  kOversubscribe,   // more ALUs than the array has cells -> load throws
  kBadRam,          // RAM params out of range -> builder throws in ram()
};

constexpr Twist kAllTwists[] = {
    Twist::kNone,           Twist::kDuplicateName,  Twist::kUnboundInput,
    Twist::kPortOutOfRange, Twist::kOutputAsSource, Twist::kInputAsSink,
    Twist::kFanout33,       Twist::kStaleChecksum,  Twist::kDanglingNet,
    Twist::kOversubscribe,  Twist::kBadRam,
};

/// One-input opcodes for chain stages; two-input ones get port 1 tied.
constexpr Opcode kUnaryOps[] = {Opcode::kNop, Opcode::kNeg, Opcode::kAbs,
                                Opcode::kNot, Opcode::kCConj, Opcode::kCNeg};
constexpr Opcode kBinaryOps[] = {Opcode::kAdd, Opcode::kSub, Opcode::kMul,
                                 Opcode::kAnd, Opcode::kOr,  Opcode::kXor,
                                 Opcode::kMin, Opcode::kMax};

/// Build a random (possibly twisted) configuration.  May throw
/// ConfigError from the builder itself (expected for several twists).
Configuration generate(Rng& rng, Twist twist) {
  ConfigBuilder b("fuzz");
  const int n_in = 1 + static_cast<int>(rng.below(2));
  std::vector<ObjHandle> ins;
  for (int i = 0; i < n_in; ++i) ins.push_back(b.input("in" + std::to_string(i)));

  // A chain of ALU stages hanging off input 0, with random side taps.
  std::vector<ObjHandle> stages;
  PortRef prev = ins[0].out(0);
  const int n_stage = 1 + static_cast<int>(rng.below(6));
  for (int i = 0; i < n_stage; ++i) {
    ObjHandle a;
    const std::string name = "alu" + std::to_string(i);
    if (rng.bit()) {
      a = b.alu(name, kUnaryOps[rng.below(std::size(kUnaryOps))]);
    } else {
      a = b.alu(name, kBinaryOps[rng.below(std::size(kBinaryOps))]);
      if (rng.bit() && ins.size() > 1) {
        b.connect(ins[1].out(0), a.in(1));
      } else {
        b.tie(a, 1, static_cast<Word>(rng.below(4096)));
      }
    }
    b.connect(prev, a.in(0));
    prev = a.out(0);
    stages.push_back(a);
  }
  // Occasionally a counter (shares the ALU-PAE pool) and a LUT RAM.
  if (rng.below(4) == 0) {
    const auto c = b.counter("cnt", {0, 1, 8});
    const auto g = b.alu("gate", Opcode::kGate);
    b.connect(prev, g.in(0));
    b.connect(c.out(1), g.in(1));
    prev = g.out(0);
  }
  if (rng.below(4) == 0) {
    RamParams rp;
    rp.mode = RamMode::kLut;
    rp.capacity = 16;
    rp.preload.assign(16, 1);
    const auto m = b.ram("lut", rp);
    b.connect(prev, m.in(0));
    prev = m.out(0);
  }
  // Extra input channels may stay unconnected — sources have no
  // required ports, so this must remain legal.
  const auto out = b.output("out");
  b.connect(prev, out.in(0));

  switch (twist) {
    case Twist::kNone:
      break;
    case Twist::kDuplicateName:
      b.tie(b.alu("alu0", Opcode::kNop), 0, 1);  // name collides
      break;
    case Twist::kUnboundInput: {
      const auto a = b.alu("unbound", Opcode::kAdd);
      b.connect(a.out(0), b.output("out2").in(0));
      b.tie(a, 1, 3);  // port 0 stays dangling
      break;
    }
    case Twist::kPortOutOfRange: {
      const auto a = b.alu("oob", Opcode::kNop);
      b.tie(a, 0, 0);
      b.connect(stages.back().out(0), PortRef{a.index, kMaxIn});
      break;
    }
    case Twist::kOutputAsSource: {
      const auto a = b.alu("sink2", Opcode::kNop);
      b.connect(out.out(0), a.in(0));
      break;
    }
    case Twist::kInputAsSink:
      b.connect(stages.back().out(0), ins[0].in(0));
      break;
    case Twist::kFanout33: {
      // 33 extra consumers of the first stage's net (plus the chain's
      // own consumer pushes it past kMaxNetSinks at net-build time).
      for (int i = 0; i < 33; ++i) {
        const auto a = b.alu("fan" + std::to_string(i), Opcode::kNop);
        b.connect(stages[0].out(0), a.in(0));
      }
      break;
    }
    case Twist::kStaleChecksum:
    case Twist::kDanglingNet:
      break;  // applied after build, below
    case Twist::kOversubscribe: {
      // 70 self-sufficient NOPs exceed the 64 ALU cells of the 8x8
      // array regardless of what the core pipeline used.
      for (int i = 0; i < 70; ++i) {
        const auto a = b.alu("over" + std::to_string(i), Opcode::kNop);
        b.tie(a, 0, 1);
      }
      break;
    }
    case Twist::kBadRam: {
      RamParams rp;
      rp.mode = rng.bit() ? RamMode::kLut : RamMode::kRam;
      rp.capacity = rng.bit() ? 0 : kRamWords + 1;
      (void)b.ram("bad", rp);  // throws here
      break;
    }
  }

  Configuration cfg = b.build();

  if (twist == Twist::kStaleChecksum) {
    // Silent post-build mutation: CRC re-verification must reject it.
    switch (rng.below(3)) {
      case 0: cfg.objects[1].alu.shift += 1; break;
      case 1: cfg.name += "x"; break;
      default:
        if (!cfg.connections.empty()) cfg.connections[0].dst.port ^= 1;
        break;
    }
  }
  if (twist == Twist::kDanglingNet) {
    // Hand-assembled config (no checksum) whose connection points at an
    // object that does not exist: the manager's own validation must
    // catch it before any resource is claimed.
    cfg.checksum.reset();
    ConnSpec c;
    c.src = {0, 0};
    c.dst = {static_cast<int>(cfg.objects.size()) + 3, 0};
    cfg.connections.push_back(c);
  }
  return cfg;
}

TEST(BuilderFuzz, ThousandSeedsLoadCleanlyOrRollBackExactly) {
  ConfigurationManager mgr;
  // A resident configuration that every malformed load must leave
  // untouched and functional.
  ConfigBuilder rb("resident");
  const auto rin = rb.input("rin");
  const auto rnop = rb.alu("rnop", Opcode::kNop);
  const auto rout = rb.output("rout");
  rb.connect(rin.out(0), rnop.in(0));
  rb.connect(rnop.out(0), rout.in(0));
  const ConfigId resident = mgr.load(rb.build());

  int built = 0;
  int loaded = 0;
  int rejected_build = 0;
  int rejected_load = 0;

  for (int i = 0; i < kSeeds; ++i) {
    Rng rng(Rng::split(kFuzzBase, static_cast<std::uint64_t>(i)));
    const Twist twist = kAllTwists[rng.below(std::size(kAllTwists))];
    SCOPED_TRACE("seed " + std::to_string(i) + " twist " +
                 std::to_string(static_cast<int>(twist)));

    std::optional<Configuration> cfg;
    try {
      cfg = generate(rng, twist);
    } catch (const ConfigError&) {
      ++rejected_build;  // builder-detectable malformation: fine
      continue;
    }
    // Anything that survives build carries a verifiable checksum —
    // except the deliberately hand-mutilated variants.
    ++built;
    if (twist != Twist::kStaleChecksum && twist != Twist::kDanglingNet) {
      ASSERT_TRUE(cfg->checksum.has_value());
      EXPECT_EQ(*cfg->checksum, config_crc32(*cfg));
    }

    const ResourceSnapshot before = snapshot(mgr);
    ConfigId id = kNoConfig;
    try {
      id = mgr.load(*cfg);
    } catch (const ConfigError&) {
      ++rejected_load;
      ASSERT_EQ(snapshot(mgr), before)
          << "rejected load leaked resources or objects";
      continue;
    }
    ++loaded;
    ASSERT_TRUE(mgr.loaded(id));
    mgr.release(id);
    // total_config_cycles is a monotonic "ever spent" counter, so a
    // successful load legitimately advances it; everything else must
    // round-trip exactly.
    ResourceSnapshot after = snapshot(mgr);
    ASSERT_GT(after.config_cycles, before.config_cycles);
    after.config_cycles = before.config_cycles;
    ASSERT_EQ(after, before) << "load/release round trip leaked resources";
  }

  // The resident configuration survived ~1200 fuzz loads and still runs.
  EXPECT_TRUE(mgr.loaded(resident));
  mgr.input(resident, "rin").feed({7, 8, 9});
  const StallReport r = mgr.sim().run_until_quiescent(100);
  EXPECT_TRUE(r.completed()) << r.to_string();
  EXPECT_EQ(mgr.output(resident, "rout").data(), (std::vector<Word>{7, 8, 9}));

  // The generator must actually exercise both halves of the contract.
  EXPECT_GT(built, kSeeds / 4);
  EXPECT_GT(loaded, kSeeds / 16);
  EXPECT_GT(rejected_build, kSeeds / 8);
  EXPECT_GT(rejected_load, kSeeds / 16);
}

TEST(BuilderFuzz, ValidSeedsAreDeterministic) {
  // Same seed -> byte-identical configuration (checksum included):
  // generation itself obeys the farm's replay contract.
  for (int i = 0; i < 50; ++i) {
    Rng r1(Rng::split(kFuzzBase, static_cast<std::uint64_t>(i)));
    Rng r2(Rng::split(kFuzzBase, static_cast<std::uint64_t>(i)));
    Configuration a;
    Configuration b;
    try {
      a = generate(r1, Twist::kNone);
      b = generate(r2, Twist::kNone);
    } catch (const ConfigError&) {
      continue;
    }
    ASSERT_TRUE(a.checksum.has_value());
    EXPECT_EQ(*a.checksum, *b.checksum) << "seed " << i;
  }
}

TEST(BuilderFuzz, RandomSingleBitChecksumCorruptionAlwaysRejected) {
  Rng rng(Rng::split(kFuzzBase, 9999));
  ConfigurationManager mgr;
  const ResourceSnapshot before = snapshot(mgr);
  for (int i = 0; i < 64; ++i) {
    Rng gen(Rng::split(kFuzzBase, static_cast<std::uint64_t>(i)));
    Configuration cfg;
    try {
      cfg = generate(gen, Twist::kNone);
    } catch (const ConfigError&) {
      continue;
    }
    cfg.checksum = *cfg.checksum ^ (1u << rng.below(32));
    EXPECT_THROW((void)mgr.load(cfg), ConfigError) << "seed " << i;
    EXPECT_EQ(snapshot(mgr), before);
  }
}

}  // namespace
}  // namespace rsp::xpp

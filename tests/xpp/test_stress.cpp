// Property/stress tests of the resource-management invariants: random
// load/release sequences must never corrupt the array state, lose
// resources, or let configurations interfere with one another.
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/xpp/builder.hpp"
#include "src/xpp/manager.hpp"

namespace rsp::xpp {
namespace {

/// A small add-K passthrough whose output identifies the config.
Configuration tagged_config(int tag, int n_alus) {
  ConfigBuilder b("cfg" + std::to_string(tag));
  const auto in = b.input("in");
  PortRef prev = in.out(0);
  for (int i = 0; i < n_alus; ++i) {
    const auto a = b.alu("a" + std::to_string(i), Opcode::kAdd);
    b.tie(a, 1, i == 0 ? tag : 0);
    b.connect(prev, a.in(0));
    prev = a.out(0);
  }
  const auto out = b.output("out");
  b.connect(prev, out.in(0));
  return b.build();
}

TEST(Stress, RandomLoadReleaseNeverLeaks) {
  Rng rng(2024);
  ConfigurationManager mgr;
  std::map<ConfigId, int> live;  // id -> alu count
  int expected_alus = 0;
  int loads = 0;
  for (int step = 0; step < 300; ++step) {
    const bool do_load = live.empty() || rng.uniform() < 0.55;
    if (do_load) {
      const int n = 1 + static_cast<int>(rng.below(6));
      try {
        const ConfigId id = mgr.load(tagged_config(step, n));
        live[id] = n;
        expected_alus += n;
        ++loads;
      } catch (const ConfigError&) {
        // Array full: legal outcome; state must be unchanged.
      }
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.below(
                           static_cast<std::uint32_t>(live.size()))));
      expected_alus -= it->second;
      mgr.release(it->first);
      live.erase(it);
    }
    ASSERT_EQ(mgr.resources().used_alu_cells(), expected_alus)
        << "step " << step;
  }
  EXPECT_GT(loads, 50);
  for (const auto& [id, n] : live) {
    (void)n;
    mgr.release(id);
  }
  EXPECT_EQ(mgr.resources().used_alu_cells(), 0);
  EXPECT_EQ(mgr.resources().routing_in_use(), 0);
  EXPECT_EQ(mgr.resources().free_io_channels(), 8);
}

TEST(Stress, ConcurrentConfigsComputeIndependently) {
  // Load several tagged pipelines, stream data through all of them
  // interleaved; each must produce exactly its own tag offset.
  ConfigurationManager mgr;
  std::vector<ConfigId> ids;
  const int kConfigs = 4;  // 4 x 2 I/O channels = the full port budget
  for (int t = 0; t < kConfigs; ++t) {
    ids.push_back(mgr.load(tagged_config(100 * (t + 1), 3)));
  }
  for (int t = 0; t < kConfigs; ++t) {
    std::vector<Word> feed;
    for (int i = 0; i < 50; ++i) feed.push_back(i);
    mgr.input(ids[static_cast<std::size_t>(t)], "in").feed(feed);
  }
  mgr.sim().run_until_quiescent(10000);
  for (int t = 0; t < kConfigs; ++t) {
    const auto& out = mgr.output(ids[static_cast<std::size_t>(t)], "out").data();
    ASSERT_EQ(out.size(), 50u) << "config " << t;
    for (int i = 0; i < 50; ++i) {
      ASSERT_EQ(out[static_cast<std::size_t>(i)], i + 100 * (t + 1))
          << "config " << t << " token " << i;
    }
  }
  for (const auto id : ids) mgr.release(id);
}

TEST(Stress, ReleaseMidStreamPreservesOthers) {
  ConfigurationManager mgr;
  const ConfigId keep = mgr.load(tagged_config(7, 2));
  const ConfigId kill = mgr.load(tagged_config(9, 2));
  std::vector<Word> feed(200, 1);
  mgr.input(keep, "in").feed(feed);
  mgr.input(kill, "in").feed(feed);
  mgr.sim().run(20);  // both mid-stream
  mgr.release(kill);  // partial reconfiguration while keep runs
  mgr.sim().run_until_quiescent(10000);
  const auto& out = mgr.output(keep, "out").data();
  ASSERT_EQ(out.size(), 200u);
  for (const auto w : out) EXPECT_EQ(w, 8);
  mgr.release(keep);
}

TEST(Stress, DeterministicAcrossManagers) {
  // Same sequence of operations on two managers -> identical cycle
  // counts and outputs (replayability of the whole platform).
  const auto run_once = [] {
    ConfigurationManager mgr;
    const ConfigId a = mgr.load(tagged_config(1, 4));
    const ConfigId b = mgr.load(tagged_config(2, 5));
    std::vector<Word> feed;
    for (int i = 0; i < 64; ++i) feed.push_back(i * 3);
    mgr.input(a, "in").feed(feed);
    mgr.input(b, "in").feed(feed);
    mgr.sim().run_until_quiescent(10000);
    auto out = mgr.output(a, "out").take();
    const auto out_b = mgr.output(b, "out").take();
    out.insert(out.end(), out_b.begin(), out_b.end());
    return std::make_pair(mgr.sim().cycle(), out);
  };
  const auto r1 = run_once();
  const auto r2 = run_once();
  EXPECT_EQ(r1.first, r2.first);
  EXPECT_EQ(r1.second, r2.second);
}

TEST(Stress, FillArrayExactlyToCapacity) {
  ConfigurationManager mgr;
  std::vector<ConfigId> ids;
  // 16 x 4-ALU configs = 64 cells exactly (each also takes 2 I/O: only
  // 4 fit by I/O) — so use I/O-free configs: counter -> dangling.
  for (int t = 0; t < 16; ++t) {
    ConfigBuilder b("full" + std::to_string(t));
    for (int i = 0; i < 4; ++i) {
      b.counter("c" + std::to_string(i), {0, 1, 8});
    }
    ids.push_back(mgr.load(b.build()));
  }
  EXPECT_EQ(mgr.resources().free_alu_cells(), 0);
  ConfigBuilder more("overflow");
  more.counter("c", {0, 1, 2});
  EXPECT_THROW((void)mgr.load(more.build()), ConfigError);
  for (const auto id : ids) mgr.release(id);
  EXPECT_EQ(mgr.resources().free_alu_cells(), 64);
}

}  // namespace
}  // namespace rsp::xpp

// Observability layer (src/xpp/trace.hpp) tests.
//
// The two load-bearing claims, differentially tested here:
//  1. attaching a tracer never changes behaviour (bit-identical runs);
//  2. the counters themselves are scheduler-independent — kScan and
//     kEventDriven produce *identical* PerfCounters on every workload
//     (worklist-depth samples excepted: they measure the event
//     scheduler itself and are empty under kScan).
// Plus: exporter validity (Chrome trace JSON, CSV), the enriched
// StallReport hot-net ranking, and retirement of counter entries on
// remove_group (mirroring Manager.RemoveGroupMidRunLeavesNoStaleWaiters).
#include "src/xpp/trace.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/ofdm/maps.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/builder.hpp"
#include "src/xpp/manager.hpp"
#include "tests/support/json_lite.hpp"

namespace rsp::xpp {
namespace {

std::vector<CplxI> random_chips(std::size_t n, std::uint64_t seed,
                                int amp = 1000) {
  Rng rng(seed);
  std::vector<CplxI> out(n);
  for (auto& c : out) {
    c = {static_cast<int>(rng.below(static_cast<std::uint32_t>(2 * amp))) - amp,
         static_cast<int>(rng.below(static_cast<std::uint32_t>(2 * amp))) - amp};
  }
  return out;
}

/// Observable behaviour + counter snapshot of one traced streaming run.
struct TracedRun {
  std::vector<int> fires_per_cycle;
  long long final_cycle = 0;
  long long total_fires = 0;
  std::vector<Word> out;
  PerfCounters pc;
};

/// Load @p cfg under @p kind with a tracer attached, feed the named
/// input streams, step until "out" holds @p n_out words, release, and
/// snapshot the counters (so the snapshot includes retirement and the
/// full load/resident/release timeline).
TracedRun traced_run(SchedulerKind kind, const Configuration& cfg,
                     const std::map<std::string, std::vector<Word>>& feeds,
                     std::size_t n_out, bool with_tracer = true) {
  ConfigurationManager mgr({}, kind);
  Tracer tracer;
  if (with_tracer) mgr.sim().attach_trace(&tracer);
  const ConfigId id = mgr.load(cfg);
  for (const auto& [name, words] : feeds) mgr.input(id, name).feed(words);
  TracedRun t;
  auto& out = mgr.output(id, "out");
  for (int guard = 0; guard < 200000 && out.data().size() < n_out; ++guard) {
    t.fires_per_cycle.push_back(mgr.sim().step());
  }
  EXPECT_GE(out.data().size(), n_out) << cfg.name << ": timed out";
  t.final_cycle = mgr.sim().cycle();
  t.total_fires = mgr.sim().total_fires();
  t.out = out.take();
  mgr.release(id);
  t.pc = tracer.snapshot();
  return t;
}

/// Full PerfCounters equality, minus worklist-depth samples (the only
/// deliberately scheduler-dependent series).
void expect_counters_identical(const PerfCounters& a, const PerfCounters& b,
                               const std::string& what) {
  EXPECT_EQ(a.begin_cycle, b.begin_cycle) << what;
  EXPECT_EQ(a.end_cycle, b.end_cycle) << what;
  ASSERT_EQ(a.paes.size(), b.paes.size()) << what;
  for (std::size_t i = 0; i < a.paes.size(); ++i) {
    EXPECT_TRUE(a.paes[i] == b.paes[i])
        << what << ": PAE counters diverged for '" << a.paes[i].name << "' vs '"
        << b.paes[i].name << "' (fires " << a.paes[i].fires << " vs "
        << b.paes[i].fires << ", stall_in " << a.paes[i].stall_in_cycles
        << " vs " << b.paes[i].stall_in_cycles << ", stall_out "
        << a.paes[i].stall_out_cycles << " vs " << b.paes[i].stall_out_cycles
        << ", idle " << a.paes[i].idle_cycles << " vs "
        << b.paes[i].idle_cycles << ")";
  }
  ASSERT_EQ(a.nets.size(), b.nets.size()) << what;
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    EXPECT_TRUE(a.nets[i] == b.nets[i])
        << what << ": net counters diverged for " << a.nets[i].label
        << " (occupied " << a.nets[i].occupied_cycles << " vs "
        << b.nets[i].occupied_cycles << ", backpressure "
        << a.nets[i].backpressure_cycles << " vs "
        << b.nets[i].backpressure_cycles << ", tokens " << a.nets[i].tokens
        << " vs " << b.nets[i].tokens << ")";
  }
  ASSERT_EQ(a.config_timeline.size(), b.config_timeline.size()) << what;
  for (std::size_t i = 0; i < a.config_timeline.size(); ++i) {
    EXPECT_TRUE(a.config_timeline[i] == b.config_timeline[i])
        << what << ": timeline span " << i << " diverged";
  }
  EXPECT_EQ(a.row_samples, b.row_samples) << what;
}

/// Every traced cycle of every PAE is classified exactly once.
void expect_classification_complete(const PerfCounters& pc,
                                    const std::string& what) {
  for (const auto& p : pc.paes) {
    EXPECT_EQ(p.fires + p.stall_in_cycles + p.stall_out_cycles + p.idle_cycles,
              p.traced_cycles)
        << what << ": '" << p.name << "' classification does not partition";
  }
}

std::map<std::string, std::vector<Word>> descrambler_feeds(std::size_t n,
                                                           std::uint64_t seed) {
  const auto chips = random_chips(n, seed);
  dedhw::UmtsScrambler scr(16);
  std::vector<Word> code_words(chips.size());
  for (auto& c : code_words) c = scr.next2() & 3;
  return {{"data", rake::maps::pack_stream(chips)}, {"code", code_words}};
}

TEST(Trace, TracingOnIsBitIdentical) {
  // The tracer only reads: a traced run's observable behaviour must be
  // word-for-word identical to an untraced one.
  const auto feeds = descrambler_feeds(256, 11);
  const auto cfg = rake::maps::descrambler_config();
  for (const auto kind : {SchedulerKind::kScan, SchedulerKind::kEventDriven}) {
    const auto bare = traced_run(kind, cfg, feeds, 256, /*with_tracer=*/false);
    const auto traced = traced_run(kind, cfg, feeds, 256, /*with_tracer=*/true);
    EXPECT_EQ(bare.fires_per_cycle, traced.fires_per_cycle);
    EXPECT_EQ(bare.final_cycle, traced.final_cycle);
    EXPECT_EQ(bare.total_fires, traced.total_fires);
    EXPECT_EQ(bare.out, traced.out);
  }
}

TEST(Trace, DescramblerCountersSchedulerIdentical) {
  const auto feeds = descrambler_feeds(384, 11);
  const auto cfg = rake::maps::descrambler_config();
  const auto scan = traced_run(SchedulerKind::kScan, cfg, feeds, 384);
  const auto event = traced_run(SchedulerKind::kEventDriven, cfg, feeds, 384);
  EXPECT_EQ(scan.out, event.out);
  expect_counters_identical(scan.pc, event.pc, "descrambler");
  expect_classification_complete(event.pc, "descrambler");
  // The event scheduler must actually have produced worklist samples
  // (and the scan one none) — the one intentional asymmetry.
  EXPECT_GT(event.pc.worklist_peak, 0);
  EXPECT_EQ(scan.pc.worklist_peak, 0);
  EXPECT_TRUE(scan.pc.worklist_samples.empty());
}

TEST(Trace, DespreaderCountersSchedulerIdentical) {
  for (const int sf : {4, 16, 64}) {
    const auto chips = random_chips(static_cast<std::size_t>(sf) * 8, 23);
    const std::map<std::string, std::vector<Word>> feeds{
        {"data", rake::maps::pack_stream(chips)}};
    const auto cfg = rake::maps::despreader_config(sf, 1);
    const auto n_out = chips.size() / static_cast<std::size_t>(sf);
    const auto scan = traced_run(SchedulerKind::kScan, cfg, feeds, n_out);
    const auto event = traced_run(SchedulerKind::kEventDriven, cfg, feeds,
                                  n_out);
    expect_counters_identical(scan.pc, event.pc,
                              "despreader sf=" + std::to_string(sf));
  }
}

TEST(Trace, Fft64CountersSchedulerIdentical) {
  std::array<CplxI, phy::kFftSize> in;
  Rng rng(7);
  for (auto& c : in) {
    c = {static_cast<int>(rng.below(2000)) - 1000,
         static_cast<int>(rng.below(2000)) - 1000};
  }
  const auto run = [&](SchedulerKind kind) {
    ConfigurationManager mgr({}, kind);
    Tracer tracer;
    mgr.sim().attach_trace(&tracer);
    const auto out = ofdm::maps::run_fft64(mgr, in);
    return std::make_pair(out, tracer.snapshot());
  };
  const auto [scan_out, scan_pc] = run(SchedulerKind::kScan);
  const auto [event_out, event_pc] = run(SchedulerKind::kEventDriven);
  EXPECT_EQ(scan_out, event_out);
  expect_counters_identical(scan_pc, event_pc, "fft64");
  expect_classification_complete(event_pc, "fft64");
}

TEST(Trace, PartialReconfigCountersSchedulerIdentical) {
  // The Figure 10 mechanism: a sibling released mid-stream.  Retired
  // entries (despreader) and live entries (descrambler) must both agree
  // across schedulers, as must the three-span timeline.
  const auto chips = random_chips(128, 31);
  const auto run = [&](SchedulerKind kind) {
    ConfigurationManager mgr({}, kind);
    Tracer tracer;
    mgr.sim().attach_trace(&tracer);
    const ConfigId d = mgr.load(rake::maps::descrambler_config());
    const ConfigId p = mgr.load(rake::maps::despreader_config(16, 2));
    dedhw::UmtsScrambler scr(9);
    std::vector<Word> code_words(chips.size());
    for (auto& c : code_words) c = scr.next2() & 3;
    mgr.input(d, "data").feed(rake::maps::pack_stream(chips));
    mgr.input(d, "code").feed(code_words);
    mgr.input(p, "data").feed(rake::maps::pack_stream(chips));
    for (int i = 0; i < 40; ++i) (void)mgr.sim().step();
    mgr.release(p);  // despreader dropped mid-stream
    for (int i = 0; i < 400; ++i) (void)mgr.sim().step();
    auto out = mgr.output(d, "out").take();
    mgr.release(d);
    return std::make_pair(out, tracer.snapshot());
  };
  const auto [scan_out, scan_pc] = run(SchedulerKind::kScan);
  const auto [event_out, event_pc] = run(SchedulerKind::kEventDriven);
  EXPECT_EQ(scan_out, event_out);
  expect_counters_identical(scan_pc, event_pc, "partial-reconfig");
}

TEST(Trace, FiresMatchSimulatorStats) {
  // The per-fire hook and the simulator's own fire accounting must
  // agree object-for-object while the group is live.
  ConfigurationManager mgr;
  Tracer tracer;
  mgr.sim().attach_trace(&tracer);
  const auto chips = random_chips(64, 5);
  const ConfigId id = mgr.load(rake::maps::despreader_config(16, 1));
  mgr.input(id, "data").feed(rake::maps::pack_stream(chips));
  (void)mgr.sim().run_until_quiescent(4000);
  for (const auto& st : mgr.sim().stats(mgr.info(id).group)) {
    const Object* obj = mgr.sim().find(mgr.info(id).group, st.name);
    ASSERT_NE(obj, nullptr) << st.name;
    const PaeCounters* c = tracer.object_counters(obj);
    ASSERT_NE(c, nullptr) << st.name;
    EXPECT_EQ(c->fires, st.fires) << st.name;
    EXPECT_EQ(c->config, id) << st.name;
  }
}

TEST(Trace, RemoveGroupRetiresCounterEntries) {
  // Mirror of Manager.RemoveGroupMidRunLeavesNoStaleWaiters with a
  // tracer attached: releasing a configuration mid-stream must retire
  // its per-PAE/per-net entries (no dangling pointer keys — this test
  // runs under ASan in the sanitizer job), keep their counters in the
  // snapshot, and leave the survivor's counters still live and growing.
  const auto passthrough = [](const std::string& name) {
    ConfigBuilder b(name);
    const auto in = b.input("in");
    const auto a = b.alu("nop", Opcode::kNop);
    const auto out = b.output("out");
    b.connect(in.out(0), a.in(0));
    b.connect(a.out(0), out.in(0));
    return b.build();
  };
  ConfigurationManager mgr;
  Tracer tracer;
  mgr.sim().attach_trace(&tracer);
  const ConfigId a = mgr.load(passthrough("a"));
  const ConfigId b = mgr.load(passthrough("b"));
  const std::size_t live_before = tracer.live_objects();
  EXPECT_EQ(live_before, 6u);  // 2 configs x (input, alu, output)
  mgr.input(b, "in").feed(std::vector<Word>(100, 3));
  mgr.sim().run(3);  // b mid-stream: staged tokens, queued objects
  mgr.release(b);    // dangling counter entries would now be live
  EXPECT_EQ(tracer.live_objects(), 3u);
  EXPECT_EQ(tracer.live_nets(), 2u);
  (void)mgr.sim().run_until_quiescent(50);
  mgr.input(a, "in").feed({1, 2, 3, 4});
  (void)mgr.sim().run_until_quiescent(100);
  EXPECT_EQ(mgr.output(a, "out").data(), (std::vector<Word>{1, 2, 3, 4}));
  // b's history survives retirement with its fires intact.
  const auto pc = tracer.snapshot();
  EXPECT_EQ(pc.paes.size(), 6u);
  long long b_fires = 0;
  for (const auto& p : pc.paes) {
    if (p.config == b && p.kind == ObjectKind::kAlu) b_fires = p.fires;
  }
  EXPECT_GT(b_fires, 0);
  // Freed cells stay reusable; the new group registers fresh entries.
  const ConfigId c = mgr.load(passthrough("c"));
  mgr.input(c, "in").feed({7});
  (void)mgr.sim().run_until_quiescent(100);
  EXPECT_EQ(mgr.output(c, "out").data(), (std::vector<Word>{7}));
  EXPECT_EQ(tracer.live_objects(), 6u);
}

TEST(Trace, StallReportNamesHottestBlockedNets) {
  // Same feedback deadlock as Stall.FeedbackDeadlockNamesBlockedObject-
  // AndNet, with a tracer attached: the report must now rank the nets
  // involved in the stall by how long their tokens sat.  The stranded
  // external word on 'in.out0' is the hottest — it aged for the whole
  // run — while 'b.out0' (the empty wait) shows zero occupancy.
  ConfigBuilder b("deadlock");
  const auto in = b.input("in");
  const auto a = b.alu("a", Opcode::kAdd);
  const auto nb = b.alu("b", Opcode::kNop);
  b.connect(in.out(0), a.in(0));
  b.connect(nb.out(0), a.in(1));
  b.connect(a.out(0), nb.in(0));
  ConfigurationManager mgr;
  Tracer tracer;
  mgr.sim().attach_trace(&tracer);
  const ConfigId id = mgr.load(b.build());
  mgr.input(id, "in").feed({5});

  const StallReport r = mgr.sim().run_until_quiescent(1000);
  EXPECT_TRUE(r.deadlocked()) << r.to_string();
  ASSERT_FALSE(r.hot_nets.empty()) << r.to_string();
  EXPECT_EQ(r.hot_nets[0].label, "'in.out0'") << r.to_string();
  EXPECT_GT(r.hot_nets[0].backpressure_cycles, 0);
  EXPECT_GT(r.hot_nets[0].occupied_cycles, 0);
  EXPECT_EQ(r.hot_nets[0].tokens, 1);
  bool saw_empty_wait = false;
  for (const auto& h : r.hot_nets) {
    if (h.label == "'b.out0'") {
      saw_empty_wait = true;
      EXPECT_EQ(h.occupied_cycles, 0);
      EXPECT_EQ(h.tokens, 0);
    }
  }
  EXPECT_TRUE(saw_empty_wait) << r.to_string();
  const std::string s = r.to_string();
  EXPECT_NE(s.find("hottest blocked nets"), std::string::npos) << s;
  EXPECT_NE(s.find("'in.out0'"), std::string::npos) << s;
  // Without a tracer the report carries no hot-net section (and says so
  // only by its absence — behaviour matches pre-trace output).
  ConfigurationManager bare({}, SchedulerKind::kEventDriven);
  const ConfigId id2 = bare.load(b.build());
  bare.input(id2, "in").feed({5});
  const StallReport r2 = bare.sim().run_until_quiescent(1000);
  EXPECT_TRUE(r2.deadlocked());
  EXPECT_TRUE(r2.hot_nets.empty());
  EXPECT_EQ(r2.to_string().find("hottest"), std::string::npos);
}

TEST(Trace, ConfigTimelineSpansAreContiguous) {
  const auto feeds = descrambler_feeds(64, 3);
  const auto run =
      traced_run(SchedulerKind::kEventDriven, rake::maps::descrambler_config(),
                 feeds, 64);
  ASSERT_EQ(run.pc.config_timeline.size(), 3u);
  const auto& load = run.pc.config_timeline[0];
  const auto& resident = run.pc.config_timeline[1];
  const auto& release = run.pc.config_timeline[2];
  EXPECT_EQ(load.kind, ConfigSpan::Kind::kLoad);
  EXPECT_EQ(resident.kind, ConfigSpan::Kind::kResident);
  EXPECT_EQ(release.kind, ConfigSpan::Kind::kRelease);
  EXPECT_EQ(load.name, "fig5_descrambler");
  EXPECT_LT(load.begin_cycle, load.end_cycle);        // load costs cycles
  EXPECT_EQ(load.end_cycle, resident.begin_cycle);    // contiguous
  EXPECT_EQ(resident.end_cycle, release.begin_cycle); // closed by release
  EXPECT_LT(release.begin_cycle, release.end_cycle);  // release costs cycles
}

TEST(Trace, ChromeTraceIsValidJson) {
  const auto feeds = descrambler_feeds(96, 17);
  const auto run =
      traced_run(SchedulerKind::kEventDriven, rake::maps::descrambler_config(),
                 feeds, 96);
  std::ostringstream os;
  ChromeTraceSink().write(run.pc, os);
  const std::string json = os.str();
  EXPECT_TRUE(rsp::testing::json_valid(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("XPP array"), std::string::npos);
  EXPECT_NE(json.find("PAE row"), std::string::npos);
  EXPECT_NE(json.find("worklist drained"), std::string::npos);
  EXPECT_NE(json.find("resident"), std::string::npos);
}

TEST(Trace, CsvDumpListsEveryEntry) {
  const auto feeds = descrambler_feeds(64, 29);
  const auto run =
      traced_run(SchedulerKind::kEventDriven, rake::maps::descrambler_config(),
                 feeds, 64);
  std::ostringstream os;
  CsvTraceSink().write(run.pc, os);
  const std::string csv = os.str();
  std::size_t lines = 0;
  for (const char ch : csv) lines += (ch == '\n') ? 1 : 0;
  EXPECT_EQ(lines, 1 + run.pc.paes.size() + run.pc.nets.size());
  EXPECT_EQ(csv.find("type,seq,group,config,name,kind,row,col"), 0u);
}

TEST(Trace, PausedTracerCollectsNothingButKeepsStructure) {
  ConfigurationManager mgr;
  Tracer tracer;
  mgr.sim().attach_trace(&tracer);
  tracer.pause();
  const auto chips = random_chips(32, 13);
  const ConfigId id = mgr.load(rake::maps::despreader_config(4, 1));
  mgr.input(id, "data").feed(rake::maps::pack_stream(chips));
  (void)mgr.sim().run_until_quiescent(2000);
  const auto pc = tracer.snapshot();
  EXPECT_FALSE(pc.paes.empty());  // registration is structural
  for (const auto& p : pc.paes) {
    EXPECT_EQ(p.fires, 0) << p.name;
    EXPECT_EQ(p.traced_cycles, 0) << p.name;
  }
  for (const auto& n : pc.nets) {
    EXPECT_EQ(n.occupied_cycles, 0) << n.label;
    EXPECT_EQ(n.tokens, 0) << n.label;
  }
  // Resuming picks collection back up.
  tracer.resume();
  mgr.input(id, "data").feed(rake::maps::pack_stream(chips));
  (void)mgr.sim().run_until_quiescent(2000);
  const auto pc2 = tracer.snapshot();
  long long fires = 0;
  for (const auto& p : pc2.paes) fires += p.fires;
  EXPECT_GT(fires, 0);
}

}  // namespace
}  // namespace rsp::xpp

#include "src/xpp/alu.hpp"

#include <gtest/gtest.h>

#include "src/common/cplx.hpp"
#include "src/common/word.hpp"
#include "tests/xpp/harness.hpp"

namespace rsp::xpp {
namespace {

using testing::eval_op;
using testing::eval_op2;

TEST(Alu, AddSubSaturating) {
  EXPECT_EQ(eval_op(Opcode::kAdd, {}, {{1, 0x7FFFFF}, {2, 10}}, 2),
            (std::vector<Word>{3, 0x7FFFFF}));
  EXPECT_EQ(eval_op(Opcode::kSub, {}, {{5, -0x800000}, {9, 1}}, 2),
            (std::vector<Word>{-4, -0x800000}));
}

TEST(Alu, AddWrapping) {
  AluParams p;
  p.saturate = false;
  EXPECT_EQ(eval_op(Opcode::kAdd, p, {{0x7FFFFF}, {1}}, 1),
            (std::vector<Word>{-0x800000}));
}

TEST(Alu, MulAndMulShr) {
  EXPECT_EQ(eval_op(Opcode::kMul, {}, {{7, -3}, {6, 9}}, 2),
            (std::vector<Word>{42, -27}));
  AluParams p;
  p.shift = 4;
  EXPECT_EQ(eval_op(Opcode::kMulShr, p, {{100}, {100}}, 1),
            (std::vector<Word>{625}));
}

TEST(Alu, UnaryOps) {
  EXPECT_EQ(eval_op(Opcode::kNeg, {}, {{5, -7}}, 2),
            (std::vector<Word>{-5, 7}));
  EXPECT_EQ(eval_op(Opcode::kAbs, {}, {{-9, 4}}, 2),
            (std::vector<Word>{9, 4}));
  EXPECT_EQ(eval_op(Opcode::kNot, {}, {{0}}, 1), (std::vector<Word>{-1}));
}

TEST(Alu, MinMaxLogic) {
  EXPECT_EQ(eval_op(Opcode::kMin, {}, {{3}, {-5}}, 1), (std::vector<Word>{-5}));
  EXPECT_EQ(eval_op(Opcode::kMax, {}, {{3}, {-5}}, 1), (std::vector<Word>{3}));
  EXPECT_EQ(eval_op(Opcode::kAnd, {}, {{0b1100}, {0b1010}}, 1),
            (std::vector<Word>{0b1000}));
  EXPECT_EQ(eval_op(Opcode::kOr, {}, {{0b1100}, {0b1010}}, 1),
            (std::vector<Word>{0b1110}));
  EXPECT_EQ(eval_op(Opcode::kXor, {}, {{0b1100}, {0b1010}}, 1),
            (std::vector<Word>{0b0110}));
}

TEST(Alu, Shifts) {
  AluParams p;
  p.shift = 2;
  EXPECT_EQ(eval_op(Opcode::kShl, p, {{3}}, 1), (std::vector<Word>{12}));
  EXPECT_EQ(eval_op(Opcode::kShr, p, {{-8}}, 1), (std::vector<Word>{-2}));
  EXPECT_EQ(eval_op(Opcode::kShrRound, p, {{7}}, 1), (std::vector<Word>{2}));
}

TEST(Alu, Comparators) {
  EXPECT_EQ(eval_op(Opcode::kEq, {}, {{3, 4}, {3, 3}}, 2),
            (std::vector<Word>{1, 0}));
  EXPECT_EQ(eval_op(Opcode::kLt, {}, {{2, 5}, {3, 3}}, 2),
            (std::vector<Word>{1, 0}));
  EXPECT_EQ(eval_op(Opcode::kGe, {}, {{2, 5}, {3, 3}}, 2),
            (std::vector<Word>{0, 1}));
}

TEST(Alu, Mux) {
  // out = sel ? in2 : in1
  EXPECT_EQ(eval_op(Opcode::kMux, {}, {{0, 1}, {10, 20}, {30, 40}}, 2),
            (std::vector<Word>{10, 40}));
}

TEST(Alu, Swap) {
  const auto [o0, o1] =
      eval_op2(Opcode::kSwap, {}, {{0, 1}, {10, 20}, {30, 40}}, 2, 2);
  EXPECT_EQ(o0, (std::vector<Word>{10, 40}));
  EXPECT_EQ(o1, (std::vector<Word>{30, 20}));
}

TEST(Alu, DemuxRoutesBySelect) {
  const auto [o0, o1] =
      eval_op2(Opcode::kDemux, {}, {{0, 1, 0}, {7, 8, 9}}, 2, 1);
  EXPECT_EQ(o0, (std::vector<Word>{7, 9}));
  EXPECT_EQ(o1, (std::vector<Word>{8}));
}

TEST(Alu, MergeAlternating) {
  EXPECT_EQ(eval_op(Opcode::kMergeAlt, {}, {{1, 3}, {2, 4}}, 4),
            (std::vector<Word>{1, 2, 3, 4}));
}

TEST(Alu, MergeSelected) {
  // sel=0 takes in1, sel=1 takes in2; unselected stream not consumed.
  EXPECT_EQ(eval_op(Opcode::kMergeSel, {}, {{0, 0, 1}, {5, 6}, {7}}, 3),
            (std::vector<Word>{5, 6, 7}));
}

TEST(Alu, GatePassesOnEvent) {
  EXPECT_EQ(eval_op(Opcode::kGate, {}, {{10, 20, 30}, {1, 0, 1}}, 2),
            (std::vector<Word>{10, 30}));
}

TEST(Alu, Dup) {
  const auto [o0, o1] = eval_op2(Opcode::kDup, {}, {{5, 6}}, 2, 2);
  EXPECT_EQ(o0, o1);
  EXPECT_EQ(o0, (std::vector<Word>{5, 6}));
}

TEST(Alu, PackUnpack) {
  EXPECT_EQ(eval_op(Opcode::kPack, {}, {{-3}, {7}}, 1),
            (std::vector<Word>{pack_iq(-3, 7)}));
  const auto [i, q] = eval_op2(Opcode::kUnpack, {}, {{pack_iq(-3, 7)}}, 1, 1);
  EXPECT_EQ(i, (std::vector<Word>{-3}));
  EXPECT_EQ(q, (std::vector<Word>{7}));
}

TEST(Alu, Sel4Table) {
  AluParams p;
  p.table = {100, 200, 300, 400};
  EXPECT_EQ(eval_op(Opcode::kSel4, p, {{0, 3, 2, 1, 7}}, 5),
            (std::vector<Word>{100, 400, 300, 200, 400}));  // index masked &3
}

TEST(Alu, AccumWithDump) {
  AluParams p;
  p.shift = 1;
  // acc: 1+2+3 = 6, dump >>1 = 3; then 10, dump 5.
  EXPECT_EQ(eval_op(Opcode::kAccum, p, {{1, 2, 3, 10}, {0, 0, 1, 1}}, 2),
            (std::vector<Word>{3, 5}));
}

TEST(Alu, ComplexAddSub) {
  const Word a = pack_cplx({100, -50});
  const Word b = pack_cplx({-30, 80});
  EXPECT_EQ(eval_op(Opcode::kCAdd, {}, {{a}, {b}}, 1),
            (std::vector<Word>{pack_cplx({70, 30})}));
  EXPECT_EQ(eval_op(Opcode::kCSub, {}, {{a}, {b}}, 1),
            (std::vector<Word>{pack_cplx({130, -130})}));
}

TEST(Alu, ComplexAddSaturates) {
  const Word a = pack_cplx({2000, -2000});
  const Word b = pack_cplx({2000, -2000});
  EXPECT_EQ(eval_op(Opcode::kCAdd, {}, {{a}, {b}}, 1),
            (std::vector<Word>{pack_cplx({2047, -2048})}));
}

TEST(Alu, ComplexMulShr) {
  AluParams p;
  p.shift = 2;
  const CplxI x{100, 40};
  const CplxI w{-8, 12};
  const CplxI expect = sat_cplx(shr_round(x * w, 2), kHalfBits);
  EXPECT_EQ(eval_op(Opcode::kCMulShr, p, {{pack_cplx(x)}, {pack_cplx(w)}}, 1),
            (std::vector<Word>{pack_cplx(expect)}));
}

TEST(Alu, ComplexConjNegRot) {
  const CplxI z{123, -456};
  EXPECT_EQ(eval_op(Opcode::kCConj, {}, {{pack_cplx(z)}}, 1),
            (std::vector<Word>{pack_cplx({123, 456})}));
  EXPECT_EQ(eval_op(Opcode::kCNeg, {}, {{pack_cplx(z)}}, 1),
            (std::vector<Word>{pack_cplx({-123, 456})}));
  // -j * (123 - 456j) = -456 - 123j
  EXPECT_EQ(eval_op(Opcode::kCRotMj, {}, {{pack_cplx(z)}}, 1),
            (std::vector<Word>{pack_cplx({-456, -123})}));
}

TEST(Alu, ComplexAccum) {
  AluParams p;
  p.shift = 0;
  const Word a = pack_cplx({10, -20});
  const Word b = pack_cplx({5, 5});
  EXPECT_EQ(eval_op(Opcode::kCAccum, p, {{a, b}, {0, 1}}, 1),
            (std::vector<Word>{pack_cplx({15, -15})}));
}

}  // namespace
}  // namespace rsp::xpp

// Fault-injection tests.
//
// The load-bearing property is determinism: a FaultPlan must produce a
// bit-identical fault stream, fire trace and output under both
// schedulers (faults strike at cycle boundaries, where kScan and
// kEventDriven hold identical state), and a seeded SEU process must
// replay exactly.  Each fault kind also gets a semantic check against a
// clean run of the same pipeline.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/xpp/builder.hpp"
#include "src/xpp/fault.hpp"
#include "src/xpp/manager.hpp"
#include "src/xpp/ram.hpp"

namespace rsp::xpp {
namespace {

/// in -> NOP -> out passthrough used by most fault tests.
Configuration passthrough_config() {
  ConfigBuilder b("passthrough");
  const auto in = b.input("in");
  const auto mid = b.alu("mid", Opcode::kNop);
  const auto out = b.output("out");
  b.connect(in.out(0), mid.in(0));
  b.connect(mid.out(0), out.in(0));
  return b.build();
}

struct FaultTrace {
  std::vector<int> fires_per_cycle;
  long long final_cycle = 0;
  long long total_fires = 0;
  std::vector<Word> out;
  std::vector<FaultEvent> events;
  StallReport report;

  friend bool operator==(const FaultTrace&, const FaultTrace&) = default;
};

/// Load @p cfg, install the plan produced by @p plan_at (called with
/// the absolute cycle right after the load, so plans can be written in
/// post-load-relative cycles), feed, and step to quiescence recording
/// the per-cycle fire counts.
FaultTrace run_faulted(SchedulerKind kind, const Configuration& cfg,
                       const std::map<std::string, std::vector<Word>>& feeds,
                       const std::function<FaultPlan(long long)>& plan_at,
                       long long max_cycles = 5000) {
  ConfigurationManager mgr({}, kind);
  const ConfigId id = mgr.load(cfg);
  FaultInjector inj(plan_at(mgr.sim().cycle()));
  mgr.sim().install_faults(&inj);
  for (const auto& [name, words] : feeds) mgr.input(id, name).feed(words);

  FaultTrace t;
  for (long long i = 0; i < max_cycles; ++i) {
    const int fires = mgr.sim().step();
    t.fires_per_cycle.push_back(fires);
    if (fires == 0 && !inj.events_pending()) break;
  }
  t.final_cycle = mgr.sim().cycle();
  t.total_fires = mgr.sim().total_fires();
  t.out = mgr.output(id, "out").take();
  t.events = inj.log();
  t.report = mgr.sim().diagnose();
  mgr.sim().install_faults(nullptr);
  return t;
}

FaultTrace run_clean(SchedulerKind kind, const Configuration& cfg,
                     const std::map<std::string, std::vector<Word>>& feeds) {
  return run_faulted(kind, cfg, feeds, [](long long) { return FaultPlan{}; });
}

const std::vector<Word> kWords{10, 20, 30, 40, 50, 60, 70, 80};

TEST(Fault, EmptyPlanIsInert) {
  const auto cfg = passthrough_config();
  const auto clean = run_clean(SchedulerKind::kEventDriven, cfg,
                               {{"in", kWords}});
  EXPECT_EQ(clean.out, kWords);
  EXPECT_TRUE(clean.events.empty());
  EXPECT_EQ(clean.report.tokens_in_flight, 0);
}

TEST(Fault, BitFlipXorsExactlyOneWord) {
  const auto cfg = passthrough_config();
  const auto clean = run_clean(SchedulerKind::kEventDriven, cfg,
                               {{"in", kWords}});
  // At the boundary after the first post-load cycle, 'in.out0' holds
  // the first word; flip its bit 3 before 'mid' consumes it.
  const auto plan_at = [](long long c0) {
    FaultPlan p;
    p.faults.push_back(
        {FaultKind::kNetBitFlip, c0 + 1, "in", -1, 0, 3, kStuckForever, 0, 1});
    return p;
  };
  const auto hit = run_faulted(SchedulerKind::kEventDriven, cfg,
                               {{"in", kWords}}, plan_at);
  ASSERT_EQ(hit.out.size(), clean.out.size());
  EXPECT_EQ(hit.out[0], clean.out[0] ^ 8) << "bit 3 of word 0 must flip";
  for (std::size_t i = 1; i < clean.out.size(); ++i) {
    EXPECT_EQ(hit.out[i], clean.out[i]) << "word " << i << " must be intact";
  }
  ASSERT_EQ(hit.events.size(), 1u);
  EXPECT_TRUE(hit.events[0].hit);
  EXPECT_EQ(hit.events[0].target, "in.out0");
  EXPECT_EQ(hit.events[0].detail, 3);
}

TEST(Fault, BitFlipOnEmptyNetIsLoggedAsMiss) {
  const auto cfg = passthrough_config();
  // Strike before any token reaches 'mid.out0' (cycle c0 executes the
  // input's first fire; 'mid' has staged nothing at that boundary...
  // strike at c0 itself, before the first step's commit has even run).
  const auto plan_at = [](long long c0) {
    FaultPlan p;
    p.faults.push_back(
        {FaultKind::kNetBitFlip, c0, "mid", -1, 0, 5, kStuckForever, 0, 1});
    return p;
  };
  const auto t = run_faulted(SchedulerKind::kEventDriven, cfg,
                             {{"in", kWords}}, plan_at);
  EXPECT_EQ(t.out, kWords) << "a miss must not disturb the stream";
  ASSERT_EQ(t.events.size(), 1u);
  EXPECT_FALSE(t.events[0].hit);
}

TEST(Fault, StuckWindowDelaysButCompletes) {
  const auto cfg = passthrough_config();
  const auto clean = run_clean(SchedulerKind::kEventDriven, cfg,
                               {{"in", kWords}});
  const auto plan_at = [](long long c0) {
    FaultPlan p;
    Fault f;
    f.kind = FaultKind::kStuckObject;
    f.cycle = c0 + 2;
    f.object = "mid";
    f.duration = 5;
    p.faults.push_back(f);
    return p;
  };
  const auto t = run_faulted(SchedulerKind::kEventDriven, cfg,
                             {{"in", kWords}}, plan_at);
  EXPECT_EQ(t.out, clean.out)
      << "a transient stall reorders nothing and loses nothing";
  EXPECT_GT(t.final_cycle, clean.final_cycle) << "the stall must cost cycles";
  ASSERT_EQ(t.events.size(), 1u);
  EXPECT_TRUE(t.events[0].hit);
  EXPECT_EQ(t.events[0].detail, 5);
}

TEST(Fault, PermanentStuckBackpressuresWithoutCrash) {
  const auto cfg = passthrough_config();
  const auto plan_at = [](long long c0) {
    FaultPlan p;
    Fault f;
    f.kind = FaultKind::kStuckObject;
    f.cycle = c0;
    f.object = "mid";
    p.faults.push_back(f);
    return p;
  };
  const auto t = run_faulted(SchedulerKind::kEventDriven, cfg,
                             {{"in", kWords}}, plan_at);
  EXPECT_TRUE(t.out.empty()) << "nothing may pass a permanently stuck PAE";
  EXPECT_GT(t.report.tokens_in_flight, 0)
      << "the stream must pile up behind the fault";
}

TEST(Fault, DropTokenLosesExactlyOneWord) {
  const auto cfg = passthrough_config();
  const auto plan_at = [](long long c0) {
    FaultPlan p;
    Fault f;
    f.kind = FaultKind::kDropToken;
    f.cycle = c0 + 1;  // first word already streamed; drops the second
    f.object = "in";
    p.faults.push_back(f);
    return p;
  };
  const auto t = run_faulted(SchedulerKind::kEventDriven, cfg,
                             {{"in", kWords}}, plan_at);
  std::vector<Word> expect = kWords;
  expect.erase(expect.begin() + 1);
  EXPECT_EQ(t.out, expect);
  ASSERT_EQ(t.events.size(), 1u);
  EXPECT_TRUE(t.events[0].hit);
}

TEST(Fault, DupTokenRepeatsExactlyOneWord) {
  const auto cfg = passthrough_config();
  const auto plan_at = [](long long c0) {
    FaultPlan p;
    Fault f;
    f.kind = FaultKind::kDupToken;
    f.cycle = c0 + 1;
    f.object = "in";
    p.faults.push_back(f);
    return p;
  };
  const auto t = run_faulted(SchedulerKind::kEventDriven, cfg,
                             {{"in", kWords}}, plan_at);
  std::vector<Word> expect = kWords;
  expect.insert(expect.begin() + 1, kWords[1]);
  EXPECT_EQ(t.out, expect);
}

TEST(Fault, RamCorruptFlipsStoredWord) {
  ConfigBuilder b("ramfault");
  RamParams p;
  p.mode = RamMode::kRam;
  p.capacity = 8;
  p.preload = {1, 2, 3, 4};
  const auto raddr = b.input("in");
  const auto ram = b.ram("mem", std::move(p));
  const auto out = b.output("out");
  b.connect(raddr.out(0), ram.in(0));
  b.connect(ram.out(0), out.in(0));
  const auto cfg = b.build();

  const auto plan_at = [](long long c0) {
    FaultPlan plan;
    Fault f;
    f.kind = FaultKind::kRamCorrupt;
    f.cycle = c0 + 1;  // before address 2 is read
    f.object = "mem";
    f.addr = 2;
    f.mask = 0xF;
    plan.faults.push_back(f);
    return plan;
  };
  const auto t = run_faulted(SchedulerKind::kEventDriven, cfg,
                             {{"in", {0, 1, 2, 3}}}, plan_at);
  EXPECT_EQ(t.out, (std::vector<Word>{1, 2, 3 ^ 0xF, 4}));
  ASSERT_EQ(t.events.size(), 1u);
  EXPECT_TRUE(t.events[0].hit);
  EXPECT_EQ(t.events[0].detail, 2);
}

TEST(Fault, UnknownTargetIsLoggedMissAndHarmless) {
  const auto cfg = passthrough_config();
  const auto plan_at = [](long long c0) {
    FaultPlan p;
    p.faults.push_back({FaultKind::kStuckObject, c0 + 1, "nonexistent", -1, 0,
                        0, kStuckForever, 0, 1});
    return p;
  };
  const auto t = run_faulted(SchedulerKind::kEventDriven, cfg,
                             {{"in", kWords}}, plan_at);
  EXPECT_EQ(t.out, kWords);
  ASSERT_EQ(t.events.size(), 1u);
  EXPECT_FALSE(t.events[0].hit);
}

// ---- differential: both schedulers observe identical fault streams ----

void expect_schedulers_identical(
    const Configuration& cfg,
    const std::map<std::string, std::vector<Word>>& feeds,
    const std::function<FaultPlan(long long)>& plan_at,
    const std::string& what) {
  const auto scan = run_faulted(SchedulerKind::kScan, cfg, feeds, plan_at);
  const auto event =
      run_faulted(SchedulerKind::kEventDriven, cfg, feeds, plan_at);
  EXPECT_EQ(scan.fires_per_cycle, event.fires_per_cycle)
      << what << ": fire trace diverged";
  EXPECT_EQ(scan.final_cycle, event.final_cycle) << what;
  EXPECT_EQ(scan.total_fires, event.total_fires) << what;
  EXPECT_EQ(scan.out, event.out) << what << ": output words diverged";
  EXPECT_EQ(scan.events, event.events) << what << ": fault logs diverged";
}

TEST(FaultDifferential, BitFlip) {
  expect_schedulers_identical(
      passthrough_config(), {{"in", kWords}},
      [](long long c0) {
        FaultPlan p;
        p.faults.push_back({FaultKind::kNetBitFlip, c0 + 2, "mid", -1, 0, 11,
                            kStuckForever, 0, 1});
        return p;
      },
      "bit flip");
}

TEST(FaultDifferential, StuckWindow) {
  expect_schedulers_identical(
      passthrough_config(), {{"in", kWords}},
      [](long long c0) {
        FaultPlan p;
        Fault f;
        f.kind = FaultKind::kStuckObject;
        f.cycle = c0 + 3;
        f.object = "mid";
        f.duration = 4;
        p.faults.push_back(f);
        return p;
      },
      "stuck window");
}

TEST(FaultDifferential, DropAndDup) {
  expect_schedulers_identical(
      passthrough_config(), {{"in", kWords}},
      [](long long c0) {
        FaultPlan p;
        Fault d;
        d.kind = FaultKind::kDropToken;
        d.cycle = c0 + 2;
        d.object = "in";
        p.faults.push_back(d);
        Fault u;
        u.kind = FaultKind::kDupToken;
        u.cycle = c0 + 4;
        u.object = "in";
        p.faults.push_back(u);
        return p;
      },
      "drop+dup");
}

TEST(FaultDifferential, SeededSeuProcess) {
  const auto plan_at = [](long long c0) {
    FaultPlan p;
    p.seu.per_cycle_prob = 0.35;
    p.seu.seed = 99;
    p.seu.from = c0;
    p.seu.to = c0 + 40;
    return p;
  };
  const auto cfg = passthrough_config();
  const auto scan =
      run_faulted(SchedulerKind::kScan, cfg, {{"in", kWords}}, plan_at);
  const auto event =
      run_faulted(SchedulerKind::kEventDriven, cfg, {{"in", kWords}}, plan_at);
  EXPECT_EQ(scan.events, event.events) << "SEU streams diverged";
  EXPECT_EQ(scan.out, event.out);
  EXPECT_EQ(scan.fires_per_cycle, event.fires_per_cycle);
  EXPECT_FALSE(scan.events.empty()) << "p=0.35 over 40 cycles must strike";

  // Replay: the identical plan yields the identical log.
  const auto replay =
      run_faulted(SchedulerKind::kEventDriven, cfg, {{"in", kWords}}, plan_at);
  EXPECT_EQ(replay.events, event.events);
  EXPECT_EQ(replay.out, event.out);
}

}  // namespace
}  // namespace rsp::xpp

#include "src/xpp/builder.hpp"

#include <gtest/gtest.h>

namespace rsp::xpp {
namespace {

TEST(Builder, BuildsValidConfig) {
  ConfigBuilder b("ok");
  const auto in = b.input("in");
  const auto a = b.alu("add", Opcode::kAdd);
  b.tie(a, 1, 5);
  const auto out = b.output("out");
  b.connect(in.out(0), a.in(0));
  b.connect(a.out(0), out.in(0));
  const Configuration cfg = b.build();
  EXPECT_EQ(cfg.objects.size(), 3u);
  EXPECT_EQ(cfg.connections.size(), 2u);
  EXPECT_EQ(cfg.alu_demand(), 1);
  EXPECT_EQ(cfg.io_demand(), 2);
  EXPECT_EQ(cfg.ram_demand(), 0);
}

TEST(Builder, RejectsDuplicateNames) {
  ConfigBuilder b("dup");
  b.input("x");
  const auto a = b.alu("x", Opcode::kNop);
  b.tie(a, 0, 0);
  EXPECT_THROW((void)b.build(), ConfigError);
}

TEST(Builder, RejectsUnboundRequiredInput) {
  ConfigBuilder b("unbound");
  const auto a = b.alu("add", Opcode::kAdd);
  b.tie(a, 0, 1);  // in1 left unbound
  const auto out = b.output("out");
  b.connect(a.out(0), out.in(0));
  EXPECT_THROW((void)b.build(), ConfigError);
}

TEST(Builder, ConstantsSatisfyRequiredInputs) {
  ConfigBuilder b("consts");
  const auto a = b.alu("add", Opcode::kAdd);
  b.tie(a, 0, 1);
  b.tie(a, 1, 2);
  const auto out = b.output("out");
  b.connect(a.out(0), out.in(0));
  EXPECT_NO_THROW((void)b.build());
}

TEST(Builder, RejectsOutputAsSource) {
  ConfigBuilder b("bad");
  const auto o = b.output("o");
  const auto a = b.alu("nop", Opcode::kNop);
  b.connect(o.out(0), a.in(0));
  EXPECT_THROW((void)b.build(), ConfigError);
}

TEST(Builder, RejectsInputAsSink) {
  ConfigBuilder b("bad");
  const auto i = b.input("i");
  const auto a = b.alu("nop", Opcode::kNop);
  b.connect(i.out(0), a.in(0));
  b.connect(a.out(0), i.in(0));
  EXPECT_THROW((void)b.build(), ConfigError);
}

TEST(Builder, RejectsPortOutOfRange) {
  ConfigBuilder b("bad");
  const auto i = b.input("i");
  const auto a = b.alu("nop", Opcode::kNop);
  b.connect(i.out(0), a.in(0));
  b.connect(a.out(0), PortRef{a.index, kMaxIn});
  EXPECT_THROW((void)b.build(), ConfigError);
}

TEST(Builder, PlacementRecorded) {
  ConfigBuilder b("place");
  const auto a = b.alu("nop", Opcode::kNop);
  b.tie(a, 0, 0);
  b.place(a, {3, 4});
  const auto cfg = b.build();
  ASSERT_TRUE(cfg.objects[0].placement.has_value());
  EXPECT_EQ(cfg.objects[0].placement->row, 3);
  EXPECT_EQ(cfg.objects[0].placement->col, 4);
}

}  // namespace
}  // namespace rsp::xpp

// Pins the datapath rounding convention: shr_round is round-to-nearest
// with ties AWAY from zero, symmetrically for negative inputs.
//
// Both the ALU (kShrRound/kMulShr/kCMulShr/kAccum post-shifts) and every
// golden reference chain (rake/golden.cpp, phy/fft.cpp, rake/tdm.cpp)
// call the one constexpr in src/common/word.hpp, so they agree by
// construction — but nothing previously pinned WHICH convention that
// definition implements.  The common DSP shortcut `(v + bias) >> shift`
// is half-up (ties toward +inf): it agrees for positive v and differs by
// one LSB on negative ties (e.g. -5>>1: away-from-zero gives -3,
// half-up gives -2).  A well-meaning "simplification" to the biased
// shift would silently shift every golden chain; these tests fail on it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/cplx.hpp"
#include "src/common/word.hpp"
#include "tests/xpp/harness.hpp"

namespace rsp {
namespace {

/// Reference: round-to-nearest, ties away from zero — exactly what
/// std::llround does for exact binary fractions (v / 2^s is exact in
/// double for |v| < 2^24).
long long ref_round(std::int32_t v, int s) {
  return std::llround(static_cast<double>(v) /
                      static_cast<double>(std::int64_t{1} << s));
}

/// The half-up alternative (ties toward +inf) that shr_round must NOT be.
std::int32_t half_up(std::int32_t v, int s) {
  return (v + (1 << (s - 1))) >> s;
}

TEST(AluRounding, TiesRoundAwayFromZero) {
  // The canonical corner: half of an odd value.
  EXPECT_EQ(shr_round(5, 1), 3);
  EXPECT_EQ(shr_round(-5, 1), -3);
  EXPECT_EQ(shr_round(3, 1), 2);
  EXPECT_EQ(shr_round(-3, 1), -2);
  // Non-ties round to nearest in both directions.
  EXPECT_EQ(shr_round(-6, 2), -2);  // -1.5 -> -2 (tie, away)
  EXPECT_EQ(shr_round(-5, 2), -1);  // -1.25 -> -1
  EXPECT_EQ(shr_round(-7, 2), -2);  // -1.75 -> -2
  // Symmetry: shr_round(-v) == -shr_round(v) — half-up breaks this.
  EXPECT_EQ(half_up(-5, 1), -2);  // the convention we are NOT using
  EXPECT_EQ(shr_round(-5, 1), -shr_round(5, 1));
  // shift <= 0 is a passthrough.
  EXPECT_EQ(shr_round(-5, 0), -5);
}

TEST(AluRounding, ExhaustiveSmallRangeVsGoldenReference) {
  for (int s = 1; s <= 12; ++s) {
    for (std::int32_t v = -4500; v <= 4500; ++v) {
      ASSERT_EQ(shr_round(v, s), ref_round(v, s)) << "v=" << v << " s=" << s;
    }
  }
}

TEST(AluRounding, DatapathExtremesVsGoldenReference) {
  // Words near the 24-bit rails, and every value adjacent to a tie for
  // large shifts (where one-LSB convention errors are most visible).
  const std::int32_t rail = (1 << (kWordBits - 1)) - 1;  // 8388607
  std::vector<std::int32_t> corners = {rail, -rail, rail - 1, 1 - rail,
                                       -rail - 1 /* -2^23 */};
  for (int s = 1; s <= 16; ++s) {
    const std::int32_t tie = 1 << (s - 1);
    for (const std::int32_t base : {tie, 3 * tie, 5 * tie, 101 * tie}) {
      for (int d = -2; d <= 2; ++d) {
        corners.push_back(base + d);
        corners.push_back(-(base + d));
      }
    }
  }
  for (int s = 1; s <= 16; ++s) {
    for (const std::int32_t v : corners) {
      ASSERT_EQ(shr_round(v, s), ref_round(v, s)) << "v=" << v << " s=" << s;
    }
  }
}

TEST(AluRounding, ShrRoundOpcodeMatchesConvention) {
  // The same corners streamed through a real kShrRound ALU-PAE.
  xpp::AluParams p;
  p.shift = 3;
  const std::vector<xpp::Word> in = {20, -20, 12, -12, 11, -11, 4,
                                     -4, 100, -100, 0, 8388607, -8388608};
  std::vector<xpp::Word> want(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    want[i] = static_cast<xpp::Word>(ref_round(in[i], p.shift));
  }
  EXPECT_EQ(xpp::testing::eval_op(xpp::Opcode::kShrRound, p, {in}, in.size()),
            want);
  // Spot-check the documented tie: 20/8 = 2.5 -> 3, -20/8 -> -3.
  EXPECT_EQ(want[0], 3);
  EXPECT_EQ(want[1], -3);
}

TEST(AluRounding, MulShrOpcodeMatchesConvention) {
  // kMulShr = saturate(a*b, 31 bits) then shr_round then 24-bit clamp.
  xpp::AluParams p;
  p.shift = 4;
  const std::vector<xpp::Word> a = {3, -3, 1000, -1000, 7, -7};
  const std::vector<xpp::Word> b = {8, 8, -333, -333, 2000, 2000};
  std::vector<xpp::Word> want(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto prod = static_cast<std::int32_t>(
        saturate(static_cast<long long>(a[i]) * b[i], 31));
    want[i] =
        static_cast<xpp::Word>(saturate(ref_round(prod, p.shift), kWordBits));
  }
  EXPECT_EQ(xpp::testing::eval_op(xpp::Opcode::kMulShr, p, {a, b}, a.size()),
            want);
  // 3*8 = 24, /16 = 1.5: the tie rounds away — +2 and -2, not +2 and -1.
  EXPECT_EQ(want[0], 2);
  EXPECT_EQ(want[1], -2);
}

TEST(AluRounding, CMulShrOpcodeMatchesConvention) {
  // Packed complex multiply: per-component shr_round then 12-bit
  // saturation, matching rake::golden's descramble step bit-for-bit.
  xpp::AluParams p;
  p.shift = 2;
  const std::vector<CplxI> za = {{3, -3}, {-1, 5}, {2047, -2048}};
  const std::vector<CplxI> zb = {{2, 2}, {-3, -1}, {3, 3}};
  std::vector<xpp::Word> a(za.size()), b(zb.size()), want(za.size());
  for (std::size_t i = 0; i < za.size(); ++i) {
    a[i] = pack_cplx(za[i]);
    b[i] = pack_cplx(zb[i]);
    const CplxI prod = za[i] * zb[i];
    const CplxI r = {
        static_cast<std::int32_t>(ref_round(prod.re, p.shift)),
        static_cast<std::int32_t>(ref_round(prod.im, p.shift))};
    want[i] = pack_cplx(sat_cplx(r, kHalfBits));
  }
  EXPECT_EQ(xpp::testing::eval_op(xpp::Opcode::kCMulShr, p, {a, b}, a.size()),
            want);
}

}  // namespace
}  // namespace rsp

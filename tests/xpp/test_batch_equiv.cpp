// Differential battery for batched cross-instance SIMD replay
// (src/xpp/batch.hpp): a fleet driven through BatchedReplayEngine must
// be bit-identical, lane by lane, to the same fleet driven one
// simulator at a time under scalar kCompiled — outputs, final cycle
// and fire counts — across lane-group widths (1 / 8 / 16 / odd
// remainders), forced single-lane guard ejection, mixed-program
// fleets (which must never share a batch), and the shared program
// cache (identical terminals compile once, bind thereafter).  The
// dispatched SIMD kernel table is also checked lane-by-lane against
// the always-available generic table.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/ofdm/maps.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/batch.hpp"
#include "src/xpp/builder.hpp"
#include "src/xpp/manager.hpp"
#include "src/xpp/simd.hpp"

namespace rsp::xpp {
namespace {

std::vector<CplxI> random_chips(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CplxI> out(n);
  for (auto& c : out) {
    c = {static_cast<int>(rng.below(2000)) - 1000,
         static_cast<int>(rng.below(2000)) - 1000};
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fleet harness: every instance carries the same boundary script
// (feeds + fixed cycle quanta), so the scalar and the batched drive
// perform exactly the same external actions in the same order — only
// who executes the cycles differs.
// ---------------------------------------------------------------------------

struct Step {
  std::vector<std::pair<std::string, std::vector<Word>>> feeds;
  long long cycles = 0;
};

struct Inst {
  std::unique_ptr<ConfigurationManager> mgr;
  ConfigId id = kNoConfig;
  std::vector<ConfigId> idle;  ///< resident but never-fed configs
  std::uint32_t crc = 0;
  std::vector<Step> steps;
};

struct LaneObs {
  std::vector<Word> out;
  long long cycle = 0;
  long long fires = 0;
  friend bool operator==(const LaneObs&, const LaneObs&) = default;
};

Inst load(const Configuration& cfg) {
  Inst inst;
  inst.mgr = std::make_unique<ConfigurationManager>(ArrayGeometry{},
                                                    SchedulerKind::kCompiled);
  inst.crc = cfg.checksum ? *cfg.checksum : config_crc32(cfg);
  inst.id = inst.mgr->load(cfg);
  return inst;
}

LaneObs observe(Inst& inst) {
  return {inst.mgr->output(inst.id, "out").take(), inst.mgr->sim().cycle(),
          inst.mgr->sim().total_fires()};
}

std::vector<LaneObs> drive_scalar(std::vector<Inst>& fleet) {
  std::vector<LaneObs> obs;
  for (auto& inst : fleet) {
    for (const auto& step : inst.steps) {
      for (const auto& [port, words] : step.feeds) {
        inst.mgr->input(inst.id, port).feed(words);
      }
      inst.mgr->sim().run(step.cycles);
    }
    obs.push_back(observe(inst));
  }
  return obs;
}

std::vector<LaneObs> drive_batched(std::vector<Inst>& fleet, int width,
                                   BatchProgramCache* cache,
                                   BatchedReplayEngine::Stats* stats_out) {
  BatchedReplayEngine eng(cache, width);
  for (auto& inst : fleet) eng.add(inst.mgr->sim(), inst.crc);
  const std::size_t n_steps = fleet[0].steps.size();
  for (std::size_t s = 0; s < n_steps; ++s) {
    for (auto& inst : fleet) {
      for (const auto& [port, words] : inst.steps[s].feeds) {
        inst.mgr->input(inst.id, port).feed(words);
      }
    }
    eng.run_cycles(fleet[0].steps[s].cycles);
  }
  if (stats_out != nullptr) *stats_out = eng.stats();
  std::vector<LaneObs> obs;
  for (auto& inst : fleet) obs.push_back(observe(inst));
  return obs;
}

void expect_lanes_identical(const std::vector<LaneObs>& scalar,
                            const std::vector<LaneObs>& batched,
                            const std::string& what) {
  ASSERT_EQ(scalar.size(), batched.size()) << what;
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    const std::string lane = what + " lane " + std::to_string(i);
    EXPECT_EQ(scalar[i].out, batched[i].out) << lane << ": outputs diverged";
    EXPECT_EQ(scalar[i].cycle, batched[i].cycle) << lane;
    EXPECT_EQ(scalar[i].fires, batched[i].fires) << lane;
  }
}

// -- per-scenario instance builders -----------------------------------------

Inst descrambler_inst(std::size_t lane, std::size_t n_chips) {
  Inst inst = load(rake::maps::descrambler_config());
  const auto chips = random_chips(n_chips, 13 + lane);
  dedhw::UmtsScrambler scr(16);
  std::vector<Word> code(n_chips);
  for (auto& c : code) c = scr.next2() & 3;
  inst.steps.push_back({{{"data", rake::maps::pack_stream(chips)},
                         {"code", std::move(code)}},
                        static_cast<long long>(n_chips) + 256});
  return inst;
}

Inst despreader_inst(std::size_t lane, std::size_t n_chips,
                     std::size_t fed_chips) {
  Inst inst = load(rake::maps::despreader_config(16, 1));
  const auto chips = random_chips(fed_chips, 29 + lane);
  inst.steps.push_back({{{"data", rake::maps::pack_stream(chips)}},
                        static_cast<long long>(n_chips) + 256});
  return inst;
}

Inst fft64_inst(std::size_t lane, std::size_t n_symbols) {
  constexpr long long kQuantum = 600;
  Inst inst = load(ofdm::maps::fft64_stage_config(0));
  for (std::size_t s = 0; s < n_symbols; ++s) {
    Rng rng(77 + lane * 1000 + s);
    std::vector<Word> sym(phy::kFftSize);
    for (auto& w : sym) {
      w = pack_cplx({static_cast<int>(rng.below(2000)) - 1000,
                     static_cast<int>(rng.below(2000)) - 1000});
    }
    const std::vector<Word> ones(phy::kFftSize, 1);
    inst.steps.push_back({{{"data", std::move(sym)}}, kQuantum});
    inst.steps.push_back({{{"go", ones}}, kQuantum});
    inst.steps.push_back({{{"go2", ones}}, kQuantum});
  }
  return inst;
}

/// Sparse-activity terminal: four despreader fingers resident, chips
/// streamed through finger 0 only (bench_micro_sched's 4th scenario).
Inst sparse_rake_inst(std::size_t lane, std::size_t n_chips) {
  Inst inst = load(rake::maps::despreader_config(16, 1));
  for (const int code : {2, 3, 5}) {
    inst.idle.push_back(
        inst.mgr->load(rake::maps::despreader_config(16, code)));
  }
  const auto chips = random_chips(n_chips, 61 + lane);
  inst.steps.push_back({{{"data", rake::maps::pack_stream(chips)}},
                        static_cast<long long>(n_chips) + 256});
  return inst;
}

// ---------------------------------------------------------------------------
// Lane-by-lane equivalence across widths (incl. odd remainders)
// ---------------------------------------------------------------------------

TEST(BatchEquiv, DescramblerFleetAllWidths) {
  const std::size_t kChips = 1024;
  for (const auto& [n, width] : std::vector<std::pair<std::size_t, int>>{
           {5, 1}, {5, 4}, {8, 8}, {13, 16}, {16, 16}}) {
    std::vector<Inst> scalar_fleet, batched_fleet;
    for (std::size_t i = 0; i < n; ++i) {
      scalar_fleet.push_back(descrambler_inst(i, kChips));
      batched_fleet.push_back(descrambler_inst(i, kChips));
    }
    BatchedReplayEngine::Stats st;
    const auto sc = drive_scalar(scalar_fleet);
    const auto ba = drive_batched(batched_fleet, width, nullptr, &st);
    const std::string what = "descrambler n=" + std::to_string(n) +
                             " width=" + std::to_string(width);
    expect_lanes_identical(sc, ba, what);
    if (width > 1 && n > 1) {
      EXPECT_GT(st.batched_cycles, 0) << what << ": batching never engaged";
    }
  }
}

TEST(BatchEquiv, DespreaderFleetAllWidths) {
  const std::size_t kChips = 1024;
  for (const auto& [n, width] :
       std::vector<std::pair<std::size_t, int>>{{7, 8}, {16, 16}, {3, 2}}) {
    std::vector<Inst> scalar_fleet, batched_fleet;
    for (std::size_t i = 0; i < n; ++i) {
      scalar_fleet.push_back(despreader_inst(i, kChips, kChips));
      batched_fleet.push_back(despreader_inst(i, kChips, kChips));
    }
    BatchedReplayEngine::Stats st;
    const auto sc = drive_scalar(scalar_fleet);
    const auto ba = drive_batched(batched_fleet, width, nullptr, &st);
    const std::string what = "despreader n=" + std::to_string(n) +
                             " width=" + std::to_string(width);
    expect_lanes_identical(sc, ba, what);
    EXPECT_GT(st.batched_cycles, 0) << what;
    // The trailing idle drain runs every lane's input dry, so the
    // input-nonempty guard must have ejected lanes from live batches.
    EXPECT_GT(st.guard_exits, 0) << what << ": no guard ejection seen";
  }
}

TEST(BatchEquiv, Fft64FleetFeedBoundaries) {
  std::vector<Inst> scalar_fleet, batched_fleet;
  for (std::size_t i = 0; i < 4; ++i) {
    scalar_fleet.push_back(fft64_inst(i, 2));
    batched_fleet.push_back(fft64_inst(i, 2));
  }
  BatchedReplayEngine::Stats st;
  const auto sc = drive_scalar(scalar_fleet);
  const auto ba = drive_batched(batched_fleet, 4, nullptr, &st);
  expect_lanes_identical(sc, ba, "fft64");
  EXPECT_GT(st.batched_cycles, 0) << "fft64 drain epochs never batched";
}

TEST(BatchEquiv, SparseRakeFleet) {
  std::vector<Inst> scalar_fleet, batched_fleet;
  for (std::size_t i = 0; i < 6; ++i) {
    scalar_fleet.push_back(sparse_rake_inst(i, 512));
    batched_fleet.push_back(sparse_rake_inst(i, 512));
  }
  BatchedReplayEngine::Stats st;
  const auto sc = drive_scalar(scalar_fleet);
  const auto ba = drive_batched(batched_fleet, 8, nullptr, &st);
  expect_lanes_identical(sc, ba, "sparse rake");
  EXPECT_GT(st.batched_cycles, 0);
}

// ---------------------------------------------------------------------------
// Guard-mask ejection: only the failing lane leaves the batch
// ---------------------------------------------------------------------------

TEST(BatchEquiv, ForcedSingleLaneGuardDeopt) {
  // Lane 3's stream is half as long, so its input-nonempty guard fails
  // mid-run while every other lane keeps replaying.  The ejected
  // lane's trajectory (including its own scalar deopt and drain) must
  // match the scalar drive exactly.
  const std::size_t kChips = 1024;
  std::vector<Inst> scalar_fleet, batched_fleet;
  for (std::size_t i = 0; i < 8; ++i) {
    const std::size_t fed = i == 3 ? kChips / 2 : kChips;
    scalar_fleet.push_back(despreader_inst(i, kChips, fed));
    batched_fleet.push_back(despreader_inst(i, kChips, fed));
  }
  BatchedReplayEngine::Stats st;
  const auto sc = drive_scalar(scalar_fleet);
  const auto ba = drive_batched(batched_fleet, 8, nullptr, &st);
  expect_lanes_identical(sc, ba, "forced deopt");
  EXPECT_GT(st.guard_exits, 0) << "short lane was never ejected";
  EXPECT_GT(st.batched_cycles, 0) << "survivors stopped batching";
  EXPECT_LT(sc[3].out.size(), sc[0].out.size())
      << "short lane unexpectedly produced as much as full lanes";
}

// ---------------------------------------------------------------------------
// Mixed programs must never share a batch
// ---------------------------------------------------------------------------

TEST(BatchEquiv, MixedProgramsNeverShareABatch) {
  const std::size_t kChips = 1024;
  std::vector<Inst> scalar_fleet, batched_fleet;
  for (std::size_t i = 0; i < 8; ++i) {
    if (i % 2 == 0) {
      scalar_fleet.push_back(descrambler_inst(i, kChips));
      batched_fleet.push_back(descrambler_inst(i, kChips));
    } else {
      scalar_fleet.push_back(despreader_inst(i, kChips, kChips));
      batched_fleet.push_back(despreader_inst(i, kChips, kChips));
    }
  }
  BatchedReplayEngine::Stats st;
  const auto sc = drive_scalar(scalar_fleet);
  const auto ba = drive_batched(batched_fleet, 8, nullptr, &st);
  expect_lanes_identical(sc, ba, "mixed fleet");
  EXPECT_GT(st.join_rejects, 0)
      << "an armed lane of the other program was never refused";
  EXPECT_GT(st.batched_cycles, 0)
      << "same-program lanes should still have batched among themselves";
}

// ---------------------------------------------------------------------------
// Shared program cache: identical terminals compile once
// ---------------------------------------------------------------------------

TEST(BatchEquiv, SharedCacheCompilesOnceAcrossFleet) {
  const std::size_t kChips = 1024;
  std::vector<Inst> scalar_fleet, batched_fleet;
  for (std::size_t i = 0; i < 8; ++i) {
    scalar_fleet.push_back(descrambler_inst(i, kChips));
    batched_fleet.push_back(descrambler_inst(i, kChips));
  }
  BatchProgramCache cache;
  const auto sc = drive_scalar(scalar_fleet);
  const auto ba = drive_batched(batched_fleet, 8, &cache, nullptr);
  expect_lanes_identical(sc, ba, "shared cache fleet");
  long long compiles = 0, binds = 0;
  for (auto& inst : batched_fleet) {
    const auto cs = inst.mgr->sim().compiled_engine()->stats();
    compiles += cs.compiles;
    binds += cs.cache_binds;
  }
  EXPECT_EQ(compiles, 1) << "identical terminals must compile exactly once";
  EXPECT_GE(binds, 1) << "no terminal ever bound the shared image";
  EXPECT_EQ(cache.stats().inserts, 1);
  EXPECT_GE(cache.stats().hits, binds);
}

// ---------------------------------------------------------------------------
// Satellite regression: fast re-arm may enter at any phase
// ---------------------------------------------------------------------------

TEST(BatchEquiv, FastRearmEntersMidPhase) {
  // Despreader at SF=16 (16-phase epoch): the first feed is cut off
  // mid-symbol, so the stream runs dry — and the engine deoptimizes —
  // at a non-final phase.  After the refill, the resident program must
  // fast re-arm at that mid-program phase instead of sitting through a
  // full re-detection window.
  // The first feed is long enough for the engine to arm (~300 cycles
  // of detection) and replay, but cut at a non-multiple of the symbol
  // so the dry-out lands mid-program.
  const std::size_t kChips = 1024;
  const std::size_t kCut = 600;  // 600 % 16 == 8: mid-symbol dry-out
  const auto chips = random_chips(kChips, 97);
  const auto packed = rake::maps::pack_stream(chips);
  auto run = [&](SchedulerKind kind) {
    ConfigurationManager mgr({}, kind);
    const ConfigId id = mgr.load(rake::maps::despreader_config(16, 1));
    mgr.input(id, "data").feed(
        {packed.begin(), packed.begin() + static_cast<std::ptrdiff_t>(kCut)});
    mgr.sim().run(static_cast<long long>(kCut) + 200);
    mgr.input(id, "data").feed(
        {packed.begin() + static_cast<std::ptrdiff_t>(kCut), packed.end()});
    mgr.sim().run(static_cast<long long>(kChips) + 400);
    long long phase_rearms = 0;
    if (const CompiledEngine* eng = mgr.sim().compiled_engine()) {
      phase_rearms = eng->stats().phase_rearms;
    }
    return std::make_pair(mgr.output(id, "out").take(), phase_rearms);
  };
  const auto event = run(SchedulerKind::kEventDriven);
  const auto comp = run(SchedulerKind::kCompiled);
  EXPECT_EQ(event.first, comp.first) << "outputs diverged across the refill";
  EXPECT_GE(comp.second, 1) << "re-arm never entered mid-program";
}

// ---------------------------------------------------------------------------
// Dispatched kernels vs the generic table, lane by lane
// ---------------------------------------------------------------------------

TEST(BatchEquiv, DispatchedKernelsMatchGeneric) {
  const simd::Kernels& fast = simd::kernels();
  const simd::Kernels& ref = simd::generic_kernels();
  Rng rng(4242);
  const Word table[4] = {5, -7, 11, 13};
  const Opcode ops[] = {
      Opcode::kNop, Opcode::kAdd,    Opcode::kSub,      Opcode::kMul,
      Opcode::kMulShr, Opcode::kNeg, Opcode::kAbs,      Opcode::kMin,
      Opcode::kMax,    Opcode::kAnd, Opcode::kOr,       Opcode::kXor,
      Opcode::kNot,    Opcode::kShl, Opcode::kShr,      Opcode::kShrRound,
      Opcode::kEq,     Opcode::kNe,  Opcode::kLt,       Opcode::kLe,
      Opcode::kGt,     Opcode::kGe,  Opcode::kMux,      Opcode::kSwap,
      Opcode::kGate,   Opcode::kDup, Opcode::kPack,     Opcode::kUnpack,
      Opcode::kSel4,   Opcode::kCAdd, Opcode::kCSub,    Opcode::kCMulShr,
      Opcode::kCConj,  Opcode::kCNeg, Opcode::kCRotMj};
  for (const int n : {1, 3, 8, 16, 31}) {
    std::vector<Word> a(n), b(n), c(n);
    for (int i = 0; i < n; ++i) {
      a[i] = static_cast<Word>(rng.below(1u << 24)) - (1 << 23);
      b[i] = static_cast<Word>(rng.below(1u << 24)) - (1 << 23);
      c[i] = static_cast<Word>(rng.below(2));
    }
    for (const Opcode op : ops) {
      for (const bool saturate : {false, true}) {
        simd::AluCall q;
        q.op = op;
        q.saturate = saturate;
        q.shift = static_cast<int>(rng.below(8));
        q.table = table;
        q.a = a.data();
        q.b = b.data();
        q.c = c.data();
        q.n = n;
        std::vector<Word> fr0(n, 0), fr1(n, 0), rr0(n, 0), rr1(n, 0);
        q.r0 = fr0.data();
        q.r1 = fr1.data();
        fast.alu(q);
        q.r0 = rr0.data();
        q.r1 = rr1.data();
        ref.alu(q);
        EXPECT_EQ(fr0, rr0) << opcode_name(op) << " n=" << n
                            << " sat=" << saturate << ": r0 diverged";
        EXPECT_EQ(fr1, rr1) << opcode_name(op) << " n=" << n
                            << " sat=" << saturate << ": r1 diverged";
      }
    }

    // Counter / accumulator / guard-mask kernels.
    std::vector<Word> v0(n), r0(n), o0f(n), o1f(n), o0r(n), o1r(n);
    for (int i = 0; i < n; ++i) {
      v0[i] = static_cast<Word>(rng.below(16));
      r0[i] = static_cast<Word>(rng.below(16)) + 1;
    }
    auto vf = v0, vr = v0, rf = r0, rr = r0;
    fast.counter(vf.data(), rf.data(), 2, 3, 16, o0f.data(), o1f.data(), n);
    ref.counter(vr.data(), rr.data(), 2, 3, 16, o0r.data(), o1r.data(), n);
    EXPECT_EQ(vf, vr);
    EXPECT_EQ(rf, rr);
    EXPECT_EQ(o0f, o0r);
    EXPECT_EQ(o1f, o1r);

    for (const bool dump : {false, true}) {
      auto af = a, ar = a;
      std::vector<Word> df(n, 0), dr(n, 0);
      fast.accum(af.data(), b.data(), true, dump, 2, df.data(), n);
      ref.accum(ar.data(), b.data(), true, dump, 2, dr.data(), n);
      EXPECT_EQ(af, ar) << "accum dump=" << dump;
      EXPECT_EQ(df, dr) << "accum dump=" << dump;

      std::vector<long long> ref_(n, 1), imf(n, -2), rer(n, 1), imr(n, -2);
      std::vector<Word> cf(n, 0), cr(n, 0);
      fast.caccum(ref_.data(), imf.data(), a.data(), dump, 1, cf.data(), n);
      ref.caccum(rer.data(), imr.data(), a.data(), dump, 1, cr.data(), n);
      EXPECT_EQ(ref_, rer) << "caccum dump=" << dump;
      EXPECT_EQ(imf, imr) << "caccum dump=" << dump;
      EXPECT_EQ(cf, cr) << "caccum dump=" << dump;
    }

    for (const bool expect : {false, true}) {
      EXPECT_EQ(fast.fail_mask(c.data(), expect, n),
                ref.fail_mask(c.data(), expect, n))
          << "fail_mask expect=" << expect << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace rsp::xpp

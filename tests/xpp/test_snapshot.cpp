// Differential battery for bit-exact snapshot/restore (`ctest -L
// snapshot`).
//
// The contract under test (src/xpp/snapshot.hpp): a run that is saved
// at cycle C and restored into a fresh manager continues with a
// trajectory bit-identical to the uninterrupted run — same per-cycle
// fire counts, same outputs, same per-object statistics — under every
// SchedulerKind, including a snapshot taken mid-compiled-epoch and one
// taken inside an armed fault window.  Corrupted bytes (truncated,
// bit-flipped, wrong magic/version, wrong CRC) must be rejected with
// SnapshotError before any state is touched.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/dedhw/crc.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/farm/resilient.hpp"
#include "src/ofdm/maps.hpp"
#include "src/chan/maps.hpp"
#include "src/rake/maps.hpp"
#include "src/sdr/board.hpp"
#include "src/vit/maps.hpp"
#include "src/xpp/compiled.hpp"
#include "src/xpp/fault.hpp"
#include "src/xpp/snapshot.hpp"

namespace rsp::xpp {
namespace {

std::vector<CplxI> random_chips(std::size_t n, std::uint64_t seed,
                                int amp = 1000) {
  Rng rng(seed);
  std::vector<CplxI> out(n);
  for (auto& c : out) {
    c = {static_cast<int>(rng.below(static_cast<std::uint32_t>(2 * amp))) - amp,
         static_cast<int>(rng.below(static_cast<std::uint32_t>(2 * amp))) - amp};
  }
  return out;
}

std::map<std::string, std::vector<Word>> descrambler_feeds(std::size_t n,
                                                           std::uint64_t seed) {
  const auto chips = random_chips(n, seed);
  dedhw::UmtsScrambler scr(16);
  std::vector<Word> code_words(chips.size());
  for (auto& c : code_words) c = scr.next2() & 3;
  return {{"data", rake::maps::pack_stream(chips)}, {"code", code_words}};
}

/// Observable trajectory from some point of a run onward.
struct Trace {
  std::vector<int> fires_per_cycle;
  long long final_cycle = 0;
  long long total_fires = 0;
  std::vector<ObjectStats> stats;
  std::vector<Word> out;

  friend bool operator==(const Trace&, const Trace&) = default;
};

Trace collect(ConfigurationManager& mgr, ConfigId id, std::size_t n_out) {
  Trace t;
  auto& out = mgr.output(id, "out");
  for (int guard = 0; guard < 200000 && out.data().size() < n_out; ++guard) {
    t.fires_per_cycle.push_back(mgr.sim().step());
  }
  EXPECT_GE(out.data().size(), n_out) << "timed out";
  t.final_cycle = mgr.sim().cycle();
  t.total_fires = mgr.sim().total_fires();
  t.stats = mgr.sim().stats(mgr.info(id).group);
  t.out = out.take();
  return t;
}

/// Run @p cfg to @p n_out outputs, snapshotting at @p cut_cycle and
/// finishing the run in the RESTORED manager.  The returned trace
/// covers the post-cut trajectory plus the full output stream (output
/// words collected before the cut travel inside the snapshot).
Trace run_with_cut(SchedulerKind kind, const Configuration& cfg,
                   const std::map<std::string, std::vector<Word>>& feeds,
                   std::size_t n_out, long long cut_cycle) {
  ConfigurationManager mgr({}, kind);
  const ConfigId id = mgr.load(cfg);
  for (const auto& [name, words] : feeds) mgr.input(id, name).feed(words);
  while (mgr.sim().cycle() < cut_cycle) mgr.sim().step();

  const std::string bytes = save_snapshot(mgr);
  auto restored = restore_snapshot_new(bytes);
  return collect(*restored, id, n_out);
}

/// The uninterrupted reference: same run, no snapshot, trace recorded
/// from @p cut_cycle on (so it is comparable to run_with_cut).
Trace run_uninterrupted(SchedulerKind kind, const Configuration& cfg,
                        const std::map<std::string, std::vector<Word>>& feeds,
                        std::size_t n_out, long long cut_cycle) {
  ConfigurationManager mgr({}, kind);
  const ConfigId id = mgr.load(cfg);
  for (const auto& [name, words] : feeds) mgr.input(id, name).feed(words);
  while (mgr.sim().cycle() < cut_cycle) mgr.sim().step();
  return collect(mgr, id, n_out);
}

void expect_identical(const Trace& ref, const Trace& cut,
                      const std::string& what) {
  EXPECT_EQ(ref.fires_per_cycle, cut.fires_per_cycle)
      << what << ": per-cycle fire trace diverged after restore";
  EXPECT_EQ(ref.final_cycle, cut.final_cycle) << what;
  EXPECT_EQ(ref.total_fires, cut.total_fires) << what;
  EXPECT_EQ(ref.out, cut.out) << what << ": output words diverged";
  ASSERT_EQ(ref.stats.size(), cut.stats.size()) << what;
  for (std::size_t i = 0; i < ref.stats.size(); ++i) {
    EXPECT_EQ(ref.stats[i].name, cut.stats[i].name) << what;
    EXPECT_EQ(ref.stats[i].fires, cut.stats[i].fires)
        << what << ": object '" << ref.stats[i].name << "'";
  }
}

const SchedulerKind kAllKinds[] = {
    SchedulerKind::kScan, SchedulerKind::kEventDriven,
    SchedulerKind::kCompiled};

TEST(Snapshot, DescramblerCutPointsAllSchedulers) {
  const auto feeds = descrambler_feeds(384, 11);
  const auto cfg = rake::maps::descrambler_config();
  for (const SchedulerKind kind : kAllKinds) {
    for (const long long cut : {1LL, 7LL, 40LL, 173LL}) {
      const std::string what = "descrambler kind=" +
                               std::to_string(static_cast<int>(kind)) +
                               " cut=" + std::to_string(cut);
      expect_identical(run_uninterrupted(kind, cfg, feeds, 384, cut),
                       run_with_cut(kind, cfg, feeds, 384, cut), what);
    }
  }
}

TEST(Snapshot, DespreaderCutPointsAllSchedulers) {
  for (const int sf : {4, 64}) {
    const auto chips = random_chips(static_cast<std::size_t>(sf) * 8, 23);
    const std::map<std::string, std::vector<Word>> feeds{
        {"data", rake::maps::pack_stream(chips)}};
    const auto cfg = rake::maps::despreader_config(sf, 1);
    for (const SchedulerKind kind : kAllKinds) {
      for (const long long cut : {3LL, 29LL}) {
        const std::string what = "despreader sf=" + std::to_string(sf) +
                                 " kind=" +
                                 std::to_string(static_cast<int>(kind)) +
                                 " cut=" + std::to_string(cut);
        expect_identical(
            run_uninterrupted(kind, cfg, feeds, chips.size() / sf, cut),
            run_with_cut(kind, cfg, feeds, chips.size() / sf, cut), what);
      }
    }
  }
}

TEST(Snapshot, MidCompiledEpochCut) {
  // Steady streaming under kCompiled arms the epoch engine; a snapshot
  // taken while armed deoptimizes, restores to a fresh detector, and
  // the post-restore trajectory must still be bit-identical even
  // though the restored run re-arms at a different cycle (or never).
  const auto feeds = descrambler_feeds(2048, 31);
  const auto cfg = rake::maps::descrambler_config();

  ConfigurationManager mgr({}, SchedulerKind::kCompiled);
  const ConfigId id = mgr.load(cfg);
  for (const auto& [name, words] : feeds) mgr.input(id, name).feed(words);
  int guard = 0;
  while (guard++ < 100000 &&
         !(mgr.sim().compiled_engine() && mgr.sim().compiled_engine()->armed())) {
    mgr.sim().step();
  }
  ASSERT_TRUE(mgr.sim().compiled_engine() != nullptr &&
              mgr.sim().compiled_engine()->armed())
      << "engine never armed — the cut would not be mid-epoch";
  for (int i = 0; i < 3; ++i) mgr.sim().step();  // land inside the epoch
  const long long cut = mgr.sim().cycle();

  const std::string bytes = save_snapshot(mgr);
  auto restored = restore_snapshot_new(bytes);
  const Trace a = collect(mgr, id, 2048);  // save() must not perturb
  auto restored_trace = collect(*restored, id, 2048);
  expect_identical(a, restored_trace, "mid-epoch cut at " + std::to_string(cut));
}

TEST(Snapshot, MidFaultWindowCut) {
  // A stuck-at window straddling the cut plus a live SEU process: the
  // restored run must replay the identical fault stream, so trajectory
  // AND injector log match the uninterrupted run.
  const auto feeds = descrambler_feeds(512, 47);
  const auto cfg = rake::maps::descrambler_config();

  FaultPlan plan;
  plan.faults.push_back({FaultKind::kStuckObject, 10, "cmul", -1, 0, 0, 55});
  plan.faults.push_back({FaultKind::kNetBitFlip, 25, "codemux", -1, 0, 5});
  plan.seu = {0.05, 97, 0, 4000};

  for (const SchedulerKind kind : kAllKinds) {
    auto run = [&](bool with_cut) {
      ConfigurationManager mgr({}, kind);
      FaultInjector inj(plan);
      mgr.sim().install_faults(&inj);
      const ConfigId id = mgr.load(cfg);
      for (const auto& [name, words] : feeds) mgr.input(id, name).feed(words);
      while (mgr.sim().cycle() < 30) mgr.sim().step();  // inside the window
      if (!with_cut) {
        Trace t = collect(mgr, id, 512);
        return std::make_pair(t, inj.log());
      }
      const std::string bytes = save_snapshot(mgr, &inj);
      EXPECT_TRUE(peek_snapshot(bytes).has_fault_state);
      FaultInjector inj2;
      auto restored = restore_snapshot_new(bytes, &inj2);
      Trace t = collect(*restored, id, 512);
      return std::make_pair(t, inj2.log());
    };
    const auto ref = run(false);
    const auto cut = run(true);
    const std::string what =
        "fault cut kind=" + std::to_string(static_cast<int>(kind));
    expect_identical(ref.first, cut.first, what);
    EXPECT_EQ(ref.second, cut.second) << what << ": fault logs diverged";
  }
}

TEST(Snapshot, PeekReportsHeader) {
  const auto feeds = descrambler_feeds(64, 3);
  ConfigurationManager mgr({}, SchedulerKind::kEventDriven);
  const ConfigId id = mgr.load(rake::maps::descrambler_config());
  for (const auto& [name, words] : feeds) mgr.input(id, name).feed(words);
  for (int i = 0; i < 17; ++i) mgr.sim().step();

  const SnapshotInfo info = peek_snapshot(save_snapshot(mgr));
  EXPECT_EQ(info.version, kSnapshotVersion);
  EXPECT_EQ(info.scheduler, SchedulerKind::kEventDriven);
  EXPECT_EQ(info.cycle, mgr.sim().cycle());
  EXPECT_EQ(info.configs, 1u);
  EXPECT_FALSE(info.has_fault_state);
}

TEST(Snapshot, RejectsNonFreshTarget) {
  ConfigurationManager mgr({}, SchedulerKind::kEventDriven);
  const std::string bytes = save_snapshot(mgr);
  ConfigurationManager dirty({}, SchedulerKind::kEventDriven);
  dirty.sim().run(5);
  EXPECT_THROW(restore_snapshot(dirty, bytes), SnapshotError);
}

TEST(Snapshot, RejectsGeometryAndSchedulerMismatch) {
  ConfigurationManager mgr({}, SchedulerKind::kEventDriven);
  const std::string bytes = save_snapshot(mgr);

  ArrayGeometry small;
  small.rows = 4;
  ConfigurationManager wrong_geom(small, SchedulerKind::kEventDriven);
  EXPECT_THROW(restore_snapshot(wrong_geom, bytes), SnapshotError);

  ConfigurationManager wrong_sched({}, SchedulerKind::kScan);
  EXPECT_THROW(restore_snapshot(wrong_sched, bytes), SnapshotError);
}

TEST(Snapshot, MissingInjectorForFaultStateRejected) {
  ConfigurationManager mgr({}, SchedulerKind::kEventDriven);
  FaultInjector inj(FaultPlan{{{FaultKind::kNetBitFlip, 100, "x"}}, {}});
  mgr.sim().install_faults(&inj);
  const std::string bytes = save_snapshot(mgr, &inj);
  ConfigurationManager fresh({}, SchedulerKind::kEventDriven);
  EXPECT_THROW(restore_snapshot(fresh, bytes, nullptr), SnapshotError);
}

TEST(SnapshotCrc, KnownVector) {
  // The canonical CRC-32 check value: crc32("123456789") = 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(snap::crc32(s, 9), 0xCBF43926u);
}

TEST(SnapshotCrc, MatchesBitwiseDedhwCrc) {
  // snap::crc32 is the reflected form of the same IEEE 802.3
  // polynomial the bitwise dedhw::Crc engine can compute: feeding each
  // byte LSB-first into an MSB-first register with poly 0x04C11DB7 and
  // bit-reversing the result must agree exactly.
  const dedhw::Crc engine(32, 0x04C11DB7u, 0xFFFFFFFFu, 0xFFFFFFFFu);
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::string data(trial * 7 + 1, '\0');
    for (auto& c : data) c = static_cast<char>(rng.below(256));
    std::vector<std::uint8_t> bits;
    for (const char c : data) {
      for (int b = 0; b < 8; ++b) {
        bits.push_back((static_cast<unsigned char>(c) >> b) & 1u);
      }
    }
    std::uint32_t msb = engine.compute(bits);
    std::uint32_t reflected = 0;
    for (int b = 0; b < 32; ++b) {
      reflected = (reflected << 1) | ((msb >> b) & 1u);
    }
    EXPECT_EQ(snap::crc32(data.data(), data.size()), reflected)
        << "trial " << trial;
  }
}

/// A small but non-trivial snapshot for the corruption fuzz.
std::string fuzz_snapshot_bytes(std::uint64_t seed) {
  const auto feeds = descrambler_feeds(64, seed);
  ConfigurationManager mgr({}, SchedulerKind::kEventDriven);
  const ConfigId id = mgr.load(rake::maps::descrambler_config());
  for (const auto& [name, words] : feeds) mgr.input(id, name).feed(words);
  const int cut = static_cast<int>(Rng(seed).below(50));
  for (int i = 0; i < cut; ++i) mgr.sim().step();
  return save_snapshot(mgr);
}

TEST(SnapshotFuzz, TruncationAlwaysDetected) {
  const std::string bytes = fuzz_snapshot_bytes(1);
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t seed = Rng::split(0xF00D, trial);
    const std::size_t cut =
        Rng(seed).below(static_cast<std::uint32_t>(bytes.size()));
    const std::string truncated = bytes.substr(0, cut);
    EXPECT_THROW(restore_snapshot_new(truncated), SnapshotError)
        << "truncated to " << cut << " of " << bytes.size();
  }
}

TEST(SnapshotFuzz, BitFlipAlwaysDetected) {
  // Any single flipped bit — header or payload — must be caught at the
  // frame check (magic/version/length/CRC), never surface as UB or a
  // partially applied restore.
  const std::string bytes = fuzz_snapshot_bytes(2);
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t seed = Rng::split(0xBEEF, trial);
    Rng rng(seed);
    std::string mutated = bytes;
    const std::size_t byte =
        rng.below(static_cast<std::uint32_t>(mutated.size()));
    mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << rng.below(8)));
    EXPECT_THROW(restore_snapshot_new(mutated), SnapshotError)
        << "flip in byte " << byte;
  }
}

TEST(SnapshotFuzz, WrongVersionAndWrongCrcDiagnosed) {
  const std::string bytes = fuzz_snapshot_bytes(3);

  std::string wrong_version = bytes;
  wrong_version[8] = static_cast<char>(wrong_version[8] ^ 0x7F);  // version LSB
  try {
    (void)restore_snapshot_new(wrong_version);
    FAIL() << "wrong version accepted";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }

  std::string wrong_crc = bytes;
  wrong_crc[20] = static_cast<char>(wrong_crc[20] ^ 0x01);  // CRC field
  try {
    (void)restore_snapshot_new(wrong_crc);
    FAIL() << "wrong CRC accepted";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos) << e.what();
  }

  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_THROW(restore_snapshot_new(wrong_magic), SnapshotError);
}

TEST(SnapshotFile, AtomicWriteRoundTrip) {
  const auto feeds = descrambler_feeds(64, 9);
  ConfigurationManager mgr({}, SchedulerKind::kEventDriven);
  const ConfigId id = mgr.load(rake::maps::descrambler_config());
  for (const auto& [name, words] : feeds) mgr.input(id, name).feed(words);
  for (int i = 0; i < 23; ++i) mgr.sim().step();

  const std::string path = ::testing::TempDir() + "rsp_snapshot_test.bin";
  save_snapshot_file(path, mgr);
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr) << "temp file left behind";
  if (tmp) std::fclose(tmp);

  auto restored = restore_snapshot_file(path);
  EXPECT_EQ(restored->sim().cycle(), mgr.sim().cycle());
  std::remove(path.c_str());

  EXPECT_THROW((void)restore_snapshot_file(path + ".does-not-exist"),
               SnapshotError);
}

TEST(SdrBoardSnapshot, RoundTripWithAccounting) {
  sdr::SdrBoard board({}, SchedulerKind::kEventDriven);
  board.dsp().charge("agc", dsp::DspOp::kMac, 120);
  board.dsp().charge("sync", dsp::DspOp::kDiv, 3);
  board.microcontroller().charge("mac-layer", dsp::DspOp::kBranch, 40);
  board.fpga_route(4096);

  const auto feeds = descrambler_feeds(256, 21);
  const ConfigId id = board.array().load(rake::maps::descrambler_config());
  for (const auto& [name, words] : feeds) {
    board.array().input(id, name).feed(words);
  }
  while (board.array().sim().cycle() < 37) board.array().sim().step();

  const std::string bytes = sdr::save_board_snapshot(board);
  auto restored = sdr::restore_board_snapshot_new(bytes);

  EXPECT_EQ(restored->dsp().total_instructions(),
            board.dsp().total_instructions());
  EXPECT_EQ(restored->dsp().total_cycles(), board.dsp().total_cycles());
  EXPECT_EQ(restored->dsp().tasks().size(), board.dsp().tasks().size());
  EXPECT_EQ(restored->microcontroller().total_cycles(),
            board.microcontroller().total_cycles());
  EXPECT_EQ(restored->fpga_words_routed(), 4096);

  Trace a = collect(board.array(), id, 256);
  Trace b = collect(restored->array(), id, 256);
  expect_identical(a, b, "board round trip");
}

TEST(SdrBoardSnapshot, CorruptionRejected) {
  sdr::SdrBoard board;
  const std::string bytes = sdr::save_board_snapshot(board);
  for (int trial = 0; trial < 20; ++trial) {
    Rng rng(Rng::split(0xB0A7D, trial));
    std::string mutated = bytes;
    const std::size_t byte =
        rng.below(static_cast<std::uint32_t>(mutated.size()));
    mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << rng.below(8)));
    EXPECT_THROW((void)sdr::restore_board_snapshot_new(mutated), SnapshotError);
  }
}

TEST(CheckpointFuzz, RoundTripAndCorruptionDetected) {
  // Campaign checkpoints ride the same frame machinery; corrupt bytes
  // must throw before any field is trusted, and a clean round trip must
  // be field-exact.
  farm::CampaignCheckpoint ck;
  ck.base_seed = 0xDEADBEEF;
  ck.n_tasks = 17;
  ck.tag = "fuzz-campaign";
  ck.retries = 3;
  ck.outcomes.resize(17);
  ck.per_task.resize(17);
  for (std::size_t i = 0; i < 17; ++i) {
    if (i % 3 == 0) continue;  // kPending
    ck.outcomes[i].status =
        i % 5 == 0 ? farm::TaskStatus::kFailed : farm::TaskStatus::kOk;
    ck.outcomes[i].attempts = static_cast<int>(i % 4 + 1);
    if (i % 5 == 0) ck.outcomes[i].error = "poisoned seed";
    ck.per_task[i] = {i * 100, i, i / 2, i % 2};
  }

  const std::string bytes = farm::encode_campaign_checkpoint(ck);
  EXPECT_EQ(farm::decode_campaign_checkpoint(bytes), ck);

  for (int trial = 0; trial < 40; ++trial) {
    Rng rng(Rng::split(0xC4EC, trial));
    std::string mutated = bytes;
    if (trial % 2 == 0) {
      mutated.resize(rng.below(static_cast<std::uint32_t>(mutated.size())));
    } else {
      const std::size_t byte =
          rng.below(static_cast<std::uint32_t>(mutated.size()));
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << rng.below(8)));
    }
    EXPECT_THROW((void)farm::decode_campaign_checkpoint(mutated),
                 SnapshotError)
        << "trial " << trial;
  }

  EXPECT_THROW((void)farm::load_campaign_checkpoint(
                   ::testing::TempDir() + "rsp_no_such_checkpoint.bin"),
               SnapshotError);
}

TEST(Snapshot, MultiConfigResidencyRoundTrip) {
  // Two resident configurations (the Figure 10 always-on shape): both
  // must survive the round trip, including ResourceMap occupancy —
  // proven by releasing one after restore and loading a third into the
  // freed cells.
  const auto chips = random_chips(128, 57);
  auto run = [&](bool with_cut) {
    ConfigurationManager mgr({}, SchedulerKind::kEventDriven);
    const ConfigId d = mgr.load(rake::maps::descrambler_config());
    const ConfigId p = mgr.load(rake::maps::despreader_config(16, 2));
    dedhw::UmtsScrambler scr(9);
    std::vector<Word> code_words(chips.size());
    for (auto& c : code_words) c = scr.next2() & 3;
    mgr.input(d, "data").feed(rake::maps::pack_stream(chips));
    mgr.input(d, "code").feed(code_words);
    mgr.input(p, "data").feed(rake::maps::pack_stream(chips));
    for (int i = 0; i < 40; ++i) mgr.sim().step();

    std::unique_ptr<ConfigurationManager> restored;
    ConfigurationManager* m = &mgr;
    if (with_cut) {
      restored = restore_snapshot_new(save_snapshot(mgr));
      m = restored.get();
      EXPECT_TRUE(m->loaded(d) && m->loaded(p));
    }
    m->release(p);
    const ConfigId q = m->load(rake::maps::despreader_config(16, 2));
    std::vector<int> fires;
    for (int i = 0; i < 200; ++i) fires.push_back(m->sim().step());
    auto out = m->output(d, "out").take();
    return std::make_tuple(fires, out, m->sim().cycle(), m->sim().total_fires(),
                           q);
  };
  EXPECT_EQ(run(false), run(true));
}

/// Like run_with_cut/run_uninterrupted but for configurations whose
/// outputs are not named "out": drains every channel in @p outs until
/// each holds @p n_out words.
std::tuple<std::vector<int>, std::vector<std::vector<Word>>, long long>
multi_out_run(SchedulerKind kind, const Configuration& cfg,
              const std::map<std::string, std::vector<Word>>& feeds,
              const std::vector<std::string>& outs, std::size_t n_out,
              long long cut_cycle, bool with_cut) {
  ConfigurationManager mgr({}, kind);
  const ConfigId id = mgr.load(cfg);
  for (const auto& [name, words] : feeds) mgr.input(id, name).feed(words);
  while (mgr.sim().cycle() < cut_cycle) mgr.sim().step();

  std::unique_ptr<ConfigurationManager> restored;
  ConfigurationManager* m = &mgr;
  if (with_cut) {
    restored = restore_snapshot_new(save_snapshot(mgr));
    m = restored.get();
  }
  const auto drained = [&] {
    for (const auto& name : outs) {
      if (m->output(id, name).data().size() < n_out) return false;
    }
    return true;
  };
  std::vector<int> fires;
  for (int guard = 0; guard < 200000 && !drained(); ++guard) {
    fires.push_back(m->sim().step());
  }
  EXPECT_TRUE(drained()) << cfg.name << ": timed out";
  std::vector<std::vector<Word>> words;
  for (const auto& name : outs) words.push_back(m->output(id, name).take());
  return {std::move(fires), std::move(words), m->sim().cycle()};
}

// Mid-decode cut of the Viterbi ACS workload: the ping-ponged
// path-metric RAMs, the gated counter and the half-drained survivor
// stream all travel through the snapshot bit-exactly.
TEST(Snapshot, MidViterbiDecodeCutAllSchedulers) {
  Rng rng(314);
  const std::size_t steps = 30;
  std::vector<Word> feed;
  for (std::size_t step = 0; step < steps; ++step) {
    const Word w = pack_iq(static_cast<int>(rng.below(4095)) - 2047,
                           static_cast<int>(rng.below(4095)) - 2047);
    for (int s = 0; s < 64; ++s) feed.push_back(w);
  }
  const std::map<std::string, std::vector<Word>> feeds{{"soft", feed}};
  const auto cfg = vit::acs_config();
  for (const SchedulerKind kind : kAllKinds) {
    for (const long long cut : {5LL, 801LL}) {
      const std::string what = "viterbi kind=" +
                               std::to_string(static_cast<int>(kind)) +
                               " cut=" + std::to_string(cut);
      EXPECT_EQ(multi_out_run(kind, cfg, feeds, {"surv"}, steps * 64, cut,
                              false),
                multi_out_run(kind, cfg, feeds, {"surv"}, steps * 64, cut,
                              true))
          << what;
    }
  }
}

// Mid-channelize cut: the free-running commutator counter, the
// preloaded-zero FIR delay nets and four partially drained sub-band
// streams restore bit-exactly (the config never quiesces, so the cut
// always lands mid-flight).
TEST(Snapshot, MidChannelizeCutAllSchedulers) {
  Rng rng(315);
  std::vector<Word> feed(128);
  for (auto& w : feed) {
    w = pack_iq(static_cast<int>(rng.below(4095)) - 2047,
                static_cast<int>(rng.below(4095)) - 2047);
  }
  const std::map<std::string, std::vector<Word>> feeds{{"x", feed}};
  const std::vector<std::string> bands{"band0", "band1", "band2", "band3"};
  const auto cfg = chan::channelizer_config();
  for (const SchedulerKind kind : kAllKinds) {
    for (const long long cut : {4LL, 57LL}) {
      const std::string what = "channelizer kind=" +
                               std::to_string(static_cast<int>(kind)) +
                               " cut=" + std::to_string(cut);
      EXPECT_EQ(multi_out_run(kind, cfg, feeds, bands, feed.size() / 4, cut,
                              false),
                multi_out_run(kind, cfg, feeds, bands, feed.size() / 4, cut,
                              true))
          << what;
    }
  }
}

}  // namespace
}  // namespace rsp::xpp

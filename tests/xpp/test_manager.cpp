#include "src/xpp/manager.hpp"

#include <gtest/gtest.h>

#include "src/xpp/builder.hpp"
#include "src/xpp/runner.hpp"

namespace rsp::xpp {
namespace {

Configuration passthrough(const std::string& name) {
  ConfigBuilder b(name);
  const auto in = b.input("in");
  const auto a = b.alu("nop", Opcode::kNop);
  const auto out = b.output("out");
  b.connect(in.out(0), a.in(0));
  b.connect(a.out(0), out.in(0));
  return b.build();
}

TEST(Manager, LoadChargesConfigurationTime) {
  ConfigurationManager mgr;
  const auto cfg = passthrough("p");
  const long long before = mgr.sim().cycle();
  const ConfigId id = mgr.load(cfg);
  EXPECT_EQ(mgr.sim().cycle() - before, config_load_cycles(cfg));
  EXPECT_EQ(mgr.info(id).load_cycles, config_load_cycles(cfg));
  EXPECT_GT(config_load_cycles(cfg), 0);
}

TEST(Manager, InfoTracksResources) {
  ConfigurationManager mgr;
  const ConfigId id = mgr.load(passthrough("p"));
  const LoadedConfig& info = mgr.info(id);
  EXPECT_EQ(info.alu_cells, 1);
  EXPECT_EQ(info.ram_cells, 0);
  EXPECT_EQ(info.io_channels, 2);
  EXPECT_GT(info.routing_segments, 0);
  EXPECT_EQ(info.name, "p");
}

TEST(Manager, ReleaseFreesResources) {
  ConfigurationManager mgr;
  const ConfigId id = mgr.load(passthrough("p"));
  mgr.release(id);
  EXPECT_FALSE(mgr.loaded(id));
  EXPECT_EQ(mgr.resources().used_alu_cells(), 0);
  EXPECT_THROW((void)mgr.info(id), ConfigError);
  EXPECT_THROW(mgr.release(id), ConfigError);
}

TEST(Manager, ResidentConfigKeepsRunningDuringLoad) {
  // Partial runtime reconfiguration: configuration 1 stays live while
  // configuration 2 is written (the Figure 10 mechanism).
  ConfigurationManager mgr;
  const ConfigId a = mgr.load(passthrough("a"));
  mgr.input(a, "in").feed(std::vector<Word>(200, 7));
  // Loading b advances the clock by its configuration time; a's
  // pipeline must process tokens during those cycles.
  const ConfigId b = mgr.load(passthrough("b"));
  EXPECT_GT(mgr.output(a, "out").data().size(), 0u)
      << "resident config must execute during reconfiguration";
  mgr.release(b);
  mgr.release(a);
}

TEST(Manager, IndependentGroupsCoexist) {
  ConfigurationManager mgr;
  const ConfigId a = mgr.load(passthrough("a"));
  const ConfigId b = mgr.load(passthrough("b"));
  mgr.input(a, "in").feed({1, 2, 3});
  mgr.input(b, "in").feed({9, 8});
  mgr.sim().run_until_quiescent(100);
  EXPECT_EQ(mgr.output(a, "out").data(), (std::vector<Word>{1, 2, 3}));
  EXPECT_EQ(mgr.output(b, "out").data(), (std::vector<Word>{9, 8}));
}

TEST(Manager, ReleasedCellsReusableByNextConfig) {
  ConfigurationManager mgr;
  ConfigBuilder b1("big");
  for (int i = 0; i < 60; ++i) {
    const auto a = b1.alu("a" + std::to_string(i), Opcode::kNop);
    b1.tie(a, 0, 0);
  }
  const ConfigId big = mgr.load(b1.build());
  // A second large config cannot fit...
  ConfigBuilder b2("second");
  for (int i = 0; i < 10; ++i) {
    const auto a = b2.alu("b" + std::to_string(i), Opcode::kNop);
    b2.tie(a, 0, 0);
  }
  const auto cfg2 = b2.build();
  EXPECT_THROW((void)mgr.load(cfg2), ConfigError);
  // ...until the first is released (freed resources are reallocated).
  mgr.release(big);
  EXPECT_NO_THROW((void)mgr.load(cfg2));
}

TEST(Manager, RemoveGroupMidRunLeavesNoStaleWaiters) {
  // Partial reconfiguration under the event-driven scheduler: releasing
  // a configuration whose tokens are still in flight must purge its
  // objects/nets from the worklist and dirty-net list, and the array
  // must keep running afterwards.
  ConfigurationManager mgr;
  const ConfigId a = mgr.load(passthrough("a"));
  const ConfigId b = mgr.load(passthrough("b"));
  mgr.input(b, "in").feed(std::vector<Word>(100, 3));
  mgr.sim().run(3);  // b mid-stream: staged tokens, queued objects
  mgr.release(b);    // stale waiters would now dangle
  mgr.sim().run_until_quiescent(50);
  mgr.input(a, "in").feed({1, 2, 3, 4});
  mgr.sim().run_until_quiescent(100);
  EXPECT_EQ(mgr.output(a, "out").data(), (std::vector<Word>{1, 2, 3, 4}));
  // Freed cells are immediately reusable by a new configuration.
  const ConfigId c = mgr.load(passthrough("c"));
  mgr.input(c, "in").feed({7});
  mgr.sim().run_until_quiescent(100);
  EXPECT_EQ(mgr.output(c, "out").data(), (std::vector<Word>{7}));
}

TEST(Manager, RemoveGroupMidRunKeepsSurvivorStateIntact) {
  // Reference: configuration a running alone.
  const std::vector<Word> feed_a{5, 6, 7, 8, 9};
  std::vector<ObjectStats> solo_stats;
  std::vector<Word> solo_out;
  {
    ConfigurationManager mgr;
    const ConfigId a = mgr.load(passthrough("a"));
    mgr.input(a, "in").feed(feed_a);
    mgr.sim().run_until_quiescent(200);
    solo_out = mgr.output(a, "out").data();
    solo_stats = mgr.sim().stats(mgr.info(a).group);
  }
  // Same configuration with a sibling released mid-run: a's outputs and
  // per-object fire counts must be byte-identical to the solo run.
  ConfigurationManager mgr;
  const ConfigId a = mgr.load(passthrough("a"));
  const ConfigId b = mgr.load(passthrough("b"));
  mgr.input(b, "in").feed(std::vector<Word>(64, 1));
  mgr.sim().run(5);
  mgr.release(b);
  mgr.sim().run_until_quiescent(50);
  mgr.input(a, "in").feed(feed_a);
  mgr.sim().run_until_quiescent(200);
  EXPECT_EQ(mgr.output(a, "out").data(), solo_out);
  const auto stats = mgr.sim().stats(mgr.info(a).group);
  ASSERT_EQ(stats.size(), solo_stats.size());
  for (std::size_t i = 0; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].name, solo_stats[i].name);
    EXPECT_EQ(stats[i].fires, solo_stats[i].fires) << stats[i].name;
  }
}

TEST(Manager, FindUsesPerGroupIndex) {
  ConfigurationManager mgr;
  const ConfigId a = mgr.load(passthrough("a"));
  const ConfigId b = mgr.load(passthrough("b"));
  auto& sim = mgr.sim();
  EXPECT_NE(sim.find(mgr.info(a).group, "nop"), nullptr);
  EXPECT_NE(sim.find(mgr.info(b).group, "nop"), nullptr);
  EXPECT_NE(sim.find(mgr.info(a).group, "nop"),
            sim.find(mgr.info(b).group, "nop"))
      << "same name in different groups resolves per group";
  EXPECT_EQ(sim.find(mgr.info(a).group, "absent"), nullptr);
  EXPECT_EQ(sim.find(9999, "nop"), nullptr);
}

TEST(Manager, UnknownIoNameThrows) {
  ConfigurationManager mgr;
  const ConfigId id = mgr.load(passthrough("p"));
  EXPECT_THROW((void)mgr.input(id, "nope"), ConfigError);
  EXPECT_THROW((void)mgr.output(id, "in"), ConfigError)
      << "input object is not an output";
}

TEST(Manager, RunnerCollectsOutputs) {
  ConfigurationManager mgr;
  const auto r =
      run_config(mgr, passthrough("p"), {{"in", {4, 5, 6}}}, {{"out", 3}});
  EXPECT_EQ(r.outputs.at("out"), (std::vector<Word>{4, 5, 6}));
  EXPECT_GT(r.cycles, 0);
  EXPECT_EQ(mgr.resources().used_alu_cells(), 0) << "runner releases";
}

TEST(Manager, RunnerThrowsOnStarvedGraph) {
  ConfigurationManager mgr;
  EXPECT_THROW(
      (void)run_config(mgr, passthrough("p"), {{"in", {1}}}, {{"out", 2}}),
      ConfigError);
}

}  // namespace
}  // namespace rsp::xpp

#include "src/xpp/manager.hpp"

#include <gtest/gtest.h>

#include "src/xpp/builder.hpp"
#include "src/xpp/runner.hpp"

namespace rsp::xpp {
namespace {

Configuration passthrough(const std::string& name) {
  ConfigBuilder b(name);
  const auto in = b.input("in");
  const auto a = b.alu("nop", Opcode::kNop);
  const auto out = b.output("out");
  b.connect(in.out(0), a.in(0));
  b.connect(a.out(0), out.in(0));
  return b.build();
}

TEST(Manager, LoadChargesConfigurationTime) {
  ConfigurationManager mgr;
  const auto cfg = passthrough("p");
  const long long before = mgr.sim().cycle();
  const ConfigId id = mgr.load(cfg);
  EXPECT_EQ(mgr.sim().cycle() - before, config_load_cycles(cfg));
  EXPECT_EQ(mgr.info(id).load_cycles, config_load_cycles(cfg));
  EXPECT_GT(config_load_cycles(cfg), 0);
}

TEST(Manager, InfoTracksResources) {
  ConfigurationManager mgr;
  const ConfigId id = mgr.load(passthrough("p"));
  const LoadedConfig& info = mgr.info(id);
  EXPECT_EQ(info.alu_cells, 1);
  EXPECT_EQ(info.ram_cells, 0);
  EXPECT_EQ(info.io_channels, 2);
  EXPECT_GT(info.routing_segments, 0);
  EXPECT_EQ(info.name, "p");
}

TEST(Manager, ReleaseFreesResources) {
  ConfigurationManager mgr;
  const ConfigId id = mgr.load(passthrough("p"));
  mgr.release(id);
  EXPECT_FALSE(mgr.loaded(id));
  EXPECT_EQ(mgr.resources().used_alu_cells(), 0);
  EXPECT_THROW((void)mgr.info(id), ConfigError);
  EXPECT_THROW(mgr.release(id), ConfigError);
}

TEST(Manager, ResidentConfigKeepsRunningDuringLoad) {
  // Partial runtime reconfiguration: configuration 1 stays live while
  // configuration 2 is written (the Figure 10 mechanism).
  ConfigurationManager mgr;
  const ConfigId a = mgr.load(passthrough("a"));
  mgr.input(a, "in").feed(std::vector<Word>(200, 7));
  // Loading b advances the clock by its configuration time; a's
  // pipeline must process tokens during those cycles.
  const ConfigId b = mgr.load(passthrough("b"));
  EXPECT_GT(mgr.output(a, "out").data().size(), 0u)
      << "resident config must execute during reconfiguration";
  mgr.release(b);
  mgr.release(a);
}

TEST(Manager, IndependentGroupsCoexist) {
  ConfigurationManager mgr;
  const ConfigId a = mgr.load(passthrough("a"));
  const ConfigId b = mgr.load(passthrough("b"));
  mgr.input(a, "in").feed({1, 2, 3});
  mgr.input(b, "in").feed({9, 8});
  mgr.sim().run_until_quiescent(100);
  EXPECT_EQ(mgr.output(a, "out").data(), (std::vector<Word>{1, 2, 3}));
  EXPECT_EQ(mgr.output(b, "out").data(), (std::vector<Word>{9, 8}));
}

TEST(Manager, ReleasedCellsReusableByNextConfig) {
  ConfigurationManager mgr;
  ConfigBuilder b1("big");
  for (int i = 0; i < 60; ++i) {
    const auto a = b1.alu("a" + std::to_string(i), Opcode::kNop);
    b1.tie(a, 0, 0);
  }
  const ConfigId big = mgr.load(b1.build());
  // A second large config cannot fit...
  ConfigBuilder b2("second");
  for (int i = 0; i < 10; ++i) {
    const auto a = b2.alu("b" + std::to_string(i), Opcode::kNop);
    b2.tie(a, 0, 0);
  }
  const auto cfg2 = b2.build();
  EXPECT_THROW((void)mgr.load(cfg2), ConfigError);
  // ...until the first is released (freed resources are reallocated).
  mgr.release(big);
  EXPECT_NO_THROW((void)mgr.load(cfg2));
}

TEST(Manager, UnknownIoNameThrows) {
  ConfigurationManager mgr;
  const ConfigId id = mgr.load(passthrough("p"));
  EXPECT_THROW((void)mgr.input(id, "nope"), ConfigError);
  EXPECT_THROW((void)mgr.output(id, "in"), ConfigError)
      << "input object is not an output";
}

TEST(Manager, RunnerCollectsOutputs) {
  ConfigurationManager mgr;
  const auto r =
      run_config(mgr, passthrough("p"), {{"in", {4, 5, 6}}}, {{"out", 3}});
  EXPECT_EQ(r.outputs.at("out"), (std::vector<Word>{4, 5, 6}));
  EXPECT_GT(r.cycles, 0);
  EXPECT_EQ(mgr.resources().used_alu_cells(), 0) << "runner releases";
}

TEST(Manager, RunnerThrowsOnStarvedGraph) {
  ConfigurationManager mgr;
  EXPECT_THROW(
      (void)run_config(mgr, passthrough("p"), {{"in", {1}}}, {{"out", 2}}),
      ConfigError);
}

}  // namespace
}  // namespace rsp::xpp

// Shipped NML asset files: parse from disk, execute, and fuzz the
// parser with malformed input.
#include <string>

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/rake/golden.hpp"
#include "src/xpp/nml.hpp"
#include "src/xpp/runner.hpp"

#ifndef RSP_ASSET_DIR
#define RSP_ASSET_DIR "assets"
#endif

namespace rsp::xpp {
namespace {

TEST(NmlAssets, MovingAverageLoadsAndRuns) {
  const Configuration cfg =
      parse_nml_file(std::string(RSP_ASSET_DIR) + "/moving_average.nml");
  EXPECT_EQ(cfg.name, "moving_average");
  ConfigurationManager mgr;
  std::vector<Word> feed;
  for (int i = 0; i < 8; ++i) feed.push_back(pack_cplx({100, -40}));
  const auto r = run_config(mgr, cfg, {{"in", feed}}, {{"out", 2}});
  for (const auto w : r.outputs.at("out")) {
    EXPECT_EQ(unpack_cplx(w), (CplxI{100, -40})) << "average of constants";
  }
}

TEST(NmlAssets, DespreaderSf16MatchesGoldenChain) {
  const Configuration cfg =
      parse_nml_file(std::string(RSP_ASSET_DIR) + "/despreader_sf16.nml");
  Rng rng(3);
  std::vector<CplxI> chips(16 * 8);
  std::vector<Word> feed;
  for (auto& c : chips) {
    c = {static_cast<int>(rng.below(2048)) - 1024,
         static_cast<int>(rng.below(2048)) - 1024};
    feed.push_back(pack_cplx(c));
  }
  ConfigurationManager mgr;
  const auto r = run_config(mgr, cfg, {{"data", feed}}, {{"out", 8}});
  const auto golden = rake::despread(chips, 16, 3);
  ASSERT_EQ(r.outputs.at("out").size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(unpack_cplx(r.outputs.at("out")[i]), golden[i]) << i;
  }
}

TEST(NmlAssets, MissingFileThrows) {
  EXPECT_THROW((void)parse_nml_file("/nonexistent/nope.nml"), ConfigError);
}

TEST(NmlFuzz, RandomTokenSoupNeverCrashes) {
  // The parser must either produce a Configuration or throw
  // ConfigError/stoi errors — never crash or loop.
  const std::vector<std::string> vocab = {
      "config", "obj",   "conn",  "tie",   "place", "INPUT", "OUTPUT",
      "ALU",    "RAM",   "ADD",   "CMULS", "FIFO",  "LUT",   "a",
      "b.out0", "a.in1", "7",     "-3",    "cap=4", "shift=2",
      "preload=1,2", "mod=8", "x.inQ", "##", "0x10"};
  Rng rng(99);
  int parsed = 0;
  int threw = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const int lines = 1 + static_cast<int>(rng.below(6));
    for (int l = 0; l < lines; ++l) {
      const int words = 1 + static_cast<int>(rng.below(5));
      for (int w = 0; w < words; ++w) {
        text += vocab[rng.below(static_cast<std::uint32_t>(vocab.size()))];
        text += ' ';
      }
      text += '\n';
    }
    try {
      (void)parse_nml(text);
      ++parsed;
    } catch (const ConfigError&) {
      ++threw;
    } catch (const std::invalid_argument&) {
      ++threw;  // stol on garbage numbers
    } catch (const std::out_of_range&) {
      ++threw;
    }
  }
  EXPECT_EQ(parsed + threw, 300);
  EXPECT_GT(threw, 100) << "most soup must be rejected";
}

TEST(NmlFuzz, ValidDocumentsSurviveWhitespaceNoise) {
  const std::string doc = "config c\n\n  obj in INPUT \nobj nop ALU NOP\n"
                          "# comment line\nobj out OUTPUT\n"
                          "conn in.out0 nop.in0\nconn nop.out0 out.in0\n\n";
  const Configuration cfg = parse_nml(doc);
  EXPECT_EQ(cfg.objects.size(), 3u);
  ConfigurationManager mgr;
  const auto r = run_config(mgr, cfg, {{"in", {5, 6}}}, {{"out", 2}});
  EXPECT_EQ(r.outputs.at("out"), (std::vector<Word>{5, 6}));
}

}  // namespace
}  // namespace rsp::xpp

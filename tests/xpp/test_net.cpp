#include "src/xpp/net.hpp"

#include <gtest/gtest.h>

namespace rsp::xpp {
namespace {

TEST(Net, SingleSinkHandshake) {
  Net n;
  const int s = n.add_sink();
  EXPECT_FALSE(n.can_read(s));
  EXPECT_TRUE(n.can_write());

  n.stage(42);
  EXPECT_FALSE(n.can_read(s)) << "staged token not visible until commit";
  EXPECT_FALSE(n.can_write()) << "only one token may be staged per cycle";
  n.commit();
  EXPECT_TRUE(n.can_read(s));
  EXPECT_EQ(n.peek(), 42);

  n.consume(s);
  EXPECT_FALSE(n.can_read(s)) << "token consumed";
  EXPECT_TRUE(n.can_write()) << "slot frees combinationally on read";
}

TEST(Net, RefillSameCycle) {
  Net n;
  const int s = n.add_sink();
  n.stage(1);
  n.commit();
  n.consume(s);
  n.stage(2);  // producer refills in the cycle the consumer drained
  n.commit();
  EXPECT_TRUE(n.can_read(s));
  EXPECT_EQ(n.peek(), 2);
}

TEST(Net, NoTokenLossOrDuplication) {
  Net n;
  const int s = n.add_sink();
  n.stage(7);
  n.commit();
  n.commit();  // idle cycle: token must persist
  EXPECT_TRUE(n.can_read(s));
  n.consume(s);
  n.commit();
  EXPECT_FALSE(n.can_read(s)) << "token must not reappear";
}

TEST(Net, FanOutWaitsForAllSinks) {
  Net n;
  const int a = n.add_sink();
  const int b = n.add_sink();
  n.stage(5);
  n.commit();
  EXPECT_TRUE(n.can_read(a));
  EXPECT_TRUE(n.can_read(b));
  n.consume(a);
  EXPECT_FALSE(n.can_read(a));
  EXPECT_TRUE(n.can_read(b)) << "other sink still owed the token";
  EXPECT_FALSE(n.can_write()) << "slot busy until every sink consumed";
  n.consume(b);
  EXPECT_TRUE(n.can_write());
  n.commit();
  EXPECT_FALSE(n.can_read(a));
}

TEST(Net, PreloadPrimesToken) {
  Net n;
  const int s = n.add_sink();
  n.preload(99);
  EXPECT_TRUE(n.can_read(s));
  EXPECT_EQ(n.peek(), 99);
}

TEST(Net, ZeroSinkNetDiscards) {
  Net n;
  EXPECT_TRUE(n.can_write());
  n.stage(1);
  n.commit();
  n.commit();
  EXPECT_TRUE(n.can_write()) << "dangling output keeps accepting";
}

TEST(Net, SinkCountCapped) {
  // consumed_mask_ is a 32-bit mask; sink 32 would shift out of range.
  Net n;
  for (int i = 0; i < kMaxNetSinks; ++i) {
    EXPECT_EQ(n.add_sink(), i);
  }
  EXPECT_EQ(n.num_sinks(), kMaxNetSinks);
  EXPECT_THROW((void)n.add_sink(), ConfigError) << "33rd sink must be refused";
  // The full-fan-out net still handshakes correctly.
  n.stage(11);
  n.commit();
  for (int i = 0; i < kMaxNetSinks; ++i) {
    EXPECT_TRUE(n.can_read(i));
    n.consume(i);
  }
  EXPECT_TRUE(n.can_write()) << "slot frees after all 32 sinks consume";
}

TEST(Net, OccupiedReflectsState) {
  Net n;
  const int s = n.add_sink();
  EXPECT_FALSE(n.occupied());
  n.stage(1);
  EXPECT_TRUE(n.occupied());
  n.commit();
  EXPECT_TRUE(n.occupied());
  n.consume(s);
  n.commit();
  EXPECT_FALSE(n.occupied());
}

}  // namespace
}  // namespace rsp::xpp

// Shared helpers for exercising single objects / small graphs through
// the ConfigurationManager.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/xpp/builder.hpp"
#include "src/xpp/runner.hpp"

namespace rsp::xpp::testing {

/// Evaluate one ALU op: feeds each provided input stream to port i,
/// returns @p n_out tokens from output port 0.
inline std::vector<Word> eval_op(Opcode op, AluParams params,
                                 const std::vector<std::vector<Word>>& ins,
                                 std::size_t n_out) {
  ConfigBuilder b("eval_op");
  const auto alu = b.alu("dut", op, params);
  std::map<std::string, std::vector<Word>> feeds;
  for (std::size_t i = 0; i < ins.size(); ++i) {
    const std::string name = "in" + std::to_string(i);
    const auto in = b.input(name);
    b.connect(in.out(0), alu.in(static_cast<int>(i)));
    feeds[name] = ins[i];
  }
  const auto out = b.output("out");
  b.connect(alu.out(0), out.in(0));
  ConfigurationManager mgr;
  auto r = run_config(mgr, b.build(), feeds, {{"out", n_out}});
  return r.outputs.at("out");
}

/// Same but collects both output ports.
inline std::pair<std::vector<Word>, std::vector<Word>> eval_op2(
    Opcode op, AluParams params, const std::vector<std::vector<Word>>& ins,
    std::size_t n_out0, std::size_t n_out1) {
  ConfigBuilder b("eval_op2");
  const auto alu = b.alu("dut", op, params);
  std::map<std::string, std::vector<Word>> feeds;
  for (std::size_t i = 0; i < ins.size(); ++i) {
    const std::string name = "in" + std::to_string(i);
    const auto in = b.input(name);
    b.connect(in.out(0), alu.in(static_cast<int>(i)));
    feeds[name] = ins[i];
  }
  const auto o0 = b.output("out0");
  const auto o1 = b.output("out1");
  b.connect(alu.out(0), o0.in(0));
  b.connect(alu.out(1), o1.in(0));
  ConfigurationManager mgr;
  auto r = run_config(mgr, b.build(), feeds,
                      {{"out0", n_out0}, {"out1", n_out1}});
  return {r.outputs.at("out0"), r.outputs.at("out1")};
}

}  // namespace rsp::xpp::testing

// Parameterized boundary sweep: saturating vs. wrapping arithmetic at
// the 24-bit datapath edges, for every arithmetic opcode.
#include <gtest/gtest.h>

#include "src/common/cplx.hpp"
#include "src/common/word.hpp"
#include "tests/xpp/harness.hpp"

namespace rsp::xpp {
namespace {

using testing::eval_op;

struct BoundaryCase {
  Opcode op;
  Word a;
  Word b;
  long long exact;  // infinite-precision result
};

class AluBoundaries : public ::testing::TestWithParam<BoundaryCase> {};

TEST_P(AluBoundaries, SaturatingClampsAtRails) {
  const auto& c = GetParam();
  AluParams sat;
  sat.saturate = true;
  const auto out = eval_op(c.op, sat, {{c.a}, {c.b}}, 1);
  EXPECT_EQ(out[0], saturate(c.exact, kWordBits))
      << opcode_name(c.op) << "(" << c.a << ", " << c.b << ")";
}

TEST_P(AluBoundaries, WrappingWrapsModulo24Bits) {
  const auto& c = GetParam();
  AluParams wrap;
  wrap.saturate = false;
  const auto out = eval_op(c.op, wrap, {{c.a}, {c.b}}, 1);
  EXPECT_EQ(out[0], wrap24(c.exact))
      << opcode_name(c.op) << "(" << c.a << ", " << c.b << ")";
}

constexpr Word kMax = 0x7FFFFF;
constexpr Word kMin = -0x800000;

INSTANTIATE_TEST_SUITE_P(
    Rails, AluBoundaries,
    ::testing::Values(
        BoundaryCase{Opcode::kAdd, kMax, 1, static_cast<long long>(kMax) + 1},
        BoundaryCase{Opcode::kAdd, kMax, kMax, 2LL * kMax},
        BoundaryCase{Opcode::kAdd, kMin, -1, static_cast<long long>(kMin) - 1},
        BoundaryCase{Opcode::kAdd, kMin, kMin, 2LL * kMin},
        BoundaryCase{Opcode::kAdd, 100, -100, 0},
        BoundaryCase{Opcode::kSub, kMin, 1, static_cast<long long>(kMin) - 1},
        BoundaryCase{Opcode::kSub, kMax, -1, static_cast<long long>(kMax) + 1},
        BoundaryCase{Opcode::kSub, kMax, kMin,
                     static_cast<long long>(kMax) - kMin},
        BoundaryCase{Opcode::kMul, 4096, 4096, 4096LL * 4096},
        BoundaryCase{Opcode::kMul, -4096, 4096, -4096LL * 4096},
        BoundaryCase{Opcode::kMul, kMax, 2, 2LL * kMax},
        BoundaryCase{Opcode::kMul, kMin, -1, -static_cast<long long>(kMin)},
        BoundaryCase{Opcode::kMul, 0, kMin, 0},
        BoundaryCase{Opcode::kNeg, kMin, 0, -static_cast<long long>(kMin)},
        BoundaryCase{Opcode::kAbs, kMin, 0, -static_cast<long long>(kMin)}));

TEST(AluBoundariesExtra, ShiftLeftSaturatesOrWraps) {
  AluParams p;
  p.shift = 4;
  p.saturate = true;
  EXPECT_EQ(eval_op(Opcode::kShl, p, {{0x100000}}, 1)[0], 0x7FFFFF);
  p.saturate = false;
  EXPECT_EQ(eval_op(Opcode::kShl, p, {{0x100000}}, 1)[0],
            wrap24(0x100000LL << 4));
}

TEST(AluBoundariesExtra, PackedComplexRails) {
  // Per-component 12-bit saturation on the packed ops.
  AluParams p;
  const Word a = pack_cplx({2047, -2048});
  EXPECT_EQ(eval_op(Opcode::kCAdd, p, {{a}, {a}}, 1)[0],
            pack_cplx({2047, -2048}));
  EXPECT_EQ(eval_op(Opcode::kCNeg, p, {{a}}, 1)[0],
            pack_cplx({-2047, 2047}))
      << "negating -2048 saturates to +2047";
  p.shift = 0;
  EXPECT_EQ(eval_op(Opcode::kCMulShr, p,
                    {{pack_cplx({2047, 0})}, {pack_cplx({2047, 0})}}, 1)[0],
            pack_cplx({2047, 0}))
      << "2047^2 >> 0 saturates per component";
}

}  // namespace
}  // namespace rsp::xpp

// Differential test of the two firing-set schedulers: the event-driven
// worklist (SchedulerKind::kEventDriven) must be bit-identical to the
// legacy scan-to-fixed-point reference (kScan) — same per-cycle fire
// counts, same cycle counts, same per-object fire statistics, same
// output words — on every existing XPP macro pipeline.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/ofdm/maps.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/manager.hpp"

namespace rsp::xpp {
namespace {

std::vector<CplxI> random_chips(std::size_t n, std::uint64_t seed,
                                      int amp = 1000) {
  Rng rng(seed);
  std::vector<CplxI> out(n);
  for (auto& c : out) {
    c = {static_cast<int>(rng.below(static_cast<std::uint32_t>(2 * amp))) - amp,
         static_cast<int>(rng.below(static_cast<std::uint32_t>(2 * amp))) - amp};
  }
  return out;
}

/// Full observable trace of one streaming run.
struct Trace {
  std::vector<int> fires_per_cycle;
  long long final_cycle = 0;
  long long total_fires = 0;
  std::vector<ObjectStats> stats;
  std::vector<Word> out;
};

/// Load @p cfg under @p kind, feed the named input streams, then step
/// cycle by cycle until "out" holds @p n_out words, recording the fire
/// count of every cycle along the way.
Trace trace_run(SchedulerKind kind, const Configuration& cfg,
                const std::map<std::string, std::vector<Word>>& feeds,
                std::size_t n_out) {
  ConfigurationManager mgr({}, kind);
  const ConfigId id = mgr.load(cfg);
  for (const auto& [name, words] : feeds) mgr.input(id, name).feed(words);
  Trace t;
  auto& out = mgr.output(id, "out");
  for (int guard = 0; guard < 200000 && out.data().size() < n_out; ++guard) {
    t.fires_per_cycle.push_back(mgr.sim().step());
  }
  EXPECT_GE(out.data().size(), n_out) << cfg.name << ": timed out";
  t.final_cycle = mgr.sim().cycle();
  t.total_fires = mgr.sim().total_fires();
  t.stats = mgr.sim().stats(mgr.info(id).group);
  t.out = out.take();
  mgr.release(id);
  return t;
}

void expect_identical(const Trace& scan, const Trace& event,
                      const std::string& what) {
  EXPECT_EQ(scan.fires_per_cycle, event.fires_per_cycle)
      << what << ": per-cycle fire trace diverged";
  EXPECT_EQ(scan.final_cycle, event.final_cycle) << what;
  EXPECT_EQ(scan.total_fires, event.total_fires) << what;
  EXPECT_EQ(scan.out, event.out) << what << ": output words diverged";
  ASSERT_EQ(scan.stats.size(), event.stats.size()) << what;
  for (std::size_t i = 0; i < scan.stats.size(); ++i) {
    EXPECT_EQ(scan.stats[i].name, event.stats[i].name) << what;
    EXPECT_EQ(scan.stats[i].fires, event.stats[i].fires)
        << what << ": object '" << scan.stats[i].name << "'";
  }
}

TEST(SchedEquiv, DescramblerTraceIdentical) {
  const auto chips = random_chips(384, 11);
  dedhw::UmtsScrambler scr(16);
  std::vector<Word> code_words(chips.size());
  for (auto& c : code_words) c = scr.next2() & 3;
  const std::map<std::string, std::vector<Word>> feeds{
      {"data", rake::maps::pack_stream(chips)}, {"code", code_words}};
  const auto cfg = rake::maps::descrambler_config();
  expect_identical(trace_run(SchedulerKind::kScan, cfg, feeds, chips.size()),
                   trace_run(SchedulerKind::kEventDriven, cfg, feeds,
                             chips.size()),
                   "descrambler");
}

TEST(SchedEquiv, DespreaderTraceIdentical) {
  for (const int sf : {4, 16, 64}) {
    const auto chips = random_chips(static_cast<std::size_t>(sf) * 8, 23);
    const std::map<std::string, std::vector<Word>> feeds{
        {"data", rake::maps::pack_stream(chips)}};
    const auto cfg = rake::maps::despreader_config(sf, 1);
    expect_identical(
        trace_run(SchedulerKind::kScan, cfg, feeds, chips.size() / sf),
        trace_run(SchedulerKind::kEventDriven, cfg, feeds, chips.size() / sf),
        "despreader sf=" + std::to_string(sf));
  }
}

TEST(SchedEquiv, Fft64Identical) {
  // The FFT64 harness drives three stage configurations with barrier
  // tokens and RAM circulation; compare the full run under both
  // schedulers: outputs, per-stage cycle counts, global cycle and fire
  // totals.
  std::array<CplxI, phy::kFftSize> in;
  Rng rng(7);
  for (auto& c : in) {
    c = {static_cast<int>(rng.below(2000)) - 1000,
         static_cast<int>(rng.below(2000)) - 1000};
  }
  ConfigurationManager scan_mgr({}, SchedulerKind::kScan);
  std::vector<RunResult> scan_stats;
  const auto scan_out = ofdm::maps::run_fft64(scan_mgr, in, &scan_stats);

  ConfigurationManager event_mgr({}, SchedulerKind::kEventDriven);
  std::vector<RunResult> event_stats;
  const auto event_out = ofdm::maps::run_fft64(event_mgr, in, &event_stats);

  for (std::size_t i = 0; i < phy::kFftSize; ++i) {
    EXPECT_EQ(scan_out[i], event_out[i]) << "bin " << i;
  }
  EXPECT_EQ(scan_mgr.sim().cycle(), event_mgr.sim().cycle());
  EXPECT_EQ(scan_mgr.sim().total_fires(), event_mgr.sim().total_fires());
  ASSERT_EQ(scan_stats.size(), event_stats.size());
  for (std::size_t s = 0; s < scan_stats.size(); ++s) {
    EXPECT_EQ(scan_stats[s].cycles, event_stats[s].cycles) << "stage " << s;
  }
}

TEST(SchedEquiv, PartialReconfigurationScheduleIdentical) {
  // Two passthrough-style configs with one released mid-run — the
  // Figure 10 mechanism — must also schedule identically.
  const auto chips = random_chips(128, 31);
  auto run = [&](SchedulerKind kind) {
    ConfigurationManager mgr({}, kind);
    const ConfigId d = mgr.load(rake::maps::descrambler_config());
    const ConfigId p = mgr.load(rake::maps::despreader_config(16, 2));
    dedhw::UmtsScrambler scr(9);
    std::vector<Word> code_words(chips.size());
    for (auto& c : code_words) c = scr.next2() & 3;
    mgr.input(d, "data").feed(rake::maps::pack_stream(chips));
    mgr.input(d, "code").feed(code_words);
    mgr.input(p, "data").feed(rake::maps::pack_stream(chips));
    std::vector<int> fires;
    for (int i = 0; i < 40; ++i) fires.push_back(mgr.sim().step());
    mgr.release(p);  // despreader dropped mid-stream
    for (int i = 0; i < 400; ++i) fires.push_back(mgr.sim().step());
    auto out = mgr.output(d, "out").take();
    mgr.release(d);
    return std::make_tuple(fires, out, mgr.sim().cycle(),
                           mgr.sim().total_fires());
  };
  EXPECT_EQ(run(SchedulerKind::kScan), run(SchedulerKind::kEventDriven));
}

}  // namespace
}  // namespace rsp::xpp

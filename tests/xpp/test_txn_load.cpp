// Transactional configuration loading.
//
// A failed ConfigurationManager::load must be invisible: every claimed
// cell, I/O channel and routing segment returned, no half-built object
// group left in the simulator, no configuration cycles charged.  The
// checksum stamped by ConfigBuilder::build must be re-verified at load.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/xpp/builder.hpp"
#include "src/xpp/manager.hpp"

namespace rsp::xpp {
namespace {

/// Snapshot of everything a failed load could leak.
struct ResourceSnapshot {
  int free_alu = 0;
  int free_ram = 0;
  int free_io = 0;
  int routing = 0;
  int objects = 0;
  long long config_cycles = 0;

  friend bool operator==(const ResourceSnapshot&,
                         const ResourceSnapshot&) = default;
};

ResourceSnapshot snapshot(const ConfigurationManager& mgr) {
  return {mgr.resources().free_alu_cells(), mgr.resources().free_ram_cells(),
          mgr.resources().free_io_channels(), mgr.resources().routing_in_use(),
          mgr.sim().object_count(), mgr.total_config_cycles()};
}

/// One source fanned out to @p sinks NOP consumers.  Past kMaxNetSinks
/// (32) the net build throws — *after* placement has claimed cells, so
/// this exercises the rollback path.
Configuration fanout_config(int sinks) {
  ConfigBuilder b("fanout" + std::to_string(sinks));
  const auto src = b.input("src");
  for (int i = 0; i < sinks; ++i) {
    const auto a = b.alu("sink" + std::to_string(i), Opcode::kNop);
    b.connect(src.out(0), a.in(0));
  }
  return b.build();
}

Configuration small_config() {
  ConfigBuilder b("small");
  const auto in = b.input("data");
  const auto mid = b.alu("mid", Opcode::kNop);
  const auto out = b.output("out");
  b.connect(in.out(0), mid.in(0));
  b.connect(mid.out(0), out.in(0));
  return b.build();
}

/// Geometry with enough routing tracks that a 33-way fan-out passes
/// placement and fails only at the net-building stage.
ArrayGeometry wide_geometry() {
  ArrayGeometry g;
  g.h_tracks_per_cell = 64;
  g.v_tracks_per_cell = 64;
  return g;
}

TEST(TxnLoad, FanoutPastNetLimitRollsBackEverything) {
  ConfigurationManager mgr(wide_geometry());
  // A resident configuration must survive its neighbour's failed load,
  // and a 32-sink fan-out (exactly at the net limit) must still load.
  const ConfigId resident = mgr.load(small_config());
  const ConfigId at_limit = mgr.load(fanout_config(32));
  mgr.release(at_limit);
  const ResourceSnapshot before = snapshot(mgr);

  EXPECT_THROW((void)mgr.load(fanout_config(33)), ConfigError);
  EXPECT_EQ(snapshot(mgr), before)
      << "failed load leaked resources or objects";

  // The array must still be fully usable afterwards.
  const ConfigId next = mgr.load(small_config());
  EXPECT_TRUE(mgr.loaded(next));
  mgr.input(next, "data").feed({1, 2, 3});
  const StallReport r = mgr.sim().run_until_quiescent(100);
  EXPECT_TRUE(r.completed()) << r.to_string();
  EXPECT_EQ(mgr.output(next, "out").data(), (std::vector<Word>{1, 2, 3}));
  EXPECT_TRUE(mgr.loaded(resident));
}

TEST(TxnLoad, TryLoadReportsInsteadOfThrowing) {
  ConfigurationManager mgr(wide_geometry());
  const ResourceSnapshot before = snapshot(mgr);

  const LoadReport bad = mgr.try_load(fanout_config(33));
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.error.find("fan-out"), std::string::npos) << bad.error;
  EXPECT_EQ(snapshot(mgr), before);

  const LoadReport good = mgr.try_load(small_config());
  EXPECT_TRUE(good.ok());
  EXPECT_TRUE(good.error.empty());
  EXPECT_TRUE(mgr.loaded(good.id));
}

TEST(TxnLoad, BuilderStampsVerifiableChecksum) {
  const Configuration cfg = small_config();
  ASSERT_TRUE(cfg.checksum.has_value());
  EXPECT_EQ(*cfg.checksum, config_crc32(cfg));

  // The serialization must see every field: any visible difference in
  // behaviour must change the hash.
  ConfigBuilder b("small");
  const auto in = b.input("data");
  const auto mid = b.alu("mid", Opcode::kNeg);  // different opcode
  const auto out = b.output("out");
  b.connect(in.out(0), mid.in(0));
  b.connect(mid.out(0), out.in(0));
  EXPECT_NE(*cfg.checksum, *b.build().checksum);
}

TEST(TxnLoad, ChecksumTamperRejectedBeforeAnyClaim) {
  Configuration cfg = small_config();
  cfg.checksum = *cfg.checksum ^ 1u;  // single-bit storage corruption

  ConfigurationManager mgr;
  const ResourceSnapshot before = snapshot(mgr);
  EXPECT_THROW((void)mgr.load(cfg), ConfigError);
  EXPECT_EQ(snapshot(mgr), before);

  const LoadReport r = mgr.try_load(cfg);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("checksum mismatch"), std::string::npos) << r.error;

  // Recomputing the checksum (a deliberate re-stamp) makes it loadable.
  cfg.checksum = config_crc32(cfg);
  EXPECT_NO_THROW((void)mgr.load(cfg));
}

TEST(TxnLoad, ContentTamperAfterBuildRejected) {
  Configuration cfg = small_config();
  cfg.objects[1].alu.shift = 3;  // silent post-build mutation
  ConfigurationManager mgr;
  EXPECT_THROW((void)mgr.load(cfg), ConfigError);

  // Hand-assembled configurations without a checksum skip the check.
  cfg.checksum.reset();
  EXPECT_NO_THROW((void)mgr.load(cfg));
}

TEST(TxnLoad, HandBuiltOutOfRangeConnectionRejectedCleanly) {
  Configuration cfg = small_config();
  cfg.checksum.reset();
  cfg.connections[0].dst.object = 99;
  ConfigurationManager mgr;
  const ResourceSnapshot before = snapshot(mgr);
  EXPECT_THROW((void)mgr.load(cfg), ConfigError);
  EXPECT_EQ(snapshot(mgr), before);
}

TEST(TxnLoad, InfoNamesNearestLoadedConfig) {
  ConfigurationManager mgr;
  EXPECT_THROW((void)mgr.info(0), ConfigError);

  const ConfigId id = mgr.load(small_config());
  try {
    (void)mgr.info(id + 7);
    FAIL() << "info must throw for an unknown id";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown ConfigId " + std::to_string(id + 7)),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("nearest loaded: " + std::to_string(id) + " 'small'"),
              std::string::npos)
        << msg;
  }
}

TEST(TxnLoad, IoLookupSuggestsNearestName) {
  ConfigurationManager mgr;
  const ConfigId id = mgr.load(small_config());
  try {
    (void)mgr.input(id, "dta");
    FAIL() << "input must throw for an unknown name";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no object named 'dta'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean 'data'?"), std::string::npos) << msg;
  }
}

TEST(TxnLoad, IoLookupExplainsKindMismatch) {
  ConfigurationManager mgr;
  const ConfigId id = mgr.load(small_config());
  try {
    (void)mgr.input(id, "out");
    FAIL() << "input must reject an output object";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("not an input channel"), std::string::npos) << msg;
    EXPECT_NE(msg.find("output channel"), std::string::npos) << msg;
  }
  try {
    (void)mgr.output(id, "mid");
    FAIL() << "output must reject an ALU object";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("not an output channel"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ALU-PAE"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace rsp::xpp

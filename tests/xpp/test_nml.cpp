#include "src/xpp/nml.hpp"

#include "src/xpp/builder.hpp"

#include <gtest/gtest.h>

#include "src/xpp/runner.hpp"

namespace rsp::xpp {
namespace {

constexpr const char* kAdderNml = R"(
# simple add-constant datapath
config adder
obj in INPUT
obj add ALU ADD
tie add.in1 5
obj out OUTPUT
conn in.out0 add.in0
conn add.out0 out.in0
)";

TEST(Nml, ParsesAndRuns) {
  const Configuration cfg = parse_nml(kAdderNml);
  EXPECT_EQ(cfg.name, "adder");
  EXPECT_EQ(cfg.objects.size(), 3u);
  ConfigurationManager mgr;
  const auto r = run_config(mgr, cfg, {{"in", {1, 2, 3}}}, {{"out", 3}});
  EXPECT_EQ(r.outputs.at("out"), (std::vector<Word>{6, 7, 8}));
}

TEST(Nml, ParsesCounterRamAndPlacement) {
  const Configuration cfg = parse_nml(R"(
config mix
obj cnt COUNTER start=2 step=3 mod=4
obj lut RAM CLUT preload=9,8,7
obj fifo RAM FIFO cap=16 preload=1,2
obj out OUTPUT
conn lut.out0 out.in0
place cnt 1 2
)");
  EXPECT_EQ(cfg.objects.size(), 4u);
  EXPECT_EQ(cfg.objects[0].counter.start, 2);
  EXPECT_EQ(cfg.objects[0].counter.step, 3);
  EXPECT_EQ(cfg.objects[0].counter.modulo, 4);
  EXPECT_EQ(cfg.objects[1].ram.mode, RamMode::kCircularLut);
  EXPECT_EQ(cfg.objects[1].ram.preload, (std::vector<Word>{9, 8, 7}));
  EXPECT_EQ(cfg.objects[2].ram.capacity, 16);
  ASSERT_TRUE(cfg.objects[0].placement.has_value());
  EXPECT_EQ(cfg.objects[0].placement->col, 2);
}

TEST(Nml, RoundTrip) {
  const Configuration cfg = parse_nml(kAdderNml);
  const std::string text = to_nml(cfg);
  const Configuration again = parse_nml(text);
  EXPECT_EQ(again.objects.size(), cfg.objects.size());
  EXPECT_EQ(again.connections.size(), cfg.connections.size());
  ConfigurationManager mgr;
  const auto r = run_config(mgr, again, {{"in", {10}}}, {{"out", 1}});
  EXPECT_EQ(r.outputs.at("out"), (std::vector<Word>{15}));
}

TEST(Nml, OpcodeNamesRoundTrip) {
  EXPECT_EQ(opcode_from_name("ADD"), Opcode::kAdd);
  EXPECT_EQ(opcode_from_name("CMULS"), Opcode::kCMulShr);
  EXPECT_EQ(opcode_from_name("CACCUM"), Opcode::kCAccum);
  EXPECT_THROW((void)opcode_from_name("BOGUS"), ConfigError);
}

TEST(Nml, Errors) {
  EXPECT_THROW((void)parse_nml(""), ConfigError);
  EXPECT_THROW((void)parse_nml("obj x INPUT\n"), ConfigError)
      << "missing config header";
  EXPECT_THROW((void)parse_nml("config c\nobj x BOGUSKIND\n"), ConfigError);
  EXPECT_THROW((void)parse_nml("config c\nobj a ALU ADD\nconn a.out0 b.in0\n"),
               ConfigError)
      << "unknown object";
  EXPECT_THROW((void)parse_nml("config c\nobj a ALU\n"), ConfigError)
      << "ALU needs opcode";
  EXPECT_THROW((void)parse_nml("config c\nobj r RAM LUT\n"), ConfigError)
      << "LUT needs preload";
  EXPECT_THROW(
      (void)parse_nml("config c\nobj a ALU NOP\ntie a.out0 3\n"),
      ConfigError)
      << "tie must target an input";
}

TEST(Nml, ShiftAndWrapFlags) {
  const Configuration cfg = parse_nml(R"(
config f
obj s ALU SHRR shift=3
tie s.in0 0
obj w ALU ADD wrap
tie w.in0 0
tie w.in1 0
)");
  EXPECT_EQ(cfg.objects[0].alu.shift, 3);
  EXPECT_TRUE(cfg.objects[0].alu.saturate);
  EXPECT_FALSE(cfg.objects[1].alu.saturate);
}

TEST(Dot, RendersConfigurationGraph) {
  const Configuration cfg = parse_nml(kAdderNml);
  const std::string dot = to_dot(cfg);
  EXPECT_NE(dot.find("digraph \"adder\""), std::string::npos);
  EXPECT_NE(dot.find("\"in\""), std::string::npos);
  EXPECT_NE(dot.find("\"add\""), std::string::npos);
  EXPECT_NE(dot.find("ADD"), std::string::npos);
  EXPECT_NE(dot.find("\"in\" -> \"add\""), std::string::npos);
  EXPECT_NE(dot.find("\"add\" -> \"out\""), std::string::npos);
  // Every connection appears as an edge.
  std::size_t edges = 0;
  for (std::size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 2)) {
    ++edges;
  }
  EXPECT_EQ(edges, cfg.connections.size());
}

TEST(Dot, MarksPreloadedAndControlEdges) {
  ConfigBuilder b("feedback");
  const auto in = b.control_input("go");
  const auto add = b.alu("acc", Opcode::kAdd);
  const auto dup = b.alu("dup", Opcode::kDup);
  const auto out = b.output("out");
  b.connect(in.out(0), add.in(0));
  b.connect(add.out(0), dup.in(0));
  b.connect_preload(dup.out(1), add.in(1), 0);
  b.connect(dup.out(0), out.in(0));
  const std::string dot = to_dot(b.build());
  EXPECT_NE(dot.find("style=dashed"), std::string::npos)
      << "preloaded feedback edge must be marked";
  EXPECT_NE(dot.find("(control)"), std::string::npos);
}

}  // namespace
}  // namespace rsp::xpp

#include "src/xpp/counter.hpp"

#include <gtest/gtest.h>

#include "tests/xpp/harness.hpp"

namespace rsp::xpp {
namespace {

std::pair<std::vector<Word>, std::vector<Word>> run_counter(CounterParams p,
                                                            std::size_t n) {
  ConfigBuilder b("cnt");
  const auto c = b.counter("dut", p);
  const auto v = b.output("val");
  const auto w = b.output("wrap");
  b.connect(c.out(0), v.in(0));
  b.connect(c.out(1), w.in(0));
  ConfigurationManager mgr;
  const auto r = run_config(mgr, b.build(), {}, {{"val", n}, {"wrap", n}});
  return {r.outputs.at("val"), r.outputs.at("wrap")};
}

TEST(Counter, ModuloSequenceAndWrapEvent) {
  const auto [val, wrap] = run_counter({0, 1, 4}, 9);
  EXPECT_EQ(val, (std::vector<Word>{0, 1, 2, 3, 0, 1, 2, 3, 0}));
  EXPECT_EQ(wrap, (std::vector<Word>{0, 0, 0, 1, 0, 0, 0, 1, 0}));
}

TEST(Counter, StartAndStep) {
  const auto [val, wrap] = run_counter({10, 5, 3}, 7);
  EXPECT_EQ(val, (std::vector<Word>{10, 15, 20, 10, 15, 20, 10}));
  EXPECT_EQ(wrap, (std::vector<Word>{0, 0, 1, 0, 0, 1, 0}));
}

TEST(Counter, FreeRunningWithoutModulo) {
  const auto [val, wrap] = run_counter({0, 1, 0}, 5);
  EXPECT_EQ(val, (std::vector<Word>{0, 1, 2, 3, 4}));
  EXPECT_EQ(wrap, (std::vector<Word>{0, 0, 0, 0, 0}));
}

TEST(Counter, GatedByEnableTokens) {
  ConfigBuilder b("gated");
  const auto en = b.input("en");
  const auto c = b.counter("dut", {0, 1, 0});
  const auto v = b.output("val");
  b.connect(en.out(0), c.in(0));
  b.connect(c.out(0), v.in(0));
  ConfigurationManager mgr;
  const ConfigId id = mgr.load(b.build());
  mgr.input(id, "en").feed({1, 1});
  mgr.sim().run_until_quiescent(100);
  EXPECT_EQ(mgr.output(id, "val").data(), (std::vector<Word>{0, 1}))
      << "one count per enable token";
}

TEST(Counter, PacedByConsumer) {
  // A counter driving a slow consumer must not skip values.
  ConfigBuilder b("paced");
  const auto c = b.counter("dut", {0, 1, 0});
  const auto gate = b.alu("gate", Opcode::kGate);
  const auto en = b.input("en");
  const auto v = b.output("val");
  b.connect(c.out(0), gate.in(0));
  b.connect(en.out(0), gate.in(1));
  b.connect(gate.out(0), v.in(0));
  ConfigurationManager mgr;
  const ConfigId id = mgr.load(b.build());
  mgr.input(id, "en").feed({1, 1, 1, 1});
  mgr.sim().run_until_quiescent(100);
  EXPECT_EQ(mgr.output(id, "val").data(), (std::vector<Word>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace rsp::xpp

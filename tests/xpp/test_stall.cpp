// Stall diagnosis: run_until_quiescent must distinguish a drained
// pipeline (kCompleted) from a deadlock (kDeadlocked, with the blocked
// objects and the nets they wait on named) from an exhausted cycle
// budget (kMaxCycles).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/xpp/builder.hpp"
#include "src/xpp/manager.hpp"

namespace rsp::xpp {
namespace {

TEST(Stall, DrainedPipelineReportsCompleted) {
  ConfigBuilder b("drain");
  const auto in = b.input("in");
  const auto mid = b.alu("mid", Opcode::kNop);
  const auto out = b.output("out");
  b.connect(in.out(0), mid.in(0));
  b.connect(mid.out(0), out.in(0));
  ConfigurationManager mgr;
  const ConfigId id = mgr.load(b.build());
  mgr.input(id, "in").feed({1, 2, 3, 4});

  const StallReport r = mgr.sim().run_until_quiescent(1000);
  EXPECT_TRUE(r.completed()) << r.to_string();
  EXPECT_EQ(r.tokens_in_flight, 0);
  EXPECT_TRUE(r.blocked.empty());
  EXPECT_GT(r.cycles, 0);
  EXPECT_NE(r.to_string().find("completed"), std::string::npos);
  EXPECT_EQ(mgr.output(id, "out").data(), (std::vector<Word>{1, 2, 3, 4}));
}

TEST(Stall, FeedbackDeadlockNamesBlockedObjectAndNet) {
  // a = in + b; b = NOP(a).  The a<->b loop carries no preloaded token,
  // so the first external word arrives at 'a' and stops dead: a's in1
  // waits on 'b.out0', which can never produce.
  ConfigBuilder b("deadlock");
  const auto in = b.input("in");
  const auto a = b.alu("a", Opcode::kAdd);
  const auto nb = b.alu("b", Opcode::kNop);
  b.connect(in.out(0), a.in(0));
  b.connect(nb.out(0), a.in(1));
  b.connect(a.out(0), nb.in(0));
  ConfigurationManager mgr;
  const ConfigId id = mgr.load(b.build());
  mgr.input(id, "in").feed({5});

  const StallReport r = mgr.sim().run_until_quiescent(1000);
  EXPECT_TRUE(r.deadlocked()) << r.to_string();
  EXPECT_GT(r.tokens_in_flight, 0);
  ASSERT_EQ(r.blocked.size(), 1u) << r.to_string();
  EXPECT_EQ(r.blocked[0].name, "a");
  ASSERT_EQ(r.blocked[0].waiting_on.size(), 1u);
  EXPECT_EQ(r.blocked[0].waiting_on[0], "in1 empty (net 'b.out0')");
  const std::string s = r.to_string();
  EXPECT_NE(s.find("deadlocked"), std::string::npos) << s;
  EXPECT_NE(s.find("'b.out0'"), std::string::npos) << s;
  (void)id;
}

TEST(Stall, InputStarvedPrimedLoopReportsDeadlock) {
  // A preloaded token sits on a's in1 while in0 never receives data:
  // tokens are in flight, so this is kDeadlocked (not kCompleted), and
  // the report points at the starved input channel's net.
  ConfigBuilder b("starved");
  const auto in = b.input("in");
  const auto a = b.alu("a", Opcode::kAdd);
  const auto nb = b.alu("b", Opcode::kNop);
  b.connect(in.out(0), a.in(0));
  b.connect_preload(nb.out(0), a.in(1), 7);
  b.connect(a.out(0), nb.in(0));
  ConfigurationManager mgr;
  const ConfigId id = mgr.load(b.build());
  (void)id;  // nothing fed

  const StallReport r = mgr.sim().run_until_quiescent(100);
  EXPECT_TRUE(r.deadlocked()) << r.to_string();
  EXPECT_EQ(r.tokens_in_flight, 1);
  ASSERT_EQ(r.blocked.size(), 1u) << r.to_string();
  EXPECT_EQ(r.blocked[0].name, "a");
  EXPECT_EQ(r.blocked[0].last_fire_cycle, -1);
  ASSERT_EQ(r.blocked[0].waiting_on.size(), 1u);
  EXPECT_EQ(r.blocked[0].waiting_on[0], "in0 empty (net 'in.out0')");
}

TEST(Stall, BusyArrayReportsMaxCycles) {
  // An ungated circular LUT free-runs into an always-consuming output:
  // the array never goes idle, so the budget is the only stop.
  ConfigBuilder b("freerun");
  RamParams p;
  p.mode = RamMode::kCircularLut;
  p.capacity = 4;
  p.preload = {1, 2, 3, 4};
  const auto lut = b.ram("lut", std::move(p));
  const auto out = b.output("out");
  b.connect(lut.out(0), out.in(0));
  ConfigurationManager mgr;
  const ConfigId id = mgr.load(b.build());
  (void)id;

  const StallReport r = mgr.sim().run_until_quiescent(100);
  EXPECT_EQ(r.termination, RunTermination::kMaxCycles) << r.to_string();
  EXPECT_EQ(r.cycles, 100);
  EXPECT_FALSE(r.completed());
  EXPECT_NE(r.to_string().find("max_cycles"), std::string::npos);
}

TEST(Stall, DiagnoseDoesNotAdvanceClock) {
  ConfigurationManager mgr;
  const long long before = mgr.sim().cycle();
  const StallReport r = mgr.sim().diagnose();
  EXPECT_EQ(mgr.sim().cycle(), before);
  EXPECT_EQ(r.tokens_in_flight, 0);
  EXPECT_TRUE(r.blocked.empty());
}

}  // namespace
}  // namespace rsp::xpp

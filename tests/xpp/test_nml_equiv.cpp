// Behavioural round-trip: every paper configuration serialized to NML
// and re-parsed must compute identical outputs on identical inputs.
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/ofdm/maps.hpp"
#include "src/rake/golden.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/nml.hpp"
#include "src/xpp/runner.hpp"

namespace rsp::xpp {
namespace {

std::vector<Word> random_packed(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> out(n);
  for (auto& w : out) {
    w = pack_cplx({static_cast<int>(rng.below(2048)) - 1024,
                   static_cast<int>(rng.below(2048)) - 1024});
  }
  return out;
}

void expect_equivalent(const Configuration& cfg,
                       const std::map<std::string, std::vector<Word>>& inputs,
                       const std::map<std::string, std::size_t>& expected) {
  ConfigurationManager m1;
  ConfigurationManager m2;
  const auto r1 = run_config(m1, cfg, inputs, expected);
  const auto r2 = run_config(m2, parse_nml(to_nml(cfg)), inputs, expected);
  for (const auto& [name, words] : r1.outputs) {
    ASSERT_EQ(r2.outputs.at(name), words) << cfg.name << " output " << name;
  }
  EXPECT_EQ(r1.cycles, r2.cycles) << cfg.name << ": cycle-identical replay";
}

TEST(NmlEquivalence, Descrambler) {
  const auto data = random_packed(128, 1);
  std::vector<Word> code(128);
  Rng rng(2);
  for (auto& c : code) c = static_cast<Word>(rng.below(4));
  expect_equivalent(rake::maps::descrambler_config(),
                    {{"data", data}, {"code", code}}, {{"out", 128}});
}

TEST(NmlEquivalence, Despreader) {
  expect_equivalent(rake::maps::despreader_config(32, 5),
                    {{"data", random_packed(32 * 4, 3)}}, {{"out", 4}});
}

TEST(NmlEquivalence, ChancorrSttd) {
  rake::CorrectorWeights w;
  w.sttd = true;
  w.conj_h1 = rake::quantize_weight({0.8, 0.1});
  w.h2 = rake::quantize_weight({-0.3, 0.5});
  expect_equivalent(rake::maps::chancorr_config(w),
                    {{"data", random_packed(64, 4)}}, {{"out", 64}});
}

TEST(NmlEquivalence, PreambleCorrelator) {
  expect_equivalent(ofdm::maps::preamble_config(),
                    {{"data", random_packed(96, 5)}},
                    {{"corr", 6}, {"power", 6}});
}

TEST(NmlEquivalence, WlanDescrambler) {
  std::vector<Word> bits(120);
  Rng rng(6);
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  expect_equivalent(ofdm::maps::wlan_descrambler_config(0x5D),
                    {{"data", bits}}, {{"out", 120}});
}

TEST(NmlEquivalence, ControlInputsSurviveRoundTrip) {
  const auto cfg = ofdm::maps::fft64_stage_config(0);
  const auto again = parse_nml(to_nml(cfg));
  EXPECT_EQ(again.io_demand(), cfg.io_demand())
      << "CINPUT flag must survive serialization";
  int controls = 0;
  for (const auto& o : again.objects) controls += o.control ? 1 : 0;
  EXPECT_EQ(controls, 2) << "go / go2";
}

}  // namespace
}  // namespace rsp::xpp

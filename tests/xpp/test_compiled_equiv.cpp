// Differential test of the compiled epoch-replay scheduler
// (SchedulerKind::kCompiled): cycle-for-cycle bit-identical to kScan
// and kEventDriven on the paper's macro pipelines, including mid-epoch
// deoptimization (external feed, partial reconfiguration), fault-plan
// interplay, and exact tracer counters while epochs replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/ofdm/maps.hpp"
#include "src/rake/maps.hpp"
#include "src/xpp/compiled.hpp"
#include "src/xpp/fault.hpp"
#include "src/xpp/manager.hpp"
#include "src/xpp/trace.hpp"

namespace rsp::xpp {
namespace {

std::vector<CplxI> random_chips(std::size_t n, std::uint64_t seed,
                                int amp = 1000) {
  Rng rng(seed);
  std::vector<CplxI> out(n);
  for (auto& c : out) {
    c = {static_cast<int>(rng.below(static_cast<std::uint32_t>(2 * amp))) - amp,
         static_cast<int>(rng.below(static_cast<std::uint32_t>(2 * amp))) - amp};
  }
  return out;
}

/// Full observable trace of one streaming run (same shape as the
/// scan/event differential in test_sched_equiv.cpp).
struct Trace {
  std::vector<int> fires_per_cycle;
  long long final_cycle = 0;
  long long total_fires = 0;
  std::vector<ObjectStats> stats;
  std::vector<Word> out;
  CompiledStats compiled;  ///< zeros unless the run used kCompiled
};

Trace trace_run(SchedulerKind kind, const Configuration& cfg,
                const std::map<std::string, std::vector<Word>>& feeds,
                std::size_t n_out) {
  ConfigurationManager mgr({}, kind);
  const ConfigId id = mgr.load(cfg);
  for (const auto& [name, words] : feeds) mgr.input(id, name).feed(words);
  Trace t;
  auto& out = mgr.output(id, "out");
  for (int guard = 0; guard < 200000 && out.data().size() < n_out; ++guard) {
    t.fires_per_cycle.push_back(mgr.sim().step());
  }
  EXPECT_GE(out.data().size(), n_out) << cfg.name << ": timed out";
  t.final_cycle = mgr.sim().cycle();
  t.total_fires = mgr.sim().total_fires();
  t.stats = mgr.sim().stats(mgr.info(id).group);
  t.out = out.take();
  if (const CompiledEngine* eng = mgr.sim().compiled_engine()) {
    t.compiled = eng->stats();
  }
  mgr.release(id);
  return t;
}

void expect_identical(const Trace& ref, const Trace& got,
                      const std::string& what) {
  EXPECT_EQ(ref.fires_per_cycle, got.fires_per_cycle)
      << what << ": per-cycle fire trace diverged";
  EXPECT_EQ(ref.final_cycle, got.final_cycle) << what;
  EXPECT_EQ(ref.total_fires, got.total_fires) << what;
  EXPECT_EQ(ref.out, got.out) << what << ": output words diverged";
  ASSERT_EQ(ref.stats.size(), got.stats.size()) << what;
  for (std::size_t i = 0; i < ref.stats.size(); ++i) {
    EXPECT_EQ(ref.stats[i].name, got.stats[i].name) << what;
    EXPECT_EQ(ref.stats[i].fires, got.stats[i].fires)
        << what << ": object '" << ref.stats[i].name << "'";
  }
}

std::map<std::string, std::vector<Word>> descrambler_feeds(
    const std::vector<CplxI>& chips, std::uint64_t scr_seed = 16) {
  dedhw::UmtsScrambler scr(static_cast<std::uint32_t>(scr_seed));
  std::vector<Word> code_words(chips.size());
  for (auto& c : code_words) c = scr.next2() & 3;
  return {{"data", rake::maps::pack_stream(chips)}, {"code", code_words}};
}

TEST(CompiledEquiv, DescramblerThreeWayIdentical) {
  const auto chips = random_chips(2048, 11);
  const auto feeds = descrambler_feeds(chips);
  const auto cfg = rake::maps::descrambler_config();
  const auto scan = trace_run(SchedulerKind::kScan, cfg, feeds, chips.size());
  const auto event =
      trace_run(SchedulerKind::kEventDriven, cfg, feeds, chips.size());
  const auto comp =
      trace_run(SchedulerKind::kCompiled, cfg, feeds, chips.size());
  expect_identical(scan, event, "descrambler scan/event");
  expect_identical(scan, comp, "descrambler scan/compiled");
  // Non-vacuousness: the steady state must actually have compiled and
  // replayed most of the run.
  EXPECT_GE(comp.compiled.arms, 1) << "epoch never armed";
  EXPECT_GT(comp.compiled.replayed_cycles, comp.final_cycle / 2)
      << "replay did not dominate the run";
}

TEST(CompiledEquiv, DespreaderThreeWayIdentical) {
  for (const int sf : {4, 16, 64}) {
    const auto chips = random_chips(static_cast<std::size_t>(sf) * 64, 23);
    const std::map<std::string, std::vector<Word>> feeds{
        {"data", rake::maps::pack_stream(chips)}};
    const auto cfg = rake::maps::despreader_config(sf, 1);
    const std::size_t n_out = chips.size() / static_cast<std::size_t>(sf);
    const auto scan = trace_run(SchedulerKind::kScan, cfg, feeds, n_out);
    const auto event = trace_run(SchedulerKind::kEventDriven, cfg, feeds, n_out);
    const auto comp = trace_run(SchedulerKind::kCompiled, cfg, feeds, n_out);
    const std::string what = "despreader sf=" + std::to_string(sf);
    expect_identical(scan, event, what + " scan/event");
    expect_identical(scan, comp, what + " scan/compiled");
    EXPECT_GE(comp.compiled.arms, 1) << what;
    EXPECT_GT(comp.compiled.replayed_cycles, 0) << what;
  }
}

TEST(CompiledEquiv, Fft64Identical) {
  std::array<CplxI, phy::kFftSize> in;
  Rng rng(7);
  for (auto& c : in) {
    c = {static_cast<int>(rng.below(2000)) - 1000,
         static_cast<int>(rng.below(2000)) - 1000};
  }
  ConfigurationManager event_mgr({}, SchedulerKind::kEventDriven);
  std::vector<RunResult> event_stats;
  const auto event_out = ofdm::maps::run_fft64(event_mgr, in, &event_stats);

  ConfigurationManager comp_mgr({}, SchedulerKind::kCompiled);
  std::vector<RunResult> comp_stats;
  const auto comp_out = ofdm::maps::run_fft64(comp_mgr, in, &comp_stats);

  for (std::size_t i = 0; i < phy::kFftSize; ++i) {
    EXPECT_EQ(event_out[i], comp_out[i]) << "bin " << i;
  }
  EXPECT_EQ(event_mgr.sim().cycle(), comp_mgr.sim().cycle());
  EXPECT_EQ(event_mgr.sim().total_fires(), comp_mgr.sim().total_fires());
  ASSERT_EQ(event_stats.size(), comp_stats.size());
  for (std::size_t s = 0; s < event_stats.size(); ++s) {
    EXPECT_EQ(event_stats[s].cycles, comp_stats[s].cycles) << "stage " << s;
  }
}

TEST(CompiledEquiv, PartialReconfigurationIdentical) {
  // Configuration load/release must invalidate live epochs and stay
  // bit-identical to the interpreters across the boundary.
  const auto chips = random_chips(512, 31);
  auto run = [&](SchedulerKind kind) {
    ConfigurationManager mgr({}, kind);
    const ConfigId d = mgr.load(rake::maps::descrambler_config());
    const ConfigId p = mgr.load(rake::maps::despreader_config(16, 2));
    const auto feeds = descrambler_feeds(chips, 9);
    mgr.input(d, "data").feed(feeds.at("data"));
    mgr.input(d, "code").feed(feeds.at("code"));
    mgr.input(p, "data").feed(rake::maps::pack_stream(chips));
    std::vector<int> fires;
    for (int i = 0; i < 300; ++i) fires.push_back(mgr.sim().step());
    mgr.release(p);  // despreader dropped mid-stream, mid-epoch
    for (int i = 0; i < 1200; ++i) fires.push_back(mgr.sim().step());
    auto out = mgr.output(d, "out").take();
    mgr.release(d);
    return std::make_tuple(fires, out, mgr.sim().cycle(),
                           mgr.sim().total_fires());
  };
  const auto event = run(SchedulerKind::kEventDriven);
  const auto comp = run(SchedulerKind::kCompiled);
  EXPECT_EQ(event, comp);
  EXPECT_EQ(run(SchedulerKind::kScan), comp);
}

TEST(CompiledEquiv, MidEpochFeedDeoptimizesBitIdentically) {
  // Feed in two batches with a dry gap: the epoch armed on batch one
  // must deoptimize on the mid-run feed() and re-settle, with the full
  // observable trace identical to the event-driven run.
  const auto chips = random_chips(1024, 43);
  const auto feeds = descrambler_feeds(chips, 21);
  const auto half = chips.size() / 2;
  auto run = [&](SchedulerKind kind) {
    ConfigurationManager mgr({}, kind);
    const ConfigId id = mgr.load(rake::maps::descrambler_config());
    const auto& data = feeds.at("data");
    const auto& code = feeds.at("code");
    mgr.input(id, "data").feed({data.begin(), data.begin() + half});
    mgr.input(id, "code").feed({code.begin(), code.begin() + half});
    std::vector<int> fires;
    // Run past exhaustion of batch one (stream runs dry -> guard deopt).
    for (int i = 0; i < 3000; ++i) fires.push_back(mgr.sim().step());
    mgr.input(id, "data").feed({data.begin() + half, data.end()});
    mgr.input(id, "code").feed({code.begin() + half, code.end()});
    for (int i = 0; i < 3000; ++i) fires.push_back(mgr.sim().step());
    auto out = mgr.output(id, "out").take();
    long long deopts = -1;
    if (const CompiledEngine* eng = mgr.sim().compiled_engine()) {
      deopts = eng->stats().deopts;
      EXPECT_GE(eng->stats().arms, 2) << "no re-arm after the second batch";
    }
    mgr.release(id);
    return std::make_tuple(fires, out, mgr.sim().cycle(),
                           mgr.sim().total_fires(), deopts);
  };
  auto event = run(SchedulerKind::kEventDriven);
  auto comp = run(SchedulerKind::kCompiled);
  EXPECT_GE(std::get<4>(comp), 1) << "feed/exhaustion never deoptimized";
  EXPECT_EQ(std::get<1>(event), std::get<1>(comp)) << "outputs diverged";
  EXPECT_EQ(std::get<0>(event), std::get<0>(comp)) << "fire trace diverged";
  EXPECT_EQ(std::get<2>(event), std::get<2>(comp));
  EXPECT_EQ(std::get<3>(event), std::get<3>(comp));
}

TEST(CompiledEquiv, FaultPlanNeverReplaysStrikes) {
  // With a fault plan armed the engine must stay in the interpreter
  // (strikes mutate state epochs assume invariant) and the whole run —
  // including the injection log — must match the event-driven run.
  const auto chips = random_chips(1024, 57);
  const auto feeds = descrambler_feeds(chips, 5);
  auto run = [&](SchedulerKind kind) {
    ConfigurationManager mgr({}, kind);
    const ConfigId id = mgr.load(rake::maps::descrambler_config());
    mgr.input(id, "data").feed(feeds.at("data"));
    mgr.input(id, "code").feed(feeds.at("code"));
    FaultPlan plan;
    plan.faults.push_back({FaultKind::kNetBitFlip,
                           mgr.sim().cycle() + 700,
                           "cmul", mgr.info(id).group, 0, 3, 1, 0, 1});
    FaultInjector inj(plan);
    mgr.sim().install_faults(&inj);
    std::vector<int> fires;
    for (int i = 0; i < 2500; ++i) fires.push_back(mgr.sim().step());
    mgr.sim().install_faults(nullptr);
    auto out = mgr.output(id, "out").take();
    long long replayed_while_pending = 0;
    if (const CompiledEngine* eng = mgr.sim().compiled_engine()) {
      // The plan stayed armed for the first 700 cycles; the engine may
      // only have replayed after it exhausted.
      replayed_while_pending = eng->stats().replayed_cycles;
    }
    mgr.release(id);
    return std::make_tuple(fires, out, inj.log(), mgr.sim().cycle(),
                           mgr.sim().total_fires(), replayed_while_pending);
  };
  const auto event = run(SchedulerKind::kEventDriven);
  const auto comp = run(SchedulerKind::kCompiled);
  EXPECT_EQ(std::get<0>(event), std::get<0>(comp));
  EXPECT_EQ(std::get<1>(event), std::get<1>(comp));
  EXPECT_EQ(std::get<2>(event), std::get<2>(comp)) << "fault logs diverged";
  EXPECT_EQ(std::get<3>(event), std::get<3>(comp));
  EXPECT_EQ(std::get<4>(event), std::get<4>(comp));
}

TEST(CompiledEquiv, TracerCountersIdenticalWhileReplaying) {
  // Tracing on: every per-PAE and per-net counter, the interval row
  // samples and the timeline must be bit-identical between kEventDriven
  // and kCompiled.  Worklist samples are excluded by design — they
  // measure the event scheduler itself and are absent while replaying.
  const auto chips = random_chips(2048, 71);
  const auto feeds = descrambler_feeds(chips, 33);
  auto run = [&](SchedulerKind kind) {
    ConfigurationManager mgr({}, kind);
    Tracer tracer;
    mgr.sim().attach_trace(&tracer);
    const ConfigId id = mgr.load(rake::maps::descrambler_config());
    mgr.input(id, "data").feed(feeds.at("data"));
    mgr.input(id, "code").feed(feeds.at("code"));
    auto& out = mgr.output(id, "out");
    for (int guard = 0; guard < 200000 && out.data().size() < chips.size();
         ++guard) {
      mgr.sim().step();
    }
    EXPECT_EQ(out.data().size(), chips.size());
    if (kind == SchedulerKind::kCompiled) {
      EXPECT_GT(mgr.sim().compiled_engine()->stats().replayed_cycles, 0);
    }
    auto pc = tracer.snapshot();
    mgr.sim().attach_trace(nullptr);
    mgr.release(id);
    return pc;
  };
  const auto event = run(SchedulerKind::kEventDriven);
  const auto comp = run(SchedulerKind::kCompiled);
  EXPECT_EQ(event.begin_cycle, comp.begin_cycle);
  EXPECT_EQ(event.end_cycle, comp.end_cycle);
  EXPECT_EQ(event.paes, comp.paes);
  EXPECT_EQ(event.nets, comp.nets);
  EXPECT_EQ(event.row_samples, comp.row_samples);
  EXPECT_EQ(event.config_timeline, comp.config_timeline);
}

}  // namespace
}  // namespace rsp::xpp

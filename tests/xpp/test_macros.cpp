#include "src/xpp/macros.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/xpp/runner.hpp"

namespace rsp::xpp {
namespace {

/// Run the scalar-PAE complex multiplier macro on packed inputs.
std::vector<Word> run_scalar_cmul(const std::vector<Word>& a,
                                  const std::vector<Word>& bb, int shift) {
  ConfigBuilder b("scalar_cmul");
  const auto ia = b.input("a");
  const auto ib = b.input("b");
  const PortRef prod = macros::scalar_cmul(b, "cm", shift, ia.out(0), ib.out(0));
  const auto out = b.output("out");
  b.connect(prod, out.in(0));
  const Configuration cfg = b.build();
  EXPECT_EQ(cfg.alu_demand(), macros::kScalarCmulAlus);
  ConfigurationManager mgr;
  const auto r =
      run_config(mgr, cfg, {{"a", a}, {"b", bb}}, {{"out", a.size()}});
  return r.outputs.at("out");
}

TEST(Macros, ScalarCmulMatchesPackedComplexAlu) {
  Rng rng(2024);
  const int shift = 10;
  std::vector<Word> a;
  std::vector<Word> bb;
  std::vector<Word> expect;
  for (int i = 0; i < 64; ++i) {
    // 11-bit operands: the scalar datapath's 24-bit adders cannot
    // overflow, so equality with the full-precision kCMulShr holds.
    const CplxI x{static_cast<int>(rng.below(2048)) - 1024,
                  static_cast<int>(rng.below(2048)) - 1024};
    const CplxI w{static_cast<int>(rng.below(2048)) - 1024,
                  static_cast<int>(rng.below(2048)) - 1024};
    a.push_back(pack_cplx(x));
    bb.push_back(pack_cplx(w));
    expect.push_back(pack_cplx(sat_cplx(shr_round(x * w, shift), kHalfBits)));
  }
  EXPECT_EQ(run_scalar_cmul(a, bb, shift), expect)
      << "word-granular decomposition must be bit-identical to kCMulShr";
}

TEST(Macros, Clip12Bounds) {
  ConfigBuilder b("clip");
  const auto in = b.input("in");
  const PortRef clipped = macros::clip12(b, "c", in.out(0));
  const auto out = b.output("out");
  b.connect(clipped, out.in(0));
  ConfigurationManager mgr;
  const auto r = run_config(mgr, b.build(),
                            {{"in", {0, 5000, -5000, 2047, -2048}}},
                            {{"out", 5}});
  EXPECT_EQ(r.outputs.at("out"),
            (std::vector<Word>{0, 2047, -2048, 2047, -2048}));
}

TEST(Macros, ResourceCostDocumented) {
  // The coarse-grained packed-complex ALU does in 1 PAE what the
  // scalar decomposition needs kScalarCmulAlus for — the ablation
  // bench quantifies this; the constant must stay truthful.
  ConfigBuilder b("count");
  const auto ia = b.input("a");
  const auto ib = b.input("b");
  (void)macros::scalar_cmul(b, "cm", 4, ia.out(0), ib.out(0));
  EXPECT_EQ(b.build().alu_demand(), macros::kScalarCmulAlus);
}

}  // namespace
}  // namespace rsp::xpp

// Fuzz battery for delta reconfiguration: for randomized configuration
// pairs, switching via load_delta must leave the ResourceMap and the
// array's observable behaviour bit-identical to a full release + load,
// a failed delta must roll back exactly (snapshot byte-compare), and
// the park/acquire pool must re-arm configurations identically to a
// fresh load.  Style follows tests/xpp/test_builder_fuzz.cpp: every
// case is seeded so a failure replays exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/xpp/builder.hpp"
#include "src/xpp/manager.hpp"
#include "src/xpp/snapshot.hpp"

namespace rsp::xpp {
namespace {

constexpr std::uint64_t kFuzzBase = 0xDE17A0ull;
constexpr int kPairs = 400;

constexpr Opcode kUnaryOps[] = {Opcode::kNop, Opcode::kNeg, Opcode::kAbs,
                                Opcode::kNot, Opcode::kCConj, Opcode::kCNeg};
constexpr Opcode kBinaryOps[] = {Opcode::kAdd, Opcode::kSub, Opcode::kMul,
                                 Opcode::kAnd, Opcode::kOr,  Opcode::kXor,
                                 Opcode::kMin, Opcode::kMax};

/// Random rate-1:1 pipeline "in" -> stages -> "out".  Drawing both
/// configurations of a pair from closely related seeds produces a mix
/// of identical, slightly-different and completely-different pairs.
Configuration random_pipeline(Rng& rng, const std::string& name) {
  ConfigBuilder b(name);
  const auto in = b.input("in");
  PortRef src = in.out(0);
  const int stages = 2 + static_cast<int>(rng.below(5));
  for (int i = 0; i < stages; ++i) {
    ObjHandle stage;
    const std::string sname = "s" + std::to_string(i);
    if (rng.below(2) == 0) {
      stage = b.alu(sname, kUnaryOps[rng.below(std::size(kUnaryOps))]);
    } else {
      stage = b.alu(sname, kBinaryOps[rng.below(std::size(kBinaryOps))]);
      b.tie(stage, 1, static_cast<Word>(rng.below(4096)) - 2048);
    }
    b.connect(src, stage.in(0));
    src = stage.out(0);
  }
  const auto out = b.output("out");
  b.connect(src, out.in(0));
  return b.build();
}

std::vector<Word> random_words(Rng& rng, std::size_t n) {
  std::vector<Word> w(n);
  for (auto& v : w) v = static_cast<Word>(rng.below(1u << 24)) - (1 << 23);
  return w;
}

/// Feed @p words into the sole live config and drain "out".
std::vector<Word> drive(ConfigurationManager& mgr, ConfigId id,
                        const std::vector<Word>& words) {
  mgr.input(id, "in").feed(words);
  auto& out = mgr.output(id, "out");
  for (int guard = 0; guard < 100000 && out.data().size() < words.size();
       ++guard) {
    mgr.sim().step();
  }
  EXPECT_EQ(out.data().size(), words.size());
  return out.take();
}

struct ResourceSnapshot {
  int free_alu = 0;
  int free_ram = 0;
  int free_io = 0;
  int routing = 0;
  int objects = 0;
  std::string occupancy;

  friend bool operator==(const ResourceSnapshot&,
                         const ResourceSnapshot&) = default;
};

ResourceSnapshot resource_snapshot(const ConfigurationManager& mgr) {
  return {mgr.resources().free_alu_cells(), mgr.resources().free_ram_cells(),
          mgr.resources().free_io_channels(), mgr.resources().routing_in_use(),
          mgr.sim().object_count(), mgr.resources().occupancy_map()};
}

// The core equivalence: delta-switching A -> B lands in exactly the
// state (resources, placement, behaviour) of release(A) + load(B).
TEST(DeltaFuzz, DeltaSwitchEquivalentToFullReleaseLoad) {
  for (int pair = 0; pair < kPairs; ++pair) {
    const std::uint64_t seed = Rng::split(kFuzzBase, pair);
    Rng rng(seed);
    Rng rng_a(Rng::split(seed, 1));
    // Every third pair: identical configurations (pure re-arm delta).
    Rng rng_b(Rng::split(seed, (pair % 3 == 0) ? 1 : 2));
    const Configuration a = random_pipeline(rng_a, "fuzz_a");
    const Configuration b = random_pipeline(rng_b, (pair % 3 == 0)
                                                       ? "fuzz_a"
                                                       : "fuzz_b");
    const auto words = random_words(rng, 16);

    ConfigurationManager delta_mgr;
    const ConfigId a1 = delta_mgr.load(a);
    (void)drive(delta_mgr, a1, words);  // dirty the dynamic state
    const DeltaReport rep = delta_mgr.load_delta(a1, b);
    EXPECT_EQ(rep.delta_cycles, config_delta_cycles(a, b)) << "pair " << pair;
    EXPECT_FALSE(delta_mgr.loaded(a1));
    ASSERT_TRUE(delta_mgr.loaded(rep.id));

    ConfigurationManager full_mgr;
    const ConfigId a2 = full_mgr.load(a);
    (void)drive(full_mgr, a2, words);
    full_mgr.release(a2);
    const ConfigId b2 = full_mgr.load(b);

    ASSERT_EQ(resource_snapshot(delta_mgr), resource_snapshot(full_mgr))
        << "pair " << pair;
    // Identical post-switch behaviour, word for word.
    const auto probe = random_words(rng, 16);
    ASSERT_EQ(drive(delta_mgr, rep.id, probe), drive(full_mgr, b2, probe))
        << "pair " << pair;

    // An identical-configuration delta is the documented floor cost.
    if (pair % 3 == 0) {
      EXPECT_EQ(rep.changed_objects, 0) << "pair " << pair;
      EXPECT_EQ(rep.changed_nets, 0) << "pair " << pair;
      EXPECT_EQ(rep.delta_cycles, kDeltaCyclesBase) << "pair " << pair;
    }
  }
}

// Mid-apply failure (target does not fit after the live config is
// released) must restore the manager bit-exactly: same snapshot bytes,
// live config still serving.
TEST(DeltaFuzz, FailedDeltaRollsBackExactly) {
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t seed = Rng::split(kFuzzBase ^ 0xB00Bull, trial);
    Rng rng(seed);
    ConfigurationManager mgr;

    // Filler occupies most of the array so the oversized target cannot
    // be placed once the small live config is released.
    ConfigBuilder filler("filler");
    const auto fin = filler.input("in");
    PortRef fsrc = fin.out(0);
    const int alu_cells = mgr.resources().free_alu_cells();
    for (int i = 0; i < alu_cells - 8; ++i) {
      const auto s = filler.alu("f" + std::to_string(i), Opcode::kNop);
      filler.connect(fsrc, s.in(0));
      fsrc = s.out(0);
    }
    const auto fout = filler.output("out");
    filler.connect(fsrc, fout.in(0));
    (void)mgr.load(filler.build());

    Rng rng_a(Rng::split(seed, 1));
    const Configuration small = random_pipeline(rng_a, "small");
    const ConfigId live = mgr.load(small);
    const auto words = random_words(rng, 8);
    (void)drive(mgr, live, words);

    ConfigBuilder big("too_big");
    const auto bin = big.input("in");
    PortRef bsrc = bin.out(0);
    for (int i = 0; i < 16; ++i) {  // > the 8 cells the release frees
      const auto s = big.alu("b" + std::to_string(i), Opcode::kNop);
      big.connect(bsrc, s.in(0));
      bsrc = s.out(0);
    }
    const auto bout = big.output("out");
    big.connect(bsrc, bout.in(0));

    const std::string before = save_snapshot(mgr);
    EXPECT_THROW((void)mgr.load_delta(live, big.build()), ConfigError)
        << "trial " << trial;
    EXPECT_EQ(save_snapshot(mgr), before) << "trial " << trial;
    ASSERT_TRUE(mgr.loaded(live));
    // The survivor still behaves.
    const auto probe = random_words(rng, 8);
    ConfigurationManager ref_mgr;
    const ConfigId ref = ref_mgr.load(small);
    (void)drive(ref_mgr, ref, words);
    ASSERT_EQ(drive(mgr, live, probe), drive(ref_mgr, ref, probe))
        << "trial " << trial;
  }
}

// A corrupted target (stale checksum) is rejected up front — before
// the live config is disturbed at all.
TEST(DeltaFuzz, CorruptTargetRejectedBeforeAnyMutation) {
  Rng rng_a(Rng::split(kFuzzBase + 0xC0FEull, 1));
  Rng rng_b(Rng::split(kFuzzBase + 0xC0FEull, 2));
  ConfigurationManager mgr;
  const ConfigId live = mgr.load(random_pipeline(rng_a, "live"));
  Configuration bad = random_pipeline(rng_b, "bad");
  bad.checksum = *bad.checksum ^ 1;  // stored CRC no longer matches
  const std::string before = save_snapshot(mgr);
  EXPECT_THROW((void)mgr.load_delta(live, bad), ConfigError);
  EXPECT_EQ(save_snapshot(mgr), before);
  EXPECT_THROW((void)mgr.load_delta(live + 100, random_pipeline(rng_b, "x")),
               ConfigError);  // unknown live id
}

// Park/acquire pool: a parked configuration keeps its placement, an
// acquire re-arms it with fresh dynamic state identical to a fresh
// load, and releasing a parked id frees its cells.
TEST(DeltaFuzz, ParkAcquireRearmsIdenticallyToFreshLoad) {
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t seed = Rng::split(kFuzzBase + 0x9A47ull, trial);
    Rng rng(seed);
    Rng rng_a(Rng::split(seed, 1));
    const Configuration cfg = random_pipeline(rng_a, "pool");
    const auto words = random_words(rng, 12);

    ConfigurationManager mgr;
    const ConfigId id = mgr.load(cfg);
    (void)drive(mgr, id, words);  // dirty state that park must discard
    const int free_before_park = mgr.resources().free_alu_cells();
    mgr.park(id);
    EXPECT_TRUE(mgr.parked(id));
    EXPECT_FALSE(mgr.loaded(id));
    // Placement is retained while parked; only the objects leave.
    EXPECT_EQ(mgr.resources().free_alu_cells(), free_before_park);
    EXPECT_EQ(mgr.sim().object_count(), 0);

    mgr.acquire(id);
    EXPECT_TRUE(mgr.loaded(id));
    EXPECT_FALSE(mgr.parked(id));
    EXPECT_EQ(mgr.info(id).load_cycles, kAcquireCycles);

    ConfigurationManager fresh;
    const ConfigId fid = fresh.load(cfg);
    const auto probe = random_words(rng, 12);
    ASSERT_EQ(drive(mgr, id, probe), drive(fresh, fid, probe))
        << "trial " << trial;

    // Releasing from the pool frees everything.
    mgr.park(id);
    mgr.release(id);
    EXPECT_FALSE(mgr.parked(id));
    EXPECT_EQ(mgr.resources().free_alu_cells(),
              ConfigurationManager().resources().free_alu_cells());
  }
}

// Snapshots refuse to run while pool entries exist (a parked entry has
// placement claims but no live array state to capture).
TEST(DeltaFuzz, SnapshotRefusesWhileParked) {
  Rng rng_a(Rng::split(kFuzzBase + 0x57A7ull, 1));
  ConfigurationManager mgr;
  const ConfigId id = mgr.load(random_pipeline(rng_a, "parkme"));
  mgr.park(id);
  EXPECT_THROW((void)save_snapshot(mgr), SnapshotError);
  mgr.acquire(id);
  EXPECT_NO_THROW((void)save_snapshot(mgr));
}

}  // namespace
}  // namespace rsp::xpp

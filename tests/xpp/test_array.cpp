#include "src/xpp/array.hpp"

#include <gtest/gtest.h>

#include "src/xpp/builder.hpp"

namespace rsp::xpp {
namespace {

Configuration n_alu_config(const std::string& name, int n) {
  ConfigBuilder b(name);
  for (int i = 0; i < n; ++i) {
    const auto a = b.alu("a" + std::to_string(i), Opcode::kNop);
    b.tie(a, 0, 0);
  }
  return b.build();
}

TEST(Array, GeometryMatchesXpp64A) {
  const ArrayGeometry g;
  EXPECT_EQ(g.alu_count(), 64) << "8x8 ALU-PAEs";
  EXPECT_EQ(g.ram_count(), 16) << "8 RAM-PAEs on either side";
  EXPECT_EQ(g.io_channels, 8) << "four dual-channel I/O ports";
  EXPECT_TRUE(g.is_ram_col(0));
  EXPECT_TRUE(g.is_ram_col(9));
  EXPECT_FALSE(g.is_ram_col(1));
}

TEST(Array, AutoPlacementCounts) {
  ResourceMap rm{ArrayGeometry{}};
  (void)rm.place(n_alu_config("a", 10), 0);
  EXPECT_EQ(rm.used_alu_cells(), 10);
  EXPECT_EQ(rm.free_alu_cells(), 54);
}

TEST(Array, ExhaustsAluPool) {
  ResourceMap rm{ArrayGeometry{}};
  (void)rm.place(n_alu_config("a", 64), 0);
  EXPECT_THROW((void)rm.place(n_alu_config("b", 1), 1), ConfigError);
}

TEST(Array, IllegalOverwriteRejected) {
  ResourceMap rm{ArrayGeometry{}};
  ConfigBuilder b1("one");
  auto a1 = b1.alu("a", Opcode::kNop);
  b1.tie(a1, 0, 0);
  b1.place(a1, {2, 3});
  (void)rm.place(b1.build(), 0);

  ConfigBuilder b2("two");
  auto a2 = b2.alu("a", Opcode::kNop);
  b2.tie(a2, 0, 0);
  b2.place(a2, {2, 3});
  EXPECT_THROW((void)rm.place(b2.build(), 1), ConfigError)
      << "configurations cannot be overwritten illegally";
  EXPECT_EQ(rm.owner({2, 3}), 0);
}

TEST(Array, RejectedPlacementRollsBack) {
  ResourceMap rm{ArrayGeometry{}};
  (void)rm.place(n_alu_config("fill", 60), 0);
  const int used = rm.used_alu_cells();
  EXPECT_THROW((void)rm.place(n_alu_config("big", 10), 1), ConfigError);
  EXPECT_EQ(rm.used_alu_cells(), used) << "failed load must not leak cells";
}

TEST(Array, WrongPaeTypeRejected) {
  ResourceMap rm{ArrayGeometry{}};
  ConfigBuilder b("bad");
  auto a = b.alu("a", Opcode::kNop);
  b.tie(a, 0, 0);
  b.place(a, {0, 0});  // column 0 is a RAM column
  EXPECT_THROW((void)rm.place(b.build(), 0), ConfigError);
}

TEST(Array, RamPlacedInRamColumns) {
  ResourceMap rm{ArrayGeometry{}};
  ConfigBuilder b("ram");
  RamParams p;
  p.mode = RamMode::kFifo;
  b.ram("f", std::move(p));
  const Placement pl = rm.place(b.build(), 0);
  EXPECT_TRUE(ArrayGeometry{}.is_ram_col(pl.object_cell[0].col));
  EXPECT_EQ(rm.used_ram_cells(), 1);
}

TEST(Array, IoChannelsExhaust) {
  ResourceMap rm{ArrayGeometry{}};
  ConfigBuilder b("io");
  for (int i = 0; i < 9; ++i) b.input("i" + std::to_string(i));
  EXPECT_THROW((void)rm.place(b.build(), 0), ConfigError);
}

TEST(Array, ReleaseFreesEverything) {
  ResourceMap rm{ArrayGeometry{}};
  ConfigBuilder b("cfg");
  const auto in = b.input("in");
  const auto a = b.alu("a", Opcode::kNop);
  const auto out = b.output("out");
  b.connect(in.out(0), a.in(0));
  b.connect(a.out(0), out.in(0));
  (void)rm.place(b.build(), 0);
  EXPECT_GT(rm.routing_in_use(), 0);
  rm.release(0);
  EXPECT_EQ(rm.used_alu_cells(), 0);
  EXPECT_EQ(rm.routing_in_use(), 0);
  EXPECT_EQ(rm.free_io_channels(), 8);
}

TEST(Array, RoutingCongestionDetected) {
  ArrayGeometry g;
  g.h_tracks_per_cell = 1;
  g.v_tracks_per_cell = 1;
  ResourceMap rm{g};
  // Many connections along the same row eventually exceed 1 track/cell.
  ConfigBuilder b("cong");
  const auto in = b.input("in");
  PortRef prev = in.out(0);
  bool threw = false;
  for (int i = 0; i < 12; ++i) {
    const auto a = b.alu("a" + std::to_string(i), Opcode::kDup);
    b.connect(prev, a.in(0));
    b.connect(prev, a.in(1));  // doubled nets on the same path
    prev = a.out(0);
  }
  try {
    (void)rm.place(b.build(), 0);
  } catch (const ConfigError&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

TEST(Array, OccupancyMapShape) {
  ResourceMap rm{ArrayGeometry{}};
  (void)rm.place(n_alu_config("a", 3), 0);
  const std::string map = rm.occupancy_map();
  EXPECT_EQ(map.size(), 8u * 11u);  // 10 cols + newline per row
  EXPECT_NE(map.find('A'), std::string::npos);
}

}  // namespace
}  // namespace rsp::xpp

// Pipeline behaviour of the synchronous token-flow model: the paper's
// throughput claim is that algorithms execute "in the form of a
// pipeline" delivering one result per cycle once full.
#include <gtest/gtest.h>

#include "tests/xpp/harness.hpp"

namespace rsp::xpp {
namespace {

/// Build a chain of n ADD(+1) stages and measure the cycles to push
/// k tokens through.
long long chain_cycles(int n_stages, int k_tokens, std::vector<Word>* out) {
  ConfigBuilder b("chain");
  const auto in = b.input("in");
  PortRef prev = in.out(0);
  for (int i = 0; i < n_stages; ++i) {
    const auto a = b.alu("add" + std::to_string(i), Opcode::kAdd);
    b.tie(a, 1, 1);
    b.connect(prev, a.in(0));
    prev = a.out(0);
  }
  const auto o = b.output("out");
  b.connect(prev, o.in(0));
  std::vector<Word> feed(static_cast<std::size_t>(k_tokens));
  for (int i = 0; i < k_tokens; ++i) feed[static_cast<std::size_t>(i)] = i;
  ConfigurationManager mgr;
  const auto r = run_config(mgr, b.build(), {{"in", feed}},
                            {{"out", static_cast<std::size_t>(k_tokens)}});
  if (out != nullptr) *out = r.outputs.at("out");
  return r.cycles;
}

TEST(Pipeline, OneResultPerCycleOnceFull) {
  std::vector<Word> out;
  const long long c = chain_cycles(8, 100, &out);
  // Latency ~ stages + epsilon, then 1 token/cycle.
  EXPECT_LE(c, 8 + 100 + 4);
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i + 8);
  }
}

TEST(Pipeline, LatencyGrowsWithDepth) {
  const long long c4 = chain_cycles(4, 1, nullptr);
  const long long c16 = chain_cycles(16, 1, nullptr);
  EXPECT_GT(c16, c4) << "deeper pipeline, longer fill latency";
}

TEST(Pipeline, FeedbackAccumulatorWithPreload) {
  // acc[n] = acc[n-1] + x[n] via an ADD with a preloaded feedback net.
  ConfigBuilder b("acc");
  const auto in = b.input("in");
  const auto add = b.alu("add", Opcode::kAdd);
  const auto dup = b.alu("dup", Opcode::kDup);
  const auto out = b.output("out");
  b.connect(in.out(0), add.in(0));
  b.connect(add.out(0), dup.in(0));
  b.connect_preload(dup.out(1), add.in(1), 0);  // feedback primed with 0
  b.connect(dup.out(0), out.in(0));
  ConfigurationManager mgr;
  const auto r =
      run_config(mgr, b.build(), {{"in", {1, 2, 3, 4, 5}}}, {{"out", 5}});
  EXPECT_EQ(r.outputs.at("out"), (std::vector<Word>{1, 3, 6, 10, 15}));
}

TEST(Pipeline, DeterministicReplay) {
  std::vector<Word> a;
  std::vector<Word> b;
  const long long ca = chain_cycles(6, 37, &a);
  const long long cb = chain_cycles(6, 37, &b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ca, cb) << "identical runs must take identical cycles";
}

TEST(Pipeline, BackpressureDoesNotLoseTokens) {
  // A fork where one branch is much deeper: the join must still pair
  // tokens correctly.
  ConfigBuilder b("fork");
  const auto in = b.input("in");
  const auto dup = b.alu("dup", Opcode::kDup);
  b.connect(in.out(0), dup.in(0));
  PortRef deep = dup.out(1);
  for (int i = 0; i < 12; ++i) {
    const auto n = b.alu("nop" + std::to_string(i), Opcode::kNop);
    b.connect(deep, n.in(0));
    deep = n.out(0);
  }
  const auto sub = b.alu("sub", Opcode::kSub);
  b.connect(dup.out(0), sub.in(0));
  b.connect(deep, sub.in(1));
  const auto out = b.output("out");
  b.connect(sub.out(0), out.in(0));
  ConfigurationManager mgr;
  std::vector<Word> feed;
  for (int i = 0; i < 50; ++i) feed.push_back(i * 3);
  const auto r = run_config(mgr, b.build(), {{"in", feed}}, {{"out", 50}});
  for (const auto w : r.outputs.at("out")) {
    EXPECT_EQ(w, 0) << "x - x through unequal-depth branches must be 0";
  }
}

TEST(Pipeline, TotalFiresMatchWork) {
  ConfigBuilder b("fires");
  const auto in = b.input("in");
  const auto a = b.alu("a", Opcode::kNop);
  const auto out = b.output("out");
  b.connect(in.out(0), a.in(0));
  b.connect(a.out(0), out.in(0));
  ConfigurationManager mgr;
  const ConfigId id = mgr.load(b.build());
  mgr.input(id, "in").feed({1, 2, 3});
  mgr.sim().run_until_quiescent(100);
  const auto stats = mgr.sim().stats(mgr.info(id).group);
  for (const auto& s : stats) {
    EXPECT_EQ(s.fires, 3) << s.name;
  }
}

}  // namespace
}  // namespace rsp::xpp

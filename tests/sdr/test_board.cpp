#include "src/sdr/board.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "src/ofdm/maps.hpp"
#include "src/rake/maps.hpp"

namespace rsp::sdr {
namespace {

TEST(Board, ComponentsPresent) {
  SdrBoard board;
  EXPECT_EQ(board.array().resources().geometry().alu_count(), 64);
  EXPECT_EQ(board.dsp().clock_hz(), dsp::kDspClockHz);
  EXPECT_EQ(board.microcontroller().clock_hz(), 100.0e6);
  board.fpga_route(128);
  EXPECT_EQ(board.fpga_words_routed(), 128);
}

TEST(Board, FpgaRouteRejectsNegativeWordCounts) {
  // Regression: a negative delta used to drive the monotone crossbar
  // counter negative with no diagnostic (and board snapshots would
  // round-trip the corrupt value forever).
  SdrBoard board;
  board.fpga_route(64);
  EXPECT_THROW(board.fpga_route(-1), std::invalid_argument);
  EXPECT_THROW(board.fpga_route(std::numeric_limits<long long>::min()),
               std::invalid_argument);
  EXPECT_EQ(board.fpga_words_routed(), 64) << "failed route must not account";
  board.fpga_route(0);  // zero stays legal (no-op)
  EXPECT_EQ(board.fpga_words_routed(), 64);
}

TEST(TimeSlicerTest, RecordsSliceStats) {
  SdrBoard board;
  TimeSlicer slicer(board.array());
  const auto rec = slicer.slice("umts", [](xpp::ConfigurationManager& mgr) {
    const auto cfg = rake::maps::despreader_config(16, 1);
    const auto id = mgr.load(cfg);
    mgr.sim().run(100);
    mgr.release(id);
  });
  EXPECT_GT(rec.cycles, 100);
  EXPECT_GT(rec.config_cycles, 0);
  EXPECT_EQ(rec.peak_alu_cells, 3);
  EXPECT_EQ(rec.peak_ram_cells, 1);
  EXPECT_EQ(slicer.history().size(), 1u);
}

TEST(TimeSlicerTest, SharedArrayNeedsOnlyPeakNotSum) {
  // The multi-link saving: time-slicing UMTS and WLAN over one array
  // needs max(peaks), a dedicated design needs the sum.
  SdrBoard board;
  TimeSlicer slicer(board.array());
  for (int round = 0; round < 3; ++round) {
    slicer.slice("umts", [](xpp::ConfigurationManager& mgr) {
      const auto id = mgr.load(rake::maps::despreader_config(64, 3));
      mgr.sim().run(50);
      mgr.release(id);
    });
    slicer.slice("wlan", [](xpp::ConfigurationManager& mgr) {
      const auto id = mgr.load(ofdm::maps::fft64_stage_config(0));
      mgr.sim().run(50);
      mgr.release(id);
    });
  }
  EXPECT_LT(slicer.peak_alu_cells(), slicer.sum_alu_cells())
      << "time slicing must beat dedicated provisioning";
  EXPECT_GT(slicer.total_config_cycles(), 0);
  EXPECT_GT(slicer.config_overhead(), 0.0);
  EXPECT_LT(slicer.config_overhead(), 1.0);
}

TEST(TimeSlicerTest, LeakDetection) {
  SdrBoard board;
  TimeSlicer slicer(board.array());
  xpp::ConfigId leaked = -1;
  EXPECT_THROW(
      slicer.slice("leaky",
                   [&](xpp::ConfigurationManager& mgr) {
                     leaked = mgr.load(rake::maps::despreader_config(8, 1));
                   }),
      std::logic_error);
  board.array().release(leaked);
}

}  // namespace
}  // namespace rsp::sdr

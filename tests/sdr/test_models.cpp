#include <gtest/gtest.h>

#include "src/sdr/area_model.hpp"
#include "src/sdr/mips_model.hpp"
#include "src/sdr/partitioning.hpp"
#include "src/sdr/rate_mobility.hpp"

namespace rsp::sdr {
namespace {

TEST(MipsModel, Figure1SeriesShape) {
  const auto series = figure1_series();
  ASSERT_EQ(series.size(), 5u);
  // Paper's consensus values.
  EXPECT_EQ(series[0].paper_mips, 10.0);
  EXPECT_EQ(series[1].paper_mips, 100.0);
  EXPECT_EQ(series[2].paper_mips, 1000.0);
  EXPECT_EQ(series[3].paper_mips, 10000.0);
  EXPECT_EQ(series[4].paper_mips, 5000.0);
  // Monotone ordering GSM < GPRS < EDGE < WLAN-class demands.
  EXPECT_LT(series[0].modeled_mips, series[1].modeled_mips);
  EXPECT_LT(series[1].modeled_mips, series[2].modeled_mips);
  EXPECT_LT(series[2].modeled_mips, series[3].modeled_mips);
  // Bottom-up models land within an order of magnitude of the paper.
  for (const auto& p : series) {
    EXPECT_GT(p.modeled_mips, p.paper_mips / 10.0) << p.name;
    EXPECT_LT(p.modeled_mips, p.paper_mips * 10.0) << p.name;
  }
}

TEST(MipsModel, UmtsScalesWithFingers) {
  EXPECT_GT(umts_rake_mips(18), umts_rake_mips(1));
  EXPECT_GT(umts_rake_mips(18), 1000.0) << "3G demands thousands of MIPS";
}

TEST(MipsModel, OfdmScalesWithRate) {
  EXPECT_GT(ofdm_wlan_mips(54), ofdm_wlan_mips(6));
  EXPECT_GT(ofdm_wlan_mips(54), 1000.0);
}

TEST(RateMobility, EnvelopeShape) {
  const auto env = figure2_envelope();
  EXPECT_GE(env.size(), 8u);
  // WLANs: high rate, low mobility only.
  double wlan_max = 0.0;
  double cell_vehicle_max = 0.0;
  for (const auto& e : env) {
    if (e.protocol == "IEEE 802.11a" || e.protocol == "HIPERLAN/2") {
      wlan_max = std::max(wlan_max, e.rate_mbps);
      EXPECT_NE(e.mobility, Mobility::kOutdoorVehicle)
          << "WLAN does not serve vehicular mobility";
    }
    if (e.mobility == Mobility::kOutdoorVehicle) {
      cell_vehicle_max = std::max(cell_vehicle_max, e.rate_mbps);
    }
  }
  EXPECT_EQ(wlan_max, 54.0);
  EXPECT_LE(cell_vehicle_max, 0.384) << "cellular caps at 384 kbit/s mobile";
  EXPECT_GT(mobility_speed(Mobility::kOutdoorVehicle),
            mobility_speed(Mobility::kIndoorWalking));
}

TEST(Partitioning, RakeFig4Assignment) {
  const auto tasks = rake_partitioning(18);
  // Streaming datapath dominates and sits on the reconfigurable array.
  const double reconf = total_mops(tasks, Resource::kReconfigurable);
  const double dsp = total_mops(tasks, Resource::kDsp);
  const double ded = total_mops(tasks, Resource::kDedicated);
  EXPECT_GT(reconf, dsp);
  EXPECT_GT(reconf, ded);
  // The paper's named tasks all appear.
  const auto has = [&](const std::string& name, Resource r) {
    for (const auto& t : tasks) {
      if (t.task == name) return t.resource == r;
    }
    return false;
  };
  EXPECT_TRUE(has("de-scrambling", Resource::kReconfigurable));
  EXPECT_TRUE(has("de-spreading", Resource::kReconfigurable));
  EXPECT_TRUE(has("combining", Resource::kReconfigurable));
  EXPECT_TRUE(has("scrambling code generation", Resource::kDedicated));
  EXPECT_TRUE(has("spreading code generation", Resource::kDedicated));
  EXPECT_TRUE(has("pilot acquisition (path search)", Resource::kDsp));
  EXPECT_TRUE(has("channel estimation", Resource::kDsp));
}

TEST(Partitioning, RakeScalesWithFingers) {
  const auto t18 = rake_partitioning(18);
  const auto t1 = rake_partitioning(1);
  EXPECT_GT(total_mops(t18, Resource::kReconfigurable),
            10.0 * total_mops(t1, Resource::kReconfigurable));
}

TEST(Partitioning, OfdmFig8Assignment) {
  const auto tasks = ofdm_partitioning(54);
  const auto find = [&](const std::string& name) -> const TaskLoad* {
    for (const auto& t : tasks) {
      if (t.task == name) return &t;
    }
    return nullptr;
  };
  ASSERT_NE(find("FFT64"), nullptr);
  EXPECT_EQ(find("FFT64")->resource, Resource::kReconfigurable);
  ASSERT_NE(find("Viterbi decoder"), nullptr);
  EXPECT_EQ(find("Viterbi decoder")->resource, Resource::kDedicated);
  ASSERT_NE(find("layer-2 processing"), nullptr);
  EXPECT_EQ(find("layer-2 processing")->resource, Resource::kDsp);
  // Higher rates demand more.
  EXPECT_GT(total_mops(ofdm_partitioning(54), Resource::kReconfigurable),
            total_mops(ofdm_partitioning(6), Resource::kReconfigurable));
}

TEST(AreaModel, Xpp64aDieEstimate) {
  const auto a = AreaModel::area(xpp::ArrayGeometry{});
  EXPECT_GT(a.total_mm2, 15.0);
  EXPECT_LT(a.total_mm2, 50.0) << "0.13um XPP64A-class die";
  EXPECT_GT(a.alu_pae_mm2, a.io_mm2);
  EXPECT_NEAR(a.total_mm2,
              a.alu_pae_mm2 + a.ram_pae_mm2 + a.io_mm2 +
                  a.config_manager_mm2 + a.routing_overhead_mm2,
              1e-9);
}

TEST(AreaModel, PowerScalesWithActivity) {
  const xpp::ArrayGeometry g;
  const double idle = AreaModel::power_mw(g, 0, 1000000, 50.0e6);
  const double busy = AreaModel::power_mw(g, 50'000'000, 1000000, 50.0e6);
  EXPECT_GT(busy, idle);
  EXPECT_GT(idle, 0.0) << "leakage floor";
  EXPECT_LT(busy, 2000.0) << "sub-2W mobile budget";
}

TEST(ResourceNames, Strings) {
  EXPECT_STREQ(resource_name(Resource::kReconfigurable), "reconfigurable");
  EXPECT_STREQ(resource_name(Resource::kDedicated), "dedicated");
  EXPECT_STREQ(resource_name(Resource::kDsp), "DSP");
  EXPECT_STREQ(mobility_name(Mobility::kIndoorStationary),
               "indoor/stationary");
}

}  // namespace
}  // namespace rsp::sdr

#include "src/common/rng.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace rsp {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
  Rng r(7);
  double mean = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mean += u;
  }
  EXPECT_NEAR(mean / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng r(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = r.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ComplexGaussianPower) {
  Rng r(99);
  double p = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) p += std::norm(r.cgaussian(2.0));
  EXPECT_NEAR(p / n, 2.0, 0.1);
}

TEST(Rng, BelowBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

}  // namespace
}  // namespace rsp

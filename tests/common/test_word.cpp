#include "src/common/word.hpp"

#include <gtest/gtest.h>

namespace rsp {
namespace {

TEST(Word, SignExtend) {
  EXPECT_EQ(sign_extend(0x000, 12), 0);
  EXPECT_EQ(sign_extend(0x7FF, 12), 2047);
  EXPECT_EQ(sign_extend(0x800, 12), -2048);
  EXPECT_EQ(sign_extend(0xFFF, 12), -1);
  EXPECT_EQ(sign_extend(0x7FFFFF, 24), 8388607);
  EXPECT_EQ(sign_extend(0x800000, 24), -8388608);
}

TEST(Word, Wrap24) {
  EXPECT_EQ(wrap24(0), 0);
  EXPECT_EQ(wrap24(8388607), 8388607);
  EXPECT_EQ(wrap24(8388608), -8388608);  // wraps
  EXPECT_EQ(wrap24(-8388609), 8388607);
  EXPECT_EQ(wrap24(1LL << 40), 0);
}

TEST(Word, Saturate) {
  EXPECT_EQ(saturate(100, 12), 100);
  EXPECT_EQ(saturate(5000, 12), 2047);
  EXPECT_EQ(saturate(-5000, 12), -2048);
  EXPECT_EQ(saturate((1LL << 40), 24), 8388607);
  EXPECT_EQ(saturate(-(1LL << 40), 24), -8388608);
}

TEST(Word, SatArithmetic) {
  EXPECT_EQ(sat_add24(8388600, 100), 8388607);
  EXPECT_EQ(sat_add24(-8388600, -100), -8388608);
  EXPECT_EQ(sat_add24(1, 2), 3);
  EXPECT_EQ(sat_sub24(-8388600, 100), -8388608);
  EXPECT_EQ(sat_mul24(4096, 4096), 8388607);
  EXPECT_EQ(sat_mul24(-4096, 4096), -8388608);
  EXPECT_EQ(sat_mul24(3, -7), -21);
}

TEST(Word, ShrRound) {
  EXPECT_EQ(shr_round(4, 1), 2);
  EXPECT_EQ(shr_round(5, 1), 3);   // rounds away from zero
  EXPECT_EQ(shr_round(-5, 1), -3);
  EXPECT_EQ(shr_round(7, 2), 2);
  EXPECT_EQ(shr_round(-7, 2), -2);
  EXPECT_EQ(shr_round(123, 0), 123);
}

TEST(Word, PackUnpackRoundTrip) {
  for (int i = -2048; i <= 2047; i += 73) {
    for (int q = -2048; q <= 2047; q += 97) {
      const auto w = pack_iq(i, q);
      EXPECT_EQ(unpack_i(w), i);
      EXPECT_EQ(unpack_q(w), q);
      EXPECT_EQ(w, sign_extend(w, kWordBits)) << "packed word must be 24-bit";
    }
  }
}

TEST(Word, Fits) {
  EXPECT_TRUE(fits(2047, 12));
  EXPECT_FALSE(fits(2048, 12));
  EXPECT_TRUE(fits(-2048, 12));
  EXPECT_FALSE(fits(-2049, 12));
}

}  // namespace
}  // namespace rsp

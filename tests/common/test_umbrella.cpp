// The umbrella header must compile standalone and expose the API.
#include "src/rsp.hpp"

#include <gtest/gtest.h>

TEST(Umbrella, HeaderCompilesAndNamesResolve) {
  rsp::Rng rng(1);
  EXPECT_NE(rng.next(), rng.next());
  EXPECT_EQ(rsp::rake::kMaxVirtualFingers, 18);
  EXPECT_EQ(rsp::xpp::ArrayGeometry{}.alu_count(), 64);
  EXPECT_EQ(rsp::phy::rate_mode(54).ndbps, 216);
  EXPECT_EQ(rsp::gsm::kBurstSymbols, 148);
}

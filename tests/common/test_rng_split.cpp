// Statistical smoke tests for Rng::split — the seed-splitting scheme
// the scenario farm derives every task's stream from.  These are
// deterministic (fixed base seeds), so they are regression tests on the
// mixing function, not flaky Monte-Carlo assertions.
#include "src/common/rng.hpp"

#include <cmath>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace rsp {
namespace {

TEST(RngSplit, PureFunctionOfBaseAndIndex) {
  EXPECT_EQ(Rng::split(42, 7), Rng::split(42, 7));
  EXPECT_NE(Rng::split(42, 7), Rng::split(42, 8));
  EXPECT_NE(Rng::split(42, 7), Rng::split(43, 7));
}

TEST(RngSplit, TenThousandSiblingsNoIdenticalSeedsOrPrefixes) {
  const int kSiblings = 10000;
  std::set<std::uint64_t> seeds;
  std::set<std::pair<std::uint64_t, std::uint64_t>> prefixes;
  for (int i = 0; i < kSiblings; ++i) {
    const std::uint64_t s = Rng::split(0xDEADBEEFull, static_cast<std::uint64_t>(i));
    seeds.insert(s);
    Rng r(s);
    prefixes.insert({r.next(), r.next()});
  }
  // Distinct seeds are guaranteed by construction; distinct 128-bit
  // stream prefixes must follow, or streams would overlap pairwise.
  EXPECT_EQ(seeds.size(), static_cast<std::size_t>(kSiblings));
  EXPECT_EQ(prefixes.size(), static_cast<std::size_t>(kSiblings));
}

TEST(RngSplit, SiblingStreamsDoNotAliasUnderIndexStride) {
  // Adjacent, strided and base-shifted splits must not collide either —
  // a weak mixer (e.g. base ^ index) fails exactly here.
  std::set<std::uint64_t> seeds;
  int n = 0;
  for (std::uint64_t base : {0ull, 1ull, 2ull, 0x9E3779B97F4A7C15ull}) {
    for (std::uint64_t i = 0; i < 1000; ++i) {
      seeds.insert(Rng::split(base, i));
      seeds.insert(Rng::split(base, (i + 1000) * 1024));  // disjoint indices
      n += 2;
    }
  }
  EXPECT_EQ(seeds.size(), static_cast<std::size_t>(n));
}

TEST(RngSplit, PooledUniformsPassChiSquare) {
  // Pool 10 uniforms from each of 10k sibling streams into 100 equal
  // bins.  With 100k samples E[bin] = 1000; the chi-square statistic
  // over 99 degrees of freedom should sit near 99 — we accept < 150
  // (p ~ 7e-4), far above anything a correlated splitter produces
  // (inter-stream correlation inflates the statistic by orders of
  // magnitude).
  const int kStreams = 10000;
  const int kPerStream = 10;
  const int kBins = 100;
  std::vector<int> bins(kBins, 0);
  for (int i = 0; i < kStreams; ++i) {
    Rng r(Rng::split(2026, static_cast<std::uint64_t>(i)));
    for (int k = 0; k < kPerStream; ++k) {
      const double u = r.uniform();
      ASSERT_GE(u, 0.0);
      ASSERT_LT(u, 1.0);
      bins[static_cast<int>(u * kBins)] += 1;
    }
  }
  const double expected =
      static_cast<double>(kStreams) * kPerStream / kBins;
  double chi2 = 0.0;
  for (const int b : bins) {
    const double d = b - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 150.0) << "pooled sibling uniforms are not uniform";
  EXPECT_GT(chi2, 55.0) << "suspiciously sub-random (p ~ 1e-4)";
}

TEST(RngSplit, SiblingBitsAreBalanced) {
  // First draw of each of 10k siblings: every bit position should be
  // set roughly half the time (4-sigma band: 5000 +- 200).
  const int kSiblings = 10000;
  int ones[64] = {};
  for (int i = 0; i < kSiblings; ++i) {
    Rng r(Rng::split(77, static_cast<std::uint64_t>(i)));
    const std::uint64_t v = r.next();
    for (int b = 0; b < 64; ++b) ones[b] += (v >> b) & 1u;
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(ones[b], 5000, 200) << "bit " << b;
  }
}

TEST(RngSplit, GaussianSpareStateNeverLeaksAcrossTasks) {
  // gaussian() caches the Box-Muller sine draw inside the instance.
  // Task isolation demands one Rng per task, so a task that drew an odd
  // number of gaussians must not perturb any other task's stream.
  const std::uint64_t sa = Rng::split(5, 0);
  const std::uint64_t sb = Rng::split(5, 1);

  // Reference: task b run alone.
  std::vector<double> alone;
  {
    Rng b(sb);
    for (int i = 0; i < 9; ++i) alone.push_back(b.gaussian());
  }

  // Task b run interleaved with task a, where a stops on a spare.
  std::vector<double> interleaved;
  {
    Rng a(sa);
    Rng b(sb);
    (void)a.gaussian();  // leaves a's spare loaded
    for (int i = 0; i < 5; ++i) interleaved.push_back(b.gaussian());
    (void)a.gaussian();  // consumes a's spare mid-way through b
    for (int i = 0; i < 4; ++i) interleaved.push_back(b.gaussian());
  }
  ASSERT_EQ(alone.size(), interleaved.size());
  for (std::size_t i = 0; i < alone.size(); ++i) {
    EXPECT_EQ(alone[i], interleaved[i]) << "draw " << i;
  }

  // And re-running the same task seed replays exactly, spare included.
  Rng c1(sa);
  Rng c2(sa);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(c1.gaussian(), c2.gaussian());
}

}  // namespace
}  // namespace rsp

// Pinned-value battery for the shared FNV-1a implementation.
//
// Two subsystems derive keys from this hash: the compiled engine's
// steady-state detector (per-cycle event-stream hashes, fast re-arm
// comparisons) and the batched replay program cache (config CRC-32 +
// steady-state signature keys shared across Simulator instances).  If
// either drifted — different basis, prime, mixing granularity or event
// recipe — identical terminals would silently stop sharing programs.
// Every value below is pinned to an exact literal so any change to
// src/common/fnv.hpp is a loud, deliberate decision.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/fnv.hpp"

namespace rsp {
namespace {

TEST(Fnv, ConstantsArePinned) {
  // NOTE: this basis is the repo's historical constant (it differs from
  // the canonical FNV-1a offset basis 14695981039346656037 by a dropped
  // digit).  It has been baked into every recorded steady-state
  // signature since the compiled engine landed; correctness only needs
  // both consumers to agree, so it is pinned as-is.
  EXPECT_EQ(kFnvBasis, 1469598103934665603ull);
  EXPECT_EQ(kFnvPrime, 1099511628211ull);
}

TEST(Fnv, SingleMixPinnedValues) {
  EXPECT_EQ(fnv1a_mix(kFnvBasis, 0), 4953163356653287321ull);
  EXPECT_EQ(fnv1a_mix(kFnvBasis, 1), 4953162257141659110ull);
  EXPECT_EQ(fnv1a_mix(kFnvBasis, 2), 4953161157630030899ull);
  EXPECT_EQ(fnv1a_mix(kFnvBasis, 255), 4953155660071889844ull);
  EXPECT_EQ(fnv1a_mix(kFnvBasis, 0xDEADBEEFull), 15597959157331910276ull);
  EXPECT_EQ(fnv1a_mix(kFnvBasis, 0xFFFFFFFFFFFFFFFFull),
            13493579617544636084ull);
}

TEST(Fnv, MixIsXorThenMultiply) {
  // Algebraic pin: one step is exactly (h ^ v) * prime mod 2^64.  This
  // catches a silent reorder to multiply-then-xor (FNV-1 vs FNV-1a).
  const std::uint64_t h = 0x0123456789ABCDEFull;
  const std::uint64_t v = 0x00FF00FF00FF00FFull;
  EXPECT_EQ(fnv1a_mix(h, v), (h ^ v) * kFnvPrime);
  EXPECT_NE(fnv1a_mix(h, v), (h * kFnvPrime) ^ v);
}

TEST(Fnv, SequencePinnedValue) {
  Fnv1a f;
  f.mix(1).mix(2).mix(3);
  EXPECT_EQ(f.value(), 11570874782335668893ull);
  // Order matters: 3,2,1 must differ.
  Fnv1a g;
  g.mix(3).mix(2).mix(1);
  EXPECT_NE(g.value(), f.value());
}

TEST(Fnv, DefaultSeedIsBasis) {
  EXPECT_EQ(Fnv1a().value(), kFnvBasis);
  EXPECT_EQ(Fnv1a(42).value(), 42ull);
  EXPECT_EQ(Fnv1a(42).mix(7).value(), fnv1a_mix(42, 7));
}

TEST(Fnv, BytesPinnedValue) {
  const std::string s = "abc";
  Fnv1a f;
  f.mix_bytes(s.data(), s.size());
  EXPECT_EQ(f.value(), 16242233503745875709ull);
  // mix_bytes must treat bytes as unsigned (a 0x80+ byte must not
  // sign-extend into the fold).
  const char hi[1] = {static_cast<char>(0xFF)};
  Fnv1a g;
  g.mix_bytes(hi, 1);
  EXPECT_EQ(g.value(), fnv1a_mix(kFnvBasis, 0xFFu));
}

TEST(Fnv, ConstexprUsable) {
  // The batch program cache computes shape hashes in constexpr-friendly
  // contexts; keep the whole surface constant-evaluable.
  constexpr std::uint64_t h = Fnv1a().mix(1).mix(2).mix(3).value();
  static_assert(h == 11570874782335668893ull);
  EXPECT_EQ(h, 11570874782335668893ull);
}

// Reimplementation of the compiled engine's per-cycle event-stream
// recipe (see hash_events in src/xpp/compiled.cpp): for each event mix
// kind, then the pointer bits, then the sink cast through uint32; after
// all events mix (count + 1).  Pinned with synthetic pointer values —
// the recipe, not live addresses, is what must never drift.
TEST(Fnv, EventRecipePinnedValues) {
  struct Ev {
    int kind;
    std::uint64_t ptr;
    std::int32_t sink;
  };
  const auto recipe = [](const std::vector<Ev>& evs) {
    Fnv1a f;
    for (const auto& e : evs) {
      f.mix(static_cast<std::uint64_t>(e.kind));
      f.mix(e.ptr);
      f.mix(static_cast<std::uint32_t>(e.sink));
    }
    f.mix(evs.size() + 1);
    return f.value();
  };
  EXPECT_EQ(recipe({}), 4953162257141659110ull);
  EXPECT_EQ(recipe({{0, 0x1000, -1}, {1, 0x2000, 2}, {2, 0x3000, -1}}),
            12686906879015170908ull);
  // The sink is folded as uint32, so -1 mixes as 0xFFFFFFFF, not as a
  // sign-extended 64-bit -1.
  EXPECT_EQ(recipe({{0, 0x1000, -1}}),
            Fnv1a().mix(0).mix(0x1000).mix(0xFFFFFFFFull).mix(2).value());
}

}  // namespace
}  // namespace rsp

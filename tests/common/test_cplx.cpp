#include "src/common/cplx.hpp"

#include <gtest/gtest.h>

namespace rsp {
namespace {

TEST(Cplx, Arithmetic) {
  const CplxI a{3, 4};
  const CplxI b{-2, 5};
  EXPECT_EQ(a + b, (CplxI{1, 9}));
  EXPECT_EQ(a - b, (CplxI{5, -1}));
  // (3+4j)(-2+5j) = -6 + 15j - 8j + 20j^2 = -26 + 7j
  EXPECT_EQ(a * b, (CplxI{-26, 7}));
  EXPECT_EQ(a.conj(), (CplxI{3, -4}));
  EXPECT_EQ(a.norm2(), 25);
}

TEST(Cplx, ConjMul) {
  const CplxI a{3, 4};
  const CplxI b{-2, 5};
  EXPECT_EQ(conj_mul(a, b), a * b.conj());
  // a * conj(a) = |a|^2 real
  EXPECT_EQ(conj_mul(a, a), (CplxI{25, 0}));
}

TEST(Cplx, PackRoundTrip) {
  const CplxI z{-1234, 987};
  EXPECT_EQ(unpack_cplx(pack_cplx(z)), z);
}

TEST(Cplx, SatAndShift) {
  EXPECT_EQ(sat_cplx({5000, -5000}, 12), (CplxI{2047, -2048}));
  EXPECT_EQ(shr_round(CplxI{5, -5}, 1), (CplxI{3, -3}));
}

TEST(Cplx, QuantizeRoundTrip) {
  const CplxF z{0.5, -0.25};
  const CplxI q = quantize(z, 12);
  EXPECT_EQ(q.re, 1024);  // 0.5 * 2047 = 1023.5 -> 1024
  EXPECT_EQ(q.im, -512);
  const CplxF back = dequantize(q, 12);
  EXPECT_NEAR(back.real(), 0.5, 1e-3);
  EXPECT_NEAR(back.imag(), -0.25, 1e-3);
}

TEST(Cplx, QuantizeSaturates) {
  const CplxI q = quantize({2.0, -2.0}, 12);
  EXPECT_EQ(q.re, 2047);
  EXPECT_EQ(q.im, -2048);
}

}  // namespace
}  // namespace rsp

#include "src/common/rng.hpp"

#include <cmath>
#include <numbers>

namespace rsp {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64 for state seeding.
std::uint64_t splitmix(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint32_t Rng::below(std::uint32_t n) {
  return static_cast<std::uint32_t>(uniform() * n);
}

bool Rng::bit() { return (next() >> 63) != 0; }

double Rng::gaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double a = 2.0 * std::numbers::pi * u2;
  spare_ = r * std::sin(a);
  have_spare_ = true;
  return r * std::cos(a);
}

void Rng::fill_gaussian(double* dst, std::size_t n) {
  std::size_t i = 0;
  if (i < n && have_spare_) {
    have_spare_ = false;
    dst[i++] = spare_;
  }
  // Whole pairs: the loop body is gaussian()'s arithmetic verbatim
  // (same rejection bound, same libm calls, same order), minus the
  // spare-flag bookkeeping the scalar path pays per call.
  while (i + 2 <= n) {
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double a = 2.0 * std::numbers::pi * u2;
    dst[i++] = r * std::cos(a);
    dst[i++] = r * std::sin(a);
  }
  // Odd tail: draw one full pair and cache the sin half, exactly like
  // a trailing scalar gaussian() call.
  if (i < n) dst[i] = gaussian();
}

CplxF Rng::cgaussian(double power) {
  const double s = std::sqrt(power / 2.0);
  return {s * gaussian(), s * gaussian()};
}

Rng::State Rng::state() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.have_spare = have_spare_;
  st.spare = spare_;
  return st;
}

void Rng::set_state(const State& st) {
  for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  have_spare_ = st.have_spare;
  spare_ = st.spare;
}

std::uint64_t Rng::split(std::uint64_t base_seed, std::uint64_t index) {
  // The base is avalanched BEFORE the index is folded in: naive
  // additive schemes (base + index*C) alias across related bases —
  // split(base, i) == split(base + C, i - 1) — which the statistical
  // battery in tests/common/test_rng_split.cpp checks for.  For a fixed
  // base, index+1 times an odd constant is a bijection mod 2^64, so
  // every index maps to a distinct pre-image; two more avalanche rounds
  // (bijections, preserving distinctness) decorrelate siblings.
  std::uint64_t z = base_seed;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z = z ^ (z >> 31);
  z += (index + 1) * 0x9E3779B97F4A7C15ull;
  for (int round = 0; round < 2; ++round) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z = z ^ (z >> 31);
    z += 0xD1B54A32D192ED03ull;
  }
  return z;
}

}  // namespace rsp

// 24-bit datapath arithmetic for the XPP-class array.
//
// The XPP-64A processes 24-bit words (paper, Section 4: "Each ALU-PAE
// processes 24 bit words").  Complex baseband samples are carried as a
// packed pair of 12-bit two's-complement values (paper, Section 3.1:
// "12-bits for I and Q each", Figure 5: "2x12 bit packed input data").
//
// All helpers here are constexpr and branch-light so both the simulator
// and the golden reference chains share one definition of the arithmetic.
#pragma once

#include <cstdint>
#include <limits>

namespace rsp {

/// Number of bits in an array data word.
inline constexpr int kWordBits = 24;
/// Bits per packed I/Q half-word.
inline constexpr int kHalfBits = 12;

/// Sign-extend the low @p bits of @p v to a full int32.
[[nodiscard]] constexpr std::int32_t sign_extend(std::int32_t v, int bits) {
  const std::uint32_t m = 1u << (bits - 1);
  const std::uint32_t x = static_cast<std::uint32_t>(v) & ((1u << bits) - 1u);
  return static_cast<std::int32_t>((x ^ m) - m);
}

/// Wrap @p v into a 24-bit two's-complement word (hardware wrap-around).
[[nodiscard]] constexpr std::int32_t wrap24(std::int64_t v) {
  return sign_extend(static_cast<std::int32_t>(v & 0xFFFFFF), kWordBits);
}

/// Saturate @p v to @p bits two's-complement range.
[[nodiscard]] constexpr std::int32_t saturate(std::int64_t v, int bits) {
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  if (v > hi) return static_cast<std::int32_t>(hi);
  if (v < lo) return static_cast<std::int32_t>(lo);
  return static_cast<std::int32_t>(v);
}

/// Saturating add on the 24-bit datapath.
[[nodiscard]] constexpr std::int32_t sat_add24(std::int32_t a, std::int32_t b) {
  return saturate(std::int64_t{a} + b, kWordBits);
}

/// Saturating subtract on the 24-bit datapath.
[[nodiscard]] constexpr std::int32_t sat_sub24(std::int32_t a, std::int32_t b) {
  return saturate(std::int64_t{a} - b, kWordBits);
}

/// Saturating multiply on the 24-bit datapath.
[[nodiscard]] constexpr std::int32_t sat_mul24(std::int32_t a, std::int32_t b) {
  return saturate(std::int64_t{a} * b, kWordBits);
}

/// Arithmetic shift right with round-to-nearest (ties away from zero).
[[nodiscard]] constexpr std::int32_t shr_round(std::int32_t v, int shift) {
  if (shift <= 0) return v;
  const std::int32_t bias = 1 << (shift - 1);
  return (v >= 0) ? ((v + bias) >> shift)
                  : -(((-v) + bias) >> shift);
}

/// Pack two signed 12-bit halves (I in the low half, Q in the high half)
/// into one 24-bit word, as the array's packed complex representation.
[[nodiscard]] constexpr std::int32_t pack_iq(std::int32_t i, std::int32_t q) {
  const std::uint32_t lo = static_cast<std::uint32_t>(i) & 0xFFF;
  const std::uint32_t hi = (static_cast<std::uint32_t>(q) & 0xFFF) << kHalfBits;
  return sign_extend(static_cast<std::int32_t>(hi | lo), kWordBits);
}

/// Extract the signed I (low) half of a packed word.
[[nodiscard]] constexpr std::int32_t unpack_i(std::int32_t w) {
  return sign_extend(w, kHalfBits);
}

/// Extract the signed Q (high) half of a packed word.
[[nodiscard]] constexpr std::int32_t unpack_q(std::int32_t w) {
  return sign_extend(w >> kHalfBits, kHalfBits);
}

/// True if @p v fits a @p bits-wide two's-complement field.
[[nodiscard]] constexpr bool fits(std::int64_t v, int bits) {
  return v >= -(std::int64_t{1} << (bits - 1)) &&
         v <= (std::int64_t{1} << (bits - 1)) - 1;
}

}  // namespace rsp

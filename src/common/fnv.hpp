// FNV-1a (64-bit): the one hash implementation shared by the compiled
// engine's steady-state detector (src/xpp/compiled.cpp) and the batched
// replay program cache (src/xpp/batch.cpp).  Both derive cache keys
// from the same event streams, so a divergent copy of the constants or
// the mixing order would silently split the shared program cache — the
// exhaustive pinned-value test in tests/common/test_fnv.cpp exists to
// make any tweak here a loud, deliberate decision.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rsp {

inline constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// One FNV-1a step: fold a full 64-bit value into the state.  The
/// compiled-engine event hashes fold whole words (kind / pointer /
/// sink), not bytes; every caller must mix with this exact granularity
/// to stay key-compatible.
[[nodiscard]] constexpr std::uint64_t fnv1a_mix(std::uint64_t h,
                                                std::uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
  return h;
}

/// Running accumulator form, for call sites that fold many fields.
class Fnv1a {
 public:
  constexpr Fnv1a() = default;
  constexpr explicit Fnv1a(std::uint64_t seed) : h_(seed) {}

  constexpr Fnv1a& mix(std::uint64_t v) {
    h_ = fnv1a_mix(h_, v);
    return *this;
  }

  /// Fold a buffer word-wise is the caller's job; this folds raw bytes
  /// (one mix per byte) for variable-length payloads like strings.
  constexpr Fnv1a& mix_bytes(const char* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h_ = fnv1a_mix(h_, static_cast<unsigned char>(data[i]));
    }
    return *this;
  }

  [[nodiscard]] constexpr std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = kFnvBasis;
};

}  // namespace rsp

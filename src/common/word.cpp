#include "src/common/word.hpp"

// Compile-time self-checks of the shared datapath arithmetic.
namespace rsp {
static_assert(sign_extend(0xFFF, 12) == -1);
static_assert(sign_extend(0x7FF, 12) == 2047);
static_assert(wrap24(0x800000) == -8388608);
static_assert(sat_add24(0x7FFFFF, 1) == 0x7FFFFF);
static_assert(sat_sub24(-0x800000, 1) == -0x800000);
static_assert(unpack_i(pack_iq(-5, 7)) == -5);
static_assert(unpack_q(pack_iq(-5, 7)) == 7);
static_assert(shr_round(5, 1) == 3);
static_assert(shr_round(-5, 1) == -3);
}  // namespace rsp

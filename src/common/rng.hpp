// Deterministic random sources for workload generation and channels.
//
// All stochastic behaviour in the repository flows through this class so
// experiments replay bit-identically for a given seed.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/common/cplx.hpp"

namespace rsp {

/// xoshiro256** generator with convenience draws for PHY workloads.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit draw.
  std::uint64_t next();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform integer in [0, n).
  std::uint32_t below(std::uint32_t n);

  /// Single fair bit.
  bool bit();

  /// Standard normal (Box-Muller, cached second value).
  double gaussian();

  /// Circularly-symmetric complex Gaussian with E|z|^2 = @p power.
  CplxF cgaussian(double power = 1.0);

  /// Fill @p dst with @p n standard-normal draws, bit-identical to n
  /// successive gaussian() calls: a cached Box-Muller spare is emitted
  /// first, pairs follow in (cos, sin) order, and an odd tail leaves
  /// the sin half cached exactly as the scalar path would.  The block
  /// form exists so the PHY substrate (src/phy/batch_phy.hpp) can draw
  /// a whole noise block without per-sample call/branch overhead while
  /// keeping the per-trial draw order — and hence every Monte-Carlo
  /// aggregate — unchanged.
  void fill_gaussian(double* dst, std::size_t n);

  /// Derive the seed of independent sub-stream @p index from
  /// @p base_seed.  Pure function of (base_seed, index): parallel
  /// Monte-Carlo tasks seeded with split(base, task_index) replay
  /// bit-identically no matter how tasks are distributed over threads.
  /// Distinct indices are guaranteed distinct seeds (the index is
  /// folded in through an odd-multiplier bijection before the
  /// avalanche rounds).
  [[nodiscard]] static std::uint64_t split(std::uint64_t base_seed,
                                           std::uint64_t index);

  /// Complete generator state, exposed for bit-exact snapshot/restore
  /// (src/xpp/snapshot.hpp).  Includes the cached Box-Muller spare so a
  /// restored generator replays the identical gaussian() stream.
  struct State {
    std::uint64_t s[4] = {};
    bool have_spare = false;
    double spare = 0.0;
  };
  [[nodiscard]] State state() const;
  void set_state(const State& st);

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace rsp

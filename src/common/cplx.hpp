// Integer and floating complex types shared by the golden reference
// chains, the PHY substrate and the array-mapped datapaths.
#pragma once

#include <cmath>
#include <complex>
#include <cstdint>

#include "src/common/word.hpp"

namespace rsp {

/// Floating-point complex baseband sample.
using CplxF = std::complex<double>;

/// Integer complex value with explicit-width semantics supplied by the
/// caller (the datapath decides where to wrap/saturate).
struct CplxI {
  std::int32_t re = 0;
  std::int32_t im = 0;

  friend constexpr CplxI operator+(CplxI a, CplxI b) {
    return {a.re + b.re, a.im + b.im};
  }
  friend constexpr CplxI operator-(CplxI a, CplxI b) {
    return {a.re - b.re, a.im - b.im};
  }
  /// Full-precision complex product (caller rescales).
  friend constexpr CplxI operator*(CplxI a, CplxI b) {
    return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
  }
  friend constexpr bool operator==(CplxI a, CplxI b) = default;

  [[nodiscard]] constexpr CplxI conj() const { return {re, -im}; }
  /// |z|^2 as a 64-bit value to avoid overflow in accumulators.
  [[nodiscard]] constexpr std::int64_t norm2() const {
    return std::int64_t{re} * re + std::int64_t{im} * im;
  }
  [[nodiscard]] CplxF to_f() const {
    return {static_cast<double>(re), static_cast<double>(im)};
  }
};

/// Conjugate product a * conj(b), full precision.
[[nodiscard]] constexpr CplxI conj_mul(CplxI a, CplxI b) {
  return a * b.conj();
}

/// Pack a CplxI (each half must fit 12 bits after any caller scaling)
/// into a 24-bit array word.
[[nodiscard]] constexpr std::int32_t pack_cplx(CplxI z) {
  return pack_iq(z.re, z.im);
}

/// Unpack a 24-bit array word into its 12+12 complex halves.
[[nodiscard]] constexpr CplxI unpack_cplx(std::int32_t w) {
  return {unpack_i(w), unpack_q(w)};
}

/// Saturate both components to @p bits.
[[nodiscard]] constexpr CplxI sat_cplx(CplxI z, int bits) {
  return {saturate(z.re, bits), saturate(z.im, bits)};
}

/// Component-wise arithmetic shift right with rounding.
[[nodiscard]] constexpr CplxI shr_round(CplxI z, int shift) {
  return {shr_round(z.re, shift), shr_round(z.im, shift)};
}

/// Quantize a unit-range float complex to @p bits two's complement
/// (full scale = 2^(bits-1) - 1).
[[nodiscard]] inline CplxI quantize(CplxF z, int bits) {
  const double fs = static_cast<double>((1 << (bits - 1)) - 1);
  return {saturate(static_cast<std::int64_t>(std::lround(z.real() * fs)), bits),
          saturate(static_cast<std::int64_t>(std::lround(z.imag() * fs)), bits)};
}

/// Dequantize back to unit range.
[[nodiscard]] inline CplxF dequantize(CplxI z, int bits) {
  const double fs = static_cast<double>((1 << (bits - 1)) - 1);
  return {z.re / fs, z.im / fs};
}

}  // namespace rsp

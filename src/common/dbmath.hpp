// Small decibel/ratio helpers used by link-level experiments.
#pragma once

#include <cmath>
#include <complex>
#include <iterator>

namespace rsp {

[[nodiscard]] inline double db_to_lin(double db) {
  return std::pow(10.0, db / 10.0);
}

[[nodiscard]] inline double lin_to_db(double lin) {
  return 10.0 * std::log10(lin);
}

/// Signal-to-quantization-noise ratio between a reference and a test
/// sequence: 10*log10( sum|ref|^2 / sum|ref-test|^2 ).
template <typename Range>
[[nodiscard]] double sqnr_db(const Range& ref, const Range& test) {
  double sig = 0.0;
  double err = 0.0;
  auto it = std::begin(test);
  for (const auto& r : ref) {
    const auto d = r - *it++;
    sig += std::norm(r);
    err += std::norm(d);
  }
  if (err <= 0.0) return 200.0;  // bit-exact: report a large finite SQNR
  return lin_to_db(sig / err);
}

}  // namespace rsp

// Midamble channel estimation + MLSE equalization for the GSM/EDGE
// burst substrate.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/cplx.hpp"
#include "src/dsp/dsp.hpp"
#include "src/gsm/burst.hpp"

namespace rsp::gsm {

/// Least-squares-style channel estimate from the training midamble:
/// h[k] ~ (1/N) sum_n y[off + k + n] conj(t[n]) over the central
/// training symbols (the TSC autocorrelation is impulse-like there).
/// @p rx must be the burst-aligned observation (y[0] = first symbol).
[[nodiscard]] std::vector<CplxF> estimate_isi_channel(
    const std::vector<CplxF>& rx, int taps, dsp::DspModel* dsp = nullptr);

/// Maximum-likelihood sequence estimation over an arbitrary symbol
/// alphabet and an L-tap channel (alphabet^(L-1) trellis states).
/// Returns alphabet indices for @p n_symbols.  @p init_index is the
/// known leading symbol (GSM tail bits), used to pin the start state.
[[nodiscard]] std::vector<int> mlse_equalize(
    const std::vector<CplxF>& rx, const std::vector<CplxF>& h,
    const std::vector<CplxF>& alphabet, std::size_t n_symbols,
    int init_index = 0, dsp::DspModel* dsp = nullptr);

/// Full GSM burst receiver: channel estimation from the midamble,
/// MLSE over +-1 symbols, payload extraction.
struct GsmRxResult {
  std::vector<std::uint8_t> payload;  ///< 114 bits
  std::vector<CplxF> channel;         ///< estimated taps
};

[[nodiscard]] GsmRxResult gsm_receive(const std::vector<CplxF>& rx, int taps,
                                      dsp::DspModel* dsp = nullptr);

/// EDGE-class 8-PSK MLSE receiver over a short (<= 2-tap) channel:
/// equalizes @p n_symbols and returns the hard bit decisions.
[[nodiscard]] std::vector<std::uint8_t> edge_receive(
    const std::vector<CplxF>& rx, const std::vector<CplxF>& h,
    std::size_t n_symbols, dsp::DspModel* dsp = nullptr);

}  // namespace rsp::gsm

// GSM-class TDMA burst substrate (the 2G rungs of the paper's
// Figures 1-2: GSM / GPRS / EDGE).
//
// Modelled at the discrete-time equivalent baseband level: the GMSK
// (GSM) or 8-PSK (EDGE) modulated burst passes through an L-tap
// complex ISI channel; the receiver estimates the channel from the
// 26-symbol training midamble and equalizes with MLSE.  This is the
// processing whose MIPS demand Figure 1 quotes at 10 (GSM) to 1000
// (EDGE); having it executable lets the Figure 1 bench measure real
// operation counts instead of citing constants.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/cplx.hpp"

namespace rsp::gsm {

/// GSM 05.02 normal-burst geometry (in symbols).
inline constexpr int kTailBits = 3;
inline constexpr int kDataBits = 57;
inline constexpr int kStealingBits = 1;
inline constexpr int kTrainingBits = 26;
inline constexpr int kBurstSymbols =
    2 * kTailBits + 2 * kDataBits + 2 * kStealingBits + kTrainingBits;  // 148
/// GSM symbol rate (270.833 ksym/s).
inline constexpr double kSymbolRateHz = 270.833e3;
/// Bursts per second per timeslot (1 / 4.615 ms frame).
inline constexpr double kBurstsPerSecond = 216.68;

/// Training sequence code 0 (GSM 05.02 Table 5.2.3), as 0/1 bits.
[[nodiscard]] const std::array<std::uint8_t, kTrainingBits>& tsc0();

/// A normal burst: payload 114 bits (2 x 57) around the midamble.
struct Burst {
  std::array<std::uint8_t, kBurstSymbols> bits{};

  /// Assemble from 114 payload bits (tail + stealing bits zero,
  /// midamble = TSC0).
  static Burst make(const std::vector<std::uint8_t>& payload114);

  /// Extract the 114 payload bits.
  [[nodiscard]] std::vector<std::uint8_t> payload() const;

  /// Index of the first midamble symbol within the burst.
  static constexpr int midamble_offset() {
    return kTailBits + kDataBits + kStealingBits;  // 61
  }
};

/// GMSK at the discrete-time equivalent level: bits -> +-1 real
/// symbols (the MSK phase rotation is absorbed into the channel taps).
[[nodiscard]] std::vector<CplxF> gmsk_map(const Burst& b);

/// EDGE 8-PSK mapping: 3 bits per symbol, Gray-coded, with the
/// standard 3*pi/8 per-symbol rotation removed (absorbed in channel).
[[nodiscard]] std::vector<CplxF> psk8_map(const std::vector<std::uint8_t>& bits);
[[nodiscard]] std::vector<std::uint8_t> psk8_unmap_hard(
    const std::vector<CplxF>& symbols);

/// Pass symbols through an L-tap ISI channel: y[n] = sum h[k] x[n-k].
[[nodiscard]] std::vector<CplxF> isi_channel(const std::vector<CplxF>& x,
                                             const std::vector<CplxF>& h);

}  // namespace rsp::gsm

#include "src/gsm/burst.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rsp::gsm {

const std::array<std::uint8_t, kTrainingBits>& tsc0() {
  // TSC0 = 00100101110000100010010111 (GSM 05.02).
  static const std::array<std::uint8_t, kTrainingBits> t = {
      0, 0, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0,
      0, 1, 0, 0, 0, 1, 0, 0, 1, 0, 1, 1, 1};
  return t;
}

Burst Burst::make(const std::vector<std::uint8_t>& payload114) {
  if (payload114.size() != 2 * kDataBits) {
    throw std::invalid_argument("Burst::make: need 114 payload bits");
  }
  Burst b;
  int pos = kTailBits;  // tail bits stay 0
  for (int i = 0; i < kDataBits; ++i) {
    b.bits[static_cast<std::size_t>(pos++)] =
        payload114[static_cast<std::size_t>(i)] & 1u;
  }
  ++pos;  // stealing bit
  for (int i = 0; i < kTrainingBits; ++i) {
    b.bits[static_cast<std::size_t>(pos++)] = tsc0()[static_cast<std::size_t>(i)];
  }
  ++pos;  // stealing bit
  for (int i = 0; i < kDataBits; ++i) {
    b.bits[static_cast<std::size_t>(pos++)] =
        payload114[static_cast<std::size_t>(kDataBits + i)] & 1u;
  }
  return b;
}

std::vector<std::uint8_t> Burst::payload() const {
  std::vector<std::uint8_t> out;
  out.reserve(2 * kDataBits);
  for (int i = 0; i < kDataBits; ++i) {
    out.push_back(bits[static_cast<std::size_t>(kTailBits + i)]);
  }
  const int second = kTailBits + kDataBits + kStealingBits + kTrainingBits +
                     kStealingBits;
  for (int i = 0; i < kDataBits; ++i) {
    out.push_back(bits[static_cast<std::size_t>(second + i)]);
  }
  return out;
}

std::vector<CplxF> gmsk_map(const Burst& b) {
  std::vector<CplxF> out(kBurstSymbols);
  for (int i = 0; i < kBurstSymbols; ++i) {
    out[static_cast<std::size_t>(i)] = {
        b.bits[static_cast<std::size_t>(i)] ? -1.0 : 1.0, 0.0};
  }
  return out;
}

std::vector<CplxF> psk8_map(const std::vector<std::uint8_t>& bits) {
  if (bits.size() % 3 != 0) {
    throw std::invalid_argument("psk8_map: bit count not divisible by 3");
  }
  // Gray mapping: octant i carries word kWordOfOctant[i], so adjacent
  // phases differ in exactly one bit.
  static const int kOctantOfWord[8] = {0, 1, 3, 2, 7, 6, 4, 5};
  std::vector<CplxF> out;
  out.reserve(bits.size() / 3);
  for (std::size_t i = 0; i < bits.size(); i += 3) {
    const int w = (bits[i] << 2) | (bits[i + 1] << 1) | bits[i + 2];
    const double phase =
        2.0 * std::numbers::pi * kOctantOfWord[w] / 8.0;
    out.push_back({std::cos(phase), std::sin(phase)});
  }
  return out;
}

std::vector<std::uint8_t> psk8_unmap_hard(const std::vector<CplxF>& symbols) {
  static const int kWordOfOctant[8] = {0, 1, 3, 2, 6, 7, 5, 4};
  const int* inverse = kWordOfOctant;
  std::vector<std::uint8_t> out;
  out.reserve(symbols.size() * 3);
  for (const auto& s : symbols) {
    double phase = std::atan2(s.imag(), s.real());
    if (phase < 0) phase += 2.0 * std::numbers::pi;
    const int octant =
        static_cast<int>(std::lround(phase * 8.0 /
                                     (2.0 * std::numbers::pi))) % 8;
    const int w = inverse[octant];
    out.push_back(static_cast<std::uint8_t>((w >> 2) & 1));
    out.push_back(static_cast<std::uint8_t>((w >> 1) & 1));
    out.push_back(static_cast<std::uint8_t>(w & 1));
  }
  return out;
}

std::vector<CplxF> isi_channel(const std::vector<CplxF>& x,
                               const std::vector<CplxF>& h) {
  std::vector<CplxF> y(x.size() + h.size() - 1, CplxF{0.0, 0.0});
  for (std::size_t n = 0; n < x.size(); ++n) {
    for (std::size_t k = 0; k < h.size(); ++k) {
      y[n + k] += h[k] * x[n];
    }
  }
  return y;
}

}  // namespace rsp::gsm

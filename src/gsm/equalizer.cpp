#include "src/gsm/equalizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rsp::gsm {

std::vector<CplxF> estimate_isi_channel(const std::vector<CplxF>& rx,
                                        int taps, dsp::DspModel* dsp) {
  if (taps < 1 || taps > 8) {
    throw std::invalid_argument("estimate_isi_channel: 1..8 taps");
  }
  const int off = Burst::midamble_offset();
  // Correlate against the central training symbols, skipping the first
  // `taps` so preceding data symbols do not leak into the estimate.
  const int skip = taps;
  const int n_corr = kTrainingBits - skip - taps;
  if (static_cast<int>(rx.size()) < off + kTrainingBits) {
    throw std::invalid_argument("estimate_isi_channel: capture too short");
  }
  std::vector<CplxF> h(static_cast<std::size_t>(taps), CplxF{0.0, 0.0});
  const auto& t = tsc0();
  for (int k = 0; k < taps; ++k) {
    CplxF acc{0.0, 0.0};
    for (int n = skip; n < skip + n_corr; ++n) {
      const double tn = t[static_cast<std::size_t>(n)] ? -1.0 : 1.0;
      acc += rx[static_cast<std::size_t>(off + n + k)] * tn;
    }
    h[static_cast<std::size_t>(k)] = acc / static_cast<double>(n_corr);
  }
  if (dsp != nullptr) {
    dsp->charge("gsm_channel_estimation", dsp::DspOp::kMac,
                static_cast<long long>(taps) * n_corr);
  }
  return h;
}

std::vector<int> mlse_equalize(const std::vector<CplxF>& rx,
                               const std::vector<CplxF>& h,
                               const std::vector<CplxF>& alphabet,
                               std::size_t n_symbols, int init_index,
                               dsp::DspModel* dsp) {
  const int A = static_cast<int>(alphabet.size());
  const int L = static_cast<int>(h.size());
  if (A < 2 || L < 1) {
    throw std::invalid_argument("mlse_equalize: bad alphabet/channel");
  }
  int states = 1;
  for (int i = 0; i < L - 1; ++i) {
    states *= A;
    if (states > 4096) {
      throw std::invalid_argument("mlse_equalize: trellis too large");
    }
  }
  if (rx.size() < n_symbols) {
    throw std::invalid_argument("mlse_equalize: capture shorter than burst");
  }

  // State encodes the last (L-1) symbols, most recent in the low digit.
  constexpr double kInf = std::numeric_limits<double>::max() / 4;
  // Initial state: all digits = init_index (GSM tail symbols).
  int init_state = 0;
  for (int i = 0; i < L - 1; ++i) init_state = init_state * A + init_index;

  std::vector<double> metric(static_cast<std::size_t>(states), kInf);
  std::vector<double> next(static_cast<std::size_t>(states), kInf);
  metric[static_cast<std::size_t>(init_state)] = 0.0;
  std::vector<std::int16_t> surv(n_symbols * static_cast<std::size_t>(states));

  long long macs = 0;
  for (std::size_t n = 0; n < n_symbols; ++n) {
    std::fill(next.begin(), next.end(), kInf);
    for (int s = 0; s < states; ++s) {
      if (metric[static_cast<std::size_t>(s)] >= kInf) continue;
      for (int a = 0; a < A; ++a) {
        // Predicted observation: h[0]*new + h[k]*history(k-1).
        CplxF pred = h[0] * alphabet[static_cast<std::size_t>(a)];
        int digits = s;
        for (int k = 1; k < L; ++k) {
          const int sym = digits % A;
          digits /= A;
          pred += h[static_cast<std::size_t>(k)] *
                  alphabet[static_cast<std::size_t>(sym)];
        }
        const CplxF err = rx[n] - pred;
        const double m =
            metric[static_cast<std::size_t>(s)] + std::norm(err);
        macs += L + 2;
        // Next state: shift the new symbol into the low digit.
        int ns = s;
        if (L > 1) {
          ns = (s * A + a) % states;
        }
        if (m < next[static_cast<std::size_t>(ns)]) {
          next[static_cast<std::size_t>(ns)] = m;
          surv[n * static_cast<std::size_t>(states) +
               static_cast<std::size_t>(ns)] = static_cast<std::int16_t>(s);
        }
      }
    }
    std::swap(metric, next);
  }
  if (dsp != nullptr) dsp->charge("mlse", dsp::DspOp::kMac, macs);

  // Best final state, then traceback.
  int state = static_cast<int>(
      std::min_element(metric.begin(), metric.end()) - metric.begin());
  std::vector<int> decided(n_symbols);
  for (std::size_t n = n_symbols; n-- > 0;) {
    const int prev =
        surv[n * static_cast<std::size_t>(states) + static_cast<std::size_t>(state)];
    // The symbol entering at step n is the low digit of `state` if
    // L > 1, else recomputed from the branch (prev -> state).
    if (states > 1) {
      decided[n] = state % A;
    } else {
      // Memoryless channel: re-derive the best symbol at step n.
      double best = kInf;
      int best_a = 0;
      for (int a = 0; a < A; ++a) {
        const CplxF err = rx[n] - h[0] * alphabet[static_cast<std::size_t>(a)];
        if (std::norm(err) < best) {
          best = std::norm(err);
          best_a = a;
        }
      }
      decided[n] = best_a;
    }
    state = prev;
  }
  return decided;
}

GsmRxResult gsm_receive(const std::vector<CplxF>& rx, int taps,
                        dsp::DspModel* dsp) {
  GsmRxResult res;
  res.channel = estimate_isi_channel(rx, taps, dsp);
  static const std::vector<CplxF> kBpsk = {{1.0, 0.0}, {-1.0, 0.0}};
  // Tail bits are 0 -> symbol +1 -> alphabet index 0.
  const auto idx = mlse_equalize(rx, res.channel, kBpsk, kBurstSymbols, 0, dsp);
  Burst b;
  for (int i = 0; i < kBurstSymbols; ++i) {
    b.bits[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(idx[static_cast<std::size_t>(i)]);
  }
  res.payload = b.payload();
  return res;
}

std::vector<std::uint8_t> edge_receive(const std::vector<CplxF>& rx,
                                       const std::vector<CplxF>& h,
                                       std::size_t n_symbols,
                                       dsp::DspModel* dsp) {
  static const std::vector<CplxF> kPsk8 = [] {
    std::vector<std::uint8_t> all;
    for (int w = 0; w < 8; ++w) {
      all.push_back(static_cast<std::uint8_t>((w >> 2) & 1));
      all.push_back(static_cast<std::uint8_t>((w >> 1) & 1));
      all.push_back(static_cast<std::uint8_t>(w & 1));
    }
    return psk8_map(all);
  }();
  const auto idx = mlse_equalize(rx, h, kPsk8, n_symbols, 0, dsp);
  std::vector<std::uint8_t> bits;
  bits.reserve(n_symbols * 3);
  for (const int a : idx) {
    bits.push_back(static_cast<std::uint8_t>((a >> 2) & 1));
    bits.push_back(static_cast<std::uint8_t>((a >> 1) & 1));
    bits.push_back(static_cast<std::uint8_t>(a & 1));
  }
  return bits;
}

}  // namespace rsp::gsm

#include "src/phy/umts_tx.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rsp::phy {

std::vector<CplxF> qpsk_map(const std::vector<std::uint8_t>& bits) {
  if (bits.size() % 2 != 0) {
    throw std::invalid_argument("qpsk_map: odd bit count");
  }
  const double a = 1.0 / std::sqrt(2.0);
  std::vector<CplxF> out;
  out.reserve(bits.size() / 2);
  for (std::size_t i = 0; i < bits.size(); i += 2) {
    out.push_back({a * (1 - 2 * static_cast<int>(bits[i] & 1u)),
                   a * (1 - 2 * static_cast<int>(bits[i + 1] & 1u))});
  }
  return out;
}

std::vector<std::vector<CplxF>> sttd_encode(const std::vector<CplxF>& symbols) {
  if (symbols.size() % 2 != 0) {
    throw std::invalid_argument("sttd_encode: symbol count must be even");
  }
  std::vector<CplxF> a0 = symbols;
  std::vector<CplxF> a1(symbols.size());
  for (std::size_t t = 0; t < symbols.size(); t += 2) {
    a1[t] = -std::conj(symbols[t + 1]);
    a1[t + 1] = std::conj(symbols[t]);
  }
  return {std::move(a0), std::move(a1)};
}

UmtsDownlinkTx::UmtsDownlinkTx(BasestationConfig cfg)
    : cfg_(std::move(cfg)), scrambler_(cfg_.scrambling_code) {
  for (const auto& ch : cfg_.channels) {
    if (!dedhw::ovsf_valid(ch.sf, ch.code_index) ||
        ch.sf < dedhw::kMinSpreadingFactor) {
      throw std::invalid_argument("UmtsDownlinkTx: invalid OVSF code");
    }
    if (ch.bits.empty() || ch.bits.size() % 2 != 0) {
      throw std::invalid_argument("UmtsDownlinkTx: channel needs even bits");
    }
    diversity_ = diversity_ || ch.sttd;
  }
  symbols_.resize(cfg_.channels.size());
}

void UmtsDownlinkTx::reset() {
  scrambler_.reset();
  chip_pos_ = 0;
  for (auto& s : symbols_) s.clear();
}

std::vector<std::vector<CplxF>> UmtsDownlinkTx::generate(int n_chips) {
  const int n_ant = num_antennas();
  std::vector<std::vector<CplxF>> out(
      static_cast<std::size_t>(n_ant),
      std::vector<CplxF>(static_cast<std::size_t>(n_chips), CplxF{0, 0}));
  const double cpich_a = cfg_.cpich_gain / std::sqrt(2.0);

  for (int i = 0; i < n_chips; ++i) {
    const long long p = chip_pos_ + i;
    const CplxI code = scrambler_.next();
    const CplxF c{static_cast<double>(code.re), static_cast<double>(code.im)};

    for (int a = 0; a < n_ant; ++a) {
      CplxF sum{0.0, 0.0};
      // CPICH: antenna 0 transmits A on every chip; the diversity
      // antenna uses an alternating-sign pilot pattern per 256-chip
      // symbol (simplified TS 25.211 diversity CPICH).
      if (cfg_.cpich_gain > 0.0) {
        const long long sym = p / kCpichSf;
        const double sign = (a == 0) ? 1.0 : ((sym % 2 == 0) ? 1.0 : -1.0);
        sum += CplxF{cpich_a * sign, cpich_a * sign};
      }
      for (std::size_t ch = 0; ch < cfg_.channels.size(); ++ch) {
        const auto& dpch = cfg_.channels[ch];
        const auto m = static_cast<std::size_t>(p / dpch.sf);
        // Extend the symbol stream on demand (bits repeat cyclically).
        while (symbols_[ch].size() <= m + 1) {
          const std::size_t bi = (2 * symbols_[ch].size()) % dpch.bits.size();
          const double q = 1.0 / std::sqrt(2.0);
          symbols_[ch].push_back(
              {q * (1 - 2 * static_cast<int>(dpch.bits[bi] & 1u)),
               q * (1 - 2 * static_cast<int>(dpch.bits[bi + 1] & 1u))});
        }
        CplxF s;
        if (a == 0 || !dpch.sttd) {
          if (a == 1) continue;  // non-STTD channels transmit on antenna 0
          s = symbols_[ch][m];
        } else {
          // STTD antenna 1: (-s2*, s1*) per symbol pair.
          s = (m % 2 == 0) ? -std::conj(symbols_[ch][m + 1])
                           : std::conj(symbols_[ch][m - 1]);
        }
        const int chip = dedhw::ovsf_chip(dpch.sf, dpch.code_index,
                                          static_cast<int>(p % dpch.sf));
        sum += dpch.gain * static_cast<double>(chip) * s;
      }
      out[static_cast<std::size_t>(a)][static_cast<std::size_t>(i)] =
          cfg_.gain * c * sum;
    }
  }
  chip_pos_ += n_chips;
  return out;
}

std::vector<CplxF> combine_basestations(
    const std::vector<std::vector<CplxF>>& streams) {
  std::size_t n = 0;
  for (const auto& s : streams) n = std::max(n, s.size());
  std::vector<CplxF> out(n, CplxF{0.0, 0.0});
  for (const auto& s : streams) {
    for (std::size_t i = 0; i < s.size(); ++i) out[i] += s[i];
  }
  return out;
}

}  // namespace rsp::phy

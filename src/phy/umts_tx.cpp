#include "src/phy/umts_tx.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/phy/batch_phy.hpp"
#include "src/phy/simd_phy.hpp"

namespace rsp::phy {

std::vector<CplxF> qpsk_map(const std::vector<std::uint8_t>& bits) {
  if (bits.size() % 2 != 0) {
    throw std::invalid_argument("qpsk_map: odd bit count");
  }
  const double a = 1.0 / std::sqrt(2.0);
  std::vector<CplxF> out;
  out.reserve(bits.size() / 2);
  for (std::size_t i = 0; i < bits.size(); i += 2) {
    out.push_back({a * (1 - 2 * static_cast<int>(bits[i] & 1u)),
                   a * (1 - 2 * static_cast<int>(bits[i + 1] & 1u))});
  }
  return out;
}

std::vector<std::vector<CplxF>> sttd_encode(const std::vector<CplxF>& symbols) {
  if (symbols.size() % 2 != 0) {
    throw std::invalid_argument("sttd_encode: symbol count must be even");
  }
  std::vector<CplxF> a0 = symbols;
  std::vector<CplxF> a1(symbols.size());
  for (std::size_t t = 0; t < symbols.size(); t += 2) {
    a1[t] = -std::conj(symbols[t + 1]);
    a1[t + 1] = std::conj(symbols[t]);
  }
  return {std::move(a0), std::move(a1)};
}

UmtsDownlinkTx::UmtsDownlinkTx(BasestationConfig cfg)
    : cfg_(std::move(cfg)), scrambler_(cfg_.scrambling_code) {
  for (const auto& ch : cfg_.channels) {
    if (!dedhw::ovsf_valid(ch.sf, ch.code_index) ||
        ch.sf < dedhw::kMinSpreadingFactor) {
      throw std::invalid_argument("UmtsDownlinkTx: invalid OVSF code");
    }
    if (ch.bits.empty() || ch.bits.size() % 2 != 0) {
      throw std::invalid_argument("UmtsDownlinkTx: channel needs even bits");
    }
    diversity_ = diversity_ || ch.sttd;
  }
  symbols_.resize(cfg_.channels.size());
}

void UmtsDownlinkTx::reset() {
  scrambler_.reset();
  chip_pos_ = 0;
  for (auto& s : symbols_) s.clear();
}

std::vector<std::vector<CplxF>> UmtsDownlinkTx::generate(int n_chips) {
  if (substrate_mode() == SubstrateMode::kBlock) {
    return generate_block(n_chips);
  }
  return generate_reference(n_chips);
}

// Extend channel @p ch's symbol stream through index @p m_last + 1 —
// the same on-demand append the reference does inside its chip loop
// (bits repeat cyclically), hoisted to run once per generate call.
void UmtsDownlinkTx::extend_symbols(std::size_t ch, std::size_t m_last) {
  const auto& dpch = cfg_.channels[ch];
  while (symbols_[ch].size() <= m_last + 1) {
    const std::size_t bi = (2 * symbols_[ch].size()) % dpch.bits.size();
    const double q = 1.0 / std::sqrt(2.0);
    symbols_[ch].push_back(
        {q * (1 - 2 * static_cast<int>(dpch.bits[bi] & 1u)),
         q * (1 - 2 * static_cast<int>(dpch.bits[bi + 1] & 1u))});
  }
}

// Pre-vectorization per-chip loop, preserved verbatim: bench baseline
// and differential-test oracle for the block path.
std::vector<std::vector<CplxF>> UmtsDownlinkTx::generate_reference(
    int n_chips) {
  const int n_ant = num_antennas();
  std::vector<std::vector<CplxF>> out(
      static_cast<std::size_t>(n_ant),
      std::vector<CplxF>(static_cast<std::size_t>(n_chips), CplxF{0, 0}));
  const double cpich_a = cfg_.cpich_gain / std::sqrt(2.0);

  for (int i = 0; i < n_chips; ++i) {
    const long long p = chip_pos_ + i;
    const CplxI code = scrambler_.next();
    const CplxF c{static_cast<double>(code.re), static_cast<double>(code.im)};

    for (int a = 0; a < n_ant; ++a) {
      CplxF sum{0.0, 0.0};
      // CPICH: antenna 0 transmits A on every chip; the diversity
      // antenna uses an alternating-sign pilot pattern per 256-chip
      // symbol (simplified TS 25.211 diversity CPICH).
      if (cfg_.cpich_gain > 0.0) {
        const long long sym = p / kCpichSf;
        const double sign = (a == 0) ? 1.0 : ((sym % 2 == 0) ? 1.0 : -1.0);
        sum += CplxF{cpich_a * sign, cpich_a * sign};
      }
      for (std::size_t ch = 0; ch < cfg_.channels.size(); ++ch) {
        const auto& dpch = cfg_.channels[ch];
        const auto m = static_cast<std::size_t>(p / dpch.sf);
        // Extend the symbol stream on demand (bits repeat cyclically).
        while (symbols_[ch].size() <= m + 1) {
          const std::size_t bi = (2 * symbols_[ch].size()) % dpch.bits.size();
          const double q = 1.0 / std::sqrt(2.0);
          symbols_[ch].push_back(
              {q * (1 - 2 * static_cast<int>(dpch.bits[bi] & 1u)),
               q * (1 - 2 * static_cast<int>(dpch.bits[bi + 1] & 1u))});
        }
        CplxF s;
        if (a == 0 || !dpch.sttd) {
          if (a == 1) continue;  // non-STTD channels transmit on antenna 0
          s = symbols_[ch][m];
        } else {
          // STTD antenna 1: (-s2*, s1*) per symbol pair.
          s = (m % 2 == 0) ? -std::conj(symbols_[ch][m + 1])
                           : std::conj(symbols_[ch][m - 1]);
        }
        const int chip = dedhw::ovsf_chip(dpch.sf, dpch.code_index,
                                          static_cast<int>(p % dpch.sf));
        sum += dpch.gain * static_cast<double>(chip) * s;
      }
      out[static_cast<std::size_t>(a)][static_cast<std::size_t>(i)] =
          cfg_.gain * c * sum;
    }
  }
  chip_pos_ += n_chips;
  return out;
}

std::vector<std::vector<CplxF>> UmtsDownlinkTx::generate_block(int n_chips) {
  const int n_ant = num_antennas();
  std::vector<std::vector<CplxF>> out(
      static_cast<std::size_t>(n_ant),
      std::vector<CplxF>(static_cast<std::size_t>(n_chips), CplxF{0, 0}));
  if (n_chips <= 0) return out;
  const double cpich_a = cfg_.cpich_gain / std::sqrt(2.0);
  const auto& k = simd::phy_kernels();
  const std::size_t n = static_cast<std::size_t>(n_chips);

  // Scrambling chips for the whole call, word-at-a-time, as ±1 SoA.
  SoaBuf chips;
  chips.resize(n);
  scrambler_chips_pm1(scrambler_, chips.re.data(), chips.im.data(), n_chips);

  for (std::size_t ch = 0; ch < cfg_.channels.size(); ++ch) {
    extend_symbols(ch, static_cast<std::size_t>((chip_pos_ + n_chips - 1) /
                                                cfg_.channels[ch].sf));
  }

  SoaBuf sum;
  SoaBuf mixed;
  mixed.resize(n);
  std::vector<double> acoef;
  for (int a = 0; a < n_ant; ++a) {
    sum.zero(n);
    if (cfg_.cpich_gain > 0.0) {
      // CPICH pilot: constant per 256-chip symbol (the reference adds
      // it into a zeroed accumulator first, and 0 + v == v exactly).
      std::size_t i = 0;
      while (i < n) {
        const long long p = chip_pos_ + static_cast<long long>(i);
        const long long sym = p / kCpichSf;
        const std::size_t len = std::min<std::size_t>(
            n - i, static_cast<std::size_t>((sym + 1) * kCpichSf - p));
        const double sign = (a == 0) ? 1.0 : ((sym % 2 == 0) ? 1.0 : -1.0);
        k.fill_const(sum.re.data() + i, cpich_a * sign, static_cast<int>(len));
        k.fill_const(sum.im.data() + i, cpich_a * sign, static_cast<int>(len));
        i += len;
      }
    }
    // Channels accumulate in index order, matching the reference's
    // per-chip addition order element for element.
    for (std::size_t ch = 0; ch < cfg_.channels.size(); ++ch) {
      const auto& dpch = cfg_.channels[ch];
      if (a == 1 && !dpch.sttd) continue;  // non-STTD only on antenna 0
      // Per-chip spreading coefficient gain * OVSF chip over one
      // period — the symbol-invariant half of the reference's product.
      acoef.resize(static_cast<std::size_t>(dpch.sf));
      for (int j = 0; j < dpch.sf; ++j) {
        acoef[static_cast<std::size_t>(j)] =
            dpch.gain *
            static_cast<double>(dedhw::ovsf_chip(dpch.sf, dpch.code_index, j));
      }
      std::size_t i = 0;
      while (i < n) {
        const long long p = chip_pos_ + static_cast<long long>(i);
        const auto m = static_cast<std::size_t>(p / dpch.sf);
        const int phase = static_cast<int>(p % dpch.sf);
        const std::size_t len = std::min<std::size_t>(
            n - i, static_cast<std::size_t>(dpch.sf - phase));
        CplxF s;
        if (a == 0) {
          s = symbols_[ch][m];
        } else {
          // STTD antenna 1: (-s2*, s1*) per symbol pair.
          s = (m % 2 == 0) ? -std::conj(symbols_[ch][m + 1])
                           : std::conj(symbols_[ch][m - 1]);
        }
        k.spread_accum(sum.re.data() + i, sum.im.data() + i,
                       acoef.data() + phase, s.real(), s.imag(),
                       static_cast<int>(len));
        i += len;
      }
    }
    k.scramble_mix(mixed.re.data(), mixed.im.data(), chips.re.data(),
                   chips.im.data(), sum.re.data(), sum.im.data(), cfg_.gain,
                   static_cast<int>(n));
    k.interleave(
        mixed.re.data(), mixed.im.data(),
        reinterpret_cast<double*>(out[static_cast<std::size_t>(a)].data()),
        static_cast<int>(n));
  }
  chip_pos_ += n_chips;
  return out;
}

std::vector<CplxF> combine_basestations(
    const std::vector<std::vector<CplxF>>& streams) {
  std::size_t n = 0;
  for (const auto& s : streams) n = std::max(n, s.size());
  std::vector<CplxF> out(n, CplxF{0.0, 0.0});
  for (const auto& s : streams) {
    for (std::size_t i = 0; i < s.size(); ++i) out[i] += s[i];
  }
  return out;
}

}  // namespace rsp::phy

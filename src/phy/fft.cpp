#include "src/phy/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/common/word.hpp"

namespace rsp::phy {

void fft(std::vector<CplxF>& x, bool inverse) {
  const std::size_t n = x.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // Bit reversal.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const CplxF wl{std::cos(ang), std::sin(ang)};
    for (std::size_t i = 0; i < n; i += len) {
      CplxF w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const CplxF u = x[i + k];
        const CplxF v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  if (inverse) {
    for (auto& v : x) v /= static_cast<double>(n);
  }
}

namespace {

constexpr int digit_rev64(int n) {
  // Reflect the three base-4 digits of n.
  const int d0 = n & 3;
  const int d1 = (n >> 2) & 3;
  const int d2 = (n >> 4) & 3;
  return (d0 << 4) | (d1 << 2) | d2;
}

Fft64Tables make_tables() {
  Fft64Tables t{};
  for (int n = 0; n < kFftSize; ++n) {
    t.input_perm[static_cast<std::size_t>(n)] = digit_rev64(n);
  }
  // Stage s operates on blocks of length L = 4^(s+1).
  for (int s = 0; s < kFftStages; ++s) {
    const int len = 1 << (2 * (s + 1));  // 4, 16, 64
    const int quarter = len / 4;
    const int stride = kFftSize / len;   // twiddle exponent unit
    int bf = 0;
    for (int g = 0; g < kFftSize; g += len) {
      for (int k = 0; k < quarter; ++k, ++bf) {
        for (int m = 0; m < 4; ++m) {
          t.stages[static_cast<std::size_t>(s)]
              .addr[static_cast<std::size_t>(bf)][static_cast<std::size_t>(m)] =
              g + k + m * quarter;
          t.stages[static_cast<std::size_t>(s)]
              .twiddle[static_cast<std::size_t>(bf)]
                      [static_cast<std::size_t>(m)] = (m * k * stride) % kFftSize;
        }
      }
    }
  }
  const double fs = static_cast<double>(1 << kTwiddleFrac);
  for (int k = 0; k < kFftSize; ++k) {
    const double a = -2.0 * std::numbers::pi * k / kFftSize;
    // Clamp to 12 bits so ROM entries fit the packed 12+12 word format
    // the array streams (cos(0): 2048 -> 2047, a 0.05% gain error).
    t.rom[static_cast<std::size_t>(k)] = {
        saturate(static_cast<std::int64_t>(std::lround(std::cos(a) * fs)),
                 kHalfBits),
        saturate(static_cast<std::int64_t>(std::lround(std::sin(a) * fs)),
                 kHalfBits)};
  }
  return t;
}

}  // namespace

const Fft64Tables& fft64_tables() {
  static const Fft64Tables t = make_tables();
  return t;
}

CplxI fft64_branch(CplxI x, CplxI w) {
  const CplxI p = x * w;  // full precision
  return sat_cplx(shr_round(p, kBranchShift), kHalfBits);
}

namespace {

/// Saturating 12-bit complex add/sub (kCAdd/kCSub semantics).
CplxI cadd12(CplxI a, CplxI b) { return sat_cplx(a + b, kHalfBits); }
CplxI csub12(CplxI a, CplxI b) { return sat_cplx(a - b, kHalfBits); }
/// Multiply by -j: -j(x + jy) = y - jx (kCRotMj semantics, saturated).
CplxI rot_mj(CplxI z) { return sat_cplx({z.im, -z.re}, kHalfBits); }

}  // namespace

std::array<CplxI, kFftSize> fft64_fixed(const std::array<CplxI, kFftSize>& in) {
  const Fft64Tables& t = fft64_tables();
  std::array<CplxI, kFftSize> x{};
  // Load in digit-reversed order (the write-address LUT of Figure 9).
  for (int n = 0; n < kFftSize; ++n) {
    x[static_cast<std::size_t>(t.input_perm[static_cast<std::size_t>(n)])] =
        in[static_cast<std::size_t>(n)];
  }
  for (int s = 0; s < kFftStages; ++s) {
    const auto& st = t.stages[static_cast<std::size_t>(s)];
    for (int bf = 0; bf < 16; ++bf) {
      const auto& addr = st.addr[static_cast<std::size_t>(bf)];
      const auto& twi = st.twiddle[static_cast<std::size_t>(bf)];
      CplxI v[4];
      for (int m = 0; m < 4; ++m) {
        v[m] = fft64_branch(
            x[static_cast<std::size_t>(addr[static_cast<std::size_t>(m)])],
            t.rom[static_cast<std::size_t>(twi[static_cast<std::size_t>(m)])]);
      }
      const CplxI t0 = cadd12(v[0], v[2]);
      const CplxI t1 = csub12(v[0], v[2]);
      const CplxI t2 = cadd12(v[1], v[3]);
      const CplxI t3 = rot_mj(csub12(v[1], v[3]));
      x[static_cast<std::size_t>(addr[0])] = cadd12(t0, t2);
      x[static_cast<std::size_t>(addr[1])] = cadd12(t1, t3);
      x[static_cast<std::size_t>(addr[2])] = csub12(t0, t2);
      x[static_cast<std::size_t>(addr[3])] = csub12(t1, t3);
    }
  }
  return x;
}

std::array<CplxI, kFftSize> ifft64_fixed(const std::array<CplxI, kFftSize>& in) {
  std::array<CplxI, kFftSize> conj_in{};
  for (int n = 0; n < kFftSize; ++n) {
    conj_in[static_cast<std::size_t>(n)] = in[static_cast<std::size_t>(n)].conj();
  }
  auto out = fft64_fixed(conj_in);
  for (auto& z : out) z = z.conj();
  return out;
}

}  // namespace rsp::phy

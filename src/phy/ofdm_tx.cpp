#include "src/phy/ofdm_tx.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/dedhw/wlan_scrambler.hpp"
#include "src/phy/batch_phy.hpp"
#include "src/phy/fft.hpp"
#include "src/phy/interleaver.hpp"

namespace rsp::phy {

const std::vector<RateMode>& all_rate_modes() {
  using dedhw::CodeRate;
  static const std::vector<RateMode> modes = {
      {6,  Modulation::kBpsk,  CodeRate::kR12, 48,  24},
      {9,  Modulation::kBpsk,  CodeRate::kR34, 48,  36},
      {12, Modulation::kQpsk,  CodeRate::kR12, 96,  48},
      {18, Modulation::kQpsk,  CodeRate::kR34, 96,  72},
      {24, Modulation::kQam16, CodeRate::kR12, 192, 96},
      {36, Modulation::kQam16, CodeRate::kR34, 192, 144},
      {48, Modulation::kQam64, CodeRate::kR23, 288, 192},
      {54, Modulation::kQam64, CodeRate::kR34, 288, 216},
  };
  return modes;
}

const RateMode& rate_mode(int mbps) {
  for (const auto& m : all_rate_modes()) {
    if (m.mbps == mbps) return m;
  }
  throw std::invalid_argument("rate_mode: unsupported rate");
}

const std::vector<int>& data_carriers() {
  static const std::vector<int> carriers = [] {
    std::vector<int> c;
    for (int k = -26; k <= 26; ++k) {
      if (k == 0 || k == 7 || k == -7 || k == 21 || k == -21) continue;
      c.push_back(k);
    }
    return c;
  }();
  return carriers;
}

const std::vector<int>& pilot_carriers() {
  static const std::vector<int> carriers = {-21, -7, 7, 21};
  return carriers;
}

int pilot_polarity(int n) {
  // 127-periodic polarity sequence = scrambler LFSR output with
  // all-ones seed, mapped 0 -> +1, 1 -> -1.  DATA symbol n uses p_{n+1}
  // (p_0 belongs to the SIGNAL symbol).
  static const std::vector<int> seq = [] {
    dedhw::WlanScrambler s(0x7F);
    std::vector<int> p(127);
    for (auto& v : p) v = s.next_bit() ? -1 : 1;
    return p;
  }();
  return seq[static_cast<std::size_t>((n + 1) % 127)];
}

const std::vector<int>& long_training_symbol() {
  // L_-26..26 per IEEE 802.11a Table G.6 (0 at DC).
  static const std::vector<int> L = {
      1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1,
      -1, 1, 1, 1, 1,  // -26..-1
      0,
      1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1,
      1, -1, 1, 1, 1, 1};  // 1..26
  return L;
}

namespace {

/// Map logical carrier k in [-32, 31] to FFT bin.
constexpr int bin_of(int k) { return (k + kOfdmFft) % kOfdmFft; }

/// 64-point IFFT of @p bins, returns time samples.
std::vector<CplxF> ifft64(std::vector<CplxF> bins) {
  fft(bins, /*inverse=*/true);
  // Undo the 1/N of the library inverse so OFDM symbols keep roughly
  // unit subcarrier power, then normalize to unit mean sample power.
  for (auto& v : bins) v *= std::sqrt(static_cast<double>(kOfdmFft));
  return bins;
}

}  // namespace

std::vector<CplxF> short_preamble() {
  // S_k nonzero on +-4, +-8, ..., +-24 (12 carriers), Table G.2.
  static const std::vector<std::pair<int, CplxF>> s = [] {
    const double a = std::sqrt(13.0 / 6.0);
    const CplxF pp{a, a};
    const CplxF mm{-a, -a};
    return std::vector<std::pair<int, CplxF>>{
        {-24, pp}, {-20, mm}, {-16, pp}, {-12, mm}, {-8, mm}, {-4, pp},
        {4, mm},   {8, mm},   {12, pp},  {16, pp},  {20, pp}, {24, pp}};
  }();
  std::vector<CplxF> bins(kOfdmFft, CplxF{0.0, 0.0});
  for (const auto& [k, v] : s) bins[static_cast<std::size_t>(bin_of(k))] = v;
  const std::vector<CplxF> t = ifft64(std::move(bins));
  // Periodicity 16: repeat the first 16 samples 10 times (160 samples).
  std::vector<CplxF> out;
  out.reserve(160);
  for (int rep = 0; rep < 10; ++rep) {
    for (int i = 0; i < 16; ++i) out.push_back(t[static_cast<std::size_t>(i)]);
  }
  return out;
}

std::vector<CplxF> long_preamble() {
  std::vector<CplxF> bins(kOfdmFft, CplxF{0.0, 0.0});
  const auto& L = long_training_symbol();
  for (int k = -26; k <= 26; ++k) {
    bins[static_cast<std::size_t>(bin_of(k))] =
        CplxF{static_cast<double>(L[static_cast<std::size_t>(k + 26)]), 0.0};
  }
  const std::vector<CplxF> t = ifft64(std::move(bins));
  std::vector<CplxF> out;
  out.reserve(160);
  for (int i = 32; i < 64; ++i) out.push_back(t[static_cast<std::size_t>(i)]);
  for (int rep = 0; rep < 2; ++rep) {
    for (int i = 0; i < 64; ++i) out.push_back(t[static_cast<std::size_t>(i)]);
  }
  return out;
}

std::vector<CplxF> assemble_symbol(const std::vector<CplxF>& points,
                                   int symbol_index) {
  if (static_cast<int>(points.size()) != kDataCarriers) {
    throw std::invalid_argument("assemble_symbol: need 48 points");
  }
  std::vector<CplxF> bins(kOfdmFft, CplxF{0.0, 0.0});
  const auto& dc = data_carriers();
  for (int i = 0; i < kDataCarriers; ++i) {
    bins[static_cast<std::size_t>(bin_of(dc[static_cast<std::size_t>(i)]))] =
        points[static_cast<std::size_t>(i)];
  }
  const int pol = pilot_polarity(symbol_index);
  const double pv[4] = {1.0, 1.0, 1.0, -1.0};
  const auto& pc = pilot_carriers();
  for (int i = 0; i < kPilotCarriers; ++i) {
    bins[static_cast<std::size_t>(bin_of(pc[static_cast<std::size_t>(i)]))] =
        CplxF{pol * pv[i], 0.0};
  }
  return bins;
}

namespace {

/// RATE words (R1 first) per IEEE 802.11a Table 80.
constexpr struct { int mbps; unsigned word; } kRateWords[] = {
    {6, 0b1101},  {9, 0b1111},  {12, 0b0101}, {18, 0b0111},
    {24, 0b1001}, {36, 0b1011}, {48, 0b0001}, {54, 0b0011},
};

}  // namespace

std::vector<std::uint8_t> signal_field_bits(const SignalField& f) {
  unsigned rate_word = 0;
  bool found = false;
  for (const auto& rw : kRateWords) {
    if (rw.mbps == f.mbps) {
      rate_word = rw.word;
      found = true;
    }
  }
  if (!found) throw std::invalid_argument("signal_field_bits: bad rate");
  if (f.length_bits > 4095) {
    throw std::invalid_argument("signal_field_bits: length > 4095 bits");
  }
  std::vector<std::uint8_t> bits;
  bits.reserve(24);
  for (int i = 3; i >= 0; --i) {  // R1..R4, R1 = MSB of the word
    bits.push_back(static_cast<std::uint8_t>((rate_word >> i) & 1u));
  }
  bits.push_back(0);  // reserved
  for (int i = 0; i < 12; ++i) {  // LENGTH, LSB first
    bits.push_back(static_cast<std::uint8_t>((f.length_bits >> i) & 1u));
  }
  std::uint8_t parity = 0;
  for (const auto b : bits) parity ^= b;
  bits.push_back(parity);            // even parity over bits 0..16
  bits.insert(bits.end(), 6, 0);     // tail
  return bits;
}

bool parse_signal_field(const std::vector<std::uint8_t>& bits,
                        SignalField& out) {
  if (bits.size() < 18) return false;
  std::uint8_t parity = 0;
  for (int i = 0; i < 17; ++i) parity ^= bits[static_cast<std::size_t>(i)];
  if (parity != bits[17]) return false;
  unsigned rate_word = 0;
  for (int i = 0; i < 4; ++i) {
    rate_word = (rate_word << 1) | (bits[static_cast<std::size_t>(i)] & 1u);
  }
  bool found = false;
  for (const auto& rw : kRateWords) {
    if (rw.word == rate_word) {
      out.mbps = rw.mbps;
      found = true;
    }
  }
  if (!found) return false;
  std::size_t len = 0;
  for (int i = 0; i < 12; ++i) {
    len |= static_cast<std::size_t>(bits[static_cast<std::size_t>(5 + i)] & 1u)
           << i;
  }
  out.length_bits = len;
  return true;
}

int signal_pilot_polarity() { return pilot_polarity(-1); }

std::vector<CplxF> signal_symbol_points(const SignalField& f) {
  const auto bits = signal_field_bits(f);
  // Rate-1/2 coding, tail already part of the 24 bits.
  const auto coded = dedhw::conv_encode(bits, dedhw::CodeRate::kR12, false);
  const auto il = interleave(coded, 48, 1);
  return modulate(il, Modulation::kBpsk);
}

int OfdmTransmitter::num_data_symbols(std::size_t n_bits, int mbps) {
  const RateMode& m = rate_mode(mbps);
  // SERVICE (16) + PSDU + tail (6), rounded up to whole symbols.
  const std::size_t total = 16 + n_bits + 6;
  return static_cast<int>((total + static_cast<std::size_t>(m.ndbps) - 1) /
                          static_cast<std::size_t>(m.ndbps));
}

std::vector<std::uint8_t> OfdmTransmitter::encode_data_bits(
    const std::vector<std::uint8_t>& psdu_bits, int mbps) const {
  const RateMode& m = rate_mode(mbps);
  const int nsym = num_data_symbols(psdu_bits.size(), mbps);
  const std::size_t n_info =
      static_cast<std::size_t>(nsym) * static_cast<std::size_t>(m.ndbps) - 6;

  // SERVICE + PSDU + pad, scrambled; tail added unscrambled by the
  // encoder (the standard zeroes the scrambled tail positions).
  std::vector<std::uint8_t> bits(n_info, 0);
  std::copy(psdu_bits.begin(), psdu_bits.end(), bits.begin() + 16);
  dedhw::WlanScrambler scr(seed_);
  scr.apply(bits);

  std::vector<std::uint8_t> coded = dedhw::conv_encode(bits, m.rate, true);

  // Per-symbol interleaving.
  std::vector<std::uint8_t> out;
  out.reserve(coded.size());
  for (int s = 0; s < nsym; ++s) {
    const auto begin =
        coded.begin() + static_cast<std::ptrdiff_t>(s) * m.ncbps;
    std::vector<std::uint8_t> sym(begin, begin + m.ncbps);
    const auto il = interleave(sym, m.ncbps, bits_per_symbol(m.mod));
    out.insert(out.end(), il.begin(), il.end());
  }
  return out;
}

std::vector<CplxF> OfdmTransmitter::build_ppdu(
    const std::vector<std::uint8_t>& psdu_bits, int mbps) const {
  if (substrate_mode() == SubstrateMode::kBlock) {
    return build_ppdu_block(psdu_bits, mbps);
  }
  return build_ppdu_reference(psdu_bits, mbps);
}

// Pre-vectorization assembly, preserved verbatim: bench baseline and
// differential-test oracle for the block path.
std::vector<CplxF> OfdmTransmitter::build_ppdu_reference(
    const std::vector<std::uint8_t>& psdu_bits, int mbps) const {
  const RateMode& m = rate_mode(mbps);
  const auto coded = encode_data_bits(psdu_bits, mbps);
  const int nsym = static_cast<int>(coded.size()) / m.ncbps;

  std::vector<CplxF> out = short_preamble();
  const auto lp = long_preamble();
  out.insert(out.end(), lp.begin(), lp.end());

  // SIGNAL symbol (BPSK rate 1/2, pilot polarity p_0).
  {
    SignalField sf;
    sf.mbps = mbps;
    sf.length_bits = psdu_bits.size();
    const auto points = signal_symbol_points(sf);
    std::vector<CplxF> bins(kOfdmFft, CplxF{0.0, 0.0});
    const auto& dc = data_carriers();
    for (int i = 0; i < kDataCarriers; ++i) {
      bins[static_cast<std::size_t>(bin_of(dc[static_cast<std::size_t>(i)]))] =
          points[static_cast<std::size_t>(i)];
    }
    const int pol = signal_pilot_polarity();
    const double pv[4] = {1.0, 1.0, 1.0, -1.0};
    const auto& pc = pilot_carriers();
    for (int i = 0; i < kPilotCarriers; ++i) {
      bins[static_cast<std::size_t>(bin_of(pc[static_cast<std::size_t>(i)]))] =
          CplxF{pol * pv[i], 0.0};
    }
    const auto t = ifft64(std::move(bins));
    for (int i = kOfdmFft - kCyclicPrefix; i < kOfdmFft; ++i) {
      out.push_back(t[static_cast<std::size_t>(i)]);
    }
    out.insert(out.end(), t.begin(), t.end());
  }

  for (int s = 0; s < nsym; ++s) {
    const auto begin = coded.begin() + static_cast<std::ptrdiff_t>(s) * m.ncbps;
    const std::vector<std::uint8_t> sym_bits(begin, begin + m.ncbps);
    const auto points = modulate(sym_bits, m.mod);
    auto bins = assemble_symbol(points, s);
    const auto t = ifft64(std::move(bins));
    // Cyclic prefix + body.
    for (int i = kOfdmFft - kCyclicPrefix; i < kOfdmFft; ++i) {
      out.push_back(t[static_cast<std::size_t>(i)]);
    }
    out.insert(out.end(), t.begin(), t.end());
  }
  return out;
}

// Block-substrate assembly: the arithmetic is the reference's, sample
// for sample (same FFT on the same bins, same scale) — the rewrite only
// removes redundant work: the constant preambles are computed once per
// process, the output is preallocated, and one FFT buffer is reused
// across symbols instead of allocating bins/points/time vectors per
// symbol.  Bit-identical by construction.
std::vector<CplxF> OfdmTransmitter::build_ppdu_block(
    const std::vector<std::uint8_t>& psdu_bits, int mbps) const {
  const RateMode& m = rate_mode(mbps);
  const auto coded = encode_data_bits(psdu_bits, mbps);
  const int nsym = static_cast<int>(coded.size()) / m.ncbps;

  static const std::vector<CplxF> kShort = short_preamble();
  static const std::vector<CplxF> kLong = long_preamble();

  std::vector<CplxF> out;
  out.reserve(kShort.size() + kLong.size() +
              static_cast<std::size_t>(kSymbolSamples) *
                  static_cast<std::size_t>(1 + nsym));
  out.insert(out.end(), kShort.begin(), kShort.end());
  out.insert(out.end(), kLong.begin(), kLong.end());

  std::vector<CplxF> bins(kOfdmFft);
  const double scale = std::sqrt(static_cast<double>(kOfdmFft));
  const auto& dc = data_carriers();
  const auto& pc = pilot_carriers();
  const double pv[4] = {1.0, 1.0, 1.0, -1.0};

  // In-place ifft64 + CP/body emit into the preallocated output.
  const auto emit = [&] {
    fft(bins, /*inverse=*/true);
    for (auto& v : bins) v *= scale;
    for (int i = kOfdmFft - kCyclicPrefix; i < kOfdmFft; ++i) {
      out.push_back(bins[static_cast<std::size_t>(i)]);
    }
    out.insert(out.end(), bins.begin(), bins.end());
  };
  const auto place = [&](const std::vector<CplxF>& points, int pol) {
    std::fill(bins.begin(), bins.end(), CplxF{0.0, 0.0});
    for (int i = 0; i < kDataCarriers; ++i) {
      bins[static_cast<std::size_t>(bin_of(dc[static_cast<std::size_t>(i)]))] =
          points[static_cast<std::size_t>(i)];
    }
    for (int i = 0; i < kPilotCarriers; ++i) {
      bins[static_cast<std::size_t>(bin_of(pc[static_cast<std::size_t>(i)]))] =
          CplxF{pol * pv[i], 0.0};
    }
  };

  // SIGNAL symbol (BPSK rate 1/2, pilot polarity p_0).
  {
    SignalField sf;
    sf.mbps = mbps;
    sf.length_bits = psdu_bits.size();
    place(signal_symbol_points(sf), signal_pilot_polarity());
    emit();
  }

  std::vector<std::uint8_t> sym_bits(static_cast<std::size_t>(m.ncbps));
  for (int s = 0; s < nsym; ++s) {
    const auto begin = coded.begin() + static_cast<std::ptrdiff_t>(s) * m.ncbps;
    std::copy(begin, begin + m.ncbps, sym_bits.begin());
    place(modulate(sym_bits, m.mod), pilot_polarity(s));
    emit();
  }
  return out;
}

}  // namespace rsp::phy

#include "src/phy/modulation.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rsp::phy {
namespace {

// Per-axis Gray mappings of IEEE 802.11a Table 17-x.
constexpr std::array<double, 2> kAxis1 = {-1.0, 1.0};
// (b0) -> level for BPSK/QPSK axes: 0 -> -1, 1 -> +1.
constexpr std::array<double, 4> kAxis16 = {-3.0, -1.0, 3.0, 1.0};
// (b0 b1): 00 -> -3, 01 -> -1, 10 -> 3, 11 -> 1.
constexpr std::array<double, 8> kAxis64 = {-7.0, -5.0, -1.0, -3.0,
                                           7.0,  5.0,  1.0,  3.0};
// (b0 b1 b2): 000->-7 001->-5 011->-3 010->-1 110->1 111->3 101->5 100->7.

double kmod(Modulation m) {
  switch (m) {
    case Modulation::kBpsk:  return 1.0;
    case Modulation::kQpsk:  return 1.0 / std::sqrt(2.0);
    case Modulation::kQam16: return 1.0 / std::sqrt(10.0);
    case Modulation::kQam64: return 1.0 / std::sqrt(42.0);
  }
  return 1.0;
}

CplxF map_word(unsigned word, Modulation m) {
  const double k = kmod(m);
  switch (m) {
    case Modulation::kBpsk:
      return {k * kAxis1[word & 1u], 0.0};
    case Modulation::kQpsk:
      return {k * kAxis1[(word >> 1) & 1u], k * kAxis1[word & 1u]};
    case Modulation::kQam16:
      return {k * kAxis16[(word >> 2) & 3u], k * kAxis16[word & 3u]};
    case Modulation::kQam64:
      return {k * kAxis64[(word >> 3) & 7u], k * kAxis64[word & 7u]};
  }
  return {};
}

}  // namespace

const char* modulation_name(Modulation m) {
  switch (m) {
    case Modulation::kBpsk:  return "BPSK";
    case Modulation::kQpsk:  return "QPSK";
    case Modulation::kQam16: return "16-QAM";
    case Modulation::kQam64: return "64-QAM";
  }
  return "?";
}

const std::vector<CplxF>& constellation(Modulation m) {
  static std::array<std::vector<CplxF>, 4> cache;
  auto& c = cache[static_cast<std::size_t>(m)];
  if (c.empty()) {
    const int n = 1 << bits_per_symbol(m);
    c.reserve(static_cast<std::size_t>(n));
    for (int w = 0; w < n; ++w) {
      c.push_back(map_word(static_cast<unsigned>(w), m));
    }
  }
  return c;
}

std::vector<CplxF> modulate(const std::vector<std::uint8_t>& bits,
                            Modulation m) {
  const int bps = bits_per_symbol(m);
  if (bits.size() % static_cast<std::size_t>(bps) != 0) {
    throw std::invalid_argument("modulate: bit count not divisible");
  }
  std::vector<CplxF> out;
  out.reserve(bits.size() / static_cast<std::size_t>(bps));
  for (std::size_t i = 0; i < bits.size(); i += static_cast<std::size_t>(bps)) {
    unsigned w = 0;
    for (int b = 0; b < bps; ++b) {
      w = (w << 1) | (bits[i + static_cast<std::size_t>(b)] & 1u);
    }
    out.push_back(map_word(w, m));
  }
  return out;
}

std::vector<std::int32_t> soft_demap(const std::vector<CplxF>& symbols,
                                     Modulation m, double scale) {
  const int bps = bits_per_symbol(m);
  const auto& points = constellation(m);
  std::vector<std::int32_t> out;
  out.reserve(symbols.size() * static_cast<std::size_t>(bps));
  for (const auto& s : symbols) {
    for (int bit = bps - 1; bit >= 0; --bit) {
      double best0 = std::numeric_limits<double>::max();
      double best1 = best0;
      for (std::size_t w = 0; w < points.size(); ++w) {
        const double d = std::norm(s - points[w]);
        if ((w >> bit) & 1u) {
          best1 = std::min(best1, d);
        } else {
          best0 = std::min(best0, d);
        }
      }
      const double llr = scale * (best0 - best1);
      out.push_back(static_cast<std::int32_t>(
          std::clamp(llr, -1048576.0, 1048576.0)));
    }
  }
  return out;
}

std::vector<std::uint8_t> hard_demap(const std::vector<CplxF>& symbols,
                                     Modulation m) {
  const int bps = bits_per_symbol(m);
  const auto& points = constellation(m);
  std::vector<std::uint8_t> out;
  out.reserve(symbols.size() * static_cast<std::size_t>(bps));
  for (const auto& s : symbols) {
    std::size_t best = 0;
    double bestd = std::numeric_limits<double>::max();
    for (std::size_t w = 0; w < points.size(); ++w) {
      const double d = std::norm(s - points[w]);
      if (d < bestd) {
        bestd = d;
        best = w;
      }
    }
    for (int bit = bps - 1; bit >= 0; --bit) {
      out.push_back(static_cast<std::uint8_t>((best >> bit) & 1u));
    }
  }
  return out;
}

}  // namespace rsp::phy

// FFT support: a floating-point reference transform plus the bit-true
// fixed-point FFT64 of the paper's OFDM decoder.
//
// Paper, Section 3.2: "The FFT64 uses the radix-4 approach... Read and
// write addresses are stored in circular lookup tables, which are
// implemented as preloaded FIFOs.  Twiddle factors for all 3 stages of
// the FFT64 are also stored in a lookup table...  The accuracy of the
// complex input signal is 10 bit.  With every stage a scaling (2-bit
// right shift) is required to prevent overflow.  For three stages of
// the FFT64 we finally get a 4-bit precision in the result."
//
// The golden model here performs exactly the operations of the mapped
// pipeline (Figure 9): per branch one packed-complex multiply by a
// Q11 twiddle with a 13-bit rounded shift (11 twiddle bits + the
// 2-bit stage scaling), then the radix-4 butterfly on saturating
// 12-bit adders.  The array-mapped configuration shares these tables
// and must produce identical bits.
#pragma once

#include <array>
#include <vector>

#include "src/common/cplx.hpp"

namespace rsp::phy {

/// In-place radix-2 FFT (size = power of two).  Forward uses
/// exp(-j2pi/N); inverse scales by 1/N.
void fft(std::vector<CplxF>& x, bool inverse = false);

inline constexpr int kFftSize = 64;
inline constexpr int kFftStages = 3;
inline constexpr int kTwiddleFrac = 11;   ///< Q11 twiddles
inline constexpr int kStageScaleBits = 2; ///< per-stage right shift
/// Per-branch shift inside a stage: twiddle fraction + stage scaling.
inline constexpr int kBranchShift = kTwiddleFrac + kStageScaleBits;

/// Precomputed address/twiddle tables (the contents of the preloaded
/// FIFOs/LUTs in Figure 9).
struct Fft64Tables {
  std::array<int, kFftSize> input_perm;  ///< load address for sample n
  struct Stage {
    /// 16 butterflies x 4 branch addresses into the data RAM.
    std::array<std::array<int, 4>, 16> addr;
    /// 16 butterflies x 4 twiddle LUT indices (exponents mod 64).
    std::array<std::array<int, 4>, 16> twiddle;
  };
  std::array<Stage, kFftStages> stages;
  /// Q11 twiddle ROM: W_64^k = exp(-j 2 pi k / 64), k = 0..63.
  std::array<CplxI, kFftSize> rom;
};

[[nodiscard]] const Fft64Tables& fft64_tables();

/// One twiddled branch: (x * w) >> kBranchShift, rounded, saturated to
/// 12 bits per component — identical to a kCMulShr ALU with shift 13.
[[nodiscard]] CplxI fft64_branch(CplxI x, CplxI w);

/// Bit-true fixed-point 64-point forward FFT.  Inputs are 10-bit
/// complex samples; the result equals DFT(x)/64 at 4-bit effective
/// precision (paper's scaling).
[[nodiscard]] std::array<CplxI, kFftSize> fft64_fixed(
    const std::array<CplxI, kFftSize>& in);

/// Bit-true inverse transform via the conjugation identity
/// IDFT(x) = conj(DFT(conj(x)))/N: with fft64_fixed computing DFT/64,
/// conj o fft64_fixed o conj equals the IDFT exactly (same datapath,
/// no extra ROMs) — how the OFDM transmitter reuses the Fig. 9 kernel.
[[nodiscard]] std::array<CplxI, kFftSize> ifft64_fixed(
    const std::array<CplxI, kFftSize>& in);

}  // namespace rsp::phy

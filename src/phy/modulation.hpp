// Subcarrier modulation schemes of IEEE 802.11a (§17.3.5.7) plus the
// QPSK symbol mapping of the UMTS downlink.  "The standards define
// various modulation schemes and code rates, which specify data rates
// from 6 up to 54 Mbit/sec" (paper, Section 3.2).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/cplx.hpp"

namespace rsp::phy {

enum class Modulation : std::uint8_t { kBpsk, kQpsk, kQam16, kQam64 };

[[nodiscard]] constexpr int bits_per_symbol(Modulation m) {
  switch (m) {
    case Modulation::kBpsk:  return 1;
    case Modulation::kQpsk:  return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
  }
  return 0;
}

[[nodiscard]] const char* modulation_name(Modulation m);

/// Map @p bits (0/1, length divisible by bits_per_symbol) to unit-mean-
/// power constellation points with 802.11a normalization and Gray
/// labelling.
[[nodiscard]] std::vector<CplxF> modulate(const std::vector<std::uint8_t>& bits,
                                          Modulation m);

/// Max-log soft demapper.  Produces one LLR per bit; positive favours
/// bit 1 (the ViterbiDecoder convention).  @p scale converts distances
/// to integer confidence (typ. 64/noise-var; saturated to +-2^20).
[[nodiscard]] std::vector<std::int32_t> soft_demap(
    const std::vector<CplxF>& symbols, Modulation m, double scale = 64.0);

/// Hard-decision demapper.
[[nodiscard]] std::vector<std::uint8_t> hard_demap(
    const std::vector<CplxF>& symbols, Modulation m);

/// Full constellation (2^bits points, index = Gray-labelled bit word,
/// MSB first) — exposed for tests and the demapper LUTs.
[[nodiscard]] const std::vector<CplxF>& constellation(Modulation m);

}  // namespace rsp::phy

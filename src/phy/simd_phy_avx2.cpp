// AVX2 instantiation of the PHY lane kernels.  This TU is the only
// phy TU built with -mavx2 (added by src/phy/CMakeLists.txt when the
// compiler accepts the flag); dispatch in simd_phy.cpp only follows
// the pointer returned here after __builtin_cpu_supports says the
// feature is present, so the binary stays portable.  -mfma is NOT
// added: FMA contraction would change results versus the baseline
// table and break the bit-identity contract of simd_phy_lanes.inc.
#include "src/phy/simd_phy.hpp"

namespace rsp::phy::simd::detail {

#if defined(__AVX2__) && !defined(RSP_SIMD_OFF)

namespace avx2 {
#include "src/phy/simd_phy_lanes.inc"
}  // namespace avx2

const PhyKernels* phy_avx2_kernels() { return &avx2::kPhyTable; }

#else

const PhyKernels* phy_avx2_kernels() { return nullptr; }

#endif

}  // namespace rsp::phy::simd::detail

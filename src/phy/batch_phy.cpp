#include "src/phy/batch_phy.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numbers>

#include "src/common/dbmath.hpp"

namespace rsp::phy {

namespace {

SubstrateMode initial_mode() {
  const char* env = std::getenv("RSP_PHY_BATCH");
  if (env != nullptr && std::strcmp(env, "off") == 0) {
    return SubstrateMode::kReference;
  }
  return SubstrateMode::kBlock;
}

std::atomic<SubstrateMode>& mode_flag() {
  static std::atomic<SubstrateMode> m{initial_mode()};
  return m;
}

/// Unevaluated-in-extended-precision double-double value a + b, |b| <<
/// |a|.
struct Dd {
  double hi = 0.0;
  double lo = 0.0;
};

/// Exact product of two doubles as a double-double (Dekker via FMA;
/// std::fma is correctly rounded on every platform, hardware or soft,
/// so the result is deterministic across hosts).
Dd two_prod(double a, double b) {
  const double p = a * b;
  return {p, std::fma(a, b, -p)};
}

/// Error-free sum of two doubles (Knuth two-sum).
Dd two_sum(double a, double b) {
  const double s = a + b;
  const double bb = s - a;
  return {s, (a - (s - bb)) + (b - bb)};
}

/// 2π to ~107 bits: hi is the correctly rounded double, lo the
/// remainder.
constexpr double kTwoPiHi = 6.283185307179586476925286766559005768e+00;
constexpr double kTwoPiLo = 2.449293598294706414027215640574742232e-16;

}  // namespace

SubstrateMode substrate_mode() {
  return mode_flag().load(std::memory_order_relaxed);
}

void set_substrate_mode(SubstrateMode m) {
  mode_flag().store(m, std::memory_order_relaxed);
}

double block_phase(double w, long long global) {
  if (w == 0.0 || global == 0) return 0.0;
  // global < 2^53 is exact as a double for any index a campaign can
  // reach (2^53 samples at 3.84 Mcps is ~74 years of chips).
  const double g = static_cast<double>(global);
  const Dd p = two_prod(w, g);
  const double k = std::nearbyint(p.hi / kTwoPiHi);
  // r = p - k*2π in double-double: both the product k*2πhi and the
  // running sums keep their error terms.
  const Dd m1 = two_prod(k, kTwoPiHi);
  const Dd s1 = two_sum(p.hi, -m1.hi);
  const double lo = s1.lo + p.lo - m1.lo - k * kTwoPiLo;
  return s1.hi + lo;
}

void noise_add_block(std::vector<CplxF>& y, double s, Rng& rng) {
  // std::complex<double> is layout-compatible with double[2], so the
  // output is one flat array whose element order matches the scalar
  // draw order (re, im per sample) exactly.
  double* flat = reinterpret_cast<double*>(y.data());
  const auto& k = simd::phy_kernels();
  double draws[2 * kPhyBlock];
  std::size_t remaining = 2 * y.size();
  while (remaining > 0) {
    const std::size_t n =
        remaining < sizeof(draws) / sizeof(draws[0])
            ? remaining
            : sizeof(draws) / sizeof(draws[0]);
    rng.fill_gaussian(draws, n);
    k.axpy_scaled(flat, draws, s, static_cast<int>(n));
    flat += n;
    remaining -= n;
  }
}

void scrambler_chips_pm1(dedhw::UmtsScrambler& scr, double* re, double* im,
                         long long n) {
  const auto& k = simd::phy_kernels();
  std::uint8_t two_bit[kPhyBlock];
  while (n > 0) {
    const int c = n < kPhyBlock ? static_cast<int>(n) : kPhyBlock;
    scr.next2_block(two_bit, c);
    k.chips_to_pm1(two_bit, re, im, c);
    re += c;
    im += c;
    n -= c;
  }
}

namespace scalarref {

std::vector<CplxF> awgn(const std::vector<CplxF>& x, double esn0_db,
                        Rng& rng) {
  const double n0 = db_to_lin(-esn0_db);
  std::vector<CplxF> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = x[i] + rng.cgaussian(n0);
  }
  return y;
}

}  // namespace scalarref

}  // namespace rsp::phy

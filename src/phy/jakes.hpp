// Jakes-model Rayleigh fading: sum-of-sinusoids tap processes with the
// classic U-shaped Doppler spectrum.  Replaces the deterministic
// single-reflector rotation of MultipathChannel when realistic
// amplitude fading matters (Figure 2's mobility axis).
#pragma once

#include <vector>

#include "src/common/cplx.hpp"
#include "src/common/rng.hpp"

namespace rsp::phy {

/// One Rayleigh-fading tap gain process, unit average power.
class JakesFader {
 public:
  /// @param doppler_hz maximum Doppler shift f_d
  /// @param oscillators number of sinusoids (>= 8 for good statistics)
  JakesFader(double doppler_hz, double sample_rate_hz, Rng& rng,
             int oscillators = 16);

  /// Gain at sample index @p n (stateless in n: safe to re-evaluate).
  [[nodiscard]] CplxF gain(long long n) const;

  [[nodiscard]] double doppler_hz() const { return fd_; }

 private:
  double fd_;
  double fs_;
  std::vector<double> freq_;    // per-oscillator Doppler (rad/sample)
  std::vector<double> phase_i_; // random phases, in-phase rail
  std::vector<double> phase_q_;
  double norm_;
};

/// Multipath channel with independent Jakes-faded taps.
struct JakesTap {
  int delay_samples = 0;
  double power = 1.0;      ///< mean tap power (sum typ. normalized to 1)
  double doppler_hz = 0.0;
};

class JakesChannel {
 public:
  JakesChannel(std::vector<JakesTap> taps, double sample_rate_hz, Rng& rng);

  /// y[n] = sum_p sqrt(P_p) g_p(n) x[n - d_p] + AWGN at @p esn0_db.
  [[nodiscard]] std::vector<CplxF> run(const std::vector<CplxF>& x,
                                       double esn0_db, Rng& noise_rng);

  /// Tap gain processes (exposed for statistics tests).
  [[nodiscard]] const JakesFader& fader(std::size_t tap) const {
    return faders_[tap];
  }

 private:
  std::vector<JakesTap> taps_;
  std::vector<JakesFader> faders_;
  double fs_;
  long long pos_ = 0;
};

}  // namespace rsp::phy

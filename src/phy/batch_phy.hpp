// Vectorized PHY substrate: block-oriented helpers shared by the
// transmit/channel hot paths (src/phy/channel.cpp, umts_tx.cpp,
// ofdm_tx.cpp) and the substrate benches/tests.
//
// PR 6/8 batched the simulator side of every Monte-Carlo trial; this
// layer does the same for the per-trial transmit/channel side, which
// had become the dominant share of farm wall-clock (ROADMAP item 2).
// Samples are processed in SoA blocks of kPhyBlock instead of one
// complex scalar at a time, with the arithmetic split along a strict
// policy (DESIGN.md "Vectorized PHY substrate"):
//
//   * exactly value-preserving transforms — hoisting loop-invariant
//     scales, caching the pure-function block-fading draw, lowering
//     the Gold-code LFSRs to word-at-a-time steps, batching the
//     Box-Muller stream in draw order, reordering independent SoA
//     loops — MUST be bit-identical to the scalar reference, enforced
//     by the differential battery in tests/phy/test_batch_phy.cpp;
//   * numerically inexact rewrites (the per-block mod-2π Doppler phase
//     reduction, which is a precision BUGFIX for long campaigns) are
//     pinned against a long-double golden model with a derived
//     tolerance, following the src/chan/ precedent.
//
// The per-trial draw ORDER never changes, so every farm BER aggregate
// is bit-identical to the scalar substrate's.  The share-nothing
// RakeTrial/WlanTrial contract is kept: all block state is local to
// the call (or to the per-trial tx/channel object); the only globals
// are the immutable kernel table and the substrate-mode flag below.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/cplx.hpp"
#include "src/common/rng.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/phy/simd_phy.hpp"

namespace rsp::phy {

/// Samples per SoA processing block.  Large enough to amortize the
/// per-block oscillator/phase setup, small enough that the scratch
/// (a few doubles per sample) stays cache-resident.
inline constexpr int kPhyBlock = 1024;

/// Substrate execution mode.  kBlock (default) runs the vectorized
/// block paths; kReference runs the preserved pre-vectorization scalar
/// loops.  The reference mode is the baseline the benches measure
/// against and the oracle the differential tests compare with; it can
/// also be forced in the field with RSP_PHY_BATCH=off.
enum class SubstrateMode : std::uint8_t { kReference, kBlock };

[[nodiscard]] SubstrateMode substrate_mode();

/// Override the mode (benches/tests).  Set it before trials run: the
/// flag is a process-wide atomic read by every substrate call, not
/// per-trial state.
void set_substrate_mode(SubstrateMode m);

/// RAII mode override for tests.
class ScopedSubstrateMode {
 public:
  explicit ScopedSubstrateMode(SubstrateMode m) : prev_(substrate_mode()) {
    set_substrate_mode(m);
  }
  ~ScopedSubstrateMode() { set_substrate_mode(prev_); }
  ScopedSubstrateMode(const ScopedSubstrateMode&) = delete;
  ScopedSubstrateMode& operator=(const ScopedSubstrateMode&) = delete;

 private:
  SubstrateMode prev_;
};

/// w*global reduced into (-π, π] with double-double accuracy: the
/// Doppler rotator's per-block phase base.  A naive w*double(global)
/// loses absolute precision linearly in the sample index (≈ 1e-6 rad
/// at 2^40, 1e-3 at 2^50 — visible rotation jitter over a long
/// campaign); splitting the product into exact hi/lo halves via FMA
/// and subtracting the nearest multiple of a two-double 2π keeps the
/// error at the 1e-19 rad level for any index a campaign can reach.
/// Pure function; deterministic across backends (std::fma is
/// correctly rounded whether hardware or soft).
[[nodiscard]] double block_phase(double w, long long global);

/// Reusable SoA scratch (re/im planes).
struct SoaBuf {
  std::vector<double> re;
  std::vector<double> im;
  void resize(std::size_t n) {
    re.resize(n);
    im.resize(n);
  }
  void zero(std::size_t n) {
    re.assign(n, 0.0);
    im.assign(n, 0.0);
  }
};

/// y[i] += s * cgaussian-draw(i) over the whole vector, drawing the
/// Box-Muller stream blockwise in the exact scalar order (re then im
/// per sample).  @p s is the already-hoisted per-component scale.
void noise_add_block(std::vector<CplxF>& y, double s, Rng& rng);

/// Produce @p n scrambling chips as ±1 SoA doubles using the
/// word-at-a-time LFSR block step (dedhw::UmtsScrambler::next2_block).
void scrambler_chips_pm1(dedhw::UmtsScrambler& scr, double* re, double* im,
                         long long n);

namespace scalarref {

/// The pre-vectorization phy::awgn loop, preserved verbatim as the
/// bench baseline and differential-test oracle.
[[nodiscard]] std::vector<CplxF> awgn(const std::vector<CplxF>& x,
                                      double esn0_db, Rng& rng);

}  // namespace scalarref

}  // namespace rsp::phy

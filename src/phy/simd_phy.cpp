// Baseline PHY SIMD backend + runtime dispatch (see simd_phy.hpp).
// Mirrors src/xpp/simd.cpp: this TU compiles the lane loops with the
// project's default flags; the AVX2 variant lives in simd_phy_avx2.cpp
// and is only followed after __builtin_cpu_supports says the feature
// is present and RSP_SIMD doesn't say "off".
#include "src/phy/simd_phy.hpp"

#include <cstdlib>
#include <cstring>

namespace rsp::phy::simd {

namespace baseline {
#include "src/phy/simd_phy_lanes.inc"
}  // namespace baseline

namespace detail {
/// Defined in simd_phy_avx2.cpp; nullptr when that TU could not be
/// built with AVX2 (unsupported compiler flag or RSP_SIMD=off).
const PhyKernels* phy_avx2_kernels();
}  // namespace detail

namespace {

struct Backend {
  const PhyKernels* k = nullptr;
  const char* name = "scalar";
};

Backend pick() {
  Backend b;
  b.k = &baseline::kPhyTable;
#if defined(RSP_SIMD_OFF)
  b.name = "scalar";
  return b;
#else
  const char* env = std::getenv("RSP_SIMD");
  const bool veto = env != nullptr && std::strcmp(env, "off") == 0;
#if defined(__x86_64__) || defined(__i386__)
  if (!veto && detail::phy_avx2_kernels() != nullptr &&
      __builtin_cpu_supports("avx2")) {
    b.k = detail::phy_avx2_kernels();
    b.name = "avx2";
    return b;
  }
  b.name = "sse2";
#elif defined(__ARM_NEON) || defined(__aarch64__)
  b.name = "neon";
#else
  b.name = "scalar";
#endif
  if (veto) b.name = "scalar";
  return b;
#endif
}

const Backend& backend() {
  static const Backend b = pick();
  return b;
}

}  // namespace

const PhyKernels& phy_kernels() { return *backend().k; }

const PhyKernels& generic_phy_kernels() { return baseline::kPhyTable; }

const char* phy_isa_name() { return backend().name; }

}  // namespace rsp::phy::simd

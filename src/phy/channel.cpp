#include "src/phy/channel.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/common/dbmath.hpp"
#include "src/phy/batch_phy.hpp"
#include "src/phy/simd_phy.hpp"

namespace rsp::phy {

double doppler_hz_for_speed(double speed_m_s, double carrier_hz) {
  constexpr double c = 299792458.0;
  return speed_m_s / c * carrier_hz;
}

MultipathChannel::MultipathChannel(std::vector<Tap> taps, double sample_rate_hz)
    : taps_(std::move(taps)), fs_(sample_rate_hz) {}

void MultipathChannel::enable_rayleigh(long long coherence_samples, Rng& rng) {
  coherence_ = coherence_samples;
  ray_rng_ = &rng;
  ray_gain_.assign(taps_.size(), CplxF{1.0, 0.0});
  for (auto& g : ray_gain_) g = rng.cgaussian(1.0);
}

int MultipathChannel::max_delay() const {
  int d = 0;
  for (const auto& t : taps_) d = std::max(d, t.delay_samples);
  return d;
}

std::vector<CplxF> MultipathChannel::run(const std::vector<CplxF>& x,
                                         double esn0_db, Rng& rng) {
  if (substrate_mode() == SubstrateMode::kBlock) {
    return run_block(x, esn0_db, rng);
  }
  return run_reference(x, esn0_db, rng);
}

// Pre-vectorization loop, preserved verbatim: the bench baseline and
// the differential-test oracle for every exactly value-preserving
// block transform.  Known deficiencies kept on purpose — the
// per-sample block-fading redraw and the w*global phase drift are what
// the block path fixes.
std::vector<CplxF> MultipathChannel::run_reference(const std::vector<CplxF>& x,
                                                   double esn0_db, Rng& rng) {
  const std::size_t n = x.size() + static_cast<std::size_t>(max_delay());
  std::vector<CplxF> y(n, CplxF{0.0, 0.0});
  for (std::size_t p = 0; p < taps_.size(); ++p) {
    const Tap& t = taps_[p];
    const double w = 2.0 * std::numbers::pi * t.doppler_hz / fs_;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const long long global = sample_index_ + static_cast<long long>(i);
      CplxF g = t.gain;
      if (coherence_ > 0) {
        // Block Rayleigh fading with deterministic redraw schedule.
        const long long block = global / coherence_;
        // Hash the block index into the per-path gain (stable draw).
        Rng block_rng(static_cast<std::uint64_t>(block) * 2654435761u + p * 97u);
        g *= block_rng.cgaussian(1.0);
      }
      const double ph = w * static_cast<double>(global);
      const CplxF rot{std::cos(ph), std::sin(ph)};
      y[i + static_cast<std::size_t>(t.delay_samples)] += g * rot * x[i];
    }
  }
  sample_index_ += static_cast<long long>(x.size());

  const double n0 = db_to_lin(-esn0_db);
  const double sigma = std::sqrt(n0);
  for (auto& v : y) v += rng.cgaussian(sigma * sigma);
  return y;
}

std::vector<CplxF> MultipathChannel::run_block(const std::vector<CplxF>& x,
                                               double esn0_db, Rng& rng) {
  const std::size_t nx = x.size();
  const std::size_t ny = nx + static_cast<std::size_t>(max_delay());
  const auto& k = simd::phy_kernels();
  SoaBuf xs;
  SoaBuf ys;
  xs.resize(nx);
  ys.zero(ny);
  k.deinterleave(reinterpret_cast<const double*>(x.data()), xs.re.data(),
                 xs.im.data(), static_cast<int>(nx));
  double cs[kPhyBlock];
  double sn[kPhyBlock];
  for (std::size_t p = 0; p < taps_.size(); ++p) {
    const Tap& t = taps_[p];
    const double w = 2.0 * std::numbers::pi * t.doppler_hz / fs_;
    long long cached_block = -1;
    CplxF cached_g = t.gain;
    std::size_t i = 0;
    while (i < nx) {
      const long long global = sample_index_ + static_cast<long long>(i);
      long long len =
          std::min<long long>(kPhyBlock, static_cast<long long>(nx - i));
      CplxF g = t.gain;
      if (coherence_ > 0) {
        const long long block = global / coherence_;
        // Never straddle a fading block: the gain is constant per
        // chunk.
        len = std::min(len, (block + 1) * coherence_ - global);
        if (block != cached_block) {
          // Same pure-function draw as the reference — the hash seeds
          // a throwaway Rng from the block index alone — but evaluated
          // once per (block, path) instead of once per sample.
          CplxF gg = t.gain;
          Rng block_rng(static_cast<std::uint64_t>(block) * 2654435761u +
                        p * 97u);
          gg *= block_rng.cgaussian(1.0);
          cached_block = block;
          cached_g = gg;
        }
        g = cached_g;
      }
      double* yr = ys.re.data() + static_cast<std::size_t>(t.delay_samples) + i;
      double* yi = ys.im.data() + static_cast<std::size_t>(t.delay_samples) + i;
      const double* xr = xs.re.data() + i;
      const double* xi = xs.im.data() + i;
      if (w == 0.0) {
        // The zero-Doppler rotator is exactly (1, +0) and g*rot == g
        // bitwise, so it drops out of the product.
        k.axpy_cplx(yr, yi, xr, xi, g.real(), g.imag(),
                    static_cast<int>(len));
      } else {
        // Inexact-by-design path: the per-block mod-2π base plus a
        // short in-block ramp replaces the drifting w*global product
        // (pinned against a long-double golden in the phy tests).
        const double base = block_phase(w, global);
        for (long long j = 0; j < len; ++j) {
          const double ph = base + w * static_cast<double>(j);
          cs[j] = std::cos(ph);
          sn[j] = std::sin(ph);
        }
        k.rot_axpy(yr, yi, xr, xi, cs, sn, g.real(), g.imag(),
                   static_cast<int>(len));
      }
      i += static_cast<std::size_t>(len);
    }
  }
  sample_index_ += static_cast<long long>(nx);

  std::vector<CplxF> y(ny);
  k.interleave(ys.re.data(), ys.im.data(), reinterpret_cast<double*>(y.data()),
               static_cast<int>(ny));
  const double n0 = db_to_lin(-esn0_db);
  const double sigma = std::sqrt(n0);
  // The exact scale cgaussian(sigma*sigma) derives internally, hoisted.
  const double s = std::sqrt(sigma * sigma / 2.0);
  noise_add_block(y, s, rng);
  return y;
}

std::vector<CplxF> awgn(const std::vector<CplxF>& x, double esn0_db, Rng& rng) {
  if (substrate_mode() == SubstrateMode::kReference) {
    return scalarref::awgn(x, esn0_db, rng);
  }
  const double n0 = db_to_lin(-esn0_db);
  std::vector<CplxF> y(x);
  // cgaussian(n0) scales each component by sqrt(n0/2); adding the
  // batched stream with the hoisted scale is bit-identical.
  noise_add_block(y, std::sqrt(n0 / 2.0), rng);
  return y;
}

}  // namespace rsp::phy

#include "src/phy/channel.hpp"

#include <cmath>
#include <numbers>

#include "src/common/dbmath.hpp"

namespace rsp::phy {

double doppler_hz_for_speed(double speed_m_s, double carrier_hz) {
  constexpr double c = 299792458.0;
  return speed_m_s / c * carrier_hz;
}

MultipathChannel::MultipathChannel(std::vector<Tap> taps, double sample_rate_hz)
    : taps_(std::move(taps)), fs_(sample_rate_hz) {}

void MultipathChannel::enable_rayleigh(long long coherence_samples, Rng& rng) {
  coherence_ = coherence_samples;
  ray_rng_ = &rng;
  ray_gain_.assign(taps_.size(), CplxF{1.0, 0.0});
  for (auto& g : ray_gain_) g = rng.cgaussian(1.0);
}

int MultipathChannel::max_delay() const {
  int d = 0;
  for (const auto& t : taps_) d = std::max(d, t.delay_samples);
  return d;
}

std::vector<CplxF> MultipathChannel::run(const std::vector<CplxF>& x,
                                         double esn0_db, Rng& rng) {
  const std::size_t n = x.size() + static_cast<std::size_t>(max_delay());
  std::vector<CplxF> y(n, CplxF{0.0, 0.0});
  for (std::size_t p = 0; p < taps_.size(); ++p) {
    const Tap& t = taps_[p];
    const double w = 2.0 * std::numbers::pi * t.doppler_hz / fs_;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const long long global = sample_index_ + static_cast<long long>(i);
      CplxF g = t.gain;
      if (coherence_ > 0) {
        // Block Rayleigh fading with deterministic redraw schedule.
        const long long block = global / coherence_;
        // Hash the block index into the per-path gain (stable draw).
        Rng block_rng(static_cast<std::uint64_t>(block) * 2654435761u + p * 97u);
        g *= block_rng.cgaussian(1.0);
      }
      const double ph = w * static_cast<double>(global);
      const CplxF rot{std::cos(ph), std::sin(ph)};
      y[i + static_cast<std::size_t>(t.delay_samples)] += g * rot * x[i];
    }
  }
  sample_index_ += static_cast<long long>(x.size());

  const double n0 = db_to_lin(-esn0_db);
  const double sigma = std::sqrt(n0);
  for (auto& v : y) v += rng.cgaussian(sigma * sigma);
  return y;
}

std::vector<CplxF> awgn(const std::vector<CplxF>& x, double esn0_db, Rng& rng) {
  const double n0 = db_to_lin(-esn0_db);
  std::vector<CplxF> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = x[i] + rng.cgaussian(n0);
  }
  return y;
}

}  // namespace rsp::phy

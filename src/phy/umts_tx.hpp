// UMTS/W-CDMA downlink transmitter: the synthetic basestation(s) whose
// composite signal the rake receiver detects.  Supports the paper's
// soft-handover scenario ("up to six basestations, with the reception
// of three multipaths per basestation", Section 3.1): each basestation
// has its own scrambling code, a common pilot channel (CPICH) for path
// search / channel estimation, and dedicated channels (DPCH) with
// spreading factors 4..512, optionally STTD-encoded over two antennas.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/cplx.hpp"
#include "src/dedhw/ovsf.hpp"
#include "src/dedhw/umts_scrambler.hpp"

namespace rsp::phy {

/// One dedicated physical channel.
struct DpchConfig {
  int sf = 128;                     ///< spreading factor 4..512
  int code_index = 1;               ///< OVSF code k (0 reserved for CPICH tree)
  double gain = 1.0;                ///< linear amplitude
  bool sttd = false;                ///< space-time transmit diversity
  std::vector<std::uint8_t> bits;   ///< data bits (pairs -> QPSK symbols)
};

/// One basestation.
struct BasestationConfig {
  std::uint32_t scrambling_code = 0;
  double gain = 1.0;
  double cpich_gain = 0.5;          ///< pilot amplitude (0 disables CPICH)
  std::vector<DpchConfig> channels;
};

/// CPICH parameters: SF 256, code 0, all-ones QPSK symbol A = (1+j)/sqrt(2).
inline constexpr int kCpichSf = 256;

/// QPSK mapping used on the downlink: bit pair (b0,b1) ->
/// ((1-2 b0) + j (1-2 b1)) / sqrt(2).
[[nodiscard]] std::vector<CplxF> qpsk_map(const std::vector<std::uint8_t>& bits);

/// STTD encode a symbol stream: returns the two antenna streams
/// (antenna 0 = s1, s2, ...; antenna 1 = -s2*, s1*, ...), paper §3.1.
[[nodiscard]] std::vector<std::vector<CplxF>> sttd_encode(
    const std::vector<CplxF>& symbols);

class UmtsDownlinkTx {
 public:
  explicit UmtsDownlinkTx(BasestationConfig cfg);

  /// True if any channel uses STTD (two antenna streams).
  [[nodiscard]] bool diversity() const { return diversity_; }
  [[nodiscard]] int num_antennas() const { return diversity_ ? 2 : 1; }

  /// Generate @p n_chips of the scrambled composite downlink, one
  /// vector per antenna.  Consecutive calls continue the stream.
  ///
  /// Runs the vectorized block substrate by default — word-at-a-time
  /// scrambling chips, per-OVSF-period spreading coefficients, SoA
  /// accumulate/mix kernels — bit-identical to the scalar per-chip
  /// reference (every transform is exactly value-preserving; enforced
  /// by tests/phy/test_batch_phy.cpp).
  [[nodiscard]] std::vector<std::vector<CplxF>> generate(int n_chips);

  /// Restart from chip 0 / frame boundary.
  void reset();

  const BasestationConfig& config() const { return cfg_; }

  /// Symbols actually transmitted on channel @p ch (for BER checks).
  [[nodiscard]] const std::vector<CplxF>& channel_symbols(int ch) const {
    return symbols_[static_cast<std::size_t>(ch)];
  }

 private:
  [[nodiscard]] std::vector<std::vector<CplxF>> generate_reference(int n_chips);
  [[nodiscard]] std::vector<std::vector<CplxF>> generate_block(int n_chips);
  void extend_symbols(std::size_t ch, std::size_t m_last);

  BasestationConfig cfg_;
  bool diversity_ = false;
  dedhw::UmtsScrambler scrambler_;
  long long chip_pos_ = 0;
  std::vector<std::vector<CplxF>> symbols_;  // per channel
};

/// Sum per-antenna chip streams of several basestations (each already
/// scaled by its gain).
[[nodiscard]] std::vector<CplxF> combine_basestations(
    const std::vector<std::vector<CplxF>>& streams);

}  // namespace rsp::phy

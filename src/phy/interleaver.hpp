// IEEE 802.11a block interleaver (§17.3.5.6): two permutations applied
// per OFDM symbol so adjacent coded bits land on non-adjacent carriers
// and alternate significance positions in the constellation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace rsp::phy {

/// First+second permutation for one symbol of @p ncbps coded bits with
/// @p nbpsc bits per subcarrier.
[[nodiscard]] inline std::vector<std::uint8_t> interleave(
    const std::vector<std::uint8_t>& in, int ncbps, int nbpsc) {
  if (static_cast<int>(in.size()) != ncbps) {
    throw std::invalid_argument("interleave: size != NCBPS");
  }
  const int s = std::max(nbpsc / 2, 1);
  std::vector<std::uint8_t> out(in.size());
  for (int k = 0; k < ncbps; ++k) {
    const int i = (ncbps / 16) * (k % 16) + k / 16;
    const int j = s * (i / s) + (i + ncbps - (16 * i) / ncbps) % s;
    out[static_cast<std::size_t>(j)] = in[static_cast<std::size_t>(k)];
  }
  return out;
}

/// Inverse of interleave().
[[nodiscard]] inline std::vector<std::uint8_t> deinterleave(
    const std::vector<std::uint8_t>& in, int ncbps, int nbpsc) {
  if (static_cast<int>(in.size()) != ncbps) {
    throw std::invalid_argument("deinterleave: size != NCBPS");
  }
  const int s = std::max(nbpsc / 2, 1);
  std::vector<std::uint8_t> out(in.size());
  for (int j = 0; j < ncbps; ++j) {
    const int i = s * (j / s) + (j + (16 * j) / ncbps) % s;
    const int k = 16 * i - (ncbps - 1) * ((16 * i) / ncbps);
    out[static_cast<std::size_t>(k)] = in[static_cast<std::size_t>(j)];
  }
  return out;
}

/// Soft-value deinterleaver (same permutation over LLRs).
[[nodiscard]] inline std::vector<std::int32_t> deinterleave_soft(
    const std::vector<std::int32_t>& in, int ncbps, int nbpsc) {
  const int s = std::max(nbpsc / 2, 1);
  std::vector<std::int32_t> out(in.size());
  for (int j = 0; j < ncbps; ++j) {
    const int i = s * (j / s) + (j + (16 * j) / ncbps) % s;
    const int k = 16 * i - (ncbps - 1) * ((16 * i) / ncbps);
    out[static_cast<std::size_t>(k)] = in[static_cast<std::size_t>(j)];
  }
  return out;
}

}  // namespace rsp::phy

// IEEE 802.11a OFDM transmitter: the synthetic air interface feeding
// the paper's OFDM decoder (Section 3.2).  "symbols are modulated and
// spread over 48 low-bandwidth carriers, with an additional 4 carriers
// containing pilot signals"; rate modes span 6..54 Mbit/s.
//
// The PLCP SIGNAL field is implemented (BPSK, rate 1/2, own symbol
// right after the long preamble) so the receiver can self-detect the
// rate and frame length.  One deviation, recorded in DESIGN.md: the
// 12-bit LENGTH field carries the PSDU size in BITS (not octets) to
// keep the bit-oriented API exact for arbitrary payloads.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/cplx.hpp"
#include "src/dedhw/convcode.hpp"
#include "src/phy/modulation.hpp"

namespace rsp::phy {

/// 20 MHz sampling; 64-point FFT; 16-sample cyclic prefix.
inline constexpr int kOfdmFft = 64;
inline constexpr int kCyclicPrefix = 16;
inline constexpr int kSymbolSamples = kOfdmFft + kCyclicPrefix;
inline constexpr int kDataCarriers = 48;
inline constexpr int kPilotCarriers = 4;
inline constexpr double kOfdmSampleRateHz = 20.0e6;

/// One 802.11a rate mode.
struct RateMode {
  int mbps;
  Modulation mod;
  dedhw::CodeRate rate;
  int ncbps;  ///< coded bits per OFDM symbol
  int ndbps;  ///< data bits per OFDM symbol
};

/// The eight mandatory/optional modes, ordered by data rate.
[[nodiscard]] const std::vector<RateMode>& all_rate_modes();
/// Lookup by data rate; throws on unknown rate.
[[nodiscard]] const RateMode& rate_mode(int mbps);

/// Data subcarrier logical indices (-26..26 without 0, +-7, +-21).
[[nodiscard]] const std::vector<int>& data_carriers();
/// Pilot subcarriers: -21, -7, 7, 21.
[[nodiscard]] const std::vector<int>& pilot_carriers();
/// Pilot polarity for data symbol @p n (p_{n+1} of the standard's
/// 127-periodic sequence; symbol 0 here is the first DATA symbol).
[[nodiscard]] int pilot_polarity(int n);

/// Short training sequence: 160 samples (10 x 16).
[[nodiscard]] std::vector<CplxF> short_preamble();
/// Long training sequence: 160 samples (32 GI + 2 x 64).
[[nodiscard]] std::vector<CplxF> long_preamble();
/// The frequency-domain long-training symbol L_k on carriers -26..26.
[[nodiscard]] const std::vector<int>& long_training_symbol();

/// SIGNAL field contents (IEEE 802.11a §17.3.4).
struct SignalField {
  int mbps = 6;
  std::size_t length_bits = 0;  ///< PSDU size in bits (deviation: not octets)
};

/// The 24 SIGNAL bits: RATE(4), reserved(1), LENGTH(12, LSB first),
/// even parity(1), tail(6 zeros).
[[nodiscard]] std::vector<std::uint8_t> signal_field_bits(const SignalField& f);

/// Inverse of signal_field_bits; returns false on bad parity, unknown
/// rate word or nonzero tail.
[[nodiscard]] bool parse_signal_field(const std::vector<std::uint8_t>& bits,
                                      SignalField& out);

/// The 48 BPSK points of the SIGNAL symbol (coded + interleaved).
[[nodiscard]] std::vector<CplxF> signal_symbol_points(const SignalField& f);

/// Pilot polarity of the SIGNAL symbol (p_0 of the 127-sequence).
[[nodiscard]] int signal_pilot_polarity();

/// Frequency-domain assembly of one data symbol: place 48 constellation
/// points and 4 pilots, return the 64 FFT bins (natural order).
[[nodiscard]] std::vector<CplxF> assemble_symbol(
    const std::vector<CplxF>& points, int symbol_index);

class OfdmTransmitter {
 public:
  explicit OfdmTransmitter(std::uint8_t scramble_seed = 0x5D)
      : seed_(scramble_seed) {}

  /// Build a complete PPDU (preambles + DATA) for @p psdu_bits at
  /// @p mbps.  Returns 20 MHz time-domain samples with unit mean power.
  ///
  /// The default (block-substrate) path caches the constant preambles,
  /// preallocates the output and reuses one FFT buffer across symbols —
  /// identical arithmetic, so bit-identical to the reference assembly
  /// (enforced by tests/phy/test_batch_phy.cpp).
  [[nodiscard]] std::vector<CplxF> build_ppdu(
      const std::vector<std::uint8_t>& psdu_bits, int mbps) const;

  /// The scrambled+coded+interleaved bit stream (exposed for tests).
  [[nodiscard]] std::vector<std::uint8_t> encode_data_bits(
      const std::vector<std::uint8_t>& psdu_bits, int mbps) const;

  /// Number of DATA OFDM symbols for a PSDU of @p n_bits at @p mbps.
  [[nodiscard]] static int num_data_symbols(std::size_t n_bits, int mbps);

  std::uint8_t seed() const { return seed_; }

 private:
  [[nodiscard]] std::vector<CplxF> build_ppdu_reference(
      const std::vector<std::uint8_t>& psdu_bits, int mbps) const;
  [[nodiscard]] std::vector<CplxF> build_ppdu_block(
      const std::vector<std::uint8_t>& psdu_bits, int mbps) const;

  std::uint8_t seed_;
};

}  // namespace rsp::phy

#include "src/phy/jakes.hpp"

#include <cmath>
#include <numbers>

#include "src/common/dbmath.hpp"

namespace rsp::phy {

JakesFader::JakesFader(double doppler_hz, double sample_rate_hz, Rng& rng,
                       int oscillators)
    : fd_(doppler_hz), fs_(sample_rate_hz) {
  // Random arrival angles give each oscillator a Doppler f_d cos(a);
  // random phases decorrelate the I and Q rails (Rayleigh envelope).
  freq_.reserve(static_cast<std::size_t>(oscillators));
  phase_i_.reserve(static_cast<std::size_t>(oscillators));
  phase_q_.reserve(static_cast<std::size_t>(oscillators));
  for (int k = 0; k < oscillators; ++k) {
    const double angle = 2.0 * std::numbers::pi * rng.uniform();
    freq_.push_back(2.0 * std::numbers::pi * fd_ * std::cos(angle) / fs_);
    phase_i_.push_back(2.0 * std::numbers::pi * rng.uniform());
    phase_q_.push_back(2.0 * std::numbers::pi * rng.uniform());
  }
  norm_ = 1.0 / std::sqrt(static_cast<double>(oscillators));
}

CplxF JakesFader::gain(long long n) const {
  double re = 0.0;
  double im = 0.0;
  for (std::size_t k = 0; k < freq_.size(); ++k) {
    const double arg = freq_[k] * static_cast<double>(n);
    re += std::cos(arg + phase_i_[k]);
    im += std::cos(arg + phase_q_[k]);
  }
  return {re * norm_, im * norm_};
}

JakesChannel::JakesChannel(std::vector<JakesTap> taps, double sample_rate_hz,
                           Rng& rng)
    : taps_(std::move(taps)), fs_(sample_rate_hz) {
  faders_.reserve(taps_.size());
  for (const auto& t : taps_) {
    faders_.emplace_back(t.doppler_hz, fs_, rng);
  }
}

std::vector<CplxF> JakesChannel::run(const std::vector<CplxF>& x,
                                     double esn0_db, Rng& noise_rng) {
  int max_delay = 0;
  for (const auto& t : taps_) max_delay = std::max(max_delay, t.delay_samples);
  std::vector<CplxF> y(x.size() + static_cast<std::size_t>(max_delay),
                       CplxF{0.0, 0.0});
  for (std::size_t p = 0; p < taps_.size(); ++p) {
    const double amp = std::sqrt(taps_[p].power);
    for (std::size_t n = 0; n < x.size(); ++n) {
      const CplxF g = faders_[p].gain(pos_ + static_cast<long long>(n));
      y[n + static_cast<std::size_t>(taps_[p].delay_samples)] +=
          amp * g * x[n];
    }
  }
  pos_ += static_cast<long long>(x.size());
  const double n0 = db_to_lin(-esn0_db);
  for (auto& v : y) v += noise_rng.cgaussian(n0);
  return y;
}

}  // namespace rsp::phy

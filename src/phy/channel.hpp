// Baseband channel models: AWGN and tapped-delay-line multipath with
// Doppler.  These replace the RF front end / air interface of the
// paper's evaluation board (Figure 11) — the rake receiver needs
// resolvable multipaths from several basestations (soft handover) and
// Figure 2's mobility axis maps to Doppler spread.
#pragma once

#include <vector>

#include "src/common/cplx.hpp"
#include "src/common/rng.hpp"

namespace rsp::phy {

/// Speed-of-light mobility -> Doppler conversion at 2 GHz carrier.
[[nodiscard]] double doppler_hz_for_speed(double speed_m_s,
                                          double carrier_hz = 2.0e9);

/// One propagation path.
struct Tap {
  int delay_samples = 0;   ///< excess delay in chip/sample periods
  CplxF gain{1.0, 0.0};    ///< mean complex gain
  double doppler_hz = 0.0; ///< fading rotation rate for this path
};

/// Tapped-delay-line channel: y[n] = sum_p g_p(n) x[n - d_p] + w[n].
/// Fading is modelled as a deterministic phase rotation at the path's
/// Doppler frequency (single-reflector model) — enough to exercise
/// path tracking and channel re-estimation without a full Jakes
/// simulator; Rayleigh amplitude can be layered on via @p rayleigh.
class MultipathChannel {
 public:
  MultipathChannel(std::vector<Tap> taps, double sample_rate_hz);

  /// Enable Rayleigh block fading: tap gains are redrawn from CN(0, |g|^2)
  /// every @p coherence_samples.
  void enable_rayleigh(long long coherence_samples, Rng& rng);

  /// Pass @p x through the channel, then add complex AWGN so the
  /// resulting Es/N0 equals @p esn0_db given unit input signal power.
  ///
  /// Runs the vectorized block substrate by default (SoA blocks,
  /// cached per-(block,path) fading gains, per-block mod-2π Doppler
  /// phase base — see src/phy/batch_phy.hpp).  Exactly
  /// value-preserving for doppler_hz == 0 paths and for block fading;
  /// for doppler_hz != 0 the per-block phase reduction FIXES the
  /// precision drift of the old w*sample_index product (pinned against
  /// a long-double golden model in tests/phy/test_batch_phy.cpp).
  [[nodiscard]] std::vector<CplxF> run(const std::vector<CplxF>& x,
                                       double esn0_db, Rng& rng);

  /// Advance the channel clock @p n samples without producing output
  /// (long-campaign time offsets; exercises the large-index phase
  /// path).
  void skip(long long n) { sample_index_ += n; }
  [[nodiscard]] long long sample_index() const { return sample_index_; }

  const std::vector<Tap>& taps() const { return taps_; }
  [[nodiscard]] int max_delay() const;

 private:
  [[nodiscard]] std::vector<CplxF> run_reference(const std::vector<CplxF>& x,
                                                 double esn0_db, Rng& rng);
  [[nodiscard]] std::vector<CplxF> run_block(const std::vector<CplxF>& x,
                                             double esn0_db, Rng& rng);

  std::vector<Tap> taps_;
  double fs_;
  long long coherence_ = 0;
  Rng* ray_rng_ = nullptr;
  std::vector<CplxF> ray_gain_;
  long long sample_index_ = 0;
};

/// AWGN only (flat channel), Es/N0 in dB for unit-power input.
[[nodiscard]] std::vector<CplxF> awgn(const std::vector<CplxF>& x,
                                      double esn0_db, Rng& rng);

}  // namespace rsp::phy

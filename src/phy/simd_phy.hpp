// Portable SIMD substrate for the block PHY transmit/channel kernels.
//
// Same two-TU dispatch scheme as src/xpp/simd.hpp, instantiated for
// the double-precision sample domain: the lane loops in
// simd_phy_lanes.inc are compiled once with the project's baseline
// flags (simd_phy.cpp — the compiler auto-vectorizes for SSE2/NEON)
// and once with -mavx2 (simd_phy_avx2.cpp), and the AVX2 table is
// selected at startup only when the CPU reports the feature and
// neither the RSP_SIMD=off build option nor the RSP_SIMD environment
// variable vetoes it.
//
// Every kernel is pure double multiply/add in a fixed order — no
// transcendentals, no FMA — so all backends are bit-identical by
// construction; the inexact pieces of the substrate (Box-Muller,
// cos/sin oscillators) are generated scalar in batch_phy.cpp and
// passed in as arrays.  A kernel never owns state: callers hand in
// SoA scratch they gathered themselves.
#pragma once

#include <cstdint>

namespace rsp::phy::simd {

/// The lane-kernel table.  All arrays are sample-indexed [0, n).
struct PhyKernels {
  /// y[k] += s*g[k] over a flat (interleaved re,im) double view.
  void (*axpy_scaled)(double* y, const double* g, double s, int n) = nullptr;
  /// y[i] += g*x[i], complex SoA, naive-formula order.
  void (*axpy_cplx)(double* yre, double* yim, const double* xre,
                    const double* xim, double gre, double gim,
                    int n) = nullptr;
  /// y[i] += (g*rot[i])*x[i] with rot tabulated as (cs, sn).
  void (*rot_axpy)(double* yre, double* yim, const double* xre,
                   const double* xim, const double* cs, const double* sn,
                   double gre, double gim, int n) = nullptr;
  /// sum[i] += a[i]*sym (one channel, one QPSK symbol).
  void (*spread_accum)(double* sre, double* sim, const double* a,
                       double symre, double symim, int n) = nullptr;
  /// out[i] = (gain*c[i])*sum[i] with c the ±1±j scrambling chips.
  void (*scramble_mix)(double* outre, double* outim, const double* cre,
                       const double* cim, const double* sre,
                       const double* sim, double gain, int n) = nullptr;
  /// Expand two-bit scrambler chips to ±1 doubles.
  void (*chips_to_pm1)(const std::uint8_t* two_bit, double* re, double* im,
                       int n) = nullptr;
  void (*fill_const)(double* dst, double v, int n) = nullptr;
  void (*deinterleave)(const double* aos, double* re, double* im,
                       int n) = nullptr;
  void (*interleave)(const double* re, const double* im, double* aos,
                     int n) = nullptr;
  /// y[i] += s*{g[2i], g[2i+1]} into SoA halves (scalar draw order).
  void (*noise_add_soa)(double* yre, double* yim, const double* g, double s,
                        int n) = nullptr;
};

/// Best kernel table for this build + CPU (+ RSP_SIMD env override).
[[nodiscard]] const PhyKernels& phy_kernels();

/// The baseline table, always available — differential tests compare
/// the dispatched table against this one sample by sample.
[[nodiscard]] const PhyKernels& generic_phy_kernels();

/// Name of the selected backend: "avx2", "sse2", "neon" or "scalar".
[[nodiscard]] const char* phy_isa_name();

}  // namespace rsp::phy::simd

// Multi-DCH reception: several dedicated channels per basestation
// share one acquisition (Table 1's 2-DCH scenarios).
//
// A rake finger exists per (basestation, path, channel); the search
// and channel estimation are common per (basestation, path), so the
// receiver acquires once and despreads each channel's OVSF code
// against the same aligned chip stream — exactly the extra
// multiplexing contexts of the paper's single physical finger.
#pragma once

#include <vector>

#include "src/rake/receiver.hpp"

namespace rsp::rake {

/// Per-channel despreading parameters.
struct DchParams {
  int sf = 128;
  int code_index = 1;
  bool sttd = false;
};

class MultiDchReceiver {
 public:
  /// @p base supplies basestations, search and pilot parameters; its
  /// own sf/code_index are ignored.
  MultiDchReceiver(RakeConfig base, std::vector<DchParams> channels);

  struct Output {
    std::vector<RakeOutput> per_channel;   ///< one RakeOutput per DCH
    std::vector<FingerInfo> fingers;       ///< shared finger assignment
    /// Virtual fingers the scenario needs (fingers x channels) — the
    /// Table 1 accounting.
    [[nodiscard]] int virtual_fingers() const {
      return static_cast<int>(fingers.size() * per_channel.size());
    }
  };

  [[nodiscard]] Output receive(const std::vector<CplxF>& rx,
                               dsp::DspModel* dsp = nullptr) const;

  [[nodiscard]] const std::vector<DchParams>& channels() const {
    return channels_;
  }

 private:
  RakeConfig base_;
  std::vector<DchParams> channels_;
};

}  // namespace rsp::rake

// Rake receiver finger scenarios (paper Table 1).
//
// "For this operational implementation, 18 (6x3) rake fingers for the
// descrambling and despreading operations must be realized.  As the
// UMTS/W-CDMA chip rate is 3.84 MHz, a single physical finger is
// actually implemented...  The minimum operational frequency of the
// single finger to accommodate this maximum scenario is thus
// 18 x 3.84 MHz = 69.12 MHz."  (paper, Section 3.1)
#pragma once

#include <vector>

#include "src/dedhw/umts_scrambler.hpp"

namespace rsp::rake {

/// Maximum virtual fingers the single physical finger time-multiplexes.
inline constexpr int kMaxVirtualFingers = 18;
/// Clock of the fully-loaded physical finger: 18 x 3.84 MHz.
inline constexpr double kMaxFingerClockHz = kMaxVirtualFingers *
                                            dedhw::kChipRateHz;

/// One operating point of the soft-handover scenario matrix.
struct FingerScenario {
  int basestations = 1;  ///< simultaneous basestations (soft handover), 1..6
  int channels = 1;      ///< dedicated channels (DCH) per basestation
  int multipaths = 1;    ///< resolvable paths combined per basestation

  /// Virtual fingers needed: one per (basestation, channel, path).
  [[nodiscard]] constexpr int virtual_fingers() const {
    return basestations * channels * multipaths;
  }
  /// Clock the single time-multiplexed physical finger must run at.
  [[nodiscard]] constexpr double required_clock_hz() const {
    return virtual_fingers() * dedhw::kChipRateHz;
  }
  /// Fits the implemented maximum (Table 1's shaded cells are the
  /// scenarios that need the full 69.12 MHz).
  [[nodiscard]] constexpr bool feasible() const {
    return virtual_fingers() <= kMaxVirtualFingers;
  }
  [[nodiscard]] constexpr bool needs_full_clock() const {
    return virtual_fingers() == kMaxVirtualFingers;
  }
};

/// The full Table 1 matrix: basestations 1..6 x multipaths 1..3 for 1
/// and 2 DCH configurations.
[[nodiscard]] std::vector<FingerScenario> table1_scenarios();

}  // namespace rsp::rake

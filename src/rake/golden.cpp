#include "src/rake/golden.hpp"

#include <cmath>
#include <stdexcept>

#include "src/common/word.hpp"

namespace rsp::rake {

std::array<std::int32_t, 4> descramble_sel4_table() {
  std::array<std::int32_t, 4> t{};
  for (std::uint8_t b = 0; b < 4; ++b) {
    const CplxI c{1 - 2 * static_cast<int>(b & 1u),
                  1 - 2 * static_cast<int>((b >> 1) & 1u)};
    t[b] = pack_cplx(c.conj());
  }
  return t;
}

CplxI descramble_chip(CplxI r, std::uint8_t code2) {
  const CplxI cc = unpack_cplx(descramble_sel4_table()[code2 & 3u]);
  const CplxI p = r * cc;
  return sat_cplx(shr_round(p, kDescrambleShift), kHalfBits);
}

std::vector<CplxI> descramble(const std::vector<CplxI>& chips,
                              const std::vector<std::uint8_t>& code2) {
  if (chips.size() > code2.size()) {
    throw std::invalid_argument("descramble: code stream too short");
  }
  std::vector<CplxI> out(chips.size());
  for (std::size_t i = 0; i < chips.size(); ++i) {
    out[i] = descramble_chip(chips[i], code2[i]);
  }
  return out;
}

std::vector<CplxI> despread(const std::vector<CplxI>& chips, int sf,
                            int code_index) {
  if (!dedhw::ovsf_valid(sf, code_index)) {
    throw std::invalid_argument("despread: invalid OVSF code");
  }
  const int shift = despread_shift(sf);
  std::vector<CplxI> out;
  out.reserve(chips.size() / static_cast<std::size_t>(sf));
  long long acc_re = 0;
  long long acc_im = 0;
  for (std::size_t i = 0; i < chips.size(); ++i) {
    const int pos = static_cast<int>(i % static_cast<std::size_t>(sf));
    const int c = dedhw::ovsf_chip(sf, code_index, pos);
    acc_re += c * chips[i].re;
    acc_im += c * chips[i].im;
    if (pos == sf - 1) {
      // kCAccum dump: 31-bit clamp, rounded shift, 12-bit saturate.
      const CplxI sym{
          saturate(shr_round(static_cast<std::int32_t>(saturate(acc_re, 31)),
                             shift),
                   kHalfBits),
          saturate(shr_round(static_cast<std::int32_t>(saturate(acc_im, 31)),
                             shift),
                   kHalfBits)};
      out.push_back(sym);
      acc_re = 0;
      acc_im = 0;
    }
  }
  return out;
}

namespace {

/// (a * b) >> kWeightFrac, rounded, 12-bit saturated (kCMulShr, shift 10).
CplxI cmul_w(CplxI a, CplxI b) {
  return sat_cplx(shr_round(a * b, kWeightFrac), kHalfBits);
}

}  // namespace

std::vector<CplxI> channel_correct(const std::vector<CplxI>& symbols,
                                   const CorrectorWeights& w) {
  std::vector<CplxI> out;
  if (!w.sttd) {
    out.reserve(symbols.size());
    for (const auto& r : symbols) out.push_back(cmul_w(r, w.conj_h1));
    return out;
  }
  if (symbols.size() % 2 != 0) {
    throw std::invalid_argument("channel_correct: STTD needs symbol pairs");
  }
  out.resize(symbols.size());
  const CplxI neg_h2 = sat_cplx({-w.h2.re, -w.h2.im}, kHalfBits);
  for (std::size_t t = 0; t < symbols.size(); t += 2) {
    const CplxI a1 = cmul_w(symbols[t], w.conj_h1);
    const CplxI a2 = cmul_w(symbols[t + 1], w.conj_h1);
    const CplxI b1 = cmul_w(symbols[t].conj(), neg_h2);
    const CplxI b2 = cmul_w(symbols[t + 1].conj(), w.h2);
    out[t] = sat_cplx(a1 + b2, kHalfBits);
    out[t + 1] = sat_cplx(a2 + b1, kHalfBits);
  }
  return out;
}

std::vector<CplxI> combine(const std::vector<std::vector<CplxI>>& fingers) {
  if (fingers.empty()) return {};
  const std::size_t n = fingers.front().size();
  for (const auto& f : fingers) {
    if (f.size() != n) {
      throw std::invalid_argument("combine: finger length mismatch");
    }
  }
  // Full-precision accumulation with one final 12-bit saturation —
  // the kCAccum semantics of the mapped combiner.
  std::vector<CplxI> out(n, CplxI{0, 0});
  for (std::size_t i = 0; i < n; ++i) {
    long long re = 0;
    long long im = 0;
    for (const auto& f : fingers) {
      re += f[i].re;
      im += f[i].im;
    }
    out[i] = {saturate(re, kHalfBits), saturate(im, kHalfBits)};
  }
  return out;
}

std::vector<CplxI> quantize_chips(const std::vector<CplxF>& x, double scale) {
  std::vector<CplxI> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = {saturate(static_cast<std::int64_t>(
                           std::lround(x[i].real() * scale)),
                       kHalfBits),
              saturate(static_cast<std::int64_t>(
                           std::lround(x[i].imag() * scale)),
                       kHalfBits)};
  }
  return out;
}

CplxI quantize_weight(CplxF h) {
  const double fs = static_cast<double>(1 << kWeightFrac);
  return {saturate(static_cast<std::int64_t>(std::lround(h.real() * fs)),
                   kHalfBits),
          saturate(static_cast<std::int64_t>(std::lround(h.imag() * fs)),
                   kHalfBits)};
}

std::vector<std::uint8_t> qpsk_slice(const std::vector<CplxI>& symbols) {
  std::vector<std::uint8_t> bits;
  bits.reserve(symbols.size() * 2);
  for (const auto& s : symbols) {
    bits.push_back(s.re >= 0 ? 0 : 1);
    bits.push_back(s.im >= 0 ? 0 : 1);
  }
  return bits;
}

}  // namespace rsp::rake

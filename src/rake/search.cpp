#include "src/rake/search.hpp"

#include <algorithm>
#include <cmath>

#include "src/dedhw/umts_scrambler.hpp"

namespace rsp::rake {
namespace {

/// CPICH pilot chip n (unit amplitude): code(n) * (1+j)/sqrt(2).
std::vector<CplxF> pilot_sequence(std::uint32_t code, std::size_t n) {
  dedhw::UmtsScrambler s(code);
  const double a = 1.0 / std::sqrt(2.0);
  std::vector<CplxF> out(n);
  for (auto& v : out) {
    const CplxI c = s.next();
    // code * A, A = (1+j)/sqrt(2)
    const CplxF cf{static_cast<double>(c.re), static_cast<double>(c.im)};
    v = cf * CplxF{a, a};
  }
  return out;
}

void charge_corr(dsp::DspModel* dsp, const char* task, long long macs) {
  if (dsp == nullptr) return;
  dsp->charge(task, dsp::DspOp::kMac, macs);
  dsp->charge(task, dsp::DspOp::kLoadStore, macs / 4);
  dsp->charge(task, dsp::DspOp::kBranch, macs / 64 + 1);
}

}  // namespace

PathSearcher::PathSearcher(std::uint32_t scrambling_code, SearchParams params)
    : code_(scrambling_code), params_(params) {}

void PathSearcher::ensure_pilot(std::size_t n) const {
  if (pilot_.size() < n) pilot_ = pilot_sequence(code_, n);
}

PathCandidate PathSearcher::probe(const std::vector<CplxF>& rx, int delay,
                                  int n_chips, dsp::DspModel* dsp) const {
  ensure_pilot(static_cast<std::size_t>(n_chips));
  CplxF acc{0.0, 0.0};
  int used = 0;
  for (int n = 0; n < n_chips; ++n) {
    const std::size_t idx = static_cast<std::size_t>(delay + n);
    if (idx >= rx.size()) break;
    acc += rx[idx] * std::conj(pilot_[static_cast<std::size_t>(n)]);
    ++used;
  }
  charge_corr(dsp, "path_search", used);
  PathCandidate c;
  c.delay = delay;
  if (used > 0) {
    c.h = acc / static_cast<double>(used);
    c.energy = std::norm(c.h);
  }
  return c;
}

std::vector<PathCandidate> PathSearcher::search(const std::vector<CplxF>& rx,
                                                int max_paths,
                                                dsp::DspModel* dsp) const {
  // Coarse pass.
  std::vector<PathCandidate> coarse;
  for (int d = 0; d < params_.window_chips; d += params_.coarse_step) {
    coarse.push_back(probe(rx, d, params_.coarse_chips, dsp));
  }
  std::sort(coarse.begin(), coarse.end(),
            [](const auto& a, const auto& b) { return a.energy > b.energy; });

  // Fine pass around the strongest coarse hits.
  std::vector<PathCandidate> fine;
  const int probes = std::min<int>(static_cast<int>(coarse.size()),
                                   std::max(max_paths * 2, 4));
  for (int i = 0; i < probes; ++i) {
    const int center = coarse[static_cast<std::size_t>(i)].delay;
    for (int d = center - params_.fine_radius; d <= center + params_.fine_radius;
         ++d) {
      if (d < 0) continue;
      fine.push_back(probe(rx, d, params_.fine_chips, dsp));
    }
  }
  std::sort(fine.begin(), fine.end(),
            [](const auto& a, const auto& b) { return a.energy > b.energy; });

  // Greedy selection of distinct delays above threshold.
  std::vector<PathCandidate> out;
  const double floor_e =
      fine.empty() ? 0.0 : fine.front().energy * params_.threshold_ratio;
  for (const auto& c : fine) {
    if (static_cast<int>(out.size()) >= max_paths) break;
    if (c.energy < floor_e) break;
    bool distinct = true;
    for (const auto& o : out) {
      if (std::abs(o.delay - c.delay) <= 1) distinct = false;
    }
    if (distinct) out.push_back(c);
  }
  if (dsp != nullptr) {
    dsp->charge("path_search", dsp::DspOp::kBranch,
                static_cast<long long>(fine.size()));
  }
  return out;
}

PathTracker::PathTracker(std::uint32_t scrambling_code, int integrate_chips,
                         int hysteresis)
    : searcher_(scrambling_code, SearchParams{}),
      integrate_(integrate_chips),
      hysteresis_(hysteresis) {}

int PathTracker::track(const std::vector<CplxF>& rx, int delay,
                       dsp::DspModel* dsp) {
  const double on = searcher_.probe(rx, delay, integrate_, dsp).energy;
  const double early =
      delay > 0 ? searcher_.probe(rx, delay - 1, integrate_, dsp).energy : 0.0;
  const double late = searcher_.probe(rx, delay + 1, integrate_, dsp).energy;
  int dir = 0;
  if (early > on && early >= late) dir = -1;
  if (late > on && late > early) dir = +1;
  if (dir != 0 && dir == pending_dir_) {
    ++pending_count_;
  } else {
    pending_dir_ = dir;
    pending_count_ = dir != 0 ? 1 : 0;
  }
  if (dir != 0 && pending_count_ >= hysteresis_) {
    pending_count_ = 0;
    pending_dir_ = 0;
    return delay + dir;
  }
  return delay;
}

ChannelEstimate estimate_channel(const std::vector<CplxF>& rx,
                                 std::uint32_t scrambling_code, int delay,
                                 double pilot_amplitude, bool diversity,
                                 int n_chips, dsp::DspModel* dsp,
                                 long long start_chip) {
  dedhw::UmtsScrambler s(scrambling_code);
  s.skip(start_chip);
  const double a = pilot_amplitude / std::sqrt(2.0);
  CplxF acc1{0.0, 0.0};
  CplxF acc2{0.0, 0.0};
  int used = 0;
  for (int n = 0; n < n_chips; ++n) {
    const std::size_t idx =
        static_cast<std::size_t>(delay + start_chip + n);
    const CplxI ci = s.next();
    if (idx >= rx.size()) break;
    const CplxF code{static_cast<double>(ci.re), static_cast<double>(ci.im)};
    const CplxF pilot = code * CplxF{a, a};
    const CplxF z = rx[idx] * std::conj(pilot);
    acc1 += z;
    if (diversity) {
      // Diversity pilot alternates sign per 256-chip symbol.
      const double sign =
          (((start_chip + n) / 256) % 2 == 0) ? 1.0 : -1.0;
      acc2 += z * sign;
    }
    ++used;
  }
  if (dsp != nullptr) {
    dsp->charge("channel_estimation", dsp::DspOp::kMac,
                used * (diversity ? 2 : 1));
    dsp->charge("channel_estimation", dsp::DspOp::kLoadStore, used / 2);
    dsp->charge("channel_estimation", dsp::DspOp::kDiv, 2);
  }
  ChannelEstimate est;
  if (used > 0) {
    // E[r * conj(pilot)] = h * |pilot|^2; per-chip |pilot|^2 =
    // |code|^2 * |A|^2 = 2 * (2a^2) = 2 * pilot_amplitude^2.
    const double norm = 2.0 * pilot_amplitude * pilot_amplitude * used;
    est.h1 = acc1 / norm;
    if (diversity) est.h2 = acc2 / norm;
  }
  return est;
}

}  // namespace rsp::rake

#include "src/rake/transport.hpp"

#include <stdexcept>

namespace rsp::rake {

std::vector<std::uint8_t> block_interleave(
    const std::vector<std::uint8_t>& bits, int cols) {
  if (cols < 1) throw std::invalid_argument("block_interleave: cols >= 1");
  const std::size_t n = bits.size();
  const std::size_t rows =
      (n + static_cast<std::size_t>(cols) - 1) / static_cast<std::size_t>(cols);
  std::vector<std::uint8_t> out;
  out.reserve(n);
  for (int c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t idx = r * static_cast<std::size_t>(cols) +
                              static_cast<std::size_t>(c);
      if (idx < n) out.push_back(bits[idx]);
    }
  }
  return out;
}

namespace {

/// Index permutation of block_interleave for length @p n.
std::vector<std::size_t> interleave_order(std::size_t n, int cols) {
  const std::size_t rows =
      (n + static_cast<std::size_t>(cols) - 1) / static_cast<std::size_t>(cols);
  std::vector<std::size_t> order;
  order.reserve(n);
  for (int c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t idx = r * static_cast<std::size_t>(cols) +
                              static_cast<std::size_t>(c);
      if (idx < n) order.push_back(idx);
    }
  }
  return order;
}

}  // namespace

std::vector<std::uint8_t> block_deinterleave(
    const std::vector<std::uint8_t>& bits, int cols) {
  const auto order = interleave_order(bits.size(), cols);
  std::vector<std::uint8_t> out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    out[order[i]] = bits[i];
  }
  return out;
}

std::vector<std::int32_t> block_deinterleave_soft(
    const std::vector<std::int32_t>& soft, int cols) {
  const auto order = interleave_order(soft.size(), cols);
  std::vector<std::int32_t> out(soft.size());
  for (std::size_t i = 0; i < soft.size(); ++i) {
    out[order[i]] = soft[i];
  }
  return out;
}

std::vector<std::uint8_t> TransportEncoder::encode(
    const std::vector<std::uint8_t>& payload) const {
  std::vector<std::uint8_t> bits = payload;
  dedhw::kCrc16Umts.append(bits);
  const auto coded = dedhw::conv_encode_gen(bits, cfg_.code, true);
  return block_interleave(coded, cfg_.interleave_cols);
}

std::size_t TransportEncoder::coded_length(std::size_t n_payload) const {
  const std::size_t info = n_payload + 16;  // + CRC16
  return (info + static_cast<std::size_t>(cfg_.code.constraint_length - 1)) *
         static_cast<std::size_t>(cfg_.code.rate_denominator());
}

TransportResult TransportDecoder::decode(const std::vector<std::int32_t>& soft,
                                         std::size_t n_payload) const {
  TransportResult res;
  const auto lattice = block_deinterleave_soft(soft, cfg_.interleave_cols);
  const std::size_t n_info = n_payload + 16;
  auto decoded = viterbi_.decode(lattice, n_info, true);
  if (decoded.size() < n_info) return res;
  res.crc_ok = dedhw::kCrc16Umts.check(decoded);
  decoded.resize(n_payload);
  res.payload = std::move(decoded);
  return res;
}

std::vector<std::int32_t> qpsk_soft_bits(const std::vector<CplxI>& symbols) {
  std::vector<std::int32_t> soft;
  soft.reserve(symbols.size() * 2);
  for (const auto& s : symbols) {
    // QPSK map: bit 0 -> +, bit 1 -> -; decoder convention is positive
    // favours bit 1, so negate the components.
    soft.push_back(-s.re);
    soft.push_back(-s.im);
  }
  return soft;
}

TransportResult TransportDecoder::decode_symbols(
    const std::vector<CplxI>& symbols, std::size_t n_payload) const {
  return decode(qpsk_soft_bits(symbols), n_payload);
}

}  // namespace rsp::rake

// Full mobile-terminal rake receiver (paper §3.1): detection, tracking,
// descrambling, despreading, channel correction and combination of
// CDMA signals, including the soft-handover scenario ("up to six
// basestations, with the reception of three multipaths per
// basestation") and STTD decoding.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/cplx.hpp"
#include "src/dsp/dsp.hpp"
#include "src/rake/golden.hpp"
#include "src/rake/search.hpp"

namespace rsp::rake {

struct RakeConfig {
  /// Scrambling codes of the basestations in the active set.
  std::vector<std::uint32_t> scrambling_codes;
  /// DCH parameters (one dedicated channel; the scenario bench scales
  /// channel counts analytically via FingerScenario).
  int sf = 128;
  int code_index = 1;
  bool sttd = false;
  /// Paths combined per basestation.
  int paths_per_bs = 3;
  /// Known transmitted CPICH amplitude (signalled in a real network).
  double pilot_amplitude = 0.5;
  /// Input quantization: unit amplitude -> this many LSBs.
  double quant_scale = 256.0;
  SearchParams search;
};

/// One active finger after search + estimation.
struct FingerInfo {
  int basestation = 0;
  int delay = 0;
  ChannelEstimate channel;
  double energy = 0.0;
};

struct RakeOutput {
  std::vector<CplxI> combined;          ///< MRC-combined corrected symbols
  std::vector<std::uint8_t> bits;       ///< hard QPSK decisions
  std::vector<FingerInfo> fingers;      ///< active finger assignment
  std::vector<std::vector<CplxI>> per_finger;  ///< corrected, per finger
};

class RakeReceiver {
 public:
  explicit RakeReceiver(RakeConfig cfg);

  /// Run acquisition + reception over @p rx (chip-rate samples, frame-
  /// aligned at index 0).  DSP-side tasks charge @p dsp when provided.
  [[nodiscard]] RakeOutput receive(const std::vector<CplxF>& rx,
                                   dsp::DspModel* dsp = nullptr) const;

  /// Reception with externally supplied fingers (skips acquisition) —
  /// used by the tracker loop and the mapped-configuration harness.
  [[nodiscard]] RakeOutput receive_with_fingers(
      const std::vector<CplxF>& rx, const std::vector<FingerInfo>& fingers)
      const;

  /// Reception with the continuously-running channel estimator: the
  /// CPICH-based coefficients are re-estimated every @p block_chips
  /// (the paper's estimator and tracker run throughout reception),
  /// which keeps the corrector aligned under Doppler.
  [[nodiscard]] RakeOutput receive_tracked(const std::vector<CplxF>& rx,
                                           int block_chips = 2560,
                                           dsp::DspModel* dsp = nullptr) const;

  /// Acquisition only: path search + initial channel estimation.
  [[nodiscard]] std::vector<FingerInfo> acquire(const std::vector<CplxF>& rx,
                                                dsp::DspModel* dsp) const;

  const RakeConfig& config() const { return cfg_; }

  /// Single-finger datapath (bit-true): descramble + despread the
  /// stream seen at @p delay for basestation @p bs.
  [[nodiscard]] std::vector<CplxI> finger_despread(
      const std::vector<CplxI>& rx_q, std::uint32_t scrambling_code,
      int delay) const;

 private:
  RakeConfig cfg_;
};

}  // namespace rsp::rake

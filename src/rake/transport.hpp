// UMTS downlink transport-channel chain (TS 25.212 class): CRC
// attachment, rate-1/3 K=9 convolutional coding, block interleaving,
// and the inverse chain fed by the rake's combined soft symbols.
// This is the processing between the paper's rake receiver output and
// the "Layer 2" hand-off, and the bulk of Figure 1's UMTS decode MIPS.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/cplx.hpp"
#include "src/dedhw/convcode_gen.hpp"
#include "src/dedhw/crc.hpp"

namespace rsp::rake {

/// Block interleaver: write row-major into @p cols columns, read
/// column-major (TS 25.212 first interleaver shape).
[[nodiscard]] std::vector<std::uint8_t> block_interleave(
    const std::vector<std::uint8_t>& bits, int cols);
[[nodiscard]] std::vector<std::uint8_t> block_deinterleave(
    const std::vector<std::uint8_t>& bits, int cols);
[[nodiscard]] std::vector<std::int32_t> block_deinterleave_soft(
    const std::vector<std::int32_t>& soft, int cols);

struct TransportConfig {
  int interleave_cols = 32;
  dedhw::ConvSpec code = dedhw::umts_rate13();
};

/// Encoder: payload -> CRC16 -> convolutional code (+tail) ->
/// interleave.  The output length is what the DPCH must carry.
class TransportEncoder {
 public:
  explicit TransportEncoder(TransportConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] std::vector<std::uint8_t> encode(
      const std::vector<std::uint8_t>& payload) const;

  /// Coded bits produced for @p n_payload bits.
  [[nodiscard]] std::size_t coded_length(std::size_t n_payload) const;

  const TransportConfig& config() const { return cfg_; }

 private:
  TransportConfig cfg_;
};

struct TransportResult {
  std::vector<std::uint8_t> payload;
  bool crc_ok = false;
};

/// Decoder: soft coded bits -> deinterleave -> Viterbi -> CRC check.
class TransportDecoder {
 public:
  explicit TransportDecoder(TransportConfig cfg = {})
      : cfg_(cfg), viterbi_(cfg.code) {}

  /// @p n_payload is the transport-block size (signalled by L3).
  [[nodiscard]] TransportResult decode(const std::vector<std::int32_t>& soft,
                                       std::size_t n_payload) const;

  /// Convenience: soft values straight from combined rake QPSK symbols
  /// (I then Q per symbol, which is the DPCH bit order).
  [[nodiscard]] TransportResult decode_symbols(
      const std::vector<CplxI>& symbols, std::size_t n_payload) const;

 private:
  TransportConfig cfg_;
  dedhw::ViterbiDecoderGen viterbi_;
};

/// Soft bit stream (I, Q per symbol) from combined rake symbols.
[[nodiscard]] std::vector<std::int32_t> qpsk_soft_bits(
    const std::vector<CplxI>& symbols);

}  // namespace rsp::rake

#include "src/rake/scenario.hpp"

namespace rsp::rake {

std::vector<FingerScenario> table1_scenarios() {
  std::vector<FingerScenario> out;
  for (int dch : {1, 2}) {
    for (int bs = 1; bs <= 6; ++bs) {
      for (int mp = 1; mp <= 3; ++mp) {
        out.push_back({bs, dch, mp});
      }
    }
  }
  return out;
}

}  // namespace rsp::rake

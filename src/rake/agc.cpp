#include "src/rake/agc.hpp"

#include <algorithm>
#include <cmath>

namespace rsp::rake {

double Agc::scale_for(const std::vector<CplxF>& window) const {
  if (window.empty()) return target_;
  double power = 0.0;
  for (const auto& s : window) power += std::norm(s);
  // rms per complex sample; per-rail rms is that / sqrt(2).
  const double rms =
      std::sqrt(power / static_cast<double>(window.size()) / 2.0);
  if (rms < 1e-12) return target_;
  return target_ / rms;
}

double Agc::scale_for_prefix(const std::vector<CplxF>& rx,
                             std::size_t n) const {
  const std::size_t take = std::min(n, rx.size());
  return scale_for(std::vector<CplxF>(rx.begin(),
                                      rx.begin() +
                                          static_cast<std::ptrdiff_t>(take)));
}

}  // namespace rsp::rake

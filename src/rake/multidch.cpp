#include "src/rake/multidch.hpp"

#include <stdexcept>

namespace rsp::rake {

MultiDchReceiver::MultiDchReceiver(RakeConfig base,
                                   std::vector<DchParams> channels)
    : base_(std::move(base)), channels_(std::move(channels)) {
  if (channels_.empty()) {
    throw std::invalid_argument("MultiDchReceiver: no channels");
  }
  for (const auto& ch : channels_) {
    if (!dedhw::ovsf_valid(ch.sf, ch.code_index)) {
      throw std::invalid_argument("MultiDchReceiver: invalid OVSF code");
    }
  }
}

MultiDchReceiver::Output MultiDchReceiver::receive(
    const std::vector<CplxF>& rx, dsp::DspModel* dsp) const {
  // Acquisition is channel-independent (CPICH-based): run it once.
  RakeConfig acq = base_;
  acq.sf = channels_.front().sf;
  acq.code_index = channels_.front().code_index;
  acq.sttd = channels_.front().sttd;
  RakeReceiver acquirer(acq);
  const auto fingers = acquirer.acquire(rx, dsp);

  Output out;
  out.fingers = fingers;
  out.per_channel.reserve(channels_.size());
  for (const auto& ch : channels_) {
    RakeConfig cfg = base_;
    cfg.sf = ch.sf;
    cfg.code_index = ch.code_index;
    cfg.sttd = ch.sttd;
    RakeReceiver receiver(cfg);
    out.per_channel.push_back(receiver.receive_with_fingers(rx, fingers));
  }
  return out;
}

}  // namespace rsp::rake

#include "src/rake/receiver.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/dedhw/umts_scrambler.hpp"

namespace rsp::rake {

RakeReceiver::RakeReceiver(RakeConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.scrambling_codes.empty()) {
    throw std::invalid_argument("RakeReceiver: no basestations configured");
  }
  if (!dedhw::ovsf_valid(cfg_.sf, cfg_.code_index)) {
    throw std::invalid_argument("RakeReceiver: invalid OVSF code");
  }
}

std::vector<CplxI> RakeReceiver::finger_despread(
    const std::vector<CplxI>& rx_q, std::uint32_t scrambling_code,
    int delay) const {
  // Aligned chip stream for this finger.
  const auto n_avail =
      static_cast<std::size_t>(std::max<std::ptrdiff_t>(
          0, static_cast<std::ptrdiff_t>(rx_q.size()) - delay));
  const std::size_t n_chips =
      n_avail / static_cast<std::size_t>(cfg_.sf) *
      static_cast<std::size_t>(cfg_.sf);
  std::vector<CplxI> aligned(rx_q.begin() + delay,
                             rx_q.begin() + delay +
                                 static_cast<std::ptrdiff_t>(n_chips));
  // Scrambling code stream from the dedicated-hardware generator.
  dedhw::UmtsScrambler scr(scrambling_code);
  std::vector<std::uint8_t> code2(n_chips);
  for (auto& c : code2) c = scr.next2();

  const auto descrambled = descramble(aligned, code2);
  return despread(descrambled, cfg_.sf, cfg_.code_index);
}

RakeOutput RakeReceiver::receive_with_fingers(
    const std::vector<CplxF>& rx,
    const std::vector<FingerInfo>& fingers) const {
  const auto rx_q = quantize_chips(rx, cfg_.quant_scale);

  RakeOutput out;
  out.fingers = fingers;
  std::size_t min_symbols = static_cast<std::size_t>(-1);
  for (const auto& f : fingers) {
    auto symbols = finger_despread(
        rx_q, cfg_.scrambling_codes[static_cast<std::size_t>(f.basestation)],
        f.delay);
    CorrectorWeights w;
    w.conj_h1 = quantize_weight(std::conj(f.channel.h1));
    w.h2 = quantize_weight(f.channel.h2);
    w.sttd = cfg_.sttd;
    if (w.sttd && symbols.size() % 2 != 0) symbols.pop_back();
    out.per_finger.push_back(channel_correct(symbols, w));
    min_symbols = std::min(min_symbols, out.per_finger.back().size());
  }
  if (out.per_finger.empty()) return out;
  for (auto& f : out.per_finger) f.resize(min_symbols);
  out.combined = combine(out.per_finger);
  out.bits = qpsk_slice(out.combined);
  return out;
}

std::vector<FingerInfo> RakeReceiver::acquire(const std::vector<CplxF>& rx,
                                              dsp::DspModel* dsp) const {
  std::vector<FingerInfo> fingers;
  for (std::size_t bs = 0; bs < cfg_.scrambling_codes.size(); ++bs) {
    PathSearcher searcher(cfg_.scrambling_codes[bs], cfg_.search);
    const auto paths = searcher.search(rx, cfg_.paths_per_bs, dsp);
    for (const auto& p : paths) {
      FingerInfo f;
      f.basestation = static_cast<int>(bs);
      f.delay = p.delay;
      f.energy = p.energy;
      f.channel = estimate_channel(rx, cfg_.scrambling_codes[bs], p.delay,
                                   cfg_.pilot_amplitude, cfg_.sttd,
                                   /*n_chips=*/512, dsp);
      fingers.push_back(f);
    }
  }
  if (dsp != nullptr) {
    // Control & synchronization bookkeeping per finger assignment.
    dsp->charge("control_sync", dsp::DspOp::kAlu,
                static_cast<long long>(fingers.size()) * 24);
    dsp->charge("control_sync", dsp::DspOp::kBranch,
                static_cast<long long>(fingers.size()) * 8);
  }
  return fingers;
}

RakeOutput RakeReceiver::receive(const std::vector<CplxF>& rx,
                                 dsp::DspModel* dsp) const {
  return receive_with_fingers(rx, acquire(rx, dsp));
}

RakeOutput RakeReceiver::receive_tracked(const std::vector<CplxF>& rx,
                                         int block_chips,
                                         dsp::DspModel* dsp) const {
  const auto fingers = acquire(rx, dsp);
  const auto rx_q = quantize_chips(rx, cfg_.quant_scale);

  RakeOutput out;
  out.fingers = fingers;
  // Despreading is channel-independent: run the whole frame once per
  // finger, then correct block-by-block with re-estimated weights.
  int sym_per_block = std::max(1, block_chips / cfg_.sf);
  if (cfg_.sttd && sym_per_block % 2 != 0) ++sym_per_block;

  std::size_t min_symbols = static_cast<std::size_t>(-1);
  std::vector<std::vector<CplxI>> despread_streams;
  for (const auto& f : fingers) {
    despread_streams.push_back(finger_despread(
        rx_q, cfg_.scrambling_codes[static_cast<std::size_t>(f.basestation)],
        f.delay));
    min_symbols = std::min(min_symbols, despread_streams.back().size());
  }
  if (despread_streams.empty()) return out;
  if (cfg_.sttd && min_symbols % 2 != 0) --min_symbols;

  for (std::size_t fi = 0; fi < fingers.size(); ++fi) {
    const auto& f = fingers[fi];
    auto& symbols = despread_streams[fi];
    symbols.resize(min_symbols);
    std::vector<CplxI> corrected;
    corrected.reserve(min_symbols);
    for (std::size_t s0 = 0; s0 < min_symbols;
         s0 += static_cast<std::size_t>(sym_per_block)) {
      const std::size_t s1 =
          std::min(min_symbols, s0 + static_cast<std::size_t>(sym_per_block));
      const long long start_chip = static_cast<long long>(s0) * cfg_.sf;
      const auto est = estimate_channel(
          rx, cfg_.scrambling_codes[static_cast<std::size_t>(f.basestation)],
          f.delay, cfg_.pilot_amplitude, cfg_.sttd, /*n_chips=*/512, dsp,
          start_chip);
      CorrectorWeights w;
      w.conj_h1 = quantize_weight(std::conj(est.h1));
      w.h2 = quantize_weight(est.h2);
      w.sttd = cfg_.sttd;
      const std::vector<CplxI> block(symbols.begin() +
                                         static_cast<std::ptrdiff_t>(s0),
                                     symbols.begin() +
                                         static_cast<std::ptrdiff_t>(s1));
      const auto cb = channel_correct(block, w);
      corrected.insert(corrected.end(), cb.begin(), cb.end());
    }
    out.per_finger.push_back(std::move(corrected));
  }
  out.combined = combine(out.per_finger);
  out.bits = qpsk_slice(out.combined);
  return out;
}

}  // namespace rsp::rake

#include "src/rake/maps.hpp"

#include "src/dedhw/ovsf.hpp"
#include "src/xpp/builder.hpp"

namespace rsp::rake::maps {

using xpp::ConfigBuilder;
using xpp::Configuration;
using xpp::Opcode;
using xpp::RamMode;
using xpp::RamParams;
using xpp::Word;

std::vector<Word> pack_stream(const std::vector<CplxI>& v) {
  std::vector<Word> out;
  out.reserve(v.size());
  for (const auto& z : v) out.push_back(pack_cplx(z));
  return out;
}

std::vector<CplxI> unpack_stream(const std::vector<Word>& v) {
  std::vector<CplxI> out;
  out.reserve(v.size());
  for (const auto w : v) out.push_back(unpack_cplx(w));
  return out;
}

Configuration descrambler_config() {
  ConfigBuilder b("fig5_descrambler");
  const auto data = b.input("data");
  const auto code = b.input("code");
  // "packed constants" multiplexer: 2-bit code word selects conj(+-1+-j).
  const auto tbl = descramble_sel4_table();
  const auto mux = b.sel4("codemux", {tbl[0], tbl[1], tbl[2], tbl[3]});
  // Complex multiplication with the >>1 rescaling (|code|^2 = 2).
  const auto mul = b.alu_shift("cmul", Opcode::kCMulShr, kDescrambleShift);
  const auto out = b.output("out");
  b.connect(code.out(0), mux.in(0));
  b.connect(data.out(0), mul.in(0));
  b.connect(mux.out(0), mul.in(1));
  b.connect(mul.out(0), out.in(0));
  return b.build();
}

Configuration despreader_config(int sf, int code_index) {
  ConfigBuilder b("fig6_despreader");
  const auto data = b.input("data");
  // "Fifo with OVSF codes": circular LUT streaming the +-1 chips
  // (packed as real values) in step with the data.
  std::vector<Word> ovsf;
  ovsf.reserve(static_cast<std::size_t>(sf));
  for (int i = 0; i < sf; ++i) {
    ovsf.push_back(pack_cplx({dedhw::ovsf_chip(sf, code_index, i), 0}));
  }
  RamParams lut;
  lut.mode = RamMode::kCircularLut;
  lut.capacity = static_cast<int>(ovsf.size());
  lut.preload = std::move(ovsf);
  const auto codes = b.ram("ovsf_fifo", std::move(lut));
  // "Complex Multiplication" by the +-1 chip.
  const auto mul = b.alu_shift("cmul", Opcode::kCMulShr, 0);
  // "Counter" + "Comparator (result shift out)": the counter's wrap
  // event is the dump strobe of the complex accumulator.
  const auto cnt = b.counter("cnt", {0, 1, sf});
  const auto acc = b.alu_shift("cacc", Opcode::kCAccum, despread_shift(sf));
  const auto out = b.output("out");
  b.connect(data.out(0), mul.in(0));
  b.connect(codes.out(0), mul.in(1));
  b.connect(mul.out(0), acc.in(0));
  b.connect(cnt.out(1), acc.in(1));
  b.connect(acc.out(0), out.in(0));
  return b.build();
}

Configuration chancorr_config(const CorrectorWeights& w) {
  ConfigBuilder b("fig7_chancorr");
  const auto sym = b.input("data");
  const auto out = b.output("out");

  if (!w.sttd) {
    // Plain MRC weighting: one weight FIFO entry, one complex mult.
    RamParams wts;
    wts.mode = RamMode::kCircularLut;
    wts.capacity = 1;
    wts.preload = {pack_cplx(w.conj_h1)};
    const auto wfifo = b.ram("weights", std::move(wts));
    const auto mul = b.alu_shift("cmul", Opcode::kCMulShr, kWeightFrac);
    b.connect(sym.out(0), mul.in(0));
    b.connect(wfifo.out(0), mul.in(1));
    b.connect(mul.out(0), out.in(0));
    return b.build();
  }

  // STTD decode (Figure 7): two weighted branches; the conjugated
  // branch is pair-swapped before the final addition.
  const auto dup = b.alu("dup", Opcode::kDup);
  b.connect(sym.out(0), dup.in(0));

  RamParams wa;
  wa.mode = RamMode::kCircularLut;
  wa.capacity = 1;
  wa.preload = {pack_cplx(w.conj_h1)};
  const auto wts_a = b.ram("weights_a", std::move(wa));
  const auto mul_a = b.alu_shift("cmul_a", Opcode::kCMulShr, kWeightFrac);
  b.connect(dup.out(0), mul_a.in(0));
  b.connect(wts_a.out(0), mul_a.in(1));

  const auto conj = b.alu("conj", Opcode::kCConj);
  b.connect(dup.out(1), conj.in(0));
  const CplxI neg_h2 = sat_cplx({-w.h2.re, -w.h2.im}, kHalfBits);
  RamParams wb;
  wb.mode = RamMode::kCircularLut;
  wb.capacity = 2;
  wb.preload = {pack_cplx(neg_h2), pack_cplx(w.h2)};
  const auto wts_b = b.ram("weights_b", std::move(wb));
  const auto mul_b = b.alu_shift("cmul_b", Opcode::kCMulShr, kWeightFrac);
  b.connect(conj.out(0), mul_b.in(0));
  b.connect(wts_b.out(0), mul_b.in(1));

  // Pair swap of the B branch: demux even/odd, merge odd-first ("Swap").
  const auto cnt = b.counter("pair_cnt", {0, 1, 2});
  const auto demux = b.alu("demux", Opcode::kDemux);
  b.connect(cnt.out(0), demux.in(0));
  b.connect(mul_b.out(0), demux.in(1));
  const auto merge = b.alu("swap_merge", Opcode::kMergeAlt);
  b.connect(demux.out(1), merge.in(0));  // b2 first
  b.connect(demux.out(0), merge.in(1));  // then b1

  const auto add = b.alu("cadd", Opcode::kCAdd);
  b.connect(mul_a.out(0), add.in(0));
  b.connect(merge.out(0), add.in(1));
  b.connect(add.out(0), out.in(0));
  return b.build();
}

Configuration combiner_config(int num_fingers) {
  ConfigBuilder b("fig7_combiner");
  const auto data = b.input("data");
  const auto cnt = b.counter("cnt", {0, 1, num_fingers});
  const auto acc = b.alu_shift("cacc", Opcode::kCAccum, 0);
  const auto out = b.output("out");
  b.connect(data.out(0), acc.in(0));
  b.connect(cnt.out(1), acc.in(1));
  b.connect(acc.out(0), out.in(0));
  return b.build();
}

namespace {

std::vector<CplxI> run_simple(xpp::ConfigurationManager& mgr,
                              const Configuration& cfg,
                              std::map<std::string, std::vector<Word>> inputs,
                              std::size_t expected_out,
                              xpp::RunResult* stats) {
  auto r = xpp::run_config(mgr, cfg, inputs, {{"out", expected_out}});
  auto out = unpack_stream(r.outputs.at("out"));
  if (stats != nullptr) *stats = std::move(r);
  return out;
}

}  // namespace

std::vector<CplxI> run_descrambler(xpp::ConfigurationManager& mgr,
                                   const std::vector<CplxI>& chips,
                                   const std::vector<std::uint8_t>& code2,
                                   xpp::RunResult* stats) {
  std::vector<Word> code_words;
  code_words.reserve(code2.size());
  for (const auto c : code2) code_words.push_back(c & 3);
  return run_simple(mgr, descrambler_config(),
                    {{"data", pack_stream(chips)}, {"code", code_words}},
                    chips.size(), stats);
}

std::vector<CplxI> run_despreader(xpp::ConfigurationManager& mgr,
                                  const std::vector<CplxI>& chips, int sf,
                                  int code_index, xpp::RunResult* stats) {
  return run_simple(mgr, despreader_config(sf, code_index),
                    {{"data", pack_stream(chips)}},
                    chips.size() / static_cast<std::size_t>(sf), stats);
}

std::vector<CplxI> run_chancorr(xpp::ConfigurationManager& mgr,
                                const std::vector<CplxI>& symbols,
                                const CorrectorWeights& w,
                                xpp::RunResult* stats) {
  return run_simple(mgr, chancorr_config(w), {{"data", pack_stream(symbols)}},
                    symbols.size(), stats);
}

std::vector<CplxI> run_combiner(xpp::ConfigurationManager& mgr,
                                const std::vector<std::vector<CplxI>>& fingers,
                                xpp::RunResult* stats) {
  // Interleave finger streams: f0[0], f1[0], ..., f0[1], f1[1], ...
  const std::size_t n = fingers.front().size();
  std::vector<CplxI> tdm;
  tdm.reserve(n * fingers.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& f : fingers) tdm.push_back(f[i]);
  }
  return run_simple(mgr, combiner_config(static_cast<int>(fingers.size())),
                    {{"data", pack_stream(tdm)}}, n, stats);
}

}  // namespace rsp::rake::maps

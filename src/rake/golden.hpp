// Bit-true golden reference of the rake finger datapath (paper §3.1).
//
// Every function here performs exactly the operation of the
// corresponding array-mapped unit in Figures 5-7 (packed 12+12 complex
// arithmetic with the same shifts and saturation), so the mapped
// configurations can be verified bit-for-bit against this chain.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/cplx.hpp"
#include "src/dedhw/ovsf.hpp"
#include "src/dedhw/umts_scrambler.hpp"

namespace rsp::rake {

/// Post-descrambler shift: r * conj(c) with c = +-1 +- j doubles the
/// magnitude (|c|^2 = 2), so the product is halved back into 12 bits.
inline constexpr int kDescrambleShift = 1;

/// Q-format of channel weights fed to the corrector (Q10: +-2.0 range).
inline constexpr int kWeightFrac = 10;

/// The +-1 +- j constant selected by a 2-bit scrambling code word,
/// conjugated for descrambling, packed for the SEL4 table of Figure 5.
/// bit0 = I, bit1 = Q; code value (1-2*I) + j(1-2*Q), conjugated.
[[nodiscard]] std::array<std::int32_t, 4> descramble_sel4_table();

/// Descramble one chip: (r * conj(c(code2))) >> 1, rounded, saturated
/// to 12 bits per component (one kSel4 + one kCMulShr ALU).
[[nodiscard]] CplxI descramble_chip(CplxI r, std::uint8_t code2);

/// Descramble a chip sequence against a scrambling code stream.
[[nodiscard]] std::vector<CplxI> descramble(
    const std::vector<CplxI>& chips, const std::vector<std::uint8_t>& code2);

/// Despreader output shift for spreading factor @p sf: keeps the
/// accumulated symbol at ~4x chip amplitude (2 bits of processing-gain
/// headroom) while fitting 12 bits.
[[nodiscard]] constexpr int despread_shift(int sf) {
  int log2sf = 0;
  for (int s = sf; s > 1; s >>= 1) ++log2sf;
  return log2sf > 2 ? log2sf - 2 : 0;
}

/// Despread: multiply by the +-1 OVSF chips and accumulate over @p sf
/// chips; each symbol is the accumulator >> despread_shift(sf),
/// rounded, saturated to 12 bits (kCMulShr + kCAccum + counter).
[[nodiscard]] std::vector<CplxI> despread(const std::vector<CplxI>& chips,
                                          int sf, int code_index);

/// Channel-correct (and STTD-decode) a despread symbol stream.
///
/// Weights are packed Q10 values.  Non-diversity MRC: y_t =
/// (r_t * w) >> 10 with w = conj(h1).  STTD (Figure 7): symbols arrive
/// in pairs (r1, r2) and
///    s1 = (r1 * conj(h1))>>10 + (conj(r2) * h2)>>10
///    s2 = (r2 * conj(h1))>>10 + (conj(r1) * -h2)>>10
/// each add saturating at 12 bits — exactly the DUP/CCONJ/CMULS/
/// swap/CADD pipeline of the mapped configuration.
struct CorrectorWeights {
  CplxI conj_h1;      ///< Q10, conj of the antenna-1 coefficient
  CplxI h2;           ///< Q10 antenna-2 coefficient (ignored unless sttd)
  bool sttd = false;
};

[[nodiscard]] std::vector<CplxI> channel_correct(
    const std::vector<CplxI>& symbols, const CorrectorWeights& w);

/// Maximum-ratio combining across fingers: saturating 12-bit complex
/// sum of per-finger corrected symbols (vectors must be equal length).
[[nodiscard]] std::vector<CplxI> combine(
    const std::vector<std::vector<CplxI>>& fingers);

/// Quantize float chips to the 12-bit I/Q input format ("Symbol
/// Encoding: 12-bits for I and Q each"), with @p scale mapping unit
/// amplitude to @p scale LSBs.
[[nodiscard]] std::vector<CplxI> quantize_chips(const std::vector<CplxF>& x,
                                                double scale = 256.0);

/// Quantize a float channel coefficient to packed Q10.
[[nodiscard]] CplxI quantize_weight(CplxF h);

/// Hard QPSK decisions from corrected symbols: bit pair per symbol
/// (b0 from I sign, b1 from Q sign).
[[nodiscard]] std::vector<std::uint8_t> qpsk_slice(
    const std::vector<CplxI>& symbols);

}  // namespace rsp::rake

#include "src/rake/tdm.hpp"

#include <stdexcept>

#include "src/common/word.hpp"
#include "src/dedhw/ovsf.hpp"

namespace rsp::rake {

TdmFinger::TdmFinger(std::vector<Context> contexts)
    : contexts_(std::move(contexts)) {
  if (contexts_.empty() ||
      static_cast<int>(contexts_.size()) > 18) {
    throw std::invalid_argument("TdmFinger: 1..18 contexts supported");
  }
  for (const auto& c : contexts_) {
    if (!dedhw::ovsf_valid(c.sf, c.code_index)) {
      throw std::invalid_argument("TdmFinger: invalid OVSF code");
    }
  }
}

std::vector<std::vector<CplxI>> TdmFinger::process(
    const std::vector<CplxI>& rx) {
  struct State {
    dedhw::UmtsScrambler scrambler;
    long long chip = 0;       // code-aligned chip index
    long long acc_re = 0;
    long long acc_im = 0;
  };
  std::vector<State> st;
  st.reserve(contexts_.size());
  for (const auto& c : contexts_) {
    st.push_back({dedhw::UmtsScrambler(c.scrambling_code), 0, 0, 0});
  }

  std::vector<std::vector<CplxI>> out(contexts_.size());

  // Outer loop = chip slots; inner loop = the 18x time multiplex.
  const long long n = static_cast<long long>(rx.size());
  for (long long slot = 0;; ++slot) {
    bool any = false;
    for (std::size_t k = 0; k < contexts_.size(); ++k) {
      const auto& ctx = contexts_[k];
      auto& s = st[k];
      const long long rx_idx = s.chip + ctx.delay;
      if (rx_idx >= n) continue;
      if (slot != s.chip) continue;  // contexts advance one chip per slot
      any = true;
      ++chip_ops_;
      const std::uint8_t code2 = s.scrambler.next2();
      const CplxI d = descramble_chip(rx[static_cast<std::size_t>(rx_idx)],
                                      code2);
      const int pos = static_cast<int>(s.chip % ctx.sf);
      const int ov = dedhw::ovsf_chip(ctx.sf, ctx.code_index, pos);
      s.acc_re += ov * d.re;
      s.acc_im += ov * d.im;
      if (pos == ctx.sf - 1) {
        const int shift = despread_shift(ctx.sf);
        out[k].push_back(
            {saturate(shr_round(static_cast<std::int32_t>(
                                    saturate(s.acc_re, 31)),
                                shift),
                      kHalfBits),
             saturate(shr_round(static_cast<std::int32_t>(
                                    saturate(s.acc_im, 31)),
                                shift),
                      kHalfBits)});
        s.acc_re = 0;
        s.acc_im = 0;
      }
      ++s.chip;
    }
    if (!any) break;
  }
  return out;
}

}  // namespace rsp::rake

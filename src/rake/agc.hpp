// Digital AGC in front of the 12-bit quantizer.
//
// The paper's datapath assumes "12-bits for I and Q each"; keeping the
// signal in that window across the huge dynamic range of a mobile
// channel is the A/D front end's job.  This block estimates the rms
// input level over a window and returns the quantizer scale that puts
// the signal at a configurable backoff below full scale.
#pragma once

#include <vector>

#include "src/common/cplx.hpp"

namespace rsp::rake {

class Agc {
 public:
  /// @param target_rms_lsb desired rms level in quantizer LSBs
  ///        (full scale is 2047; ~256 leaves 18 dB of crest headroom)
  explicit Agc(double target_rms_lsb = 256.0) : target_(target_rms_lsb) {}

  /// Scale factor for quantize_chips() given a measurement window.
  [[nodiscard]] double scale_for(const std::vector<CplxF>& window) const;

  /// Convenience: measure on a leading prefix of @p rx.
  [[nodiscard]] double scale_for_prefix(const std::vector<CplxF>& rx,
                                        std::size_t n) const;

  [[nodiscard]] double target_rms_lsb() const { return target_; }

 private:
  double target_;
};

}  // namespace rsp::rake

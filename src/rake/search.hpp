// Path search, tracking and channel estimation (paper §3.1):
// "A path searcher performs a correlation of a fixed set of pilot
// signals over a sliding window to detect the paths with the strongest
// signal values...  The path searcher divides itself into a coarse and
// a fine searcher, with differing repetition intervals and accuracies.
// A path tracker is responsible for the tracking and the
// resynchronization of the paths...  The channel estimator calculates
// the channel coefficients... on the basis of a specific sequence of
// pilot signals."
//
// These tasks are control-dominated and run on the DSP in the paper's
// partitioning (Figure 4); the heavy correlations charge MAC
// operations to the DspModel so the partitioning benches can report
// the load split.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/cplx.hpp"
#include "src/dsp/dsp.hpp"

namespace rsp::rake {

struct SearchParams {
  int window_chips = 128;     ///< delay search window
  // PN correlation decorrelates within one chip, so the coarse pass
  // scans every chip; coarse vs. fine differ in integration length
  // ("differing repetition intervals and accuracies", paper §3.1).
  int coarse_step = 1;        ///< coarse searcher lag granularity
  int coarse_chips = 256;     ///< integration length, coarse pass
  int fine_chips = 512;       ///< integration length, fine pass
  int fine_radius = 2;        ///< +-chips refined around each coarse peak
  double threshold_ratio = 0.10;  ///< min energy relative to strongest
};

struct PathCandidate {
  int delay = 0;         ///< chips
  double energy = 0.0;   ///< correlation energy
  CplxF h{0.0, 0.0};     ///< coarse channel coefficient at this delay
};

/// Pilot correlator against one basestation's CPICH.
class PathSearcher {
 public:
  PathSearcher(std::uint32_t scrambling_code, SearchParams params);

  /// Two-stage (coarse + fine) search for the @p max_paths strongest
  /// delays.  Charges correlation MACs and control to @p dsp if given.
  [[nodiscard]] std::vector<PathCandidate> search(
      const std::vector<CplxF>& rx, int max_paths,
      dsp::DspModel* dsp = nullptr) const;

  /// Correlation energy and coefficient at a single delay.
  [[nodiscard]] PathCandidate probe(const std::vector<CplxF>& rx, int delay,
                                    int n_chips,
                                    dsp::DspModel* dsp = nullptr) const;

  const SearchParams& params() const { return params_; }

 private:
  std::uint32_t code_;
  SearchParams params_;
  mutable std::vector<CplxF> pilot_;  // cached conj pilot sequence

  void ensure_pilot(std::size_t n) const;
};

/// Early-late path tracker: nudges @p delay toward the locally
/// strongest correlation; @p hysteresis consecutive confirmations are
/// required before a move.
class PathTracker {
 public:
  PathTracker(std::uint32_t scrambling_code, int integrate_chips = 256,
              int hysteresis = 2);

  /// Track one path; returns the (possibly adjusted) delay.
  [[nodiscard]] int track(const std::vector<CplxF>& rx, int delay,
                          dsp::DspModel* dsp = nullptr);

 private:
  PathSearcher searcher_;
  int integrate_;
  int hysteresis_;
  int pending_dir_ = 0;
  int pending_count_ = 0;
};

/// CPICH channel estimation for one (basestation, delay) path.
/// @p pilot_amplitude is the known transmitted CPICH amplitude.
/// When @p diversity is true, also estimates the second-antenna
/// coefficient from the alternating-sign diversity pilot.
struct ChannelEstimate {
  CplxF h1{0.0, 0.0};
  CplxF h2{0.0, 0.0};
};

/// @p start_chip lets the continuously-running estimator re-estimate
/// later in the frame (code-aligned: pilot chip index = start_chip + n).
[[nodiscard]] ChannelEstimate estimate_channel(
    const std::vector<CplxF>& rx, std::uint32_t scrambling_code, int delay,
    double pilot_amplitude, bool diversity = false, int n_chips = 512,
    dsp::DspModel* dsp = nullptr, long long start_chip = 0);

}  // namespace rsp::rake

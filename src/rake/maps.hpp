// Array-mapped rake datapath configurations (paper Figures 5-7).
//
// Each builder returns a Configuration whose behaviour is bit-identical
// to the golden chain in golden.hpp; the *_run helpers stream data
// through a ConfigurationManager and return the produced words.
//
// I/O object names: inputs "data" (packed 12+12 chips) and, for the
// descrambler, "code" (2-bit scrambling words); output "out".
#pragma once

#include <vector>

#include "src/rake/golden.hpp"
#include "src/xpp/configuration.hpp"
#include "src/xpp/runner.hpp"

namespace rsp::rake::maps {

/// Figure 5: scrambling-code multiplexer (2-bit -> conj(+-1+-j) packed
/// constants) feeding a complex multiplier.
[[nodiscard]] xpp::Configuration descrambler_config();

/// Figure 6: OVSF chips from a circular LUT, complex multiplication,
/// complex accumulation with counter/comparator-driven dump.
[[nodiscard]] xpp::Configuration despreader_config(int sf, int code_index);

/// Figure 7: channel correction (+ STTD decode) for one finger.  The
/// channel weights live in preloaded FIFOs exactly as in the figure.
[[nodiscard]] xpp::Configuration chancorr_config(const CorrectorWeights& w);

/// Maximum-ratio combining of @p num_fingers time-multiplexed streams.
[[nodiscard]] xpp::Configuration combiner_config(int num_fingers);

/// Run helpers (load, stream, collect, release).
[[nodiscard]] std::vector<CplxI> run_descrambler(
    xpp::ConfigurationManager& mgr, const std::vector<CplxI>& chips,
    const std::vector<std::uint8_t>& code2, xpp::RunResult* stats = nullptr);

[[nodiscard]] std::vector<CplxI> run_despreader(
    xpp::ConfigurationManager& mgr, const std::vector<CplxI>& chips, int sf,
    int code_index, xpp::RunResult* stats = nullptr);

[[nodiscard]] std::vector<CplxI> run_chancorr(
    xpp::ConfigurationManager& mgr, const std::vector<CplxI>& symbols,
    const CorrectorWeights& w, xpp::RunResult* stats = nullptr);

[[nodiscard]] std::vector<CplxI> run_combiner(
    xpp::ConfigurationManager& mgr,
    const std::vector<std::vector<CplxI>>& fingers,
    xpp::RunResult* stats = nullptr);

/// Pack/unpack helpers shared with the OFDM maps.
[[nodiscard]] std::vector<xpp::Word> pack_stream(const std::vector<CplxI>& v);
[[nodiscard]] std::vector<CplxI> unpack_stream(const std::vector<xpp::Word>& v);

}  // namespace rsp::rake::maps

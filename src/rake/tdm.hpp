// The single time-multiplexed physical finger (paper §3.1):
// "By repeating the descrambling and despreading operation on a single
// chip over multiple scrambling and spreading codes and time
// multiplexing the resulting data stream, the single physical finger
// thus corresponds to an implementation of 18 rake fingers."
//
// TdmFinger executes exactly that schedule: for every received chip it
// loops over all configured finger contexts, so the required clock is
// contexts x 3.84 MHz.  Its outputs are bit-identical to running one
// dedicated finger per context (asserted by tests), which is the
// paper's resource-saving claim.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/cplx.hpp"
#include "src/dedhw/umts_scrambler.hpp"
#include "src/rake/golden.hpp"

namespace rsp::rake {

class TdmFinger {
 public:
  struct Context {
    std::uint32_t scrambling_code = 0;
    int delay = 0;         ///< path offset in chips
    int sf = 128;
    int code_index = 1;
  };

  explicit TdmFinger(std::vector<Context> contexts);

  /// Process a received 12-bit chip stream (frame-aligned at index 0);
  /// returns the despread symbol stream of every context.
  [[nodiscard]] std::vector<std::vector<CplxI>> process(
      const std::vector<CplxI>& rx);

  /// Chip-context operations executed (one per context per chip slot).
  [[nodiscard]] long long chip_ops() const { return chip_ops_; }

  /// Clock the physical finger needs to sustain real time.
  [[nodiscard]] double required_clock_hz() const {
    return static_cast<double>(contexts_.size()) * dedhw::kChipRateHz;
  }

  [[nodiscard]] int num_contexts() const {
    return static_cast<int>(contexts_.size());
  }

 private:
  std::vector<Context> contexts_;
  long long chip_ops_ = 0;
};

}  // namespace rsp::rake

// OVSF (orthogonal variable spreading factor) channelization codes,
// TS 25.213 §4.3.1.  Downlink spreading factors range "4 to 512"
// (paper, Section 3.1).  Codes are defined by the recursion
//   C(2sf, 2k)   = [C(sf,k),  C(sf,k)]
//   C(2sf, 2k+1) = [C(sf,k), -C(sf,k)]
// with C(1,0) = [+1].
#pragma once

#include <cstdint>
#include <vector>

namespace rsp::dedhw {

inline constexpr int kMinSpreadingFactor = 4;
inline constexpr int kMaxSpreadingFactor = 512;

/// Chip @p i of code (sf, k) as ±1, computed in O(log sf) without
/// materializing the code (the dedicated-hardware generator streams it).
[[nodiscard]] constexpr int ovsf_chip(int sf, int k, int i) {
  // Peeling the recursion one level at a time: at the outermost level
  // the code index parity (k bit 0) pairs with the MSB of the chip
  // index, so chip i of C(sf,k) has sign parity <k, bitrev(i)>.
  int sign = 0;
  int depth = 0;
  for (int s = sf; s > 1; s >>= 1) ++depth;
  for (int level = 0; level < depth; ++level) {
    const int kbit = (k >> level) & 1;
    const int ibit = (i >> (depth - 1 - level)) & 1;
    sign ^= kbit & ibit;
  }
  return sign ? -1 : 1;
}

/// Full code as a vector of ±1.
[[nodiscard]] std::vector<std::int8_t> ovsf_code(int sf, int k);

/// True if (sf, k) is a valid downlink code index.
[[nodiscard]] constexpr bool ovsf_valid(int sf, int k) {
  if (sf < 1 || sf > kMaxSpreadingFactor) return false;
  if ((sf & (sf - 1)) != 0) return false;  // power of two
  return k >= 0 && k < sf;
}

/// Streaming generator (one chip per call), matching the dedicated
/// "Spreading Code Generation" block of Figure 4.
class OvsfGenerator {
 public:
  OvsfGenerator(int sf, int k) : sf_(sf), k_(k) {}
  int next() {
    const int c = ovsf_chip(sf_, k_, pos_);
    pos_ = (pos_ + 1) % sf_;
    return c;
  }
  void reset() { pos_ = 0; }
  int sf() const { return sf_; }

 private:
  int sf_;
  int k_;
  int pos_ = 0;
};

}  // namespace rsp::dedhw

// Generalized convolutional coding: arbitrary constraint length K and
// rate 1/n generator sets.  The UMTS downlink (TS 25.212) uses K=9
// codes at rates 1/2 and 1/3; the 802.11a-specific K=7 code in
// convcode.hpp remains the hot path for the OFDM chain.
#pragma once

#include <cstdint>
#include <vector>

namespace rsp::dedhw {

/// A rate-1/n convolutional code.  Generators are given in the
/// conventional octal form (MSB = tap on the current input bit).
struct ConvSpec {
  int constraint_length = 9;
  std::vector<unsigned> generators_octal = {0557, 0663, 0711};

  [[nodiscard]] int rate_denominator() const {
    return static_cast<int>(generators_octal.size());
  }
  [[nodiscard]] int num_states() const {
    return 1 << (constraint_length - 1);
  }
};

/// TS 25.212 rate-1/3 K=9 code (G0=557, G1=663, G2=711 octal).
[[nodiscard]] ConvSpec umts_rate13();
/// TS 25.212 rate-1/2 K=9 code (G0=561, G1=753 octal).
[[nodiscard]] ConvSpec umts_rate12();

/// Encode @p bits; appends K-1 zero tail bits when @p add_tail.
[[nodiscard]] std::vector<std::uint8_t> conv_encode_gen(
    const std::vector<std::uint8_t>& bits, const ConvSpec& spec,
    bool add_tail = true);

/// Soft-decision Viterbi decoder for any ConvSpec (states <= 4096).
/// Soft convention matches ViterbiDecoder: positive favours bit 1,
/// zero is an erasure.
class ViterbiDecoderGen {
 public:
  explicit ViterbiDecoderGen(ConvSpec spec);

  [[nodiscard]] std::vector<std::uint8_t> decode(
      const std::vector<std::int32_t>& soft, std::size_t n_info,
      bool terminated = true) const;

  [[nodiscard]] const ConvSpec& spec() const { return spec_; }

 private:
  ConvSpec spec_;
  std::vector<unsigned> masks_;  // newest-bit-LSB tap masks
};

}  // namespace rsp::dedhw

#include "src/dedhw/ovsf.hpp"

#include <stdexcept>

namespace rsp::dedhw {

std::vector<std::int8_t> ovsf_code(int sf, int k) {
  if (!ovsf_valid(sf, k)) {
    throw std::invalid_argument("ovsf_code: invalid (sf,k)");
  }
  std::vector<std::int8_t> out(static_cast<std::size_t>(sf));
  for (int i = 0; i < sf; ++i) {
    out[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(ovsf_chip(sf, k, i));
  }
  return out;
}

}  // namespace rsp::dedhw

// IEEE 802.11a data scrambler/descrambler (Section 17.3.5.4 of the
// standard): self-synchronizing LFSR with polynomial x^7 + x^4 + 1.
// In the paper's OFDM partitioning the descrambler runs on the
// reconfigurable processor (Figure 8 places "Descrambler" between the
// FFT output path and the Viterbi-decoded bit stream in Figure 10's
// resident configuration 1).
#pragma once

#include <cstdint>
#include <vector>

namespace rsp::dedhw {

class WlanScrambler {
 public:
  /// @param seed initial 7-bit LFSR state (non-zero).
  explicit WlanScrambler(std::uint8_t seed = 0x5D) : state_(seed & 0x7F) {}

  /// Next scrambling bit.
  std::uint8_t next_bit() {
    const std::uint8_t fb =
        static_cast<std::uint8_t>(((state_ >> 6) ^ (state_ >> 3)) & 1u);
    state_ = static_cast<std::uint8_t>(((state_ << 1) | fb) & 0x7F);
    return fb;
  }

  /// Scramble (= descramble) a bit sequence in place.
  void apply(std::vector<std::uint8_t>& bits) {
    for (auto& b : bits) b = static_cast<std::uint8_t>((b ^ next_bit()) & 1u);
  }

  void reset(std::uint8_t seed) { state_ = seed & 0x7F; }
  std::uint8_t state() const { return state_; }

 private:
  std::uint8_t state_;
};

}  // namespace rsp::dedhw

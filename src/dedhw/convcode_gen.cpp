#include "src/dedhw/convcode_gen.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

namespace rsp::dedhw {
namespace {

/// Reverse the low @p k bits (octal-convention generator -> the
/// newest-bit-LSB window masks used by the encoder/decoder loops).
unsigned reverse_bits(unsigned v, int k) {
  unsigned out = 0;
  for (int i = 0; i < k; ++i) {
    out = (out << 1) | ((v >> i) & 1u);
  }
  return out;
}

std::vector<unsigned> window_masks(const ConvSpec& spec) {
  std::vector<unsigned> masks;
  masks.reserve(spec.generators_octal.size());
  for (const unsigned g : spec.generators_octal) {
    masks.push_back(reverse_bits(g, spec.constraint_length));
  }
  return masks;
}

}  // namespace

ConvSpec umts_rate13() { return {9, {0557, 0663, 0711}}; }
ConvSpec umts_rate12() { return {9, {0561, 0753}}; }

std::vector<std::uint8_t> conv_encode_gen(const std::vector<std::uint8_t>& bits,
                                          const ConvSpec& spec, bool add_tail) {
  if (spec.constraint_length < 2 || spec.constraint_length > 13 ||
      spec.generators_octal.empty()) {
    throw std::invalid_argument("conv_encode_gen: bad spec");
  }
  const auto masks = window_masks(spec);
  const unsigned window_mask = (1u << spec.constraint_length) - 1u;
  std::vector<std::uint8_t> out;
  out.reserve((bits.size() + static_cast<std::size_t>(spec.constraint_length)) *
              masks.size());
  unsigned window = 0;
  const auto push = [&](std::uint8_t bit) {
    window = ((window << 1) | bit) & window_mask;
    for (const unsigned m : masks) {
      out.push_back(static_cast<std::uint8_t>(std::popcount(window & m) & 1));
    }
  };
  for (const auto b : bits) push(b & 1u);
  if (add_tail) {
    for (int i = 0; i < spec.constraint_length - 1; ++i) push(0);
  }
  return out;
}

ViterbiDecoderGen::ViterbiDecoderGen(ConvSpec spec) : spec_(std::move(spec)) {
  if (spec_.num_states() > 4096) {
    throw std::invalid_argument("ViterbiDecoderGen: too many states");
  }
  masks_ = window_masks(spec_);
}

std::vector<std::uint8_t> ViterbiDecoderGen::decode(
    const std::vector<std::int32_t>& soft, std::size_t n_info,
    bool terminated) const {
  const int n_out = spec_.rate_denominator();
  const int states = spec_.num_states();
  const int k = spec_.constraint_length;
  const std::size_t steps = soft.size() / static_cast<std::size_t>(n_out);

  constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min() / 4;
  std::vector<std::int64_t> metric(static_cast<std::size_t>(states), kNegInf);
  std::vector<std::int64_t> next(static_cast<std::size_t>(states), kNegInf);
  metric[0] = 0;
  std::vector<std::uint8_t> surv(steps * static_cast<std::size_t>(states));

  for (std::size_t step = 0; step < steps; ++step) {
    std::fill(next.begin(), next.end(), kNegInf);
    for (int s = 0; s < states; ++s) {
      if (metric[static_cast<std::size_t>(s)] == kNegInf) continue;
      for (unsigned bit = 0; bit < 2; ++bit) {
        const unsigned window =
            ((static_cast<unsigned>(s) << 1) | bit) & ((1u << k) - 1u);
        std::int64_t m = metric[static_cast<std::size_t>(s)];
        for (int g = 0; g < n_out; ++g) {
          const std::int32_t sv =
              soft[step * static_cast<std::size_t>(n_out) +
                   static_cast<std::size_t>(g)];
          const int expected =
              std::popcount(window & masks_[static_cast<std::size_t>(g)]) & 1;
          m += expected ? sv : -sv;
        }
        const unsigned ns = window & (static_cast<unsigned>(states) - 1u);
        if (m > next[ns]) {
          next[ns] = m;
          surv[step * static_cast<std::size_t>(states) + ns] =
              static_cast<std::uint8_t>((static_cast<unsigned>(s) >> (k - 2)) &
                                        1u);
        }
      }
    }
    std::swap(metric, next);
  }

  unsigned state = 0;
  if (!terminated) {
    state = static_cast<unsigned>(
        std::max_element(metric.begin(), metric.end()) - metric.begin());
  }
  std::vector<std::uint8_t> decoded(steps);
  for (std::size_t step = steps; step-- > 0;) {
    decoded[step] = static_cast<std::uint8_t>(state & 1u);
    const unsigned p = surv[step * static_cast<std::size_t>(states) + state];
    state = (state >> 1) | (p << (k - 2));
  }
  if (decoded.size() > n_info) decoded.resize(n_info);
  return decoded;
}

}  // namespace rsp::dedhw

#include "src/dedhw/umts_scrambler.hpp"

namespace rsp::dedhw {
namespace {
constexpr std::uint32_t kMask18 = (1u << 18) - 1u;
}

UmtsScrambler::UmtsScrambler(std::uint32_t code_number) : code_(code_number) {
  seed();
}

void UmtsScrambler::seed() {
  // TS 25.213: x starts as 1 followed by seventeen zeros and is clocked
  // n times to select code n; y starts all ones.
  x_ = 1u;
  y_ = kMask18;
  for (std::uint32_t i = 0; i < code_; ++i) {
    const std::uint32_t xfb = ((x_ >> 0) ^ (x_ >> 7)) & 1u;
    x_ = (x_ >> 1) | (xfb << 17);
  }
}

void UmtsScrambler::reset() { seed(); }

void UmtsScrambler::step() {
  const std::uint32_t xfb = ((x_ >> 0) ^ (x_ >> 7)) & 1u;
  const std::uint32_t yfb =
      ((y_ >> 0) ^ (y_ >> 5) ^ (y_ >> 7) ^ (y_ >> 10)) & 1u;
  x_ = (x_ >> 1) | (xfb << 17);
  y_ = (y_ >> 1) | (yfb << 17);
}

std::uint8_t UmtsScrambler::next2() {
  // zI from the LSB taps; zQ from the delayed taps (TS 25.213 uses
  // positions 0 and a fixed offset realized via masked sums; the
  // standard's Q branch reads x(i+120)-style taps, realized here with
  // the register taps 0^... as in common hardware implementations).
  const std::uint32_t zi = ((x_ >> 0) ^ (y_ >> 0)) & 1u;
  const std::uint32_t xq = ((x_ >> 4) ^ (x_ >> 6) ^ (x_ >> 15)) & 1u;
  const std::uint32_t yq =
      ((y_ >> 5) ^ (y_ >> 6) ^ (y_ >> 8) ^ (y_ >> 9) ^ (y_ >> 10) ^
       (y_ >> 11) ^ (y_ >> 12) ^ (y_ >> 13) ^ (y_ >> 14) ^ (y_ >> 15)) &
      1u;
  const std::uint32_t zq = xq ^ yq;
  step();
  return static_cast<std::uint8_t>(zi | (zq << 1));
}

CplxI UmtsScrambler::next() {
  const std::uint8_t b = next2();
  return {1 - 2 * static_cast<int>(b & 1u),
          1 - 2 * static_cast<int>((b >> 1) & 1u)};
}

void UmtsScrambler::skip(long long chips) {
  for (long long i = 0; i < chips; ++i) step();
}

}  // namespace rsp::dedhw

#include "src/dedhw/umts_scrambler.hpp"

namespace rsp::dedhw {
namespace {
constexpr std::uint32_t kMask18 = (1u << 18) - 1u;
}

UmtsScrambler::UmtsScrambler(std::uint32_t code_number) : code_(code_number) {
  seed();
}

void UmtsScrambler::seed() {
  // TS 25.213: x starts as 1 followed by seventeen zeros and is clocked
  // n times to select code n; y starts all ones.
  x_ = 1u;
  y_ = kMask18;
  for (std::uint32_t i = 0; i < code_; ++i) {
    const std::uint32_t xfb = ((x_ >> 0) ^ (x_ >> 7)) & 1u;
    x_ = (x_ >> 1) | (xfb << 17);
  }
}

void UmtsScrambler::reset() { seed(); }

void UmtsScrambler::step() {
  const std::uint32_t xfb = ((x_ >> 0) ^ (x_ >> 7)) & 1u;
  const std::uint32_t yfb =
      ((y_ >> 0) ^ (y_ >> 5) ^ (y_ >> 7) ^ (y_ >> 10)) & 1u;
  x_ = (x_ >> 1) | (xfb << 17);
  y_ = (y_ >> 1) | (yfb << 17);
}

std::uint8_t UmtsScrambler::next2() {
  // zI from the LSB taps; zQ from the delayed taps (TS 25.213 uses
  // positions 0 and a fixed offset realized via masked sums; the
  // standard's Q branch reads x(i+120)-style taps, realized here with
  // the register taps 0^... as in common hardware implementations).
  const std::uint32_t zi = ((x_ >> 0) ^ (y_ >> 0)) & 1u;
  const std::uint32_t xq = ((x_ >> 4) ^ (x_ >> 6) ^ (x_ >> 15)) & 1u;
  const std::uint32_t yq =
      ((y_ >> 5) ^ (y_ >> 6) ^ (y_ >> 8) ^ (y_ >> 9) ^ (y_ >> 10) ^
       (y_ >> 11) ^ (y_ >> 12) ^ (y_ >> 13) ^ (y_ >> 14) ^ (y_ >> 15)) &
      1u;
  const std::uint32_t zq = xq ^ yq;
  step();
  return static_cast<std::uint8_t>(zi | (zq << 1));
}

CplxI UmtsScrambler::next() {
  const std::uint8_t b = next2();
  return {1 - 2 * static_cast<int>(b & 1u),
          1 - 2 * static_cast<int>((b >> 1) & 1u)};
}

UmtsScrambler::Ext UmtsScrambler::extend(int k) const {
  // Bit j of ext holds sequence bit s(i+j); the registers seed bits
  // 0..17 and the recurrences
  //   x: s(m) = s(m-18) ^ s(m-11)                       (1 + X^7 + X^18)
  //   y: s(m) = s(m-18) ^ s(m-13) ^ s(m-11) ^ s(m-8)    (taps 5,7,10)
  // extend whole chunks at once — up to 11 bits for x and 8 for y per
  // shift/XOR, bounded by the smallest tap distance, instead of one
  // register clock per chip.
  Ext e{x_, y_};
  const int need = k + 18;  // bits k..k+17 become the advanced register
  for (int h = 18; h < need;) {
    const int c = need - h < 11 ? need - h : 11;
    const std::uint64_t nb =
        ((e.x >> (h - 18)) ^ (e.x >> (h - 11))) & ((1ull << c) - 1ull);
    e.x |= nb << h;
    h += c;
  }
  for (int h = 18; h < need;) {
    const int c = need - h < 8 ? need - h : 8;
    const std::uint64_t nb = ((e.y >> (h - 18)) ^ (e.y >> (h - 13)) ^
                              (e.y >> (h - 11)) ^ (e.y >> (h - 8))) &
                             ((1ull << c) - 1ull);
    e.y |= nb << h;
    h += c;
  }
  return e;
}

void UmtsScrambler::next2_block(std::uint8_t* dst, long long n) {
  while (n > 0) {
    const int k = n < 32 ? static_cast<int>(n) : 32;
    const Ext e = extend(k);
    // All k outputs drop out of the extended registers in parallel:
    // the I branch reads tap 0 of both LFSRs, so its next k bits are
    // just the low bits of x^y; the Q branch's masked tap sums become
    // shifted XORs of the same words.
    const std::uint64_t zi = e.x ^ e.y;
    const std::uint64_t zq =
        ((e.x >> 4) ^ (e.x >> 6) ^ (e.x >> 15)) ^
        ((e.y >> 5) ^ (e.y >> 6) ^ (e.y >> 8) ^ (e.y >> 9) ^ (e.y >> 10) ^
         (e.y >> 11) ^ (e.y >> 12) ^ (e.y >> 13) ^ (e.y >> 14) ^
         (e.y >> 15));
    for (int j = 0; j < k; ++j) {
      dst[j] = static_cast<std::uint8_t>(((zi >> j) & 1u) |
                                         (((zq >> j) & 1u) << 1));
    }
    x_ = static_cast<std::uint32_t>(e.x >> k) & kMask18;
    y_ = static_cast<std::uint32_t>(e.y >> k) & kMask18;
    dst += k;
    n -= k;
  }
}

void UmtsScrambler::skip(long long chips) {
  // Word-at-a-time register advance (same extension as next2_block,
  // no outputs) — multipath-aligned finger offsets stop costing one
  // clock per skipped chip.
  while (chips > 0) {
    const int k = chips < 32 ? static_cast<int>(chips) : 32;
    const Ext e = extend(k);
    x_ = static_cast<std::uint32_t>(e.x >> k) & kMask18;
    y_ = static_cast<std::uint32_t>(e.y >> k) & kMask18;
    chips -= k;
  }
}

}  // namespace rsp::dedhw

// Rate-1/2 K=7 convolutional encoder (g0=133o, g1=171o) with the
// 802.11a puncturing patterns for rates 2/3 and 3/4.  Forward error
// correction is dedicated hardware in the paper's OFDM partitioning
// ("A Viterbi decoder is used for the forward error correction",
// Figure 8 maps Viterbi onto dedicated hardware).
#pragma once

#include <cstdint>
#include <vector>

namespace rsp::dedhw {

/// Code rates used by 802.11a / HIPERLAN-2.
enum class CodeRate : std::uint8_t { kR12, kR23, kR34 };

/// Numerator/denominator of a code rate.
[[nodiscard]] constexpr int code_rate_num(CodeRate r) {
  return r == CodeRate::kR12 ? 1 : (r == CodeRate::kR23 ? 2 : 3);
}
[[nodiscard]] constexpr int code_rate_den(CodeRate r) {
  return r == CodeRate::kR12 ? 2 : (r == CodeRate::kR23 ? 3 : 4);
}

/// Constraint length and generator taps (window newest-bit-LSB).
inline constexpr int kConstraintLen = 7;
inline constexpr unsigned kG0 = 0x6D;  // 133 octal
inline constexpr unsigned kG1 = 0x4F;  // 171 octal
inline constexpr int kNumStates = 1 << (kConstraintLen - 1);

/// Encode @p bits (0/1 values).  Appends @p tail zero bits when
/// @p add_tail so the decoder can terminate in state 0, then punctures
/// to @p rate.  Output is the punctured coded bit sequence.
[[nodiscard]] std::vector<std::uint8_t> conv_encode(
    const std::vector<std::uint8_t>& bits, CodeRate rate, bool add_tail = true);

/// Number of punctured coded bits produced for @p n_info input bits
/// (including tail if @p add_tail).
[[nodiscard]] std::size_t conv_coded_len(std::size_t n_info, CodeRate rate,
                                         bool add_tail = true);

/// Expand a punctured soft stream back to the rate-1/2 lattice with
/// zero (erasure) metrics in the stolen positions.
[[nodiscard]] std::vector<std::int32_t> depuncture(
    const std::vector<std::int32_t>& soft, CodeRate rate);

}  // namespace rsp::dedhw

// Generic bitwise CRC used for frame integrity checks in the examples
// and the Layer-2 hand-off (paper Figure 8 ends at "Layer 2").
#pragma once

#include <cstdint>
#include <vector>

namespace rsp::dedhw {

/// MSB-first CRC over a bit sequence.
class Crc {
 public:
  /// @param width register width in bits (<= 32)
  /// @param poly  generator polynomial without the leading x^width term
  /// @param init  initial register value
  /// @param final_xor value XORed into the result
  constexpr Crc(int width, std::uint32_t poly, std::uint32_t init = 0,
                std::uint32_t final_xor = 0)
      : width_(width), poly_(poly), init_(init), final_xor_(final_xor) {}

  [[nodiscard]] std::uint32_t compute(const std::vector<std::uint8_t>& bits) const {
    const std::uint32_t top = 1u << (width_ - 1);
    const std::uint32_t mask = (width_ == 32) ? ~0u : ((1u << width_) - 1u);
    std::uint32_t reg = init_ & mask;
    for (const auto b : bits) {
      const std::uint32_t in = (b & 1u) ^ ((reg & top) ? 1u : 0u);
      reg = (reg << 1) & mask;
      if (in) reg ^= poly_ & mask;
    }
    return (reg ^ final_xor_) & mask;
  }

  /// Append the CRC bits (MSB first) to @p bits.
  void append(std::vector<std::uint8_t>& bits) const {
    const std::uint32_t c = compute(bits);
    for (int i = width_ - 1; i >= 0; --i) {
      bits.push_back(static_cast<std::uint8_t>((c >> i) & 1u));
    }
  }

  /// Verify a bit sequence with trailing CRC.
  [[nodiscard]] bool check(const std::vector<std::uint8_t>& bits) const {
    if (bits.size() < static_cast<std::size_t>(width_)) return false;
    std::vector<std::uint8_t> payload(bits.begin(),
                                      bits.end() - width_);
    const std::uint32_t expect = compute(payload);
    std::uint32_t got = 0;
    for (int i = 0; i < width_; ++i) {
      got = (got << 1) | (bits[bits.size() - static_cast<std::size_t>(width_) +
                               static_cast<std::size_t>(i)] &
                          1u);
    }
    return got == expect;
  }

 private:
  int width_;
  std::uint32_t poly_;
  std::uint32_t init_;
  std::uint32_t final_xor_;
};

/// UMTS TS 25.212 CRC-16: x^16 + x^12 + x^5 + 1.
inline constexpr Crc kCrc16Umts{16, 0x1021};
/// CRC-8 (x^8 + x^7 + x^4 + x^3 + x + 1), used by short transport blocks.
inline constexpr Crc kCrc8Umts{8, 0x9B};

}  // namespace rsp::dedhw

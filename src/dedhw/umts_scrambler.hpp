// 3GPP downlink scrambling-code generator (TS 25.213 §5.2.2).
//
// In the paper's partitioning (Figure 4) scrambling/spreading code
// generation is continuous bit-level work mapped onto *dedicated
// hardware*; the reconfigurable array receives the code as a two-bit
// stream and converts it to ±1±j with a multiplexer (Figure 5).  This
// class is that dedicated hardware: two 18-bit Gold-code LFSRs
//   x: 1 + X^7 + X^18         (seeded 1,0,...,0 then advanced n steps)
//   y: 1 + X^5 + X^7 + X^10 + X^18   (seeded all ones)
// producing the complex scrambling sequence
//   C(i) = (1 - 2 zI(i)) + j (1 - 2 zQ(i)).
#pragma once

#include <cstdint>

#include "src/common/cplx.hpp"

namespace rsp::dedhw {

class UmtsScrambler {
 public:
  /// @param code_number downlink scrambling code n (primary codes are
  ///        multiples of 16; each basestation has its own).
  explicit UmtsScrambler(std::uint32_t code_number);

  /// Two-bit representation of the next chip: bit0 = I, bit1 = Q —
  /// exactly the stream handed to the array in Figure 5.
  std::uint8_t next2();

  /// Block form of next2(): write @p n chips, bit-identical to n
  /// scalar calls.  Generated word-at-a-time — the Gold-code LFSRs are
  /// extended up to 32 steps per iteration with parallel shift/XOR of
  /// the whole register instead of one clock per chip — which is what
  /// makes the vectorized PHY substrate's chip generation cheap
  /// (src/phy/batch_phy.hpp).
  void next2_block(std::uint8_t* dst, long long n);

  /// Next chip as a complex ±1±j value.
  CplxI next();

  /// Restart the sequence (frame boundary).
  void reset();

  /// Advance @p chips without producing output (time offsets for
  /// multipath-aligned fingers).
  void skip(long long chips);

  std::uint32_t code_number() const { return code_; }

 private:
  void seed();
  void step();
  /// Extend the 18-bit registers @p k more sequence bits (k <= 32)
  /// word-at-a-time; bit j of the returned pair is s(i+j).
  struct Ext {
    std::uint64_t x;
    std::uint64_t y;
  };
  [[nodiscard]] Ext extend(int k) const;

  std::uint32_t code_;
  std::uint32_t x_ = 0;  // 18-bit states, bit 0 = s(i)
  std::uint32_t y_ = 0;
};

/// Length of one radio frame in chips (10 ms at 3.84 Mcps).
inline constexpr int kChipsPerFrame = 38400;
/// UMTS chip rate (paper: "the UMTS/W-CDMA chip rate is 3.84 MHz").
inline constexpr double kChipRateHz = 3.84e6;

}  // namespace rsp::dedhw

#include "src/dedhw/viterbi.hpp"

#include <algorithm>
#include <bit>
#include <limits>

namespace rsp::dedhw {
namespace {

constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min() / 4;

/// Precomputed per-transition expected coded bits.
struct Trellis {
  // expected[state][bit] = (a, b) coded bits for input `bit` from `state`.
  std::uint8_t a[kNumStates][2];
  std::uint8_t b[kNumStates][2];
};

Trellis make_trellis() {
  Trellis t{};
  for (unsigned s = 0; s < kNumStates; ++s) {
    for (unsigned bit = 0; bit < 2; ++bit) {
      const unsigned window = ((s << 1) | bit) & 0x7Fu;
      t.a[s][bit] = static_cast<std::uint8_t>(std::popcount(window & kG0) & 1);
      t.b[s][bit] = static_cast<std::uint8_t>(std::popcount(window & kG1) & 1);
    }
  }
  return t;
}

const Trellis& trellis() {
  static const Trellis t = make_trellis();
  return t;
}

}  // namespace

std::vector<std::uint8_t> ViterbiDecoder::decode(
    const std::vector<std::int32_t>& soft, std::size_t n_info,
    bool terminated) const {
  const Trellis& t = trellis();
  const std::size_t steps = soft.size() / 2;

  std::vector<std::int64_t> metric(kNumStates, kNegInf);
  std::vector<std::int64_t> next(kNumStates, kNegInf);
  metric[0] = 0;  // encoder starts in the all-zero state

  // Survivor memory: predecessor input bit is implied by the state
  // transition; we store the predecessor state's low bit decision via
  // the chosen previous state.
  std::vector<std::uint8_t> surv(steps * kNumStates);

  for (std::size_t step = 0; step < steps; ++step) {
    const std::int32_t sa = soft[2 * step];
    const std::int32_t sb = soft[2 * step + 1];
    std::fill(next.begin(), next.end(), kNegInf);
    for (unsigned s = 0; s < kNumStates; ++s) {
      if (metric[s] == kNegInf) continue;
      for (unsigned bit = 0; bit < 2; ++bit) {
        const unsigned ns = ((s << 1) | bit) & (kNumStates - 1);
        // Metric: +soft when the expected bit is 1, -soft when 0.
        const std::int64_t m = metric[s] +
                               (t.a[s][bit] ? sa : -sa) +
                               (t.b[s][bit] ? sb : -sb);
        if (m > next[ns]) {
          next[ns] = m;
          // Predecessor state reconstructible: s = (ns >> 1) | (p << 5)?
          // Store the bit needed to disambiguate: the high bit of s.
          surv[step * kNumStates + ns] =
              static_cast<std::uint8_t>((s >> (kConstraintLen - 2)) & 1u);
        }
      }
    }
    std::swap(metric, next);
  }

  // Select the final state.
  unsigned state = 0;
  if (!terminated) {
    state = static_cast<unsigned>(
        std::max_element(metric.begin(), metric.end()) - metric.begin());
  }

  // Traceback.  Input bit at each step equals the low bit of the state
  // reached; the predecessor is (state >> 1) | (surv_bit << 5).
  std::vector<std::uint8_t> decoded(steps);
  for (std::size_t step = steps; step-- > 0;) {
    decoded[step] = static_cast<std::uint8_t>(state & 1u);
    const unsigned p = surv[step * kNumStates + state];
    state = (state >> 1) | (p << (kConstraintLen - 2));
  }

  if (decoded.size() > n_info) decoded.resize(n_info);
  return decoded;
}

std::vector<std::uint8_t> ViterbiDecoder::decode_hard(
    const std::vector<std::uint8_t>& coded, std::size_t n_info,
    bool terminated) const {
  std::vector<std::int32_t> soft(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    soft[i] = coded[i] ? 64 : -64;
  }
  return decode(soft, n_info, terminated);
}

}  // namespace rsp::dedhw

// Soft-decision Viterbi decoder for the K=7 rate-1/2 code (64 states),
// with depuncturing handled upstream (erasures enter as zero metrics).
// This block is "dedicated hardware" in the paper's Figure 8.
#pragma once

#include <cstdint>
#include <vector>

#include "src/dedhw/convcode.hpp"

namespace rsp::dedhw {

/// Maximum-likelihood sequence decoder.
///
/// Soft input convention: one std::int32_t per rate-1/2 coded bit;
/// positive values favour bit 1, negative favour bit 0, magnitude is
/// confidence, zero is an erasure (punctured position).
class ViterbiDecoder {
 public:
  /// Decode @p soft (2 values per trellis step).  @p n_info is the
  /// number of information bits to return.  When @p terminated, the
  /// encoder appended K-1 zero tail bits and the survivor is forced to
  /// end in state 0.
  [[nodiscard]] std::vector<std::uint8_t> decode(
      const std::vector<std::int32_t>& soft, std::size_t n_info,
      bool terminated = true) const;

  /// Convenience: hard-decision decode of 0/1 coded bits.
  [[nodiscard]] std::vector<std::uint8_t> decode_hard(
      const std::vector<std::uint8_t>& coded, std::size_t n_info,
      bool terminated = true) const;
};

}  // namespace rsp::dedhw

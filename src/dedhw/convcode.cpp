#include "src/dedhw/convcode.hpp"

#include <bit>
#include <stdexcept>

namespace rsp::dedhw {
namespace {

// Puncturing keep-patterns over (A,B) pairs, per IEEE 802.11a-1999
// §17.3.5.6: rate 2/3 sends A1 B1 A2 (drops B2); rate 3/4 sends
// A1 B1 A2 B3 (drops B2, A3).
struct Pattern {
  int period;            // pairs per period
  bool keep_a[3];
  bool keep_b[3];
};

constexpr Pattern pattern_for(CodeRate r) {
  switch (r) {
    case CodeRate::kR12: return {1, {true, true, true}, {true, true, true}};
    case CodeRate::kR23: return {2, {true, true, true}, {true, false, true}};
    case CodeRate::kR34: return {3, {true, true, false}, {true, false, true}};
  }
  return {1, {true, true, true}, {true, true, true}};
}

}  // namespace

std::vector<std::uint8_t> conv_encode(const std::vector<std::uint8_t>& bits,
                                      CodeRate rate, bool add_tail) {
  const Pattern pat = pattern_for(rate);
  std::vector<std::uint8_t> out;
  out.reserve(bits.size() * 2 + 16);
  unsigned window = 0;
  std::size_t pair = 0;
  const auto push = [&](std::uint8_t bit) {
    window = ((window << 1) | bit) & 0x7Fu;
    const auto a = static_cast<std::uint8_t>(std::popcount(window & kG0) & 1);
    const auto b = static_cast<std::uint8_t>(std::popcount(window & kG1) & 1);
    const int ph = static_cast<int>(pair % static_cast<std::size_t>(pat.period));
    if (pat.keep_a[ph]) out.push_back(a);
    if (pat.keep_b[ph]) out.push_back(b);
    ++pair;
  };
  for (const auto b : bits) push(b & 1u);
  if (add_tail) {
    for (int i = 0; i < kConstraintLen - 1; ++i) push(0);
  }
  return out;
}

std::size_t conv_coded_len(std::size_t n_info, CodeRate rate, bool add_tail) {
  const Pattern pat = pattern_for(rate);
  const std::size_t pairs =
      n_info + (add_tail ? static_cast<std::size_t>(kConstraintLen - 1) : 0u);
  std::size_t n = 0;
  for (std::size_t p = 0; p < pairs; ++p) {
    const int ph = static_cast<int>(p % static_cast<std::size_t>(pat.period));
    n += pat.keep_a[ph] ? 1u : 0u;
    n += pat.keep_b[ph] ? 1u : 0u;
  }
  return n;
}

std::vector<std::int32_t> depuncture(const std::vector<std::int32_t>& soft,
                                     CodeRate rate) {
  const Pattern pat = pattern_for(rate);
  std::vector<std::int32_t> out;
  out.reserve(soft.size() * 2);
  std::size_t i = 0;
  std::size_t pair = 0;
  while (i < soft.size()) {
    const int ph = static_cast<int>(pair % static_cast<std::size_t>(pat.period));
    out.push_back(pat.keep_a[ph] && i < soft.size() ? soft[i++] : 0);
    out.push_back(pat.keep_b[ph] && i < soft.size() ? soft[i++] : 0);
    ++pair;
  }
  return out;
}

}  // namespace rsp::dedhw

// Array-mapped OFDM decoder configurations (paper Figures 9 and 10).
//
// The FFT64 is mapped as the paper describes: data RAM-PAEs, preloaded
// circular LUTs for read/write addresses and twiddle factors, one
// packed-complex multiplier per branch feeding the radix-4 kernel, and
// counters/comparators steering the (de)multiplexer trees.  One
// configuration executes one radix-4 stage; the harness circulates the
// data through the dual-ported RAM for the three iterations ("The
// output is read back to the dual-ported data RAM for the next
// iteration").  Barrier tokens ("go"/"go2") model the stage-sequencing
// events of the real device's configuration manager.
#pragma once

#include <array>
#include <vector>

#include "src/common/cplx.hpp"
#include "src/phy/fft.hpp"
#include "src/xpp/configuration.hpp"
#include "src/xpp/runner.hpp"

namespace rsp::ofdm::maps {

/// One radix-4 stage of the FFT64 (stage = 0..2).  I/O objects:
/// "data" (64 packed samples, address order), "go" (64 read-release
/// tokens), "go2" (64 output-release tokens), output "out" (64 packed
/// words, address order).  Stage 0 additionally performs the
/// digit-reversed load permutation.
[[nodiscard]] xpp::Configuration fft64_stage_config(int stage);

/// Run a full 64-point transform through the three stage passes;
/// bit-identical to phy::fft64_fixed.  @p stats (optional) receives
/// per-stage run results.
[[nodiscard]] std::array<CplxI, phy::kFftSize> run_fft64(
    xpp::ConfigurationManager& mgr,
    const std::array<CplxI, phy::kFftSize>& in,
    std::vector<xpp::RunResult>* stats = nullptr);

/// Inverse transform on the array: a one-ALU conjugation configuration
/// wraps the forward kernel (IDFT = conj o DFT/64 o conj) — the OFDM
/// *transmit* path reusing the same Figure 9 resources.
[[nodiscard]] std::array<CplxI, phy::kFftSize> run_ifft64(
    xpp::ConfigurationManager& mgr,
    const std::array<CplxI, phy::kFftSize>& in);

/// Transform a burst of symbols with each stage configuration loaded
/// once (the kernel stays resident across the burst, as it would for a
/// frame's worth of OFDM symbols) — amortizes configuration time.
[[nodiscard]] std::vector<std::array<CplxI, phy::kFftSize>> run_fft64_batch(
    xpp::ConfigurationManager& mgr,
    const std::vector<std::array<CplxI, phy::kFftSize>>& in);

/// Figure 10, configuration 1 (resident): down-sampling by 2.
[[nodiscard]] xpp::Configuration downsample2_config();

/// Figure 10, configuration 2a (transient): short-preamble
/// delay-and-correlate.  Emits block correlation ("corr") and block
/// power ("power") metrics, one pair per 16 input samples.  With
/// @p merged_output the two metric streams are time-multiplexed onto a
/// single output channel "metrics" (corr, power, corr, ...), saving an
/// I/O channel so the full Figure 10 schedule fits the four
/// dual-channel ports.
[[nodiscard]] xpp::Configuration preamble_config(bool merged_output = false);

/// Figure 10, configuration 2b (loaded after 2a is freed): per-carrier
/// channel correction X_k = (Y_k * conj(H_k)) >> shift with the
/// DSP-computed coefficients in a preloaded LUT.
[[nodiscard]] xpp::Configuration demod_config(
    const std::vector<CplxI>& conj_h_q, int shift);

/// Figure 10, configuration 1 (resident): the 802.11a data descrambler
/// — decoded bits XORed with the 127-periodic scrambling sequence for
/// @p seed, held in a circular LUT.
[[nodiscard]] xpp::Configuration wlan_descrambler_config(std::uint8_t seed);

/// Run helpers.
[[nodiscard]] std::vector<CplxI> run_downsample2(
    xpp::ConfigurationManager& mgr, const std::vector<CplxI>& samples,
    xpp::RunResult* stats = nullptr);

struct PreambleBlocks {
  std::vector<CplxI> corr;   ///< per-16-sample block correlation
  std::vector<std::int32_t> power;  ///< per-block delayed power
};

[[nodiscard]] PreambleBlocks run_preamble(xpp::ConfigurationManager& mgr,
                                          const std::vector<CplxI>& samples,
                                          xpp::RunResult* stats = nullptr);

[[nodiscard]] std::vector<CplxI> run_demod(xpp::ConfigurationManager& mgr,
                                           const std::vector<CplxI>& bins,
                                           const std::vector<CplxI>& conj_h_q,
                                           int shift,
                                           xpp::RunResult* stats = nullptr);

[[nodiscard]] std::vector<std::uint8_t> run_wlan_descrambler(
    xpp::ConfigurationManager& mgr, const std::vector<std::uint8_t>& bits,
    std::uint8_t seed, xpp::RunResult* stats = nullptr);

}  // namespace rsp::ofdm::maps

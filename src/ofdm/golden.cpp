#include "src/ofdm/golden.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/dedhw/viterbi.hpp"
#include "src/dedhw/wlan_scrambler.hpp"
#include "src/phy/interleaver.hpp"
#include "src/phy/modulation.hpp"

namespace rsp::ofdm {

using phy::kCyclicPrefix;
using phy::kOfdmFft;
using phy::kSymbolSamples;

std::vector<CplxF> downsample2(const std::vector<CplxF>& x) {
  std::vector<CplxF> out;
  out.reserve((x.size() + 1) / 2);
  for (std::size_t i = 0; i < x.size(); i += 2) out.push_back(x[i]);
  return out;
}

PreambleMetric PreambleDetector::metric(const std::vector<CplxF>& rx,
                                        std::size_t n) const {
  PreambleMetric m;
  CplxF c{0.0, 0.0};
  double p = 0.0;
  for (int k = 0; k < window_; ++k) {
    const std::size_t a = n + static_cast<std::size_t>(k);
    const std::size_t b = a + 16;
    if (b >= rx.size()) return m;
    c += rx[a] * std::conj(rx[b]);
    p += std::norm(rx[b]);
  }
  m.corr = c;
  m.ratio = (p > 1e-12) ? std::abs(c) / p : 0.0;
  return m;
}

std::optional<std::size_t> PreambleDetector::detect(
    const std::vector<CplxF>& rx, dsp::DspModel* dsp) const {
  // Scan for a plateau of high delay-correlation (the 10 repeated
  // short symbols), then report where the plateau ends.
  int run = 0;
  std::size_t plateau_start = 0;
  const std::size_t limit = rx.size() > 48 ? rx.size() - 48 : 0;
  for (std::size_t n = 0; n < limit; ++n) {
    const PreambleMetric m = metric(rx, n);
    if (dsp != nullptr) {
      dsp->charge("framing_sync", dsp::DspOp::kMac, window_ * 2);
    }
    if (m.ratio > threshold_) {
      if (run == 0) plateau_start = n;
      ++run;
    } else if (run > 0) {
      // Plateau over: require most of the short preamble (>= 80
      // samples of correlation support).
      if (run >= 80) {
        // The correlator loses correlation `window` samples before the
        // short sequence ends.
        return plateau_start + static_cast<std::size_t>(run) +
               static_cast<std::size_t>(16 + window_) - 1;
      }
      run = 0;
    }
  }
  return std::nullopt;
}

std::size_t fine_sync(const std::vector<CplxF>& rx, std::size_t coarse,
                      dsp::DspModel* dsp) {
  // Reference long-training body (64 samples starting after the 32 GI).
  static const std::vector<CplxF> ref = [] {
    const auto lp = phy::long_preamble();
    return std::vector<CplxF>(lp.begin() + 32, lp.begin() + 96);
  }();
  const int radius = 24;
  double best = -1.0;
  std::size_t best_n = coarse + 32;
  for (int d = -radius; d <= radius; ++d) {
    const long long n0 = static_cast<long long>(coarse) + 32 + d;
    if (n0 < 0) continue;
    CplxF acc{0.0, 0.0};
    bool ok = true;
    for (int k = 0; k < kOfdmFft; ++k) {
      const std::size_t idx = static_cast<std::size_t>(n0 + k);
      if (idx >= rx.size()) {
        ok = false;
        break;
      }
      acc += rx[idx] * std::conj(ref[static_cast<std::size_t>(k)]);
    }
    if (dsp != nullptr) dsp->charge("framing_sync", dsp::DspOp::kMac, kOfdmFft);
    if (ok && std::norm(acc) > best) {
      best = std::norm(acc);
      best_n = static_cast<std::size_t>(n0);
    }
  }
  return best_n;
}

double estimate_cfo(const std::vector<CplxF>& rx, std::size_t sp_start,
                    int n_samples, dsp::DspModel* dsp) {
  CplxF acc{0.0, 0.0};
  for (int n = 0; n < n_samples; ++n) {
    const std::size_t a = sp_start + static_cast<std::size_t>(n);
    const std::size_t b = a + 16;
    if (b >= rx.size()) break;
    acc += rx[b] * std::conj(rx[a]);
  }
  if (dsp != nullptr) {
    dsp->charge("framing_sync", dsp::DspOp::kMac, n_samples);
  }
  const double phase = std::arg(acc);
  return phase / (2.0 * std::numbers::pi) * (phy::kOfdmSampleRateHz / 16.0);
}

std::vector<CplxF> correct_cfo(const std::vector<CplxF>& rx, double cfo_hz,
                               double sample_rate_hz) {
  std::vector<CplxF> out(rx.size());
  const double w = -2.0 * std::numbers::pi * cfo_hz / sample_rate_hz;
  for (std::size_t n = 0; n < rx.size(); ++n) {
    const double ph = w * static_cast<double>(n);
    out[n] = rx[n] * CplxF{std::cos(ph), std::sin(ph)};
  }
  return out;
}

std::vector<CplxF> estimate_channel_lt(const std::vector<CplxF>& rx,
                                       std::size_t lt_start,
                                       dsp::DspModel* dsp) {
  if (lt_start + 2 * kOfdmFft > rx.size()) {
    throw std::invalid_argument("estimate_channel_lt: capture too short");
  }
  std::vector<CplxF> sum(kOfdmFft, CplxF{0.0, 0.0});
  for (int rep = 0; rep < 2; ++rep) {
    std::vector<CplxF> sym(rx.begin() + static_cast<std::ptrdiff_t>(lt_start) +
                               rep * kOfdmFft,
                           rx.begin() + static_cast<std::ptrdiff_t>(lt_start) +
                               (rep + 1) * kOfdmFft);
    phy::fft(sym, false);
    for (int k = 0; k < kOfdmFft; ++k) {
      sum[static_cast<std::size_t>(k)] += sym[static_cast<std::size_t>(k)];
    }
  }
  const auto& L = phy::long_training_symbol();
  std::vector<CplxF> h(kOfdmFft, CplxF{0.0, 0.0});
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    const int bin = (k + kOfdmFft) % kOfdmFft;
    const double l = static_cast<double>(L[static_cast<std::size_t>(k + 26)]);
    h[static_cast<std::size_t>(bin)] =
        sum[static_cast<std::size_t>(bin)] / (2.0 * l) /
        std::sqrt(static_cast<double>(kOfdmFft));
  }
  if (dsp != nullptr) {
    dsp->charge("channel_estimation", dsp::DspOp::kMac, 2 * kOfdmFft * 4);
    dsp->charge("channel_estimation", dsp::DspOp::kDiv, 52);
  }
  return h;
}

std::optional<phy::SignalField> decode_signal(const std::vector<CplxF>& rx,
                                              std::size_t lt_start,
                                              const std::vector<CplxF>& h,
                                              dsp::DspModel* dsp) {
  const std::size_t pos = lt_start + 2 * kOfdmFft;  // SIGNAL incl. CP
  if (pos + kSymbolSamples > rx.size()) return std::nullopt;
  std::vector<CplxF> body(
      rx.begin() + static_cast<std::ptrdiff_t>(pos + kCyclicPrefix),
      rx.begin() + static_cast<std::ptrdiff_t>(pos + kSymbolSamples));
  phy::fft(body, false);
  for (auto& v : body) v /= std::sqrt(static_cast<double>(kOfdmFft));

  std::vector<CplxF> eq(phy::kDataCarriers);
  const auto& dc = phy::data_carriers();
  for (int i = 0; i < phy::kDataCarriers; ++i) {
    const int bin = (dc[static_cast<std::size_t>(i)] + kOfdmFft) % kOfdmFft;
    const CplxF hk = h[static_cast<std::size_t>(bin)];
    eq[static_cast<std::size_t>(i)] =
        (std::norm(hk) > 1e-9) ? body[static_cast<std::size_t>(bin)] / hk
                               : CplxF{0.0, 0.0};
  }
  auto llr = phy::soft_demap(eq, phy::Modulation::kBpsk, 256.0);
  llr = phy::deinterleave_soft(llr, 48, 1);
  dedhw::ViterbiDecoder vit;
  // 24 coded bits incl. the 6-bit tail -> decode 18 information bits
  // with forced zero termination.
  const auto bits = vit.decode(llr, 18, true);
  if (dsp != nullptr) {
    dsp->charge("framing_sync", dsp::DspOp::kMac, 48 * 4);
    dsp->charge("framing_sync", dsp::DspOp::kBranch, 24);
  }
  phy::SignalField f;
  if (!phy::parse_signal_field(bits, f)) return std::nullopt;
  return f;
}

std::vector<CplxF> OfdmReceiver::transform_symbol(
    const std::vector<CplxF>& body) const {
  if (static_cast<int>(body.size()) != kOfdmFft) {
    throw std::invalid_argument("transform_symbol: need 64 samples");
  }
  if (!cfg_.use_fixed_fft) {
    std::vector<CplxF> bins = body;
    phy::fft(bins, false);
    // Match the transmitter's sqrt(N) normalization.
    for (auto& v : bins) v /= std::sqrt(static_cast<double>(kOfdmFft));
    return bins;
  }
  // Bit-true datapath: quantize to 10 bits, fixed FFT (DFT/64), rescale.
  std::array<CplxI, phy::kFftSize> in{};
  for (int i = 0; i < kOfdmFft; ++i) {
    in[static_cast<std::size_t>(i)] = {
        saturate(static_cast<std::int64_t>(std::lround(
                     body[static_cast<std::size_t>(i)].real() *
                     cfg_.fixed_fft_scale)),
                 10),
        saturate(static_cast<std::int64_t>(std::lround(
                     body[static_cast<std::size_t>(i)].imag() *
                     cfg_.fixed_fft_scale)),
                 10)};
  }
  const auto out = phy::fft64_fixed(in);
  // fft64_fixed computes DFT(x*scale)/64; the float path returns
  // DFT(x)/sqrt(64), so rescale by 64 / (scale * sqrt(64)).
  const double rescale =
      static_cast<double>(kOfdmFft) /
      (cfg_.fixed_fft_scale * std::sqrt(static_cast<double>(kOfdmFft)));
  std::vector<CplxF> bins(kOfdmFft);
  for (int k = 0; k < kOfdmFft; ++k) {
    const auto& z = out[static_cast<std::size_t>(k)];
    bins[static_cast<std::size_t>(k)] =
        CplxF{static_cast<double>(z.re), static_cast<double>(z.im)} * rescale;
  }
  return bins;
}

OfdmRxResult OfdmReceiver::receive(const std::vector<CplxF>& rx,
                                   std::size_t n_psdu_bits,
                                   dsp::DspModel* dsp) const {
  OfdmRxResult res;
  const phy::RateMode& mode = phy::rate_mode(cfg_.mbps);

  PreambleDetector det;
  const auto coarse = det.detect(rx, dsp);
  if (!coarse) return res;
  res.preamble_found = true;

  // CFO estimation from the short preamble (which ends at *coarse),
  // then derotation of the whole capture.
  std::vector<CplxF> work;
  const std::vector<CplxF>* capture = &rx;
  if (cfg_.correct_cfo && *coarse > 120) {
    res.cfo_hz = estimate_cfo(rx, *coarse - 120, 96, dsp);
    work = correct_cfo(rx, res.cfo_hz, phy::kOfdmSampleRateHz);
    capture = &work;
  }
  const std::vector<CplxF>& rxc = *capture;

  // Fine timing on the long preamble.
  const std::size_t lt = fine_sync(rxc, *coarse, dsp);
  res.frame_start = lt;

  const auto h = estimate_channel_lt(rxc, lt, dsp);

  // SIGNAL symbol: verify (receive_auto trusts it; here cfg_ drives).
  const auto sig = decode_signal(rxc, lt, h, dsp);
  if (sig) {
    res.signal_ok = true;
    res.signal = *sig;
  }

  const int nsym = phy::OfdmTransmitter::num_data_symbols(n_psdu_bits,
                                                          cfg_.mbps);
  std::vector<std::int32_t> soft;
  soft.reserve(static_cast<std::size_t>(nsym) *
               static_cast<std::size_t>(mode.ncbps));
  // First DATA symbol: after the long training (128) + SIGNAL (80).
  std::size_t pos = lt + 2 * kOfdmFft + kSymbolSamples;
  for (int s = 0; s < nsym; ++s) {
    if (pos + kSymbolSamples > rxc.size()) break;
    const std::vector<CplxF> body(
        rxc.begin() + static_cast<std::ptrdiff_t>(pos + kCyclicPrefix),
        rxc.begin() + static_cast<std::ptrdiff_t>(pos + kSymbolSamples));
    auto bins = transform_symbol(body);

    // One-tap equalization on data carriers + common pilot phase.
    std::vector<CplxF> eq(phy::kDataCarriers);
    CplxF pilot_acc{0.0, 0.0};
    const int pol = phy::pilot_polarity(s);
    const double pv[4] = {1.0, 1.0, 1.0, -1.0};
    const auto& pc = phy::pilot_carriers();
    for (int i = 0; i < phy::kPilotCarriers; ++i) {
      const int bin = (pc[static_cast<std::size_t>(i)] + kOfdmFft) % kOfdmFft;
      const CplxF hk = h[static_cast<std::size_t>(bin)];
      if (std::norm(hk) > 1e-9) {
        pilot_acc += bins[static_cast<std::size_t>(bin)] *
                     std::conj(hk) * (pol * pv[i]);
      }
    }
    const CplxF phase =
        std::abs(pilot_acc) > 1e-12 ? pilot_acc / std::abs(pilot_acc)
                                    : CplxF{1.0, 0.0};
    const auto& dc = phy::data_carriers();
    for (int i = 0; i < phy::kDataCarriers; ++i) {
      const int bin = (dc[static_cast<std::size_t>(i)] + kOfdmFft) % kOfdmFft;
      const CplxF hk = h[static_cast<std::size_t>(bin)];
      eq[static_cast<std::size_t>(i)] =
          (std::norm(hk) > 1e-9)
              ? bins[static_cast<std::size_t>(bin)] / hk * std::conj(phase)
              : CplxF{0.0, 0.0};
    }
    if (dsp != nullptr) {
      dsp->charge("demodulation", dsp::DspOp::kMac, phy::kDataCarriers * 4);
      dsp->charge("demodulation", dsp::DspOp::kDiv, phy::kDataCarriers);
    }

    auto llr = phy::soft_demap(eq, mode.mod, 256.0);
    llr = phy::deinterleave_soft(llr, mode.ncbps, bits_per_symbol(mode.mod));
    soft.insert(soft.end(), llr.begin(), llr.end());
    pos += kSymbolSamples;
    ++res.symbols_decoded;
  }

  // Depuncture + Viterbi + descramble.
  const auto lattice = dedhw::depuncture(soft, mode.rate);
  const std::size_t n_info = static_cast<std::size_t>(res.symbols_decoded) *
                             static_cast<std::size_t>(mode.ndbps);
  if (n_info < 6) return res;
  dedhw::ViterbiDecoder vit;
  auto decoded = vit.decode(lattice, n_info - 6, true);
  dedhw::WlanScrambler scr(cfg_.scramble_seed);
  scr.apply(decoded);

  // Strip SERVICE (16 bits), keep the PSDU.
  if (decoded.size() > 16 + n_psdu_bits) {
    res.psdu.assign(decoded.begin() + 16,
                    decoded.begin() + 16 +
                        static_cast<std::ptrdiff_t>(n_psdu_bits));
  } else if (decoded.size() > 16) {
    res.psdu.assign(decoded.begin() + 16, decoded.end());
  }
  return res;
}

OfdmRxResult OfdmReceiver::receive_auto(const std::vector<CplxF>& rx,
                                        dsp::DspModel* dsp) const {
  // Cheap pre-pass to locate the frame and read the SIGNAL field.
  PreambleDetector det;
  const auto coarse = det.detect(rx, dsp);
  if (!coarse) return {};
  const std::size_t lt = fine_sync(rx, *coarse, dsp);
  const auto h = estimate_channel_lt(rx, lt, dsp);
  const auto sig = decode_signal(rx, lt, h, dsp);
  if (!sig) {
    OfdmRxResult res;
    res.preamble_found = true;
    res.frame_start = lt;
    return res;
  }
  // Re-run the full chain with the detected parameters.
  OfdmRxConfig cfg = cfg_;
  cfg.mbps = sig->mbps;
  OfdmReceiver inner(cfg);
  auto res = inner.receive(rx, sig->length_bits, dsp);
  res.signal_ok = true;
  res.signal = *sig;
  return res;
}

}  // namespace rsp::ofdm

// Golden OFDM decoder chain (paper §3.2 / Figure 8): down-sampling,
// preamble detection, framing/synchronization, FFT64, channel
// equalization, demodulation, deinterleaving, Viterbi decoding and
// descrambling.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/cplx.hpp"
#include "src/dsp/dsp.hpp"
#include "src/phy/fft.hpp"
#include "src/phy/ofdm_tx.hpp"

namespace rsp::ofdm {

/// Decimate-by-2 with no filtering (the RF front end in Figure 8 has
/// already band-limited the signal; the paper's module merely halves
/// the A/D oversampling).
[[nodiscard]] std::vector<CplxF> downsample2(const std::vector<CplxF>& x);

/// Delay-and-correlate metric against the 16-sample periodic short
/// preamble: c[n] = sum_{k<W} r[n+k] conj(r[n+k+16]), p[n] = matched
/// power.  Detection = |c|^2 > threshold^2 * p^2 plateau.
struct PreambleMetric {
  double ratio = 0.0;   ///< |c| / p
  CplxF corr{0.0, 0.0};
};

class PreambleDetector {
 public:
  explicit PreambleDetector(int window = 32, double threshold = 0.6)
      : window_(window), threshold_(threshold) {}

  /// Metric at offset @p n.
  [[nodiscard]] PreambleMetric metric(const std::vector<CplxF>& rx,
                                      std::size_t n) const;

  /// Find the start of the long preamble (first sample after the short
  /// training sequence).  Returns nullopt if no plateau is found.
  [[nodiscard]] std::optional<std::size_t> detect(
      const std::vector<CplxF>& rx, dsp::DspModel* dsp = nullptr) const;

 private:
  int window_;
  double threshold_;
};

/// Fine symbol timing: cross-correlate with the known 64-sample long
/// training symbol around @p coarse; returns the index of the first
/// long-training symbol body.
[[nodiscard]] std::size_t fine_sync(const std::vector<CplxF>& rx,
                                    std::size_t coarse,
                                    dsp::DspModel* dsp = nullptr);

/// Carrier-frequency-offset estimate (Hz) from the periodicity of the
/// short preamble: cfo = arg(sum r[n] conj(r[n+16])) / (2 pi 16 Ts).
/// Unambiguous up to +-fs/32 (+-625 kHz at 20 MHz).
[[nodiscard]] double estimate_cfo(const std::vector<CplxF>& rx,
                                  std::size_t sp_start, int n_samples = 128,
                                  dsp::DspModel* dsp = nullptr);

/// Derotate a capture by -cfo (undo a carrier frequency offset).
[[nodiscard]] std::vector<CplxF> correct_cfo(const std::vector<CplxF>& rx,
                                             double cfo_hz,
                                             double sample_rate_hz);

/// Per-carrier channel estimate from the two long training symbols
/// (H_k = mean(Y1_k, Y2_k) / L_k), indexed by FFT bin.
[[nodiscard]] std::vector<CplxF> estimate_channel_lt(
    const std::vector<CplxF>& rx, std::size_t lt_start,
    dsp::DspModel* dsp = nullptr);

struct OfdmRxConfig {
  int mbps = 6;
  bool use_fixed_fft = false;    ///< run the bit-true FFT64 datapath
  bool correct_cfo = true;       ///< estimate + remove carrier offset
  std::uint8_t scramble_seed = 0x5D;
  double fixed_fft_scale = 511.0;  ///< float->10-bit input quantization
};

struct OfdmRxResult {
  std::vector<std::uint8_t> psdu;        ///< decoded PSDU bits
  std::size_t frame_start = 0;           ///< detected long-preamble index
  int symbols_decoded = 0;
  bool preamble_found = false;
  double cfo_hz = 0.0;                   ///< estimated carrier offset
  bool signal_ok = false;                ///< SIGNAL field decoded + parity OK
  phy::SignalField signal;               ///< detected rate / length
};

/// Decode the SIGNAL symbol (first symbol after the long training,
/// BPSK rate 1/2) given the per-carrier channel estimate @p h.
[[nodiscard]] std::optional<phy::SignalField> decode_signal(
    const std::vector<CplxF>& rx, std::size_t lt_start,
    const std::vector<CplxF>& h, dsp::DspModel* dsp = nullptr);

/// Full receiver over a PPDU capture (one frame).
class OfdmReceiver {
 public:
  explicit OfdmReceiver(OfdmRxConfig cfg) : cfg_(cfg) {}

  /// Reception with the configured rate and known PSDU size (the
  /// SIGNAL symbol is verified but cfg_.mbps drives demodulation).
  [[nodiscard]] OfdmRxResult receive(const std::vector<CplxF>& rx,
                                     std::size_t n_psdu_bits,
                                     dsp::DspModel* dsp = nullptr) const;

  /// Fully self-describing reception: rate and frame length are taken
  /// from the decoded SIGNAL field ("Framing and Sync" in Figure 8).
  [[nodiscard]] OfdmRxResult receive_auto(const std::vector<CplxF>& rx,
                                          dsp::DspModel* dsp = nullptr) const;

  /// FFT of one symbol (float path or bit-true fixed path rescaled).
  [[nodiscard]] std::vector<CplxF> transform_symbol(
      const std::vector<CplxF>& body) const;

  const OfdmRxConfig& config() const { return cfg_; }

 private:
  OfdmRxConfig cfg_;
};

}  // namespace rsp::ofdm

#include "src/ofdm/maps.hpp"

#include <stdexcept>

#include "src/dedhw/wlan_scrambler.hpp"
#include "src/xpp/builder.hpp"

namespace rsp::ofdm::maps {

using phy::Fft64Tables;
using phy::fft64_tables;
using phy::kFftSize;
using xpp::ConfigBuilder;
using xpp::Configuration;
using xpp::Opcode;
using xpp::RamMode;
using xpp::RamParams;
using xpp::Word;

namespace {

std::vector<Word> pack_all(const std::vector<CplxI>& v) {
  std::vector<Word> out;
  out.reserve(v.size());
  for (const auto& z : v) out.push_back(pack_cplx(z));
  return out;
}

RamParams clut(std::vector<Word> preload) {
  RamParams p;
  p.mode = RamMode::kCircularLut;
  p.capacity = static_cast<int>(preload.size());
  p.preload = std::move(preload);
  return p;
}

}  // namespace

Configuration fft64_stage_config(int stage) {
  if (stage < 0 || stage >= phy::kFftStages) {
    throw std::invalid_argument("fft64_stage_config: stage 0..2");
  }
  const Fft64Tables& t = fft64_tables();
  ConfigBuilder b("fig9_fft64_s" + std::to_string(stage));

  // ---- load phase: samples stream into the dual-ported data RAM ----
  const auto data = b.input("data");
  std::vector<Word> waddr_in(kFftSize);
  for (int n = 0; n < kFftSize; ++n) {
    waddr_in[static_cast<std::size_t>(n)] =
        (stage == 0) ? t.input_perm[static_cast<std::size_t>(n)] : n;
  }
  const auto wlut_in = b.ram("waddr_in", clut(std::move(waddr_in)));
  RamParams rama;
  rama.mode = RamMode::kRam;
  rama.capacity = kFftSize;
  const auto ram_a = b.ram("ram_a", std::move(rama));
  b.connect(wlut_in.out(0), ram_a.in(1));  // write addr
  b.connect(data.out(0), ram_a.in(2));     // write data

  // ---- compute phase (released by "go" tokens) ----
  std::vector<Word> raddr;
  std::vector<Word> twiddle;
  raddr.reserve(kFftSize);
  twiddle.reserve(kFftSize);
  const auto& st = t.stages[static_cast<std::size_t>(stage)];
  for (int bf = 0; bf < 16; ++bf) {
    for (int m = 0; m < 4; ++m) {
      raddr.push_back(st.addr[static_cast<std::size_t>(bf)]
                             [static_cast<std::size_t>(m)]);
      twiddle.push_back(pack_cplx(
          t.rom[static_cast<std::size_t>(st.twiddle[static_cast<std::size_t>(
              bf)][static_cast<std::size_t>(m)])]));
    }
  }
  const auto go = b.control_input("go");
  const auto rlut = b.ram("raddr", clut(raddr));
  b.connect(go.out(0), rlut.in(0));  // gated replay
  b.connect(rlut.out(0), ram_a.in(0));

  // Twiddle multiplication: Q11 twiddles + 2-bit stage scaling.
  const auto twl = b.ram("twiddle", clut(twiddle));
  const auto tmul = b.alu_shift("tmul", Opcode::kCMulShr, phy::kBranchShift);
  b.connect(ram_a.out(0), tmul.in(0));
  b.connect(twl.out(0), tmul.in(1));

  // Deserialize the branch stream into v0..v3.
  const auto cnt_hi = b.counter("cnt_hi", {0, 1, 4});
  const auto sel_hi = b.alu("sel_hi", Opcode::kGe);
  b.tie(sel_hi, 1, 2);
  b.connect(cnt_hi.out(0), sel_hi.in(0));
  const auto dmx_hi = b.alu("dmx_hi", Opcode::kDemux);
  b.connect(sel_hi.out(0), dmx_hi.in(0));
  b.connect(tmul.out(0), dmx_hi.in(1));
  const auto cnt01 = b.counter("cnt01", {0, 1, 2});
  const auto dmx01 = b.alu("dmx01", Opcode::kDemux);
  b.connect(cnt01.out(0), dmx01.in(0));
  b.connect(dmx_hi.out(0), dmx01.in(1));
  const auto cnt23 = b.counter("cnt23", {0, 1, 2});
  const auto dmx23 = b.alu("dmx23", Opcode::kDemux);
  b.connect(cnt23.out(0), dmx23.in(0));
  b.connect(dmx_hi.out(1), dmx23.in(1));
  // v0 = dmx01.out0, v1 = dmx01.out1, v2 = dmx23.out0, v3 = dmx23.out1

  // Radix-4 kernel (Figure 9) on complex-arithmetic ALUs.
  const auto t0 = b.alu("t0", Opcode::kCAdd);
  const auto t1 = b.alu("t1", Opcode::kCSub);
  const auto t2 = b.alu("t2", Opcode::kCAdd);
  const auto t3s = b.alu("t3s", Opcode::kCSub);
  const auto t3 = b.alu("t3", Opcode::kCRotMj);
  b.connect(dmx01.out(0), t0.in(0));
  b.connect(dmx23.out(0), t0.in(1));
  b.connect(dmx01.out(0), t1.in(0));
  b.connect(dmx23.out(0), t1.in(1));
  b.connect(dmx01.out(1), t2.in(0));
  b.connect(dmx23.out(1), t2.in(1));
  b.connect(dmx01.out(1), t3s.in(0));
  b.connect(dmx23.out(1), t3s.in(1));
  b.connect(t3s.out(0), t3.in(0));

  const auto y0 = b.alu("y0", Opcode::kCAdd);
  const auto y1 = b.alu("y1", Opcode::kCAdd);
  const auto y2 = b.alu("y2", Opcode::kCSub);
  const auto y3 = b.alu("y3", Opcode::kCSub);
  b.connect(t0.out(0), y0.in(0));
  b.connect(t2.out(0), y0.in(1));
  b.connect(t1.out(0), y1.in(0));
  b.connect(t3.out(0), y1.in(1));
  b.connect(t0.out(0), y2.in(0));
  b.connect(t2.out(0), y2.in(1));
  b.connect(t1.out(0), y3.in(0));
  b.connect(t3.out(0), y3.in(1));

  // Serialize y0..y3 ("output multiplexer" controlled by a counter
  // and comparator).
  const auto m01 = b.alu("m01", Opcode::kMergeAlt);
  b.connect(y0.out(0), m01.in(0));
  b.connect(y1.out(0), m01.in(1));
  const auto m23 = b.alu("m23", Opcode::kMergeAlt);
  b.connect(y2.out(0), m23.in(0));
  b.connect(y3.out(0), m23.in(1));
  const auto cnt_out = b.counter("cnt_out", {0, 1, 4});
  const auto sel_out = b.alu("sel_out", Opcode::kGe);
  b.tie(sel_out, 1, 2);
  b.connect(cnt_out.out(0), sel_out.in(0));
  const auto mout = b.alu("mout", Opcode::kMergeSel);
  b.connect(sel_out.out(0), mout.in(0));
  b.connect(m01.out(0), mout.in(1));
  b.connect(m23.out(0), mout.in(2));

  // Write back to the second port RAM (in-place address sequence).
  RamParams ramb;
  ramb.mode = RamMode::kRam;
  ramb.capacity = kFftSize;
  const auto ram_b = b.ram("ram_b", std::move(ramb));
  const auto wlut_out = b.ram("waddr_out", clut(raddr));
  b.connect(wlut_out.out(0), ram_b.in(1));
  b.connect(mout.out(0), ram_b.in(2));

  // ---- drain phase (released by "go2" tokens): natural order ----
  const auto go2 = b.control_input("go2");
  std::vector<Word> ident(kFftSize);
  for (int n = 0; n < kFftSize; ++n) ident[static_cast<std::size_t>(n)] = n;
  const auto rlut_out = b.ram("raddr_out", clut(std::move(ident)));
  b.connect(go2.out(0), rlut_out.in(0));
  b.connect(rlut_out.out(0), ram_b.in(0));
  const auto out = b.output("out");
  b.connect(ram_b.out(0), out.in(0));

  return b.build();
}

std::array<CplxI, kFftSize> run_fft64(xpp::ConfigurationManager& mgr,
                                      const std::array<CplxI, kFftSize>& in,
                                      std::vector<xpp::RunResult>* stats) {
  std::vector<Word> stream;
  stream.reserve(kFftSize);
  for (const auto& z : in) stream.push_back(pack_cplx(z));

  const std::vector<Word> ones(kFftSize, 1);
  // The three stage configurations differ only in their address/twiddle
  // generators, so stages 1 and 2 arrive by delta reconfiguration of
  // the resident stage instead of a full release + load (the per-stage
  // switch drops from ~hundreds of load cycles to kDeltaCyclesBase +
  // a handful of changed objects; see ConfigurationManager::load_delta).
  xpp::ConfigId id = 0;
  for (int stage = 0; stage < phy::kFftStages; ++stage) {
    const auto cfg = fft64_stage_config(stage);
    id = (stage == 0) ? mgr.load(cfg) : mgr.load_delta(id, cfg).id;
    const long long start = mgr.sim().cycle();

    mgr.input(id, "data").feed(stream);
    mgr.sim().run_until_quiescent(100000);   // load into RAM A
    mgr.input(id, "go").feed(ones);
    mgr.sim().run_until_quiescent(100000);   // butterfly pass into RAM B
    mgr.input(id, "go2").feed(ones);
    auto& sink = mgr.output(id, "out");
    long long guard = 0;
    while (sink.data().size() < static_cast<std::size_t>(kFftSize)) {
      mgr.sim().step();
      if (++guard > 100000) {
        throw xpp::ConfigError("run_fft64: drain timeout");
      }
    }
    stream = sink.take();
    if (stats != nullptr) {
      xpp::RunResult r;
      r.cycles = mgr.sim().cycle() - start;
      r.load_cycles = mgr.info(id).load_cycles;
      r.info = mgr.info(id);
      stats->push_back(std::move(r));
    }
  }
  mgr.release(id);

  std::array<CplxI, kFftSize> out{};
  for (int n = 0; n < kFftSize; ++n) {
    out[static_cast<std::size_t>(n)] =
        unpack_cplx(stream[static_cast<std::size_t>(n)]);
  }
  return out;
}

namespace {

/// One-ALU packed-complex conjugation pass on the array.
std::array<CplxI, kFftSize> run_conj64(xpp::ConfigurationManager& mgr,
                                       const std::array<CplxI, kFftSize>& in) {
  ConfigBuilder b("conj64");
  const auto data = b.input("data");
  const auto cj = b.alu("conj", Opcode::kCConj);
  const auto out = b.output("out");
  b.connect(data.out(0), cj.in(0));
  b.connect(cj.out(0), out.in(0));
  std::vector<Word> feed;
  feed.reserve(kFftSize);
  for (const auto& z : in) feed.push_back(pack_cplx(z));
  const auto r = xpp::run_config(mgr, b.build(), {{"data", feed}},
                                 {{"out", kFftSize}});
  std::array<CplxI, kFftSize> res{};
  for (int n = 0; n < kFftSize; ++n) {
    res[static_cast<std::size_t>(n)] =
        unpack_cplx(r.outputs.at("out")[static_cast<std::size_t>(n)]);
  }
  return res;
}

}  // namespace

std::array<CplxI, kFftSize> run_ifft64(xpp::ConfigurationManager& mgr,
                                       const std::array<CplxI, kFftSize>& in) {
  const auto c1 = run_conj64(mgr, in);
  const auto f = run_fft64(mgr, c1);
  return run_conj64(mgr, f);
}

std::vector<std::array<CplxI, kFftSize>> run_fft64_batch(
    xpp::ConfigurationManager& mgr,
    const std::vector<std::array<CplxI, kFftSize>>& in) {
  std::vector<std::vector<Word>> streams(in.size());
  for (std::size_t t = 0; t < in.size(); ++t) {
    streams[t].reserve(kFftSize);
    for (const auto& z : in[t]) streams[t].push_back(pack_cplx(z));
  }
  const std::vector<Word> ones(kFftSize, 1);
  // Stage switches ride the delta-reconfiguration path (see run_fft64).
  xpp::ConfigId id = 0;
  for (int stage = 0; stage < phy::kFftStages; ++stage) {
    const auto cfg = fft64_stage_config(stage);
    id = (stage == 0) ? mgr.load(cfg) : mgr.load_delta(id, cfg).id;
    for (auto& stream : streams) {
      mgr.input(id, "data").feed(stream);
      mgr.sim().run_until_quiescent(100000);
      mgr.input(id, "go").feed(ones);
      mgr.sim().run_until_quiescent(100000);
      mgr.input(id, "go2").feed(ones);
      auto& sink = mgr.output(id, "out");
      long long guard = 0;
      while (sink.data().size() < static_cast<std::size_t>(kFftSize)) {
        mgr.sim().step();
        if (++guard > 100000) {
          throw xpp::ConfigError("run_fft64_batch: drain timeout");
        }
      }
      stream = sink.take();
    }
  }
  mgr.release(id);
  std::vector<std::array<CplxI, kFftSize>> out(in.size());
  for (std::size_t t = 0; t < in.size(); ++t) {
    for (int n = 0; n < kFftSize; ++n) {
      out[t][static_cast<std::size_t>(n)] =
          unpack_cplx(streams[t][static_cast<std::size_t>(n)]);
    }
  }
  return out;
}

Configuration downsample2_config() {
  ConfigBuilder b("fig10_cfg1_downsample");
  const auto data = b.input("data");
  const auto cnt = b.counter("cnt", {0, 1, 2});
  const auto dmx = b.alu("dmx", Opcode::kDemux);
  const auto out = b.output("out");
  b.connect(cnt.out(0), dmx.in(0));
  b.connect(data.out(0), dmx.in(1));
  b.connect(dmx.out(0), out.in(0));  // even samples kept; odd discarded
  return b.build();
}

Configuration preamble_config(bool merged_output) {
  ConfigBuilder b("fig10_cfg2a_preamble");
  const auto data = b.input("data");
  const auto dup1 = b.alu("dup1", Opcode::kDup);
  b.connect(data.out(0), dup1.in(0));

  // 16-sample delay line: FIFO preloaded with zeros.
  RamParams fifo;
  fifo.mode = RamMode::kFifo;
  fifo.capacity = 32;
  fifo.preload.assign(16, 0);
  const auto delay = b.ram("delay16", std::move(fifo));
  b.connect(dup1.out(1), delay.in(0));
  const auto dup2 = b.alu("dup2", Opcode::kDup);
  b.connect(delay.out(0), dup2.in(0));
  const auto conj = b.alu("conj", Opcode::kCConj);
  b.connect(dup2.out(0), conj.in(0));

  // corr = sum r[n] * conj(r[n-16]) over 16-sample blocks.  The >>13
  // pre-scaling keeps 16-sample block sums of 10-bit-sample products
  // inside the 12-bit accumulator output without saturating.
  const auto cmul_c = b.alu_shift("cmul_corr", Opcode::kCMulShr, 13);
  b.connect(dup1.out(0), cmul_c.in(0));
  b.connect(conj.out(0), cmul_c.in(1));
  const auto cnt = b.counter("cnt16", {0, 1, 16});
  const auto acc_c = b.alu_shift("acc_corr", Opcode::kCAccum, 0);
  b.connect(cmul_c.out(0), acc_c.in(0));
  b.connect(cnt.out(1), acc_c.in(1));

  // power = sum |r[n-16]|^2 over the same blocks.
  const auto cmul_p = b.alu_shift("cmul_pow", Opcode::kCMulShr, 13);
  b.connect(dup2.out(1), cmul_p.in(0));
  b.connect(conj.out(0), cmul_p.in(1));
  const auto acc_p = b.alu_shift("acc_pow", Opcode::kCAccum, 0);
  b.connect(cmul_p.out(0), acc_p.in(0));
  b.connect(cnt.out(1), acc_p.in(1));

  if (merged_output) {
    const auto merge = b.alu("metric_merge", Opcode::kMergeAlt);
    b.connect(acc_c.out(0), merge.in(0));
    b.connect(acc_p.out(0), merge.in(1));
    const auto out = b.output("metrics");
    b.connect(merge.out(0), out.in(0));
  } else {
    const auto out_c = b.output("corr");
    b.connect(acc_c.out(0), out_c.in(0));
    const auto out_p = b.output("power");
    b.connect(acc_p.out(0), out_p.in(0));
  }
  return b.build();
}

Configuration demod_config(const std::vector<CplxI>& conj_h_q, int shift) {
  if (conj_h_q.empty()) {
    throw std::invalid_argument("demod_config: empty coefficient table");
  }
  ConfigBuilder b("fig10_cfg2b_demod");
  const auto data = b.input("data");
  const auto h = b.ram("chan_coeff", clut(pack_all(conj_h_q)));
  const auto mul = b.alu_shift("cmul", Opcode::kCMulShr, shift);
  const auto out = b.output("out");
  b.connect(data.out(0), mul.in(0));
  b.connect(h.out(0), mul.in(1));
  b.connect(mul.out(0), out.in(0));
  return b.build();
}

Configuration wlan_descrambler_config(std::uint8_t seed) {
  ConfigBuilder b("fig10_cfg1_descrambler");
  const auto data = b.input("data");
  // The self-synchronizing LFSR's output is 127-periodic for a fixed
  // seed, so the sequence lives in a circular LUT (one RAM-PAE) and a
  // single XOR ALU descrambles one bit per cycle.
  dedhw::WlanScrambler scr(seed);
  std::vector<Word> seq(127);
  for (auto& w : seq) w = scr.next_bit();
  const auto lut = b.ram("scramble_seq", clut(std::move(seq)));
  const auto x = b.alu("xor", Opcode::kXor);
  const auto out = b.output("out");
  b.connect(data.out(0), x.in(0));
  b.connect(lut.out(0), x.in(1));
  b.connect(x.out(0), out.in(0));
  return b.build();
}

std::vector<std::uint8_t> run_wlan_descrambler(xpp::ConfigurationManager& mgr,
                                               const std::vector<std::uint8_t>& bits,
                                               std::uint8_t seed,
                                               xpp::RunResult* stats) {
  std::vector<Word> words;
  words.reserve(bits.size());
  for (const auto b : bits) words.push_back(b & 1);
  auto r = xpp::run_config(mgr, wlan_descrambler_config(seed),
                           {{"data", words}}, {{"out", bits.size()}});
  std::vector<std::uint8_t> out;
  out.reserve(bits.size());
  for (const auto w : r.outputs.at("out")) {
    out.push_back(static_cast<std::uint8_t>(w & 1));
  }
  if (stats != nullptr) *stats = std::move(r);
  return out;
}

std::vector<CplxI> run_downsample2(xpp::ConfigurationManager& mgr,
                                   const std::vector<CplxI>& samples,
                                   xpp::RunResult* stats) {
  auto r = xpp::run_config(mgr, downsample2_config(),
                           {{"data", pack_all(samples)}},
                           {{"out", (samples.size() + 1) / 2}});
  std::vector<CplxI> out;
  for (const auto w : r.outputs.at("out")) out.push_back(unpack_cplx(w));
  if (stats != nullptr) *stats = std::move(r);
  return out;
}

PreambleBlocks run_preamble(xpp::ConfigurationManager& mgr,
                            const std::vector<CplxI>& samples,
                            xpp::RunResult* stats) {
  const std::size_t blocks = samples.size() / 16;
  auto r = xpp::run_config(mgr, preamble_config(),
                           {{"data", pack_all(samples)}},
                           {{"corr", blocks}, {"power", blocks}});
  PreambleBlocks out;
  for (const auto w : r.outputs.at("corr")) out.corr.push_back(unpack_cplx(w));
  for (const auto w : r.outputs.at("power")) {
    out.power.push_back(unpack_cplx(w).re);
  }
  if (stats != nullptr) *stats = std::move(r);
  return out;
}

std::vector<CplxI> run_demod(xpp::ConfigurationManager& mgr,
                             const std::vector<CplxI>& bins,
                             const std::vector<CplxI>& conj_h_q, int shift,
                             xpp::RunResult* stats) {
  auto r = xpp::run_config(mgr, demod_config(conj_h_q, shift),
                           {{"data", pack_all(bins)}},
                           {{"out", bins.size()}});
  std::vector<CplxI> out;
  for (const auto w : r.outputs.at("out")) out.push_back(unpack_cplx(w));
  if (stats != nullptr) *stats = std::move(r);
  return out;
}

}  // namespace rsp::ofdm::maps

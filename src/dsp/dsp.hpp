// DSP / microcontroller cost model.
//
// The paper partitions "algorithmic parts with low criticality, mostly
// implementing control code" onto a DSP (Figures 4 and 8) and quotes
// the class of device: "Modern high-performance DSPs can provide
// around 1600 MIPS at clock speeds of 200 MHz" (Section 1).  We model
// the DSP as an instruction/cycle accountant: control and estimation
// tasks charge operations, and experiments read back the implied MIPS
// load to reproduce the partitioning claims (Fig. 4/8 benches) and the
// protocol demands (Fig. 1).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rsp::dsp {

/// Instruction classes with distinct costs.
enum class DspOp : std::uint8_t {
  kAlu,        ///< add/sub/logic, 1 cycle
  kMac,        ///< multiply-accumulate, 1 cycle (8 issue slots at 1600 MIPS/200 MHz)
  kLoadStore,  ///< memory access, 1 cycle
  kBranch,     ///< control flow, 2 cycles
  kDiv,        ///< iterative divide, 18 cycles
  kSqrt,       ///< iterative square root, 24 cycles
};

[[nodiscard]] constexpr int op_cycles(DspOp op) {
  switch (op) {
    case DspOp::kAlu:
    case DspOp::kMac:
    case DspOp::kLoadStore: return 1;
    case DspOp::kBranch:    return 2;
    case DspOp::kDiv:       return 18;
    case DspOp::kSqrt:      return 24;
  }
  return 1;
}

/// Paper-quoted reference DSP.
inline constexpr double kDspClockHz = 200.0e6;
inline constexpr double kDspPeakMips = 1600.0;
/// Instructions retired per cycle at peak (1600 MIPS / 200 MHz).
inline constexpr double kIssueWidth = kDspPeakMips * 1.0e6 / kDspClockHz;

class DspModel {
 public:
  explicit DspModel(double clock_hz = kDspClockHz) : clock_hz_(clock_hz) {}

  /// Charge @p count operations of class @p op to task @p task.
  void charge(const std::string& task, DspOp op, long long count = 1) {
    auto& t = tasks_[task];
    t.instructions += count;
    t.cycles += count * op_cycles(op);
    total_instructions_ += count;
    total_cycles_ += count * op_cycles(op);
  }

  [[nodiscard]] long long total_instructions() const { return total_instructions_; }
  [[nodiscard]] long long total_cycles() const { return total_cycles_; }

  /// Wall-clock time the charged work occupies (single-issue model,
  /// conservative; divide by kIssueWidth for the paper's VLIW DSP).
  [[nodiscard]] double busy_seconds() const {
    return static_cast<double>(total_cycles_) / clock_hz_;
  }

  /// MIPS demand if the charged work must complete within @p window_s.
  [[nodiscard]] double mips_required(double window_s) const {
    return static_cast<double>(total_instructions_) / window_s / 1.0e6;
  }

  /// Fraction of the DSP consumed when the work recurs every
  /// @p window_s (1.0 = fully loaded at peak issue width).
  [[nodiscard]] double utilization(double window_s) const {
    return busy_seconds() / kIssueWidth / window_s;
  }

  struct TaskStats {
    long long instructions = 0;
    long long cycles = 0;
  };

  [[nodiscard]] const std::map<std::string, TaskStats>& tasks() const {
    return tasks_;
  }

  void reset() {
    tasks_.clear();
    total_instructions_ = 0;
    total_cycles_ = 0;
  }

  /// Snapshot-restore hook (src/sdr board snapshots): overwrite the
  /// accounting with previously captured totals.
  void restore_accounting(std::map<std::string, TaskStats> tasks,
                          long long instructions, long long cycles) {
    tasks_ = std::move(tasks);
    total_instructions_ = instructions;
    total_cycles_ = cycles;
  }

  [[nodiscard]] double clock_hz() const { return clock_hz_; }

 private:
  double clock_hz_;
  std::map<std::string, TaskStats> tasks_;
  long long total_instructions_ = 0;
  long long total_cycles_ = 0;
};

}  // namespace rsp::dsp

// XPP mapping of a 4-band polyphase channelizer (DFT filter bank).
//
// The multi-standard front end the paper motivates (one wideband ADC
// stream serving UMTS, 802.11 and GSM paths at once) is a critically
// sampled DFT filter bank: a commutator deals the wideband stream
// across M = 4 polyphase branches, each branch runs one phase of the
// prototype lowpass at 1/4 rate, and a 4-point DFT across the branch
// outputs separates the sub-bands (PAPERS.md: reconfigurable filter
// bank for multi-standard channelizers).  Everything runs in the
// packed 12+12-bit I/Q fixed point of the array; the double-precision
// golden model in golden.hpp mirrors the block structure exactly, and
// tests/dsp/test_channelizer.cpp pins the fixed-point tolerance.
#pragma once

#include <array>
#include <vector>

#include "src/common/cplx.hpp"
#include "src/xpp/manager.hpp"
#include "src/xpp/runner.hpp"

namespace rsp::chan {

/// Bands and polyphase branches of the channelizer.
inline constexpr int kBands = 4;

/// Prototype lowpass length (kBands branches x kTapsPerBranch taps).
inline constexpr int kProtoTaps = 16;
inline constexpr int kTapsPerBranch = kProtoTaps / kBands;

/// Coefficient quantization: taps are Q11, and each branch FIR's
/// post-multiply shift is kBranchShift = 13, folding in the 1/M DFT
/// normalization (total branch gain h/4).  The extra two bits keep the
/// radix-4 combine out of 12-bit saturation even for full-scale input:
/// sum |h| < 1, so |Y| <= sum|h| * 2048 / 4 < 512.
inline constexpr int kCoeffShift = 11;
inline constexpr int kBranchShift = 13;

/// The real prototype lowpass (cutoff pi/4, Hamming-windowed sinc,
/// normalized to sum |h| = 0.9) and its Q11 quantization.
[[nodiscard]] std::array<double, kProtoTaps> prototype_taps();
[[nodiscard]] std::array<xpp::Word, kProtoTaps> prototype_taps_q();

/// The channelizer configuration: 1 input ("x", packed I/Q wideband
/// samples), kBands outputs ("band0".."band3"), ~43 ALU-PAEs
/// (commutator demux tree, 4 transposed-form branch FIRs, radix-4 DFT
/// butterfly), no RAM-PAEs.
[[nodiscard]] xpp::Configuration channelizer_config();

/// Run @p x (length a multiple of kBands) through the array config and
/// return the kBands sub-band streams, each x.size()/kBands long.
[[nodiscard]] std::array<std::vector<CplxI>, kBands> run_channelizer(
    xpp::ConfigurationManager& mgr, const std::vector<CplxI>& x,
    xpp::RunResult* stats = nullptr);

}  // namespace rsp::chan

// Double-precision golden reference for the polyphase channelizer.
//
// Mirrors src/chan/maps.cpp block for block — forward commutator,
// type-1 polyphase branch FIRs with gain h/4, radix-4 DFT butterfly —
// in double precision with unquantized prototype taps, so the only
// differences from the array are coefficient quantization (Q11) and
// the per-product rounding of kCMulShr.  The pinned tolerance in
// tests/dsp/test_channelizer.cpp is derived from exactly those two
// sources.
#pragma once

#include <array>
#include <complex>
#include <vector>

#include "src/chan/maps.hpp"

namespace rsp::chan {

using CplxD = std::complex<double>;

/// Golden sub-band outputs for wideband input @p x (length a multiple
/// of kBands): band b stream, x.size()/kBands samples each, in the
/// same units as the array's 12-bit outputs.
[[nodiscard]] std::array<std::vector<CplxD>, kBands> golden_channelize(
    const std::vector<CplxD>& x);

}  // namespace rsp::chan

#include "src/chan/maps.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "src/common/word.hpp"
#include "src/xpp/builder.hpp"

namespace rsp::chan {

using xpp::ConfigBuilder;
using xpp::Configuration;
using xpp::ObjHandle;
using xpp::Opcode;
using xpp::Word;

std::array<double, kProtoTaps> prototype_taps() {
  // Hamming-windowed sinc, cutoff pi/4 (one bandwidth of the 4-band
  // bank), centre at (N-1)/2 = 7.5 so no tap hits the singularity.
  std::array<double, kProtoTaps> h{};
  const double c = (kProtoTaps - 1) / 2.0;
  double abs_sum = 0.0;
  for (int n = 0; n < kProtoTaps; ++n) {
    const double t = n - c;
    const double sinc = std::sin(M_PI * t / kBands) / (M_PI * t);
    const double win =
        0.54 - 0.46 * std::cos(2.0 * M_PI * n / (kProtoTaps - 1));
    h[n] = sinc * win;
    abs_sum += std::abs(h[n]);
  }
  // Normalize sum |h| = 0.9: keeps every branch FIR and the radix-4
  // combine strictly inside 12-bit range for full-scale input (see
  // kBranchShift in maps.hpp).
  for (double& v : h) v *= 0.9 / abs_sum;
  return h;
}

std::array<Word, kProtoTaps> prototype_taps_q() {
  const auto h = prototype_taps();
  std::array<Word, kProtoTaps> q{};
  for (int n = 0; n < kProtoTaps; ++n) {
    q[n] = static_cast<Word>(std::lround(h[n] * (1 << kCoeffShift)));
  }
  return q;
}

namespace {

/// One transposed-form 4-tap branch FIR on packed I/Q: four kCMulShr
/// multipliers against real coefficients (h_q, 0), a kCAdd chain with
/// preloaded-zero unit delays between stages.  Returns the handle whose
/// out(0) carries the branch output v_rho.
ObjHandle branch_fir(ConfigBuilder& b, const std::string& prefix,
                     xpp::PortRef u, int rho,
                     const std::array<Word, kProtoTaps>& hq) {
  std::array<ObjHandle, kTapsPerBranch> mul;
  for (int i = 0; i < kTapsPerBranch; ++i) {
    mul[i] = b.alu_shift(prefix + "_m" + std::to_string(i), Opcode::kCMulShr,
                         kBranchShift);
    b.connect(u, mul[i].in(0));
    b.tie(mul[i], 1, pack_iq(hq[kBands * i + rho], 0));
  }
  // Transposed chain: v = m0 + z^-1(m1 + z^-1(m2 + z^-1 m3)); the
  // preloaded zero token on each inter-stage net is the delay register.
  ObjHandle acc = mul[kTapsPerBranch - 1];
  for (int i = kTapsPerBranch - 2; i >= 0; --i) {
    const auto add = b.alu(prefix + "_a" + std::to_string(i), Opcode::kCAdd);
    b.connect_preload(acc.out(0), add.in(0), 0);
    b.connect(mul[i].out(0), add.in(1));
    acc = add;
  }
  return acc;
}

}  // namespace

Configuration channelizer_config() {
  ConfigBuilder b("chan_pfb4");
  const auto hq = prototype_taps_q();

  // Commutator: a free-running mod-4 counter deals sample n to branch
  // n mod 4 through a two-level kDemux tree.  The select bits travel
  // through their own demux level so each second-level demux sees a
  // select token exactly when it sees a data token — the dataflow
  // handshake keeps counter and sample stream in lock-step (the
  // counter stalls as soon as its fan-out nets fill while "x" starves).
  const auto x = b.input("x");
  const auto cnt = b.counter("cnt", {0, 1, kBands});
  const auto bit0 = b.alu("bit0", Opcode::kAnd);
  b.tie(bit0, 1, 1);
  b.connect(cnt.out(0), bit0.in(0));
  const auto bit1 = b.alu_shift("bit1", Opcode::kShr, 1);
  b.connect(cnt.out(0), bit1.in(0));

  const auto dmxs = b.alu("dmx_sel", Opcode::kDemux);
  b.connect(bit1.out(0), dmxs.in(0));
  b.connect(bit0.out(0), dmxs.in(1));
  const auto dmxh = b.alu("dmx_hi", Opcode::kDemux);
  b.connect(bit1.out(0), dmxh.in(0));
  b.connect(x.out(0), dmxh.in(1));
  const auto dmx01 = b.alu("dmx01", Opcode::kDemux);
  b.connect(dmxs.out(0), dmx01.in(0));
  b.connect(dmxh.out(0), dmx01.in(1));
  const auto dmx23 = b.alu("dmx23", Opcode::kDemux);
  b.connect(dmxs.out(1), dmx23.in(0));
  b.connect(dmxh.out(1), dmx23.in(1));

  // Polyphase branches: branch rho filters u_rho[m] = x[4m + rho] with
  // taps h[4i + rho], total gain h/4 (kBranchShift folds the 1/M DFT
  // normalization).
  const std::array<xpp::PortRef, kBands> u = {dmx01.out(0), dmx01.out(1),
                                              dmx23.out(0), dmx23.out(1)};
  std::array<ObjHandle, kBands> v;
  for (int rho = 0; rho < kBands; ++rho) {
    v[rho] = branch_fir(b, "b" + std::to_string(rho), u[rho], rho, hq);
  }

  // Radix-4 DFT across the branch outputs (W = e^{-j 2 pi / 4} = -j):
  //   Y0 = t0 + t2        t0 = v0 + v2   t2 = v1 + v3
  //   Y2 = t0 - t2        t1 = v0 - v2   t3 = v1 - v3
  //   Y1 = t1 + (-j) t3
  //   Y3 = t1 - (-j) t3
  const auto t0 = b.alu("t0", Opcode::kCAdd);
  b.connect(v[0].out(0), t0.in(0));
  b.connect(v[2].out(0), t0.in(1));
  const auto t1 = b.alu("t1", Opcode::kCSub);
  b.connect(v[0].out(0), t1.in(0));
  b.connect(v[2].out(0), t1.in(1));
  const auto t2 = b.alu("t2", Opcode::kCAdd);
  b.connect(v[1].out(0), t2.in(0));
  b.connect(v[3].out(0), t2.in(1));
  const auto t3 = b.alu("t3", Opcode::kCSub);
  b.connect(v[1].out(0), t3.in(0));
  b.connect(v[3].out(0), t3.in(1));
  const auto rot = b.alu("rotmj", Opcode::kCRotMj);
  b.connect(t3.out(0), rot.in(0));

  const auto y0 = b.alu("y0", Opcode::kCAdd);
  b.connect(t0.out(0), y0.in(0));
  b.connect(t2.out(0), y0.in(1));
  const auto y2 = b.alu("y2", Opcode::kCSub);
  b.connect(t0.out(0), y2.in(0));
  b.connect(t2.out(0), y2.in(1));
  const auto y1 = b.alu("y1", Opcode::kCAdd);
  b.connect(t1.out(0), y1.in(0));
  b.connect(rot.out(0), y1.in(1));
  const auto y3 = b.alu("y3", Opcode::kCSub);
  b.connect(t1.out(0), y3.in(0));
  b.connect(rot.out(0), y3.in(1));

  const std::array<ObjHandle, kBands> y = {y0, y1, y2, y3};
  for (int band = 0; band < kBands; ++band) {
    const auto out = b.output("band" + std::to_string(band));
    b.connect(y[band].out(0), out.in(0));
  }
  return b.build();
}

std::array<std::vector<CplxI>, kBands> run_channelizer(
    xpp::ConfigurationManager& mgr, const std::vector<CplxI>& x,
    xpp::RunResult* stats) {
  if (x.size() % kBands != 0) {
    throw std::invalid_argument(
        "run_channelizer: input length must be a multiple of " +
        std::to_string(kBands));
  }
  std::vector<Word> feed;
  feed.reserve(x.size());
  for (const CplxI& z : x) {
    if (z.re < -2047 || z.re > 2047 || z.im < -2047 || z.im > 2047) {
      throw std::invalid_argument(
          "run_channelizer: sample exceeds 12-bit halves");
    }
    feed.push_back(pack_cplx(z));
  }

  const xpp::ConfigId id = mgr.load(channelizer_config());
  const long long start = mgr.sim().cycle();
  mgr.input(id, "x").feed(feed);
  const std::size_t want = x.size() / kBands;
  std::array<xpp::OutputObject*, kBands> sinks{};
  for (int band = 0; band < kBands; ++band) {
    sinks[band] = &mgr.output(id, "band" + std::to_string(band));
  }
  // The commutator counter free-runs ahead of the sample stream, so the
  // array never reaches token-free quiescence — run until every band
  // sink has its share of outputs instead.
  const auto drained = [&] {
    for (const auto* s : sinks) {
      if (s->data().size() < want) return false;
    }
    return true;
  };
  long long guard = 0;
  while (!drained()) {
    mgr.sim().step();
    if (++guard > static_cast<long long>(x.size()) * 8 + 10000) {
      throw xpp::ConfigError("run_channelizer: sub-band stream stalled");
    }
  }
  std::array<std::vector<CplxI>, kBands> bands;
  for (int band = 0; band < kBands; ++band) {
    const std::vector<Word> raw = sinks[band]->take();
    bands[band].reserve(raw.size());
    for (const Word w : raw) bands[band].push_back(unpack_cplx(w));
  }
  if (stats != nullptr) {
    stats->cycles = mgr.sim().cycle() - start;
    stats->load_cycles = mgr.info(id).load_cycles;
    stats->info = mgr.info(id);
  }
  mgr.release(id);
  return bands;
}

}  // namespace rsp::chan

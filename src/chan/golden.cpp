#include "src/chan/golden.hpp"

namespace rsp::chan {

std::array<std::vector<CplxD>, kBands> golden_channelize(
    const std::vector<CplxD>& x) {
  const auto h = prototype_taps();
  const std::size_t frames = x.size() / kBands;

  // Branch FIRs: branch rho filters u_rho[m] = x[4m + rho] with taps
  // h[4i + rho] / 4 (the same gain the array realizes via kBranchShift),
  // zero initial state — matching the preloaded-zero delay nets.
  std::array<std::vector<CplxD>, kBands> v;
  for (int rho = 0; rho < kBands; ++rho) {
    v[rho].resize(frames);
    for (std::size_t m = 0; m < frames; ++m) {
      CplxD acc{};
      for (int i = 0; i < kTapsPerBranch; ++i) {
        if (m < static_cast<std::size_t>(i)) break;
        acc += (h[kBands * i + rho] / kBands) * x[kBands * (m - i) + rho];
      }
      v[rho][m] = acc;
    }
  }

  // Radix-4 DFT across the branches, written exactly as the array's
  // butterfly (W = -j realized as rot(z) = (im, -re)).
  std::array<std::vector<CplxD>, kBands> y;
  for (auto& band : y) band.resize(frames);
  for (std::size_t m = 0; m < frames; ++m) {
    const CplxD t0 = v[0][m] + v[2][m];
    const CplxD t1 = v[0][m] - v[2][m];
    const CplxD t2 = v[1][m] + v[3][m];
    const CplxD t3 = v[1][m] - v[3][m];
    const CplxD rot{t3.imag(), -t3.real()};
    y[0][m] = t0 + t2;
    y[1][m] = t1 + rot;
    y[2][m] = t0 - t2;
    y[3][m] = t1 - rot;
  }
  return y;
}

}  // namespace rsp::chan

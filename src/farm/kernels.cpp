#include "src/farm/kernels.hpp"

#include <vector>

#include "src/common/rng.hpp"
#include "src/ofdm/golden.hpp"
#include "src/phy/channel.hpp"
#include "src/phy/ofdm_tx.hpp"
#include "src/phy/umts_tx.hpp"
#include "src/rake/receiver.hpp"

namespace rsp::farm::kernels {

TrialResult RakeTrial::operator()(std::uint64_t seed) const {
  Rng rng(seed);
  phy::BasestationConfig bs;
  bs.scrambling_code = 16;
  bs.cpich_gain = 0.5;
  phy::DpchConfig ch;
  ch.sf = 64;
  ch.code_index = 3;
  ch.gain = 0.7;
  ch.bits.resize(256);
  for (auto& b : ch.bits) b = rng.bit() ? 1 : 0;
  bs.channels.push_back(ch);
  phy::UmtsDownlinkTx tx(bs);
  const auto chips = tx.generate(64 * symbols)[0];
  phy::MultipathChannel mp(
      {{2, {0.62, 0.0}, 0.0}, {9, {0.0, 0.55}, 0.0}, {17, {0.39, -0.3}, 0.0}},
      3.84e6);
  const auto rx = mp.run(chips, esn0_db, rng);
  if (substrate_only) {
    TrialResult r;
    r.frames = 1;
    r.bits = rx.size();
    return r;
  }
  rake::RakeConfig cfg;
  cfg.scrambling_codes = {16};
  cfg.sf = 64;
  cfg.code_index = 3;
  cfg.paths_per_bs = fingers;
  cfg.pilot_amplitude = 0.5;
  rake::RakeReceiver receiver(cfg);
  const auto out = receiver.receive(rx);

  TrialResult r;
  r.frames = 1;
  if (out.bits.empty()) {
    // Acquisition failure: no payload recovered, the frame is lost.
    r.frame_errors = 1;
    return r;
  }
  r.bits = out.bits.size();
  for (std::size_t i = 0; i < out.bits.size(); ++i) {
    r.bit_errors += (out.bits[i] != ch.bits[i % ch.bits.size()]) ? 1 : 0;
  }
  r.frame_errors = r.bit_errors > 0 ? 1 : 0;
  return r;
}

TrialResult WlanTrial::operator()(std::uint64_t seed) const {
  Rng rng(seed);
  std::vector<std::uint8_t> psdu(psdu_bits);
  for (auto& b : psdu) b = rng.bit() ? 1 : 0;
  phy::OfdmTransmitter tx;
  auto capture = tx.build_ppdu(psdu, mbps);
  std::vector<CplxF> lead(150, CplxF{0, 0});
  capture.insert(capture.begin(), lead.begin(), lead.end());
  capture = phy::awgn(capture, esn0_db, rng);
  if (substrate_only) {
    TrialResult r;
    r.frames = 1;
    r.bits = capture.size();
    return r;
  }
  ofdm::OfdmRxConfig cfg;
  cfg.mbps = mbps;
  ofdm::OfdmReceiver receiver(cfg);
  const auto res = receiver.receive(capture, psdu.size());

  TrialResult r;
  r.frames = 1;
  r.bits = psdu.size();
  if (!res.preamble_found || res.psdu.size() != psdu.size()) {
    // Sync or SIGNAL failure: every payload bit of the frame is lost.
    r.bit_errors = r.bits;
    r.frame_errors = 1;
    return r;
  }
  for (std::size_t i = 0; i < psdu.size(); ++i) {
    r.bit_errors += (res.psdu[i] != psdu[i]) ? 1 : 0;
  }
  r.frame_errors = r.bit_errors > 0 ? 1 : 0;
  return r;
}

}  // namespace rsp::farm::kernels

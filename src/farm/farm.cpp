#include "src/farm/farm.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <map>
#include <mutex>
#include <thread>

#include "src/common/rng.hpp"
#include "src/farm/queue.hpp"
#include "src/xpp/batch.hpp"
#include "src/xpp/sim.hpp"

namespace rsp::farm {
namespace {

using Clock = std::chrono::steady_clock;
using detail::BoundedQueue;
using detail::FailureTracker;

/// Drain the submit loop's outcome: a push refused by a closed queue
/// means a task was never dispatched — the drivers treat that as a
/// hard internal error (after joining the pool) rather than returning
/// a result vector with silently missing slots.
void throw_undispatched(std::size_t index, const char* unit) {
  throw FarmError("farm: " + std::string(unit) + " " + std::to_string(index) +
                  " was never dispatched (queue closed during push)");
}

}  // namespace

ScenarioFarm::ScenarioFarm(FarmOptions opts)
    : threads_(opts.threads), queue_capacity_(opts.queue_capacity) {
  if (opts.threads < 0) {
    throw std::invalid_argument("farm: threads must be >= 0 (0 = hardware "
                                "concurrency); got " +
                                std::to_string(opts.threads));
  }
  if (opts.queue_capacity == 0) {
    throw std::invalid_argument(
        "farm: queue_capacity must be > 0 (a zero-capacity queue would "
        "deadlock the submitter)");
  }
  if (threads_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads_ = hw == 0 ? 1 : static_cast<int>(hw);
  }
}

FarmResult ScenarioFarm::run(std::size_t n_tasks, std::uint64_t base_seed,
                             const TrialKernel& kernel) const {
  FarmResult result;
  // Zero tasks: nothing to dispatch — return the empty result instead
  // of spawning a worker thread that immediately exits.
  if (n_tasks == 0) return result;
  result.per_task.resize(n_tasks);
  const auto t0 = Clock::now();

  BoundedQueue queue(queue_capacity_);
  std::mutex agg_mutex;  // guards result.agg (streaming sums)
  FailureTracker failures;

  const int workers = n_tasks < static_cast<std::size_t>(threads_)
                          ? static_cast<int>(n_tasks)
                          : threads_;

  auto worker = [&] {
    std::size_t index = 0;
    while (queue.pop(index)) {
      if (failures.should_skip(index)) continue;
      try {
        // Each slot of per_task is written by exactly one task, and the
        // join below publishes the writes — share-nothing by indexing.
        TrialResult r = kernel(Rng::split(base_seed, index), index);
        result.per_task[index] = r;
        std::lock_guard<std::mutex> lock(agg_mutex);
        result.agg.add(r);
      } catch (...) {
        failures.record(index);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) pool.emplace_back(worker);

  std::size_t undispatched = detail::kNoFailure;
  for (std::size_t i = 0; i < n_tasks; ++i) {
    if (!queue.push(i)) {
      undispatched = i;
      break;
    }
  }
  queue.close();
  for (auto& t : pool) t.join();

  if (undispatched != detail::kNoFailure) throw_undispatched(undispatched, "task");
  failures.rethrow("task");

  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return result;
}

BatchedFarmResult ScenarioFarm::run_batched(std::size_t n_tasks,
                                            std::uint64_t base_seed,
                                            const BatchedTrialFactory& factory,
                                            const BatchedTaskSpec& spec) const {
  BatchedFarmResult out;
  if (n_tasks == 0) return out;  // nothing to dispatch; no pool
  out.result.per_task.resize(n_tasks);
  const auto t0 = Clock::now();

  const std::size_t width =
      spec.width < 1 ? 1 : static_cast<std::size_t>(spec.width);
  const std::size_t n_groups = (n_tasks + width - 1) / width;

  xpp::BatchProgramCache local_cache;
  xpp::BatchProgramCache* cache =
      spec.cache != nullptr ? spec.cache : &local_cache;

  BoundedQueue queue(queue_capacity_);
  std::mutex agg_mutex;  // guards result.agg and out.batch
  FailureTracker failures;

  // One group == one lockstep engine on one worker: lane membership is
  // a pure function of the task index, so results are identical at any
  // thread count (the determinism battery in tests/farm pins this).
  auto run_group = [&](std::size_t g) {
    const std::size_t begin = g * width;
    const std::size_t end = std::min(n_tasks, begin + width);
    const std::size_t n = end - begin;

    std::vector<std::unique_ptr<BatchedTrial>> trials(n);
    std::vector<long long> pending(n, 0);
    std::vector<bool> done(n, false);
    xpp::BatchedReplayEngine eng(cache, static_cast<int>(width));
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t index = begin + j;
      trials[j] = factory(Rng::split(base_seed, index), index);
      eng.add(trials[j]->sim(), spec.config_crc);
    }

    std::size_t live = n;
    while (live > 0) {
      long long chunk = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (done[j]) continue;
        if (pending[j] == 0) {
          pending[j] = trials[j]->next_cycles();
          if (pending[j] <= 0) {
            const TrialResult r = trials[j]->finish();
            out.result.per_task[begin + j] = r;
            {
              const std::lock_guard<std::mutex> lock(agg_mutex);
              out.result.agg.add(r);
            }
            eng.set_active(static_cast<int>(j), false);
            done[j] = true;
            --live;
            continue;
          }
        }
        chunk = chunk == 0 ? pending[j] : std::min(chunk, pending[j]);
      }
      if (live == 0 || chunk == 0) break;
      // Advance every live lane by the smallest outstanding quantum:
      // slicing a quantum is invisible to the trial (step composes).
      eng.run_cycles(chunk);
      for (std::size_t j = 0; j < n; ++j) {
        if (!done[j]) pending[j] -= chunk;
      }
    }

    const xpp::BatchedReplayEngine::Stats& s = eng.stats();
    const std::lock_guard<std::mutex> lock(agg_mutex);
    out.batch.batch_ticks += s.batch_ticks;
    out.batch.batched_cycles += s.batched_cycles;
    out.batch.scalar_cycles += s.scalar_cycles;
    out.batch.guard_exits += s.guard_exits;
    out.batch.join_rejects += s.join_rejects;
    out.batch.gathers += s.gathers;
  };

  const std::size_t pool_size =
      std::min<std::size_t>(static_cast<std::size_t>(threads_), n_groups);
  auto worker = [&] {
    std::size_t g = 0;
    while (queue.pop(g)) {
      if (failures.should_skip(g)) continue;
      try {
        run_group(g);
      } catch (...) {
        failures.record(g);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(pool_size);
  for (std::size_t t = 0; t < pool_size; ++t) pool.emplace_back(worker);
  std::size_t undispatched = detail::kNoFailure;
  for (std::size_t g = 0; g < n_groups; ++g) {
    if (!queue.push(g)) {
      undispatched = g;
      break;
    }
  }
  queue.close();
  for (auto& t : pool) t.join();

  if (undispatched != detail::kNoFailure) {
    throw_undispatched(undispatched, "batched group");
  }
  failures.rethrow("batched group");

  out.result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return out;
}

FarmResult run_serial(std::size_t n_tasks, std::uint64_t base_seed,
                      const TrialKernel& kernel) {
  FarmResult result;
  result.per_task.resize(n_tasks);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < n_tasks; ++i) {
    result.per_task[i] = kernel(Rng::split(base_seed, i), i);
    result.agg.add(result.per_task[i]);
  }
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return result;
}

}  // namespace rsp::farm

#include "src/farm/farm.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "src/common/rng.hpp"

namespace rsp::farm {
namespace {

using Clock = std::chrono::steady_clock;

/// Bounded multi-producer/multi-consumer queue of task indices.  The
/// submitter blocks in push() while the queue is full; workers block in
/// pop() while it is empty; close() wakes everyone for shutdown.
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void push(std::size_t index) {
    std::unique_lock<std::mutex> lock(m_);
    not_full_.wait(lock, [&] { return q_.size() < capacity_ || closed_; });
    if (closed_) return;
    q_.push_back(index);
    not_empty_.notify_one();
  }

  /// False once the queue is closed and drained.
  bool pop(std::size_t& index) {
    std::unique_lock<std::mutex> lock(m_);
    not_empty_.wait(lock, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return false;
    index = q_.front();
    q_.pop_front();
    not_full_.notify_one();
    return true;
  }

  void close() {
    std::lock_guard<std::mutex> lock(m_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  std::mutex m_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<std::size_t> q_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace

ScenarioFarm::ScenarioFarm(FarmOptions opts)
    : threads_(opts.threads), queue_capacity_(opts.queue_capacity) {
  if (threads_ <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads_ = hw == 0 ? 1 : static_cast<int>(hw);
  }
}

FarmResult ScenarioFarm::run(std::size_t n_tasks, std::uint64_t base_seed,
                             const TrialKernel& kernel) const {
  FarmResult result;
  result.per_task.resize(n_tasks);
  const auto t0 = Clock::now();

  BoundedQueue queue(queue_capacity_);
  std::mutex agg_mutex;           // guards result.agg (streaming sums)
  std::mutex error_mutex;         // guards first_error
  std::exception_ptr first_error; // first kernel failure, rethrown below

  const int workers =
      n_tasks < static_cast<std::size_t>(threads_)
          ? static_cast<int>(n_tasks == 0 ? 1 : n_tasks)
          : threads_;

  auto worker = [&] {
    std::size_t index = 0;
    while (queue.pop(index)) {
      try {
        // Each slot of per_task is written by exactly one task, and the
        // join below publishes the writes — share-nothing by indexing.
        TrialResult r = kernel(Rng::split(base_seed, index), index);
        result.per_task[index] = r;
        std::lock_guard<std::mutex> lock(agg_mutex);
        result.agg.add(r);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        queue.close();  // stop handing out further work
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) pool.emplace_back(worker);

  for (std::size_t i = 0; i < n_tasks; ++i) queue.push(i);
  queue.close();
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);

  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return result;
}

FarmResult run_serial(std::size_t n_tasks, std::uint64_t base_seed,
                      const TrialKernel& kernel) {
  FarmResult result;
  result.per_task.resize(n_tasks);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < n_tasks; ++i) {
    result.per_task[i] = kernel(Rng::split(base_seed, i), i);
    result.agg.add(result.per_task[i]);
  }
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return result;
}

}  // namespace rsp::farm

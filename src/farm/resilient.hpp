// Crash-resilient Monte-Carlo campaigns on top of the scenario farm.
//
// A plain ScenarioFarm::run aborts the whole campaign on the first
// kernel failure — correct for a differential battery, wasteful for a
// week-long BER sweep where one poisoned seed (or one wedged trial)
// should not discard a million healthy ones.  run_resilient adds the
// robustness layer:
//
//   * per-task wall-clock DEADLINES: a trial that exceeds its budget is
//     abandoned on a watchdog (the runaway attempt keeps its own copies
//     of everything and can never touch campaign state again);
//   * bounded deterministic RETRY: a failed attempt is re-run with the
//     SAME task seed — Rng::split(base, i) is a pure function, so a
//     retry is a pure re-execution, and a flaky-infrastructure failure
//     (OOM, timeout under load) gets a second chance while a
//     deterministically poisoned task fails identically every time;
//   * QUARANTINE: tasks that exhaust their attempts are excluded from
//     the aggregate and reported with their index, status and error —
//     the quarantined set is a pure function of (kernel, base_seed,
//     n_tasks, options), identical at any thread count;
//   * periodic CHECKPOINTS (atomic temp+rename, CRC-framed) holding the
//     per-task completion map and results, with --resume picking up a
//     SIGKILLed campaign and finishing to a bit-identical aggregate.
//
// The kill-and-resume smoke in scripts/check.sh and the battery in
// tests/farm/test_resilient.cpp pin all four properties.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/farm/farm.hpp"

namespace rsp::farm {

struct ResilientOptions {
  FarmOptions farm;
  /// Attempts per task before quarantine (>= 1).
  int max_attempts = 2;
  /// Per-attempt wall-clock budget in seconds; 0 disables the watchdog.
  double deadline_seconds = 0.0;
  /// Checkpoint file path; empty disables checkpointing.
  std::string checkpoint_path;
  /// Write a checkpoint every this many completed tasks (0 = only the
  /// final checkpoint).
  std::size_t checkpoint_every = 0;
  /// Load checkpoint_path first and run only the missing tasks.  The
  /// checkpoint must match (base_seed, n_tasks, tag) or the campaign
  /// refuses to resume.
  bool resume = false;
  /// Free-form campaign identity stamped into checkpoints, so a resume
  /// against the wrong campaign's file fails loudly.
  std::string tag;
};

enum class TaskStatus : std::uint8_t {
  kPending = 0,    ///< not yet run (only seen inside checkpoints)
  kOk = 1,         ///< first attempt succeeded
  kRetriedOk = 2,  ///< succeeded after at least one failed attempt
  kFailed = 3,     ///< exhausted attempts on kernel exceptions
  kTimedOut = 4,   ///< exhausted attempts on watchdog deadlines
};

[[nodiscard]] const char* task_status_name(TaskStatus s);

struct TaskOutcome {
  TaskStatus status = TaskStatus::kPending;
  int attempts = 0;
  std::string error;  ///< last failure message (empty when ok)

  friend bool operator==(const TaskOutcome&, const TaskOutcome&) = default;
};

struct ResilientResult {
  /// per_task slot i holds task i's result (zeros when quarantined);
  /// agg sums COMPLETED tasks only, recomputed in index order at the
  /// end so it is independent of thread scheduling and of resume.
  FarmResult result;
  std::vector<TaskOutcome> outcomes;       ///< one per task
  std::vector<std::size_t> quarantined;    ///< failed/timed-out indices
  std::size_t resumed_tasks = 0;           ///< prefilled from checkpoint
  long long retries = 0;                   ///< extra attempts spent

  [[nodiscard]] std::size_t completed() const {
    return outcomes.size() - quarantined.size();
  }
  /// Human-readable campaign summary (counts, quarantine list).
  [[nodiscard]] std::string report() const;
};

/// Run @p n_tasks trials of @p kernel (seeded exactly like
/// ScenarioFarm::run) under the resilience policy in @p opts.  Never
/// throws on kernel failures — they end up quarantined; throws
/// std::invalid_argument on bad options and xpp::SnapshotError on
/// checkpoint I/O or corruption.
[[nodiscard]] ResilientResult run_resilient(std::size_t n_tasks,
                                            std::uint64_t base_seed,
                                            const TrialKernel& kernel,
                                            const ResilientOptions& opts = {});

/// On-disk campaign checkpoint: completion map + per-task results,
/// CRC-framed like an array snapshot ("RSPCKPT1"; corruption throws
/// xpp::SnapshotError before any field is trusted).
struct CampaignCheckpoint {
  std::uint64_t base_seed = 0;
  std::uint64_t n_tasks = 0;
  std::string tag;
  long long retries = 0;
  /// Slot i describes task i; status kPending means "not yet run".
  std::vector<TaskOutcome> outcomes;
  std::vector<TrialResult> per_task;

  friend bool operator==(const CampaignCheckpoint&,
                         const CampaignCheckpoint&) = default;
};

[[nodiscard]] std::string encode_campaign_checkpoint(
    const CampaignCheckpoint& ck);
[[nodiscard]] CampaignCheckpoint decode_campaign_checkpoint(
    const std::string& bytes);
/// Atomic write (temp + rename): a concurrent reader or a resume after
/// SIGKILL sees either the previous complete checkpoint or this one.
void save_campaign_checkpoint(const std::string& path,
                              const CampaignCheckpoint& ck);
[[nodiscard]] CampaignCheckpoint load_campaign_checkpoint(
    const std::string& path);

}  // namespace rsp::farm

#include "src/farm/resilient.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

#include "src/common/rng.hpp"
#include "src/farm/queue.hpp"
#include "src/xpp/snapshot.hpp"

namespace rsp::farm {
namespace {

using Clock = std::chrono::steady_clock;

constexpr char kCheckpointMagic[8] = {'R', 'S', 'P', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint32_t kCheckpointVersion = 1;

/// One watchdogged kernel attempt.  The attempt thread owns copies of
/// everything it touches (kernel included) and publishes only into this
/// heap slot, so a deadline overrun can be abandoned by detaching: the
/// runaway thread keeps the slot alive through its shared_ptr and can
/// never reach campaign state.
struct AttemptSlot {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  TrialResult result;
  std::exception_ptr error;
};

struct AttemptOutcome {
  bool ok = false;
  bool timed_out = false;
  TrialResult result;
  std::string error;
};

AttemptOutcome run_attempt(const TrialKernel& kernel, std::uint64_t seed,
                           std::size_t index, double deadline_seconds) {
  AttemptOutcome out;
  if (deadline_seconds <= 0.0) {
    // No watchdog: run inline.
    try {
      out.result = kernel(seed, index);
      out.ok = true;
    } catch (const std::exception& e) {
      out.error = e.what();
    } catch (...) {
      out.error = "unknown exception";
    }
    return out;
  }

  auto slot = std::make_shared<AttemptSlot>();
  std::thread attempt([slot, kernel, seed, index] {
    TrialResult r;
    std::exception_ptr err;
    try {
      r = kernel(seed, index);
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(slot->m);
    slot->result = r;
    slot->error = err;
    slot->done = true;
    slot->cv.notify_all();
  });

  std::unique_lock<std::mutex> lock(slot->m);
  const bool finished = slot->cv.wait_for(
      lock, std::chrono::duration<double>(deadline_seconds),
      [&] { return slot->done; });
  if (!finished) {
    lock.unlock();
    attempt.detach();
    out.timed_out = true;
    std::ostringstream os;
    os << "deadline exceeded (" << deadline_seconds << " s)";
    out.error = os.str();
    return out;
  }
  if (slot->error) {
    try {
      std::rethrow_exception(slot->error);
    } catch (const std::exception& e) {
      out.error = e.what();
    } catch (...) {
      out.error = "unknown exception";
    }
  } else {
    out.result = slot->result;
    out.ok = true;
  }
  lock.unlock();
  attempt.join();
  return out;
}

void put_outcome(xpp::snap::Writer& w, const TaskOutcome& o,
                 const TrialResult& r) {
  w.u8(static_cast<std::uint8_t>(o.status));
  w.u32(static_cast<std::uint32_t>(o.attempts));
  w.str(o.error);
  w.u64(r.bits);
  w.u64(r.bit_errors);
  w.u64(r.frames);
  w.u64(r.frame_errors);
}

void get_outcome(xpp::snap::Reader& r, TaskOutcome& o, TrialResult& tr) {
  const std::uint8_t s = r.u8();
  if (s > static_cast<std::uint8_t>(TaskStatus::kTimedOut)) {
    throw xpp::SnapshotError("checkpoint: invalid task status " +
                             std::to_string(s));
  }
  o.status = static_cast<TaskStatus>(s);
  o.attempts = static_cast<int>(r.u32());
  o.error = r.str();
  tr.bits = r.u64();
  tr.bit_errors = r.u64();
  tr.frames = r.u64();
  tr.frame_errors = r.u64();
}

}  // namespace

const char* task_status_name(TaskStatus s) {
  switch (s) {
    case TaskStatus::kPending:   return "pending";
    case TaskStatus::kOk:        return "ok";
    case TaskStatus::kRetriedOk: return "retried-ok";
    case TaskStatus::kFailed:    return "failed";
    case TaskStatus::kTimedOut:  return "timed-out";
  }
  return "?";
}

std::string ResilientResult::report() const {
  std::ostringstream os;
  os << "campaign: " << outcomes.size() << " task(s), " << completed()
     << " completed, " << quarantined.size() << " quarantined, " << retries
     << " retried attempt(s), " << resumed_tasks << " resumed from checkpoint\n";
  for (const std::size_t i : quarantined) {
    const TaskOutcome& o = outcomes[i];
    os << "  quarantined task " << i << " [" << task_status_name(o.status)
       << ", " << o.attempts << " attempt(s)]: " << o.error << "\n";
  }
  return os.str();
}

std::string encode_campaign_checkpoint(const CampaignCheckpoint& ck) {
  xpp::snap::Writer w;
  w.u64(ck.base_seed);
  w.u64(ck.n_tasks);
  w.str(ck.tag);
  w.i64(ck.retries);
  for (std::uint64_t i = 0; i < ck.n_tasks; ++i) {
    put_outcome(w, ck.outcomes[static_cast<std::size_t>(i)],
                ck.per_task[static_cast<std::size_t>(i)]);
  }
  return xpp::snap::frame(kCheckpointMagic, kCheckpointVersion, w.bytes());
}

CampaignCheckpoint decode_campaign_checkpoint(const std::string& bytes) {
  const std::string_view payload =
      xpp::snap::unframe(kCheckpointMagic, kCheckpointVersion, bytes);
  xpp::snap::Reader r(payload);
  CampaignCheckpoint ck;
  ck.base_seed = r.u64();
  ck.n_tasks = r.u64();
  ck.tag = r.str();
  ck.retries = r.i64();
  ck.outcomes.resize(static_cast<std::size_t>(ck.n_tasks));
  ck.per_task.resize(static_cast<std::size_t>(ck.n_tasks));
  for (std::size_t i = 0; i < ck.outcomes.size(); ++i) {
    get_outcome(r, ck.outcomes[i], ck.per_task[i]);
  }
  if (!r.done()) {
    throw xpp::SnapshotError("checkpoint: " + std::to_string(r.remaining()) +
                             " trailing byte(s) after payload");
  }
  return ck;
}

void save_campaign_checkpoint(const std::string& path,
                              const CampaignCheckpoint& ck) {
  xpp::snap::write_file_atomic(path, encode_campaign_checkpoint(ck));
}

CampaignCheckpoint load_campaign_checkpoint(const std::string& path) {
  return decode_campaign_checkpoint(xpp::snap::read_file(path));
}

ResilientResult run_resilient(std::size_t n_tasks, std::uint64_t base_seed,
                              const TrialKernel& kernel,
                              const ResilientOptions& opts) {
  if (opts.max_attempts < 1) {
    throw std::invalid_argument("campaign: max_attempts must be >= 1; got " +
                                std::to_string(opts.max_attempts));
  }
  if (opts.deadline_seconds < 0.0) {
    throw std::invalid_argument("campaign: deadline_seconds must be >= 0");
  }
  if (opts.resume && opts.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "campaign: resume requires a checkpoint_path");
  }
  // Validates threads/queue_capacity and resolves the worker count.
  const ScenarioFarm farm(opts.farm);

  ResilientResult out;
  out.result.per_task.resize(n_tasks);
  out.outcomes.resize(n_tasks);
  const auto t0 = Clock::now();

  // state_mutex guards outcomes/per_task/retries for BOTH task
  // completion and checkpoint capture: a checkpoint reads every slot,
  // so per-slot ownership is not enough while it runs.
  std::mutex state_mutex;
  std::atomic<std::size_t> completed_count{0};

  if (opts.resume) {
    const CampaignCheckpoint ck =
        load_campaign_checkpoint(opts.checkpoint_path);
    if (ck.base_seed != base_seed || ck.n_tasks != n_tasks ||
        ck.tag != opts.tag) {
      throw xpp::SnapshotError(
          "checkpoint '" + opts.checkpoint_path +
          "' does not match this campaign (seed/tasks/tag " +
          std::to_string(ck.base_seed) + "/" + std::to_string(ck.n_tasks) +
          "/'" + ck.tag + "' vs " + std::to_string(base_seed) + "/" +
          std::to_string(n_tasks) + "/'" + opts.tag + "')");
    }
    for (std::size_t i = 0; i < n_tasks; ++i) {
      if (ck.outcomes[i].status == TaskStatus::kPending) continue;
      out.outcomes[i] = ck.outcomes[i];
      out.result.per_task[i] = ck.per_task[i];
      ++out.resumed_tasks;
    }
    out.retries = ck.retries;
    completed_count.store(out.resumed_tasks);
  }

  auto capture_checkpoint = [&] {
    // Caller holds state_mutex.
    CampaignCheckpoint ck;
    ck.base_seed = base_seed;
    ck.n_tasks = n_tasks;
    ck.tag = opts.tag;
    ck.retries = out.retries;
    ck.outcomes = out.outcomes;
    ck.per_task = out.result.per_task;
    return ck;
  };

  detail::BoundedQueue queue(opts.farm.queue_capacity);
  auto worker = [&] {
    std::size_t index = 0;
    while (queue.pop(index)) {
      const std::uint64_t seed = Rng::split(base_seed, index);
      TaskOutcome oc;
      TrialResult tr;
      bool last_timed_out = false;
      for (int attempt = 1; attempt <= opts.max_attempts; ++attempt) {
        const AttemptOutcome a =
            run_attempt(kernel, seed, index, opts.deadline_seconds);
        oc.attempts = attempt;
        if (a.ok) {
          oc.status = attempt == 1 ? TaskStatus::kOk : TaskStatus::kRetriedOk;
          oc.error.clear();
          tr = a.result;
          break;
        }
        oc.error = a.error;
        last_timed_out = a.timed_out;
      }
      if (oc.status == TaskStatus::kPending) {
        oc.status = last_timed_out ? TaskStatus::kTimedOut : TaskStatus::kFailed;
      }

      bool take_checkpoint = false;
      CampaignCheckpoint ck;
      {
        std::lock_guard<std::mutex> lock(state_mutex);
        out.outcomes[index] = oc;
        out.result.per_task[index] = tr;
        out.retries += oc.attempts - 1;
        const std::size_t done = completed_count.fetch_add(1) + 1;
        if (!opts.checkpoint_path.empty() && opts.checkpoint_every > 0 &&
            done % opts.checkpoint_every == 0 && done < n_tasks) {
          ck = capture_checkpoint();
          take_checkpoint = true;
        }
      }
      // File I/O outside the state lock; write_file_atomic renames, so
      // overlapping writers each publish a complete checkpoint and the
      // last rename wins.
      if (take_checkpoint) {
        save_campaign_checkpoint(opts.checkpoint_path, ck);
      }
    }
  };

  // Zero tasks spawn zero workers (an empty campaign still finalises
  // its — empty — aggregate and checkpoint below).
  const int workers = n_tasks < static_cast<std::size_t>(farm.threads())
                          ? static_cast<int>(n_tasks)
                          : farm.threads();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
  bool undispatched = false;
  for (std::size_t i = 0; i < n_tasks; ++i) {
    if (out.outcomes[i].status != TaskStatus::kPending) continue;  // resumed
    if (!queue.push(i)) {
      undispatched = true;  // close() raced the submit loop
      break;
    }
  }
  queue.close();
  for (auto& t : pool) t.join();
  if (undispatched) {
    throw FarmError(
        "farm: resilient campaign task was never dispatched (queue closed "
        "during push)");
  }

  // Order-independent finalisation: quarantine list and aggregate are
  // rebuilt serially in index order, so the end state is a pure
  // function of per-task outcomes — not of which thread ran what, and
  // not of how many sessions (resumes) it took to get here.
  for (std::size_t i = 0; i < n_tasks; ++i) {
    const TaskStatus s = out.outcomes[i].status;
    if (s == TaskStatus::kFailed || s == TaskStatus::kTimedOut) {
      out.quarantined.push_back(i);
      out.result.per_task[i] = TrialResult{};
    } else {
      out.result.agg.add(out.result.per_task[i]);
    }
  }
  if (!opts.checkpoint_path.empty()) {
    std::lock_guard<std::mutex> lock(state_mutex);
    save_campaign_checkpoint(opts.checkpoint_path, capture_checkpoint());
  }

  out.result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return out;
}

}  // namespace rsp::farm

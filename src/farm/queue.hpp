// Bounded MPMC work queue and failure bookkeeping shared by the farm
// drivers and the fleet session dispatcher.
//
// Extracted from farm.cpp so the plain farm (farm.cpp), the resilient
// campaign driver (resilient.cpp) and the fleet manager (src/fleet)
// dispatch from the same queue: the submitter blocks in push() while
// the queue is full (a million-trial campaign never materialises a
// million queue nodes), workers block in pop() while it is empty, and
// close() wakes everyone for shutdown.  FIFO hand-out order is part of
// the contract — the deterministic first-failure rule relies on task
// indices being dispatched in ascending order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <limits>
#include <map>
#include <mutex>
#include <string>

#include "src/farm/farm.hpp"

namespace rsp::farm::detail {

class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Enqueue @p index, blocking while the queue is full.  Returns false
  /// — and enqueues NOTHING — if the queue was closed before the push
  /// could complete.  Callers must check: a dropped push is a task that
  /// will never be dispatched, and ignoring it silently violates the
  /// exactly-once contract (a task submitted concurrently with close()
  /// used to vanish without a trace here).
  [[nodiscard]] bool push(std::size_t index) {
    std::unique_lock<std::mutex> lock(m_);
    not_full_.wait(lock, [&] { return q_.size() < capacity_ || closed_; });
    if (closed_) return false;
    q_.push_back(index);
    not_empty_.notify_one();
    return true;
  }

  /// False once the queue is closed and drained.
  bool pop(std::size_t& index) {
    std::unique_lock<std::mutex> lock(m_);
    not_empty_.wait(lock, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return false;
    index = q_.front();
    q_.pop_front();
    not_full_.notify_one();
    return true;
  }

  void close() {
    std::lock_guard<std::mutex> lock(m_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  std::mutex m_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<std::size_t> q_;
  std::size_t capacity_;
  bool closed_ = false;
};

inline constexpr std::size_t kNoFailure = std::numeric_limits<std::size_t>::max();

/// Deterministic first-failure bookkeeping.  Workers record every
/// failure they observe; the driver rethrows the one with the LOWEST
/// index.  The skip rule — a worker drops a popped index only when it
/// is ABOVE the current minimum failing index — makes the reported
/// index thread-order independent: the minimum only ever decreases and
/// is always the index of a task that actually failed, so the globally
/// lowest failing task L can never satisfy "index > minimum" and is
/// therefore always run, after which the minimum settles at L.
struct FailureTracker {
  std::atomic<std::size_t> min_failed{kNoFailure};
  std::mutex m;
  std::map<std::size_t, std::exception_ptr> errors;

  [[nodiscard]] bool should_skip(std::size_t index) const {
    return index > min_failed.load(std::memory_order_relaxed);
  }

  void record(std::size_t index) {
    {
      std::lock_guard<std::mutex> lock(m);
      errors.emplace(index, std::current_exception());
    }
    std::size_t cur = min_failed.load(std::memory_order_relaxed);
    while (index < cur &&
           !min_failed.compare_exchange_weak(cur, index,
                                             std::memory_order_relaxed)) {
    }
  }

  /// Rethrow the lowest-index failure as FarmError (no-op if none).
  void rethrow(const char* unit) {
    const std::size_t lowest = min_failed.load();
    if (lowest == kNoFailure) return;
    std::string detail = "unknown exception";
    try {
      std::rethrow_exception(errors.at(lowest));
    } catch (const std::exception& e) {
      detail = e.what();
    } catch (...) {
    }
    throw FarmError("farm: " + std::string(unit) + " " +
                    std::to_string(lowest) + " failed: " + detail);
  }
};

}  // namespace rsp::farm::detail

// Bounded MPMC work queue shared by the farm drivers.
//
// Extracted from farm.cpp so the plain farm (farm.cpp) and the
// resilient campaign driver (resilient.cpp) dispatch from the same
// queue: the submitter blocks in push() while the queue is full (a
// million-trial campaign never materialises a million queue nodes),
// workers block in pop() while it is empty, and close() wakes everyone
// for shutdown.  FIFO hand-out order is part of the contract — the
// deterministic first-failure rule in farm.cpp relies on task indices
// being dispatched in ascending order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

namespace rsp::farm::detail {

class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void push(std::size_t index) {
    std::unique_lock<std::mutex> lock(m_);
    not_full_.wait(lock, [&] { return q_.size() < capacity_ || closed_; });
    if (closed_) return;
    q_.push_back(index);
    not_empty_.notify_one();
  }

  /// False once the queue is closed and drained.
  bool pop(std::size_t& index) {
    std::unique_lock<std::mutex> lock(m_);
    not_empty_.wait(lock, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return false;
    index = q_.front();
    q_.pop_front();
    not_full_.notify_one();
    return true;
  }

  void close() {
    std::lock_guard<std::mutex> lock(m_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  std::mutex m_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<std::size_t> q_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace rsp::farm::detail

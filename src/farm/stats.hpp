// Streaming result aggregation for Monte-Carlo link trials.
//
// Every trial reports integer event counts (bits simulated / in error,
// frames simulated / in error).  Integer sums are associative and
// commutative, so the aggregate is bit-identical no matter which thread
// finished which task first — the property the determinism battery
// (tests/farm) pins down.  Confidence intervals use the Wilson score,
// which stays sane at the BER extremes (0 observed errors) where the
// normal approximation collapses.
#pragma once

#include <cstdint>

namespace rsp::farm {

/// Per-task result of one Monte-Carlo trial.  A trial may simulate one
/// frame (link benches) or several (terminal workloads); counts add.
struct TrialResult {
  std::uint64_t bits = 0;          ///< payload bits compared
  std::uint64_t bit_errors = 0;    ///< of which wrong
  std::uint64_t frames = 0;        ///< frames (or packets) attempted
  std::uint64_t frame_errors = 0;  ///< of which not error-free

  TrialResult& operator+=(const TrialResult& o) {
    bits += o.bits;
    bit_errors += o.bit_errors;
    frames += o.frames;
    frame_errors += o.frame_errors;
    return *this;
  }
  friend bool operator==(const TrialResult&, const TrialResult&) = default;
};

/// Two-sided binomial confidence interval.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Wilson score interval for @p errors successes in @p n Bernoulli
/// trials at critical value @p z (1.96 = 95%).  Returns {0,0} for n=0.
[[nodiscard]] Interval wilson_interval(std::uint64_t errors, std::uint64_t n,
                                       double z = 1.96);

/// Order-independent accumulator over TrialResults with derived rates.
class StreamingAggregate {
 public:
  void add(const TrialResult& r) { total_ += r; }

  [[nodiscard]] const TrialResult& total() const { return total_; }
  [[nodiscard]] double ber() const {
    return total_.bits ? static_cast<double>(total_.bit_errors) /
                             static_cast<double>(total_.bits)
                       : 0.0;
  }
  [[nodiscard]] double fer() const {
    return total_.frames ? static_cast<double>(total_.frame_errors) /
                               static_cast<double>(total_.frames)
                         : 0.0;
  }
  [[nodiscard]] Interval ber_ci(double z = 1.96) const {
    return wilson_interval(total_.bit_errors, total_.bits, z);
  }
  [[nodiscard]] Interval fer_ci(double z = 1.96) const {
    return wilson_interval(total_.frame_errors, total_.frames, z);
  }

 private:
  TrialResult total_;
};

}  // namespace rsp::farm

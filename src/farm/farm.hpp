// ScenarioFarm: a thread-pool Monte-Carlo execution engine for
// independent link-level trials.
//
// The cycle simulator, the channel models and the golden receiver
// chains are all single-threaded per instance — parallelism comes from
// running many *independent* trials at once, one complete simulator /
// channel / receiver stack per task (share-nothing; see DESIGN.md
// "Scenario farm").  Determinism is preserved under any thread count
// and any scheduling order by construction:
//
//   * task i draws all of its randomness from Rng(Rng::split(base, i)),
//     a pure function of the base seed and the task index;
//   * per-task results land in slot i of a pre-sized vector, so the
//     recorded outcome of task i never depends on who ran it;
//   * the streaming aggregate sums integer counts, which commute.
//
// The differential battery in tests/farm enforces all three.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/farm/stats.hpp"

namespace rsp::xpp {
class BatchProgramCache;
class Simulator;
}  // namespace rsp::xpp

namespace rsp::farm {

/// Thrown when a farm run fails: wraps the kernel exception of the
/// LOWEST failing task index, regardless of which thread observed a
/// failure first — the error a campaign reports is a pure function of
/// (kernel, base_seed, n_tasks), never of thread scheduling.
class FarmError : public std::runtime_error {
 public:
  explicit FarmError(const std::string& what) : std::runtime_error(what) {}
};

/// One Monte-Carlo trial.  @p task_seed is Rng::split(base, task_index)
/// — the kernel must take ALL randomness from it and touch no shared
/// mutable state (each invocation builds its own simulator/channel).
using TrialKernel =
    std::function<TrialResult(std::uint64_t task_seed, std::size_t task_index)>;

struct FarmOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  /// Negative is rejected at ScenarioFarm construction.
  int threads = 0;
  /// Bound on the task queue: the submitting thread blocks once this
  /// many task indices are in flight, so a million-trial campaign never
  /// materialises a million queue nodes.  Zero is rejected at
  /// ScenarioFarm construction (it would deadlock the submitter).
  std::size_t queue_capacity = 256;
};

/// Outcome of one farm run.
struct FarmResult {
  /// Result of task i at index i — identical for every thread count.
  std::vector<TrialResult> per_task;
  /// Streaming integer aggregate of per_task (also order-independent).
  StreamingAggregate agg;
  double wall_seconds = 0.0;
  /// Aggregate frames over wall-clock — the scaling metric BENCH_farm
  /// tracks.
  [[nodiscard]] double frames_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(agg.total().frames) / wall_seconds
               : 0.0;
  }
};

/// One Monte-Carlo trial driven at cycle granularity so several
/// identical trials can replay in lockstep (src/xpp/batch.hpp).  The
/// farm owns the cycle loop; the trial only exposes its simulator and
/// its boundary work:
///
///   loop: c = next_cycles()   // feed inputs / drain outputs, then
///         run c cycles        //   ask for the next quantum
///   until next_cycles() == 0, then finish().
///
/// Running a quantum in slices composes (step() is associative), so a
/// batched trial's trajectory is bit-identical to running it alone —
/// the property tests/farm/test_farm_batch.cpp pins down.
class BatchedTrial {
 public:
  virtual ~BatchedTrial() = default;

  /// The trial's simulator (kCompiled scheduler for batching to pay
  /// off; any scheduler is correct).  Must stay valid until finish().
  virtual xpp::Simulator& sim() = 0;

  /// Boundary hook: perform feeds/drains against sim(), then return
  /// how many cycles to advance before the next boundary (> 0), or 0
  /// when the trial is complete.
  virtual long long next_cycles() = 0;

  /// Final result; called exactly once, after next_cycles() returned 0.
  virtual TrialResult finish() = 0;
};

/// Builds the trial for one task index (seeded like a TrialKernel).
using BatchedTrialFactory = std::function<std::unique_ptr<BatchedTrial>(
    std::uint64_t task_seed, std::size_t task_index)>;

struct BatchedTaskSpec {
  /// Lanes per farm task: consecutive task indices [g*width,(g+1)*width)
  /// form one lockstep group on one worker thread.
  int width = 8;
  /// CRC-32 of the loaded configuration — the cache key half that
  /// pre-partitions lanes before any structural compare.  All trials
  /// built from the same config should pass the same value.
  std::uint32_t config_crc = 0;
  /// Optional shared program cache so identical terminals compile once
  /// across the whole run; nullptr = the run creates its own.
  xpp::BatchProgramCache* cache = nullptr;
};

/// Batch-engine counters summed over every group (cross-checks that
/// lockstep replay actually happened; see xpp::BatchedReplayEngine).
struct BatchedFarmStats {
  long long batch_ticks = 0;
  long long batched_cycles = 0;
  long long scalar_cycles = 0;
  long long guard_exits = 0;
  long long join_rejects = 0;
  long long gathers = 0;
};

struct BatchedFarmResult {
  FarmResult result;
  BatchedFarmStats batch;
};

class ScenarioFarm {
 public:
  /// Throws std::invalid_argument for negative threads or a zero
  /// queue capacity — misconfiguration fails loudly at construction,
  /// not as a hang or a silent clamp inside run().
  explicit ScenarioFarm(FarmOptions opts = {});

  /// Run @p n_tasks trials of @p kernel, task i seeded with
  /// Rng::split(base_seed, i).  Blocks until all tasks finish.
  /// Kernel exceptions propagate as FarmError naming the LOWEST failing
  /// task index (deterministic at any thread count: every task below
  /// that index still runs; only tasks above a known failure are
  /// skipped).
  [[nodiscard]] FarmResult run(std::size_t n_tasks, std::uint64_t base_seed,
                               const TrialKernel& kernel) const;

  /// Batched task kind: trials are built per task index exactly as in
  /// run() (same Rng::split seeding, same per-slot result writes) but
  /// grouped spec.width at a time into a lockstep SoA replay engine.
  /// Deterministic at any thread count: group membership is a pure
  /// function of the task index, and lanes share no data.
  [[nodiscard]] BatchedFarmResult run_batched(
      std::size_t n_tasks, std::uint64_t base_seed,
      const BatchedTrialFactory& factory,
      const BatchedTaskSpec& spec = {}) const;

  /// Resolved worker count (>= 1).
  [[nodiscard]] int threads() const { return threads_; }

 private:
  int threads_ = 1;
  std::size_t queue_capacity_ = 256;
};

/// Serial reference: the loop the farm must be bit-identical to.
[[nodiscard]] FarmResult run_serial(std::size_t n_tasks,
                                    std::uint64_t base_seed,
                                    const TrialKernel& kernel);

}  // namespace rsp::farm

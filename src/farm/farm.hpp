// ScenarioFarm: a thread-pool Monte-Carlo execution engine for
// independent link-level trials.
//
// The cycle simulator, the channel models and the golden receiver
// chains are all single-threaded per instance — parallelism comes from
// running many *independent* trials at once, one complete simulator /
// channel / receiver stack per task (share-nothing; see DESIGN.md
// "Scenario farm").  Determinism is preserved under any thread count
// and any scheduling order by construction:
//
//   * task i draws all of its randomness from Rng(Rng::split(base, i)),
//     a pure function of the base seed and the task index;
//   * per-task results land in slot i of a pre-sized vector, so the
//     recorded outcome of task i never depends on who ran it;
//   * the streaming aggregate sums integer counts, which commute.
//
// The differential battery in tests/farm enforces all three.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/farm/stats.hpp"

namespace rsp::farm {

/// One Monte-Carlo trial.  @p task_seed is Rng::split(base, task_index)
/// — the kernel must take ALL randomness from it and touch no shared
/// mutable state (each invocation builds its own simulator/channel).
using TrialKernel =
    std::function<TrialResult(std::uint64_t task_seed, std::size_t task_index)>;

struct FarmOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  int threads = 0;
  /// Bound on the task queue: the submitting thread blocks once this
  /// many task indices are in flight, so a million-trial campaign never
  /// materialises a million queue nodes.
  std::size_t queue_capacity = 256;
};

/// Outcome of one farm run.
struct FarmResult {
  /// Result of task i at index i — identical for every thread count.
  std::vector<TrialResult> per_task;
  /// Streaming integer aggregate of per_task (also order-independent).
  StreamingAggregate agg;
  double wall_seconds = 0.0;
  /// Aggregate frames over wall-clock — the scaling metric BENCH_farm
  /// tracks.
  [[nodiscard]] double frames_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(agg.total().frames) / wall_seconds
               : 0.0;
  }
};

class ScenarioFarm {
 public:
  explicit ScenarioFarm(FarmOptions opts = {});

  /// Run @p n_tasks trials of @p kernel, task i seeded with
  /// Rng::split(base_seed, i).  Blocks until all tasks finish.
  /// A kernel exception propagates to the caller (remaining tasks are
  /// drained without being run).
  [[nodiscard]] FarmResult run(std::size_t n_tasks, std::uint64_t base_seed,
                               const TrialKernel& kernel) const;

  /// Resolved worker count (>= 1).
  [[nodiscard]] int threads() const { return threads_; }

 private:
  int threads_ = 1;
  std::size_t queue_capacity_ = 256;
};

/// Serial reference: the loop the farm must be bit-identical to.
[[nodiscard]] FarmResult run_serial(std::size_t n_tasks,
                                    std::uint64_t base_seed,
                                    const TrialKernel& kernel);

}  // namespace rsp::farm

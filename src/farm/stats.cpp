#include "src/farm/stats.hpp"

#include <cmath>

namespace rsp::farm {

Interval wilson_interval(std::uint64_t errors, std::uint64_t n, double z) {
  if (n == 0) return {};
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(errors) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double centre = p + z2 / (2.0 * nn);
  const double margin =
      z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
  Interval ci;
  ci.lo = (centre - margin) / denom;
  ci.hi = (centre + margin) / denom;
  if (ci.lo < 0.0) ci.lo = 0.0;
  if (ci.hi > 1.0) ci.hi = 1.0;
  return ci;
}

}  // namespace rsp::farm

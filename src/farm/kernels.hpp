// Link-level Monte-Carlo trial kernels shared by the BER/FER benches,
// the scaling bench and the determinism battery.
//
// Each call builds a complete, private transmit/channel/receive stack
// and takes all randomness from the given task seed — the share-nothing
// contract ScenarioFarm relies on.  Formerly these lived (twice,
// drifting apart) inside bench_ber_curves.cpp.
#pragma once

#include <cstdint>

#include "src/farm/stats.hpp"

namespace rsp::farm::kernels {

/// W-CDMA rake link trial: one DPCH frame through a 3-path static
/// multipath channel, raw BER after despreading/combining.
struct RakeTrial {
  int fingers = 3;         ///< paths combined (1 = no diversity)
  double esn0_db = 0.0;    ///< chip-level Es/N0
  int symbols = 192;       ///< DPCH symbols per trial (SF 64 chips each)
  /// Stop after transmit + channel (no receiver): isolates the PHY
  /// substrate share of trial wall-clock for the benches.  The result
  /// then carries only frames=1 and the sample count in bits.
  bool substrate_only = false;
  /// Frame counts as errored when any payload bit is wrong.
  [[nodiscard]] TrialResult operator()(std::uint64_t seed) const;
};

/// 802.11a OFDM link trial: one PPDU through AWGN, decoded end-to-end
/// (sync, SIGNAL, FFT, equalise, Viterbi, descramble).
struct WlanTrial {
  int mbps = 6;              ///< rate mode (6..54)
  double esn0_db = 10.0;     ///< sample-level Es/N0
  std::size_t psdu_bits = 800;
  /// Stop after transmit + AWGN (no receiver): isolates the PHY
  /// substrate share of trial wall-clock for the benches.
  bool substrate_only = false;
  [[nodiscard]] TrialResult operator()(std::uint64_t seed) const;
};

}  // namespace rsp::farm::kernels

// Data rate vs. mobility envelope (Figure 2).
//
// The paper plots the service envelope of each access protocol:
// W-CDMA serves "a few hundred kbit/s at high mobility up to 2 Mbit/s
// in stationary environments"; 802.11a / HIPERLAN-2 reach 54 Mbit/s in
// stationary and low-mobility environments.  The bench reproduces the
// published envelope and backs the WLAN side with measured link
// simulations (highest rate mode whose BER survives a given Doppler).
#pragma once

#include <string>
#include <vector>

namespace rsp::sdr {

/// Mobility classes of Figure 2's y-axis.
enum class Mobility { kIndoorStationary, kIndoorWalking, kOutdoorWalking,
                      kOutdoorVehicle };

[[nodiscard]] const char* mobility_name(Mobility m);

/// Representative speed (m/s) for a mobility class.
[[nodiscard]] double mobility_speed(Mobility m);

struct RateEnvelope {
  std::string protocol;
  Mobility mobility = Mobility::kIndoorStationary;
  double rate_mbps = 0.0;  ///< achievable data rate at this mobility
};

/// The published Figure 2 envelope.
[[nodiscard]] std::vector<RateEnvelope> figure2_envelope();

}  // namespace rsp::sdr

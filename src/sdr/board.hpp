// SDR evaluation board (Figure 11) and multi-standard time slicing.
//
// The board couples a MIPS 4Kc-class microcontroller (housekeeping),
// a DSP slot, a streaming FPGA for data routing / dedicated hardware,
// and the XPP-64A reconfigurable array.  The TimeSlicer realizes the
// multi-link claim: "By time-slicing the processing of both protocols
// over the same hardware, a large savings in the resources required
// can be achieved" (Section 3).
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/dsp/dsp.hpp"
#include "src/xpp/manager.hpp"

namespace rsp::xpp {
class FaultInjector;
}  // namespace rsp::xpp

namespace rsp::sdr {

class SdrBoard {
 public:
  explicit SdrBoard(xpp::ArrayGeometry geom = {},
                    xpp::SchedulerKind sched = xpp::SchedulerKind::kEventDriven)
      : array_(geom, sched), dsp_(dsp::kDspClockHz), uc_(/*MIPS 4Kc*/ 100.0e6) {}

  xpp::ConfigurationManager& array() { return array_; }
  [[nodiscard]] const xpp::ConfigurationManager& array() const {
    return array_;
  }
  dsp::DspModel& dsp() { return dsp_; }
  [[nodiscard]] const dsp::DspModel& dsp() const { return dsp_; }
  dsp::DspModel& microcontroller() { return uc_; }
  [[nodiscard]] const dsp::DspModel& microcontroller() const { return uc_; }

  /// Account words moved through the streaming-FPGA crossbar.  The
  /// counter is monotone: a negative delta would drive the total
  /// negative with no diagnostic, and board snapshots would then
  /// round-trip the corrupt value forever.
  void fpga_route(long long words) {
    if (words < 0) {
      throw std::invalid_argument(
          "SdrBoard::fpga_route: negative word count " +
          std::to_string(words));
    }
    fpga_words_ += words;
  }
  [[nodiscard]] long long fpga_words_routed() const { return fpga_words_; }

  /// Snapshot-restore hook: overwrite the crossbar accounting.
  void restore_fpga_words(long long words) { fpga_words_ = words; }

 private:
  xpp::ConfigurationManager array_;
  dsp::DspModel dsp_;
  dsp::DspModel uc_;
  long long fpga_words_ = 0;
};

/// Bit-exact board snapshot: DSP and microcontroller accounting, the
/// FPGA routing counter, and the complete array snapshot
/// (src/xpp/snapshot.hpp) nested as a CRC-framed blob.  Same save/
/// restore contract as the array layer: restore into a freshly
/// constructed board with the snapshot's geometry and scheduler, or use
/// restore_board_snapshot_new.  Throws xpp::SnapshotError on corruption
/// or mismatch.
[[nodiscard]] std::string save_board_snapshot(
    const SdrBoard& board, const xpp::FaultInjector* injector = nullptr);
void restore_board_snapshot(SdrBoard& board, const std::string& bytes,
                            xpp::FaultInjector* injector = nullptr);
[[nodiscard]] std::unique_ptr<SdrBoard> restore_board_snapshot_new(
    const std::string& bytes, xpp::FaultInjector* injector = nullptr);

/// Record of one processing slice on the shared array.
struct SliceRecord {
  std::string name;
  long long cycles = 0;         ///< total array cycles in the slice
  long long config_cycles = 0;  ///< cycles spent (re)configuring
  int peak_alu_cells = 0;       ///< ALU-PAEs in use during the slice
  int peak_ram_cells = 0;
};

class TimeSlicer {
 public:
  explicit TimeSlicer(xpp::ConfigurationManager& mgr) : mgr_(mgr) {}

  /// Execute @p body as one named slice; resource/config/cycle deltas
  /// are recorded.  The body receives the shared manager and must
  /// release everything it loads (asserted).
  SliceRecord slice(const std::string& name,
                    const std::function<void(xpp::ConfigurationManager&)>& body);

  [[nodiscard]] const std::vector<SliceRecord>& history() const {
    return history_;
  }

  /// Total cycles across slices and the share spent reconfiguring.
  [[nodiscard]] long long total_cycles() const;
  [[nodiscard]] long long total_config_cycles() const;
  [[nodiscard]] double config_overhead() const;

  /// Peak simultaneous ALU demand across slices vs. the sum a
  /// non-shared (one array per protocol) design would need.
  [[nodiscard]] int peak_alu_cells() const;
  [[nodiscard]] int sum_alu_cells() const;

 private:
  xpp::ConfigurationManager& mgr_;
  std::vector<SliceRecord> history_;
};

}  // namespace rsp::sdr

#include "src/sdr/partitioning.hpp"

#include "src/dedhw/umts_scrambler.hpp"
#include "src/phy/ofdm_tx.hpp"

namespace rsp::sdr {

const char* resource_name(Resource r) {
  switch (r) {
    case Resource::kReconfigurable: return "reconfigurable";
    case Resource::kDedicated:      return "dedicated";
    case Resource::kDsp:            return "DSP";
  }
  return "?";
}

std::vector<TaskLoad> rake_partitioning(int virtual_fingers) {
  const double chip_mops = dedhw::kChipRateHz / 1.0e6;
  const double f = static_cast<double>(virtual_fingers);
  // Figure 4 assignment.
  return {
      // Word-level streaming datapath -> reconfigurable array.
      {"de-scrambling", Resource::kReconfigurable, 7.0 * f * chip_mops},
      {"de-spreading", Resource::kReconfigurable, 4.0 * f * chip_mops},
      {"channel correction", Resource::kReconfigurable, 0.5 * f * chip_mops},
      {"combining", Resource::kReconfigurable, 0.25 * f * chip_mops},
      // Bit-level continuous generators -> dedicated hardware.
      {"scrambling code generation", Resource::kDedicated, 2.0 * chip_mops},
      {"spreading code generation", Resource::kDedicated, 1.0 * chip_mops},
      // Control-flow tasks -> DSP.
      {"pilot acquisition (path search)", Resource::kDsp, 4.0 * chip_mops},
      {"channel estimation", Resource::kDsp, 0.6 * f * chip_mops},
      {"control & synchronization", Resource::kDsp, 0.2 * f * chip_mops},
  };
}

std::vector<TaskLoad> ofdm_partitioning(int mbps) {
  const auto& m = phy::rate_mode(mbps);
  const double sym_mops = 0.25;  // 250 ksym/s in Mops units per op/symbol
  const double fft_ops = 3.0 * 16.0 * (4.0 * 6.0 + 8.0 * 2.0);
  const double demod_ops = 48.0 * (8.0 + 4.0 * bits_per_symbol(m.mod));
  const double viterbi_ops = static_cast<double>(m.ndbps) * 128.0;
  // Figure 8 assignment.
  return {
      // RF/AD -> dedicated (not modelled as ops).
      {"RF receiver / A-D", Resource::kDedicated, 0.0},
      // Reconfigurable processor.
      {"down-sampling", Resource::kReconfigurable, 40.0},   // 40 Msps decimate
      {"framing & sync (preamble)", Resource::kReconfigurable,
       512.0 * sym_mops},
      {"FFT64", Resource::kReconfigurable, fft_ops * sym_mops},
      {"demodulation", Resource::kReconfigurable, demod_ops * sym_mops},
      {"descrambler", Resource::kReconfigurable,
       static_cast<double>(m.ndbps) * sym_mops},
      // Dedicated hardware.
      {"Viterbi decoder", Resource::kDedicated, viterbi_ops * sym_mops},
      // DSP / microprocessor.
      {"layer-2 processing", Resource::kDsp, 50.0},
      {"configuration control", Resource::kDsp, 5.0},
  };
}

double total_mops(const std::vector<TaskLoad>& tasks, Resource r) {
  double sum = 0.0;
  for (const auto& t : tasks) {
    if (t.resource == r) sum += t.mops;
  }
  return sum;
}

}  // namespace rsp::sdr

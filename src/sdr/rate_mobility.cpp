#include "src/sdr/rate_mobility.hpp"

namespace rsp::sdr {

const char* mobility_name(Mobility m) {
  switch (m) {
    case Mobility::kIndoorStationary: return "indoor/stationary";
    case Mobility::kIndoorWalking:    return "indoor/on foot";
    case Mobility::kOutdoorWalking:   return "outdoor/on foot";
    case Mobility::kOutdoorVehicle:   return "outdoor/vehicle";
  }
  return "?";
}

double mobility_speed(Mobility m) {
  switch (m) {
    case Mobility::kIndoorStationary: return 0.0;
    case Mobility::kIndoorWalking:    return 1.5;
    case Mobility::kOutdoorWalking:   return 1.5;
    case Mobility::kOutdoorVehicle:   return 33.0;  // ~120 km/h
  }
  return 0.0;
}

std::vector<RateEnvelope> figure2_envelope() {
  return {
      {"GSM", Mobility::kOutdoorVehicle, 0.0096},
      {"GSM", Mobility::kIndoorStationary, 0.0096},
      {"EDGE", Mobility::kOutdoorVehicle, 0.2},
      {"EDGE", Mobility::kIndoorStationary, 0.384},
      {"UMTS", Mobility::kOutdoorVehicle, 0.384},
      {"UMTS", Mobility::kOutdoorWalking, 0.384},
      {"UMTS", Mobility::kIndoorStationary, 2.0},
      {"HIPERLAN/2", Mobility::kIndoorWalking, 54.0},
      {"HIPERLAN/2", Mobility::kIndoorStationary, 54.0},
      {"IEEE 802.11a", Mobility::kIndoorWalking, 54.0},
      {"IEEE 802.11a", Mobility::kIndoorStationary, 54.0},
  };
}

}  // namespace rsp::sdr

#include "src/sdr/area_model.hpp"

namespace rsp::sdr {

AreaBreakdown AreaModel::area(const xpp::ArrayGeometry& g) {
  AreaBreakdown a;
  a.alu_pae_mm2 = kAluPaeMm2 * g.alu_count();
  a.ram_pae_mm2 = kRamPaeMm2 * g.ram_count();
  a.io_mm2 = kIoPortMm2 * (g.io_channels / 2);
  a.config_manager_mm2 = kConfigMgrMm2;
  const double core =
      a.alu_pae_mm2 + a.ram_pae_mm2 + a.io_mm2 + a.config_manager_mm2;
  a.routing_overhead_mm2 = core * kRoutingFactor;
  a.total_mm2 = core + a.routing_overhead_mm2;
  return a;
}

double AreaModel::power_mw(const xpp::ArrayGeometry& g, long long fires,
                           long long cycles, double clock_hz) {
  if (cycles <= 0) return 0.0;
  const double seconds = static_cast<double>(cycles) / clock_hz;
  // Mixed ALU/RAM activity: weight by array composition.
  const double ram_share =
      static_cast<double>(g.ram_count()) /
      static_cast<double>(g.ram_count() + g.alu_count());
  const double pj_per_fire =
      kAluFirePj * (1.0 - ram_share) + kRamFirePj * ram_share;
  const double dynamic_mw =
      static_cast<double>(fires) * pj_per_fire * 1.0e-12 / seconds * 1.0e3;
  const double leakage_mw = kLeakageMwPerMm2 * area(g).total_mm2;
  return dynamic_mw + leakage_mw;
}

}  // namespace rsp::sdr

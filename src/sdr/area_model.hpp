// Silicon area / power model of the XPP64A (Figure 12).
//
// Figure 12 is a die plot of the XPP64A-1 on the STMicroelectronics
// HCMOS9 0.13 um process (110 nm physical gate length, 6-8 Cu metal
// layers, dual-Vt).  We cannot reproduce silicon; instead this model
// reproduces the figure's quantitative content as calibrated
// per-element area/power estimates so experiments can report die area
// and activity-based power for any configuration.  Constants are
// engineering estimates for a 24-bit datapath PAE with local routing
// on a 130 nm process; DESIGN.md records the substitution.
#pragma once

#include "src/xpp/array.hpp"
#include "src/xpp/sim.hpp"

namespace rsp::sdr {

struct AreaBreakdown {
  double alu_pae_mm2 = 0.0;
  double ram_pae_mm2 = 0.0;
  double io_mm2 = 0.0;
  double config_manager_mm2 = 0.0;
  double routing_overhead_mm2 = 0.0;
  double total_mm2 = 0.0;
};

class AreaModel {
 public:
  // Per-element estimates (mm^2, 130 nm).
  static constexpr double kAluPaeMm2 = 0.22;   ///< 24-bit ALU + regs + routing
  static constexpr double kRamPaeMm2 = 0.30;   ///< 512x24 dual-port SRAM + ctl
  static constexpr double kIoPortMm2 = 0.15;   ///< dual-channel I/O port
  static constexpr double kConfigMgrMm2 = 1.2; ///< configuration manager + bus
  static constexpr double kRoutingFactor = 0.18;  ///< global routing overhead

  // Dynamic energy per element activation (pJ at 1.2 V, 130 nm).
  static constexpr double kAluFirePj = 18.0;
  static constexpr double kRamFirePj = 30.0;
  static constexpr double kLeakageMwPerMm2 = 0.8;  ///< dual-Vt leakage

  /// Die area for a given geometry.
  [[nodiscard]] static AreaBreakdown area(const xpp::ArrayGeometry& g);

  /// Average power (mW) for a workload: @p fires object activations
  /// over @p cycles at @p clock_hz, on a die of @p geometry.
  [[nodiscard]] static double power_mw(const xpp::ArrayGeometry& g,
                                       long long fires, long long cycles,
                                       double clock_hz);
};

}  // namespace rsp::sdr

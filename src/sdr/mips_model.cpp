#include "src/sdr/mips_model.hpp"

#include "src/dedhw/umts_scrambler.hpp"
#include "src/phy/ofdm_tx.hpp"
#include "src/rake/scenario.hpp"

namespace rsp::sdr {
namespace {

// --- bottom-up operation counts from the implemented datapaths ---

// Rake finger, per chip (golden.hpp chain): scrambling-code mux (1),
// complex multiply 4 mul + 2 add (6), OVSF multiply-accumulate on I/Q
// (4), counters/control (1).
constexpr double kFingerOpsPerChip = 12.0;
// Path searcher: delay-correlation, 8 ops per lag-chip, continuously
// re-run over the search window with ~50% duty cycle.
constexpr double kSearchOpsPerChip = 8.0 * 0.5;
// Channel estimation + correction + combining, per chip equivalent.
constexpr double kEstimateOpsPerChip = 3.0;
// Downlink channel decoding (convolutional/turbo class), ops per
// information bit at the 2 Mbit/s peak rate.
constexpr double kUmtsDecodeOpsPerBit = 900.0;
constexpr double kUmtsPeakBitRate = 2.0e6;

// OFDM symbol rate: 250 ksym/s (4 us symbols).
constexpr double kOfdmSymRate = 250.0e3;
// FFT64 radix-4: 3 stages x 16 butterflies x (4 cmul + 8 cadd).
constexpr double kFftOpsPerSymbol = 3.0 * 16.0 * (4.0 * 6.0 + 8.0 * 2.0);
// Equalize 48 carriers (cmul + scale) + pilot phase tracking.
constexpr double kEqOpsPerSymbol = 48.0 * 8.0 + 64.0;
// Preamble/sync correlators amortized per symbol.
constexpr double kSyncOpsPerSymbol = 512.0;
// Viterbi K=7: 64 states x 2 ACS ops per trellis step.
constexpr double kViterbiOpsPerStep = 64.0 * 2.0;

}  // namespace

double umts_rake_mips(int virtual_fingers) {
  const double chip_ops =
      (kFingerOpsPerChip * virtual_fingers + kSearchOpsPerChip * 128.0 +
       kEstimateOpsPerChip * virtual_fingers) *
      dedhw::kChipRateHz;
  const double decode_ops = kUmtsDecodeOpsPerBit * kUmtsPeakBitRate;
  return (chip_ops + decode_ops) / 1.0e6;
}

double ofdm_wlan_mips(int mbps) {
  const auto& m = phy::rate_mode(mbps);
  const double demap_ops = 48.0 * bits_per_symbol(m.mod) * 4.0;
  const double viterbi_ops =
      static_cast<double>(m.ndbps) * kViterbiOpsPerStep;
  const double per_symbol = kFftOpsPerSymbol + kEqOpsPerSymbol +
                            kSyncOpsPerSymbol + demap_ops + viterbi_ops +
                            static_cast<double>(m.ncbps);  // deinterleave
  return per_symbol * kOfdmSymRate / 1.0e6;
}

std::vector<ProtocolMips> figure1_series() {
  // GSM: 270.8 kbit/s burst rate, 16-state equalizer + speech codec.
  const double gsm = 270.8e3 * 30.0 / 1.0e6;
  // GPRS/HSCSD: up to 8 timeslots of GSM-class processing + RLC/MAC.
  const double gprs = 8.0 * gsm + 25.0;
  // EDGE: 8-PSK soft equalization roughly 10x the GPRS complexity
  // (higher-order modulation, incremental redundancy).
  const double edge = 10.0 * gprs;
  return {
      {"GSM", 10.0, gsm, 0.0096},
      {"GPRS/HSCSD", 100.0, gprs, 0.1152},
      {"EDGE", 1000.0, edge, 0.384},
      {"UMTS/WCDMA", 10000.0, umts_rake_mips(rake::kMaxVirtualFingers), 2.0},
      {"OFDM WLAN", 5000.0, ofdm_wlan_mips(54), 54.0},
  };
}

}  // namespace rsp::sdr

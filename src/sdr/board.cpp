#include "src/sdr/board.hpp"

#include <algorithm>
#include <stdexcept>

namespace rsp::sdr {

SliceRecord TimeSlicer::slice(
    const std::string& name,
    const std::function<void(xpp::ConfigurationManager&)>& body) {
  SliceRecord rec;
  rec.name = name;
  const long long cycles0 = mgr_.sim().cycle();
  const long long cfg0 = mgr_.total_config_cycles();
  const int alu_before = mgr_.resources().used_alu_cells();
  mgr_.resources().reset_peaks();

  body(mgr_);

  rec.cycles = mgr_.sim().cycle() - cycles0;
  rec.config_cycles = mgr_.total_config_cycles() - cfg0;
  rec.peak_alu_cells = mgr_.resources().peak_alu_cells();
  rec.peak_ram_cells = mgr_.resources().peak_ram_cells();
  if (mgr_.resources().used_alu_cells() != alu_before) {
    throw std::logic_error("TimeSlicer: slice '" + name +
                           "' leaked array resources");
  }
  history_.push_back(rec);
  return rec;
}

long long TimeSlicer::total_cycles() const {
  long long n = 0;
  for (const auto& r : history_) n += r.cycles;
  return n;
}

long long TimeSlicer::total_config_cycles() const {
  long long n = 0;
  for (const auto& r : history_) n += r.config_cycles;
  return n;
}

double TimeSlicer::config_overhead() const {
  const long long t = total_cycles();
  return t > 0 ? static_cast<double>(total_config_cycles()) /
                     static_cast<double>(t)
               : 0.0;
}

int TimeSlicer::peak_alu_cells() const {
  int peak = 0;
  for (const auto& r : history_) peak = std::max(peak, r.peak_alu_cells);
  return peak;
}

int TimeSlicer::sum_alu_cells() const {
  // A dedicated-hardware design provisions every protocol's peak
  // simultaneously; sum the distinct protocols' peaks.
  int sum = 0;
  std::vector<std::string> seen;
  for (const auto& r : history_) {
    if (std::find(seen.begin(), seen.end(), r.name) != seen.end()) continue;
    seen.push_back(r.name);
    int peak = 0;
    for (const auto& q : history_) {
      if (q.name == r.name) peak = std::max(peak, q.peak_alu_cells);
    }
    sum += peak;
  }
  return sum;
}

}  // namespace rsp::sdr

#include "src/sdr/board.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/xpp/snapshot.hpp"

namespace rsp::sdr {

namespace {

constexpr char kBoardMagic[8] = {'R', 'S', 'P', 'B', 'O', 'R', 'D', '1'};
constexpr std::uint32_t kBoardVersion = 1;

void put_accounting(xpp::snap::Writer& w, const dsp::DspModel& m) {
  w.u32(static_cast<std::uint32_t>(m.tasks().size()));
  for (const auto& [name, st] : m.tasks()) {
    w.str(name);
    w.i64(st.instructions);
    w.i64(st.cycles);
  }
  w.i64(m.total_instructions());
  w.i64(m.total_cycles());
}

void get_accounting(xpp::snap::Reader& r, dsp::DspModel& m) {
  std::map<std::string, dsp::DspModel::TaskStats> tasks;
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = r.str();
    dsp::DspModel::TaskStats st;
    st.instructions = r.i64();
    st.cycles = r.i64();
    tasks.emplace(std::move(name), st);
  }
  const long long instructions = r.i64();
  const long long cycles = r.i64();
  m.restore_accounting(std::move(tasks), instructions, cycles);
}

}  // namespace

std::string save_board_snapshot(const SdrBoard& board,
                                const xpp::FaultInjector* injector) {
  xpp::snap::Writer w;
  put_accounting(w, board.dsp());
  put_accounting(w, board.microcontroller());
  w.i64(board.fpga_words_routed());
  // Nest the complete array snapshot as a length-prefixed blob — its
  // own frame (magic/version/CRC) travels intact, so restoring the
  // board exercises the same validation path as restoring an array.
  w.str(xpp::save_snapshot(board.array(), injector));
  return xpp::snap::frame(kBoardMagic, kBoardVersion, w.bytes());
}

void restore_board_snapshot(SdrBoard& board, const std::string& bytes,
                            xpp::FaultInjector* injector) {
  const std::string_view payload =
      xpp::snap::unframe(kBoardMagic, kBoardVersion, bytes);
  xpp::snap::Reader r(payload);
  // Read everything (bounds-checked) before mutating the board: a
  // truncated payload must not leave half-restored accounting.  The
  // nested array restore validates freshness/geometry/scheduler itself.
  xpp::snap::Reader probe(payload);
  dsp::DspModel scratch_dsp, scratch_uc;
  get_accounting(probe, scratch_dsp);
  get_accounting(probe, scratch_uc);
  (void)probe.i64();
  const std::string nested = probe.str();
  if (!probe.done()) {
    throw xpp::SnapshotError("board snapshot: " +
                             std::to_string(probe.remaining()) +
                             " trailing byte(s) after payload");
  }
  // Restore the array first — it is the component that can fail on a
  // semantic mismatch, and it must reject before the accounting is
  // overwritten.
  xpp::restore_snapshot(board.array(), nested, injector);
  get_accounting(r, board.dsp());
  get_accounting(r, board.microcontroller());
  board.restore_fpga_words(r.i64());
}

std::unique_ptr<SdrBoard> restore_board_snapshot_new(
    const std::string& bytes, xpp::FaultInjector* injector) {
  const std::string_view payload =
      xpp::snap::unframe(kBoardMagic, kBoardVersion, bytes);
  xpp::snap::Reader r(payload);
  dsp::DspModel scratch_dsp, scratch_uc;
  get_accounting(r, scratch_dsp);
  get_accounting(r, scratch_uc);
  (void)r.i64();
  const std::string nested = r.str();
  const xpp::SnapshotInfo info = xpp::peek_snapshot(nested);
  auto board = std::make_unique<SdrBoard>(info.geometry, info.scheduler);
  restore_board_snapshot(*board, bytes, injector);
  return board;
}

SliceRecord TimeSlicer::slice(
    const std::string& name,
    const std::function<void(xpp::ConfigurationManager&)>& body) {
  SliceRecord rec;
  rec.name = name;
  const long long cycles0 = mgr_.sim().cycle();
  const long long cfg0 = mgr_.total_config_cycles();
  const int alu_before = mgr_.resources().used_alu_cells();
  mgr_.resources().reset_peaks();

  body(mgr_);

  rec.cycles = mgr_.sim().cycle() - cycles0;
  rec.config_cycles = mgr_.total_config_cycles() - cfg0;
  rec.peak_alu_cells = mgr_.resources().peak_alu_cells();
  rec.peak_ram_cells = mgr_.resources().peak_ram_cells();
  if (mgr_.resources().used_alu_cells() != alu_before) {
    throw std::logic_error("TimeSlicer: slice '" + name +
                           "' leaked array resources");
  }
  history_.push_back(rec);
  return rec;
}

long long TimeSlicer::total_cycles() const {
  long long n = 0;
  for (const auto& r : history_) n += r.cycles;
  return n;
}

long long TimeSlicer::total_config_cycles() const {
  long long n = 0;
  for (const auto& r : history_) n += r.config_cycles;
  return n;
}

double TimeSlicer::config_overhead() const {
  const long long t = total_cycles();
  return t > 0 ? static_cast<double>(total_config_cycles()) /
                     static_cast<double>(t)
               : 0.0;
}

int TimeSlicer::peak_alu_cells() const {
  int peak = 0;
  for (const auto& r : history_) peak = std::max(peak, r.peak_alu_cells);
  return peak;
}

int TimeSlicer::sum_alu_cells() const {
  // A dedicated-hardware design provisions every protocol's peak
  // simultaneously; sum the distinct protocols' peaks.
  int sum = 0;
  std::vector<std::string> seen;
  for (const auto& r : history_) {
    if (std::find(seen.begin(), seen.end(), r.name) != seen.end()) continue;
    seen.push_back(r.name);
    int peak = 0;
    for (const auto& q : history_) {
      if (q.name == r.name) peak = std::max(peak, q.peak_alu_cells);
    }
    sum += peak;
  }
  return sum;
}

}  // namespace rsp::sdr

// Processing-power requirements of wireless access protocols (Figure 1).
//
// The paper quotes the industry-consensus series: GSM ~10 MIPS,
// GPRS/HSCSD ~100, EDGE ~1000, UMTS/W-CDMA up to 10000, OFDM WLAN
// ~5000.  We reproduce the series two ways: the quoted consensus
// values, and a bottom-up model computed from the operation counts of
// the receiver chains in this repository scaled to each protocol's
// symbol/chip rate.
#pragma once

#include <string>
#include <vector>

namespace rsp::sdr {

struct ProtocolMips {
  std::string name;
  double paper_mips = 0.0;    ///< Figure 1 consensus value
  double modeled_mips = 0.0;  ///< bottom-up from our implementation
  double data_rate_mbps = 0.0;
};

/// The Figure 1 series with bottom-up models.
[[nodiscard]] std::vector<ProtocolMips> figure1_series();

/// Bottom-up UMTS/W-CDMA rake demand for a given scenario (ops/chip
/// derived from the golden finger datapath; includes searcher and
/// estimator overhead).
[[nodiscard]] double umts_rake_mips(int virtual_fingers);

/// Bottom-up OFDM WLAN demand at @p mbps (FFT + equalize + demap +
/// Viterbi ops per symbol at 250 ksym/s).
[[nodiscard]] double ofdm_wlan_mips(int mbps);

}  // namespace rsp::sdr

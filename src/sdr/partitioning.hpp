// Task-to-resource partitioning (Figures 4 and 8).
//
// "Critical computational parts with high data streaming demands are
// mapped onto the reconfigurable processing array.  Algorithmic parts
// with low criticality, mostly implementing control code, are mapped
// onto the DSP/microcontroller."  Bit-level continuous tasks go to
// dedicated hardware.  These descriptors encode the paper's two
// partitioning figures together with bottom-up load estimates, so the
// benches can print the per-resource split.
#pragma once

#include <string>
#include <vector>

namespace rsp::sdr {

enum class Resource { kReconfigurable, kDedicated, kDsp };

[[nodiscard]] const char* resource_name(Resource r);

struct TaskLoad {
  std::string task;
  Resource resource = Resource::kDsp;
  double mops = 0.0;  ///< millions of operations per second at full load
};

/// Figure 4: rake receiver partitioning for a soft-handover scenario
/// with @p virtual_fingers active fingers.
[[nodiscard]] std::vector<TaskLoad> rake_partitioning(int virtual_fingers);

/// Figure 8: OFDM decoder partitioning at @p mbps.
[[nodiscard]] std::vector<TaskLoad> ofdm_partitioning(int mbps);

/// Aggregate load on one resource class.
[[nodiscard]] double total_mops(const std::vector<TaskLoad>& tasks,
                                Resource r);

}  // namespace rsp::sdr

// XPP mapping of the K=7 Viterbi add-compare-select recursion.
//
// The paper's Figure 8 keeps channel decoding in dedicated hardware;
// the reconfigurable-Viterbi literature (PAPERS.md: WiMAX decoder on a
// reconfigurable array) maps the ACS butterflies onto the fabric
// instead.  This module does that for the existing
// dedhw::ViterbiDecoder's code (K=7, G0=0x6D, G1=0x4F, 64 states): a
// time-multiplexed ACS array configuration that processes one trellis
// state per cycle against ping-ponged path-metric banks in two
// RAM-PAEs, streaming one survivor bit per state per step to the host,
// which runs the (sequential, data-dependent) traceback.  The hard
// decisions are bit-identical to dedhw::ViterbiDecoder::decode — proven
// by the differential battery in tests/vit/test_viterbi_xpp.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "src/xpp/manager.hpp"
#include "src/xpp/runner.hpp"

namespace rsp::vit {

/// Path-metric offset substituting for dedhw's -inf initialization:
/// every state but 0 starts at -kMetricFloor.  Any path through a
/// fake-initial state trails every true path by at least
/// kMetricFloor - 24 * max|soft| > 0 until all states become reachable
/// (6 steps), so it can never win an ACS comparison that dedhw would
/// have decided differently.
inline constexpr xpp::Word kMetricFloor = 1 << 16;

/// The ACS array configuration: 1 input ("soft", packed (sa, sb) soft
/// pairs replicated once per state), 1 output ("surv", one survivor
/// bit per state per trellis step), ~20 ALU-PAEs and two RAM-PAEs
/// holding duplicated ping-pong path-metric banks.
[[nodiscard]] xpp::Configuration acs_config();

/// Decode @p soft (2 soft values per trellis step, dedhw convention:
/// positive favours bit 1, |value| <= 2047) on the array: stream the
/// replicated soft words through @p cfg_id... load, run, release is
/// handled internally.  Terminated traceback (encoder tail forces
/// state 0), first @p n_info bits returned — the exact contract of
/// dedhw::ViterbiDecoder::decode(soft, n_info, true).
/// Throws std::invalid_argument when a soft value exceeds 12 bits or
/// the codeword is long enough for the 24-bit metrics to saturate
/// (kMetricFloor + sum |soft| must stay below 2^23).
[[nodiscard]] std::vector<std::uint8_t> run_viterbi_acs(
    xpp::ConfigurationManager& mgr, const std::vector<std::int32_t>& soft,
    std::size_t n_info, xpp::RunResult* stats = nullptr);

/// Host-side terminated traceback over the survivor-bit stream the
/// array produced (surv[64 * step + state]).  Exposed so tests can
/// re-run it over fault-corrupted survivor memories.
[[nodiscard]] std::vector<std::uint8_t> traceback(
    const std::vector<xpp::Word>& surv, std::size_t steps,
    std::size_t n_info);

}  // namespace rsp::vit

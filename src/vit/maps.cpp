#include "src/vit/maps.hpp"

#include <bit>
#include <stdexcept>
#include <string>

#include "src/common/word.hpp"
#include "src/dedhw/convcode.hpp"
#include "src/xpp/builder.hpp"

namespace rsp::vit {

using dedhw::kG0;
using dedhw::kG1;
using dedhw::kNumStates;
using xpp::ConfigBuilder;
using xpp::Configuration;
using xpp::Opcode;
using xpp::RamMode;
using xpp::RamParams;
using xpp::Word;

namespace {

/// Branch-metric sign LUT for generator @p g: entry ns is +1 when the
/// expected coded bit of the pred0 transition into state ns is 1, else
/// -1.  The pred0 encoder window into ns is exactly ns (7 bits, bit 6
/// clear); the pred1 window is ns + 64.  Both generators have bit 6
/// set, so the pred1 expected bits are the complements of pred0's and
/// bm(pred1) = -bm(pred0) — one LUT pair serves both butterflies.
std::vector<Word> sign_lut(unsigned g) {
  std::vector<Word> lut(kNumStates);
  for (unsigned ns = 0; ns < static_cast<unsigned>(kNumStates); ++ns) {
    lut[ns] = (std::popcount(ns & g) & 1) ? 1 : -1;
  }
  return lut;
}

}  // namespace

Configuration acs_config() {
  ConfigBuilder b("vit_acs_k7");

  // Host streams each packed (sa, sb) soft pair 64 times — one copy per
  // state — so the whole datapath is rate-balanced at one state/cycle
  // and the array drains to true quiescence after the last step.
  const auto soft = b.input("soft");
  const auto dup = b.alu("dup", Opcode::kDup);
  b.connect(soft.out(0), dup.in(0));
  const auto unp = b.alu("unpack", Opcode::kUnpack);
  b.connect(dup.out(0), unp.in(0));

  // Master index k = 64*step + ns, advanced once per consumed soft word.
  const auto cnt = b.counter("k", {0, 1, 0});
  b.connect(dup.out(1), cnt.in(0));

  // Address decomposition: ns = k & 63, step parity = (k >> 6) & 1.
  // Metrics ping-pong between two 64-word banks: reads from bank
  // parity, writes to bank parity^1 (read base rbase = parity << 6,
  // write base wbase = rbase ^ 64).
  const auto ns = b.alu("ns", Opcode::kAnd);
  b.tie(ns, 1, 63);
  b.connect(cnt.out(0), ns.in(0));
  const auto par = b.alu_shift("par", Opcode::kShr, 6);
  b.connect(cnt.out(0), par.in(0));
  const auto par1 = b.alu("par1", Opcode::kAnd);
  b.tie(par1, 1, 1);
  b.connect(par.out(0), par1.in(0));
  const auto rbase = b.alu_shift("rbase", Opcode::kShl, 6);
  b.connect(par1.out(0), rbase.in(0));
  const auto wbase = b.alu("wbase", Opcode::kXor);
  b.tie(wbase, 1, 64);
  b.connect(rbase.out(0), wbase.in(0));

  // Predecessor states of ns: p0 = ns >> 1, p1 = p0 | 32.
  const auto p0 = b.alu_shift("p0", Opcode::kShr, 1);
  b.connect(ns.out(0), p0.in(0));
  const auto p1 = b.alu("p1", Opcode::kOr);
  b.tie(p1, 1, 32);
  b.connect(p0.out(0), p1.in(0));
  const auto addr0 = b.alu("addr0", Opcode::kAdd);
  b.connect(rbase.out(0), addr0.in(0));
  b.connect(p0.out(0), addr0.in(1));
  const auto addr1 = b.alu("addr1", Opcode::kAdd);
  b.connect(rbase.out(0), addr1.in(0));
  b.connect(p1.out(0), addr1.in(1));
  const auto waddr = b.alu("waddr", Opcode::kAdd);
  b.connect(wbase.out(0), waddr.in(0));
  b.connect(ns.out(0), waddr.in(1));

  // Branch metric of the pred0 transition: bm = sgnA[ns]*sa + sgnB[ns]*sb
  // (the pred1 metric is its negation, see sign_lut).
  RamParams lut_a;
  lut_a.mode = RamMode::kLut;
  lut_a.capacity = kNumStates;
  lut_a.preload = sign_lut(kG0);
  const auto sgn_a = b.ram("sgn_a", std::move(lut_a));
  b.connect(ns.out(0), sgn_a.in(0));
  RamParams lut_b;
  lut_b.mode = RamMode::kLut;
  lut_b.capacity = kNumStates;
  lut_b.preload = sign_lut(kG1);
  const auto sgn_b = b.ram("sgn_b", std::move(lut_b));
  b.connect(ns.out(0), sgn_b.in(0));
  const auto bm_a = b.alu("bm_a", Opcode::kMul);
  b.connect(sgn_a.out(0), bm_a.in(0));
  b.connect(unp.out(0), bm_a.in(1));
  const auto bm_b = b.alu("bm_b", Opcode::kMul);
  b.connect(sgn_b.out(0), bm_b.in(0));
  b.connect(unp.out(1), bm_b.in(1));
  const auto bm = b.alu("bm", Opcode::kAdd);
  b.connect(bm_a.out(0), bm.in(0));
  b.connect(bm_b.out(0), bm.in(1));

  // Ping-pong path-metric banks, duplicated across two RAM-PAEs so the
  // two predecessor reads proceed in the same cycle; both copies see
  // the identical write stream.  Bank 0 preload encodes the start
  // state: metric[0] = 0, every other state -kMetricFloor.
  std::vector<Word> init(kNumStates, -kMetricFloor);
  init[0] = 0;
  RamParams pm;
  pm.mode = RamMode::kRam;
  pm.capacity = 2 * kNumStates;
  pm.preload = init;
  const auto pm0 = b.ram("pm0", pm);
  const auto pm1 = b.ram("pm1", std::move(pm));
  b.connect(addr0.out(0), pm0.in(0));
  b.connect(addr1.out(0), pm1.in(0));

  // Add-compare-select.  sel reproduces dedhw's tie-break exactly:
  // pred1 must be strictly greater to win (dedhw scans predecessors in
  // ascending state order with a strict >).
  const auto cand0 = b.alu("cand0", Opcode::kAdd);
  b.connect(pm0.out(0), cand0.in(0));
  b.connect(bm.out(0), cand0.in(1));
  const auto cand1 = b.alu("cand1", Opcode::kSub);
  b.connect(pm1.out(0), cand1.in(0));
  b.connect(bm.out(0), cand1.in(1));
  const auto sel = b.alu("sel", Opcode::kGt);
  b.connect(cand1.out(0), sel.in(0));
  b.connect(cand0.out(0), sel.in(1));
  const auto newm = b.alu("newm", Opcode::kMux);
  b.connect(sel.out(0), newm.in(0));
  b.connect(cand0.out(0), newm.in(1));
  b.connect(cand1.out(0), newm.in(2));
  b.connect(waddr.out(0), pm0.in(1));
  b.connect(waddr.out(0), pm1.in(1));
  b.connect(newm.out(0), pm0.in(2));
  b.connect(newm.out(0), pm1.in(2));

  // Survivor bit out — the host runs the traceback.
  const auto surv = b.output("surv");
  b.connect(sel.out(0), surv.in(0));

  return b.build();
}

std::vector<std::uint8_t> traceback(const std::vector<Word>& surv,
                                    std::size_t steps, std::size_t n_info) {
  // Terminated: the encoder's K-1 zero tail forces the survivor to end
  // in state 0 — identical to dedhw::ViterbiDecoder::decode.
  unsigned state = 0;
  std::vector<std::uint8_t> decoded(steps);
  for (std::size_t step = steps; step-- > 0;) {
    decoded[step] = static_cast<std::uint8_t>(state & 1u);
    const unsigned p =
        surv[step * kNumStates + state] != 0 ? 1u : 0u;
    state = (state >> 1) | (p << (dedhw::kConstraintLen - 2));
  }
  if (decoded.size() > n_info) decoded.resize(n_info);
  return decoded;
}

std::vector<std::uint8_t> run_viterbi_acs(xpp::ConfigurationManager& mgr,
                                          const std::vector<std::int32_t>& soft,
                                          std::size_t n_info,
                                          xpp::RunResult* stats) {
  const std::size_t steps = soft.size() / 2;
  // Exactness contract: soft values must fit the packed 12-bit halves,
  // and the worst-case path metric must stay inside the saturating
  // 24-bit ALU range so the on-array integers equal dedhw's int64 math.
  long long excursion = kMetricFloor;
  for (std::size_t i = 0; i < soft.size(); ++i) {
    if (soft[i] < -2047 || soft[i] > 2047) {
      throw std::invalid_argument("run_viterbi_acs: soft value " +
                                  std::to_string(soft[i]) +
                                  " exceeds 12 bits");
    }
    excursion += soft[i] < 0 ? -soft[i] : soft[i];
  }
  if (excursion > (1 << 23) - 1) {
    throw std::invalid_argument(
        "run_viterbi_acs: codeword long enough to saturate 24-bit path "
        "metrics");
  }

  std::vector<Word> feed;
  feed.reserve(steps * kNumStates);
  for (std::size_t step = 0; step < steps; ++step) {
    const Word w = pack_iq(soft[2 * step], soft[2 * step + 1]);
    for (int s = 0; s < kNumStates; ++s) feed.push_back(w);
  }

  const xpp::ConfigId id = mgr.load(acs_config());
  const long long start = mgr.sim().cycle();
  mgr.input(id, "soft").feed(feed);
  auto& sink = mgr.output(id, "surv");
  const std::size_t want = steps * kNumStates;
  long long guard = 0;
  while (sink.data().size() < want) {
    mgr.sim().step();
    if (++guard > static_cast<long long>(want) * 4 + 10000) {
      throw xpp::ConfigError("run_viterbi_acs: survivor stream stalled");
    }
  }
  const std::vector<Word> surv = sink.take();
  if (stats != nullptr) {
    stats->cycles = mgr.sim().cycle() - start;
    stats->load_cycles = mgr.info(id).load_cycles;
    stats->info = mgr.info(id);
  }
  mgr.release(id);
  return traceback(surv, steps, n_info);
}

}  // namespace rsp::vit

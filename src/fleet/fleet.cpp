#include "src/fleet/fleet.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/farm/queue.hpp"
#include "src/xpp/builder.hpp"

namespace rsp::fleet {

namespace {

int resolve_threads(int requested) {
  if (requested < 0) {
    throw std::invalid_argument("FleetManager: negative thread count " +
                                std::to_string(requested));
  }
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

FleetManager::FleetManager(FleetOptions opts) : opts_(opts) {
  if (opts_.batch_width <= 0) {
    throw std::invalid_argument("FleetManager: non-positive batch width " +
                                std::to_string(opts_.batch_width));
  }
  threads_ = resolve_threads(opts_.threads);
  if (opts_.cache != nullptr) {
    cache_ = opts_.cache;
  } else {
    owned_cache_ = std::make_unique<xpp::BatchProgramCache>();
    cache_ = owned_cache_.get();
  }
}

FleetManager::~FleetManager() = default;

FleetManager::Session& FleetManager::session_at(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::out_of_range("FleetManager: unknown session " +
                            std::to_string(id));
  }
  return it->second;
}

const FleetManager::Session& FleetManager::session_at(SessionId id) const {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::out_of_range("FleetManager: unknown session " +
                            std::to_string(id));
  }
  return it->second;
}

void FleetManager::join_group(Session& s) {
  int gi = -1;
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    if (groups_[i].crc == s.crc) {
      gi = static_cast<int>(i);
      break;
    }
  }
  if (gi < 0) {
    // An emptied group keeps its CRC, so a re-admitted CRC reuses its
    // engine (and the engine reuses its freed lane slots).
    for (std::size_t i = 0; i < groups_.size(); ++i) {
      if (groups_[i].members == 0) {
        gi = static_cast<int>(i);
        groups_[i].crc = s.crc;
        break;
      }
    }
  }
  if (gi < 0) {
    Group g;
    g.crc = s.crc;
    g.eng = std::make_unique<xpp::BatchedReplayEngine>(cache_,
                                                       opts_.batch_width);
    groups_.push_back(std::move(g));
    gi = static_cast<int>(groups_.size()) - 1;
  }
  Group& g = groups_[static_cast<std::size_t>(gi)];
  xpp::Simulator& sim = s.board->array().sim();
  s.group = gi;
  s.lane = g.eng->add(sim, s.crc);
  ++g.members;

  // Cache admission: adopt every program published for this CRC; the
  // engine's fast re-arm scan picks whichever matches the session's
  // live trajectory, and the detector stays off while any can arm.
  s.hit = false;
  if (xpp::CompiledEngine* eng = sim.compiled_engine()) {
    for (const auto& image : cache_->find_all(s.crc)) {
      if (eng->adopt_shared(image)) s.hit = true;
    }
  }
}

void FleetManager::leave_group(Session& s) {
  if (s.group < 0) return;
  Group& g = groups_[static_cast<std::size_t>(s.group)];
  g.eng->remove(s.lane);
  --g.members;
  s.group = -1;
  s.lane = -1;
}

SessionId FleetManager::admit(const xpp::Configuration& cfg) {
  Session s;
  s.board = std::make_unique<sdr::SdrBoard>(opts_.geometry,
                                            xpp::SchedulerKind::kCompiled);
  s.cfg_value = cfg;
  s.crc = cfg.checksum ? *cfg.checksum : xpp::config_crc32(cfg);
  s.cfg = s.board->array().load(cfg);
  join_group(s);
  const SessionId id = next_id_++;
  ++admits_;
  if (s.hit) ++cache_hit_admits_;
  sessions_.emplace(id, std::move(s));
  return id;
}

void FleetManager::evict(SessionId id) {
  Session& s = session_at(id);
  leave_group(s);
  // Fold the dying engine's counters into the retired bucket so
  // stats() totals stay monotone across admit/evict churn.
  if (const xpp::CompiledEngine* eng =
          s.board->array().sim().compiled_engine()) {
    const xpp::CompiledStats& cs = eng->stats();
    retired_.compiles += cs.compiles;
    retired_.fleet_adopts += cs.fleet_adopts;
    retired_.fleet_arms += cs.fleet_arms;
    retired_.replayed_cycles += cs.replayed_cycles;
    retired_.recorded_cycles += cs.recorded_cycles;
  }
  sessions_.erase(id);
  ++evicts_;
}

void FleetManager::reconfigure(SessionId id, const xpp::Configuration& next) {
  Session& s = session_at(id);
  leave_group(s);
  // Releasing drops every program bound against the old groups
  // (CompiledEngine::invalidate clears adopted images too — they hold
  // raw object pointers), so load-after-release is safe.
  s.board->array().release(s.cfg);
  s.cfg = xpp::kNoConfig;
  try {
    s.cfg = s.board->array().load(next);
  } catch (...) {
    // Put the session back the way it was: reload the old
    // configuration (re-charging its load cycles) and re-join its
    // group, then let the caller see the failure.
    s.cfg = s.board->array().load(s.cfg_value);
    join_group(s);
    throw;
  }
  s.cfg_value = next;
  s.crc = next.checksum ? *next.checksum : xpp::config_crc32(next);
  join_group(s);
  ++reconfigures_;
  if (s.hit) ++cache_hit_admits_;
}

void FleetManager::run_cycles(long long n) {
  if (n <= 0) return;
  std::vector<std::size_t> work;
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    if (groups_[i].members > 0 && groups_[i].eng->active_lanes() > 0) {
      work.push_back(i);
    }
  }
  if (work.empty()) return;

  const int pool = std::min<int>(threads_, static_cast<int>(work.size()));
  if (pool <= 1) {
    for (std::size_t w : work) groups_[w].eng->run_cycles(n);
    return;
  }

  // Session-aware dispatch: the group is the unit of work (its lanes
  // replay in lockstep on one engine), handed out through the farm's
  // bounded queue with the farm's deterministic lowest-index failure
  // rule.  Groups share only the mutex-protected program cache, whose
  // content is insertion-order independent, so trajectories are
  // bit-identical at any thread count.
  farm::detail::BoundedQueue queue(work.size());
  farm::detail::FailureTracker failures;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(pool));
  for (int t = 0; t < pool; ++t) {
    workers.emplace_back([&] {
      std::size_t wi = 0;
      while (queue.pop(wi)) {
        if (failures.should_skip(wi)) continue;
        try {
          groups_[work[wi]].eng->run_cycles(n);
        } catch (...) {
          failures.record(wi);
        }
      }
    });
  }
  std::size_t undispatched = farm::detail::kNoFailure;
  for (std::size_t i = 0; i < work.size(); ++i) {
    if (!queue.push(i)) {
      undispatched = i;
      break;
    }
  }
  queue.close();
  for (auto& th : workers) th.join();
  if (undispatched != farm::detail::kNoFailure) {
    throw farm::FarmError("fleet: group " + std::to_string(undispatched) +
                          " was never dispatched (queue closed during push)");
  }
  failures.rethrow("fleet group");
}

sdr::SdrBoard& FleetManager::board(SessionId id) {
  return *session_at(id).board;
}

xpp::ConfigId FleetManager::config_of(SessionId id) const {
  return session_at(id).cfg;
}

std::uint32_t FleetManager::crc_of(SessionId id) const {
  return session_at(id).crc;
}

bool FleetManager::cache_hit(SessionId id) const {
  return session_at(id).hit;
}

xpp::InputObject& FleetManager::input(SessionId id, const std::string& name) {
  Session& s = session_at(id);
  return s.board->array().input(s.cfg, name);
}

xpp::OutputObject& FleetManager::output(SessionId id,
                                        const std::string& name) {
  Session& s = session_at(id);
  return s.board->array().output(s.cfg, name);
}

FleetStats FleetManager::stats() const {
  FleetStats out = retired_;
  out.sessions = static_cast<int>(sessions_.size());
  out.admits = admits_;
  out.cache_hit_admits = cache_hit_admits_;
  out.evicts = evicts_;
  out.reconfigures = reconfigures_;
  for (const auto& [id, s] : sessions_) {
    (void)id;
    if (const xpp::CompiledEngine* eng =
            s.board->array().sim().compiled_engine()) {
      const xpp::CompiledStats& cs = eng->stats();
      out.compiles += cs.compiles;
      out.fleet_adopts += cs.fleet_adopts;
      out.fleet_arms += cs.fleet_arms;
      out.replayed_cycles += cs.replayed_cycles;
      out.recorded_cycles += cs.recorded_cycles;
    }
  }
  for (const auto& g : groups_) {
    if (g.members > 0) ++out.groups;
    const xpp::BatchedReplayEngine::Stats& bs = g.eng->stats();
    out.batch_ticks += bs.batch_ticks;
    out.batched_cycles += bs.batched_cycles;
    out.scalar_cycles += bs.scalar_cycles;
    out.guard_exits += bs.guard_exits;
    out.gathers += bs.gathers;
  }
  out.cache = cache_->stats();
  return out;
}

}  // namespace rsp::fleet

// Terminal-fleet session manager: compile-once / replay-many serving.
//
// The paper's central claim is that one reconfigurable substrate can
// serve many concurrent standards; the economics only work when the
// expensive part — discovering and compiling a configuration's steady
// state — is paid once per *fleet*, not once per *terminal*.  The
// FleetManager is the serving layer that realizes that above the
// scenario farm's share-nothing substrate:
//
//  - admit(cfg) builds a session: its own SdrBoard (kCompiled array),
//    loads the configuration, and joins the session to the lockstep
//    replay group of every other session with the same config CRC-32.
//    If the shared BatchProgramCache already holds programs published
//    for that CRC (by any earlier session, in any group, on any
//    thread), the session COLD-BINDS them (CanonicalProgram::
//    bind_cold) and skips steady-state detection entirely: from cycle
//    0 its engine only runs the cheap fast re-arm scan and starts
//    replaying the shared epoch program at the first phase boundary
//    its live trajectory matches.  A miss runs ordinary per-instance
//    kCompiled and publishes its program on first detection, so the
//    next admit with that CRC hits.
//  - within a group, sessions replay in lockstep SoA lanes
//    (BatchedReplayEngine): the program image and phase cursor are
//    shared copy-on-write style — immutable and referenced by every
//    lane — while per-lane value state lives in private SoA rows; a
//    lane is forked out of the batch only when its guard mask
//    diverges, with its exact state scattered back (it deopts and
//    re-arms exactly as an unbatched run would).
//  - evict(id) releases the session and recycles its lane slot;
//    reconfigure(id, next) releases the old configuration (dropping
//    every adopted program — they hold pointers into the old groups),
//    loads the new one, and re-admits the session into the group and
//    shared programs of the new CRC.
//
// Bit-identity contract: a session's trajectory — outputs, fire
// counts, cycle stamps — is bit-identical to a cold per-instance
// kCompiled run of the same script, whether its programs were
// compiled locally, bound from the cache at detection time, or
// cold-bound at admission, and whether its cycles executed scalar or
// batched.  The `ctest -L fleet` battery enforces this, including
// mid-session reconfigure and evict/re-admit.
//
// Threading: run_cycles dispatches whole groups to a bounded-queue
// worker pool (the farm's queue — session-aware dispatch: a group is
// the dispatch unit because its lanes replay in lockstep on one
// engine).  Groups share no mutable state but the mutex-protected
// program cache, and cache content is order-independent (first insert
// of identical immutable images wins), so session trajectories are
// bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/sdr/board.hpp"
#include "src/xpp/batch.hpp"

namespace rsp::fleet {

using SessionId = int;
inline constexpr SessionId kNoSession = -1;

struct FleetOptions {
  /// Lanes per lockstep batch within a group (clamped to
  /// simd::kMaxBatchWidth).
  int batch_width = xpp::simd::kMaxBatchWidth;
  /// Worker threads for run_cycles group dispatch; 0 = hardware
  /// concurrency.  Negative throws at construction.
  int threads = 1;
  /// Per-terminal array geometry.
  xpp::ArrayGeometry geometry;
  /// Shared program cache; nullptr = the fleet owns a private one.
  /// Point several fleets (or farm campaigns) at one cache to share
  /// compiled programs across them.
  xpp::BatchProgramCache* cache = nullptr;
};

/// Aggregate serving counters.  Engine counters are summed over every
/// session's compiled engine and every group's batch engine at the
/// time of the stats() call.
struct FleetStats {
  int sessions = 0;          ///< live sessions
  int groups = 0;            ///< live lockstep groups (distinct CRCs)
  long long admits = 0;
  long long cache_hit_admits = 0;  ///< admissions that adopted >= 1 program
  long long evicts = 0;
  long long reconfigures = 0;
  // Summed xpp::CompiledStats over live sessions.
  long long compiles = 0;        ///< local steady-state compiles (misses)
  long long fleet_adopts = 0;    ///< images cold-bound at admission
  long long fleet_arms = 0;      ///< arms served with the detector off
  long long replayed_cycles = 0;
  long long recorded_cycles = 0;  ///< interpreted cycles
  // Summed xpp::BatchedReplayEngine::Stats over live groups.
  long long batch_ticks = 0;
  long long batched_cycles = 0;
  long long scalar_cycles = 0;
  long long guard_exits = 0;
  long long gathers = 0;
  xpp::BatchProgramCache::Stats cache;
};

class FleetManager {
 public:
  /// Throws std::invalid_argument for negative threads or a
  /// non-positive batch width.
  explicit FleetManager(FleetOptions opts = {});
  ~FleetManager();

  FleetManager(const FleetManager&) = delete;
  FleetManager& operator=(const FleetManager&) = delete;

  /// Admit a terminal running @p cfg (which must carry or hash to a
  /// CRC-32; ConfigBuilder stamps one).  Loads the configuration onto
  /// a fresh board and joins the CRC's lockstep group, cold-binding
  /// any programs already published for the CRC.  Throws
  /// xpp::ConfigError if the configuration is invalid.
  SessionId admit(const xpp::Configuration& cfg);

  /// Remove a session: its board is destroyed and its lane recycled.
  /// Drain outputs first — eviction discards them.
  void evict(SessionId id);

  /// Swap the session's configuration in place: release the old one
  /// (adopted programs are dropped with it), load @p next, move the
  /// session to the new CRC's group, and re-run cache admission.  The
  /// board and its accounting survive.  If loading @p next fails the
  /// old configuration is reloaded (re-charging its configuration
  /// cycles) and the session re-joins its old group before the error
  /// is rethrown, so the fleet never holds a session with nothing
  /// loaded.
  void reconfigure(SessionId id, const xpp::Configuration& next);

  /// Advance every live session by exactly @p n cycles, batching
  /// same-program sessions in lockstep and dispatching groups across
  /// the worker pool.  Group failures surface as farm::FarmError
  /// naming the lowest failing group deterministically.
  void run_cycles(long long n);

  // -- per-session access ---------------------------------------------------
  [[nodiscard]] sdr::SdrBoard& board(SessionId id);
  [[nodiscard]] xpp::ConfigId config_of(SessionId id) const;
  [[nodiscard]] std::uint32_t crc_of(SessionId id) const;
  /// True if the session's latest admission/reconfiguration adopted at
  /// least one published program (i.e. it skips detection).
  [[nodiscard]] bool cache_hit(SessionId id) const;
  [[nodiscard]] xpp::InputObject& input(SessionId id, const std::string& name);
  [[nodiscard]] xpp::OutputObject& output(SessionId id,
                                          const std::string& name);

  [[nodiscard]] int sessions() const { return static_cast<int>(sessions_.size()); }
  [[nodiscard]] FleetStats stats() const;
  [[nodiscard]] xpp::BatchProgramCache& cache() { return *cache_; }

 private:
  struct Session {
    std::unique_ptr<sdr::SdrBoard> board;
    xpp::Configuration cfg_value;  ///< retained for reconfigure rollback
    xpp::ConfigId cfg = xpp::kNoConfig;
    std::uint32_t crc = 0;
    int group = -1;
    int lane = -1;
    bool hit = false;
  };

  struct Group {
    std::uint32_t crc = 0;
    std::unique_ptr<xpp::BatchedReplayEngine> eng;
    int members = 0;
  };

  Session& session_at(SessionId id);
  [[nodiscard]] const Session& session_at(SessionId id) const;
  /// Join @p s (with a loaded config) to its CRC's group and run cache
  /// admission; fills group/lane/hit.
  void join_group(Session& s);
  void leave_group(Session& s);

  FleetOptions opts_;
  int threads_ = 1;
  std::unique_ptr<xpp::BatchProgramCache> owned_cache_;
  xpp::BatchProgramCache* cache_ = nullptr;
  std::map<SessionId, Session> sessions_;
  std::vector<Group> groups_;
  SessionId next_id_ = 0;
  long long admits_ = 0;
  long long cache_hit_admits_ = 0;
  long long evicts_ = 0;
  long long reconfigures_ = 0;
  // Engine counters of evicted sessions/emptied groups, folded in so
  // stats() totals are monotone across churn.
  FleetStats retired_;
};

}  // namespace rsp::fleet

#include "src/xpp/net.hpp"

#include <string>

namespace rsp::xpp {

int Net::add_sink(Object* waiter) {
  if (num_sinks_ >= kMaxNetSinks) {
    throw ConfigError("net: fan-out exceeds " + std::to_string(kMaxNetSinks) +
                      " sinks");
  }
  sink_waiters_.push_back(waiter);
  return num_sinks_++;
}

}  // namespace rsp::xpp

#include "src/xpp/net.hpp"

#include <string>

#include "src/common/word.hpp"

namespace rsp::xpp {

int Net::add_sink(Object* waiter) {
  if (num_sinks_ >= kMaxNetSinks) {
    throw ConfigError("net: fan-out exceeds " + std::to_string(kMaxNetSinks) +
                      " sinks");
  }
  sink_waiters_.push_back(waiter);
  return num_sinks_++;
}

bool Net::corrupt_bit(int bit) {
  if (!has_value_ || bit < 0 || bit >= kWordBits) return false;
  // Deliberately no ++generation_: an upset rewrites the resident token
  // in place, it is not a token arrival.  The observability layer's
  // occupancy/backpressure/throughput counters therefore see a
  // corrupted token exactly like the original — fault injection never
  // perturbs the trace counters' flow statistics.
  value_ = wrap24(value_ ^ (Word{1} << bit));
  return true;
}

}  // namespace rsp::xpp

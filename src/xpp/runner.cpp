#include "src/xpp/runner.hpp"

namespace rsp::xpp {

RunResult run_config(ConfigurationManager& mgr, const Configuration& cfg,
                     const std::map<std::string, std::vector<Word>>& inputs,
                     const std::map<std::string, std::size_t>& expected,
                     long long max_cycles) {
  const ConfigId id = mgr.load(cfg);
  RunResult r;
  r.info = mgr.info(id);
  r.load_cycles = r.info.load_cycles;

  for (const auto& [name, samples] : inputs) {
    mgr.input(id, name).feed(samples);
  }
  std::vector<OutputObject*> outs;
  std::vector<std::size_t> want;
  std::vector<std::string> names;
  outs.reserve(expected.size());
  for (const auto& [name, count] : expected) {
    outs.push_back(&mgr.output(id, name));
    want.push_back(count);
    names.push_back(name);
  }

  const long long start = mgr.sim().cycle();
  long long idle_streak = 0;
  while (mgr.sim().cycle() - start < max_cycles) {
    bool done = true;
    for (std::size_t i = 0; i < outs.size(); ++i) {
      if (outs[i]->data().size() < want[i]) done = false;
    }
    if (done) break;
    const int fires = mgr.sim().step();
    idle_streak = (fires == 0) ? idle_streak + 1 : 0;
    if (idle_streak > 2) {
      mgr.release(id);
      throw ConfigError("run_config('" + cfg.name +
                        "'): array idle before expected outputs");
    }
  }
  r.cycles = mgr.sim().cycle() - start;
  for (std::size_t i = 0; i < outs.size(); ++i) {
    if (outs[i]->data().size() < want[i]) {
      mgr.release(id);
      throw ConfigError("run_config('" + cfg.name + "'): timeout");
    }
  }
  for (std::size_t i = 0; i < outs.size(); ++i) {
    r.outputs[names[i]] = outs[i]->take();
  }
  mgr.release(id);
  return r;
}

}  // namespace rsp::xpp

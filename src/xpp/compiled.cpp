// Compiled epoch replay: symbolic verification, lowering, SoA replay.
//
// Soundness argument (see compiled.hpp for the lifecycle): given the
// entry state and the per-phase guards, the token *topology* of a
// period is value-independent — every value-dependent decision the
// interpreter can take (demux route, merge select, gate pass, accum
// dump, input-queue depth) is either proven constant at compile time
// or pinned by a guard that is re-checked each phase before any
// mutation.  The builder replays the recorded period symbolically over
// the net has/consumed-mask state, checking each recorded fire against
// the interpreter's exact readiness rules, proving every non-fired
// object could not have fired (conservatively: an unknown data
// decision counts as "could fire" and refuses the compile), and
// requiring the end state to equal the entry state (closure).  Values
// then flow through the lowered op list with the identical arithmetic
// (src/common/word.hpp, src/common/cplx.hpp), so replayed epochs are
// bit-identical to interpretation.
#include "src/xpp/compiled.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "src/common/cplx.hpp"
#include "src/common/fnv.hpp"
#include "src/common/word.hpp"
#include "src/xpp/alu.hpp"
#include "src/xpp/counter.hpp"
#include "src/xpp/fault.hpp"
#include "src/xpp/io.hpp"
#include "src/xpp/ram.hpp"
#include "src/xpp/sim.hpp"

namespace rsp::xpp {

std::uint64_t hash_cycle_events(const std::vector<CycleEvent>& evs) {
  Fnv1a f;
  for (const CycleEvent& e : evs) {
    f.mix(static_cast<std::uint64_t>(e.kind));
    f.mix(static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(e.ptr)));
    f.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.sink)));
  }
  f.mix(evs.size() + 1);
  return f.value();
}

// ---------------------------------------------------------------------------
// Builder: symbolic verification + lowering
// ---------------------------------------------------------------------------

struct CompiledProgram::Builder {
  Simulator& sim;
  CompiledProgram& pr;

  std::unordered_map<const Net*, int> slot_of;
  std::unordered_map<const Object*, int> idx_of;

  // Symbolic evolving net state.  has changes only at the phase commit;
  // mask/stgd evolve as segments are applied in recorded order.
  std::vector<std::uint8_t> has, stgd;
  std::vector<std::uint32_t> mask, full;
  std::vector<std::uint32_t> mask_start;  ///< snapshot at phase start
  std::vector<std::uint8_t> has_entry;
  std::vector<std::uint32_t> mask_entry;

  std::unordered_map<const Object*, int> fifo_sz;
  std::unordered_map<const Object*, bool> tog;
  std::unordered_set<const Object*> firing_inputs;
  /// Input objects' assumed external_pending() > 0 (trace has_work).
  std::unordered_map<const Object*, bool> ext_work;
  std::unordered_map<long long, int> cslot;  ///< (obj_idx, port) -> const slot

  std::vector<Guard> guards;  ///< current phase, flushed into pr
  std::unordered_map<const Object*, std::uint8_t> fired;  ///< obj -> op flags

  Builder(Simulator& s, CompiledProgram& p) : sim(s), pr(p) {}

  /// One recorded fire and the consume/stage events it produced.
  struct Seg {
    Object* obj = nullptr;
    std::vector<std::pair<const Net*, int>> consumes;
    std::vector<const Net*> stages;
    std::vector<char> cuse, suse;
  };

  // -- port helpers ---------------------------------------------------------
  /// The net feeding input @p i, unless a constant shadows it (in_ready
  /// / in_peek / in_consume all give constants precedence).
  const Net* net_port(const Object* o, int i) const {
    return o->in_const(i) ? nullptr : o->in_net(i);
  }

  int in_slot(const Object* o, int i) {
    if (const auto c = o->in_const(i)) {
      const long long key =
          static_cast<long long>(idx_of.at(o)) * kMaxIn + i;
      const auto it = cslot.find(key);
      if (it != cslot.end()) return it->second;
      pr.const_values_.push_back(*c);
      const int s = pr.n_nets_ + static_cast<int>(pr.const_values_.size()) - 1;
      cslot.emplace(key, s);
      return s;
    }
    const Net* n = o->in_net(i);
    return n != nullptr ? slot_of.at(n) : -1;
  }

  /// Unbound outputs discard into the dummy slot (index n_nets_).
  int out_slot(const Object* o, int i) const {
    const Net* n = o->out_net(i);
    return n != nullptr ? slot_of.at(n) : pr.n_nets_;
  }

  // -- symbolic readiness (current, mid-phase, exact) -----------------------
  bool in_ready_cur(const Object* o, int i) const {
    if (o->in_const(i)) return true;
    const Net* n = o->in_net(i);
    if (n == nullptr) return false;
    const int s = slot_of.at(n);
    return has[s] != 0 && ((mask[s] >> o->in_sink(i)) & 1u) == 0;
  }

  bool out_ready_cur(const Object* o, int i) const {
    const Net* n = o->out_net(i);
    if (n == nullptr) return true;
    const int s = slot_of.at(n);
    return stgd[s] == 0 && (has[s] == 0 || (mask[s] & full[s]) == full[s]);
  }

  /// Phase-start readiness.  Exact for a non-fired object: only the
  /// object itself could consume its own sink bit, and has[] changes
  /// only at commit.
  bool in_ready_start(const Object* o, int i) const {
    if (o->in_const(i)) return true;
    const Net* n = o->in_net(i);
    if (n == nullptr) return false;
    const int s = slot_of.at(n);
    return has[s] != 0 && ((mask_start[s] >> o->in_sink(i)) & 1u) == 0;
  }

  /// "Was this output slot free at any point of the phase?"  Exact for
  /// a non-fired object: it is the net's only producer (so staged stays
  /// clear) and the consumed mask only grows, so end-of-phase freedom
  /// is the most permissive the phase ever saw.
  bool out_free_any(const Object* o, int i) const {
    return out_ready_cur(o, i);
  }

  // -- symbolic effects -----------------------------------------------------
  bool sym_consume(const Object* o, int i) {
    const Net* n = net_port(o, i);
    if (n == nullptr) return true;  // constant / unbound: no-op
    const int s = slot_of.at(n);
    const int sink = o->in_sink(i);
    if (has[s] == 0 || ((mask[s] >> sink) & 1u) != 0) return false;
    mask[s] |= 1u << sink;
    return true;
  }

  bool sym_stage(const Object* o, int i) {
    const Net* n = o->out_net(i);
    if (n == nullptr) return true;
    const int s = slot_of.at(n);
    if (stgd[s] != 0 || (has[s] != 0 && (mask[s] & full[s]) != full[s])) {
      return false;
    }
    stgd[s] = 1;
    return true;
  }

  // -- recorded-event bookkeeping -------------------------------------------
  bool take_consume(Seg& g, const Object* o, int i) const {
    const Net* n = o->in_net(i);
    if (n == nullptr) return false;
    const int sink = o->in_sink(i);
    for (std::size_t k = 0; k < g.consumes.size(); ++k) {
      if (g.cuse[k] == 0 && g.consumes[k].first == n &&
          g.consumes[k].second == sink) {
        g.cuse[k] = 1;
        return true;
      }
    }
    return false;
  }

  bool take_stage(Seg& g, const Object* o, int i) const {
    const Net* n = o->out_net(i);
    if (n == nullptr) return false;
    for (std::size_t k = 0; k < g.stages.size(); ++k) {
      if (g.suse[k] == 0 && g.stages[k] == n) {
        g.suse[k] = 1;
        return true;
      }
    }
    return false;
  }

  /// take_consume + sym_consume for a port that must have consumed.
  bool expect_consume(Seg& g, const Object* o, int i) {
    if (net_port(o, i) != nullptr && !take_consume(g, o, i)) return false;
    return sym_consume(o, i);
  }

  /// take_stage + sym_stage for a port that must have staged.
  bool expect_stage(Seg& g, const Object* o, int i) {
    if (o->out_net(i) != nullptr && !take_stage(g, o, i)) return false;
    return sym_stage(o, i);
  }

  void guard_truth(int slot, bool expect) {
    guards.push_back({Guard::Kind::kValueTruth, expect, slot, nullptr});
  }

  // -- setup ----------------------------------------------------------------
  bool enumerate() {
    for (auto& [gid, g] : sim.groups_) {
      (void)gid;
      for (auto& o : g.objects) {
        idx_of.emplace(o.get(), static_cast<int>(pr.objs_.size()));
        pr.objs_.push_back(o.get());
      }
      for (auto& n : g.nets) {
        slot_of.emplace(n.get(), static_cast<int>(pr.nets_.size()));
        pr.nets_.push_back(n.get());
      }
    }
    pr.n_nets_ = static_cast<int>(pr.nets_.size());
    pr.n_objs_ = static_cast<int>(pr.objs_.size());
    if (pr.n_objs_ == 0) return false;
    pr.const_values_.push_back(0);  // dummy discard slot == n_nets_

    has.resize(pr.n_nets_);
    stgd.assign(pr.n_nets_, 0);
    mask.resize(pr.n_nets_);
    full.resize(pr.n_nets_);
    for (int i = 0; i < pr.n_nets_; ++i) {
      const Net* n = pr.nets_[i];
      if (n->staged_.has_value()) return false;  // not a cycle boundary
      has[i] = n->has_value_ ? 1 : 0;
      mask[i] = n->consumed_mask_;
      full[i] = n->num_sinks_ >= 32 ? ~0u : ((1u << n->num_sinks_) - 1u);
    }
    has_entry = has;
    mask_entry = mask;

    for (Object* o : pr.objs_) {
      if (o->kind() == ObjectKind::kRam) {
        auto* rm = static_cast<RamObject*>(o);
        if (rm->params().mode == RamMode::kFifo) {
          pr.fifos_.push_back(rm);
          pr.fifo_entry_.push_back(rm->fifo_size());
          fifo_sz.emplace(o, rm->fifo_size());
        }
      } else if (o->kind() == ObjectKind::kAlu) {
        auto* al = static_cast<AluObject*>(o);
        if (al->params().op == Opcode::kMergeAlt) {
          pr.merges_.push_back(al);
          pr.merge_entry_.push_back(al->merge_toggle_ ? 1 : 0);
          tog.emplace(o, al->merge_toggle_);
        }
      }
    }
    return true;
  }

  bool prepass(const std::vector<const CycleRecord*>& period) {
    for (const CycleRecord* r : period) {
      for (const CycleEvent& e : r->evs) {
        if (e.kind == CycleEvent::Kind::kFire) {
          const auto* o = static_cast<const Object*>(e.ptr);
          if (idx_of.find(o) == idx_of.end()) return false;
          if (o->kind() == ObjectKind::kInput) firing_inputs.insert(o);
        } else {
          if (slot_of.find(static_cast<const Net*>(e.ptr)) == slot_of.end()) {
            return false;
          }
        }
      }
    }
    // Classify input channels.  A firing input must hold samples at
    // every phase (guarded); a never-firing one must keep its entry
    // emptiness (feed deoptimizes, and it never pops).
    for (Object* o : pr.objs_) {
      if (o->kind() != ObjectKind::kInput) continue;
      auto* in = static_cast<InputObject*>(o);
      if (firing_inputs.count(o) != 0) {
        if (in->pending() == 0) return false;  // about to guard-fail
        pr.req_nonempty_inputs_.push_back(in);
        ext_work[o] = true;
      } else {
        const bool empty = in->pending() == 0;
        pr.nonfiring_inputs_.push_back(in);
        pr.nonfiring_empty_.push_back(empty ? 1 : 0);
        ext_work[o] = !empty;
      }
    }
    return true;
  }

  // -- per-fire lowering ----------------------------------------------------
  bool lower_fire(Seg& g) {
    Object* o = g.obj;
    Op op;
    op.obj = o;
    switch (o->kind()) {
      case ObjectKind::kInput: {
        if (!out_ready_cur(o, 0)) return false;
        if (!expect_stage(g, o, 0)) return false;
        op.kind = CKind::kInput;
        op.o0 = out_slot(o, 0);
        break;
      }
      case ObjectKind::kOutput: {
        if (!in_ready_cur(o, 0)) return false;
        if (!expect_consume(g, o, 0)) return false;
        op.kind = CKind::kOutput;
        op.a = in_slot(o, 0);
        if (op.a < 0) return false;
        break;
      }
      case ObjectKind::kCounter: {
        const bool gated = o->in_bound(0);
        if (gated && !in_ready_cur(o, 0)) return false;
        if (!out_ready_cur(o, 0) || !out_ready_cur(o, 1)) return false;
        if (!expect_stage(g, o, 0)) return false;
        if (!expect_stage(g, o, 1)) return false;
        if (gated && !expect_consume(g, o, 0)) return false;
        op.kind = CKind::kCounter;
        op.o0 = out_slot(o, 0);
        op.o1 = out_slot(o, 1);
        break;
      }
      case ObjectKind::kRam:
        if (!lower_ram(g, op)) return false;
        break;
      case ObjectKind::kAlu:
        if (!lower_alu(g, op)) return false;
        break;
    }
    for (const char u : g.cuse) {
      if (u == 0) return false;  // unattributed consume event
    }
    for (const char u : g.suse) {
      if (u == 0) return false;  // unattributed stage event
    }
    fired.emplace(o, op.flags);
    pr.ops_.push_back(op);
    return true;
  }

  bool lower_ram(Seg& g, Op& op) {
    auto* rm = static_cast<RamObject*>(g.obj);
    Object* o = g.obj;
    switch (rm->params().mode) {
      case RamMode::kRam: {
        // Constant-bound ports would make transfers invisible in the
        // event stream (consumes are no-ops): refuse.
        if (o->in_const(0) || o->in_const(1) || o->in_const(2)) return false;
        const bool read = o->in_net(0) != nullptr && take_consume(g, o, 0);
        const bool write = o->in_net(1) != nullptr && take_consume(g, o, 1);
        if (!read && !write) return false;
        if (read) {
          if (!in_ready_cur(o, 0) || !out_ready_cur(o, 0)) return false;
          if (o->out_net(0) != nullptr && !take_stage(g, o, 0)) return false;
          if (!sym_stage(o, 0)) return false;
          if (!sym_consume(o, 0)) return false;
        }
        if (write) {
          if (!(o->in_net(2) != nullptr && take_consume(g, o, 2))) {
            return false;
          }
          if (!sym_consume(o, 1) || !sym_consume(o, 2)) return false;
        }
        // Skipped ports are re-checked for forcedness after the phase
        // (needs end-of-phase state; see lower_phase).
        op.kind = CKind::kRam;
        op.flags = static_cast<std::uint8_t>((read ? kFlagRead : 0) |
                                             (write ? kFlagWrite : 0));
        op.a = in_slot(o, 0);
        op.b = in_slot(o, 1);
        op.c = in_slot(o, 2);
        op.o0 = out_slot(o, 0);
        break;
      }
      case RamMode::kFifo: {
        if (o->in_const(0)) return false;  // invisible pushes
        const bool push = o->in_net(0) != nullptr && take_consume(g, o, 0);
        const bool pop = o->out_net(0) != nullptr && take_stage(g, o, 0);
        int& sz = fifo_sz.at(o);
        // The interpreter pushes/pops whenever it can; the record must
        // agree exactly or the period is not self-consistent.
        const bool can_push = o->in_net(0) != nullptr && in_ready_cur(o, 0) &&
                              sz < rm->params().capacity;
        if (push != can_push) return false;
        if (push) {
          if (!sym_consume(o, 0)) return false;
          ++sz;
        }
        const bool can_pop =
            sz > 0 && o->out_net(0) != nullptr && out_ready_cur(o, 0);
        if (pop != can_pop) return false;
        if (pop) {
          if (!sym_stage(o, 0)) return false;
          --sz;
        }
        if (!push && !pop) return false;
        op.kind = CKind::kFifo;
        op.flags = static_cast<std::uint8_t>((push ? kFlagRead : 0) |
                                             (pop ? kFlagWrite : 0));
        op.a = in_slot(o, 0);
        op.o0 = out_slot(o, 0);
        break;
      }
      case RamMode::kLut: {
        if (!in_ready_cur(o, 0) || !out_ready_cur(o, 0)) return false;
        if (!expect_consume(g, o, 0)) return false;
        if (!expect_stage(g, o, 0)) return false;
        op.kind = CKind::kLut;
        op.a = in_slot(o, 0);
        if (op.a < 0) return false;
        op.o0 = out_slot(o, 0);
        break;
      }
      case RamMode::kCircularLut: {
        const bool gated = o->in_bound(0);
        if (gated && !in_ready_cur(o, 0)) return false;
        if (!out_ready_cur(o, 0)) return false;
        if (!expect_stage(g, o, 0)) return false;
        if (gated && !expect_consume(g, o, 0)) return false;
        op.kind = CKind::kCircLut;
        op.o0 = out_slot(o, 0);
        break;
      }
    }
    return true;
  }

  bool lower_alu(Seg& g, Op& op) {
    auto* al = static_cast<AluObject*>(g.obj);
    Object* o = g.obj;
    const Opcode aop = al->params().op;
    const std::uint8_t sat = al->params().saturate ? kFlagSaturate : 0;
    op.shift = static_cast<std::int16_t>(al->params().shift);
    switch (aop) {
      case Opcode::kDemux: {
        if (!in_ready_cur(o, 0) || !in_ready_cur(o, 1)) return false;
        int route = -1;
        if (o->out_net(0) != nullptr && take_stage(g, o, 0)) {
          route = 0;
        } else if (o->out_net(1) != nullptr && take_stage(g, o, 1)) {
          route = 1;
        }
        const bool b0 = o->out_bound(0), b1 = o->out_bound(1);
        bool blind = false;
        if (route < 0) {
          if (b0 && b1) return false;  // a bound route must have staged
          if (!b0 && !b1) {
            blind = true;  // both discarded: route is unobservable, and
                           // irrelevant — fire has no routed effect
          } else {
            route = b0 ? 1 : 0;  // token went to the unbound side
          }
        }
        if (!blind) {
          if (const auto c0 = o->in_const(0)) {
            if (((*c0 != 0) ? 1 : 0) != route) return false;
          } else {
            guard_truth(in_slot(o, 0), route == 1);
          }
          if (!sym_stage(o, route)) return false;
        }
        if (!expect_consume(g, o, 0)) return false;
        if (!expect_consume(g, o, 1)) return false;
        if (!blind && o->out_net(route) != nullptr) {
          op.kind = CKind::kCopy;
          op.a = in_slot(o, 1);
          op.o0 = out_slot(o, route);
        } else {
          op.kind = CKind::kDrop;
        }
        break;
      }
      case Opcode::kMergeAlt: {
        bool& t = tog.at(o);
        const int src = t ? 1 : 0;
        if (!in_ready_cur(o, src) || !out_ready_cur(o, 0)) return false;
        if (!expect_consume(g, o, src)) return false;
        if (!expect_stage(g, o, 0)) return false;
        op.kind = CKind::kMergeAltCopy;
        op.a = in_slot(o, src);
        if (op.a < 0) return false;
        op.o0 = out_slot(o, 0);
        t = !t;
        break;
      }
      case Opcode::kMergeSel: {
        if (!in_ready_cur(o, 0)) return false;
        int src = -1;
        bool src_taken = false;
        if (const auto c0 = o->in_const(0)) {
          src = (*c0 != 0) ? 2 : 1;
        } else {
          const bool n1 = net_port(o, 1) != nullptr;
          const bool n2 = net_port(o, 2) != nullptr;
          if (n1 && take_consume(g, o, 1)) {
            src = 1;
            src_taken = true;
          } else if (n2 && take_consume(g, o, 2)) {
            src = 2;
            src_taken = true;
          } else if (!n1 && o->in_const(1) && n2) {
            src = 1;  // the net side did not consume, so the const did
          } else if (!n2 && o->in_const(2) && n1) {
            src = 2;
          } else {
            return false;  // both alternatives const: selection unknowable
          }
          guard_truth(in_slot(o, 0), src == 2);
        }
        if (!in_ready_cur(o, src)) return false;
        if (!src_taken && net_port(o, src) != nullptr &&
            !take_consume(g, o, src)) {
          return false;
        }
        if (!sym_consume(o, src)) return false;
        if (!expect_consume(g, o, 0)) return false;
        if (!expect_stage(g, o, 0)) return false;
        op.kind = CKind::kCopy;
        op.a = in_slot(o, src);
        if (op.a < 0) return false;
        op.o0 = out_slot(o, 0);
        break;
      }
      case Opcode::kGate: {
        if (!in_ready_cur(o, 0) || !in_ready_cur(o, 1)) return false;
        bool pass = false;
        if (o->out_net(0) != nullptr) {
          pass = take_stage(g, o, 0);
          if (const auto c1 = o->in_const(1)) {
            if ((*c1 != 0) != pass) return false;
          } else {
            guard_truth(in_slot(o, 1), pass);
          }
          if (pass && !sym_stage(o, 0)) return false;
        }
        // Unbound out0: both truths fire identically with no routed
        // effect, so no guard is needed.
        if (!expect_consume(g, o, 0)) return false;
        if (!expect_consume(g, o, 1)) return false;
        if (pass) {
          op.kind = CKind::kCopy;
          op.a = in_slot(o, 0);
          if (op.a < 0) return false;
          op.o0 = out_slot(o, 0);
        } else {
          op.kind = CKind::kDrop;
        }
        break;
      }
      case Opcode::kAccum:
      case Opcode::kCAccum: {
        if (!in_ready_cur(o, 0) || !in_ready_cur(o, 1)) return false;
        bool dump = false;
        const auto c1 = o->in_const(1);
        if (o->out_net(0) != nullptr) {
          dump = take_stage(g, o, 0);
          if (c1) {
            if ((*c1 != 0) != dump) return false;
          } else {
            guard_truth(in_slot(o, 1), dump);
          }
          if (dump && !sym_stage(o, 0)) return false;
        } else if (c1) {
          dump = *c1 != 0;  // unobservable but constant
        } else {
          return false;  // net-driven dump resets acc_ invisibly
        }
        if (!expect_consume(g, o, 0)) return false;
        if (!expect_consume(g, o, 1)) return false;
        op.kind = aop == Opcode::kAccum ? CKind::kAccum : CKind::kCAccum;
        op.flags = static_cast<std::uint8_t>(sat | (dump ? kFlagDump : 0));
        op.a = in_slot(o, 0);
        if (op.a < 0) return false;
        op.o0 = out_slot(o, 0);
        break;
      }
      default: {
        const OpInfo info = op_info(aop);
        for (int i = 0; i < kMaxIn; ++i) {
          if (((info.in_mask >> i) & 1u) != 0 && !in_ready_cur(o, i)) {
            return false;
          }
        }
        for (int j = 0; j < kMaxOut; ++j) {
          if (((info.out_mask >> j) & 1u) != 0 && !out_ready_cur(o, j)) {
            return false;
          }
        }
        for (int i = 0; i < kMaxIn; ++i) {
          if (((info.in_mask >> i) & 1u) != 0 && !expect_consume(g, o, i)) {
            return false;
          }
        }
        for (int j = 0; j < kMaxOut; ++j) {
          if (((info.out_mask >> j) & 1u) != 0 && !expect_stage(g, o, j)) {
            return false;
          }
        }
        op.kind = CKind::kAlu;
        op.op = aop;
        op.flags = sat;
        op.a = ((info.in_mask >> 0) & 1u) != 0 ? in_slot(o, 0) : -1;
        op.b = ((info.in_mask >> 1) & 1u) != 0 ? in_slot(o, 1) : -1;
        op.c = ((info.in_mask >> 2) & 1u) != 0 ? in_slot(o, 2) : -1;
        if ((((info.in_mask >> 0) & 1u) != 0 && op.a < 0) ||
            (((info.in_mask >> 1) & 1u) != 0 && op.b < 0) ||
            (((info.in_mask >> 2) & 1u) != 0 && op.c < 0)) {
          return false;
        }
        op.o0 = ((info.out_mask >> 0) & 1u) != 0 ? out_slot(o, 0) : -1;
        op.o1 = ((info.out_mask >> 1) & 1u) != 0 ? out_slot(o, 1) : -1;
        break;
      }
    }
    return true;
  }

  // -- maximality: could a non-fired object have fired? ---------------------
  bool could_fire(const Object* o) const {
    switch (o->kind()) {
      case ObjectKind::kInput:
        return ext_work.at(o) && out_free_any(o, 0);
      case ObjectKind::kOutput:
        return in_ready_start(o, 0);
      case ObjectKind::kCounter: {
        if (o->in_bound(0) && !in_ready_start(o, 0)) return false;
        return out_free_any(o, 0) && out_free_any(o, 1);
      }
      case ObjectKind::kRam: {
        const auto* rm = static_cast<const RamObject*>(o);
        switch (rm->params().mode) {
          case RamMode::kRam:
            return (o->in_bound(0) && in_ready_start(o, 0) &&
                    out_free_any(o, 0)) ||
                   (o->in_bound(1) && o->in_bound(2) &&
                    in_ready_start(o, 1) && in_ready_start(o, 2));
          case RamMode::kFifo: {
            const int sz = fifo_sz.at(o);  // unchanged: it did not fire
            return (o->in_bound(0) && in_ready_start(o, 0) &&
                    sz < rm->params().capacity) ||
                   (sz > 0 && o->out_bound(0) && out_free_any(o, 0));
          }
          case RamMode::kLut:
            return in_ready_start(o, 0) && out_free_any(o, 0);
          case RamMode::kCircularLut:
            return (!o->in_bound(0) || in_ready_start(o, 0)) &&
                   out_free_any(o, 0);
        }
        return true;
      }
      case ObjectKind::kAlu: {
        const auto* al = static_cast<const AluObject*>(o);
        switch (al->params().op) {
          case Opcode::kDemux: {
            if (!in_ready_start(o, 0) || !in_ready_start(o, 1)) return false;
            if (const auto c0 = o->in_const(0)) {
              return out_free_any(o, (*c0 != 0) ? 1 : 0);
            }
            return out_free_any(o, 0) || out_free_any(o, 1);
          }
          case Opcode::kMergeAlt:
            return in_ready_start(o, tog.at(o) ? 1 : 0) && out_free_any(o, 0);
          case Opcode::kMergeSel: {
            if (!in_ready_start(o, 0)) return false;
            if (const auto c0 = o->in_const(0)) {
              const int src = (*c0 != 0) ? 2 : 1;
              return in_ready_start(o, src) && out_free_any(o, 0);
            }
            return (in_ready_start(o, 1) || in_ready_start(o, 2)) &&
                   out_free_any(o, 0);
          }
          case Opcode::kGate:
          case Opcode::kAccum:
          case Opcode::kCAccum: {
            if (!in_ready_start(o, 0) || !in_ready_start(o, 1)) return false;
            if (const auto c1 = o->in_const(1)) {
              return *c1 == 0 ? true : out_free_any(o, 0);
            }
            return true;  // data decides the out requirement: could fire
          }
          default: {
            const OpInfo info = op_info(al->params().op);
            for (int i = 0; i < kMaxIn; ++i) {
              if (((info.in_mask >> i) & 1u) != 0 && !in_ready_start(o, i)) {
                return false;
              }
            }
            for (int j = 0; j < kMaxOut; ++j) {
              if (((info.out_mask >> j) & 1u) != 0 && !out_free_any(o, j)) {
                return false;
              }
            }
            return true;
          }
        }
      }
    }
    return true;
  }

  // -- one phase ------------------------------------------------------------
  bool lower_phase(const CycleRecord& r) {
    pr.phase_has_.insert(pr.phase_has_.end(), has.begin(), has.end());
    pr.phase_mask_.insert(pr.phase_mask_.end(), mask.begin(), mask.end());
    // Phase-start FIFO depths and merge toggles, so any phase boundary
    // can serve as a re-arm entry (not just phase 0).
    for (RamObject* f : pr.fifos_) pr.fifo_phase_.push_back(fifo_sz.at(f));
    for (AluObject* m : pr.merges_) {
      pr.merge_phase_.push_back(tog.at(m) ? 1 : 0);
    }
    mask_start = mask;
    guards.clear();
    fired.clear();
    const std::size_t op_begin = pr.ops_.size();
    // Every firing input is guarded non-empty at every phase: the pops
    // are unconditional, and the trace classifier assumes has_work.
    for (InputObject* in : pr.req_nonempty_inputs_) {
      guards.push_back({Guard::Kind::kInputNonEmpty, true, -1, in});
    }

    // Parse the event stream into fire segments, lowering in order.
    std::vector<std::pair<const Net*, int>> pc;
    std::vector<const Net*> ps;
    for (const CycleEvent& e : r.evs) {
      switch (e.kind) {
        case CycleEvent::Kind::kConsume:
          pc.emplace_back(static_cast<const Net*>(e.ptr), e.sink);
          break;
        case CycleEvent::Kind::kStage:
          ps.push_back(static_cast<const Net*>(e.ptr));
          break;
        case CycleEvent::Kind::kFire: {
          const auto it = idx_of.find(static_cast<const Object*>(e.ptr));
          if (it == idx_of.end()) return false;
          Seg g;
          g.obj = pr.objs_[static_cast<std::size_t>(it->second)];
          g.consumes = std::move(pc);
          g.stages = std::move(ps);
          g.cuse.assign(g.consumes.size(), 0);
          g.suse.assign(g.stages.size(), 0);
          pc.clear();
          ps.clear();
          if (fired.count(g.obj) != 0) return false;  // one fire per cycle
          if (!lower_fire(g)) return false;
          break;
        }
      }
    }
    if (!pc.empty() || !ps.empty()) return false;  // orphan events
    if (pr.ops_.size() == op_begin) return false;  // zero-fire phase

    // Maximality for non-fired objects; forcedness for the RAM ports a
    // partial fire skipped.
    for (Object* o : pr.objs_) {
      const auto fit = fired.find(o);
      if (fit != fired.end()) {
        if (o->kind() == ObjectKind::kRam) {
          const auto* rm = static_cast<const RamObject*>(o);
          if (rm->params().mode == RamMode::kRam) {
            const std::uint8_t f = fit->second;
            if ((f & kFlagRead) == 0 && o->in_bound(0) &&
                in_ready_start(o, 0) && out_free_any(o, 0)) {
              return false;
            }
            if ((f & kFlagWrite) == 0 && o->in_bound(1) && o->in_bound(2) &&
                in_ready_start(o, 1) && in_ready_start(o, 2)) {
              return false;
            }
          }
        }
        continue;
      }
      if (could_fire(o)) return false;
    }

    // Symbolic superset commit (drop-then-latch, like Net::commit).
    std::vector<std::uint8_t> latched(static_cast<std::size_t>(pr.n_nets_), 0);
    for (int i = 0; i < pr.n_nets_; ++i) {
      if (has[i] != 0 && (mask[i] & full[i]) == full[i]) {
        has[i] = 0;
        mask[i] = 0;
      }
      if (stgd[i] != 0) {
        pr.latch_slots_.push_back(i);
        latched[static_cast<std::size_t>(i)] = 1;
        has[i] = 1;
        mask[i] = 0;
        stgd[i] = 0;
      }
    }
    pr.latch_end_.push_back(static_cast<std::int32_t>(pr.latch_slots_.size()));
    pr.op_end_.push_back(static_cast<std::int32_t>(pr.ops_.size()));
    pr.guards_.insert(pr.guards_.end(), guards.begin(), guards.end());
    pr.guard_end_.push_back(static_cast<std::int32_t>(pr.guards_.size()));

    // Post-commit trace deltas: net bits, then the on_cycle object
    // classification against the post-commit state.
    for (int i = 0; i < pr.n_nets_; ++i) {
      std::uint8_t b = 0;
      if (has[i] != 0) b |= kNetOccupied;
      if (latched[static_cast<std::size_t>(i)] != 0) b |= kNetLatched;
      pr.tnet_bits_.push_back(b);
    }
    for (Object* o : pr.objs_) {
      pr.tobj_cls_.push_back(classify(o));
    }
    return true;
  }

  bool in_ready_post(const Object* o, int i) const {
    if (o->in_const(i)) return true;
    const Net* n = o->in_net(i);
    if (n == nullptr) return false;
    const int s = slot_of.at(n);
    return has[s] != 0 && ((mask[s] >> o->in_sink(i)) & 1u) == 0;
  }

  /// Mirror Tracer::on_cycle for a post-commit boundary.  Post-commit a
  /// net can never be has-and-fully-consumed (the drop just ran), so
  /// can_write reduces to !has.
  std::uint8_t classify(const Object* o) const {
    if (fired.count(o) != 0) return kClsFired;
    bool has_work = false;
    const auto ew = ext_work.find(o);
    if (ew != ext_work.end()) has_work = ew->second;
    for (int i = 0; i < kMaxIn && !has_work; ++i) {
      const Net* n = o->in_net(i);
      if (n == nullptr) continue;
      const int s = slot_of.at(n);
      has_work = has[s] != 0 && ((mask[s] >> o->in_sink(i)) & 1u) == 0;
    }
    if (!has_work) return kClsIdle;
    for (int i = 0; i < kMaxIn; ++i) {
      if (o->in_bound(i) && !in_ready_post(o, i)) return kClsStallIn;
    }
    for (int j = 0; j < kMaxOut; ++j) {
      const Net* n = o->out_net(j);
      if (n != nullptr && has[slot_of.at(n)] != 0) return kClsStallOut;
    }
    return kClsIdle;
  }

  bool closure() const {
    if (has != has_entry || mask != mask_entry) return false;
    for (std::size_t k = 0; k < pr.fifos_.size(); ++k) {
      if (fifo_sz.at(pr.fifos_[k]) != pr.fifo_entry_[k]) return false;
    }
    for (std::size_t k = 0; k < pr.merges_.size(); ++k) {
      if (tog.at(pr.merges_[k]) != (pr.merge_entry_[k] != 0)) return false;
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// CompiledProgram
// ---------------------------------------------------------------------------

CompiledProgram::~CompiledProgram() = default;

std::unique_ptr<CompiledProgram> CompiledProgram::build(
    Simulator& sim, const std::vector<const CycleRecord*>& period) {
  if (period.empty()) return nullptr;
  std::unique_ptr<CompiledProgram> prog(new CompiledProgram());
  prog->period_ = static_cast<int>(period.size());
  Builder b(sim, *prog);
  if (!b.enumerate() || !b.prepass(period)) return nullptr;
  for (const CycleRecord* r : period) {
    if (!b.lower_phase(*r)) return nullptr;
  }
  if (!b.closure()) return nullptr;
  prog->records_.reserve(period.size());
  for (const CycleRecord* r : period) prog->records_.push_back(*r);
  return prog;
}

bool CompiledProgram::phase_matches(const Simulator& sim, int k) const {
  (void)sim;  // phase-start state lives behind the captured pointers
  const std::size_t row =
      static_cast<std::size_t>(k) * static_cast<std::size_t>(n_nets_);
  for (int i = 0; i < n_nets_; ++i) {
    const Net* n = nets_[static_cast<std::size_t>(i)];
    if (n->staged_.has_value()) return false;
    if ((n->has_value_ ? 1 : 0) != phase_has_[row + static_cast<std::size_t>(i)]) {
      return false;
    }
    if (n->consumed_mask_ != phase_mask_[row + static_cast<std::size_t>(i)]) {
      return false;
    }
  }
  const std::size_t frow = static_cast<std::size_t>(k) * fifos_.size();
  for (std::size_t f = 0; f < fifos_.size(); ++f) {
    if (fifos_[f]->fifo_size() != fifo_phase_[frow + f]) return false;
  }
  const std::size_t mrow = static_cast<std::size_t>(k) * merges_.size();
  for (std::size_t m = 0; m < merges_.size(); ++m) {
    if (merges_[m]->merge_toggle_ != (merge_phase_[mrow + m] != 0)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < nonfiring_inputs_.size(); ++i) {
    if (nonfiring_inputs_[i]->queue_.empty() != (nonfiring_empty_[i] != 0)) {
      return false;
    }
  }
  for (const InputObject* in : req_nonempty_inputs_) {
    if (in->queue_.empty()) return false;
  }
  return true;
}

bool CompiledProgram::guards_pass_live(int k) const {
  const std::int32_t gb =
      k == 0 ? 0 : guard_end_[static_cast<std::size_t>(k) - 1];
  for (std::int32_t gi = gb; gi < guard_end_[static_cast<std::size_t>(k)];
       ++gi) {
    const Guard& g = guards_[static_cast<std::size_t>(gi)];
    if (g.kind == Guard::Kind::kInputNonEmpty) {
      if (g.input->queue_.empty()) return false;
      continue;
    }
    // Value guards always reference a slot that is live (committed) at
    // the guarded phase's entry, so the net's value is authoritative;
    // const slots can't occur today but read from const_values_ anyway.
    const Word v = g.slot < n_nets_
                       ? nets_[static_cast<std::size_t>(g.slot)]->value_
                       : const_values_[static_cast<std::size_t>(
                             g.slot - n_nets_)];
    if ((v != 0) != g.expect) return false;
  }
  return true;
}

bool CompiledProgram::arm(Simulator& sim, int entry) {
  Tracer* tr = sim.tracer_;
  if (tr != nullptr) {
    // Resolve counter-store pointers up front (paused tracers too: a
    // mid-epoch resume must keep collecting).  A missing entry means
    // the tracer never registered this group — refuse, untouched.
    tpae_.resize(objs_.size());
    trow_.resize(objs_.size());
    tnete_.resize(nets_.size());
    for (std::size_t m = 0; m < objs_.size(); ++m) {
      const auto it = tr->objs_.find(objs_[m]);
      if (it == tr->objs_.end()) return false;
      tpae_[m] = &it->second;
      trow_[m] = static_cast<std::int16_t>(it->second.row);
    }
    for (std::size_t i = 0; i < nets_.size(); ++i) {
      const auto it = tr->nets_.find(nets_[i]);
      if (it == tr->nets_.end()) return false;
      tnete_[i] = &it->second;
    }
  }
  const std::size_t slots =
      static_cast<std::size_t>(n_nets_) + const_values_.size();
  value_.resize(slots);
  staged_.assign(slots, 0);
  for (int i = 0; i < n_nets_; ++i) {
    value_[static_cast<std::size_t>(i)] = nets_[static_cast<std::size_t>(i)]->value_;
  }
  for (std::size_t k = 0; k < const_values_.size(); ++k) {
    value_[static_cast<std::size_t>(n_nets_) + k] = const_values_[k];
  }
  latch_accum_.assign(static_cast<std::size_t>(n_nets_), 0);
  // Value packing is phase-independent: every slot the program reads
  // from phase `entry` onward is either live now (committed value just
  // copied) or re-latched before its first read — the symbolic
  // readiness rules make a stale read impossible at any verified
  // phase boundary.
  pos_ = entry;
  // The worklists are re-derived at unpack; clear them so stale queued
  // flags cannot leak across the epoch.
  for (Object* o : sim.ready_) o->set_sched_queued(false);
  for (Object* o : sim.next_ready_) o->set_sched_queued(false);
  sim.ready_.clear();
  sim.next_ready_.clear();
  for (Net* n : sim.dirty_nets_) n->clear_dirty();
  sim.dirty_nets_.clear();
  return true;
}

int CompiledProgram::exec_phase(Simulator& sim) {
  const int p = pos_;
  const std::int32_t gb = p == 0 ? 0 : guard_end_[static_cast<std::size_t>(p) - 1];
  for (std::int32_t gi = gb; gi < guard_end_[static_cast<std::size_t>(p)]; ++gi) {
    const Guard& g = guards_[static_cast<std::size_t>(gi)];
    const bool ok = g.kind == Guard::Kind::kValueTruth
                        ? (value_[static_cast<std::size_t>(g.slot)] != 0) ==
                              g.expect
                        : !g.input->queue_.empty();
    if (!ok) {
      unpack(sim);
      return -1;
    }
  }

  const long long cyc = sim.cycle_;
  Word* val = value_.data();
  Word* stg = staged_.data();
  const std::int32_t ob = p == 0 ? 0 : op_end_[static_cast<std::size_t>(p) - 1];
  const std::int32_t oe = op_end_[static_cast<std::size_t>(p)];
  for (std::int32_t k = ob; k < oe; ++k) {
    const Op& op = ops_[static_cast<std::size_t>(k)];
    switch (op.kind) {
      case CKind::kAlu: {
        const Word a = op.a >= 0 ? val[op.a] : 0;
        const Word b = op.b >= 0 ? val[op.b] : 0;
        const Word c = op.c >= 0 ? val[op.c] : 0;
        const bool sat = (op.flags & kFlagSaturate) != 0;
        const auto clamp = [sat](long long v) {
          return sat ? saturate(v, kWordBits) : wrap24(v);
        };
        const int shift = op.shift;
        Word r0 = 0;
        Word r1 = 0;
        switch (op.op) {
          case Opcode::kNop:  r0 = a; break;
          case Opcode::kAdd:  r0 = clamp(static_cast<long long>(a) + b); break;
          case Opcode::kSub:  r0 = clamp(static_cast<long long>(a) - b); break;
          case Opcode::kMul:  r0 = clamp(static_cast<long long>(a) * b); break;
          case Opcode::kMulShr:
            r0 = clamp(shr_round(static_cast<std::int32_t>(
                           saturate(static_cast<long long>(a) * b, 31)),
                       shift));
            break;
          case Opcode::kNeg:  r0 = clamp(-static_cast<long long>(a)); break;
          case Opcode::kAbs:
            r0 = clamp(a < 0 ? -static_cast<long long>(a) : a);
            break;
          case Opcode::kMin:  r0 = a < b ? a : b; break;
          case Opcode::kMax:  r0 = a > b ? a : b; break;
          case Opcode::kAnd:  r0 = wrap24(a & b); break;
          case Opcode::kOr:   r0 = wrap24(a | b); break;
          case Opcode::kXor:  r0 = wrap24(a ^ b); break;
          case Opcode::kNot:  r0 = wrap24(~a); break;
          case Opcode::kShl:
            r0 = clamp(static_cast<long long>(a) << shift);
            break;
          case Opcode::kShr:      r0 = a >> shift; break;
          case Opcode::kShrRound: r0 = shr_round(a, shift); break;
          case Opcode::kEq:       r0 = a == b; break;
          case Opcode::kNe:       r0 = a != b; break;
          case Opcode::kLt:       r0 = a < b; break;
          case Opcode::kLe:       r0 = a <= b; break;
          case Opcode::kGt:       r0 = a > b; break;
          case Opcode::kGe:       r0 = a >= b; break;
          case Opcode::kMux:      r0 = (a != 0) ? c : b; break;
          case Opcode::kSwap:
            if (a != 0) { r0 = c; r1 = b; } else { r0 = b; r1 = c; }
            break;
          case Opcode::kDup:      r0 = a; r1 = a; break;
          case Opcode::kPack:     r0 = pack_iq(a, b); break;
          case Opcode::kUnpack:   r0 = unpack_i(a); r1 = unpack_q(a); break;
          case Opcode::kSel4:
            r0 = static_cast<AluObject*>(op.obj)
                     ->p_.table[static_cast<unsigned>(a) & 3u];
            break;
          case Opcode::kCAdd:
            r0 = pack_cplx(
                sat_cplx(unpack_cplx(a) + unpack_cplx(b), kHalfBits));
            break;
          case Opcode::kCSub:
            r0 = pack_cplx(
                sat_cplx(unpack_cplx(a) - unpack_cplx(b), kHalfBits));
            break;
          case Opcode::kCMulShr: {
            const CplxI z = unpack_cplx(a) * unpack_cplx(b);
            r0 = pack_cplx(sat_cplx(shr_round(z, shift), kHalfBits));
            break;
          }
          case Opcode::kCConj:
            r0 = pack_cplx(unpack_cplx(a).conj());
            break;
          case Opcode::kCRotMj: {
            const CplxI z = unpack_cplx(a);
            r0 = pack_cplx(sat_cplx({z.im, -z.re}, kHalfBits));
            break;
          }
          case Opcode::kCNeg: {
            const CplxI z = unpack_cplx(a);
            r0 = pack_cplx(sat_cplx({-z.re, -z.im}, kHalfBits));
            break;
          }
          default: break;  // steering ops never lower to CKind::kAlu
        }
        if (op.o0 >= 0) stg[op.o0] = r0;
        if (op.o1 >= 0) stg[op.o1] = r1;
        break;
      }
      case CKind::kCopy:
        stg[op.o0] = val[op.a];
        break;
      case CKind::kDrop:
        break;
      case CKind::kMergeAltCopy: {
        auto* al = static_cast<AluObject*>(op.obj);
        stg[op.o0] = val[op.a];
        al->merge_toggle_ = !al->merge_toggle_;
        break;
      }
      case CKind::kAccum: {
        auto* al = static_cast<AluObject*>(op.obj);
        const Word in0 = val[op.a];
        const bool sat = (op.flags & kFlagSaturate) != 0;
        al->acc_ = sat ? saturate(static_cast<long long>(al->acc_) + in0,
                                  kWordBits)
                       : wrap24(static_cast<long long>(al->acc_) + in0);
        if ((op.flags & kFlagDump) != 0) {
          const Word r = sat ? saturate(shr_round(al->acc_, op.shift),
                                        kWordBits)
                             : wrap24(shr_round(al->acc_, op.shift));
          stg[op.o0] = r;
          al->acc_ = 0;
        }
        break;
      }
      case CKind::kCAccum: {
        auto* al = static_cast<AluObject*>(op.obj);
        const CplxI z = unpack_cplx(val[op.a]);
        al->cacc_re_ += z.re;
        al->cacc_im_ += z.im;
        if ((op.flags & kFlagDump) != 0) {
          const Word re = saturate(
              shr_round(static_cast<std::int32_t>(saturate(al->cacc_re_, 31)),
                        op.shift),
              kHalfBits);
          const Word im = saturate(
              shr_round(static_cast<std::int32_t>(saturate(al->cacc_im_, 31)),
                        op.shift),
              kHalfBits);
          stg[op.o0] = pack_iq(re, im);
          al->cacc_re_ = 0;
          al->cacc_im_ = 0;
        }
        break;
      }
      case CKind::kCounter: {
        auto* cn = static_cast<CounterObject*>(op.obj);
        const bool wraps = cn->p_.modulo > 0 && cn->remaining_ == 1;
        stg[op.o0] = cn->value_;
        stg[op.o1] = wraps ? 1 : 0;
        if (wraps) {
          cn->value_ = cn->p_.start;
          cn->remaining_ = cn->p_.modulo;
        } else {
          cn->value_ =
              wrap24(static_cast<long long>(cn->value_) + cn->p_.step);
          if (cn->p_.modulo > 0) --cn->remaining_;
        }
        break;
      }
      case CKind::kRam: {
        auto* rm = static_cast<RamObject*>(op.obj);
        const auto cap = static_cast<std::uint32_t>(rm->p_.capacity);
        if ((op.flags & kFlagRead) != 0) {
          stg[op.o0] = rm->mem_[static_cast<std::uint32_t>(val[op.a]) % cap];
        }
        if ((op.flags & kFlagWrite) != 0) {
          rm->mem_[static_cast<std::uint32_t>(val[op.b]) % cap] = val[op.c];
        }
        break;
      }
      case CKind::kFifo: {
        auto* rm = static_cast<RamObject*>(op.obj);
        if ((op.flags & kFlagRead) != 0) rm->fifo_.push_back(val[op.a]);
        if ((op.flags & kFlagWrite) != 0) {
          stg[op.o0] = rm->fifo_.front();
          rm->fifo_.pop_front();
        }
        break;
      }
      case CKind::kLut: {
        auto* rm = static_cast<RamObject*>(op.obj);
        stg[op.o0] = rm->p_.preload[static_cast<std::uint32_t>(val[op.a]) %
                                    rm->p_.preload.size()];
        break;
      }
      case CKind::kCircLut: {
        auto* rm = static_cast<RamObject*>(op.obj);
        stg[op.o0] = rm->p_.preload[rm->replay_pos_];
        rm->replay_pos_ = (rm->replay_pos_ + 1) % rm->p_.preload.size();
        break;
      }
      case CKind::kInput: {
        auto* in = static_cast<InputObject*>(op.obj);
        stg[op.o0] = in->queue_.front();
        in->queue_.pop_front();
        break;
      }
      case CKind::kOutput:
        static_cast<OutputObject*>(op.obj)->data_.push_back(val[op.a]);
        break;
    }
    op.obj->fired_cycle_ = cyc;
    ++op.obj->fire_count_;
  }

  const std::int32_t lb = p == 0 ? 0 : latch_end_[static_cast<std::size_t>(p) - 1];
  for (std::int32_t li = lb; li < latch_end_[static_cast<std::size_t>(p)]; ++li) {
    const std::int32_t s = latch_slots_[static_cast<std::size_t>(li)];
    val[s] = stg[s];
    ++latch_accum_[static_cast<std::size_t>(s)];
  }

  if (sim.tracer_ != nullptr && sim.tracer_->tracing()) {
    apply_trace_phase(sim, p, cyc + 1);
  }
  sim.cycle_ = cyc + 1;
  sim.total_fires_ += oe - ob;
  pos_ = p + 1 == period_ ? 0 : p + 1;
  return oe - ob;
}

void CompiledProgram::apply_trace_phase(Simulator& sim, int phase,
                                        long long cycle_after) {
  Tracer& tr = *sim.tracer_;
  const std::uint8_t* cls =
      &tobj_cls_[static_cast<std::size_t>(phase) *
                 static_cast<std::size_t>(n_objs_)];
  for (int m = 0; m < n_objs_; ++m) {
    PaeCounters& c = *tpae_[static_cast<std::size_t>(m)];
    ++c.traced_cycles;
    switch (cls[m]) {
      case kClsFired:
        // object_fired + on_cycle, fused.
        ++c.fires;
        ++tr.interval_row_fires_[trow_[static_cast<std::size_t>(m)]];
        break;
      case kClsStallIn:
        ++c.stall_in_cycles;
        break;
      case kClsStallOut:
        ++c.stall_out_cycles;
        break;
      default:
        ++c.idle_cycles;
        break;
    }
  }
  const std::uint8_t* nb =
      &tnet_bits_[static_cast<std::size_t>(phase) *
                  static_cast<std::size_t>(n_nets_)];
  for (int i = 0; i < n_nets_; ++i) {
    Tracer::NetEntry& e = *tnete_[static_cast<std::size_t>(i)];
    ++e.c.traced_cycles;
    const bool latched = (nb[i] & kNetLatched) != 0;
    if (latched) {
      ++e.c.tokens;
      ++e.last_generation;  // mirrors the per-phase generation bump
    }
    if ((nb[i] & kNetOccupied) != 0) {
      ++e.c.occupied_cycles;
      if (!latched) ++e.c.backpressure_cycles;
    }
  }
  tr.last_cycle_ = cycle_after;
  if (++tr.interval_cycles_ >= tr.opts_.sample_interval) {
    tr.flush_interval(cycle_after);
  }
}

void CompiledProgram::unpack(Simulator& sim) {
  const std::size_t row =
      static_cast<std::size_t>(pos_) * static_cast<std::size_t>(n_nets_);
  for (int i = 0; i < n_nets_; ++i) {
    Net* n = nets_[static_cast<std::size_t>(i)];
    n->value_ = value_[static_cast<std::size_t>(i)];
    n->has_value_ = phase_has_[row + static_cast<std::size_t>(i)] != 0;
    n->consumed_mask_ = phase_mask_[row + static_cast<std::size_t>(i)];
    n->staged_.reset();
    n->generation_ +=
        static_cast<std::uint64_t>(latch_accum_[static_cast<std::size_t>(i)]);
    n->dirty_ = false;
    latch_accum_[static_cast<std::size_t>(i)] = 0;
  }
  // Reseed the event scheduler conservatively: every object gets one
  // readiness check next cycle; the fixed point is unaffected by the
  // superset seeding.
  for (Object* o : sim.ready_) o->set_sched_queued(false);
  for (Object* o : sim.next_ready_) o->set_sched_queued(false);
  sim.ready_.clear();
  sim.next_ready_.clear();
  sim.dirty_nets_.clear();
  for (Object* o : objs_) o->set_sched_queued(false);
  for (Object* o : objs_) sim.enqueue_next(o);
}

// ---------------------------------------------------------------------------
// CompiledEngine
// ---------------------------------------------------------------------------

CompiledEngine::CompiledEngine(Simulator& sim)
    : sim_(sim), ring_(2 * kMaxCompiledPeriod) {
  cur_ = &ring_[0];
}

void CompiledEngine::end_cycle() {
  cur_->hash = hash_cycle_events(cur_->evs);
  ++stats_.recorded_cycles;
  if (cooldown_ > 0) --cooldown_;

  // Fast re-arm: if the cycle just interpreted is exactly a cached
  // program's final phase and the boundary state equals its entry
  // state, resume replay immediately instead of waiting out a full
  // re-detection window.  This is the common rhythm after a control
  // value (accumulator dump, steering flip) guard-deopts a short
  // program: a few interpreted ripple cycles, then the steady state
  // returns.  Guards keep it sound — a wrong re-arm deopts at phase 0
  // before any mutation.
  // ... suppressed while a period upgrade is pending: re-arming the
  // short program every few cycles would starve the detector of the
  // 2x-longer window the upgrade compile needs.
  bool upgrade_pending = false;
  if (preferred_period_ > 0) {
    upgrade_pending = true;
    for (const auto& pr : cache_) {
      if (pr->period() == preferred_period_) {
        upgrade_pending = false;
        break;
      }
    }
  }
  if (!upgrade_pending && !cache_.empty() &&
      (sim_.injector_ == nullptr || !sim_.injector_->armed())) {
    for (std::size_t i = 0; i < cache_.size(); ++i) {
      CompiledProgram* pr = cache_[i].get();
      // The interpreted cycle may match *any* phase of the resident
      // program, not just the final one: a single-lane guard deopt
      // (batched replay) or a dump-boundary deopt can land mid-period.
      // Check the final phase first — the legacy common case, and the
      // unambiguous one when several phases are structurally identical
      // (arming at any matching phase is sound regardless: the guards
      // pin every value decision, so a mis-phased arm deopts at the
      // next boundary before any mutation).
      const int np = pr->period();
      const auto& recs = pr->records();
      int entry = -1;
      for (int off = 0; off < np; ++off) {
        const int k = (np - 1 + off) % np;  // np-1, 0, 1, ..., np-2
        const std::size_t ks = static_cast<std::size_t>(k);
        if (recs[ks].hash != cur_->hash) continue;
        if (recs[ks].evs != cur_->evs) continue;
        const int e = (k + 1) % np;
        if (!pr->phase_matches(sim_, e)) continue;
        // Live-guard prescreen: discriminates between structurally
        // identical phases whose control values differ (e.g. the
        // despreader's wrap flag) and avoids arm/deopt thrash.
        if (!pr->guards_pass_live(e)) continue;
        entry = e;
        break;
      }
      if (entry < 0) continue;
      if (!pr->arm(sim_, entry)) break;
      armed_ = pr;
      publish(*pr);
      ++stats_.arms;
      ++stats_.rearms;
      if (entry != 0) ++stats_.phase_rearms;
      if (fleet_mode_) {
        // An adopted program went live without the detector ever
        // running; renew the probation allowance for the next deopt.
        ++stats_.fleet_arms;
        fleet_probation_ = kFleetProbation;
      }
      if (i != 0) {
        std::rotate(cache_.begin(),
                    cache_.begin() + static_cast<std::ptrdiff_t>(i),
                    cache_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      }
      reset_detector();
      return;
    }
  }

  // Fleet admission: while adopted programs are resident, arms come
  // exclusively from the fast re-arm scan above and the periodicity
  // detector stays off — that is the "skip steady-state detection"
  // contract.  Fall back to normal detection (per-instance compile +
  // publish) when nothing armed for a whole probation window, or when
  // a guard-deopt rhythm requested a period upgrade that no adopted
  // program satisfies (only the detector can compile the longer
  // period).
  if (fleet_mode_) {
    if (upgrade_pending || --fleet_probation_ <= 0) {
      fleet_mode_ = false;
      fleet_probation_ = 0;
      reset_detector();
      return;
    }
    cur_->evs.clear();
    return;
  }

  const long long c = t_;

  long long prev = -1;
  const auto [it, inserted] = last_seen_.try_emplace(cur_->hash, c);
  if (!inserted) {
    prev = it->second;
    it->second = c;
  }
  if (last_seen_.size() > 8192) {  // aperiodic churn: bound the map
    last_seen_.clear();
    cand_p_ = 0;
    match_run_ = 0;
  } else if (prev >= 0) {
    const long long p = c - prev;
    if (p > 0 && p <= kMaxCompiledPeriod) {
      if (static_cast<int>(p) == cand_p_) {
        ++match_run_;
      } else {
        cand_p_ = static_cast<int>(p);
        match_run_ = 1;
      }
    } else {
      cand_p_ = 0;
      match_run_ = 0;
    }
  } else {
    cand_p_ = 0;
    match_run_ = 0;
  }

  if (cand_p_ > 0 &&
      match_run_ >= static_cast<long long>(kCompiledRepeats - 1) * cand_p_ &&
      c + 1 >= 2LL * cand_p_) {
    // Must run before the ring advances: with p == kMaxCompiledPeriod
    // the slot about to be cleared aliases into the compare window.
    try_arm(cand_p_);
    if (armed_ != nullptr) return;  // detector already repositioned
  }
  t_ = c + 1;
  cur_ = &rec(t_);
  cur_->evs.clear();
}

void CompiledEngine::try_arm(int p) {
  if (sim_.injector_ != nullptr && sim_.injector_->armed()) return;
  // Pending period upgrade: hold out for a double window of the
  // preferred (value) period instead of re-arming the structural
  // sub-period.  Abandoned if the stream stops looking periodic at
  // that length.
  const int pp = preferred_period_;
  if (pp > p && pp % p == 0 && pp <= kMaxCompiledPeriod) {
    if (t_ + 1 < 2LL * pp) return;  // window not deep enough yet
    bool ok = true;
    for (int k = 0; k < pp && ok; ++k) {
      ok = rec(t_ - pp + 1 + k).evs == rec(t_ - 2 * pp + 1 + k).evs;
    }
    if (ok) {
      p = pp;
    } else {
      if (t_ + 1 >= 4LL * pp) preferred_period_ = 0;  // not pp-periodic
      return;
    }
  }
  // Hashes matched; require exact structural equality of the last two
  // periods before spending a compile.
  for (int k = 0; k < p; ++k) {
    if (!(rec(t_ - p + 1 + k).evs == rec(t_ - 2 * p + 1 + k).evs)) return;
  }
  std::vector<const CycleRecord*> period(static_cast<std::size_t>(p));
  for (int k = 0; k < p; ++k) {
    period[static_cast<std::size_t>(k)] = &rec(t_ - p + 1 + k);
  }

  for (std::size_t i = 0; i < cache_.size(); ++i) {
    CompiledProgram* pr = cache_[i].get();
    if (pr->period() != p) continue;
    bool same = true;
    for (int k = 0; k < p && same; ++k) {
      same = pr->records()[static_cast<std::size_t>(k)].evs ==
             period[static_cast<std::size_t>(k)]->evs;
    }
    if (!same || !pr->entry_matches(sim_)) continue;
    if (!pr->arm(sim_)) return;
    armed_ = pr;
    publish(*pr);
    ++stats_.arms;
    ++stats_.rearms;
    if (i != 0) {
      std::rotate(cache_.begin(),
                  cache_.begin() + static_cast<std::ptrdiff_t>(i),
                  cache_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    }
    reset_detector();
    return;
  }

  if (cooldown_ > 0) return;  // recently refused an equivalent candidate

  // Before compiling from scratch, try the cross-simulator cache: an
  // identical terminal may have already compiled this steady state.
  // Behind the cooldown gate on purpose: computing the canonical
  // window signature walks the whole object graph, so it must be paid
  // at compile frequency, not per periodicity candidate.
  if (shared_cache_ != nullptr && try_bind_shared(period)) return;
  std::unique_ptr<CompiledProgram> built = CompiledProgram::build(sim_, period);
  if (built == nullptr) {
    ++stats_.compile_refusals;
    cooldown_ = 4LL * p;
    // A failed upgrade must not keep suppressing the sub-period
    // program; a fresh deopt rhythm will re-request it.
    if (p == preferred_period_) preferred_period_ = 0;
    return;
  }
  ++stats_.compiles;
  if (!built->arm(sim_)) {
    cooldown_ = 4LL * p;
    if (p == preferred_period_) preferred_period_ = 0;
    return;
  }
  armed_ = built.get();
  publish(*built);
  cache_.insert(cache_.begin(), std::move(built));
  if (cache_.size() > kCompiledCacheSize) cache_.pop_back();
  ++stats_.arms;
  reset_detector();
}

void CompiledEngine::set_shared_cache(BatchProgramCache* cache,
                                      std::uint32_t config_crc) {
  shared_cache_ = cache;
  shared_crc_ = config_crc;
  if (cache != nullptr && armed_ != nullptr) publish(*armed_);
}

int CompiledEngine::exec_one() {
  const int fires = armed_->exec_phase(sim_);
  if (fires < 0) {
    // Guard deopt: if this same program last guard-deopted exactly a
    // multiple of its period ago, its period is a structural
    // sub-period of the true value period — schedule an upgrade.
    const long long cyc = sim_.cycle();
    if (armed_ == last_guard_deopt_prog_ && last_guard_deopt_cycle_ >= 0) {
      const long long d = cyc - last_guard_deopt_cycle_;
      const int p = armed_->period();
      if (d > p && d <= kMaxCompiledPeriod && d % p == 0) {
        preferred_period_ = static_cast<int>(d);
      }
    }
    last_guard_deopt_prog_ = armed_;
    last_guard_deopt_cycle_ = cyc;
    armed_ = nullptr;
    ++stats_.deopts;
    return -1;
  }
  ++stats_.replayed_cycles;
  return fires;
}

long long CompiledEngine::replay(long long max_cycles) {
  long long done = 0;
  while (done < max_cycles && armed_ != nullptr) {
    if (sim_.injector_ != nullptr && sim_.injector_->armed()) {
      deoptimize();
      break;
    }
    if (exec_one() < 0) break;
    ++done;
  }
  return done;
}

void CompiledEngine::deoptimize() {
  if (armed_ == nullptr) return;
  armed_->unpack(sim_);
  armed_ = nullptr;
  ++stats_.deopts;
}

void CompiledEngine::invalidate() {
  deoptimize();
  cache_.clear();
  shape_memo_.reset();
  reset_detector();
  cooldown_ = 0;
  last_guard_deopt_prog_ = nullptr;
  last_guard_deopt_cycle_ = -1;
  preferred_period_ = 0;
  // Adopted programs died with the cache; a reconfigured session must
  // re-adopt against its new object graph before skipping detection.
  fleet_mode_ = false;
  fleet_probation_ = 0;
}

void CompiledEngine::reset_detector() {
  t_ = 0;
  last_seen_.clear();
  cand_p_ = 0;
  match_run_ = 0;
  cur_ = &ring_[0];
  cur_->evs.clear();
}

}  // namespace rsp::xpp

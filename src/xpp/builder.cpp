#include "src/xpp/builder.hpp"

#include <cstdint>
#include <set>
#include <vector>

#include "src/dedhw/crc.hpp"

namespace rsp::xpp {

ObjHandle ConfigBuilder::add(ObjectSpec spec) {
  cfg_.objects.push_back(std::move(spec));
  return {static_cast<int>(cfg_.objects.size()) - 1};
}

ObjHandle ConfigBuilder::alu(const std::string& name, Opcode op,
                             AluParams extra) {
  extra.op = op;
  ObjectSpec s;
  s.name = name;
  s.kind = ObjectKind::kAlu;
  s.alu = extra;
  return add(std::move(s));
}

ObjHandle ConfigBuilder::alu_shift(const std::string& name, Opcode op,
                                   int shift) {
  AluParams p;
  p.op = op;
  p.shift = shift;
  return alu(name, op, p);
}

ObjHandle ConfigBuilder::sel4(const std::string& name,
                              const std::array<Word, 4>& table) {
  AluParams p;
  p.op = Opcode::kSel4;
  p.table = table;
  return alu(name, Opcode::kSel4, p);
}

ObjHandle ConfigBuilder::counter(const std::string& name, CounterParams p) {
  ObjectSpec s;
  s.name = name;
  s.kind = ObjectKind::kCounter;
  s.counter = p;
  return add(std::move(s));
}

ObjHandle ConfigBuilder::ram(const std::string& name, RamParams p) {
  if (p.capacity <= 0 || p.capacity > kRamWords) {
    throw ConfigError("config '" + cfg_.name + "': RAM '" + name +
                      "' capacity out of range");
  }
  if ((p.mode == RamMode::kLut || p.mode == RamMode::kCircularLut) &&
      p.preload.empty()) {
    throw ConfigError("config '" + cfg_.name + "': RAM '" + name +
                      "' LUT mode requires preload");
  }
  if (static_cast<int>(p.preload.size()) > p.capacity) {
    throw ConfigError("config '" + cfg_.name + "': RAM '" + name +
                      "' preload exceeds capacity");
  }
  ObjectSpec s;
  s.name = name;
  s.kind = ObjectKind::kRam;
  s.ram = std::move(p);
  return add(std::move(s));
}

ObjHandle ConfigBuilder::input(const std::string& name) {
  ObjectSpec s;
  s.name = name;
  s.kind = ObjectKind::kInput;
  return add(std::move(s));
}

ObjHandle ConfigBuilder::control_input(const std::string& name) {
  ObjectSpec s;
  s.name = name;
  s.kind = ObjectKind::kInput;
  s.control = true;
  return add(std::move(s));
}

ObjHandle ConfigBuilder::output(const std::string& name) {
  ObjectSpec s;
  s.name = name;
  s.kind = ObjectKind::kOutput;
  return add(std::move(s));
}

void ConfigBuilder::tie(ObjHandle obj, int port, Word value) {
  cfg_.objects.at(static_cast<std::size_t>(obj.index))
      .consts.emplace_back(port, value);
}

void ConfigBuilder::connect(PortRef src, PortRef dst) {
  cfg_.connections.push_back({src, dst, std::nullopt});
}

void ConfigBuilder::connect_preload(PortRef src, PortRef dst, Word initial) {
  cfg_.connections.push_back({src, dst, initial});
}

void ConfigBuilder::place(ObjHandle obj, Coord at) {
  cfg_.objects.at(static_cast<std::size_t>(obj.index)).placement = at;
}

void ConfigBuilder::validate() const {
  std::set<std::string> names;
  for (const auto& o : cfg_.objects) {
    if (!names.insert(o.name).second) {
      throw ConfigError("config '" + cfg_.name + "': duplicate object name '" +
                        o.name + "'");
    }
  }
  const int n = static_cast<int>(cfg_.objects.size());
  for (const auto& c : cfg_.connections) {
    if (c.src.object < 0 || c.src.object >= n || c.dst.object < 0 ||
        c.dst.object >= n) {
      throw ConfigError("config '" + cfg_.name +
                        "': connection references unknown object");
    }
    if (c.src.port < 0 || c.src.port >= kMaxOut || c.dst.port < 0 ||
        c.dst.port >= kMaxIn) {
      throw ConfigError("config '" + cfg_.name +
                        "': connection port index out of range");
    }
    const auto& so = cfg_.objects[static_cast<std::size_t>(c.src.object)];
    if (so.kind == ObjectKind::kOutput) {
      throw ConfigError("config '" + cfg_.name +
                        "': OUTPUT object used as a source");
    }
    const auto& dobj = cfg_.objects[static_cast<std::size_t>(c.dst.object)];
    if (dobj.kind == ObjectKind::kInput) {
      throw ConfigError("config '" + cfg_.name +
                        "': INPUT object used as a sink");
    }
  }
  // Required-input coverage for ALU objects.  One pass over the
  // connection/constant lists builds per-object bound-port masks so
  // validation stays linear in the configuration size.
  std::vector<unsigned> bound(static_cast<std::size_t>(n), 0u);
  for (const auto& c : cfg_.connections) {
    bound[static_cast<std::size_t>(c.dst.object)] |= 1u << c.dst.port;
  }
  for (int oi = 0; oi < n; ++oi) {
    const auto& o = cfg_.objects[static_cast<std::size_t>(oi)];
    for (const auto& [p, v] : o.consts) {
      (void)v;
      if (p >= 0 && p < kMaxIn) bound[static_cast<std::size_t>(oi)] |= 1u << p;
    }
  }
  for (int oi = 0; oi < n; ++oi) {
    const auto& o = cfg_.objects[static_cast<std::size_t>(oi)];
    if (o.kind != ObjectKind::kAlu) continue;
    const OpInfo info = op_info(o.alu.op);
    const unsigned missing =
        info.in_mask & ~bound[static_cast<std::size_t>(oi)];
    if (missing == 0) continue;
    for (int port = 0; port < kMaxIn; ++port) {
      if ((missing >> port) & 1u) {
        throw ConfigError("config '" + cfg_.name + "': object '" + o.name +
                          "' (" + opcode_name(o.alu.op) + ") input " +
                          std::to_string(port) + " unbound");
      }
    }
  }
}

Configuration ConfigBuilder::build() const {
  validate();
  Configuration out = cfg_;
  out.checksum = config_crc32(out);
  return out;
}

namespace {

/// Canonical byte serializer feeding the configuration CRC.  Field
/// order is fixed; every record is tagged so permuted or truncated
/// configurations cannot collide by concatenation.
struct CrcSink {
  std::vector<std::uint8_t> bytes;

  void u8(std::uint8_t v) { bytes.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void word(Word v) { u32(static_cast<std::uint32_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    for (const char c : s) u8(static_cast<std::uint8_t>(c));
  }
};

}  // namespace

std::uint32_t config_crc32(const Configuration& cfg) {
  CrcSink s;
  s.str(cfg.name);
  s.u32(static_cast<std::uint32_t>(cfg.objects.size()));
  for (const auto& o : cfg.objects) {
    s.u8(0xA0);
    s.str(o.name);
    s.u8(static_cast<std::uint8_t>(o.kind));
    s.u8(o.control ? 1 : 0);
    s.u8(static_cast<std::uint8_t>(o.alu.op));
    s.u32(static_cast<std::uint32_t>(o.alu.shift));
    s.u8(o.alu.saturate ? 1 : 0);
    for (const Word w : o.alu.table) s.word(w);
    s.word(o.counter.start);
    s.word(o.counter.step);
    s.word(o.counter.modulo);
    s.u8(static_cast<std::uint8_t>(o.ram.mode));
    s.u32(static_cast<std::uint32_t>(o.ram.capacity));
    s.u32(static_cast<std::uint32_t>(o.ram.preload.size()));
    for (const Word w : o.ram.preload) s.word(w);
    s.u8(o.placement.has_value() ? 1 : 0);
    if (o.placement) {
      s.u32(static_cast<std::uint32_t>(o.placement->row));
      s.u32(static_cast<std::uint32_t>(o.placement->col));
    }
    s.u32(static_cast<std::uint32_t>(o.consts.size()));
    for (const auto& [port, value] : o.consts) {
      s.u32(static_cast<std::uint32_t>(port));
      s.word(value);
    }
  }
  s.u32(static_cast<std::uint32_t>(cfg.connections.size()));
  for (const auto& c : cfg.connections) {
    s.u8(0xB0);
    s.u32(static_cast<std::uint32_t>(c.src.object));
    s.u32(static_cast<std::uint32_t>(c.src.port));
    s.u32(static_cast<std::uint32_t>(c.dst.object));
    s.u32(static_cast<std::uint32_t>(c.dst.port));
    s.u8(c.preload.has_value() ? 1 : 0);
    if (c.preload) s.word(*c.preload);
  }
  // CRC-32/IEEE over the byte stream, MSB-first per byte.
  static constexpr dedhw::Crc kCrc32{32, 0x04C11DB7, 0xFFFFFFFFu, 0xFFFFFFFFu};
  std::vector<std::uint8_t> bits;
  bits.reserve(s.bytes.size() * 8);
  for (const auto b : s.bytes) {
    for (int i = 7; i >= 0; --i) {
      bits.push_back(static_cast<std::uint8_t>((b >> i) & 1u));
    }
  }
  return kCrc32.compute(bits);
}

}  // namespace rsp::xpp

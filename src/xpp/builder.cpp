#include "src/xpp/builder.hpp"

#include <set>

namespace rsp::xpp {

ObjHandle ConfigBuilder::add(ObjectSpec spec) {
  cfg_.objects.push_back(std::move(spec));
  return {static_cast<int>(cfg_.objects.size()) - 1};
}

ObjHandle ConfigBuilder::alu(const std::string& name, Opcode op,
                             AluParams extra) {
  extra.op = op;
  ObjectSpec s;
  s.name = name;
  s.kind = ObjectKind::kAlu;
  s.alu = extra;
  return add(std::move(s));
}

ObjHandle ConfigBuilder::alu_shift(const std::string& name, Opcode op,
                                   int shift) {
  AluParams p;
  p.op = op;
  p.shift = shift;
  return alu(name, op, p);
}

ObjHandle ConfigBuilder::sel4(const std::string& name,
                              const std::array<Word, 4>& table) {
  AluParams p;
  p.op = Opcode::kSel4;
  p.table = table;
  return alu(name, Opcode::kSel4, p);
}

ObjHandle ConfigBuilder::counter(const std::string& name, CounterParams p) {
  ObjectSpec s;
  s.name = name;
  s.kind = ObjectKind::kCounter;
  s.counter = p;
  return add(std::move(s));
}

ObjHandle ConfigBuilder::ram(const std::string& name, RamParams p) {
  if (p.capacity <= 0 || p.capacity > kRamWords) {
    throw ConfigError("config '" + cfg_.name + "': RAM '" + name +
                      "' capacity out of range");
  }
  if ((p.mode == RamMode::kLut || p.mode == RamMode::kCircularLut) &&
      p.preload.empty()) {
    throw ConfigError("config '" + cfg_.name + "': RAM '" + name +
                      "' LUT mode requires preload");
  }
  if (static_cast<int>(p.preload.size()) > p.capacity) {
    throw ConfigError("config '" + cfg_.name + "': RAM '" + name +
                      "' preload exceeds capacity");
  }
  ObjectSpec s;
  s.name = name;
  s.kind = ObjectKind::kRam;
  s.ram = std::move(p);
  return add(std::move(s));
}

ObjHandle ConfigBuilder::input(const std::string& name) {
  ObjectSpec s;
  s.name = name;
  s.kind = ObjectKind::kInput;
  return add(std::move(s));
}

ObjHandle ConfigBuilder::control_input(const std::string& name) {
  ObjectSpec s;
  s.name = name;
  s.kind = ObjectKind::kInput;
  s.control = true;
  return add(std::move(s));
}

ObjHandle ConfigBuilder::output(const std::string& name) {
  ObjectSpec s;
  s.name = name;
  s.kind = ObjectKind::kOutput;
  return add(std::move(s));
}

void ConfigBuilder::tie(ObjHandle obj, int port, Word value) {
  cfg_.objects.at(static_cast<std::size_t>(obj.index))
      .consts.emplace_back(port, value);
}

void ConfigBuilder::connect(PortRef src, PortRef dst) {
  cfg_.connections.push_back({src, dst, std::nullopt});
}

void ConfigBuilder::connect_preload(PortRef src, PortRef dst, Word initial) {
  cfg_.connections.push_back({src, dst, initial});
}

void ConfigBuilder::place(ObjHandle obj, Coord at) {
  cfg_.objects.at(static_cast<std::size_t>(obj.index)).placement = at;
}

void ConfigBuilder::validate() const {
  std::set<std::string> names;
  for (const auto& o : cfg_.objects) {
    if (!names.insert(o.name).second) {
      throw ConfigError("config '" + cfg_.name + "': duplicate object name '" +
                        o.name + "'");
    }
  }
  const int n = static_cast<int>(cfg_.objects.size());
  for (const auto& c : cfg_.connections) {
    if (c.src.object < 0 || c.src.object >= n || c.dst.object < 0 ||
        c.dst.object >= n) {
      throw ConfigError("config '" + cfg_.name +
                        "': connection references unknown object");
    }
    if (c.src.port < 0 || c.src.port >= kMaxOut || c.dst.port < 0 ||
        c.dst.port >= kMaxIn) {
      throw ConfigError("config '" + cfg_.name +
                        "': connection port index out of range");
    }
    const auto& so = cfg_.objects[static_cast<std::size_t>(c.src.object)];
    if (so.kind == ObjectKind::kOutput) {
      throw ConfigError("config '" + cfg_.name +
                        "': OUTPUT object used as a source");
    }
    const auto& dobj = cfg_.objects[static_cast<std::size_t>(c.dst.object)];
    if (dobj.kind == ObjectKind::kInput) {
      throw ConfigError("config '" + cfg_.name +
                        "': INPUT object used as a sink");
    }
  }
  // Required-input coverage for ALU objects.  One pass over the
  // connection/constant lists builds per-object bound-port masks so
  // validation stays linear in the configuration size.
  std::vector<unsigned> bound(static_cast<std::size_t>(n), 0u);
  for (const auto& c : cfg_.connections) {
    bound[static_cast<std::size_t>(c.dst.object)] |= 1u << c.dst.port;
  }
  for (int oi = 0; oi < n; ++oi) {
    const auto& o = cfg_.objects[static_cast<std::size_t>(oi)];
    for (const auto& [p, v] : o.consts) {
      (void)v;
      if (p >= 0 && p < kMaxIn) bound[static_cast<std::size_t>(oi)] |= 1u << p;
    }
  }
  for (int oi = 0; oi < n; ++oi) {
    const auto& o = cfg_.objects[static_cast<std::size_t>(oi)];
    if (o.kind != ObjectKind::kAlu) continue;
    const OpInfo info = op_info(o.alu.op);
    const unsigned missing =
        info.in_mask & ~bound[static_cast<std::size_t>(oi)];
    if (missing == 0) continue;
    for (int port = 0; port < kMaxIn; ++port) {
      if ((missing >> port) & 1u) {
        throw ConfigError("config '" + cfg_.name + "': object '" + o.name +
                          "' (" + opcode_name(o.alu.op) + ") input " +
                          std::to_string(port) + " unbound");
      }
    }
  }
}

Configuration ConfigBuilder::build() const {
  validate();
  return cfg_;
}

}  // namespace rsp::xpp

#include "src/xpp/alu.hpp"

#include "src/common/cplx.hpp"
#include "src/common/word.hpp"

namespace rsp::xpp {

Word AluObject::clamp(long long v) const {
  return p_.saturate ? saturate(v, kWordBits) : wrap24(v);
}

bool AluObject::do_fire() {
  const Opcode op = p_.op;

  // Stream-steering opcodes have bespoke readiness rules.
  switch (op) {
    case Opcode::kDemux: {
      if (!in_ready(0) || !in_ready(1)) return false;
      const int sel = in_peek(0) != 0 ? 1 : 0;
      if (!out_ready(sel)) return false;
      out_write(sel, in_peek(1));
      in_consume(0);
      in_consume(1);
      return true;
    }
    case Opcode::kMergeAlt: {
      const int src = merge_toggle_ ? 1 : 0;
      if (!in_ready(src) || !out_ready(0)) return false;
      out_write(0, in_peek(src));
      in_consume(src);
      merge_toggle_ = !merge_toggle_;
      return true;
    }
    case Opcode::kMergeSel: {
      if (!in_ready(0)) return false;
      const int src = in_peek(0) != 0 ? 2 : 1;
      if (!in_ready(src) || !out_ready(0)) return false;
      out_write(0, in_peek(src));
      in_consume(0);
      in_consume(src);
      return true;
    }
    case Opcode::kGate: {
      if (!in_ready(0) || !in_ready(1)) return false;
      const bool pass = in_peek(1) != 0;
      if (pass && !out_ready(0)) return false;
      if (pass) out_write(0, in_peek(0));
      in_consume(0);
      in_consume(1);
      return true;
    }
    case Opcode::kAccum: {
      if (!in_ready(0) || !in_ready(1)) return false;
      const bool dump = in_peek(1) != 0;
      if (dump && !out_ready(0)) return false;
      acc_ = p_.saturate
                 ? saturate(static_cast<long long>(acc_) + in_peek(0), kWordBits)
                 : wrap24(static_cast<long long>(acc_) + in_peek(0));
      if (dump) {
        out_write(0, clamp(shr_round(acc_, p_.shift)));
        acc_ = 0;
      }
      in_consume(0);
      in_consume(1);
      return true;
    }
    case Opcode::kCAccum: {
      if (!in_ready(0) || !in_ready(1)) return false;
      const bool dump = in_peek(1) != 0;
      if (dump && !out_ready(0)) return false;
      const CplxI z = unpack_cplx(in_peek(0));
      cacc_re_ += z.re;
      cacc_im_ += z.im;
      if (dump) {
        const Word re = saturate(shr_round(static_cast<std::int32_t>(
                                     saturate(cacc_re_, 31)), p_.shift),
                                 kHalfBits);
        const Word im = saturate(shr_round(static_cast<std::int32_t>(
                                     saturate(cacc_im_, 31)), p_.shift),
                                 kHalfBits);
        out_write(0, pack_iq(re, im));
        cacc_re_ = 0;
        cacc_im_ = 0;
      }
      in_consume(0);
      in_consume(1);
      return true;
    }
    default:
      break;
  }

  // Generic path: all declared inputs ready, all declared outputs free.
  const OpInfo info = op_info(op);
  for (int i = 0; i < kMaxIn; ++i) {
    if ((info.in_mask >> i) & 1u) {
      if (!in_ready(i)) return false;
    }
  }
  for (int i = 0; i < kMaxOut; ++i) {
    if ((info.out_mask >> i) & 1u) {
      if (!out_ready(i)) return false;
    }
  }

  const Word a = ((info.in_mask >> 0) & 1u) ? in_peek(0) : 0;
  const Word b = ((info.in_mask >> 1) & 1u) ? in_peek(1) : 0;
  const Word c = ((info.in_mask >> 2) & 1u) ? in_peek(2) : 0;

  Word r0 = 0;
  Word r1 = 0;
  switch (op) {
    case Opcode::kNop:      r0 = a; break;
    case Opcode::kAdd:      r0 = clamp(static_cast<long long>(a) + b); break;
    case Opcode::kSub:      r0 = clamp(static_cast<long long>(a) - b); break;
    case Opcode::kMul:      r0 = clamp(static_cast<long long>(a) * b); break;
    case Opcode::kMulShr:
      r0 = clamp(shr_round(static_cast<std::int32_t>(
                     saturate(static_cast<long long>(a) * b, 31)),
                 p_.shift));
      break;
    case Opcode::kNeg:      r0 = clamp(-static_cast<long long>(a)); break;
    case Opcode::kAbs:      r0 = clamp(a < 0 ? -static_cast<long long>(a) : a); break;
    case Opcode::kMin:      r0 = a < b ? a : b; break;
    case Opcode::kMax:      r0 = a > b ? a : b; break;
    case Opcode::kAnd:      r0 = wrap24(a & b); break;
    case Opcode::kOr:       r0 = wrap24(a | b); break;
    case Opcode::kXor:      r0 = wrap24(a ^ b); break;
    case Opcode::kNot:      r0 = wrap24(~a); break;
    case Opcode::kShl:      r0 = clamp(static_cast<long long>(a) << p_.shift); break;
    case Opcode::kShr:      r0 = a >> p_.shift; break;
    case Opcode::kShrRound: r0 = shr_round(a, p_.shift); break;
    case Opcode::kEq:       r0 = a == b; break;
    case Opcode::kNe:       r0 = a != b; break;
    case Opcode::kLt:       r0 = a < b; break;
    case Opcode::kLe:       r0 = a <= b; break;
    case Opcode::kGt:       r0 = a > b; break;
    case Opcode::kGe:       r0 = a >= b; break;
    case Opcode::kMux:      r0 = (a != 0) ? c : b; break;
    case Opcode::kSwap:
      if (a != 0) { r0 = c; r1 = b; } else { r0 = b; r1 = c; }
      break;
    case Opcode::kDup:      r0 = a; r1 = a; break;
    case Opcode::kPack:     r0 = pack_iq(a, b); break;
    case Opcode::kUnpack:   r0 = unpack_i(a); r1 = unpack_q(a); break;
    case Opcode::kSel4:     r0 = p_.table[static_cast<unsigned>(a) & 3u]; break;
    case Opcode::kCAdd: {
      const CplxI z = sat_cplx(unpack_cplx(a) + unpack_cplx(b), kHalfBits);
      r0 = pack_cplx(z);
      break;
    }
    case Opcode::kCSub: {
      const CplxI z = sat_cplx(unpack_cplx(a) - unpack_cplx(b), kHalfBits);
      r0 = pack_cplx(z);
      break;
    }
    case Opcode::kCMulShr: {
      const CplxI z = unpack_cplx(a) * unpack_cplx(b);
      r0 = pack_cplx(sat_cplx(shr_round(z, p_.shift), kHalfBits));
      break;
    }
    case Opcode::kCConj:    r0 = pack_cplx(unpack_cplx(a).conj()); break;
    case Opcode::kCRotMj: {
      const CplxI z = unpack_cplx(a);
      r0 = pack_cplx(sat_cplx({z.im, -z.re}, kHalfBits));
      break;
    }
    case Opcode::kCNeg: {
      const CplxI z = unpack_cplx(a);
      r0 = pack_cplx(sat_cplx({-z.re, -z.im}, kHalfBits));
      break;
    }
    default:
      return false;  // handled in the bespoke switch above
  }

  for (int i = 0; i < kMaxIn; ++i) {
    if ((info.in_mask >> i) & 1u) in_consume(i);
  }
  if ((info.out_mask >> 0) & 1u) out_write(0, r0);
  if ((info.out_mask >> 1) & 1u) out_write(1, r1);
  return true;
}

}  // namespace rsp::xpp

// ConfigurationManager: run-time resource handling for the array.
//
// "A configuration manager is responsible for the resource handling on
// the array.  The array is capable of being reconfigured with different
// tasks during run-time.  Individual resources on the array can hereby
// be independently reconfigured and allotted to the different tasks."
// (paper, Section 4.)  Loading a configuration costs cycles (modelled
// per object/net written); configurations already running continue to
// execute while another is being loaded, which is what makes the
// Figure 10 schedule (resident config 1, transient 2a -> 2b) pay off.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/xpp/array.hpp"
#include "src/xpp/configuration.hpp"
#include "src/xpp/io.hpp"
#include "src/xpp/sim.hpp"

namespace rsp::xpp {

/// Configuration-write cost model (cycles).  The XPP writes each
/// object's configuration registers and each routing connection over an
/// internal configuration bus; we charge a fixed setup plus a per-item
/// cost.  The ratios, not absolute values, drive the Fig. 10 results.
inline constexpr long long kLoadCyclesBase = 16;
inline constexpr long long kLoadCyclesPerObject = 4;
inline constexpr long long kLoadCyclesPerNet = 2;
inline constexpr long long kReleaseCyclesPerObject = 1;

/// Outcome of a non-throwing load attempt (try_load).
struct LoadReport {
  ConfigId id = kNoConfig;  ///< valid only when ok()
  std::string error;        ///< diagnostic when the load was rejected
  [[nodiscard]] bool ok() const { return id != kNoConfig; }
};

/// Book-keeping for a loaded configuration.
struct LoadedConfig {
  std::string name;
  Simulator::GroupId group = -1;
  int alu_cells = 0;
  int ram_cells = 0;
  int io_channels = 0;
  int routing_segments = 0;
  long long load_cycles = 0;    ///< cycles spent writing this configuration
  long long loaded_at_cycle = 0;
};

class ConfigurationManager {
 public:
  explicit ConfigurationManager(ArrayGeometry geom = {},
                                SchedulerKind sched = SchedulerKind::kEventDriven);

  /// Load @p cfg: claims resources, instantiates objects/nets, charges
  /// the configuration time (other configurations keep running).
  /// If @p cfg carries a checksum (ConfigBuilder stamps one) it is
  /// re-verified against config_crc32 before anything is touched.
  /// Throws ConfigError if the checksum mismatches, resources are
  /// unavailable or the configuration is malformed — with the strong
  /// exception guarantee: a failed load leaves the resource map, the
  /// simulator's object/group population and the configuration-cycle
  /// accounting exactly as they were before the call.
  ConfigId load(const Configuration& cfg);

  /// Non-throwing variant of load: returns the new id on success, or a
  /// report whose error string explains the rejection.  Same strong
  /// guarantee as load.
  LoadReport try_load(const Configuration& cfg);

  /// Release a configuration and free all its resources.
  void release(ConfigId id);

  [[nodiscard]] const LoadedConfig& info(ConfigId id) const;
  [[nodiscard]] bool loaded(ConfigId id) const { return loaded_.count(id) > 0; }

  /// Typed access to I/O channel objects of a loaded configuration.
  [[nodiscard]] InputObject& input(ConfigId id, const std::string& name);
  [[nodiscard]] OutputObject& output(ConfigId id, const std::string& name);

  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }
  ResourceMap& resources() { return resources_; }
  const ResourceMap& resources() const { return resources_; }

  /// Total cycles ever spent on configuration loading.
  [[nodiscard]] long long total_config_cycles() const {
    return total_config_cycles_;
  }

 private:
  /// Snapshot restore (snapshot.hpp) re-instantiates groups without
  /// charging load cycles and rewrites the bookkeeping directly.
  friend class SnapshotAccess;

  /// Shared lookup for input()/output(): resolves @p name in the group
  /// of @p id, throwing a ConfigError with a nearest-name suggestion or
  /// a kind mismatch diagnostic.
  Object& find_io(ConfigId id, const std::string& name, ObjectKind want);

  ResourceMap resources_;
  Simulator sim_;
  std::map<ConfigId, LoadedConfig> loaded_;
  /// The Configuration value behind each loaded id — retained so a
  /// snapshot can re-instantiate the identical objects/nets on restore.
  std::map<ConfigId, Configuration> configs_;
  ConfigId next_id_ = 0;
  long long total_config_cycles_ = 0;
};

namespace detail {
/// Instantiate @p cfg's runtime objects and nets (constants applied,
/// nets fanned out in connection order, preloads latched).  No resource
/// claims, no simulator mutation — shared by ConfigurationManager::load
/// and snapshot restore so both produce structurally identical groups.
void instantiate_config(const Configuration& cfg,
                        std::vector<std::unique_ptr<Object>>& objects,
                        std::vector<std::unique_ptr<Net>>& nets);
}  // namespace detail

/// Cycles needed to write @p cfg onto the array.
[[nodiscard]] long long config_load_cycles(const Configuration& cfg);

}  // namespace rsp::xpp

// ConfigurationManager: run-time resource handling for the array.
//
// "A configuration manager is responsible for the resource handling on
// the array.  The array is capable of being reconfigured with different
// tasks during run-time.  Individual resources on the array can hereby
// be independently reconfigured and allotted to the different tasks."
// (paper, Section 4.)  Loading a configuration costs cycles (modelled
// per object/net written); configurations already running continue to
// execute while another is being loaded, which is what makes the
// Figure 10 schedule (resident config 1, transient 2a -> 2b) pay off.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/xpp/array.hpp"
#include "src/xpp/configuration.hpp"
#include "src/xpp/io.hpp"
#include "src/xpp/sim.hpp"

namespace rsp::xpp {

class BatchProgramCache;

/// Configuration-write cost model (cycles).  The XPP writes each
/// object's configuration registers and each routing connection over an
/// internal configuration bus; we charge a fixed setup plus a per-item
/// cost.  The ratios, not absolute values, drive the Fig. 10 results.
inline constexpr long long kLoadCyclesBase = 16;
inline constexpr long long kLoadCyclesPerObject = 4;
inline constexpr long long kLoadCyclesPerNet = 2;
inline constexpr long long kReleaseCyclesPerObject = 1;

/// Delta-reconfiguration cost model (cycles).  A delta load rewrites
/// only the PAEs and nets whose canonical serialization differs from
/// the live configuration's, so it pays the per-item charges on the
/// *changed* items plus a smaller bus-arbitration setup than a full
/// load (the frame is already open on an occupied array).
inline constexpr long long kDeltaCyclesBase = 8;

/// Cached-pool switch costs.  Parking detaches a configuration from
/// the clock tree but keeps its placement claims (and its stored
/// Configuration) on the array; acquiring re-arms it in place — no
/// placement, no routing, no configuration-bus frame, just the PAE
/// enable writes.
inline constexpr long long kParkCycles = 4;
inline constexpr long long kAcquireCycles = 8;

/// Outcome of a non-throwing load attempt (try_load).
struct LoadReport {
  ConfigId id = kNoConfig;  ///< valid only when ok()
  std::string error;        ///< diagnostic when the load was rejected
  [[nodiscard]] bool ok() const { return id != kNoConfig; }
};

/// Canonical-serialization diff between two configurations: how many
/// object specs and how many nets (distinct source ports with their
/// fan-out sets) a delta load must rewrite.  Objects are compared
/// pairwise by index — the delta path targets configuration *variants*
/// (same structure, different tables/constants), where index identity
/// is the natural correspondence.
struct ConfigDelta {
  int changed_objects = 0;
  int changed_nets = 0;
};

[[nodiscard]] ConfigDelta config_delta(const Configuration& from,
                                       const Configuration& to);

/// Cycles a delta load from @p from to @p to charges.
[[nodiscard]] long long config_delta_cycles(const Configuration& from,
                                            const Configuration& to);

/// Outcome of a successful load_delta.
struct DeltaReport {
  ConfigId id = kNoConfig;     ///< the target configuration's new id
  int changed_objects = 0;
  int changed_nets = 0;
  long long delta_cycles = 0;  ///< cycles charged for the switch
};

/// Book-keeping for a loaded configuration.
struct LoadedConfig {
  std::string name;
  Simulator::GroupId group = -1;
  int alu_cells = 0;
  int ram_cells = 0;
  int io_channels = 0;
  int routing_segments = 0;
  long long load_cycles = 0;    ///< cycles spent writing this configuration
  long long loaded_at_cycle = 0;
};

class ConfigurationManager {
 public:
  explicit ConfigurationManager(ArrayGeometry geom = {},
                                SchedulerKind sched = SchedulerKind::kEventDriven);

  /// Load @p cfg: claims resources, instantiates objects/nets, charges
  /// the configuration time (other configurations keep running).
  /// If @p cfg carries a checksum (ConfigBuilder stamps one) it is
  /// re-verified against config_crc32 before anything is touched.
  /// Throws ConfigError if the checksum mismatches, resources are
  /// unavailable or the configuration is malformed — with the strong
  /// exception guarantee: a failed load leaves the resource map, the
  /// simulator's object/group population and the configuration-cycle
  /// accounting exactly as they were before the call.
  ConfigId load(const Configuration& cfg);

  /// Non-throwing variant of load: returns the new id on success, or a
  /// report whose error string explains the rejection.  Same strong
  /// guarantee as load.
  LoadReport try_load(const Configuration& cfg);

  /// Release a configuration (live or parked) and free all its
  /// resources.
  void release(ConfigId id);

  /// Delta reconfiguration: replace live configuration @p live with
  /// @p target, charging cycles only for the objects/nets whose
  /// canonical serialization changed (config_delta) instead of a full
  /// release+load.  The target is verified (CRC, bounds) and
  /// materialized exactly like a fresh load, so the post-delta array —
  /// resource map, object/net state, everything observable — is
  /// bit-identical to release(live) followed by load(target); only the
  /// configuration-cycle charge differs.  Strong exception guarantee:
  /// on any failure the live configuration keeps running and every
  /// resource map entry is exactly as before the call.
  DeltaReport load_delta(ConfigId live, const Configuration& target);

  /// Park a live configuration: detach it from the clock tree (its
  /// group leaves the simulator, dynamic state is dropped) while its
  /// placement, routing claims and stored Configuration stay on the
  /// array.  A parked configuration is re-armed in place by acquire()
  /// for kAcquireCycles — no placement or routing work — which is what
  /// makes a pre-placed configuration pool cheap to switch between.
  void park(ConfigId id);

  /// Re-arm a parked configuration (fresh dynamic state, identical to
  /// a newly loaded instance).  Keeps its ConfigId.
  void acquire(ConfigId id);

  [[nodiscard]] bool parked(ConfigId id) const {
    return parked_.count(id) > 0;
  }

  /// Attach a shared compiled-program cache (nullptr to detach).  After
  /// every load / load_delta / acquire that leaves exactly one
  /// configuration resident, the simulator's compiled engine (if any)
  /// is pointed at the cache under the configuration's CRC and adopts
  /// every program already published for it — the fleet fast path, so
  /// a re-loaded configuration replays immediately instead of re-running
  /// steady-state detection.
  void attach_program_cache(BatchProgramCache* cache);

  [[nodiscard]] const LoadedConfig& info(ConfigId id) const;
  [[nodiscard]] bool loaded(ConfigId id) const { return loaded_.count(id) > 0; }

  /// Typed access to I/O channel objects of a loaded configuration.
  [[nodiscard]] InputObject& input(ConfigId id, const std::string& name);
  [[nodiscard]] OutputObject& output(ConfigId id, const std::string& name);

  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }
  ResourceMap& resources() { return resources_; }
  const ResourceMap& resources() const { return resources_; }

  /// Total cycles ever spent on configuration loading.
  [[nodiscard]] long long total_config_cycles() const {
    return total_config_cycles_;
  }

 private:
  /// Snapshot restore (snapshot.hpp) re-instantiates groups without
  /// charging load cycles and rewrites the bookkeeping directly.
  friend class SnapshotAccess;

  /// Shared lookup for input()/output(): resolves @p name in the group
  /// of @p id, throwing a ConfigError with a nearest-name suggestion or
  /// a kind mismatch diagnostic.
  Object& find_io(ConfigId id, const std::string& name, ObjectKind want);

  /// Shared prologue of load/load_delta: CRC re-verification and
  /// connection bounds checks, before anything is touched.
  static void verify_config(const Configuration& cfg);

  /// Shared epilogue of load/load_delta: hand the instantiated group to
  /// the simulator, emit trace annotations, and record the bookkeeping.
  /// Nothing in here throws (the caller has already charged @p cost).
  void register_loaded(const Configuration& cfg, ConfigId id,
                       const Placement& placement,
                       std::vector<std::unique_ptr<Object>> objects,
                       std::vector<std::unique_ptr<Net>> nets, long long cost,
                       long long load_begin);

  /// Compiled fast re-arm after load/load_delta/acquire (see
  /// attach_program_cache).
  void maybe_adopt_programs(const Configuration& cfg);

  ResourceMap resources_;
  Simulator sim_;
  std::map<ConfigId, LoadedConfig> loaded_;
  /// Parked pool: bookkeeping of configurations whose resources stay
  /// claimed while their group is off the simulator (group == -1).
  std::map<ConfigId, LoadedConfig> parked_;
  /// The Configuration value behind each loaded or parked id — retained
  /// so a snapshot (or acquire) can re-instantiate identical
  /// objects/nets.
  std::map<ConfigId, Configuration> configs_;
  BatchProgramCache* program_cache_ = nullptr;
  ConfigId next_id_ = 0;
  long long total_config_cycles_ = 0;
};

namespace detail {
/// Instantiate @p cfg's runtime objects and nets (constants applied,
/// nets fanned out in connection order, preloads latched).  No resource
/// claims, no simulator mutation — shared by ConfigurationManager::load
/// and snapshot restore so both produce structurally identical groups.
void instantiate_config(const Configuration& cfg,
                        std::vector<std::unique_ptr<Object>>& objects,
                        std::vector<std::unique_ptr<Net>>& nets);
}  // namespace detail

/// Cycles needed to write @p cfg onto the array.
[[nodiscard]] long long config_load_cycles(const Configuration& cfg);

}  // namespace rsp::xpp

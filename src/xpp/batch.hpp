// Batched cross-instance SIMD replay of compiled epoch programs.
//
// A Monte-Carlo link run (src/farm) simulates many *identical*
// terminals that differ only in their random data streams.  Each one
// independently detects the same steady state and replays the same
// compiled epoch program (src/xpp/compiled.hpp) — N copies of the same
// branch-free op list walking N separate SoA blocks.  This header
// collapses that: lanes whose armed programs are provably the same
// steady state execute together, one op at a time, over
// struct-of-instance-arrays (slot-major: lane i of slot s lives at
// value[s * width + i]) using the lane kernels in src/xpp/simd.hpp.
//
// Three pieces:
//
//  - CanonicalProgram: an immutable, pointer-free image of a compiled
//    program — object/net structure serialized by enumeration index
//    (no names, no addresses) plus the canonicalized per-phase event
//    streams.  Its signature is rotation-invariant over the phase
//    order, so two terminals that detected the same steady state at
//    different phase offsets still produce the same key.
//  - BatchProgramCache: a mutex-protected map from (config CRC-32,
//    canonical signature) to CanonicalProgram.  First insert wins;
//    identical terminals compile once and *bind* the shared image
//    thereafter (CompiledEngine::try_bind_shared), translating the
//    canonical indices back to their own objects and entering at the
//    rotation that matches their detection window.
//  - BatchedReplayEngine: owns no simulator — it references N lanes,
//    gathers those whose armed program matches the anchor lane's
//    (CRC + signature + exact structural compare; hash collisions can
//    cost a missed batch, never correctness), aligns their phase, and
//    ticks them in lockstep.  kValueTruth / kInputNonEmpty guards
//    become per-lane fail masks: a guard miss ejects *only the failing
//    lane* (exact state scattered back, program still armed, its own
//    next scalar step re-fails the guard and deoptimizes exactly like
//    an unbatched run); the surviving lanes keep replaying.
//
// Share-nothing invariant: lanes never exchange data.  The batch is a
// pure execution-order transform, so every lane's trajectory — values,
// fire counts, cycle stamps, deopt decisions — is bit-identical to
// stepping that lane's simulator alone.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/xpp/compiled.hpp"
#include "src/xpp/simd.hpp"

namespace rsp::xpp {

class AluObject;
class CounterObject;
class InputObject;
class RamObject;

/// Immutable pointer-free image of one compiled steady state, shared
/// across simulators through a BatchProgramCache.
class CanonicalProgram {
 public:
  /// Canonicalize @p pr (which was built against @p sim's live
  /// objects).  Returns nullptr if the program references anything
  /// outside the enumeration (never happens today — defensive).
  static std::shared_ptr<const CanonicalProgram> capture(
      const Simulator& sim, const CompiledProgram& pr);

  /// Rotation-invariant signature of a detected period against a live
  /// simulator: FNV-1a over (structure hash, period, minimal rotation
  /// of the per-phase canonical event hashes).  0 = not computable.
  /// @p shape_memo (optional) caches the graph-shape half across calls;
  /// the caller must reset it whenever the object graph changes.
  [[nodiscard]] static std::uint64_t window_signature(
      const Simulator& sim, const std::vector<const CycleRecord*>& period,
      std::shared_ptr<const void>* shape_memo = nullptr);

  [[nodiscard]] std::uint64_t signature() const { return sig_; }
  [[nodiscard]] int period() const { return tpl_.period_; }

  struct Bound {
    std::unique_ptr<CompiledProgram> program;  ///< nullptr on mismatch
    int entry = 0;  ///< phase matching the window's next cycle
  };

  /// Bind this image to @p sim: verify the structural serialization
  /// matches exactly, find the rotation under which the canonical
  /// phases equal @p window, and materialize a CompiledProgram whose
  /// pointers target @p sim's objects (records rebuilt and re-hashed
  /// so the engine's fast re-arm compare works unchanged).
  [[nodiscard]] Bound bind(Simulator& sim,
                           const std::vector<const CycleRecord*>& window) const;

  /// Cold bind — the fleet admission ("replay from cycle 0") entry
  /// point: no detection window exists yet, so only the structural
  /// serialization is verified and the program is materialized at its
  /// canonical rotation.  The caller must NOT arm it blindly; the
  /// engine's fast re-arm scan arms it at whichever phase boundary the
  /// live trajectory first matches (state + guards prescreened), which
  /// keeps the bound program bit-identity-safe without ever running
  /// the periodicity detector.  Returns nullptr on shape mismatch
  /// (config CRC collision, foreign groups on the array).
  [[nodiscard]] std::unique_ptr<CompiledProgram> bind_cold(
      Simulator& sim) const;

  /// Stable enumeration of a simulator's live objects and nets — the
  /// same group-ascending traversal CompiledProgram::Builder uses, so
  /// a program's objs_/nets_ vectors are exactly this order.  Defined
  /// in batch.cpp (serialization helpers take it by reference).
  struct Enumeration;

 private:
  CanonicalProgram() = default;

  /// Materialize a CompiledProgram whose pointers target @p en's
  /// objects — the shared tail of bind() and bind_cold().
  [[nodiscard]] std::unique_ptr<CompiledProgram> materialize(
      const Enumeration& en) const;

  /// One canonicalized token event: pointers replaced by enumeration
  /// indices (is_net selects the net vs object table).
  struct CanonEv {
    std::uint8_t kind = 0;
    std::uint8_t is_net = 0;
    std::int32_t idx = -1;
    std::int32_t sink = -1;
    friend bool operator==(const CanonEv&, const CanonEv&) = default;
  };

  CompiledProgram tpl_;  ///< pointer fields scrubbed; POD arrays live
  std::vector<std::int32_t> op_obj_;      ///< per op: object index
  std::vector<std::int32_t> guard_in_;    ///< per guard: input object index
  std::vector<std::int32_t> fifo_idx_, merge_idx_;
  std::vector<std::int32_t> nonfiring_idx_, req_nonempty_idx_;
  std::vector<std::vector<CanonEv>> phases_;  ///< canonical event streams
  std::vector<std::uint64_t> phase_hash_;
  std::vector<std::int64_t> shape_;  ///< structural serialization
  std::uint64_t sig_ = 0;
};

/// Cross-simulator program cache keyed by (config CRC-32, canonical
/// steady-state signature).  Thread-safe; first insert wins so every
/// binder sees the same immutable image.
class BatchProgramCache {
 public:
  struct Stats {
    long long lookups = 0;
    long long hits = 0;
    long long inserts = 0;
  };

  [[nodiscard]] std::shared_ptr<const CanonicalProgram> find(
      std::uint32_t crc, std::uint64_t sig) const;

  /// Every published program for configuration @p crc, in ascending
  /// signature order (deterministic).  This is the fleet admission key:
  /// an admitting session knows its config CRC but not the steady-state
  /// signature (only detection would reveal it), so it adopts all
  /// programs published for the CRC and lets the fast re-arm scan pick
  /// whichever matches its live trajectory.
  [[nodiscard]] std::vector<std::shared_ptr<const CanonicalProgram>> find_all(
      std::uint32_t crc) const;

  /// Insert unless an entry already exists; returns the resident one.
  std::shared_ptr<const CanonicalProgram> insert(
      std::uint32_t crc, std::uint64_t sig,
      std::shared_ptr<const CanonicalProgram> p);

  [[nodiscard]] Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::uint32_t, std::uint64_t>,
           std::shared_ptr<const CanonicalProgram>>
      map_;
  Stats stats_;
};

/// Lockstep SoA replay across N simulators running the same compiled
/// program.  Single-threaded: one engine per farm worker; the shared
/// cache is the only cross-thread state.
class BatchedReplayEngine {
 public:
  struct Stats {
    long long batch_ticks = 0;     ///< lockstep phase executions
    long long batched_cycles = 0;  ///< lane-cycles advanced in lockstep
    long long scalar_cycles = 0;   ///< lane-cycles advanced one by one
    long long guard_exits = 0;     ///< lanes ejected by a guard mask
    long long join_rejects = 0;    ///< armed lanes refused by the anchor
    long long gathers = 0;         ///< batch formations
  };

  /// @p cache may be nullptr (lanes then share only within this
  /// engine, by structural compare).  @p max_width caps lanes per
  /// batch (clamped to simd::kMaxBatchWidth).
  explicit BatchedReplayEngine(BatchProgramCache* cache = nullptr,
                               int max_width = simd::kMaxBatchWidth);

  /// Register @p sim as a lane; @p config_crc stamps its loaded
  /// configuration (cache key half).  Attaches the shared cache to the
  /// lane's compiled engine.  Returns the lane index.  The simulator
  /// must outlive this engine (or be dropped via set_active(false)).
  int add(Simulator& sim, std::uint32_t config_crc);

  /// Re-stamp a lane after reconfiguration (new config CRC).
  void rekey(int lane, std::uint32_t config_crc);

  /// Exclude / re-include a lane (e.g. its trial completed).
  void set_active(int lane, bool active);

  /// Detach a lane permanently (fleet eviction): the simulator is no
  /// longer referenced and the slot is recycled by a later add(), so
  /// admit/evict churn never grows the lane table without bound.
  void remove(int lane);

  /// Live (non-removed, active) lane count.
  [[nodiscard]] int active_lanes() const;

  [[nodiscard]] int lanes() const { return static_cast<int>(lanes_.size()); }
  [[nodiscard]] int width() const { return max_width_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Advance every active lane by exactly @p n cycles, batching
  /// whenever several lanes replay the same program at the same phase
  /// and falling back to per-lane Simulator::step() otherwise.
  void run_cycles(long long n);

 private:
  struct Lane {
    Simulator* sim = nullptr;
    std::uint32_t crc = 0;
    bool active = true;
    bool needs_scalar = false;  ///< guard-ejected: interpret once first
    long long rem = 0;          ///< cycles still owed this run
  };

  /// One gathered column of the current batch.
  struct Col {
    Lane* lane = nullptr;
    CompiledProgram* pr = nullptr;
    CompiledEngine* eng = nullptr;
    long long entry_cycle = 0;
  };

  [[nodiscard]] bool batchable(const Lane& l) const;
  [[nodiscard]] static CompiledProgram* armed_program(const Lane& l);

  /// Exact execution-identity compare (pointer fields excluded) of two
  /// compiled programs — the correctness backstop behind the CRC /
  /// signature fast key: a hash collision costs a missed batch, never
  /// a wrong result.
  [[nodiscard]] static bool same_exec_shape(const CompiledProgram& x,
                                            const CompiledProgram& y);

  /// Execute up to @p max_ticks lockstep phases over cols_; lanes that
  /// fail a guard are scattered (with the ticks they completed) and
  /// compacted away.  Survivors are scattered at the end.
  void run_batch(long long max_ticks);

  void gather_column(int col);
  void scatter_column(int col, long long executed);
  void compact_column(int hole);

  BatchProgramCache* cache_ = nullptr;  ///< not owned
  int max_width_ = simd::kMaxBatchWidth;
  std::vector<Lane> lanes_;
  std::vector<int> free_;  ///< removed lane slots awaiting reuse
  Stats stats_;

  // Batch scratch (sized at gather; slot-major, stride width_).
  int width_ = 0;          ///< stride of the SoA arrays (gathered count)
  int cols_n_ = 0;         ///< live columns (prefix of the stride)
  int pos_ = 0;            ///< current phase (shared by construction)
  int entry_pos_ = 0;      ///< phase at batch entry (deferred accounting)
  std::size_t slots_ = 0;  ///< net-slot count of the batched program
  std::vector<Col> cols_;
  std::vector<Word> val_, stg_, zero_;
  // Per-object shadow registers (unique stateful objects, lane-major
  // rows like val_).  ops-index -> shadow row resolved per gather.
  std::vector<std::int32_t> op_shadow_;
  std::vector<Word> cnt_val_, cnt_rem_;
  std::vector<Word> acc_;
  std::vector<long long> cacc_re_, cacc_im_;
  std::vector<CounterObject*> cnt_objs_;   ///< [shadow][col]
  std::vector<AluObject*> acc_objs_, cacc_objs_;
  int n_cnt_ = 0, n_acc_ = 0, n_cacc_ = 0;
  // Per-lane object rows for ops that execute live on each lane's own
  // objects (RAM/FIFO/LUT/IO) and for input-nonempty guards, resolved
  // once per gather so the tick loop never chases cols_[c].pr chains.
  std::vector<Object*> live_objs_;        ///< [live-op row][col]
  std::vector<InputObject*> guard_objs_;  ///< [input-guard row][col]
  int n_live_ = 0, n_gin_ = 0;
};

}  // namespace rsp::xpp

// ALU-PAE: the word-granular processing element of the array.
//
// "Each ALU-PAE processes 24 bit words using a DSP-based instruction
// set" (paper, Section 4).  In addition to scalar DSP operations the
// instruction set carries the packed-complex operations the paper's
// block diagrams use as primitive units ("Complex Multiplication",
// "Merge", "Swap", Figures 5-9) operating on 2x12-bit packed words.
#pragma once

#include <array>

#include "src/xpp/object.hpp"

namespace rsp::xpp {

/// Static parameters of an ALU object.
struct AluParams {
  Opcode op = Opcode::kNop;
  int shift = 0;        ///< post-shift for kMulShr/kShl/kShr/kAccum/kCMulShr/kCAccum
  bool saturate = true; ///< saturating (true) or wrapping (false) arithmetic
  std::array<Word, 4> table{};  ///< kSel4 constant table
};

class AluObject final : public Object {
 public:
  AluObject(std::string name, AluParams p)
      : Object(std::move(name), ObjectKind::kAlu), p_(p) {}

  const AluParams& params() const { return p_; }

 protected:
  bool do_fire() override;

 private:
  /// The compiled replayer mirrors the stateful opcodes (kAccum,
  /// kCAccum, kMergeAlt) against these registers directly, with the
  /// identical arithmetic, so armed epochs stay bit-exact.
  friend class CompiledProgram;
  friend class BatchedReplayEngine;
  friend class CanonicalProgram;
  friend class SnapshotAccess;  ///< bit-exact save/restore (snapshot.hpp)

  // Stateful-opcode registers.
  Word acc_ = 0;                // kAccum
  long long cacc_re_ = 0;       // kCAccum
  long long cacc_im_ = 0;
  bool merge_toggle_ = false;   // kMergeAlt

  [[nodiscard]] Word clamp(long long v) const;

  AluParams p_;
};

}  // namespace rsp::xpp

// Compiled steady-state epoch replay for the XPP cycle simulator.
//
// The paper's workloads (descrambler, despreader, FFT64 — Sections 3.1
// and 3.2) spend almost all of their cycles in a *periodic steady
// state*: once the pipeline fills, the same firing pattern repeats
// every P cycles until the input stream runs dry or the array is
// reconfigured.  The interpreting schedulers re-derive that pattern
// every cycle — worklist maintenance, virtual do_fire dispatch,
// per-port readiness checks.  SchedulerKind::kCompiled removes that
// overhead:
//
//  1. RECORD.  While interpreting (via the event-driven scheduler), a
//     CompiledEngine records each cycle's exact token traffic — the
//     (consume, stage, fire) event stream — and hashes it.  A hash
//     ring plus a last-seen map detect a candidate period P; K
//     hash-identical repeats followed by an exact structural compare
//     promote it to a compile candidate.
//  2. COMPILE.  The period is replayed *symbolically* over the live
//     token state (net has/consumed masks, FIFO depths, merge
//     toggles).  Every recorded fire is checked against the exact
//     interpreter readiness rules, every non-fired object is checked
//     to be unable to fire (maximality, conservatively: unknown data
//     decisions count as "could fire" and refuse the compile), and the
//     end state must equal the entry state (closure).  The verified
//     period is lowered into a flat epoch program: a contiguous SoA
//     block of net value slots plus a branch-free op list with
//     pre-resolved slot offsets, per-phase commit (latch) lists,
//     per-phase guards, and per-phase trace deltas.
//  3. REPLAY.  While armed, net state lives packed in the SoA arrays
//     and each step() executes one phase: check guards, run the op
//     list, latch the commit list.  No worklist, no virtual calls, no
//     readiness checks.  Data-dependent decisions (demux routes, gate
//     passes, accumulator dumps, input-queue depth) were pinned by the
//     recorder; the guards re-check each pinned truth at every phase
//     boundary and deoptimize — restore exact Net state, reseed the
//     event scheduler — the moment one fails.  Guards are evaluated
//     before any mutation, so a deopt lands precisely on a cycle
//     boundary with bit-identical state.
//
// Boundary events always fall back to the interpreter:
//  - InputObject::feed  -> Simulator::object_woken -> deoptimize;
//  - add_group / remove_group -> invalidate (programs hold raw
//    pointers into the old groups);
//  - Simulator::install_faults / attach_trace -> deoptimize; the
//    engine also refuses to arm (and deoptimizes) while an installed
//    FaultInjector has events pending — injected mutations violate
//    the compiled program's invariants;
//  - guard failure (stream exhausted, a steering decision flipped).
//
// Tracing stays exact while armed: each phase carries precomputed
// classification deltas (fired / stall-in / stall-out / idle per
// object, occupied / latched per net) derived from the same symbolic
// boundary states, applied straight into the Tracer's counter stores —
// counters, interval row samples and flush timing are bit-identical to
// the interpreting schedulers.  Worklist-depth samples are absent for
// replayed cycles (they measure the event scheduler itself, as under
// kScan).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/xpp/net.hpp"
#include "src/xpp/object.hpp"
#include "src/xpp/trace.hpp"

namespace rsp::xpp {

class AluObject;
class BatchProgramCache;
class BatchedReplayEngine;
class CanonicalProgram;
class CounterObject;
class InputObject;
class RamObject;
class Simulator;

/// Longest period the detector will consider (cycles).
inline constexpr int kMaxCompiledPeriod = 128;

/// Hash-identical repeats required before a compile is attempted.
inline constexpr int kCompiledRepeats = 3;

/// Max compiled programs kept for cheap re-arming (MRU order).
inline constexpr int kCompiledCacheSize = 4;

/// Interpreted cycles a fleet-admitted engine waits for an adopted
/// program to (re)arm before giving up on the fast path and re-enabling
/// the periodicity detector.  Generous: warmup (pipeline fill) is tens
/// of cycles on the paper's workloads, and a successful fleet arm
/// resets the allowance.
inline constexpr long long kFleetProbation = 8LL * kMaxCompiledPeriod;

/// One token event observed while interpreting a cycle.  Pointers are
/// only compared/hashed, never dereferenced, so records of removed
/// groups are safe (invalidate() clears them anyway).
struct CycleEvent {
  enum class Kind : std::uint8_t { kConsume, kStage, kFire };
  Kind kind = Kind::kFire;
  const void* ptr = nullptr;  ///< Net (consume/stage) or Object (fire)
  std::int32_t sink = -1;     ///< consuming sink index (kConsume only)

  friend bool operator==(const CycleEvent&, const CycleEvent&) = default;
};

/// One recorded cycle: the event stream in occurrence order.  A fire
/// event closes the segment of consumes/stages its do_fire produced.
struct CycleRecord {
  std::vector<CycleEvent> evs;
  std::uint64_t hash = 0;
};

/// The one hash over an event stream (detection heuristic only: a
/// collision costs an exact-compare rejection, never correctness).
/// Shared with the batch program cache's rebound records; pinned by
/// tests/common/test_fnv.cpp.
[[nodiscard]] std::uint64_t hash_cycle_events(
    const std::vector<CycleEvent>& evs);

/// Engine counters (exposed through Simulator::compiled_engine for
/// tests and benchmarks — non-vacuousness checks and reports).
struct CompiledStats {
  long long recorded_cycles = 0;   ///< interpreted cycles fed to the detector
  long long compiles = 0;          ///< successful program builds
  long long compile_refusals = 0;  ///< candidates rejected by verification
  long long arms = 0;              ///< times a program went live
  long long rearms = 0;            ///< arms served from the program cache
  long long phase_rearms = 0;      ///< rearms that entered mid-program
  long long cache_binds = 0;       ///< programs bound from a shared cache
  long long deopts = 0;            ///< epoch exits back to the interpreter
  long long replayed_cycles = 0;   ///< cycles executed by epoch replay
  long long fleet_adopts = 0;      ///< shared images cold-bound at admission
  long long fleet_arms = 0;        ///< arms served while the detector was off
};

/// A verified, lowered steady-state period.  Built once, then armed
/// (net state packed into the SoA arrays) and replayed phase by phase;
/// unpack() restores bit-identical Net state at any phase boundary.
class CompiledProgram {
 public:
  /// Symbolically verify and lower @p period (oldest cycle first)
  /// against the simulator's *current* state.  Returns nullptr if any
  /// readiness, maximality or closure check refuses the candidate.
  static std::unique_ptr<CompiledProgram> build(
      Simulator& sim, const std::vector<const CycleRecord*>& period);

  ~CompiledProgram();

  [[nodiscard]] int period() const { return period_; }
  [[nodiscard]] const std::vector<CycleRecord>& records() const {
    return records_;
  }

  /// True if the live net/FIFO/toggle/input-queue structural state
  /// equals this program's entry state (phase 0 boundary) — the cheap
  /// re-arm test used by the engine's program cache.
  [[nodiscard]] bool entry_matches(const Simulator& sim) const {
    return phase_matches(sim, 0);
  }

  /// Generalization of entry_matches to any phase boundary @p k: the
  /// live structural state equals the program's recorded state at the
  /// start of phase k.  Lets a deopt that lands mid-period re-arm
  /// without waiting out a full re-detection window.
  [[nodiscard]] bool phase_matches(const Simulator& sim, int k) const;

  /// Pre-arm screen: evaluate phase @p k's guards against *live* state
  /// (net values, input queues) instead of the packed SoA.  A re-arm
  /// whose first phase would immediately guard-deopt is pointless and
  /// can thrash (arm, deopt, re-arm...); this keeps it interpreted.
  [[nodiscard]] bool guards_pass_live(int k) const;

  /// Pack net state into the SoA block, clear the event scheduler's
  /// worklists, resolve Tracer counter pointers, start replay at phase
  /// @p entry.  Returns false (and leaves the simulator untouched) if
  /// the tracer is missing entries.
  [[nodiscard]] bool arm(Simulator& sim, int entry = 0);

  /// Execute one phase: guards, op list, commit list, trace deltas,
  /// clock/fire accounting.  Returns the phase's fire count, or -1
  /// after a failed guard deoptimized (state already restored).
  int exec_phase(Simulator& sim);

  /// Restore exact interpreter state at the current phase boundary and
  /// reseed the event scheduler.
  void unpack(Simulator& sim);

 private:
  CompiledProgram() = default;

  friend class BatchedReplayEngine;  ///< SoA gather/scatter (batch.cpp)
  friend class CanonicalProgram;     ///< capture/bind (batch.cpp)
  friend class CompiledEngine;       ///< shared-cache stamp (publish)

  struct Builder;  ///< symbolic verification + lowering (compiled.cpp)

  /// Lowered per-fire operation kinds.
  enum class CKind : std::uint8_t {
    kAlu,           ///< generic ALU opcode (op field; kMux/kSwap run live)
    kCopy,          ///< pre-resolved route: staged[o0] = value[a]
    kDrop,          ///< fire with no token effect (gate drop, blind demux)
    kMergeAltCopy,  ///< kCopy + merge toggle flip
    kAccum,         ///< kAccum with compile-pinned dump flag
    kCAccum,        ///< kCAccum with compile-pinned dump flag
    kCounter,       ///< count/wrap replay (runtime registers)
    kRam,           ///< dual-port RAM (flags: read / write)
    kFifo,          ///< FIFO (flags: push / pop; push before pop)
    kLut, kCircLut,
    kInput,         ///< pop queue front -> staged[o0]
    kOutput,        ///< data_.push_back(value[a])
  };

  /// Op flag bits.
  static constexpr std::uint8_t kFlagSaturate = 1u << 0;
  static constexpr std::uint8_t kFlagDump = 1u << 1;  ///< accum dump
  static constexpr std::uint8_t kFlagRead = 1u << 1;  ///< RAM read / FIFO push
  static constexpr std::uint8_t kFlagWrite = 1u << 2; ///< RAM write / FIFO pop

  struct Op {
    CKind kind = CKind::kDrop;
    Opcode op = Opcode::kNop;   ///< kAlu only
    std::uint8_t flags = 0;
    std::int16_t shift = 0;
    std::int32_t a = -1, b = -1, c = -1;  ///< input value slots
    std::int32_t o0 = -1, o1 = -1;        ///< output staged slots
    Object* obj = nullptr;                ///< fire accounting / runtime state
  };

  struct Guard {
    enum class Kind : std::uint8_t { kValueTruth, kInputNonEmpty };
    Kind kind = Kind::kValueTruth;
    bool expect = false;        ///< required truth of value[slot] != 0
    std::int32_t slot = -1;
    InputObject* input = nullptr;
  };

  /// Trace classification codes (mirror Tracer::on_cycle).
  static constexpr std::uint8_t kClsFired = 0;
  static constexpr std::uint8_t kClsStallIn = 1;
  static constexpr std::uint8_t kClsStallOut = 2;
  static constexpr std::uint8_t kClsIdle = 3;
  /// Trace net bits.
  static constexpr std::uint8_t kNetOccupied = 1u << 0;
  static constexpr std::uint8_t kNetLatched = 1u << 1;

  void apply_trace_phase(Simulator& sim, int phase, long long cycle_after);

  // -- static program ------------------------------------------------------
  int period_ = 0;
  int n_nets_ = 0;    ///< net slots (slot i == nets_[i]); consts/dummy follow
  int n_objs_ = 0;
  std::vector<Net*> nets_;       ///< flat net list, slot order
  std::vector<Object*> objs_;    ///< flat object list
  std::vector<CycleRecord> records_;  ///< stored period (cache re-arm compare)

  std::vector<Op> ops_;               ///< all phases, concatenated
  std::vector<std::int32_t> op_end_;  ///< per-phase exclusive end into ops_
  std::vector<Guard> guards_;
  std::vector<std::int32_t> guard_end_;
  std::vector<std::int32_t> latch_slots_;  ///< commit lists, concatenated
  std::vector<std::int32_t> latch_end_;
  std::vector<std::uint8_t> phase_has_;    ///< [phase*n_nets_+i] start state
  std::vector<std::uint32_t> phase_mask_;
  std::vector<std::uint8_t> tobj_cls_;     ///< [phase*n_objs_+m]
  std::vector<std::uint8_t> tnet_bits_;    ///< [phase*n_nets_+i] post-commit

  std::vector<Word> const_values_;    ///< SoA preset for slots >= n_nets_
  std::vector<RamObject*> fifos_;     ///< FIFO-mode RAMs + entry depths
  std::vector<int> fifo_entry_;
  std::vector<AluObject*> merges_;    ///< kMergeAlt ALUs + entry toggles
  std::vector<std::uint8_t> merge_entry_;
  std::vector<int> fifo_phase_;       ///< [phase*fifos+f] phase-start depth
  std::vector<std::uint8_t> merge_phase_;  ///< [phase*merges+m] start toggle
  std::uint64_t canonical_sig_ = 0;   ///< shared-cache stamp (0 = none)
  std::vector<InputObject*> nonfiring_inputs_;     ///< never fire in period
  std::vector<std::uint8_t> nonfiring_empty_;      ///< their entry emptiness
  std::vector<InputObject*> req_nonempty_inputs_;  ///< fire somewhere

  // -- armed state ---------------------------------------------------------
  std::vector<Word> value_;        ///< SoA committed values (+const+dummy)
  std::vector<Word> staged_;       ///< SoA staged values
  std::vector<long long> latch_accum_;  ///< per-slot latches while armed
  int pos_ = 0;                    ///< current phase
  std::vector<PaeCounters*> tpae_;        ///< tracer rows, resolved at arm
  std::vector<Tracer::NetEntry*> tnete_;
  std::vector<std::int16_t> trow_;        ///< per-object tracer row
};

/// Per-simulator recording/detection/replay driver, owned by the
/// Simulator when constructed with SchedulerKind::kCompiled.
class CompiledEngine {
 public:
  explicit CompiledEngine(Simulator& sim);

  // -- recording hooks (interpreted cycles only) ---------------------------
  void record_consume(const Net& net, int sink) {
    cur_->evs.push_back({CycleEvent::Kind::kConsume, &net, sink});
  }
  void record_stage(const Net& net) {
    cur_->evs.push_back({CycleEvent::Kind::kStage, &net, -1});
  }
  void record_fire(const Object& obj) {
    cur_->evs.push_back({CycleEvent::Kind::kFire, &obj, -1});
  }

  /// Close the just-interpreted cycle's record, run period detection,
  /// and possibly compile + arm.  Called from Simulator::step_compiled
  /// after the commit/trace/fault hooks.
  void end_cycle();

  [[nodiscard]] bool armed() const { return armed_ != nullptr; }

  /// Replay exactly one phase of the armed program.  Returns the fire
  /// count, or -1 if a guard failed and the engine deoptimized (the
  /// caller should interpret that cycle instead).
  int exec_one();

  /// Replay up to @p max_cycles phases of the armed program.  Stops
  /// early on guard deopt or when the fault injector arms.  Returns
  /// the number of cycles actually replayed.
  long long replay(long long max_cycles);

  /// Restore interpreter state if armed (feed, attach_trace,
  /// install_faults, diagnose).
  void deoptimize();

  /// Deoptimize, drop all cached programs and reset detection (group
  /// add/remove: programs hold raw object/net pointers).
  void invalidate();

  /// External readiness change (InputObject::feed): a live epoch's
  /// input-emptiness assumptions may now be wrong.
  void on_external_wake() {
    if (armed_ != nullptr) deoptimize();
  }

  [[nodiscard]] const CompiledStats& stats() const { return stats_; }

  /// Attach a cross-simulator program cache (see src/xpp/batch.hpp).
  /// @p config_crc identifies the terminal's loaded configuration;
  /// together with the program's canonical steady-state signature it
  /// keys the cache, so identical terminals compile once and bind the
  /// shared immutable program thereafter.  Pass nullptr to detach.
  void set_shared_cache(BatchProgramCache* cache, std::uint32_t config_crc);

  [[nodiscard]] std::uint32_t shared_crc() const { return shared_crc_; }

  /// Fleet admission fast path ("replay from cycle 0"): cold-bind a
  /// published canonical image into the program cache WITHOUT running
  /// steady-state detection.  While at least one adopted program is
  /// resident the engine stops feeding the periodicity detector
  /// entirely; every interpreted cycle only runs the (cheap) fast
  /// re-arm scan, which arms the adopted program at whichever phase
  /// boundary the live trajectory first matches — structural state and
  /// guards are prescreened, so the replayed trajectory stays
  /// bit-identical to a cold per-instance run by the same argument as
  /// any re-arm.  If nothing arms within kFleetProbation interpreted
  /// cycles (or an armed-program upgrade is requested that no adopted
  /// program satisfies), the engine falls back to normal detection and
  /// per-instance compilation, publishing on first detection as usual.
  /// Returns false if the image does not bind (shape mismatch).
  /// Defined in batch.cpp.
  bool adopt_shared(const std::shared_ptr<const CanonicalProgram>& image);

  /// True while adopted programs suppress the periodicity detector.
  [[nodiscard]] bool fleet_mode() const { return fleet_mode_; }

 private:
  friend class BatchedReplayEngine;  ///< batched lane replay (batch.cpp)

  [[nodiscard]] CycleRecord& rec(long long t) {
    return ring_[static_cast<std::size_t>(t) % ring_.size()];
  }
  void reset_detector();
  void try_arm(int p);
  /// Stamp + insert @p pr into the shared cache (no-op when already
  /// stamped or no cache attached).  Defined in batch.cpp.
  void publish(CompiledProgram& pr);
  /// Try to satisfy a detected period from the shared cache: compute
  /// the canonical signature of @p period, look it up, and bind the
  /// cached immutable program to this simulator's objects.  Returns
  /// true if a bound program was armed.  Defined in batch.cpp.
  bool try_bind_shared(const std::vector<const CycleRecord*>& period);

  Simulator& sim_;
  std::vector<CycleRecord> ring_;  ///< last 2*kMaxCompiledPeriod records
  CycleRecord* cur_ = nullptr;     ///< record being filled (== rec(t_))
  long long t_ = 0;                ///< cycles recorded since last reset
  std::unordered_map<std::uint64_t, long long> last_seen_;
  int cand_p_ = 0;
  long long match_run_ = 0;
  long long cooldown_ = 0;         ///< cycles to skip compiles after refusal
  std::vector<std::unique_ptr<CompiledProgram>> cache_;  ///< MRU front
  CompiledProgram* armed_ = nullptr;
  CompiledStats stats_;
  // Guard-deopt periodicity: when the same program guard-deopts at a
  // regular cycle distance D that is a multiple of its period, the
  // compiled period was a structural sub-period of the true value
  // period (e.g. a despreader's inter-dump steady state).  Recompiling
  // with period D pins the flipping control value per phase, so replay
  // runs through the dump instead of deoptimizing across it.
  // last_guard_deopt_prog_ is compared by identity only, never
  // dereferenced (the cache may have dropped it).
  const CompiledProgram* last_guard_deopt_prog_ = nullptr;
  long long last_guard_deopt_cycle_ = -1;
  int preferred_period_ = 0;  ///< 0 = no pending period upgrade
  BatchProgramCache* shared_cache_ = nullptr;  ///< not owned
  std::uint32_t shared_crc_ = 0;
  // Fleet admission state: while fleet_mode_ is set the detector is
  // bypassed (adopted programs serve every arm through the fast re-arm
  // scan); probation counts interpreted cycles without an arm before
  // the engine falls back to detection.
  bool fleet_mode_ = false;
  long long fleet_probation_ = 0;
  /// Graph-shape memo for canonical window signatures (batch.cpp);
  /// valid only while the object graph is unchanged, so invalidate()
  /// drops it alongside the program cache.
  std::shared_ptr<const void> shape_memo_;
};

}  // namespace rsp::xpp

// Configuration: the software-defined description of array behaviour.
//
// "The functionality of the reconfigurable array is defined by
// software-based configurations, which describe the behavior of the
// processing elements and the routing between them" (paper, Section 2).
// A Configuration is a pure value: a list of object specifications plus
// a list of connections.  It is instantiated onto physical resources by
// the ConfigurationManager.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/xpp/alu.hpp"
#include "src/xpp/counter.hpp"
#include "src/xpp/ram.hpp"
#include "src/xpp/types.hpp"

namespace rsp::xpp {

/// Specification of one configurable object.
struct ObjectSpec {
  std::string name;
  ObjectKind kind = ObjectKind::kAlu;
  AluParams alu;                   ///< kAlu
  CounterParams counter;           ///< kCounter
  RamParams ram;                   ///< kRam
  std::optional<Coord> placement;  ///< explicit placement (else auto)
  /// Control-event input: tokens are injected by the configuration
  /// manager (sequencing events), not through a physical I/O channel.
  bool control = false;
  /// Constant-tied inputs: (port, value).
  std::vector<std::pair<int, Word>> consts;
};

/// Reference to a port of an object within a Configuration.
struct PortRef {
  int object = -1;
  int port = 0;
  friend constexpr bool operator==(PortRef, PortRef) = default;
};

/// One point-to-point connection (the manager merges connections with a
/// common source into a single fanned-out net).
struct ConnSpec {
  PortRef src;
  PortRef dst;
  std::optional<Word> preload;  ///< initial token (primes feedback loops)
};

/// A complete, loadable configuration.
struct Configuration {
  std::string name;
  std::vector<ObjectSpec> objects;
  std::vector<ConnSpec> connections;
  /// CRC-32 over the canonical serialization (config_crc32), stamped by
  /// ConfigBuilder::build and re-verified by ConfigurationManager::load
  /// — detects corruption of a stored configuration between build and
  /// load.  Hand-assembled configurations may leave it empty (no check).
  std::optional<std::uint32_t> checksum;

  /// Count of objects of a given kind (resource estimation).
  [[nodiscard]] int count(ObjectKind k) const {
    int n = 0;
    for (const auto& o : objects) n += (o.kind == k) ? 1 : 0;
    return n;
  }
  /// ALU-PAE demand (ALUs + counters share the ALU-PAE pool).
  [[nodiscard]] int alu_demand() const {
    return count(ObjectKind::kAlu) + count(ObjectKind::kCounter);
  }
  [[nodiscard]] int ram_demand() const { return count(ObjectKind::kRam); }
  /// Physical I/O channel demand (control-event inputs excluded).
  [[nodiscard]] int io_demand() const {
    int n = 0;
    for (const auto& o : objects) {
      if ((o.kind == ObjectKind::kInput && !o.control) ||
          o.kind == ObjectKind::kOutput) {
        ++n;
      }
    }
    return n;
  }
};

}  // namespace rsp::xpp

// Macro subgraphs: common datapath fragments built from multiple PAEs.
//
// The paper's block diagrams treat complex arithmetic as units mapped
// onto "complex-arithmetic ALUs" (Figure 9); the packed-complex opcodes
// model that directly.  These macros provide the word-granular
// decomposition of the same functions onto scalar PAEs, used by the
// ablation bench to quantify the cost of the coarse-grained choice.
#pragma once

#include <string>

#include "src/xpp/builder.hpp"

namespace rsp::xpp::macros {

/// Clamp a word stream to 12-bit two's complement using MIN/MAX PAEs.
/// Returns the port carrying the clipped stream.  Adds 2 ALU-PAEs.
inline PortRef clip12(ConfigBuilder& b, const std::string& prefix,
                      PortRef src) {
  const auto lo = b.alu(prefix + ".min", Opcode::kMin);
  b.tie(lo, 1, 2047);
  const auto hi = b.alu(prefix + ".max", Opcode::kMax);
  b.tie(hi, 1, -2048);
  b.connect(src, lo.in(0));
  b.connect(lo.out(0), hi.in(0));
  return hi.out(0);
}

/// Complex multiply on scalar PAEs, bit-identical to a single kCMulShr
/// ALU with the same @p shift for operands up to 11 bits per component
/// (full 12-bit extremes can overflow the 24-bit scalar adders, which
/// saturate where kCMulShr keeps full intermediate precision).  Consumes packed 12+12 streams @p a and
/// @p b, produces a packed 12+12 stream.  Adds 13 ALU-PAEs:
/// 2x UNPACK, 4x MUL, SUB, ADD, 2x SHRR, 2x clip12 (2 PAEs each), PACK
/// = 15 ALU-PAEs.
inline PortRef scalar_cmul(ConfigBuilder& b, const std::string& prefix,
                           int shift, PortRef a, PortRef bb) {
  const auto ua = b.alu(prefix + ".ua", Opcode::kUnpack);
  const auto ub = b.alu(prefix + ".ub", Opcode::kUnpack);
  b.connect(a, ua.in(0));
  b.connect(bb, ub.in(0));

  const auto mrr = b.alu(prefix + ".mrr", Opcode::kMul);
  const auto mii = b.alu(prefix + ".mii", Opcode::kMul);
  const auto mri = b.alu(prefix + ".mri", Opcode::kMul);
  const auto mir = b.alu(prefix + ".mir", Opcode::kMul);
  b.connect(ua.out(0), mrr.in(0));  // a.re * b.re
  b.connect(ub.out(0), mrr.in(1));
  b.connect(ua.out(1), mii.in(0));  // a.im * b.im
  b.connect(ub.out(1), mii.in(1));
  b.connect(ua.out(0), mri.in(0));  // a.re * b.im
  b.connect(ub.out(1), mri.in(1));
  b.connect(ua.out(1), mir.in(0));  // a.im * b.re
  b.connect(ub.out(0), mir.in(1));

  const auto re = b.alu(prefix + ".re", Opcode::kSub);
  const auto im = b.alu(prefix + ".im", Opcode::kAdd);
  b.connect(mrr.out(0), re.in(0));
  b.connect(mii.out(0), re.in(1));
  b.connect(mri.out(0), im.in(0));
  b.connect(mir.out(0), im.in(1));

  const auto sre = b.alu_shift(prefix + ".sre", Opcode::kShrRound, shift);
  const auto sim = b.alu_shift(prefix + ".sim", Opcode::kShrRound, shift);
  b.connect(re.out(0), sre.in(0));
  b.connect(im.out(0), sim.in(0));

  const PortRef cre = clip12(b, prefix + ".cre", sre.out(0));
  const PortRef cim = clip12(b, prefix + ".cim", sim.out(0));

  const auto pk = b.alu(prefix + ".pk", Opcode::kPack);
  b.connect(cre, pk.in(0));
  b.connect(cim, pk.in(1));
  return pk.out(0);
}

/// Number of ALU-PAEs consumed by one scalar_cmul instance.
inline constexpr int kScalarCmulAlus = 15;

}  // namespace rsp::xpp::macros
